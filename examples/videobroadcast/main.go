// Video broadcast: a single-source asymmetric MC (the paper's remote-
// teaching / video-distribution scenario). One sender roots a shortest-path
// tree; receivers churn freely; a link failure on the distribution tree is
// repaired automatically by the protocol.
//
//	go run ./examples/videobroadcast
package main

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const conn lsa.ConnID = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := topo.Waxman(topo.DefaultGenConfig(30, 99))
	if err != nil {
		return err
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 10*time.Microsecond, flood.Direct)
	if err != nil {
		return err
	}
	d, err := core.NewDomain(k, core.Config{
		Net:         net,
		ComputeTime: 300 * time.Microsecond,
		Algorithm:   route.SPT{}, // source-rooted shortest-path trees
		Kinds:       map[lsa.ConnID]mctree.Kind{conn: mctree.Asymmetric},
	})
	if err != nil {
		return err
	}

	// The broadcaster at switch 5 opens the channel; viewers tune in.
	d.Join(0, 5, conn, mctree.Sender)
	viewers := []topo.SwitchID{2, 11, 17, 23, 28}
	for i, v := range viewers {
		d.Join(sim.Time(i+1)*2*time.Millisecond, v, conn, mctree.Receiver)
	}
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("broadcast setup did not converge: %w", err)
	}
	snap, _ := d.Switch(0).Connection(conn)
	fmt.Printf("channel up: root=%d, %d viewers, tree %s\n",
		snap.Topology.Root, len(snap.Members.Receivers()), snap.Topology)
	for _, v := range viewers {
		delay := snap.Topology.PathDelay(g, 5, v)
		fmt.Printf("  viewer %-3d start-up delay over tree: %v\n", v, delay)
	}

	// A link on the distribution tree fails; the protocol floods one
	// non-MC LSA plus one MC LSA and repairs the tree.
	edge := snap.Topology.Edges()[0]
	fmt.Printf("\nfailing tree link (%d,%d)...\n", edge.A, edge.B)
	d.FailLink(k.Now()+time.Millisecond, edge.A, edge.B)
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("repair did not converge: %w", err)
	}
	snap, _ = d.Switch(0).Connection(conn)
	if snap.Topology.Has(edge.A, edge.B) {
		return fmt.Errorf("tree still uses the failed link")
	}
	fmt.Printf("repaired tree: %s\n", snap.Topology)

	// Viewers churn: two leave, one joins; the sender stays the root.
	d.Leave(k.Now()+time.Millisecond, viewers[0], conn)
	d.Leave(k.Now()+2*time.Millisecond, viewers[1], conn)
	d.Join(k.Now()+3*time.Millisecond, 9, conn, mctree.Receiver)
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("churn did not converge: %w", err)
	}
	snap, _ = d.Switch(0).Connection(conn)
	if snap.Topology.Root != 5 {
		return fmt.Errorf("root moved to %d", snap.Topology.Root)
	}
	fmt.Printf("\nafter churn: %d viewers, root still %d, tree %s\n",
		len(snap.Members.Receivers()), snap.Topology.Root, snap.Topology)
	m := d.Metrics()
	fmt.Printf("totals: %d events, %d computations, %d floodings\n",
		m.Events, m.Computations, net.Floodings())
	return nil
}
