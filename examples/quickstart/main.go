// Quickstart: a five-switch network, one symmetric multipoint connection,
// a few joins and a leave — and a look at how every switch converges on the
// same tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small ring of five switches with 10µs links.
	g, err := topo.Ring(5, 10*time.Microsecond)
	if err != nil {
		return err
	}

	// One simulation kernel carries the whole network.
	k := sim.NewKernel()
	defer k.Shutdown()

	// The flooding fabric delivers LSAs; 2µs per-hop forwarding cost.
	net, err := flood.New(k, g, 2*time.Microsecond, flood.Direct)
	if err != nil {
		return err
	}

	// Every switch runs D-GMC; topology computations take 100µs and use
	// the shortest-path Steiner heuristic.
	d, err := core.NewDomain(k, core.Config{
		Net:         net,
		ComputeTime: 100 * time.Microsecond,
		Algorithm:   route.SPH{},
	})
	if err != nil {
		return err
	}

	// Hosts at switches 0, 2 and 3 join connection 1; switch 2 later leaves.
	const conn = 1
	d.Join(0, 0, conn, mctree.SenderReceiver)
	d.Join(1*time.Millisecond, 2, conn, mctree.SenderReceiver)
	d.Join(2*time.Millisecond, 3, conn, mctree.SenderReceiver)
	d.Leave(5*time.Millisecond, 2, conn)

	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("network did not converge: %w", err)
	}

	// Every switch holds the same view.
	for _, s := range g.Switches() {
		snap, ok := d.Switch(s).Connection(conn)
		if !ok {
			return fmt.Errorf("switch %d lost the connection", s)
		}
		fmt.Printf("switch %d: members=%v topology=%s\n", s, snap.Members.IDs(), snap.Topology)
	}
	m := d.Metrics()
	fmt.Printf("\n%d events cost %d topology computations and %d floodings network-wide\n",
		m.Events, m.Computations, net.Floodings())
	return nil
}
