package main

import "testing"

// TestRun executes the example end to end in-process: it must converge
// and exit cleanly (the README-facing examples are living documentation,
// so CI keeps them running).
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("example failed: %v", err)
	}
}
