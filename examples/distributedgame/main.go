// Distributed game state replication: a receiver-only MC. Game servers
// subscribe to a state-update feed as a receiver-only connection; any
// publisher can inject updates by handing them to a contact node. The
// example contrasts D-GMC's receiver-only trees (any member is a contact)
// with a CBT shared tree (only the core is), and measures the traffic
// concentration CBT suffers when many publishers are active.
//
//	go run ./examples/distributedgame
package main

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/cbt"
	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const conn lsa.ConnID = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := topo.Waxman(topo.DefaultGenConfig(36, 2026))
	if err != nil {
		return err
	}
	replicas := []topo.SwitchID{3, 9, 14, 21, 27, 33}

	// --- D-GMC receiver-only MC ---
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 10*time.Microsecond, flood.Direct)
	if err != nil {
		return err
	}
	d, err := core.NewDomain(k, core.Config{
		Net:         net,
		ComputeTime: 300 * time.Microsecond,
		Algorithm:   route.SPH{},
		Kinds:       map[lsa.ConnID]mctree.Kind{conn: mctree.ReceiverOnly},
	})
	if err != nil {
		return err
	}
	for i, r := range replicas {
		d.Join(sim.Time(i)*2*time.Millisecond, r, conn, mctree.Receiver)
	}
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("subscription did not converge: %w", err)
	}
	snap, _ := d.Switch(0).Connection(conn)
	fmt.Printf("D-GMC receiver-only MC: %d replicas, tree %s (cost %v)\n",
		len(snap.Members), snap.Topology, snap.Topology.Cost(g))

	// Publishers deliver to the nearest replica (stage 1), which forwards
	// over the MC (stage 2). With D-GMC, *any* member is a valid contact.
	publishers := []topo.SwitchID{0, 18, 30}
	for _, p := range publishers {
		best, bestD := topo.NoSwitch, time.Duration(-1)
		spt := g.ShortestPaths(p)
		for _, r := range replicas {
			if d := spt.Delay[r]; d >= 0 && (bestD < 0 || d < bestD) {
				best, bestD = r, d
			}
		}
		fmt.Printf("  publisher %-3d contacts replica %-3d (unicast leg %v)\n", p, best, bestD)
	}

	// --- CBT comparison: only the core can be contacted ---
	cb := route.NewCoreBased()
	members := mctree.Members{}
	for _, r := range replicas {
		members[r] = mctree.Receiver
	}
	coreSwitch, err := cb.SelectCore(g, members)
	if err != nil {
		return err
	}
	shared, err := cbt.New(g, coreSwitch)
	if err != nil {
		return err
	}
	for _, r := range replicas {
		if err := shared.Join(r); err != nil {
			return err
		}
	}
	fmt.Printf("\nCBT shared tree: core=%d, tree %s (cost %v, %d join-request hops)\n",
		coreSwitch, shared.MCTree(), shared.MCTree().Cost(g), shared.JoinRequests())

	cbtLoads, err := shared.SharedTreeLoads(publishers)
	if err != nil {
		return err
	}
	srcLoads, err := cbt.SourceTreeLoads(g, publishers, replicas)
	if err != nil {
		return err
	}
	fmt.Printf("traffic with %d publishers: CBT max link load %.0f, per-source trees %.0f\n",
		len(publishers), cbtLoads.Max(), srcLoads.Max())

	// Failure drill: cut a tree link and verify D-GMC repairs the feed.
	edge := snap.Topology.Edges()[len(snap.Topology.Edges())/2]
	fmt.Printf("\nfailure drill: cutting (%d,%d)\n", edge.A, edge.B)
	d.FailLink(k.Now()+time.Millisecond, edge.A, edge.B)
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("repair did not converge: %w", err)
	}
	snap, _ = d.Switch(0).Connection(conn)
	fmt.Printf("repaired feed tree: %s\n", snap.Topology)
	return nil
}
