// Hierarchical operation: the paper's "ongoing work" extension. A
// multi-campus network is split into areas with one gateway each; a
// company-wide conference spans three areas. Events flood only their own
// area, and the global tree is assembled from per-area trees plus a
// backbone tree over the gateways.
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/deliver"
	"dgmc/internal/hier"
	"dgmc/internal/mctree"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const conn = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three campuses of six switches each; gateways 0, 6, 12 in a triangle.
	g := topo.New(18)
	var areas []hier.AreaSpec
	for a := 0; a < 3; a++ {
		base := topo.SwitchID(a * 6)
		ids := make([]topo.SwitchID, 6)
		for i := range ids {
			ids[i] = base + topo.SwitchID(i)
		}
		for i := 0; i < 5; i++ {
			if err := g.AddLink(base+topo.SwitchID(i), base+topo.SwitchID(i+1), 10*time.Microsecond, 1); err != nil {
				return err
			}
		}
		if err := g.AddLink(base, base+3, 15*time.Microsecond, 1); err != nil {
			return err
		}
		areas = append(areas, hier.AreaSpec{Switches: ids, Gateway: base})
	}
	for _, pair := range [][2]topo.SwitchID{{0, 6}, {6, 12}, {12, 0}} {
		if err := g.AddLink(pair[0], pair[1], 60*time.Microsecond, 1); err != nil {
			return err
		}
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	d, err := hier.NewDomain(k, hier.Config{
		Global: g,
		Areas:  areas,
		PerHop: 10 * time.Microsecond,
		Tc:     300 * time.Microsecond,
	})
	if err != nil {
		return err
	}

	// Campus 0 starts a local meeting...
	if err := d.Join(0, 2, conn, mctree.SenderReceiver); err != nil {
		return err
	}
	if err := d.Join(2*time.Millisecond, 4, conn, mctree.SenderReceiver); err != nil {
		return err
	}
	// ...then campuses 1 and 2 dial in, activating the backbone.
	if err := d.Join(4*time.Millisecond, 8, conn, mctree.SenderReceiver); err != nil {
		return err
	}
	if err := d.Join(6*time.Millisecond, 15, conn, mctree.SenderReceiver); err != nil {
		return err
	}
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("hierarchy did not converge: %w", err)
	}

	tree, err := d.GlobalTopology(conn)
	if err != nil {
		return err
	}
	members := d.GlobalMembers(conn)
	fmt.Printf("global conference tree: %s\n", tree)
	fmt.Printf("members: %v (gateways 0, 6, 12 relay between areas)\n", members.IDs())
	if err := tree.Validate(g, members); err != nil {
		return fmt.Errorf("assembled tree invalid: %w", err)
	}

	rep, err := deliver.Multicast(g, tree, members, 2)
	if err != nil {
		return err
	}
	fmt.Println("\ncross-campus delivery from switch 2:")
	for m, lat := range rep.Latency {
		fmt.Printf("  member %-3d latency %v\n", m, lat)
	}

	st := d.Stats()
	fmt.Printf("\nsignaling: %d events, %d computations, %d floodings, %d flood copies\n",
		st.Events, st.Computations, st.Floodings, st.Copies)
	fmt.Println("(each membership event flooded only its own 6-switch area, not all 18 switches)")
	return nil
}
