// Teleconference: the paper's motivating symmetric-MC application. A
// multi-party conference assembles in a burst (everyone dials in at the
// start), members churn mid-call, and the conference ends. The example runs
// the same scenario under two Steiner heuristics and compares the trees and
// the signaling cost.
//
//	go run ./examples/teleconference
package main

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

const conn = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, alg := range []route.Algorithm{route.SPH{}, route.KMB{}, route.NewIncremental(route.SPH{})} {
		if err := conference(alg); err != nil {
			return fmt.Errorf("%s: %w", alg.Name(), err)
		}
	}
	return nil
}

func conference(alg route.Algorithm) error {
	// A 40-switch campus network.
	g, err := topo.Waxman(topo.DefaultGenConfig(40, 1234))
	if err != nil {
		return err
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 10*time.Microsecond, flood.Direct)
	if err != nil {
		return err
	}
	tf, err := net.FloodTime()
	if err != nil {
		return err
	}
	tc := 500 * time.Microsecond
	round := tf + tc
	d, err := core.NewDomain(k, core.Config{Net: net, ComputeTime: tc, Algorithm: alg})
	if err != nil {
		return err
	}

	// Eight parties dial in within one round — the bursty start of a call.
	burst, err := workload.Bursty(workload.Config{
		N: 40, Events: 8, Seed: 7, Start: round, Window: round, JoinBias: 1.0,
	})
	if err != nil {
		return err
	}
	for _, e := range burst {
		d.Join(e.At, e.Switch, conn, mctree.SenderReceiver)
	}
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("call setup did not converge: %w", err)
	}
	setup := *d.Metrics()
	snap, _ := d.Switch(0).Connection(conn)
	fmt.Printf("%-18s call setup: %d members, tree cost %v, %d computations, %d floodings\n",
		alg.Name(), len(snap.Members), snap.Topology.Cost(g), setup.Computations, net.Floodings())

	// Mid-call churn: two parties hang up, one new party joins.
	members := snap.Members.IDs()
	t := k.Now() + 10*round
	d.Leave(t, members[0], conn)
	d.Leave(t+20*round, members[1], conn)
	var newcomer topo.SwitchID
	for _, s := range g.Switches() {
		if _, isMember := snap.Members[s]; !isMember {
			newcomer = s
			break
		}
	}
	d.Join(t+40*round, newcomer, conn, mctree.SenderReceiver)
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("churn did not converge: %w", err)
	}
	churn := *d.Metrics()
	snap, _ = d.Switch(0).Connection(conn)
	fmt.Printf("%-18s after churn: %d members, tree cost %v, +%d computations\n",
		alg.Name(), len(snap.Members), snap.Topology.Cost(g), churn.Computations-setup.Computations)

	// Everyone hangs up; the connection's state disappears network-wide.
	t = k.Now() + 10*round
	for i, s := range snap.Members.IDs() {
		d.Leave(t+sim.Time(i)*5*round, s, conn)
	}
	if _, err := k.Run(); err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("teardown did not converge: %w", err)
	}
	for _, s := range g.Switches() {
		if ids := d.Switch(s).Connections(); len(ids) != 0 {
			return fmt.Errorf("switch %d still tracks %v after the call ended", s, ids)
		}
	}
	fmt.Printf("%-18s call ended: all per-connection state destroyed\n\n", alg.Name())
	return nil
}
