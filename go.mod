module dgmc

go 1.22
