// Cluster-throughput benchmark: cluster-wide packets/sec through a live
// 16-switch ChanFabric, the figure the PR-10 fabric rework is gated on.
// Where BenchmarkFIBForward isolates the per-packet lookup cost (~ns), this
// measures the whole in-process fabric — sender goroutines, per-frame
// copies, queue hops, receive loops, delivery fan-out — under saturation
// from workload.Blast, so a regression anywhere in that pipeline moves a
// number CI and BENCH_<pr>.json can see.
package dgmc_test

import (
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// benchCluster boots a rows×cols grid cluster on a ChanFabric, joins the
// corner + interior member set the delivery experiments use, and converges.
func benchCluster(b *testing.B, rows, cols int) (*rt.Cluster, *rt.ChanFabric, []topo.SwitchID) {
	b.Helper()
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	n := rows * cols
	fab := rt.NewChanFabric(n)
	c, err := rt.NewCluster(rt.ClusterConfig{Graph: g, ResyncTimeout: 50 * time.Millisecond}, fab)
	if err != nil {
		b.Fatal(err)
	}
	members := []topo.SwitchID{0, topo.SwitchID(cols - 1), topo.SwitchID(cols + 1),
		topo.SwitchID(n - cols), topo.SwitchID(n - 1)}
	for _, sw := range members {
		if err := c.Join(sw, 1, mctree.SenderReceiver); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.WaitConverged(60 * time.Second); err != nil {
		b.Fatal(err)
	}
	return c, fab, members
}

// BenchmarkClusterThroughput drives b.N 64-byte payloads through the
// converged 16-switch cluster from every member concurrently (two sender
// goroutines per source) and reports end-to-end packets/sec alongside the
// cluster-wide delivery and forward rates. The drain (fabric in-flight down
// to zero) is inside the measured window: a packet only counts when it has
// actually cleared the fabric.
func BenchmarkClusterThroughput(b *testing.B) {
	c, fab, members := benchCluster(b, 4, 4)
	defer c.Close()
	b.ResetTimer()
	res, err := workload.Blast(c, workload.BlastConfig{
		Conn:             1,
		Sources:          members,
		SendersPerSource: 1,
		PayloadSize:      64,
		Packets:          b.N,
		InFlight:         fab.InFlight,
		MaxInFlight:      1024,
		Drain: func() error {
			for fab.InFlight() != 0 {
				time.Sleep(50 * time.Microsecond)
			}
			return nil
		},
		Stats: func() workload.BlastStats {
			s := c.ForwardStats()
			return workload.BlastStats{Delivered: s.Delivered, Forwarded: s.Forwarded}
		},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Refused != 0 {
		b.Fatalf("converged cluster refused %d sends", res.Refused)
	}
	b.ReportMetric(res.SendRate(), "pkts/sec")
	b.ReportMetric(res.DeliveredRate(), "delivered/sec")
	b.ReportMetric(res.ForwardedRate(), "forwarded/sec")
}
