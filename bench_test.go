// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus the ablations called out in DESIGN.md §7. Each figure benchmark runs
// one representative simulation per iteration at a mid-sweep network size
// and reports the figure's headline metrics via b.ReportMetric; the full
// sweeps with confidence intervals are produced by cmd/dgmcbench.
package dgmc_test

import (
	"fmt"
	"testing"
	"time"

	"dgmc/internal/cbt"
	"dgmc/internal/exp"
	"dgmc/internal/flood"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

const benchSize = 60 // mid-point of the paper's 20..100 sweep

// runFigure executes one simulation per iteration under p and reports the
// figure's metrics.
func runFigure(b *testing.B, p exp.Params) {
	b.Helper()
	var propSum, floodSum, convSum float64
	for i := 0; i < b.N; i++ {
		g, err := topo.Waxman(topo.DefaultGenConfig(benchSize, int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		k := sim.NewKernel()
		net, err := flood.New(k, g, p.PerHop, flood.Direct)
		if err != nil {
			b.Fatal(err)
		}
		tf, err := net.FloodTime()
		if err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
		round := tf + p.Tc
		cfg := workload.Config{N: benchSize, Events: p.Events, Seed: int64(i) + 1, Start: round}
		var events []workload.Event
		if p.Bursty {
			cfg.Window = round
			events, err = workload.Bursty(cfg)
		} else {
			cfg.MeanGap = time.Duration(p.SparseGapRounds * float64(round))
			events, err = workload.Sparse(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		res, err := exp.RunDGMC(p, g, events)
		if err != nil {
			b.Fatal(err)
		}
		propSum += res.ProposalsPerEvent()
		floodSum += res.FloodingsPerEvent()
		convSum += res.ConvergenceRounds
	}
	n := float64(b.N)
	b.ReportMetric(propSum/n, "proposals/event")
	b.ReportMetric(floodSum/n, "floodings/event")
	if p.Bursty {
		b.ReportMetric(convSum/n, "convergence-rounds")
	}
}

// BenchmarkExperiment1 regenerates Figure 6: bursty events with the
// computation time dominating the per-hop LSA time.
func BenchmarkExperiment1(b *testing.B) {
	runFigure(b, exp.Experiment1Params())
}

// BenchmarkExperiment2 regenerates Figure 7: bursty events with the
// flooding diameter dominating the computation time.
func BenchmarkExperiment2(b *testing.B) {
	runFigure(b, exp.Experiment2Params())
}

// BenchmarkExperiment3 regenerates Figure 8: normal traffic periods.
func BenchmarkExperiment3(b *testing.B) {
	runFigure(b, exp.Experiment3Params())
}

// BenchmarkBaselines regenerates the §2/§4 comparison: topology
// computations per event under D-GMC, MOSPF, and the brute-force protocol,
// over identical sparse workloads.
func BenchmarkBaselines(b *testing.B) {
	p := exp.DefaultBaselineParams()
	setup := func(i int) (*topo.Graph, []workload.Event) {
		g, err := topo.Waxman(topo.DefaultGenConfig(benchSize, int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		k := sim.NewKernel()
		net, err := flood.New(k, g, p.PerHop, flood.Direct)
		if err != nil {
			b.Fatal(err)
		}
		tf, err := net.FloodTime()
		if err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
		round := tf + p.Tc
		events, err := workload.Sparse(workload.Config{
			N: benchSize, Events: p.Events, Seed: int64(i) + 1,
			Start: round, MeanGap: time.Duration(p.SparseGapRounds * float64(round)),
		})
		if err != nil {
			b.Fatal(err)
		}
		return g, events
	}
	b.Run("dgmc", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			g, events := setup(i)
			res, err := exp.RunDGMC(p, g, events)
			if err != nil {
				b.Fatal(err)
			}
			sum += res.ProposalsPerEvent()
		}
		b.ReportMetric(sum/float64(b.N), "computations/event")
	})
	b.Run("mospf", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			g, events := setup(i)
			v, err := exp.RunMOSPF(p, g, events)
			if err != nil {
				b.Fatal(err)
			}
			sum += v
		}
		b.ReportMetric(sum/float64(b.N), "computations/event")
	})
	b.Run("bruteforce", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			g, events := setup(i)
			v, err := exp.RunBruteForce(p, g, events)
			if err != nil {
				b.Fatal(err)
			}
			sum += v
		}
		b.ReportMetric(sum/float64(b.N), "computations/event")
	})
}

// BenchmarkTreeQuality regenerates the §5 CBT comparison: shared-tree cost
// ratio and traffic concentration.
func BenchmarkTreeQuality(b *testing.B) {
	var ratioSum, cbtMaxSum, srcMaxSum float64
	members := 8
	for i := 0; i < b.N; i++ {
		g, err := topo.Waxman(topo.DefaultGenConfig(benchSize, int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		ms := mctree.Members{}
		ids := make([]topo.SwitchID, 0, members)
		for s := 0; len(ms) < members; s += benchSize/members - 1 {
			id := topo.SwitchID(s % benchSize)
			if _, ok := ms[id]; ok {
				id = topo.SwitchID((s + 1) % benchSize)
			}
			ms[id] = mctree.SenderReceiver
			ids = append(ids, id)
		}
		steiner, err := (route.SPH{}).Compute(g, mctree.Symmetric, ms)
		if err != nil {
			b.Fatal(err)
		}
		cb := route.NewCoreBased()
		coreSwitch, err := cb.SelectCore(g, ms)
		if err != nil {
			b.Fatal(err)
		}
		shared, err := cbt.New(g, coreSwitch)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range ids {
			if err := shared.Join(m); err != nil {
				b.Fatal(err)
			}
		}
		if c := steiner.Cost(g); c > 0 {
			ratioSum += float64(shared.MCTree().Cost(g)) / float64(c)
		}
		loads, err := shared.SharedTreeLoads(ids)
		if err != nil {
			b.Fatal(err)
		}
		cbtMaxSum += loads.Max()
		src, err := cbt.SourceTreeLoads(g, ids, ids)
		if err != nil {
			b.Fatal(err)
		}
		srcMaxSum += src.Max()
	}
	n := float64(b.N)
	b.ReportMetric(ratioSum/n, "cost-ratio")
	b.ReportMetric(cbtMaxSum/n, "cbt-max-load")
	b.ReportMetric(srcMaxSum/n, "srctree-max-load")
}

// BenchmarkIncrementalVsScratch ablates §3.5's incremental-update
// recommendation: the wall-clock cost of adapting a tree to one join versus
// recomputing it.
func BenchmarkIncrementalVsScratch(b *testing.B) {
	g, err := topo.Waxman(topo.DefaultGenConfig(100, 7))
	if err != nil {
		b.Fatal(err)
	}
	members := mctree.Members{}
	for s := 0; len(members) < 12; s += 7 {
		members[topo.SwitchID(s%100)] = mctree.SenderReceiver
	}
	base, err := (route.SPH{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		b.Fatal(err)
	}
	joined := topo.SwitchID(55)
	grown := members.Clone()
	grown[joined] = mctree.SenderReceiver
	delta := &route.Change{Switch: joined, Join: true}

	b.Run("incremental", func(b *testing.B) {
		alg := route.NewIncremental(route.SPH{})
		for i := 0; i < b.N; i++ {
			if _, err := alg.Update(g, mctree.Symmetric, grown, base, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (route.SPH{}).Compute(g, mctree.Symmetric, grown); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSteiner compares the pluggable topology algorithms' costs.
func BenchmarkSteiner(b *testing.B) {
	g, err := topo.Waxman(topo.DefaultGenConfig(100, 3))
	if err != nil {
		b.Fatal(err)
	}
	members := mctree.Members{}
	for s := 0; len(members) < 10; s += 9 {
		members[topo.SwitchID(s%100)] = mctree.SenderReceiver
	}
	for _, alg := range []route.Algorithm{route.SPH{}, route.KMB{}, route.SPT{}, route.NewCoreBased()} {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Compute(g, mctree.Symmetric, members); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFloodModes ablates the Direct (analytic) flooding model against
// true hop-by-hop forwarding: identical arrival times, different simulator
// cost.
func BenchmarkFloodModes(b *testing.B) {
	g, err := topo.Waxman(topo.DefaultGenConfig(60, 5))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []flood.Mode{flood.Direct, flood.HopByHop, flood.TreeBased} {
		b.Run(mode.String(), func(b *testing.B) {
			var copies uint64
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				net, err := flood.New(k, g, 2*time.Microsecond, mode)
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < 10; f++ {
					net.Flood(topo.SwitchID(f*5), f)
				}
				if _, err := k.Run(); err != nil {
					b.Fatal(err)
				}
				copies = net.Copies()
				k.Shutdown()
			}
			b.ReportMetric(float64(copies)/10, "copies/flood")
		})
	}
}

// BenchmarkTimestamps measures the vector-timestamp operations on the
// protocol's hot path at various network sizes.
func BenchmarkTimestamps(b *testing.B) {
	for _, n := range []int{100, 400} {
		a := stamp.New(n)
		c := stamp.New(n)
		for i := 0; i < n; i += 3 {
			a.Inc(i)
			c.Inc((i + 1) % n)
		}
		b.Run(fmt.Sprintf("geq-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.Geq(c)
			}
		})
		b.Run(fmt.Sprintf("max-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MaxInPlace(c)
			}
		})
	}
}

// BenchmarkDelayBounded ablates the QoS extension: tree cost as the delay
// bound tightens from "never binds" down to the tightest satisfiable bound.
func BenchmarkDelayBounded(b *testing.B) {
	g, err := topo.Waxman(topo.DefaultGenConfig(80, 11))
	if err != nil {
		b.Fatal(err)
	}
	members := mctree.Members{}
	for s := 0; len(members) < 10; s += 7 {
		members[topo.SwitchID(s%80)] = mctree.SenderReceiver
	}
	root := members.IDs()[0]
	spt := g.ShortestPaths(root)
	var worst time.Duration
	for _, m := range members.IDs() {
		if spt.Delay[m] > worst {
			worst = spt.Delay[m]
		}
	}
	for _, mult := range []float64{4, 1.5, 1.0} {
		bound := time.Duration(float64(worst) * mult)
		b.Run(fmt.Sprintf("bound-%.1fx", mult), func(b *testing.B) {
			var cost time.Duration
			for i := 0; i < b.N; i++ {
				tr, err := (route.DelayBounded{Bound: bound}).Compute(g, mctree.Symmetric, members)
				if err != nil {
					b.Fatal(err)
				}
				cost = tr.Cost(g)
			}
			b.ReportMetric(float64(cost.Microseconds()), "tree-cost-µs")
		})
	}
}

// BenchmarkHierarchy regenerates the hierarchical-extension comparison:
// flood transmissions per event under flat vs two-level D-GMC.
func BenchmarkHierarchy(b *testing.B) {
	var flat, hier float64
	for i := 0; i < b.N; i++ {
		table, err := exp.Hierarchy(exp.HierarchyParams{
			AreaCounts:   []int{6},
			AreaSize:     10,
			RunsPerPoint: 2,
			BaseSeed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		row := table.Rows[0]
		flat += row.Cells[0].Mean
		hier += row.Cells[1].Mean
	}
	b.ReportMetric(flat/float64(b.N), "copies/event-flat")
	b.ReportMetric(hier/float64(b.N), "copies/event-hier")
}

// BenchmarkKernel measures raw simulator event throughput.
func BenchmarkKernel(b *testing.B) {
	k := sim.NewKernel()
	defer k.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func() {})
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
