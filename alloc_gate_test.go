// Allocation-regression gates for the hot paths the PR-5 performance pass
// slimmed down: these run as ordinary tests (so CI blocks on them), with
// budgets set just above the measured steady-state so a reintroduced
// per-call allocation — a lost pooled buffer, an un-elided clone, a
// variadic Trace call un-guarded — fails loudly rather than rotting
// silently. Budgets are per operation and generous by ~25%; they gate
// regressions, they are not the measured values (see BENCH_pr5.json).
package dgmc_test

import (
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func gate(t *testing.T, path string, budget float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/op exceeds budget %.0f", path, got, budget)
	}
}

// TestAllocGateMachineStep bounds one full EventHandler pass (join or
// leave): stamp bookkeeping, SPH proposal computation, flood emission.
func TestAllocGateMachineStep(t *testing.T) {
	g, err := topo.Ring(16, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineConfig{
		ID: 0, Graph: g, Algorithm: route.SPH{},
	}, nullHost{neighbors: g.Neighbors(0)})
	if err != nil {
		t.Fatal(err)
	}
	join := core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.SenderReceiver}
	leave := core.LocalEvent{Conn: 1, Kind: lsa.Leave}
	// Measured 17 allocs for the join+leave pair, ~8.5/step (was 14/step
	// before the pass: per-flood stamp clones, unguarded variadic traces).
	gate(t, "core.Machine.HandleLocalEvent (join+leave pair)", 20, func() {
		m.HandleLocalEvent(nil, join)
		m.HandleLocalEvent(nil, leave)
	})
}

// TestAllocGateFrameCodec bounds the wire codec. The pooled append path
// must be allocation-free into a reused buffer, and header decode must not
// allocate at all (the payload view aliases the input).
func TestAllocGateFrameCodec(t *testing.T) {
	nm := &lsa.NonMC{Src: 3, Seq: 9, Change: lsa.LinkChange{A: 1, B: 2, Down: true}}
	f := &lsa.Frame{Version: lsa.FrameVersion, Kind: lsa.FrameFlood,
		Origin: 3, From: 3, Seq: 42, Payload: nm.Marshal()}
	buf := make([]byte, 0, 1024)
	gate(t, "lsa.AppendFrame (reused buffer)", 0, func() {
		buf = lsa.AppendFrame(buf[:0], f)
	})
	gate(t, "lsa.AppendFrameWith (reused buffer)", 0, func() {
		buf = lsa.AppendFrameWith(buf[:0], f, nm.AppendMarshal)
	})
	var dec lsa.Frame
	gate(t, "lsa.DecodeFrameInto", 0, func() {
		if err := lsa.DecodeFrameInto(&dec, buf); err != nil {
			t.Fatal(err)
		}
	})
	// The boxed convenience wrapper may allocate the one result it returns.
	gate(t, "lsa.EncodeFrame", 1, func() {
		_ = lsa.EncodeFrame(f)
	})
}

// TestAllocGateFIBForward pins the data plane's steady-state per-packet
// composition — frame decode, payload decode, FIB lookup, in-place forward
// rewrite — at exactly zero allocations. No slack: one allocation per
// packet is the difference between a forwarding plane and a garbage
// generator, and internal/rt's white-box gate holds the same line on the
// real Node.handleData.
func TestAllocGateFIBForward(t *testing.T) {
	g, states, self := benchFIBSetup(t, 8)
	tbl := compileFIB(g, states, self)
	d := lsa.DataFrame{Conn: states[0].conn, Src: 0, Seq: 1, Hops: 64, Payload: make([]byte, 64)}
	buf := lsa.AppendDataFrame(nil, &d, 0)
	var f lsa.Frame
	var dec lsa.DataFrame
	gate(t, "data-plane forward (decode+lookup+patch)", 0, func() {
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			t.Fatal(err)
		}
		if err := lsa.DecodeDataInto(&dec, &f); err != nil {
			t.Fatal(err)
		}
		if e := tbl.Lookup(dec.Conn); e == nil || !e.Entered() {
			t.Fatal("gate entry missing")
		}
		if err := lsa.PatchDataForward(buf, self, dec.Hops); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocGateForwardInstrumented holds the PR-9 line from outside the
// package: the forward composition of TestAllocGateFIBForward plus full
// observability — a flight-recorder event per packet, the deterministic
// sampling decision, and a sampled-hop record — still makes exactly zero
// heap allocations. internal/rt's white-box twin
// (TestHandleDataInstrumentedZeroAlloc) pins the same budget on the real
// Node.handleData with the registry live; this gate proves the obs
// primitives themselves never regress into allocating.
func TestAllocGateForwardInstrumented(t *testing.T) {
	g, states, self := benchFIBSetup(t, 8)
	tbl := compileFIB(g, states, self)
	events := obs.NewFlightRecorder(1024)
	hops := obs.NewFlightRecorder(1024)
	d := lsa.DataFrame{Conn: states[0].conn, Src: 0, Seq: 0, Hops: 64, Payload: make([]byte, 64)}
	buf := lsa.AppendDataFrame(nil, &d, 0)
	var f lsa.Frame
	var dec lsa.DataFrame
	seq := uint64(0)
	gate(t, "instrumented forward (decode+lookup+patch+record+sample)", 0, func() {
		seq++
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			t.Fatal(err)
		}
		if err := lsa.DecodeDataInto(&dec, &f); err != nil {
			t.Fatal(err)
		}
		if e := tbl.Lookup(dec.Conn); e == nil || !e.Entered() {
			t.Fatal("gate entry missing")
		}
		if err := lsa.PatchDataForward(buf, self, dec.Hops); err != nil {
			t.Fatal(err)
		}
		events.Record(obs.RecForward, uint32(dec.Conn), uint32(dec.Src), seq, uint64(self))
		if obs.Sampled(seq, 4) {
			hops.Record(obs.RecForward, uint32(dec.Conn), uint32(dec.Src), seq, uint64(self))
		}
	})
	if events.Written() == 0 || hops.Written() == 0 {
		t.Fatal("recorder gates measured nothing")
	}
}

// TestAllocGateFloodFanout bounds a full hop-by-hop flood on a 60-switch
// random graph, amortized per delivered copy: simulator event scheduling is
// closure-free and mailbox delivery is inlined into the event record, so
// the cost per copy is the boxed message plus queue growth.
func TestAllocGateFloodFanout(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(60, 5))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 2*time.Microsecond, flood.HopByHop)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	var copies uint64
	allocs := testing.AllocsPerRun(100, func() {
		seq++
		net.Flood(topo.SwitchID(seq%60), seq)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		copies = net.Copies()
	})
	// Measured ~11 allocs per delivered copy after the pass (closure-free
	// scheduling); the old per-hop closures and per-call arrival scratch put
	// it well above. copies is cumulative; per-run fan-out is copies/seq.
	perCopy := allocs / (float64(copies) / float64(seq))
	if perCopy > 14 {
		t.Errorf("flood fan-out: %.1f allocs per delivered copy exceeds budget 14 (%.0f allocs/flood)",
			perCopy, allocs)
	}
}
