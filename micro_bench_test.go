// Micro-benchmarks for the protocol's hot paths: one machine step, frame
// encode/decode, flood fan-out, and topology computation. Where
// bench_test.go regenerates the paper's figures end to end, these isolate
// the unit costs that compose them; scripts/bench.sh records both as JSON.
package dgmc_test

import (
	"fmt"
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/fib"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// nullHost satisfies core.Host with no-ops so BenchmarkMachineStep measures
// the machine alone, not a runtime.
type nullHost struct{ neighbors []topo.SwitchID }

func (nullHost) FloodMC(*lsa.MC)                                                {}
func (nullHost) FloodNonMC(*lsa.NonMC)                                          {}
func (nullHost) SendUnicast(topo.SwitchID, any)                                 {}
func (nullHost) HoldCompute(any)                                                {}
func (nullHost) PendingMC(lsa.ConnID) bool                                      { return false }
func (h nullHost) Neighbors() []topo.SwitchID                                   { return h.neighbors }
func (nullHost) FabricLinkChanged(lsa.LinkChange)                               {}
func (nullHost) ArmResync(lsa.ConnID)                                           {}
func (nullHost) SelfNudge(lsa.ConnID)                                           {}
func (nullHost) NoteInstall()                                                   {}
func (nullHost) ForwardingChanged(lsa.ConnID)                                   {}
func (nullHost) Trace(core.TraceKind, core.ChainID, lsa.ConnID, string, ...any) {}
func (nullHost) TraceEnabled() bool                                             { return false }

// BenchmarkMachineStep measures one full EventHandler pass — stamp
// bookkeeping, proposal computation, flood emission — on a 16-switch ring.
func BenchmarkMachineStep(b *testing.B) {
	g, err := topo.Ring(16, 5*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineConfig{
		ID: 0, Graph: g, Algorithm: route.SPH{},
	}, nullHost{neighbors: g.Neighbors(0)})
	if err != nil {
		b.Fatal(err)
	}
	join := core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.SenderReceiver}
	leave := core.LocalEvent{Conn: 1, Kind: lsa.Leave}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			m.HandleLocalEvent(nil, join)
		} else {
			m.HandleLocalEvent(nil, leave)
		}
	}
}

// benchFrame builds a representative wire frame: an MC LSA carrying a
// 10-member proposal tree and a 64-switch vector stamp.
func benchFrame(b *testing.B) *lsa.Frame {
	b.Helper()
	const n = 64
	g, err := topo.Waxman(topo.DefaultGenConfig(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	members := mctree.Members{}
	for s := 0; len(members) < 10; s += 7 {
		members[topo.SwitchID(s%n)] = mctree.SenderReceiver
	}
	tree, err := (route.SPH{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		b.Fatal(err)
	}
	st := stamp.New(n)
	for i := 0; i < n; i += 2 {
		st.Inc(i)
	}
	mc := &lsa.MC{Src: 3, Event: lsa.Join, Conn: 1, Role: mctree.SenderReceiver,
		Proposal: tree, Stamp: st}
	return &lsa.Frame{Version: lsa.FrameVersion, Kind: lsa.FrameFlood,
		Origin: 3, From: 3, Seq: 42, Payload: mc.Marshal()}
}

// BenchmarkFrameEncode measures the transmit path: frame header + CRC
// around an already-marshalled LSA.
func BenchmarkFrameEncode(b *testing.B) {
	f := benchFrame(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lsa.EncodeFrame(f)
	}
	b.ReportMetric(float64(len(lsa.EncodeFrame(f))), "frame-bytes")
}

// BenchmarkFrameDecode measures the receive path: frame validation (CRC,
// version, length) plus LSA unmarshalling.
func BenchmarkFrameDecode(b *testing.B) {
	buf := lsa.EncodeFrame(benchFrame(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := lsa.DecodeFrame(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := lsa.Unmarshal(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFloodFanout measures hop-by-hop flood fan-out on a 60-switch
// random graph: every switch forwards each new LSA to its other neighbors,
// so one flood costs O(links) simulator events.
func BenchmarkFloodFanout(b *testing.B) {
	g, err := topo.Waxman(topo.DefaultGenConfig(60, 5))
	if err != nil {
		b.Fatal(err)
	}
	var copies uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		net, err := flood.New(k, g, 2*time.Microsecond, flood.HopByHop)
		if err != nil {
			b.Fatal(err)
		}
		net.Flood(topo.SwitchID(i%60), i)
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
		copies = net.Copies()
		k.Shutdown()
	}
	b.ReportMetric(float64(copies), "copies/flood")
}

// benchFIBSetup builds a 64-switch graph with installed trees on several
// connections, compiled from one relay switch's point of view.
func benchFIBSetup(b testing.TB, conns int) (*topo.Graph, []fibConnState, topo.SwitchID) {
	b.Helper()
	const n = 64
	g, err := topo.Waxman(topo.DefaultGenConfig(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	states := make([]fibConnState, 0, conns)
	for c := 1; c <= conns; c++ {
		members := mctree.Members{}
		for s := c; len(members) < 10; s += 7 {
			members[topo.SwitchID(s%n)] = mctree.SenderReceiver
		}
		tree, err := (route.SPH{}).Compute(g, mctree.Symmetric, members)
		if err != nil {
			b.Fatal(err)
		}
		states = append(states, fibConnState{conn: lsa.ConnID(c), members: members, tree: tree})
	}
	// Compile at a switch on the first tree so lookups hit a fan-out entry.
	var self topo.SwitchID = topo.NoSwitch
	for s := 0; s < n; s++ {
		if states[0].tree.On(topo.SwitchID(s)) && len(states[0].tree.Neighbors(topo.SwitchID(s))) >= 2 {
			self = topo.SwitchID(s)
			break
		}
	}
	if self == topo.NoSwitch {
		b.Fatal("no relay switch on the benchmark tree")
	}
	return g, states, self
}

type fibConnState struct {
	conn    lsa.ConnID
	members mctree.Members
	tree    *mctree.Tree
}

func compileFIB(g *topo.Graph, states []fibConnState, self topo.SwitchID) *fib.Table {
	bl := fib.NewBuilder(self, g)
	for _, st := range states {
		bl.Add(st.conn, mctree.Symmetric, st.members, st.tree)
	}
	return bl.Build()
}

// BenchmarkFIBForward measures the steady-state per-packet cost of the data
// plane as a relay switch sees it: frame decode, table lookup, and the
// in-place From/hops/CRC rewrite before fan-out. The same composition is
// pinned at zero allocations by TestAllocGateFIBForward.
func BenchmarkFIBForward(b *testing.B) {
	g, states, self := benchFIBSetup(b, 8)
	tbl := compileFIB(g, states, self)
	d := lsa.DataFrame{Conn: states[0].conn, Src: 0, Seq: 1, Hops: 64, Payload: make([]byte, 64)}
	buf := lsa.AppendDataFrame(nil, &d, 0)
	var f lsa.Frame
	var dec lsa.DataFrame
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			b.Fatal(err)
		}
		if err := lsa.DecodeDataInto(&dec, &f); err != nil {
			b.Fatal(err)
		}
		e := tbl.Lookup(dec.Conn)
		if e == nil || !e.Entered() {
			b.Fatal("benchmark entry missing")
		}
		if err := lsa.PatchDataForward(buf, self, dec.Hops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFIBCompile measures one full table compilation — the work every
// install/withdraw triggers on each switch — at 8 connections with
// 10-member trees on a 64-switch graph.
func BenchmarkFIBCompile(b *testing.B) {
	g, states, self := benchFIBSetup(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compileFIB(g, states, self).Size() != len(states) {
			b.Fatal("compile lost entries")
		}
	}
}

// BenchmarkTopoCompute measures one from-scratch topology computation (the
// paper's Tc) at three network sizes; n250 exists to expose the asymptotic
// gap between the old O(n²) linear-min Dijkstra and the heap kernel.
func BenchmarkTopoCompute(b *testing.B) {
	for _, n := range []int{50, 100, 250} {
		g, err := topo.Waxman(topo.DefaultGenConfig(n, 3))
		if err != nil {
			b.Fatal(err)
		}
		members := mctree.Members{}
		for s := 0; len(members) < 10; s += 7 {
			members[topo.SwitchID(s%n)] = mctree.SenderReceiver
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (route.SPH{}).Compute(g, mctree.Symmetric, members); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
