// Package dgmc is a Go reproduction of "A Lightweight Protocol for
// Multipoint Connections under Link-State Routing" (Huang & McKinley,
// ICDCS 1996).
//
// The repository implements the D-GMC protocol (internal/core) on top of a
// from-scratch link-state-routing substrate (internal/lsr, internal/flood,
// internal/lsa, internal/stamp) inside a deterministic process-oriented
// discrete-event simulator (internal/sim), together with the topology
// algorithms it plugs in (internal/route), the baselines the paper compares
// against (internal/mospf, internal/bruteforce, internal/cbt), and the
// experiment harness regenerating every figure of the evaluation section
// (internal/exp, cmd/dgmcbench).
//
// See README.md for a tour and DESIGN.md for the full system inventory and
// per-experiment index. The benchmarks in bench_test.go regenerate the
// headline number of each figure; EXPERIMENTS.md records paper-versus-
// measured results.
package dgmc
