#!/bin/sh
# Observability soak: boot a 3-daemon UDP fabric with admin listeners, drive
# a membership change, scrape /metrics and /spans, and fail on empty or
# malformed output. Scraped files are left in the directory given as $1
# (default: ./obs-soak-artifacts) so CI can upload them as artifacts.
#
# Usage: scripts/obs_soak.sh [artifact-dir]
set -eu
cd "$(dirname "$0")/.."

artifacts="${1:-obs-soak-artifacts}"
mkdir -p "$artifacts"
work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/dgmcd" ./cmd/dgmcd

cat > "$work/fabric.topo" <<EOF
switches 3
link 0 1 1ms
link 1 2 1ms
addr 0 127.0.0.1:19700
addr 1 127.0.0.1:19701
addr 2 127.0.0.1:19702
EOF

admin_base=19790
for id in 0 1 2; do
    # Daemons idle on an open stdin pipe until we quit them.
    mkfifo "$work/stdin$id"
    "$work/dgmcd" -topo "$work/fabric.topo" -id "$id" \
        -admin "127.0.0.1:$((admin_base + id))" \
        > "$artifacts/daemon$id.log" 2>&1 < "$work/stdin$id" &
    pids="$pids $!"
    # Keep the fifo's write end open (fd 4+id) for the daemon's lifetime.
    eval "exec $((4 + id))>\"$work/stdin$id\""
done

# Wait for every admin listener to answer.
for id in 0 1 2; do
    i=0
    until curl -sf "http://127.0.0.1:$((admin_base + id))/" > /dev/null; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "daemon $id admin never came up" >&2; exit 1; }
        sleep 0.1
    done
done

# Drive a membership change: switches 0 and 2 join MC 7.
echo "join 7 both" >&4
echo "join 7 both" >&6
sleep 2

fail=0
for id in 0 1 2; do
    port=$((admin_base + id))
    curl -sf "http://127.0.0.1:$port/metrics" > "$artifacts/metrics$id.prom"
    curl -sf "http://127.0.0.1:$port/spans" > "$artifacts/spans$id.json"
    curl -sf "http://127.0.0.1:$port/state" > "$artifacts/state$id.json"

    # /metrics must be non-empty Prometheus text showing a completed install.
    grep -q '^# TYPE dgmc_machine_installs_total counter$' "$artifacts/metrics$id.prom" || {
        echo "daemon $id: /metrics missing install counter" >&2; fail=1; }
    grep -q "^dgmc_machine_installs_total{switch=\"$id\"} [1-9]" "$artifacts/metrics$id.prom" || {
        echo "daemon $id: /metrics shows no installs" >&2; fail=1; }
    grep -q '^# TYPE dgmc_lsa_batch_seconds histogram$' "$artifacts/metrics$id.prom" || {
        echo "daemon $id: /metrics missing batch histogram" >&2; fail=1; }

    # /spans must be valid JSON with at least one converged span.
    python3 - "$artifacts/spans$id.json" <<'PY' || { echo "daemon $id: bad /spans" >&2; fail=1; }
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["stats"]["spans"] >= 1, "no spans"
assert doc["stats"]["converged"] >= 1, "no converged span"
assert any(s["installs"] >= 1 for s in doc["spans"]), "no install recorded"
PY

    # /state must list conn 7 with two members.
    python3 - "$artifacts/state$id.json" <<'PY' || { echo "daemon $id: bad /state" >&2; fail=1; }
import json, sys
doc = json.load(open(sys.argv[1]))
conns = {c["conn"]: c for c in doc["connections"]}
assert 7 in conns and sorted(conns[7]["members"]) == [0, 2], conns
PY
done

# Merge the three daemons' spans: the chain of switch 0's join must show the
# complete distributed event→flood→recv→install sequence network-wide.
python3 - "$artifacts"/spans0.json "$artifacts"/spans1.json "$artifacts"/spans2.json \
    <<'PY' || { echo "merged spans do not reconstruct the event chain" >&2; fail=1; }
import json, sys
steps = []
for path in sys.argv[1:]:
    for s in json.load(open(path))["spans"]:
        if s["chain"] == "0/1":
            steps.extend(s["steps"])
kinds = {}
for st in steps:
    kinds[st["kind"]] = kinds.get(st["kind"], 0) + 1
assert kinds.get("event") == 1, kinds
assert kinds.get("compute", 0) >= 1, kinds
assert kinds.get("flood", 0) >= 1, kinds
assert kinds.get("recv", 0) >= 1, kinds
assert kinds.get("install", 0) >= 3, kinds
event = min(s["at_ns"] for s in steps if s["kind"] == "event")
last = max(s["at_ns"] for s in steps if s["kind"] == "install")
assert last > event, (event, last)
print("chain 0/1 converged in %.3f ms across 3 daemons" % ((last - event) / 1e6))
PY

for fd in 4 5 6; do
    echo "quit" >&"$fd" || true
done

if [ "$fail" -ne 0 ]; then
    echo "obs soak FAILED (scrapes kept in $artifacts)" >&2
    exit 1
fi
echo "obs soak OK: scrapes in $artifacts" >&2
