#!/bin/sh
# Run the micro-benchmark suite and archive the results as BENCH_<label>.json
# (default label: pr3). Usage: scripts/bench.sh [label] [benchtime]
#
# The micro benchmarks (micro_bench_test.go) isolate hot-path unit costs —
# machine step, frame encode/decode, flood fan-out, topology compute — so
# successive PRs can diff them; the figure-level suite stays in bench_test.go
# and cmd/dgmcbench.
set -eu
cd "$(dirname "$0")/.."

label="${1:-pr3}"
benchtime="${2:-1s}"
out="BENCH_${label}.json"

go test -run '^$' \
  -bench '^(BenchmarkMachineStep|BenchmarkFrameEncode|BenchmarkFrameDecode|BenchmarkFloodFanout|BenchmarkTopoCompute|BenchmarkFIBForward|BenchmarkFIBCompile)$' \
  -benchmem -benchtime "$benchtime" . |
  go run ./cmd/benchjson -label "$label" > "$out"

echo "wrote $out" >&2
