#!/bin/sh
# Run the micro-benchmark suite and archive the results as BENCH_<label>.json
# (default label: pr3). Usage: scripts/bench.sh [label] [benchtime] [notes]
# where notes is an optional comma-separated key=value list recorded in the
# JSON (e.g. a baseline figure the run is compared against).
#
# The micro benchmarks (micro_bench_test.go) isolate hot-path unit costs —
# machine step, frame encode/decode, flood fan-out, topology compute — and
# BenchmarkClusterThroughput measures whole-fabric packets/sec under
# saturation, so successive PRs can diff them; the figure-level suite stays
# in bench_test.go and cmd/dgmcbench.
set -eu
cd "$(dirname "$0")/.."

label="${1:-pr3}"
benchtime="${2:-1s}"
notes="${3:-}"
out="BENCH_${label}.json"

go test -run '^$' \
  -bench '^(BenchmarkMachineStep|BenchmarkFrameEncode|BenchmarkFrameDecode|BenchmarkFloodFanout|BenchmarkTopoCompute|BenchmarkFIBForward|BenchmarkFIBCompile|BenchmarkClusterThroughput)$' \
  -benchmem -benchtime "$benchtime" . |
  go run ./cmd/benchjson -label "$label" ${notes:+-notes "$notes"} > "$out"

echo "wrote $out" >&2
