// Package explore is a systematic schedule-exploration harness — an
// implementation-level model checker — for the D-GMC state machine.
//
// Where internal/model checks an *abstracted* re-statement of the protocol
// (fixed-size stamps, proposals reduced to their basis), this package
// drives the production state machine itself: a set of core.Machine
// instances, one per switch, whose every runtime effect (flooding, unicast
// resync, timers, self-nudges) is captured as a *pending action* instead of
// being executed at some fixed time. The set of pending actions at a world
// state is the set of schedule choice points:
//
//   - injecting the next scenario event at a switch (events at different
//     switches interleave freely; events at one switch keep program order),
//   - delivering any one in-flight advertisement or resync message to its
//     destination — in any order, which subsumes every fabric reordering,
//   - dropping or duplicating an in-flight message (a faults.Choice
//     branched deterministically, within a configured budget, instead of
//     drawn from an RNG as internal/faults does),
//   - firing an armed resync timer.
//
// Exhaustive search (BFS over world states, deduplicated by a canonical
// state hash) visits every reachable interleaving up to the configured
// bounds; seeded random walks sample unboundedly deep schedules. Invariants
// are checked after every transition and at every quiescent state; a
// violation yields a schedule that replays byte-for-byte (see Token) and
// shrinks to a minimal counterexample (see Shrink).
//
// What is deliberately *not* a choice point: the duration of a topology
// computation. Machine calls are atomic here (Host.HoldCompute is a no-op),
// so the Tc-induced races of the timed implementation — a computation
// completing after further events arrived — are not explored by this
// package; internal/model covers exactly those with its nondeterministic
// computation-completion transitions. The two checkers are complementary.
package explore

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"dgmc/internal/core"
	"dgmc/internal/faults"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// Config describes the system under exploration.
type Config struct {
	// Graph is the network topology. Required, and must be connected.
	Graph *topo.Graph
	// Algorithm computes MC topologies (default route.SPH{}). Replay
	// tokens store it by name, so it must be one of the route.ByName set.
	Algorithm route.Algorithm
	// Kinds maps connection IDs to their MC type (default Symmetric).
	Kinds map[lsa.ConnID]mctree.Kind
	// Resync enables the gap-recovery machinery; armed timers become
	// schedule choice points. Required when MaxDrops > 0 (without it, a
	// dropped LSA makes divergence a modeling artifact, not a bug).
	Resync bool
	// ResyncMaxRounds bounds resync requests per connection per gap
	// (default 8 — small state spaces want small budgets).
	ResyncMaxRounds int
	// MaxDrops and MaxDups budget the faults.Drop / faults.Dup outcomes
	// the explorer may choose across one schedule. Zero disables the
	// corresponding branch.
	MaxDrops int
	MaxDups  int
	// Mutation seeds a known protocol bug (checker self-validation).
	Mutation core.Mutation
}

func (c *Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("explore: Config.Graph is required")
	}
	if !c.Graph.Connected() {
		return fmt.Errorf("explore: initial topology must be connected")
	}
	if c.Algorithm == nil {
		c.Algorithm = route.SPH{}
	}
	if c.ResyncMaxRounds < 0 {
		return fmt.Errorf("explore: negative resync round limit %d", c.ResyncMaxRounds)
	}
	if c.ResyncMaxRounds == 0 {
		c.ResyncMaxRounds = 8
	}
	if c.MaxDrops < 0 || c.MaxDups < 0 {
		return fmt.Errorf("explore: negative fault budget (drops=%d dups=%d)", c.MaxDrops, c.MaxDups)
	}
	if c.MaxDrops > 0 && !c.Resync {
		return fmt.Errorf("explore: MaxDrops > 0 requires Resync (the paper assumes reliable flooding; without gap recovery a dropped LSA diverges by construction)")
	}
	if !c.Mutation.Valid() {
		return fmt.Errorf("explore: unknown mutation %d", c.Mutation)
	}
	return nil
}

// Inject is one scenario event: a local event handed to a switch's
// EventHandler. Events listed for the same switch fire in list order;
// events at different switches are concurrent (all interleavings explored).
type Inject struct {
	Switch topo.SwitchID
	Event  core.LocalEvent
}

// Scenario is the workload to explore.
type Scenario struct {
	Injects []Inject
	// Faults is the ordered fault lane: partition, heal, crash, and
	// restart operations that fire in list order, each interleaving freely
	// with everything else (see faultops.go). Requires Config.Resync —
	// partition and crash recovery are resync machinery.
	Faults []FaultOp
}

func (s *Scenario) validate(g *topo.Graph) error {
	n := g.NumSwitches()
	for i, inj := range s.Injects {
		if inj.Switch < 0 || int(inj.Switch) >= n {
			return fmt.Errorf("explore: inject %d: switch %d out of range [0,%d)", i, inj.Switch, n)
		}
		switch inj.Event.Kind {
		case lsa.Join:
			if inj.Event.Role == 0 {
				return fmt.Errorf("explore: inject %d: join without role", i)
			}
		case lsa.Leave:
		case lsa.Link:
			if _, ok := g.Link(inj.Event.Link.A, inj.Event.Link.B); !ok {
				return fmt.Errorf("explore: inject %d: no link (%d,%d)", i, inj.Event.Link.A, inj.Event.Link.B)
			}
			if inj.Event.Link.A != inj.Switch && inj.Event.Link.B != inj.Switch {
				return fmt.Errorf("explore: inject %d: link event (%d,%d) not incident to detecting switch %d",
					i, inj.Event.Link.A, inj.Event.Link.B, inj.Switch)
			}
		default:
			return fmt.Errorf("explore: inject %d: invalid event kind %d", i, inj.Event.Kind)
		}
	}
	return validateFaults(s.Faults, g)
}

// pendingMsg is one in-flight message: a flooded LSA copy addressed to one
// destination, a unicast resync message, or a self-addressed nudge.
type pendingMsg struct {
	id       int
	to       topo.SwitchID
	origin   topo.SwitchID
	payload  any
	duped    bool // already split once; no further Dup branch
	internal bool // self-nudge: not subject to network faults
}

// timer is an armed resync gap-check at one switch.
type timer struct {
	sw   topo.SwitchID
	conn lsa.ConnID
}

// actionKind discriminates the schedule choice points.
type actionKind uint8

const (
	actInject actionKind = iota
	actDeliver
	actDrop
	actDup
	actFire
	actFault
)

// action is one enabled transition of a world state.
type action struct {
	kind  actionKind
	sw    topo.SwitchID // actInject
	msg   int           // actDeliver/actDrop/actDup: index into pending
	timer int           // actFire: index into timers
	key   []byte        // canonical sort key
}

// World is one global state of the system under exploration: every
// machine's protocol state, the shared fabric graph, and the pending
// action set. Worlds are cloned to branch at choice points.
type World struct {
	cfg Config
	scn Scenario
	n   int

	graph    *topo.Graph
	machines []*core.Machine

	// injectsBySwitch[s] indexes scn.Injects in program order for switch
	// s; injectPos[s] is the next one to fire.
	injectsBySwitch [][]int
	injectPos       []int

	// injectedMembership counts fired Join/Leave injects per connection
	// per originating switch (ground truth for event conservation).
	injectedMembership map[lsa.ConnID][]int

	pending []pendingMsg
	// held parks frames sent across an active partition: the transport's
	// forwarding/retry machinery would deliver them once connectivity
	// returns, so a heal releases them back into pending (see faultops.go).
	// Non-empty only while a split is active.
	held      []pendingMsg
	timers    []timer
	dropsLeft int
	dupsLeft  int
	nextMsgID int
	installs  int

	// Fault-lane state (see faultops.go). side is nil when no partition is
	// active, else side[s] is s's group. ownHigh[conn][x] records the most
	// events origin x had issued at any crash of x — the origin-authority
	// bound must survive the origin forgetting its own counter. crashedEver
	// switches every quiescent check to the lossy standard; crashedOnce
	// waives event conservation per switch.
	faultPos    int
	side        []int
	crashed     []bool
	crashedOnce []bool
	crashedEver bool
	ownHigh     map[lsa.ConnID][]uint32

	tracing bool
	trace   []string
}

// worldHost adapts one machine's runtime effects into pending actions.
type worldHost struct {
	w  *World
	id topo.SwitchID
}

var _ core.Host = (*worldHost)(nil)

// NewWorld builds the initial world state for (cfg, scn).
func NewWorld(cfg Config, scn Scenario) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := scn.validate(cfg.Graph); err != nil {
		return nil, err
	}
	if len(scn.Faults) > 0 && !cfg.Resync {
		return nil, fmt.Errorf("explore: fault operations require Resync (partition and crash recovery are resync machinery)")
	}
	n := cfg.Graph.NumSwitches()
	w := &World{
		cfg:                cfg,
		scn:                scn,
		n:                  n,
		graph:              cfg.Graph.Clone(),
		machines:           make([]*core.Machine, n),
		injectsBySwitch:    make([][]int, n),
		injectPos:          make([]int, n),
		injectedMembership: make(map[lsa.ConnID][]int),
		dropsLeft:          cfg.MaxDrops,
		dupsLeft:           cfg.MaxDups,
		crashed:            make([]bool, n),
		crashedOnce:        make([]bool, n),
		ownHigh:            make(map[lsa.ConnID][]uint32),
	}
	for i, inj := range scn.Injects {
		w.injectsBySwitch[inj.Switch] = append(w.injectsBySwitch[inj.Switch], i)
	}
	for i := 0; i < n; i++ {
		m, err := core.NewMachine(core.MachineConfig{
			ID:              topo.SwitchID(i),
			Graph:           cfg.Graph,
			Algorithm:       cfg.Algorithm,
			Kinds:           cfg.Kinds,
			Resync:          cfg.Resync,
			ResyncMaxRounds: cfg.ResyncMaxRounds,
			Mutation:        cfg.Mutation,
		}, &worldHost{w: w, id: topo.SwitchID(i)})
		if err != nil {
			return nil, err
		}
		w.machines[i] = m
	}
	return w, nil
}

// clone branches the world. Traces are not inherited: clones explore
// silently, and violating schedules are replayed with tracing on.
func (w *World) clone() *World {
	c := &World{
		cfg:             w.cfg,
		scn:             w.scn,
		n:               w.n,
		graph:           w.graph.Clone(),
		machines:        make([]*core.Machine, w.n),
		injectsBySwitch: w.injectsBySwitch, // immutable after NewWorld
		injectPos:       append([]int(nil), w.injectPos...),
		pending:         append([]pendingMsg(nil), w.pending...),
		held:            append([]pendingMsg(nil), w.held...),
		timers:          append([]timer(nil), w.timers...),
		dropsLeft:       w.dropsLeft,
		dupsLeft:        w.dupsLeft,
		nextMsgID:       w.nextMsgID,
		installs:        w.installs,
		faultPos:        w.faultPos,
		crashed:         append([]bool(nil), w.crashed...),
		crashedOnce:     append([]bool(nil), w.crashedOnce...),
		crashedEver:     w.crashedEver,
	}
	if w.side != nil {
		c.side = append([]int(nil), w.side...)
	}
	c.ownHigh = make(map[lsa.ConnID][]uint32, len(w.ownHigh))
	for conn, hw := range w.ownHigh {
		c.ownHigh[conn] = append([]uint32(nil), hw...)
	}
	c.injectedMembership = make(map[lsa.ConnID][]int, len(w.injectedMembership))
	for conn, counts := range w.injectedMembership {
		c.injectedMembership[conn] = append([]int(nil), counts...)
	}
	for i, m := range w.machines {
		c.machines[i] = m.CloneWith(&worldHost{w: c, id: topo.SwitchID(i)})
	}
	return c
}

// encodePayload renders a pending payload canonically (for sort keys and
// state hashing). Every payload the harness enqueues is covered.
func encodePayload(p any) []byte {
	switch v := p.(type) {
	case *lsa.MC:
		return append([]byte{'M'}, v.Marshal()...)
	case *lsa.NonMC:
		return append([]byte{'L'}, v.Marshal()...)
	case *lsa.ResyncRequest:
		return append([]byte{'R'}, v.Marshal()...)
	case *lsa.ResyncResponse:
		return append([]byte{'S'}, v.Marshal()...)
	case core.ResyncNudge:
		return binary.BigEndian.AppendUint32([]byte{'N'}, uint32(v.Conn))
	default:
		return []byte{'?'}
	}
}

func (w *World) msgKey(kind byte, pm *pendingMsg) []byte {
	key := []byte{kind}
	key = binary.BigEndian.AppendUint32(key, uint32(int32(pm.to)))
	key = append(key, encodePayload(pm.payload)...)
	// Tie-break identical messages (dup copies) by creation order so the
	// enumeration is a total order.
	key = binary.BigEndian.AppendUint32(key, uint32(pm.id))
	return key
}

// enabled enumerates the world's enabled actions in a canonical, replay-
// stable order: injects by switch, then per-message outcome branches
// (deliver, then drop, then dup — the faults.Outcomes order), then timers.
func (w *World) enabled() []action {
	// Key leading bytes order the canonical enumeration: deliveries (0)
	// before faults (1, 2) before timers (3) before injects (4). Choice 0
	// therefore drains in-flight traffic before injecting further events,
	// so the all-zero schedule degrades to fault-free, near-sequential
	// execution — the natural base case for shrinking.
	var out []action
	for i := range w.pending {
		pm := &w.pending[i]
		for _, o := range faults.Choices(
			!pm.internal && w.dropsLeft > 0,
			!pm.internal && w.dupsLeft > 0 && !pm.duped,
		) {
			switch o {
			case faults.Deliver:
				out = append(out, action{kind: actDeliver, msg: i, key: w.msgKey(0, pm)})
			case faults.Drop:
				out = append(out, action{kind: actDrop, msg: i, key: w.msgKey(1, pm)})
			case faults.Dup:
				out = append(out, action{kind: actDup, msg: i, key: w.msgKey(2, pm)})
			}
		}
	}
	for i, t := range w.timers {
		key := binary.BigEndian.AppendUint32([]byte{3}, uint32(int32(t.sw)))
		key = binary.BigEndian.AppendUint32(key, uint32(t.conn))
		key = binary.BigEndian.AppendUint32(key, uint32(i))
		out = append(out, action{kind: actFire, timer: i, key: key})
	}
	for s := 0; s < w.n; s++ {
		// A dead switch accepts no local events; its remaining injects
		// resume after the restart (the fault lane guarantees one comes).
		if w.injectPos[s] < len(w.injectsBySwitch[s]) && !w.crashed[s] {
			key := binary.BigEndian.AppendUint32([]byte{4}, uint32(s))
			out = append(out, action{kind: actInject, sw: topo.SwitchID(s), key: key})
		}
	}
	if w.faultPos < len(w.scn.Faults) {
		out = append(out, action{kind: actFault, key: []byte{5}})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// describe renders an action for counterexample traces.
func (w *World) describe(a action) string {
	switch a.kind {
	case actInject:
		idx := w.injectsBySwitch[a.sw][w.injectPos[a.sw]]
		inj := w.scn.Injects[idx]
		if inj.Event.Kind == lsa.Link {
			return fmt.Sprintf("inject %s detected at switch %d", inj.Event.Link, inj.Switch)
		}
		return fmt.Sprintf("inject %s at switch %d (conn %d)", inj.Event.Kind, inj.Switch, inj.Event.Conn)
	case actDeliver:
		pm := w.pending[a.msg]
		return fmt.Sprintf("deliver %s -> switch %d", payloadString(pm.payload), pm.to)
	case actDrop:
		pm := w.pending[a.msg]
		return fmt.Sprintf("drop %s -> switch %d", payloadString(pm.payload), pm.to)
	case actDup:
		pm := w.pending[a.msg]
		return fmt.Sprintf("dup %s -> switch %d", payloadString(pm.payload), pm.to)
	case actFire:
		t := w.timers[a.timer]
		return fmt.Sprintf("fire resync timer at switch %d (conn %d)", t.sw, t.conn)
	case actFault:
		return w.scn.Faults[w.faultPos].String()
	default:
		return fmt.Sprintf("action(%d)", a.kind)
	}
}

func payloadString(p any) string {
	switch v := p.(type) {
	case *lsa.MC:
		return v.String()
	case *lsa.NonMC:
		return v.String()
	case *lsa.ResyncRequest:
		return fmt.Sprintf("resync-req{conn %d from %d R=%s}", v.Conn, v.From, v.R)
	case *lsa.ResyncResponse:
		return fmt.Sprintf("resync-resp{conn %d from %d, %d LSAs}", v.Conn, v.From, len(v.Batch))
	case core.ResyncNudge:
		return fmt.Sprintf("self-nudge{conn %d}", v.Conn)
	default:
		return fmt.Sprintf("%v", p)
	}
}

// applyIndex resolves the i-th enabled action (clamped, so every integer
// is a valid choice — the property Shrink and random walks rely on) and
// applies it. It reports the applied action and false when the world is
// quiescent (nothing enabled).
func (w *World) applyIndex(i int) (action, bool) {
	acts := w.enabled()
	if len(acts) == 0 {
		return action{}, false
	}
	a := acts[((i%len(acts))+len(acts))%len(acts)]
	if w.tracing {
		w.trace = append(w.trace, fmt.Sprintf("step %3d: %s", len(w.trace), w.describe(a)))
	}
	w.apply(a)
	return a, true
}

func (w *World) apply(a action) {
	switch a.kind {
	case actInject:
		idx := w.injectsBySwitch[a.sw][w.injectPos[a.sw]]
		w.injectPos[a.sw]++
		inj := w.scn.Injects[idx]
		if inj.Event.Kind == lsa.Join || inj.Event.Kind == lsa.Leave {
			counts := w.injectedMembership[inj.Event.Conn]
			if counts == nil {
				counts = make([]int, w.n)
				w.injectedMembership[inj.Event.Conn] = counts
			}
			counts[inj.Switch]++
		}
		w.machines[a.sw].HandleLocalEvent(nil, inj.Event)
	case actDeliver:
		pm := w.pending[a.msg]
		w.removePending(a.msg)
		w.machines[pm.to].ReceiveBatch(nil, []any{pm.payload})
	case actDrop:
		w.removePending(a.msg)
		w.dropsLeft--
	case actDup:
		w.pending[a.msg].duped = true
		cp := w.pending[a.msg]
		cp.id = w.nextMsgID
		w.nextMsgID++
		w.pending = append(w.pending, cp)
		w.dupsLeft--
	case actFire:
		t := w.timers[a.timer]
		w.timers = append(w.timers[:a.timer], w.timers[a.timer+1:]...)
		w.machines[t.sw].ResyncFired(t.conn)
	case actFault:
		w.applyFault()
	}
}

func (w *World) removePending(i int) {
	w.pending = append(w.pending[:i], w.pending[i+1:]...)
}

// Quiescent reports whether no action is enabled.
func (w *World) Quiescent() bool { return len(w.enabled()) == 0 }

// Machine returns switch s's machine (read-only inspection).
func (w *World) Machine(s topo.SwitchID) *core.Machine { return w.machines[s] }

// Trace returns the recorded trace (tracing worlds only).
func (w *World) Trace() []string { return w.trace }

// hash returns the canonical state digest used for search deduplication.
// In-flight messages hash as a multiset (two interleavings that produced
// the same pending messages in different orders are the same state).
func (w *World) hash() [32]byte {
	var buf []byte
	for _, m := range w.machines {
		buf = m.AppendState(buf)
	}
	for _, l := range w.graph.Links() {
		if l.Down {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = appendMsgMultiset(buf, w.pending)
	buf = appendMsgMultiset(buf, w.held)
	ts := append([]timer(nil), w.timers...)
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].sw != ts[j].sw {
			return ts[i].sw < ts[j].sw
		}
		return ts[i].conn < ts[j].conn
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ts)))
	for _, t := range ts {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(t.sw)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.conn))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(w.dropsLeft))
	buf = binary.BigEndian.AppendUint32(buf, uint32(w.dupsLeft))
	for _, p := range w.injectPos {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	// The fault lane is sequential, so side/crashed/crashedOnce are pure
	// functions of faultPos; hashing the position covers them. (ownHigh is
	// path-dependent but only relaxes an invariant bound — excluding it
	// from dedup at worst re-checks a state against a looser bound.)
	buf = binary.BigEndian.AppendUint32(buf, uint32(w.faultPos))
	return sha256.Sum256(buf)
}

// appendMsgMultiset appends msgs to buf as an order-independent multiset
// (two interleavings that produced the same messages in different orders
// hash identically).
func appendMsgMultiset(buf []byte, msgs []pendingMsg) []byte {
	encs := make([][]byte, 0, len(msgs))
	for i := range msgs {
		pm := &msgs[i]
		enc := binary.BigEndian.AppendUint32(nil, uint32(int32(pm.to)))
		if pm.duped {
			enc = append(enc, 1)
		} else {
			enc = append(enc, 0)
		}
		if pm.internal {
			enc = append(enc, 1)
		} else {
			enc = append(enc, 0)
		}
		enc = append(enc, encodePayload(pm.payload)...)
		encs = append(encs, enc)
	}
	sort.Slice(encs, func(i, j int) bool {
		a, b := encs[i], encs[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(encs)))
	for _, enc := range encs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

// --- Host implementation ---

// FloodMC implements core.Host: one pending delivery per switch currently
// reachable from the origin (flooding cannot cross failed links).
func (h *worldHost) FloodMC(m *lsa.MC) { h.w.flood(h.id, m) }

// FloodNonMC implements core.Host.
func (h *worldHost) FloodNonMC(nm *lsa.NonMC) { h.w.flood(h.id, nm) }

func (w *World) flood(src topo.SwitchID, payload any) {
	comp := append([]topo.SwitchID(nil), w.graph.Component(src)...)
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	for _, dst := range comp {
		if dst == src {
			continue
		}
		// Copies to a dead switch are lost with it. Cross-partition copies
		// are parked until the heal: under hop-by-hop flooding the frame
		// reaches the boundary and is forwarded onward once connectivity
		// returns (see faultops.go).
		if w.crashed[dst] {
			continue
		}
		pm := pendingMsg{id: w.nextMsgID, to: dst, origin: src, payload: payload}
		w.nextMsgID++
		if w.partitioned(src, dst) {
			w.held = append(w.held, pm)
		} else {
			w.pending = append(w.pending, pm)
		}
	}
}

// SendUnicast implements core.Host. Unreachable destinations swallow the
// message, like a fabric with no route.
func (h *worldHost) SendUnicast(to topo.SwitchID, payload any) {
	if h.w.crashed[to] {
		return
	}
	reachable := false
	for _, s := range h.w.graph.Component(h.id) {
		if s == to {
			reachable = true
			break
		}
	}
	if !reachable {
		return
	}
	pm := pendingMsg{id: h.w.nextMsgID, to: to, origin: h.id, payload: payload}
	h.w.nextMsgID++
	// Cross-partition unicasts park until the heal, like flooded copies.
	if h.w.partitioned(h.id, to) {
		h.w.held = append(h.w.held, pm)
	} else {
		h.w.pending = append(h.w.pending, pm)
	}
}

// HoldCompute implements core.Host: computations are atomic under
// exploration (see the package comment for why).
func (h *worldHost) HoldCompute(any) {}

// PendingMC implements core.Host: an MC LSA for conn is "queued" when an
// in-flight flooded copy is addressed to this switch.
func (h *worldHost) PendingMC(conn lsa.ConnID) bool {
	for i := range h.w.pending {
		pm := &h.w.pending[i]
		if pm.to != h.id {
			continue
		}
		if m, ok := pm.payload.(*lsa.MC); ok && m.Conn == conn {
			return true
		}
	}
	return false
}

// Neighbors implements core.Host.
func (h *worldHost) Neighbors() []topo.SwitchID { return h.w.graph.Neighbors(h.id) }

// FabricLinkChanged implements core.Host.
func (h *worldHost) FabricLinkChanged(change lsa.LinkChange) {
	if err := h.w.graph.SetLinkDown(change.A, change.B, change.Down); err != nil && h.w.tracing {
		h.w.trace = append(h.w.trace, fmt.Sprintf("  [%d] fabric: %v", h.id, err))
	}
}

// ArmResync implements core.Host: the firing instant becomes a choice
// point.
func (h *worldHost) ArmResync(conn lsa.ConnID) {
	h.w.timers = append(h.w.timers, timer{sw: h.id, conn: conn})
}

// SelfNudge implements core.Host: a pending self-delivery, exempt from
// network faults.
func (h *worldHost) SelfNudge(conn lsa.ConnID) {
	h.w.pending = append(h.w.pending, pendingMsg{
		id: h.w.nextMsgID, to: h.id, origin: h.id,
		payload: core.ResyncNudge{Conn: conn}, internal: true,
	})
	h.w.nextMsgID++
}

// NoteInstall implements core.Host.
func (h *worldHost) NoteInstall() { h.w.installs++ }

// ForwardingChanged implements core.Host. The checker explores control-plane
// interleavings only; there is no FIB to recompile.
func (h *worldHost) ForwardingChanged(lsa.ConnID) {}

// Trace implements core.Host.
func (h *worldHost) TraceEnabled() bool { return h.w.tracing }

func (h *worldHost) Trace(kind core.TraceKind, chain core.ChainID, conn lsa.ConnID, format string, args ...any) {
	if !h.w.tracing {
		return
	}
	h.w.trace = append(h.w.trace,
		fmt.Sprintf("  [switch %d conn %d chain %s] %s: %s", h.id, conn, chain, kind, fmt.Sprintf(format, args...)))
}
