package explore

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// Guided forward search and fault-oriented backward search (Helmy et al.,
// "Systematic Testing of Multicast Routing Protocols", adapted to the
// D-GMC world model).
//
// Blind BFS spends its state budget uniformly near the root: on a
// 6-switch fabric with multiple membership events every frontier level
// multiplies by the fan-out of in-flight deliveries, and quiescent states
// — where the convergence invariants live — are never reached. The two
// searches here spend the same budget non-uniformly:
//
//   - Guided (forward): best-first over world states, ranked by an
//     interestingness score — novel qualitative stamp shapes, weighted
//     suspect-state signals (suspect.go), fault-lane and inject progress,
//     and deltas of the recovery counters (reconciles, replays, resync
//     re-arms) against the parent state. Novel or suspicious states are
//     additionally *drain-probed*: a clone runs deterministically to
//     quiescence and the quiescent invariants are checked there, which
//     converts quiescent-only violations (divergent trees at settled
//     stamps) into properties detectable at any depth. Probes run two
//     deterministic completion variants — the canonical drain and a
//     pseudo-shuffled one — so a violation hiding behind one specific
//     completion order is not masked by the canonical drain repairing it.
//
//   - Backward: a two-phase fault-oriented search. Phase one runs the
//     guided sweep, harvesting the highest-scoring suspect states (one
//     per qualitative shape) and their reaching schedules. Phase two
//     ddmin-minimizes each reaching schedule against the suspect
//     signature (shrinkWith + runPrefix — the same machinery that shrinks
//     counterexamples, with "still violates" replaced by "still reaches
//     the suspect state"), then exhaustively explores the bounded
//     neighborhood around each minimized suspect, drain-probing every new
//     state. Suspects that never escalate into violations are reported as
//     minimized, token-replayable SuspectReports.
//
// Both searches are deterministic given Options.Seed: the frontier is
// ordered by (priority desc, insertion seq asc), and the seed only
// perturbs priorities through a hash-derived jitter.

// Scoring weights. Suspicion dominates (it is the violation-proximity
// signal), novelty breaks plateaus, progress pulls schedules through the
// inject/fault lanes toward quiescence, metric deltas reward transitions
// that exercise recovery machinery, and the depth penalty keeps the
// search from diving one corridor forever.
const (
	weightSuspicion = 8
	weightNovelty   = 64
	weightProgress  = 4
	weightMetric    = 2
	weightDepth     = 1

	// jitterRange scales priorities so the seed-derived jitter reorders
	// only near-equal scores.
	jitterRange = 4
)

// probeVariants are the deterministic completion policies of a drain
// probe: the canonical drain (always the first enabled action) and a
// pseudo-shuffled one (a large prime modulo the enabled count walks the
// action set in a schedule-length-dependent pattern). Both are plain
// schedule choices, so a probed violation's schedule replays and shrinks
// through the ordinary machinery.
var probeVariants = [2]int{0, 104729}

// guidedNode is one frontier state.
type guidedNode struct {
	w        *World
	sched    []int
	hash     [32]byte
	score    int
	priority int64
	seq      int
	metric   uint64
}

// frontier is a max-heap by (priority desc, seq asc).
type frontier []*guidedNode

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].priority != f[j].priority {
		return f[i].priority > f[j].priority
	}
	return f[i].seq < f[j].seq
}
func (f frontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)   { *f = append(*f, x.(*guidedNode)) }
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	node := old[n-1]
	old[n-1] = nil
	*f = old[:n-1]
	return node
}

// suspectRec is a harvested suspect state (backward search phase one).
type suspectRec struct {
	sched  []int
	counts suspectCounts
	score  int
	seq    int
	shape  string
}

type guidedSearch struct {
	cfg     Config
	scn     Scenario
	opt     Options
	res     *Result
	visited map[[32]byte]bool
	pq      frontier
	seq     int

	// harvest, when non-nil, collects the best suspect state per
	// qualitative shape (backward search phase one).
	harvest map[string]*suspectRec
}

func newGuidedSearch(cfg Config, scn Scenario, opt Options) (*guidedSearch, error) {
	opt.fill()
	if _, err := NewWorld(cfg, scn); err != nil {
		return nil, err
	}
	return &guidedSearch{
		cfg:     cfg,
		scn:     scn,
		opt:     opt,
		res:     &Result{Stats: Stats{Coverage: newCoverage()}},
		visited: make(map[[32]byte]bool),
	}, nil
}

// metricSum folds the recovery/consistency counters whose growth marks a
// transition as exercising interesting machinery.
func metricSum(w *World) uint64 {
	var total uint64
	for _, m := range w.machines {
		mt := m.Metrics()
		total += mt.Reconciles + mt.Replays + mt.ResyncRearms +
			mt.ResyncRequests + mt.OutOfOrderLSAs + mt.Withdrawn
	}
	return total
}

// progress measures how far the world has advanced through the scenario's
// inject and fault lanes.
func progress(w *World) int {
	p := 0
	for _, pos := range w.injectPos {
		p += pos
	}
	return p + 2*w.faultPos
}

// highSuspect reports whether counts include a kind weighty enough to
// deserve a drain probe on its own.
func highSuspect(sc *suspectCounts) bool {
	return sc[SuspectCommitAhead] > 0 || sc[SuspectOrphanedProposal] > 0 ||
		sc[SuspectSettledDivergence] > 0 || sc[SuspectHealResidue] > 0
}

// jitter derives a deterministic seed-dependent perturbation from a state
// hash, so different seeds explore near-equal-priority states in
// different orders without breaking determinism for a fixed seed.
func jitter(h [32]byte, seed int64) int64 {
	v := binary.LittleEndian.Uint64(h[:8]) ^ uint64(seed)*0x9e3779b97f4a7c15
	return int64(v % jitterRange)
}

// noteCoverage records a state in the coverage map and reports whether
// its qualitative shape is new.
func (g *guidedSearch) noteCoverage(w *World, sc *suspectCounts, shape string) (novel bool) {
	cov := &g.res.Stats.Coverage
	novel = cov.StampShapes[shape] == 0
	cov.StampShapes[shape]++
	for k := 0; k < int(numSuspectKinds); k++ {
		if sc[k] > 0 {
			cov.SuspectKinds[SuspectKind(k).String()]++
		}
	}
	if w.faultPos > cov.FaultDepth {
		cov.FaultDepth = w.faultPos
	}
	return novel
}

// push scores a (deduplicated, checked) state and adds it to the
// frontier, harvesting it as a suspect when backward search asks for
// that. parentMetric is the parent state's metricSum.
func (g *guidedSearch) push(w *World, sched []int, h [32]byte, parentMetric uint64) {
	sc := w.suspects()
	shape := w.stampShape()
	novel := g.noteCoverage(w, &sc, shape)
	metric := metricSum(w)
	score := weightSuspicion*sc.score() + weightProgress*progress(w) +
		weightMetric*int(metric-parentMetric) - weightDepth*len(sched)
	if novel {
		score += weightNovelty
	}
	if g.harvest != nil && sc.any(g.opt.SuspectKinds) {
		rec := g.harvest[shape]
		if rec == nil || sc.score() > rec.score {
			g.harvest[shape] = &suspectRec{
				sched:  append([]int(nil), sched...),
				counts: sc,
				score:  sc.score(),
				seq:    g.seq,
				shape:  shape,
			}
		}
	}
	if novel || highSuspect(&sc) {
		g.probe(w, sched)
	}
	if g.res.Violation != nil {
		return
	}
	node := &guidedNode{
		w:        w,
		sched:    sched,
		hash:     h,
		score:    score,
		priority: int64(score)*jitterRange + jitter(h, g.opt.Seed),
		seq:      g.seq,
		metric:   metric,
	}
	g.seq++
	heap.Push(&g.pq, node)
	if len(g.pq) > 2*g.opt.Frontier {
		g.trimFrontier()
	}
}

// trimFrontier discards the lowest-priority half of an overfull frontier
// (beam behavior): guided search trades completeness for depth, and the
// Truncated flag records the trade.
func (g *guidedSearch) trimFrontier() {
	nodes := []*guidedNode(g.pq)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].priority != nodes[j].priority {
			return nodes[i].priority > nodes[j].priority
		}
		return nodes[i].seq < nodes[j].seq
	})
	for i := g.opt.Frontier; i < len(nodes); i++ {
		nodes[i] = nil
	}
	g.pq = frontier(nodes[:g.opt.Frontier:g.opt.Frontier])
	heap.Init(&g.pq)
	g.res.Stats.Truncated = true
}

// probe clones w, drains it to quiescence under each deterministic
// completion variant, and checks the per-step and quiescent invariants
// along the way. A violation becomes the search result (with the explicit
// drain tail appended to the schedule, then shrunk), which is what makes
// quiescent-only violations detectable from any frontier depth.
func (g *guidedSearch) probe(w *World, sched []int) {
	g.res.Stats.Probes++
	for _, variant := range probeVariants {
		pw := w.clone()
		steps := 0
		var verr error
		quiescentV := false
		for {
			if g.res.Stats.spent() >= g.opt.Budget {
				g.res.Stats.Truncated = true
				return
			}
			if steps > autoCompleteCap {
				return // livelocked drain: nothing to report from a probe
			}
			if _, ok := pw.applyIndex(variant); !ok {
				break
			}
			steps++
			g.res.Stats.ProbeSteps++
			if err := pw.checkStep(); err != nil {
				verr = err
				break
			}
		}
		if verr == nil {
			g.res.Stats.Quiescent++
			if err := pw.checkQuiescent(); err != nil {
				verr = err
				quiescentV = true
			}
		}
		if verr != nil {
			full := append([]int(nil), sched...)
			for k := 0; k < steps; k++ {
				full = append(full, variant)
			}
			shrunk := Shrink(g.cfg, g.scn, full)
			g.res.Violation = buildViolation(g.cfg, g.scn, shrunk, verr, quiescentV)
			return
		}
	}
}

// expand pops the best frontier state and branches it. It reports false
// when the search is over (frontier empty, budget gone, or violation
// found).
func (g *guidedSearch) expand() bool {
	if g.res.Violation != nil || len(g.pq) == 0 {
		return false
	}
	if g.res.Stats.spent() >= g.opt.Budget {
		g.res.Stats.Truncated = true
		return false
	}
	node := heap.Pop(&g.pq).(*guidedNode)
	if g.opt.expandHook != nil {
		g.opt.expandHook(len(node.sched), node.score, node.hash)
	}
	if len(node.sched) > g.res.Stats.MaxDepthSeen {
		g.res.Stats.MaxDepthSeen = len(node.sched)
	}
	acts := node.w.enabled()
	if len(acts) == 0 {
		g.res.Stats.Quiescent++
		if err := node.w.checkQuiescent(); err != nil {
			shrunk := Shrink(g.cfg, g.scn, node.sched)
			g.res.Violation = buildViolation(g.cfg, g.scn, shrunk, err, true)
			return false
		}
		return true
	}
	for i := range acts {
		if g.res.Stats.spent() >= g.opt.Budget {
			g.res.Stats.Truncated = true
			return false
		}
		child := node.w.clone()
		child.apply(acts[i])
		g.res.Stats.Transitions++
		sched := append(append([]int(nil), node.sched...), i)
		if err := child.checkStep(); err != nil {
			shrunk := Shrink(g.cfg, g.scn, sched)
			g.res.Violation = buildViolation(g.cfg, g.scn, shrunk, err, false)
			return false
		}
		h := child.hash()
		if g.visited[h] {
			continue
		}
		g.visited[h] = true
		g.push(child, sched, h, node.metric)
		if g.res.Violation != nil {
			return false
		}
	}
	g.res.Stats.States = len(g.visited)
	if g.opt.Progress != nil && g.res.Stats.States%1000 == 0 {
		g.opt.Progress(g.res.Stats)
	}
	return true
}

// run seeds the frontier with the initial world and expands until the
// frontier empties, the budget runs out, or a violation is found.
func (g *guidedSearch) run() error {
	root, err := NewWorld(g.cfg, g.scn)
	if err != nil {
		return err
	}
	h := root.hash()
	g.visited[h] = true
	g.push(root, nil, h, metricSum(root))
	for g.expand() {
	}
	g.res.Stats.States = len(g.visited)
	return nil
}

// Guided is the guided forward search: best-first exploration of the
// (cfg, scn) state space under a transition budget, with drain probes
// checking quiescent invariants from every novel or suspicious state.
// Deterministic given opt.Seed.
func Guided(cfg Config, scn Scenario, opt Options) (*Result, error) {
	g, err := newGuidedSearch(cfg, scn, opt)
	if err != nil {
		return nil, err
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	return g.res, nil
}

// Backward is the fault-oriented backward search: harvest suspect states
// with a guided forward sweep, minimize the schedules that reach them,
// then exhaustively explore each minimized suspect's neighborhood for
// real violations. Suspects that do not escalate are reported (minimized
// and token-replayable) in Result.Suspects. Deterministic given opt.Seed.
func Backward(cfg Config, scn Scenario, opt Options) (*Result, error) {
	g, err := newGuidedSearch(cfg, scn, opt)
	if err != nil {
		return nil, err
	}
	// Phase one gets half the budget; the harvest keeps the best suspect
	// per qualitative shape so near-duplicates along one corridor do not
	// crowd out distinct situations.
	fullBudget := g.opt.Budget
	g.opt.Budget = fullBudget / 2
	g.harvest = make(map[string]*suspectRec)
	if err := g.run(); err != nil {
		return nil, err
	}
	g.res.Stats.SuspectsFound = len(g.harvest)
	g.opt.Budget = fullBudget
	if g.res.Violation != nil {
		return g.res, nil
	}

	recs := make([]*suspectRec, 0, len(g.harvest))
	for _, rec := range g.harvest {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].score != recs[j].score {
			return recs[i].score > recs[j].score
		}
		return recs[i].seq < recs[j].seq
	})
	if len(recs) > g.opt.TopSuspects {
		recs = recs[:g.opt.TopSuspects]
	}

	reported := make(map[string]bool)
	for i, rec := range recs {
		if g.res.Stats.spent() >= fullBudget {
			g.res.Stats.Truncated = true
			break
		}
		// Slice the remaining budget evenly across the suspects still to
		// be explored, so one dense neighborhood cannot starve the rest of
		// the report.
		g.opt.Budget = g.res.Stats.spent() + (fullBudget-g.res.Stats.spent())/(len(recs)-i)
		minSched := g.minimizeSuspect(rec)
		// Distinct harvested shapes often minimize to the same canonical
		// prefix; one report (and one neighborhood sweep) per prefix.
		key := fmt.Sprint(minSched)
		if reported[key] {
			continue
		}
		reported[key] = true
		report := SuspectReport{
			Score:    rec.score,
			Schedule: minSched,
		}
		for k := 0; k < int(numSuspectKinds); k++ {
			if rec.counts[k] > 0 {
				report.Kinds = append(report.Kinds, SuspectKind(k).String())
			}
		}
		if tok, err := EncodeToken(g.cfg, g.scn, minSched); err == nil {
			report.Token = tok
		}
		g.res.Suspects = append(g.res.Suspects, report)
		if err := g.neighborhood(minSched); err != nil {
			return nil, err
		}
		if g.res.Violation != nil {
			g.res.Suspects = nil
			return g.res, nil
		}
	}
	return g.res, nil
}

// minimizeSuspect ddmin-minimizes the schedule reaching a suspect state:
// the kept predicate is "the prefix still reaches a state covering the
// suspect signature" instead of "the run still violates".
func (g *guidedSearch) minimizeSuspect(rec *suspectRec) []int {
	return shrinkWith(rec.sched, func(s []int) bool {
		w, err := runPrefix(g.cfg, g.scn, s)
		if err != nil {
			return false
		}
		sc := w.suspects()
		return sc.covers(&rec.counts)
	})
}

// neighborhood exhaustively explores the bounded region around a
// minimized suspect prefix, drain-probing every new state — the
// "backward" half of fault-oriented search: having derived how to reach
// the suspect cheaply, look for the orderings near it that turn a
// near-violation into a real one.
func (g *guidedSearch) neighborhood(prefix []int) error {
	w0, err := runPrefix(g.cfg, g.scn, prefix)
	if err != nil {
		return err
	}
	type nbNode struct {
		w     *World
		delta []int
	}
	queue := []nbNode{{w: w0}}
	h0 := w0.hash()
	if !g.visited[h0] {
		g.visited[h0] = true
	}
	for len(queue) > 0 && g.res.Violation == nil {
		node := queue[0]
		queue = queue[1:]
		sched := append(append([]int(nil), prefix...), node.delta...)
		if g.opt.expandHook != nil {
			g.opt.expandHook(len(sched), -1, node.w.hash())
		}
		acts := node.w.enabled()
		if len(acts) == 0 {
			g.res.Stats.Quiescent++
			if err := node.w.checkQuiescent(); err != nil {
				shrunk := Shrink(g.cfg, g.scn, sched)
				g.res.Violation = buildViolation(g.cfg, g.scn, shrunk, err, true)
				return nil
			}
			continue
		}
		if len(node.delta) >= g.opt.BackDepth {
			continue
		}
		for i := range acts {
			if g.res.Stats.spent() >= g.opt.Budget {
				g.res.Stats.Truncated = true
				return nil
			}
			child := node.w.clone()
			child.apply(acts[i])
			g.res.Stats.Transitions++
			delta := append(append([]int(nil), node.delta...), i)
			csched := append(append([]int(nil), prefix...), delta...)
			if err := child.checkStep(); err != nil {
				shrunk := Shrink(g.cfg, g.scn, csched)
				g.res.Violation = buildViolation(g.cfg, g.scn, shrunk, err, false)
				return nil
			}
			h := child.hash()
			if g.visited[h] {
				continue
			}
			g.visited[h] = true
			sc := child.suspects()
			shape := child.stampShape()
			g.noteCoverage(child, &sc, shape)
			g.probe(child, csched)
			if g.res.Violation != nil {
				return nil
			}
			queue = append(queue, nbNode{w: child, delta: delta})
		}
		g.res.Stats.States = len(g.visited)
	}
	return nil
}
