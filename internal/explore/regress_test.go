package explore

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCounterexampleRegression replays every archived schedule token in
// testdata/corpus.txt and asserts its recorded verdict: violation tokens
// must still reproduce an invariant violation, clean tokens must still
// converge cleanly. The corpus is the memory of the checker — every
// counterexample the searches have found (shrunk, across token versions)
// plus clean witnesses guarding against false alarms — so a protocol or
// checker change that silently alters any of these outcomes fails here
// first, with a replayable token in hand.
func TestCounterexampleRegression(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "corpus.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	versions := map[string]bool{}
	entries := 0
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("corpus.txt:%d: want 3 fields, got %d", lineNo, len(fields))
		}
		name, verdict, token := fields[0], fields[1], fields[2]
		if verdict != "violation" && verdict != "clean" {
			t.Fatalf("corpus.txt:%d: unknown verdict %q", lineNo, verdict)
		}
		if seen[name] {
			t.Fatalf("corpus.txt:%d: duplicate entry %q", lineNo, name)
		}
		seen[name] = true
		entries++
		versions[token[:strings.Index(token, ":")]] = true

		t.Run(name, func(t *testing.T) {
			cfg, scn, sched, err := DecodeToken(token)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			_, v, err := Replay(cfg, scn, sched)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			switch verdict {
			case "violation":
				if v == nil {
					t.Fatal("archived counterexample no longer violates — the bug it pinned has moved")
				}
				if len(v.Trace) == 0 {
					t.Fatal("replay produced no trace")
				}
			case "clean":
				if v != nil {
					t.Fatalf("archived clean witness now violates: %v", v.Err)
				}
			}
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if entries < 6 {
		t.Fatalf("corpus shrank to %d entries", entries)
	}
	if !versions["dgmc-sched-v1"] || !versions["dgmc-sched-v2"] {
		t.Fatalf("corpus must cover both token versions, has %v", versions)
	}
}
