package explore

import (
	"strings"
	"testing"

	"dgmc/internal/core"
)

// TestMutationCorpus is the corpus table gate: every seeded mutation the
// checker knows must be caught on the 6-switch gate scenario within the
// CI budget, and the mutation-free run of the same scenario must stay
// clean. This is the checker-validation loop — a mutation nobody can
// catch is dead weight, and a checker that alarms on the correct
// protocol is worse than none.
func TestMutationCorpus(t *testing.T) {
	cases := []struct {
		mutation core.Mutation
		caught   bool
		// errWant is a substring the violation must mention (empty for
		// clean rows). It pins each mutation to the failure class it was
		// seeded to produce, not just "something went wrong".
		errWant string
	}{
		{core.MutationNone, false, ""},
		{core.MutationAcceptStaleProposal, true, "diverge"},
		{core.MutationIgnoreEventOrder, true, "diverge"},
		{core.MutationUncappedPseudoProposal, true, "diverge"},
	}
	// The table must cover the whole corpus: a mutation added to core
	// without a row here fails the test rather than silently shipping
	// unvalidated.
	if len(cases) != len(core.Mutations()) {
		t.Fatalf("corpus table covers %d mutations, core defines %d", len(cases), len(core.Mutations()))
	}
	for _, tc := range cases {
		t.Run(tc.mutation.String(), func(t *testing.T) {
			cfg, scn := gate6(t)
			cfg.Mutation = tc.mutation
			res, err := Guided(cfg, scn, Options{Budget: gateBudget})
			if err != nil {
				t.Fatal(err)
			}
			caught := res.Violation != nil
			if caught != tc.caught {
				if res.Violation != nil {
					t.Fatalf("mutation %v: caught=%v want %v: %v", tc.mutation, caught, tc.caught, res.Violation.Err)
				}
				t.Fatalf("mutation %v: caught=%v want %v; stats %+v", tc.mutation, caught, tc.caught, res.Stats)
			}
			if caught && !strings.Contains(res.Violation.Err.Error(), tc.errWant) {
				t.Fatalf("mutation %v: violation %q does not mention %q", tc.mutation, res.Violation.Err, tc.errWant)
			}
		})
	}
}

// TestMutationRegistry pins the mutation name registry: String and
// ParseMutation must round-trip for every defined mutation, unknown
// names must be rejected, and out-of-range values must be invalid.
func TestMutationRegistry(t *testing.T) {
	all := core.Mutations()
	if len(all) < 4 {
		t.Fatalf("mutation corpus shrank to %d entries", len(all))
	}
	seen := map[string]bool{}
	for _, mu := range all {
		if !mu.Valid() {
			t.Fatalf("Mutations() returned invalid %v", mu)
		}
		name := mu.String()
		if seen[name] {
			t.Fatalf("duplicate mutation name %q", name)
		}
		seen[name] = true
		back, err := core.ParseMutation(name)
		if err != nil {
			t.Fatalf("ParseMutation(%q): %v", name, err)
		}
		if back != mu {
			t.Fatalf("ParseMutation(%q) = %v, want %v", name, back, mu)
		}
	}
	if _, err := core.ParseMutation("no-such-mutation"); err == nil {
		t.Fatal("ParseMutation accepted an unknown name")
	}
	if core.Mutation(99).Valid() {
		t.Fatal("Mutation(99) claims to be valid")
	}
}
