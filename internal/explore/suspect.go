package explore

import (
	"fmt"
	"sort"
	"strings"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// Suspect states are the pivot of fault-oriented search (Helmy et al.,
// "Systematic Testing of Multicast Routing Protocols"): instead of asking
// "does any reachable state violate an invariant?" — which blind BFS can
// only answer near the root of a multi-event state space — ask "which
// reachable states *look like* the precursor of a violation?", minimize
// the schedules that reach them, and search outward from there. A suspect
// is not a bug: every kind below occurs transiently in correct runs. What
// makes it worth chasing is that every known violation class passes
// through one of them on its way to a bad quiescent state.

// SuspectKind classifies a stamp-invariant near-violation.
type SuspectKind uint8

const (
	// SuspectREDivergence: some switch's R trails its E — it knows events
	// exist that it has not received. The precursor of every lost-flood
	// and wedged-recovery violation.
	SuspectREDivergence SuspectKind = iota
	// SuspectCommitLag: R has caught up with E but C trails R on a live
	// connection — events all arrived, the proposal that should cover
	// them did not. The precursor of proposal-loss divergence.
	SuspectCommitLag
	// SuspectCommitAhead: C exceeds R with nothing buffered out of order.
	// Legitimate only while the covering flood is still in flight; a
	// committed stamp acquired any other way (e.g. an overstamped
	// pseudo-proposal) looks exactly like this.
	SuspectCommitAhead
	// SuspectOrphanedProposal: a switch owes the network a proposal
	// (makeProposal set) but nothing is pending to it and no gap-check
	// timer is armed — no future delivery or firing will trigger the
	// recompute. The precursor of silent-wedge violations.
	SuspectOrphanedProposal
	// SuspectSettledDivergence: two switches settled at identical R and C
	// disagree on the member list or installed topology. One delivery
	// away from a quiescent agreement violation.
	SuspectSettledDivergence
	// SuspectHealResidue: the fault lane has completed (every split
	// healed, every crash restarted) but some connection is still gapped.
	// Correct recovery drains this; residue that persists is how heals
	// fail.
	SuspectHealResidue
	numSuspectKinds
)

// suspectWeights scores each kind by how directly it precedes a violation
// (used by the guided frontier ranking and backward suspect harvest).
var suspectWeights = [numSuspectKinds]int{
	SuspectREDivergence:      1,
	SuspectCommitLag:         3,
	SuspectCommitAhead:       4,
	SuspectOrphanedProposal:  6,
	SuspectSettledDivergence: 10,
	SuspectHealResidue:       4,
}

// String implements fmt.Stringer.
func (k SuspectKind) String() string {
	switch k {
	case SuspectREDivergence:
		return "re-divergence"
	case SuspectCommitLag:
		return "commit-lag"
	case SuspectCommitAhead:
		return "commit-ahead"
	case SuspectOrphanedProposal:
		return "orphaned-proposal"
	case SuspectSettledDivergence:
		return "settled-divergence"
	case SuspectHealResidue:
		return "heal-residue"
	default:
		return fmt.Sprintf("suspect(%d)", uint8(k))
	}
}

// AllSuspectKinds lists every defined kind in declaration order.
func AllSuspectKinds() []SuspectKind {
	out := make([]SuspectKind, numSuspectKinds)
	for i := range out {
		out[i] = SuspectKind(i)
	}
	return out
}

// ParseSuspectKinds parses a comma-separated list of kind names, or "all".
func ParseSuspectKinds(s string) ([]SuspectKind, error) {
	if strings.TrimSpace(s) == "all" {
		return AllSuspectKinds(), nil
	}
	var out []SuspectKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for _, k := range AllSuspectKinds() {
			if k.String() == part {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("explore: unknown suspect kind %q", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("explore: empty suspect kind list")
	}
	return out, nil
}

// suspectCounts tallies suspect instances per kind at one world state.
type suspectCounts [numSuspectKinds]int

// score returns the weighted suspicion total.
func (sc *suspectCounts) score() int {
	total := 0
	for k, n := range sc {
		total += suspectWeights[k] * n
	}
	return total
}

// any reports whether at least one of the given kinds is present (all
// kinds when the filter is empty).
func (sc *suspectCounts) any(kinds []SuspectKind) bool {
	if len(kinds) == 0 {
		for _, n := range sc {
			if n > 0 {
				return true
			}
		}
		return false
	}
	for _, k := range kinds {
		if sc[k] > 0 {
			return true
		}
	}
	return false
}

// covers reports whether sc exhibits every kind present in want — the
// predicate backward search preserves while minimizing a suspect prefix.
func (sc *suspectCounts) covers(want *suspectCounts) bool {
	for k := range want {
		if want[k] > 0 && sc[k] == 0 {
			return false
		}
	}
	return true
}

// hasPendingMC reports whether an MC LSA for conn is in flight to switch s
// (pending only — parked cross-partition frames cannot fire until a heal,
// which arms reconciliation anyway).
func (w *World) hasPendingMC(s topo.SwitchID, conn lsa.ConnID) bool {
	for i := range w.pending {
		pm := &w.pending[i]
		if pm.to != s {
			continue
		}
		switch v := pm.payload.(type) {
		case *lsa.MC:
			if v.Conn == conn {
				return true
			}
		case *lsa.ResyncResponse:
			if v.Conn == conn {
				return true
			}
		case core.ResyncNudge:
			if v.Conn == conn {
				return true
			}
		}
	}
	return false
}

// suspects scans the world for stamp-invariant near-violations. Crashed
// switches hold no live state and are skipped; pairwise kinds compare all
// live switches holding state for the same connection.
func (w *World) suspects() suspectCounts {
	var sc suspectCounts
	views := make(map[lsa.ConnID][]connView)
	for s := 0; s < w.n; s++ {
		if w.crashed[s] {
			continue
		}
		m := w.machines[s]
		for _, conn := range m.AllConnections() {
			snap, _ := m.Connection(conn)
			sw := topo.SwitchID(s)
			if !snap.R.Geq(snap.E) {
				sc[SuspectREDivergence]++
			} else if !m.Dormant(conn) && snap.R.Greater(snap.C) {
				sc[SuspectCommitLag]++
			}
			if !snap.R.Geq(snap.C) && m.OutOfOrderDepth(conn) == 0 {
				sc[SuspectCommitAhead]++
			}
			if m.ProposalOwed(conn) && !m.ResyncArmed(conn) && !w.hasPendingMC(sw, conn) {
				sc[SuspectOrphanedProposal]++
			}
			views[conn] = append(views[conn], connView{sw: sw, snap: snap})
		}
	}
	for _, conn := range sortedViewConns(views) {
		vs := views[conn]
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				a, b := &vs[i], &vs[j]
				if !a.snap.R.Equal(b.snap.R) || !a.snap.C.Equal(b.snap.C) {
					continue
				}
				if !a.snap.Members.Equal(b.snap.Members) ||
					(a.snap.Topology == nil) != (b.snap.Topology == nil) ||
					(a.snap.Topology != nil && !a.snap.Topology.Equal(b.snap.Topology)) {
					sc[SuspectSettledDivergence]++
				}
			}
		}
	}
	if len(w.scn.Faults) > 0 && w.faultPos == len(w.scn.Faults) {
		for s := 0; s < w.n; s++ {
			m := w.machines[s]
			for _, conn := range m.AllConnections() {
				if m.Gapped(conn) {
					sc[SuspectHealResidue]++
				}
			}
		}
	}
	return sc
}

func sortedViewConns(views map[lsa.ConnID][]connView) []lsa.ConnID {
	out := make([]lsa.ConnID, 0, len(views))
	for id := range views {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stampShape renders a coarse behavioral signature of the world: per
// switch and connection, the qualitative relations among R, E, and C plus
// the recovery flags, and the global fault-lane position. Two states with
// equal shapes are exploring "the same kind of situation"; novelty of the
// shape is the exploration bonus of guided search, and the set of shapes
// seen is the coverage map persisted in Stats.
func (w *World) stampShape() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "f%d", w.faultPos)
	for s := 0; s < w.n; s++ {
		if w.crashed[s] {
			sb.WriteString("|X")
			continue
		}
		m := w.machines[s]
		sb.WriteByte('|')
		for _, conn := range m.AllConnections() {
			snap, _ := m.Connection(conn)
			relRE := byte('=')
			if !snap.R.Geq(snap.E) {
				relRE = '<'
			}
			relCR := byte('=')
			switch {
			case !snap.R.Geq(snap.C):
				relCR = '>'
			case snap.R.Greater(snap.C):
				relCR = '<'
			}
			flags := byte('0')
			if m.ProposalOwed(conn) {
				flags |= 1
			}
			if m.ResyncArmed(conn) {
				flags |= 2
			}
			if m.OutOfOrderDepth(conn) > 0 {
				flags |= 4
			}
			if m.Dormant(conn) {
				flags |= 8
			}
			sb.WriteByte(relRE)
			sb.WriteByte(relCR)
			sb.WriteByte(flags)
		}
	}
	return sb.String()
}
