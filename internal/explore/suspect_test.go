package explore

import (
	"strings"
	"testing"

	"dgmc/internal/core"
)

func TestParseSuspectKinds(t *testing.T) {
	all, err := ParseSuspectKinds("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != int(numSuspectKinds) {
		t.Fatalf("\"all\" parsed to %d kinds, want %d", len(all), numSuspectKinds)
	}
	got, err := ParseSuspectKinds("commit-lag, orphaned-proposal")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != SuspectCommitLag || got[1] != SuspectOrphanedProposal {
		t.Fatalf("parsed %v", got)
	}
	if _, err := ParseSuspectKinds("no-such-kind"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseSuspectKinds(""); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := ParseSuspectKinds(","); err == nil {
		t.Fatal("all-blank list accepted")
	}
}

// TestSuspectKindNames: every kind's String round-trips through the
// parser, names are unique, and out-of-range values render defensively.
func TestSuspectKindNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range AllSuspectKinds() {
		name := k.String()
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
		back, err := ParseSuspectKinds(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != 1 || back[0] != k {
			t.Fatalf("round-trip of %q gave %v", name, back)
		}
	}
	if got := SuspectKind(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("out-of-range kind renders as %q", got)
	}
}

func TestSuspectCountsOps(t *testing.T) {
	var sc suspectCounts
	if sc.score() != 0 || sc.any(nil) {
		t.Fatal("zero counts should score 0 and match nothing")
	}
	sc[SuspectCommitLag] = 2
	sc[SuspectSettledDivergence] = 1
	want := 2*suspectWeights[SuspectCommitLag] + suspectWeights[SuspectSettledDivergence]
	if sc.score() != want {
		t.Fatalf("score %d, want %d", sc.score(), want)
	}
	if !sc.any(nil) {
		t.Fatal("nil filter should match any nonzero count")
	}
	if !sc.any([]SuspectKind{SuspectCommitLag}) || sc.any([]SuspectKind{SuspectHealResidue}) {
		t.Fatal("filtered any misclassifies")
	}
	var wantCov suspectCounts
	wantCov[SuspectCommitLag] = 1
	if !sc.covers(&wantCov) {
		t.Fatal("counts should cover a subset signature")
	}
	wantCov[SuspectHealResidue] = 1
	if sc.covers(&wantCov) {
		t.Fatal("counts should not cover a kind they lack")
	}
}

// TestSuspectScan drives a real world one step and checks the scanner:
// the initial world is suspect-free, and the state right after a local
// join — origin has applied the event, proposal still in flight — shows
// the origin's commit lag but no orphaned proposal (the flood frames are
// pending, so a future delivery can still trigger the commit).
func TestSuspectScan(t *testing.T) {
	w, err := NewWorld(Config{Graph: ring4(t)}, twoJoins())
	if err != nil {
		t.Fatal(err)
	}
	if sc := w.suspects(); sc.score() != 0 {
		t.Fatalf("initial world already suspect: %v", sc)
	}
	rootShape := w.stampShape()
	if !strings.HasPrefix(rootShape, "f0") {
		t.Fatalf("shape missing fault-lane position: %q", rootShape)
	}

	// Apply the switch-0 inject.
	applied := false
	for _, a := range w.enabled() {
		if a.kind == actInject && a.sw == 0 {
			w.apply(a)
			applied = true
			break
		}
	}
	if !applied {
		t.Fatal("no inject enabled at the initial world")
	}
	sc := w.suspects()
	if sc[SuspectOrphanedProposal] != 0 {
		t.Fatalf("proposal with frames in flight misclassified as orphaned: %v", sc)
	}
	if sc[SuspectHealResidue] != 0 {
		t.Fatalf("heal residue without a fault lane: %v", sc)
	}
	if shape := w.stampShape(); shape == rootShape {
		t.Fatalf("shape did not change across a join: %q", shape)
	}

	// The flooded MC copies (one per component peer) must be visible to
	// the pending-frame probe, and only for the connection they carry.
	if !w.hasPendingMC(1, 1) || !w.hasPendingMC(2, 1) || !w.hasPendingMC(3, 1) {
		t.Fatal("flooded MC copies not seen by hasPendingMC")
	}
	if w.hasPendingMC(1, 99) {
		t.Fatal("hasPendingMC claims a frame for a connection nothing carries")
	}
}

// TestSuspectScanSettledDivergence checks the pairwise scan on a real
// diverged world: replay an ignore-event-order counterexample to its bad
// quiescent state — switches settled at identical stamps with different
// member lists — and assert the scanner flags it, while the same world
// drained from a mutation-free run stays clean.
func TestSuspectScanSettledDivergence(t *testing.T) {
	drain := func(w *World) {
		for {
			if _, ok := w.applyIndex(0); !ok {
				return
			}
		}
	}
	cfg, scn := gate6(t)
	w, err := NewWorld(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	drain(w)
	if sc := w.suspects(); sc[SuspectSettledDivergence] != 0 {
		t.Fatalf("converged world reports settled divergence: %v", sc)
	}

	cfg.Mutation = core.MutationIgnoreEventOrder
	res, err := Guided(cfg, scn, Options{Budget: gateBudget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || !res.Violation.Quiescent {
		t.Fatalf("expected a quiescent counterexample, got %+v", res.Violation)
	}
	bad, err := runPrefix(cfg, scn, res.Violation.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	drain(bad)
	sc := bad.suspects()
	if sc[SuspectSettledDivergence] == 0 {
		t.Fatalf("settled divergence not flagged on a diverged quiescent world: %v (err %v)", sc, res.Violation.Err)
	}
}
