package explore

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// gate6 is the guided-search CI gate scenario: a 6-switch ring with four
// membership events (a join/leave pair at switch 0, a join at switch 1,
// and a join at switch 3) interleaved with a 3|3 partition and its heal.
// Exhaustive search cannot reach a single quiescent state of this world
// within any CI-sized state budget — the interesting behavior (stale
// resync capstones, reordered same-origin events, cross-partition stamp
// races) lives tens of forced choices deep. Guided search must catch
// every corpus mutation here, and report the mutation-free world clean.
func gate6(t *testing.T) (Config, Scenario) {
	t.Helper()
	g, err := topo.Ring(6, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{
		Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Leave}},
			{Switch: 1, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
			{Switch: 3, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
		},
		Faults: []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1, 2}, {3, 4, 5}}},
			{Kind: FaultHeal},
		},
	}
	return Config{Graph: g, Resync: true, ResyncMaxRounds: 2}, scn
}

// gateBudget is the transition+probe-step budget of the CI gate. Guided
// search catches every corpus mutation well inside it and clears the
// mutation-free world by exhausting it.
const gateBudget = 200000

// TestGuidedCleanGate: the mutation-free gate world must produce no
// violation across the full budget — guided search is aggressive, not
// unsound — and the coverage map must show it actually explored: many
// qualitative stamp shapes, the complete fault lane, and drain probes
// reaching quiescence.
func TestGuidedCleanGate(t *testing.T) {
	cfg, scn := gate6(t)
	res, err := Guided(cfg, scn, Options{Budget: gateBudget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("false alarm on mutation-free gate: %v\ntrace:\n%s",
			res.Violation.Err, strings.Join(res.Violation.Trace, "\n"))
	}
	cov := res.Stats.Coverage
	if len(cov.StampShapes) < 100 {
		t.Fatalf("guided search explored only %d stamp shapes", len(cov.StampShapes))
	}
	if cov.FaultDepth != len(scn.Faults) {
		t.Fatalf("fault lane incomplete: reached depth %d of %d", cov.FaultDepth, len(scn.Faults))
	}
	if res.Stats.Probes == 0 || res.Stats.Quiescent == 0 {
		t.Fatalf("no drain probes reached quiescence: %+v", res.Stats)
	}
	t.Logf("clean gate: states=%d probes=%d shapes=%d", res.Stats.States, res.Stats.Probes, len(cov.StampShapes))
}

// TestGuidedCatchesGateCorpus: every seeded mutation in the corpus must
// be caught on the gate scenario within the CI budget, and each
// counterexample must replay from its token to the same failure.
func TestGuidedCatchesGateCorpus(t *testing.T) {
	for _, mu := range core.Mutations() {
		if mu == core.MutationNone {
			continue
		}
		t.Run(mu.String(), func(t *testing.T) {
			cfg, scn := gate6(t)
			cfg.Mutation = mu
			res, err := Guided(cfg, scn, Options{Budget: gateBudget})
			if err != nil {
				t.Fatal(err)
			}
			v := res.Violation
			if v == nil {
				t.Fatalf("mutation %v not caught within budget %d; stats %+v", mu, gateBudget, res.Stats)
			}
			t.Logf("caught after %d spent: %v", res.Stats.spent(), v.Err)
			tcfg, tscn, tsched, err := DecodeToken(v.Token)
			if err != nil {
				t.Fatalf("decode token: %v", err)
			}
			if tcfg.Mutation != mu {
				t.Fatalf("token lost the mutation: %v", tcfg.Mutation)
			}
			_, tv, err := Replay(tcfg, tscn, tsched)
			if err != nil {
				t.Fatal(err)
			}
			if tv == nil {
				t.Fatal("token replay no longer violates")
			}
			if tv.Err.Error() != v.Err.Error() {
				t.Fatalf("token replay found a different violation:\n search: %v\n token:  %v", v.Err, tv.Err)
			}
		})
	}
}

// TestGuidedDeterministic pins the guided search order: two runs with the
// same seed must pop identical (depth, score, hash) sequences from the
// frontier and produce deeply equal results. Determinism is what makes a
// guided CI gate debuggable — a failure reproduces exactly.
func TestGuidedDeterministic(t *testing.T) {
	type pop struct {
		depth, score int
		hash         [32]byte
	}
	run := func(seed int64) ([]pop, *Result) {
		cfg, scn := gate6(t)
		var pops []pop
		opt := Options{Budget: 20000, Seed: seed}
		opt.expandHook = func(depth, score int, hash [32]byte) {
			pops = append(pops, pop{depth, score, hash})
		}
		res, err := Guided(cfg, scn, opt)
		if err != nil {
			t.Fatal(err)
		}
		return pops, res
	}
	pops1, res1 := run(7)
	pops2, res2 := run(7)
	if !reflect.DeepEqual(pops1, pops2) {
		t.Fatalf("same seed, different expansion order: %d vs %d pops", len(pops1), len(pops2))
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("same seed, different results:\n %+v\n %+v", res1.Stats, res2.Stats)
	}
	// A different seed perturbs the order of near-equal-priority states.
	pops3, _ := run(8)
	if reflect.DeepEqual(pops1, pops3) {
		t.Logf("seeds 7 and 8 expanded identically (%d pops) — jitter had no effect on this run", len(pops1))
	}
}

// TestGuidedBudgetTruncates: a starved budget must stop the search
// cleanly — truncated, no violation, no error.
func TestGuidedBudgetTruncates(t *testing.T) {
	cfg, scn := gate6(t)
	res, err := Guided(cfg, scn, Options{Budget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation.Err)
	}
	if !res.Stats.Truncated {
		t.Fatalf("budget 200 not marked truncated: %+v", res.Stats)
	}
}

// TestBackwardReportsSuspects: on the mutation-free gate, backward search
// must harvest suspect states, minimize the schedules reaching them, and
// emit replayable reports — each report's token must decode, and running
// its schedule as a prefix must land in a state that still exhibits every
// reported suspect kind (the signature the minimizer preserved).
func TestBackwardReportsSuspects(t *testing.T) {
	cfg, scn := gate6(t)
	res, err := Backward(cfg, scn, Options{Budget: 60000, SuspectKinds: AllSuspectKinds()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("false alarm on mutation-free gate: %v", res.Violation.Err)
	}
	if res.Stats.SuspectsFound == 0 || len(res.Suspects) == 0 {
		t.Fatalf("no suspects harvested: found=%d reports=%d", res.Stats.SuspectsFound, len(res.Suspects))
	}
	for i, rep := range res.Suspects {
		if i >= 4 {
			break
		}
		if len(rep.Kinds) == 0 || rep.Token == "" {
			t.Fatalf("report %d incomplete: %+v", i, rep)
		}
		tcfg, tscn, tsched, err := DecodeToken(rep.Token)
		if err != nil {
			t.Fatalf("report %d token: %v", i, err)
		}
		w, err := runPrefix(tcfg, tscn, tsched)
		if err != nil {
			t.Fatalf("report %d prefix: %v", i, err)
		}
		sc := w.suspects()
		for _, name := range rep.Kinds {
			kinds, err := ParseSuspectKinds(name)
			if err != nil {
				t.Fatal(err)
			}
			if sc[kinds[0]] == 0 {
				t.Fatalf("report %d: replayed prefix no longer exhibits %s (counts %v)", i, name, sc)
			}
		}
	}
	t.Logf("backward: %d suspects found, %d reported, best %+v", res.Stats.SuspectsFound, len(res.Suspects), res.Suspects[0].Kinds)
}

// TestBackwardCatchesMutation: backward mode must also convert a seeded
// bug into a violation (its phase-one sweep and neighborhood probes check
// the same invariants), and clear the reports when it does.
func TestBackwardCatchesMutation(t *testing.T) {
	cfg, scn := gate6(t)
	cfg.Mutation = core.MutationUncappedPseudoProposal
	res, err := Backward(cfg, scn, Options{Budget: gateBudget, SuspectKinds: AllSuspectKinds()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("backward search missed the mutation: %+v", res.Stats)
	}
	if len(res.Suspects) != 0 {
		t.Fatalf("violation result still carries %d suspect reports", len(res.Suspects))
	}
}

// TestGuidedOnlyCatchWithinCIBudget is the acceptance contrast of the
// issue: at least one corpus mutation must be caught by guided search
// within the CI budget while exhaustive search, given a comparable state
// budget on the same mutated world, exhausts it without ever reaching a
// quiescent state.
func TestGuidedOnlyCatchWithinCIBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive contrast too slow for -short")
	}
	cfg, scn := gate6(t)
	cfg.Mutation = core.MutationUncappedPseudoProposal

	gres, err := Guided(cfg, scn, Options{Budget: gateBudget})
	if err != nil {
		t.Fatal(err)
	}
	if gres.Violation == nil {
		t.Fatalf("guided search missed the mutation: %+v", gres.Stats)
	}

	eres, err := Exhaustive(cfg, scn, Options{MaxStates: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if eres.Violation != nil {
		t.Fatalf("exhaustive search unexpectedly caught the mutation within budget: %v", eres.Violation.Err)
	}
	if !eres.Stats.Truncated {
		t.Fatalf("exhaustive search was not even truncated: %+v", eres.Stats)
	}
	if eres.Stats.Quiescent != 0 {
		t.Logf("exhaustive reached %d quiescent states before truncation", eres.Stats.Quiescent)
	}
	t.Logf("guided caught in %d spent; exhaustive truncated at %d states with %d quiescent",
		gres.Stats.spent(), eres.Stats.States, eres.Stats.Quiescent)
}
