package explore

import (
	"strings"
	"testing"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// TestInvariantEmptyConnectionSet: a world with no injected events holds
// no per-connection state anywhere; both the per-step and the quiescent
// invariants must pass vacuously, and exhaustive search must see exactly
// one (clean, quiescent) state.
func TestInvariantEmptyConnectionSet(t *testing.T) {
	cfg := Config{Graph: ring4(t)}
	w, err := NewWorld(cfg, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Quiescent() {
		t.Fatal("empty world not quiescent")
	}
	if err := w.checkStep(); err != nil {
		t.Fatalf("per-step invariants on the empty world: %v", err)
	}
	if err := w.checkQuiescent(); err != nil {
		t.Fatalf("quiescent invariants on the empty world: %v", err)
	}
	res, err := Exhaustive(cfg, Scenario{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil || res.Stats.States != 1 || res.Stats.Quiescent != 1 {
		t.Fatalf("empty scenario: %+v violation=%v", res.Stats, res.Violation)
	}
}

// TestInvariantOwnHighCarryover: the origin-authority bound must survive
// a crash of the origin. After switch 3 floods its join and crashes, the
// survivors legitimately hold R[3]=1 while the blank origin holds
// nothing; the high-water mark captured at crash time (World.ownHigh) is
// what keeps checkStep satisfied. Erasing the carryover must make the
// same state an origin-authority violation — proving the bound is
// enforced through the mark, not vacuously.
func TestInvariantOwnHighCarryover(t *testing.T) {
	cfg := Config{Graph: ring4(t), Resync: true, ResyncMaxRounds: 2}
	scn := Scenario{
		Injects: []Inject{
			{Switch: 3, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		},
		Faults: []FaultOp{
			{Kind: FaultCrash, Switch: 3},
			{Kind: FaultRestart, Switch: 3},
		},
	}
	w, err := NewWorld(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	// Drain deliveries (choice 0 prefers them) until only the fault lane
	// remains, then fire the crash and stop before the restart.
	for w.faultPos == 0 {
		if _, ok := w.applyIndex(0); !ok {
			t.Fatal("world quiesced before the crash fired")
		}
	}
	if len(w.machines[3].AllConnections()) != 0 {
		t.Fatal("crashed switch still holds connection state")
	}
	snap, ok := w.machines[0].Connection(1)
	if !ok || snap.R[3] == 0 {
		t.Fatalf("survivor lost the origin's events: ok=%v snap=%+v", ok, snap)
	}
	if err := w.checkStep(); err != nil {
		t.Fatalf("post-crash state must satisfy checkStep via the high-water carryover: %v", err)
	}
	saved := w.ownHigh
	w.ownHigh = nil
	err = w.checkStep()
	w.ownHigh = saved
	if err == nil {
		t.Fatal("erasing the crash high-water marks did not trip the origin-authority bound")
	}
	if !strings.Contains(err.Error(), "exceeds origin's own count") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestInvariantLossyDowngrade: a schedule that spends drop budget is held
// to the lossy quiescent standard. Dropping every frame addressed to
// switch 3 leaves it with no state for the connection — a strict
// agreement violation — but no surviving switch is gapped, so the lossy
// standard accepts the world. checkQuiescent must route on lossyStandard
// and pass; the strict component check on the same world must fail.
func TestInvariantLossyDowngrade(t *testing.T) {
	cfg := Config{Graph: ring4(t), MaxDrops: 32, Resync: true, ResyncMaxRounds: 2}
	w, err := NewWorld(cfg, twoJoins())
	if err != nil {
		t.Fatal(err)
	}
	if w.lossyStandard() {
		t.Fatal("fresh world already lossy")
	}
	for {
		acts := w.enabled()
		if len(acts) == 0 {
			break
		}
		chosen := -1
		for i, a := range acts {
			if a.kind == actDeliver && w.pending[a.msg].to == 3 {
				continue // never deliver to 3; prefer its drop below
			}
			if a.kind == actDrop && w.pending[a.msg].to != 3 {
				continue
			}
			if a.kind == actDup {
				continue
			}
			chosen = i
			break
		}
		if chosen < 0 {
			t.Fatalf("no acceptable action among %d", len(acts))
		}
		w.apply(acts[chosen])
	}
	if !w.lossyStandard() {
		t.Fatalf("dropped frames but still strict: dropsLeft=%d max=%d", w.dropsLeft, w.cfg.MaxDrops)
	}
	if _, ok := w.machines[3].Connection(1); ok {
		t.Fatal("switch 3 heard about the connection despite the drops")
	}
	comp := w.graph.Component(0)
	full := make(map[topo.SwitchID]bool, len(comp))
	for _, s := range comp {
		full[s] = true
	}
	if err := w.checkComponent(comp, full, true); err == nil {
		t.Fatal("strict component check passed a world where switch 3 has no state")
	}
	if err := w.checkQuiescent(); err != nil {
		t.Fatalf("lossy standard rejected a legitimate lossy outcome: %v", err)
	}
}
