package explore

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

func ring4(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Ring(4, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func twoJoins() Scenario {
	return Scenario{Injects: []Inject{
		{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		{Switch: 2, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
	}}
}

// TestExhaustiveTwoJoinsClean is the headline soundness run: every
// interleaving of two concurrent joins on a 4-switch ring satisfies every
// invariant, and every schedule quiesces.
func TestExhaustiveTwoJoinsClean(t *testing.T) {
	res, err := Exhaustive(Config{Graph: ring4(t)}, twoJoins(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v\nschedule %v\ntrace:\n%s",
			res.Violation.Err, res.Violation.Schedule, strings.Join(res.Violation.Trace, "\n"))
	}
	if res.Stats.Truncated {
		t.Fatalf("search truncated: %+v", res.Stats)
	}
	if res.Stats.Quiescent == 0 {
		t.Fatalf("no quiescent states checked: %+v", res.Stats)
	}
	t.Logf("stats: %+v", res.Stats)
}

// TestExhaustiveDeterministic: equal inputs produce identical stats (the
// whole search is replayable, not just individual schedules).
func TestExhaustiveDeterministic(t *testing.T) {
	var prev *Result
	for i := 0; i < 2; i++ {
		res, err := Exhaustive(Config{Graph: ring4(t)}, twoJoins(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, res) {
			t.Fatalf("non-deterministic search: run 1 %+v, run 2 %+v", prev.Stats, res.Stats)
		}
		r := *res
		prev = &r
	}
}

// TestMutationCaught is the checker-validation gate from the issue: with
// the seeded timestamp-comparison bug (the stamp dominance check of
// Figure 5 line 11 forced to true), exhaustive search must find an
// invariant violation, shrink it to at most 10 schedule steps, and emit a
// token that replays to the same failure.
func TestMutationCaught(t *testing.T) {
	cfg := Config{Graph: ring4(t), Mutation: core.MutationAcceptStaleProposal}
	res, err := Exhaustive(cfg, twoJoins(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatalf("seeded mutation not caught; stats %+v", res.Stats)
	}
	t.Logf("violation after %d steps: %v", len(v.Schedule), v.Err)

	shrunk := Shrink(cfg, twoJoins(), v.Schedule)
	if len(shrunk) > len(v.Schedule) {
		t.Fatalf("shrink grew the schedule: %d -> %d", len(v.Schedule), len(shrunk))
	}
	if len(shrunk) > 10 {
		t.Fatalf("shrunk counterexample has %d steps, want <= 10: %v", len(shrunk), shrunk)
	}
	t.Logf("shrunk schedule (%d steps): %v", len(shrunk), shrunk)

	// The shrunk schedule still violates, with a trace and a token.
	_, sv, err := Replay(cfg, twoJoins(), shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if sv == nil {
		t.Fatal("shrunk schedule no longer violates")
	}
	if len(sv.Trace) == 0 {
		t.Fatal("replay produced no trace")
	}

	// Token round-trip: decode and replay byte-for-byte.
	tcfg, tscn, tsched, err := DecodeToken(sv.Token)
	if err != nil {
		t.Fatalf("decode token %q: %v", sv.Token, err)
	}
	if tcfg.Mutation != core.MutationAcceptStaleProposal {
		t.Fatalf("token lost the mutation: %v", tcfg.Mutation)
	}
	_, tv, err := Replay(tcfg, tscn, tsched)
	if err != nil {
		t.Fatal(err)
	}
	if tv == nil {
		t.Fatal("token replay no longer violates")
	}
	if tv.Err.Error() != sv.Err.Error() {
		t.Fatalf("token replay found a different violation:\n direct: %v\n token:  %v", sv.Err, tv.Err)
	}
}

// TestMutationCleanSchedulesExist: the seeded bug is order-dependent —
// the fault-free canonical schedule (all choices 0) converges, which is
// exactly why exhaustive exploration is needed to catch it.
func TestMutationCleanSchedulesExist(t *testing.T) {
	cfg := Config{Graph: ring4(t), Mutation: core.MutationAcceptStaleProposal}
	out, err := runSchedule(cfg, twoJoins(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.violation != nil {
		t.Fatalf("canonical schedule already violates (%v); the bug would not need search", out.violation)
	}
}

// TestRandomWalkClean exercises walk mode on a fault-free scenario.
func TestRandomWalkClean(t *testing.T) {
	res, err := RandomWalk(Config{Graph: ring4(t)}, twoJoins(), Options{Walks: 64, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation.Err)
	}
	if res.Stats.Quiescent != 64 {
		t.Fatalf("want 64 quiescent walks, got %d", res.Stats.Quiescent)
	}
}

// TestRandomWalkCatchesMutation: enough seeded walks also find the bug
// (and shrink it), independent of BFS.
func TestRandomWalkCatchesMutation(t *testing.T) {
	cfg := Config{Graph: ring4(t), Mutation: core.MutationAcceptStaleProposal}
	res, err := RandomWalk(cfg, twoJoins(), Options{Walks: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Skip("seed 7 found no violating walk (BFS test covers detection)")
	}
	if len(res.Violation.Schedule) > 10 {
		t.Fatalf("walk counterexample not shrunk: %d steps", len(res.Violation.Schedule))
	}
}

// TestDropWithResyncExplored: a drop budget with resync enabled explores
// fault branches and still finds no violation — every explored loss either
// gets repaired by gap recovery or ends outside the reliable-flooding
// guarantee without wedging any switch mid-recovery (the lossy quiescent
// check). Line topology keeps the space small.
func TestDropWithResyncExplored(t *testing.T) {
	g, err := topo.Line(2, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{Injects: []Inject{
		{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		{Switch: 1, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
	}}
	res, err := Exhaustive(Config{Graph: g, Resync: true, ResyncMaxRounds: 2, MaxDrops: 1}, scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("drop+resync violation: %v\ntrace:\n%s", res.Violation.Err,
			strings.Join(res.Violation.Trace, "\n"))
	}
	if res.Stats.Truncated {
		t.Fatalf("search truncated: %+v", res.Stats)
	}
	t.Logf("stats: %+v", res.Stats)
}

// TestRandomWalkDropResync samples the (much larger) 3-switch lossy
// space that exhaustive mode cannot afford: every sampled schedule must
// satisfy the lossy quiescent standard.
func TestRandomWalkDropResync(t *testing.T) {
	g, err := topo.Line(3, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{Injects: []Inject{
		{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		{Switch: 2, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
	}}
	cfg := Config{Graph: g, Resync: true, ResyncMaxRounds: 2, MaxDrops: 2, MaxDups: 1}
	res, err := RandomWalk(cfg, scn, Options{Walks: 128, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("lossy walk violation: %v\ntrace:\n%s", res.Violation.Err,
			strings.Join(res.Violation.Trace, "\n"))
	}
}

// TestDupExplored: duplicated LSAs within budget never break the
// invariants (per-origin ordered apply discards stale copies).
func TestDupExplored(t *testing.T) {
	g, err := topo.Line(3, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{Injects: []Inject{
		{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		{Switch: 1, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
	}}
	res, err := Exhaustive(Config{Graph: g, MaxDups: 1}, scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("dup violation: %v", res.Violation.Err)
	}
}

// TestLinkFailureScenario: a join racing a link failure on a ring still
// converges in every interleaving (the ring stays connected).
func TestLinkFailureScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("state space too large for -short")
	}
	scn := Scenario{Injects: []Inject{
		{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		{Switch: 1, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
		{Switch: 2, Event: core.LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{A: 2, B: 3, Down: true}}},
	}}
	res, err := Exhaustive(Config{Graph: ring4(t)}, scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("link-failure violation: %v\ntrace:\n%s", res.Violation.Err,
			strings.Join(res.Violation.Trace, "\n"))
	}
	t.Logf("stats: %+v", res.Stats)
}

// TestConfigValidation covers the config error paths.
func TestConfigValidation(t *testing.T) {
	g := ring4(t)
	cases := []struct {
		name string
		cfg  Config
		scn  Scenario
	}{
		{"nil graph", Config{}, Scenario{}},
		{"drops without resync", Config{Graph: g, MaxDrops: 1}, Scenario{}},
		{"bad mutation", Config{Graph: g, Mutation: core.Mutation(99)}, Scenario{}},
		{"switch out of range", Config{Graph: g}, Scenario{Injects: []Inject{
			{Switch: 9, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}}}}},
		{"join without role", Config{Graph: g}, Scenario{Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join}}}}},
		{"unknown link", Config{Graph: g}, Scenario{Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{A: 0, B: 2, Down: true}}}}}},
	}
	for _, tc := range cases {
		if _, err := NewWorld(tc.cfg, tc.scn); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestTokenRoundTrip checks the token codec over a non-trivial config.
func TestTokenRoundTrip(t *testing.T) {
	cfg := Config{
		Graph:           ring4(t),
		Algorithm:       route.NewIncremental(route.SPH{}),
		Kinds:           map[lsa.ConnID]mctree.Kind{1: mctree.ReceiverOnly},
		Resync:          true,
		ResyncMaxRounds: 4,
		MaxDrops:        1,
		MaxDups:         2,
	}
	scn := Scenario{Injects: []Inject{
		{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender}},
		{Switch: 3, Event: core.LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{A: 3, B: 0, Down: true}}},
	}}
	sched := []int{0, 3, 1, 0, 7}
	tok, err := EncodeToken(cfg, scn, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok, "dgmc-sched-v1:") {
		t.Fatalf("token %q missing prefix", tok)
	}
	dcfg, dscn, dsched, err := DecodeToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if dcfg.Graph.NumSwitches() != 4 || dcfg.Graph.NumLinks() != 4 {
		t.Fatalf("graph mangled: %d switches %d links", dcfg.Graph.NumSwitches(), dcfg.Graph.NumLinks())
	}
	if dcfg.Algorithm.Name() != cfg.Algorithm.Name() {
		t.Fatalf("algorithm mangled: %s", dcfg.Algorithm.Name())
	}
	if !dcfg.Resync || dcfg.ResyncMaxRounds != 4 || dcfg.MaxDrops != 1 || dcfg.MaxDups != 2 {
		t.Fatalf("config mangled: %+v", dcfg)
	}
	if dcfg.Kinds[1] != mctree.ReceiverOnly {
		t.Fatalf("kinds mangled: %v", dcfg.Kinds)
	}
	if len(dscn.Injects) != 2 || dscn.Injects[1].Event.Link.A != 3 {
		t.Fatalf("scenario mangled: %+v", dscn)
	}
	if len(dsched) != len(sched) {
		t.Fatalf("schedule mangled: %v", dsched)
	}
	for i := range sched {
		if dsched[i] != sched[i] {
			t.Fatalf("schedule mangled at %d: %v", i, dsched)
		}
	}
	// And the two sides hash identically step by step.
	w1, err := NewWorld(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWorld(dcfg, dscn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sched)+8; i++ {
		if w1.hash() != w2.hash() {
			t.Fatalf("worlds diverge at step %d", i)
		}
		c := 0
		if i < len(sched) {
			c = sched[i]
		}
		_, ok1 := w1.applyIndex(c)
		_, ok2 := w2.applyIndex(c)
		if ok1 != ok2 {
			t.Fatalf("quiescence diverges at step %d", i)
		}
		if !ok1 {
			break
		}
	}
}

// TestTokenRejectsGarbage: malformed tokens error out, never panic.
func TestTokenRejectsGarbage(t *testing.T) {
	for _, tok := range []string{
		"",
		"dgmc-sched-v1:",
		"dgmc-sched-v1:!!!!",
		"dgmc-sched-v1:AAAA",
		"wrong-prefix:AAAA",
		"dgmc-sched-v1:" + strings.Repeat("A", 11),
	} {
		if _, _, _, err := DecodeToken(tok); err == nil {
			t.Errorf("token %q: decoded without error", tok)
		}
	}
}

// TestCloneIndependence: a cloned world evolves independently of its
// parent (the CloneWith deep-copy contract).
func TestCloneIndependence(t *testing.T) {
	w, err := NewWorld(Config{Graph: ring4(t)}, twoJoins())
	if err != nil {
		t.Fatal(err)
	}
	w.applyIndex(0) // inject join at switch 0
	h := w.hash()
	c := w.clone()
	if c.hash() != h {
		t.Fatal("clone hash differs from parent")
	}
	for { // run the clone to quiescence
		if _, ok := c.applyIndex(0); !ok {
			break
		}
	}
	if w.hash() != h {
		t.Fatal("running the clone mutated the parent")
	}
	if c.hash() == h {
		t.Fatal("clone did not advance")
	}
}
