package explore

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// A replay token is a self-contained, URL-safe description of one explored
// schedule: the topology, configuration, scenario, and choice sequence.
// `dgmccheck -replay TOKEN` decodes it and re-executes the schedule
// byte-for-byte — no flags from the original run are needed. The encoding
// is versioned varint/fixed binary under base64url. v2 appends the fault
// lane (partition/heal/crash/restart operations) after the injects;
// scenarios without fault operations still encode as v1, so every token
// this package ever emitted keeps replaying.
const (
	tokenPrefix   = "dgmc-sched-v1:"
	tokenPrefixV2 = "dgmc-sched-v2:"
)

// tokenAlgName canonicalizes an algorithm for the token: tokens carry the
// route.ByName name, so decorated names like "incremental(sph)" map back
// to their constructor.
func tokenAlgName(alg route.Algorithm) string {
	name := alg.Name()
	if i := strings.IndexByte(name, '('); i >= 0 {
		name = name[:i]
	}
	return name
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// EncodeToken renders (cfg, scn, sched) as a replay token.
func EncodeToken(cfg Config, scn Scenario, sched []int) (string, error) {
	if err := cfg.validate(); err != nil {
		return "", err
	}
	if _, err := route.ByName(tokenAlgName(cfg.Algorithm)); err != nil {
		return "", fmt.Errorf("explore: algorithm %q has no ByName constructor; token would not replay: %w",
			cfg.Algorithm.Name(), err)
	}
	var buf []byte
	// Topology.
	g := cfg.Graph
	buf = appendUvarint(buf, uint64(g.NumSwitches()))
	links := g.Links()
	buf = appendUvarint(buf, uint64(len(links)))
	for _, l := range links {
		buf = appendUvarint(buf, uint64(l.A))
		buf = appendUvarint(buf, uint64(l.B))
		buf = appendUvarint(buf, uint64(l.Delay))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(l.Capacity))
	}
	// Configuration.
	name := tokenAlgName(cfg.Algorithm)
	buf = appendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	kinds := make([]lsa.ConnID, 0, len(cfg.Kinds))
	for id := range cfg.Kinds {
		kinds = append(kinds, id)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	buf = appendUvarint(buf, uint64(len(kinds)))
	for _, id := range kinds {
		buf = appendUvarint(buf, uint64(id))
		buf = append(buf, byte(cfg.Kinds[id]))
	}
	flags := byte(0)
	if cfg.Resync {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = appendUvarint(buf, uint64(cfg.ResyncMaxRounds))
	buf = appendUvarint(buf, uint64(cfg.MaxDrops))
	buf = appendUvarint(buf, uint64(cfg.MaxDups))
	buf = append(buf, byte(cfg.Mutation))
	// Scenario.
	buf = appendUvarint(buf, uint64(len(scn.Injects)))
	for _, inj := range scn.Injects {
		buf = appendUvarint(buf, uint64(inj.Switch))
		buf = append(buf, byte(inj.Event.Kind))
		buf = appendUvarint(buf, uint64(inj.Event.Conn))
		buf = append(buf, byte(inj.Event.Role))
		buf = appendUvarint(buf, uint64(inj.Event.Link.A))
		buf = appendUvarint(buf, uint64(inj.Event.Link.B))
		if inj.Event.Link.Down {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	// Fault lane (v2 only — fault-free scenarios stay v1).
	prefix := tokenPrefix
	if len(scn.Faults) > 0 {
		if err := scn.validate(cfg.Graph); err != nil {
			return "", err
		}
		prefix = tokenPrefixV2
		buf = appendUvarint(buf, uint64(len(scn.Faults)))
		for _, op := range scn.Faults {
			buf = append(buf, byte(op.Kind))
			buf = appendUvarint(buf, uint64(op.Switch))
			buf = appendUvarint(buf, uint64(len(op.Groups)))
			for _, grp := range op.Groups {
				buf = appendUvarint(buf, uint64(len(grp)))
				for _, s := range grp {
					buf = appendUvarint(buf, uint64(s))
				}
			}
		}
	}
	// Schedule.
	buf = appendUvarint(buf, uint64(len(sched)))
	for _, c := range sched {
		if c < 0 {
			return "", fmt.Errorf("explore: negative schedule choice %d", c)
		}
		buf = appendUvarint(buf, uint64(c))
	}
	return prefix + base64.RawURLEncoding.EncodeToString(buf), nil
}

type tokenReader struct {
	buf []byte
	err error
}

func (r *tokenReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("explore: token truncated at %s", what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *tokenReader) byteVal(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.err = fmt.Errorf("explore: token truncated at %s", what)
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *tokenReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.err = fmt.Errorf("explore: token truncated at %s", what)
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// DecodeToken parses a replay token back into the configuration, scenario,
// and schedule it encodes.
func DecodeToken(tok string) (Config, Scenario, []int, error) {
	var cfg Config
	var scn Scenario
	v2 := false
	var payload string
	switch {
	case strings.HasPrefix(tok, tokenPrefix):
		payload = strings.TrimPrefix(tok, tokenPrefix)
	case strings.HasPrefix(tok, tokenPrefixV2):
		payload = strings.TrimPrefix(tok, tokenPrefixV2)
		v2 = true
	default:
		return cfg, scn, nil, fmt.Errorf("explore: not a %q or %q token", tokenPrefix, tokenPrefixV2)
	}
	raw, err := base64.RawURLEncoding.DecodeString(payload)
	if err != nil {
		return cfg, scn, nil, fmt.Errorf("explore: token payload: %w", err)
	}
	r := &tokenReader{buf: raw}
	n := int(r.uvarint("switch count"))
	if r.err == nil && (n < 2 || n > 1<<16) {
		return cfg, scn, nil, fmt.Errorf("explore: implausible switch count %d", n)
	}
	nLinks := int(r.uvarint("link count"))
	if r.err == nil && (nLinks < 0 || nLinks > n*n) {
		return cfg, scn, nil, fmt.Errorf("explore: implausible link count %d", nLinks)
	}
	var g *topo.Graph
	if r.err == nil {
		g = topo.New(n)
	}
	for i := 0; i < nLinks && r.err == nil; i++ {
		a := topo.SwitchID(r.uvarint("link a"))
		b := topo.SwitchID(r.uvarint("link b"))
		delay := time.Duration(r.uvarint("link delay"))
		capBits := r.bytes(8, "link capacity")
		if r.err != nil {
			break
		}
		if err := g.AddLink(a, b, delay, math.Float64frombits(binary.BigEndian.Uint64(capBits))); err != nil {
			return cfg, scn, nil, fmt.Errorf("explore: token link: %w", err)
		}
	}
	nameLen := int(r.uvarint("algorithm name length"))
	if r.err == nil && nameLen > 64 {
		return cfg, scn, nil, fmt.Errorf("explore: implausible algorithm name length %d", nameLen)
	}
	name := string(r.bytes(nameLen, "algorithm name"))
	nKinds := int(r.uvarint("kind count"))
	var kinds map[lsa.ConnID]mctree.Kind
	if r.err == nil && nKinds > 0 {
		kinds = make(map[lsa.ConnID]mctree.Kind, nKinds)
	}
	for i := 0; i < nKinds && r.err == nil; i++ {
		id := lsa.ConnID(r.uvarint("kind conn"))
		kinds[id] = mctree.Kind(r.byteVal("kind value"))
	}
	flags := r.byteVal("flags")
	resyncRounds := int(r.uvarint("resync rounds"))
	maxDrops := int(r.uvarint("drop budget"))
	maxDups := int(r.uvarint("dup budget"))
	mutation := r.byteVal("mutation")
	nInjects := int(r.uvarint("inject count"))
	if r.err == nil && nInjects > 1<<20 {
		return cfg, scn, nil, fmt.Errorf("explore: implausible inject count %d", nInjects)
	}
	injects := make([]Inject, 0, min(nInjects, 1024))
	for i := 0; i < nInjects && r.err == nil; i++ {
		var inj Inject
		inj.Switch = topo.SwitchID(r.uvarint("inject switch"))
		inj.Event.Kind = lsa.Event(r.byteVal("inject kind"))
		inj.Event.Conn = lsa.ConnID(r.uvarint("inject conn"))
		inj.Event.Role = mctree.Role(r.byteVal("inject role"))
		inj.Event.Link.A = topo.SwitchID(r.uvarint("inject link a"))
		inj.Event.Link.B = topo.SwitchID(r.uvarint("inject link b"))
		inj.Event.Link.Down = r.byteVal("inject link down") != 0
		injects = append(injects, inj)
	}
	var faultOps []FaultOp
	if v2 {
		nFaults := int(r.uvarint("fault count"))
		if r.err == nil && nFaults > 1<<16 {
			return cfg, scn, nil, fmt.Errorf("explore: implausible fault count %d", nFaults)
		}
		faultOps = make([]FaultOp, 0, min(nFaults, 256))
		for i := 0; i < nFaults && r.err == nil; i++ {
			var op FaultOp
			op.Kind = FaultKind(r.byteVal("fault kind"))
			op.Switch = topo.SwitchID(r.uvarint("fault switch"))
			nGroups := int(r.uvarint("fault group count"))
			if r.err == nil && nGroups > 1<<16 {
				return cfg, scn, nil, fmt.Errorf("explore: implausible group count %d", nGroups)
			}
			for gi := 0; gi < nGroups && r.err == nil; gi++ {
				size := int(r.uvarint("fault group size"))
				if r.err == nil && size > 1<<16 {
					return cfg, scn, nil, fmt.Errorf("explore: implausible group size %d", size)
				}
				grp := make([]topo.SwitchID, 0, min(size, 1024))
				for k := 0; k < size && r.err == nil; k++ {
					grp = append(grp, topo.SwitchID(r.uvarint("fault group switch")))
				}
				op.Groups = append(op.Groups, grp)
			}
			faultOps = append(faultOps, op)
		}
	}
	nSched := int(r.uvarint("schedule length"))
	if r.err == nil && nSched > 1<<24 {
		return cfg, scn, nil, fmt.Errorf("explore: implausible schedule length %d", nSched)
	}
	sched := make([]int, 0, min(nSched, 4096))
	for i := 0; i < nSched && r.err == nil; i++ {
		sched = append(sched, int(r.uvarint("schedule choice")))
	}
	if r.err != nil {
		return cfg, scn, nil, r.err
	}
	if len(r.buf) != 0 {
		return cfg, scn, nil, fmt.Errorf("explore: %d trailing bytes in token", len(r.buf))
	}
	alg, err := route.ByName(name)
	if err != nil {
		return cfg, scn, nil, fmt.Errorf("explore: token algorithm: %w", err)
	}
	cfg = Config{
		Graph:           g,
		Algorithm:       alg,
		Kinds:           kinds,
		Resync:          flags&1 != 0,
		ResyncMaxRounds: resyncRounds,
		MaxDrops:        maxDrops,
		MaxDups:         maxDups,
		Mutation:        core.Mutation(mutation),
	}
	scn = Scenario{Injects: injects, Faults: faultOps}
	if err := cfg.validate(); err != nil {
		return cfg, scn, nil, err
	}
	if err := scn.validate(cfg.Graph); err != nil {
		return cfg, scn, nil, err
	}
	return cfg, scn, sched, nil
}
