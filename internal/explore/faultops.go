package explore

import (
	"fmt"
	"strings"

	"dgmc/internal/core"
	"dgmc/internal/topo"
)

// This file adds whole-network fault operations — partition, heal, crash,
// restart — to the schedule-exploration harness. A Scenario carries an
// ordered fault lane (Scenario.Faults); each operation becomes one enabled
// action firing at any point of the schedule relative to everything else,
// while the lane itself keeps program order. That is exactly the shape of
// the runtime harness's fault surface (rt.Cluster.Partition/Heal/KillNode/
// RestartNode), so a property verified here is a property of the same
// operations the live soaks perform.
//
// Semantics, mirroring the transport and runtime layers:
//
//   - Split: the partition is undetected (no link-state change, as with
//     rt.ChanFabric.SetPartition and faults.Injector), and cross-group
//     frames park in a held set until the heal, when they re-enter the
//     schedulable pool. The explorer floods origin-to-destination in one
//     hop, so parking is the faithful image of hop-by-hop flooding: a
//     frame blocked at the cut has reached the boundary switch, which
//     stores and forwards it onward once connectivity returns. Dropping
//     it instead would fabricate evidence-free permanent losses beyond the
//     cut — losses the real transport cannot produce and that no crossing
//     link's R-driven reconciliation can see (the far-side switch's E
//     never advances, so nothing ever asks for a replay). Frames already
//     in flight when the split fires keep their delivery actions for the
//     same reason.
//   - Heal: every up fabric link crossing the former groups reconciles in
//     both directions (core.Machine.ReconcileNeighbor), modelling the
//     hello-protocol contact when connectivity returns.
//   - Crash: the switch's volatile state is gone the moment it dies — its
//     machine is replaced by a blank one immediately, frames addressed to
//     it and its armed timers die with it. While dead it neither receives
//     frames nor accepts scenario injects.
//   - Restart: the switch comes back blank and cold-rejoins via
//     core.Machine.RequestFullResync. The rejoin exchange is ordinary
//     scheduled traffic, so the explorer also covers schedules where local
//     events race an incomplete rejoin.
//
// Soundness: a crash legitimately loses events that had not replicated
// (frames to the dead switch are dropped, and a blank restart forgets
// everything a neighbor does not hold), so any schedule containing a crash
// is held to the lossy quiescent standard — no switch may end silently
// wedged mid-recovery — and event conservation is waived for switches that
// ever crashed. Pure split/heal schedules lose nothing: cross-group frames
// are parked and released, and everything the reconciliation replays is
// additional. They therefore keep the strict standard — full convergence
// is required after every heal, in every interleaving of released frames,
// reconciliation exchanges, and fresh local events.

// FaultKind discriminates the fault-lane operations.
type FaultKind uint8

const (
	// FaultSplit partitions the network into Groups: cross-group frames
	// are silently lost until the matching FaultHeal.
	FaultSplit FaultKind = iota + 1
	// FaultHeal removes the active partition and triggers heal
	// reconciliation across every formerly-cut link.
	FaultHeal
	// FaultCrash kills Switch: volatile state, queued frames, and armed
	// timers are lost.
	FaultCrash
	// FaultRestart revives Switch blank and starts its cold rejoin.
	FaultRestart
)

func (k FaultKind) String() string {
	switch k {
	case FaultSplit:
		return "split"
	case FaultHeal:
		return "heal"
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// FaultOp is one operation of a scenario's fault lane.
type FaultOp struct {
	Kind FaultKind
	// Groups is the partition for FaultSplit: disjoint, non-empty groups
	// covering every switch.
	Groups [][]topo.SwitchID
	// Switch is the target of FaultCrash / FaultRestart.
	Switch topo.SwitchID
}

func (op FaultOp) String() string {
	switch op.Kind {
	case FaultSplit:
		return "split " + groupsString(op.Groups)
	case FaultHeal:
		return "heal partition"
	case FaultCrash:
		return fmt.Sprintf("crash switch %d", op.Switch)
	case FaultRestart:
		return fmt.Sprintf("restart switch %d (cold rejoin)", op.Switch)
	default:
		return op.Kind.String()
	}
}

func groupsString(groups [][]topo.SwitchID) string {
	var sb strings.Builder
	for gi, grp := range groups {
		if gi > 0 {
			sb.WriteByte('|')
		}
		for i, s := range grp {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", s)
		}
	}
	return sb.String()
}

// validateFaults statically checks the fault lane by walking it in program
// order: splits and heals alternate, a split never overlaps a dead switch
// (crash recovery and partition recovery are verified separately so each
// failure stays attributable), crashes hit live switches, restarts hit dead
// ones, and the lane ends with the network whole — quiescent-state
// invariants are only meaningful once every fault has been repaired.
func validateFaults(ops []FaultOp, g *topo.Graph) error {
	n := g.NumSwitches()
	splitActive := false
	dead := map[topo.SwitchID]bool{}
	for i, op := range ops {
		switch op.Kind {
		case FaultSplit:
			if splitActive {
				return fmt.Errorf("explore: fault %d: split while a split is active", i)
			}
			if len(dead) > 0 {
				return fmt.Errorf("explore: fault %d: split while a switch is dead", i)
			}
			if len(op.Groups) < 2 {
				return fmt.Errorf("explore: fault %d: split needs at least 2 groups", i)
			}
			seen := map[topo.SwitchID]bool{}
			total := 0
			for gi, grp := range op.Groups {
				if len(grp) == 0 {
					return fmt.Errorf("explore: fault %d: empty group %d", i, gi)
				}
				for _, s := range grp {
					if s < 0 || int(s) >= n {
						return fmt.Errorf("explore: fault %d: switch %d out of range [0,%d)", i, s, n)
					}
					if seen[s] {
						return fmt.Errorf("explore: fault %d: switch %d in two groups", i, s)
					}
					seen[s] = true
					total++
				}
			}
			if total != n {
				return fmt.Errorf("explore: fault %d: groups cover %d of %d switches", i, total, n)
			}
			splitActive = true
		case FaultHeal:
			if !splitActive {
				return fmt.Errorf("explore: fault %d: heal without an active split", i)
			}
			splitActive = false
		case FaultCrash:
			if splitActive {
				return fmt.Errorf("explore: fault %d: crash during a split", i)
			}
			if op.Switch < 0 || int(op.Switch) >= n {
				return fmt.Errorf("explore: fault %d: switch %d out of range [0,%d)", i, op.Switch, n)
			}
			if dead[op.Switch] {
				return fmt.Errorf("explore: fault %d: switch %d is already dead", i, op.Switch)
			}
			dead[op.Switch] = true
		case FaultRestart:
			if !dead[op.Switch] {
				return fmt.Errorf("explore: fault %d: restart of switch %d, which is not dead", i, op.Switch)
			}
			delete(dead, op.Switch)
		default:
			return fmt.Errorf("explore: fault %d: invalid kind %d", i, op.Kind)
		}
	}
	if splitActive {
		return fmt.Errorf("explore: fault lane ends with an unhealed split")
	}
	if len(dead) > 0 {
		return fmt.Errorf("explore: fault lane ends with %d dead switch(es)", len(dead))
	}
	return nil
}

// partitioned reports whether an active split separates a and b.
func (w *World) partitioned(a, b topo.SwitchID) bool {
	return w.side != nil && w.side[a] != w.side[b]
}

// applyFault fires the next fault-lane operation.
func (w *World) applyFault() {
	op := w.scn.Faults[w.faultPos]
	w.faultPos++
	switch op.Kind {
	case FaultSplit:
		side := make([]int, w.n)
		for gi, grp := range op.Groups {
			for _, s := range grp {
				side[s] = gi
			}
		}
		w.side = side
		// Frames already in flight keep their delivery actions; sends
		// issued while the split is active park in w.held (see the file
		// comment and World.flood).
	case FaultHeal:
		side := w.side
		w.side = nil
		// Parked cross-group frames re-enter the schedulable pool and race
		// the reconciliation traffic below — the explorer decides who wins.
		w.pending = append(w.pending, w.held...)
		w.held = nil
		for _, l := range w.graph.Links() {
			if !l.Down && side[l.A] != side[l.B] {
				w.machines[l.A].ReconcileNeighbor(l.B)
				w.machines[l.B].ReconcileNeighbor(l.A)
			}
		}
	case FaultCrash:
		s := op.Switch
		// The origin-authority invariant compares against the most events
		// the origin ever issued; a crash resets the origin's live counter,
		// so record the high-water mark before the state is lost.
		m := w.machines[s]
		for _, conn := range m.AllConnections() {
			snap, _ := m.Connection(conn)
			hw := w.ownHigh[conn]
			if hw == nil {
				hw = make([]uint32, w.n)
				w.ownHigh[conn] = hw
			}
			if int(s) < len(snap.R) && snap.R[s] > hw[s] {
				hw[s] = snap.R[s]
			}
		}
		w.crashed[s] = true
		w.crashedOnce[s] = true
		w.crashedEver = true
		kept := w.pending[:0]
		for _, pm := range w.pending {
			if pm.to != s {
				kept = append(kept, pm)
			}
		}
		w.pending = kept
		kt := w.timers[:0]
		for _, t := range w.timers {
			if t.sw != s {
				kt = append(kt, t)
			}
		}
		w.timers = kt
		// Volatile state dies with the process: install the blank successor
		// machine now. Nothing can reach it until the restart.
		nm, err := core.NewMachine(core.MachineConfig{
			ID:              s,
			Graph:           w.cfg.Graph,
			Algorithm:       w.cfg.Algorithm,
			Kinds:           w.cfg.Kinds,
			Resync:          w.cfg.Resync,
			ResyncMaxRounds: w.cfg.ResyncMaxRounds,
			Mutation:        w.cfg.Mutation,
		}, &worldHost{w: w, id: s})
		if err != nil {
			panic(fmt.Sprintf("explore: blank machine for crashed switch %d: %v", s, err))
		}
		w.machines[s] = nm
	case FaultRestart:
		s := op.Switch
		w.crashed[s] = false
		w.machines[s].RequestFullResync()
	}
}
