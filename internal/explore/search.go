package explore

import (
	"fmt"
	"math/rand"
)

// autoCompleteCap bounds the deterministic run-to-quiescence tail appended
// to every explicit schedule. Exceeding it means the system fails to
// quiesce (e.g. a livelock), which is reported as an error distinct from
// an invariant violation.
const autoCompleteCap = 100000

// Options bounds a search.
type Options struct {
	// MaxDepth caps schedule length in exhaustive mode (0 = unbounded:
	// rely on quiescence and MaxStates).
	MaxDepth int
	// MaxStates caps distinct states visited in exhaustive mode
	// (default 2,000,000).
	MaxStates int
	// Walks is the number of random schedules in walk mode (default 256).
	Walks int
	// Seed seeds walk mode, and perturbs guided-mode tie-breaking. Equal
	// seeds reproduce the same search.
	Seed int64
	// Budget caps the total transitions — frontier expansions plus
	// drain-probe steps — of guided and backward search (default 200,000).
	Budget int
	// Frontier caps the guided priority queue: when more states are live,
	// the lowest-priority ones are discarded (beam behavior, marks
	// Truncated). Default 4,096.
	Frontier int
	// SuspectKinds restricts backward search to schedules reaching the
	// given suspect kinds (nil/empty = all kinds).
	SuspectKinds []SuspectKind
	// TopSuspects is how many minimized suspect states backward search
	// expands in its second phase (default 16).
	TopSuspects int
	// BackDepth bounds the exhaustive neighborhood explored around each
	// minimized suspect state (default 6).
	BackDepth int
	// Progress, when non-nil, receives periodic search statistics.
	Progress func(Stats)

	// expandHook observes every frontier expansion of guided/backward
	// search in order (tests pin search-order determinism with it).
	expandHook func(depth, score int, hash [32]byte)
}

func (o *Options) fill() {
	if o.MaxStates <= 0 {
		o.MaxStates = 2000000
	}
	if o.Walks <= 0 {
		o.Walks = 256
	}
	if o.Budget <= 0 {
		o.Budget = 200000
	}
	if o.Frontier <= 0 {
		o.Frontier = 4096
	}
	if o.TopSuspects <= 0 {
		o.TopSuspects = 16
	}
	if o.BackDepth <= 0 {
		o.BackDepth = 6
	}
}

// Coverage is the exploration map guided search persists in Stats: which
// qualitative stamp-vector shapes the search reached, how often each
// suspect kind was observed, and how far into the fault lane it got.
// Exhaustive and walk modes leave it zero.
type Coverage struct {
	// StampShapes counts states per qualitative shape (see stampShape).
	StampShapes map[string]int
	// SuspectKinds counts states exhibiting each suspect kind, keyed by
	// SuspectKind.String().
	SuspectKinds map[string]int
	// FaultDepth is the deepest fault-lane position reached.
	FaultDepth int
}

func newCoverage() Coverage {
	return Coverage{
		StampShapes:  make(map[string]int),
		SuspectKinds: make(map[string]int),
	}
}

// Stats summarizes a search.
type Stats struct {
	// States is the number of distinct world states visited (exhaustive)
	// or transitions executed (walk).
	States int
	// Transitions is the number of state transitions applied.
	Transitions int
	// Quiescent is the number of quiescent states checked.
	Quiescent int
	// MaxDepthSeen is the longest schedule prefix explored.
	MaxDepthSeen int
	// Truncated reports that a bound (MaxDepth, MaxStates, Budget, or
	// Frontier) cut the search short, so absence of violations is not a
	// proof.
	Truncated bool
	// Probes counts drain-to-quiescence probes run by guided search;
	// ProbeSteps counts the transitions they executed (charged against
	// Budget alongside Transitions).
	Probes     int
	ProbeSteps int
	// SuspectsFound counts distinct suspect states harvested by backward
	// search's forward sweep.
	SuspectsFound int
	// Coverage is the guided-search exploration map (zero for exhaustive
	// and walk modes).
	Coverage Coverage
}

// spent is the total budget consumption of a guided/backward search.
func (s *Stats) spent() int { return s.Transitions + s.ProbeSteps }

// SuspectReport is one minimized suspect state found by backward search:
// not a violation, but a near-violation worth human (or further machine)
// attention, replayable via its token.
type SuspectReport struct {
	// Kinds names the suspect kinds the state exhibits.
	Kinds []string
	// Score is the weighted suspicion total.
	Score int
	// Schedule reaches the suspect state from the initial world (already
	// ddmin-minimized against the suspect signature).
	Schedule []int
	// Token replays the schedule via `dgmccheck -replay` (the run is
	// clean — the token documents how to reach the state, not a failure).
	Token string
}

// Result is the outcome of a search.
type Result struct {
	Stats Stats
	// Violation is nil when every explored schedule satisfied the
	// invariants.
	Violation *Violation
	// Suspects are the minimized suspect states backward search expanded
	// (nil outside backward mode, and omitted once a violation is found).
	Suspects []SuspectReport
}

type bfsNode struct {
	w     *World
	sched []int
}

// Exhaustive explores every reachable interleaving of (cfg, scn) by
// breadth-first search over world states, deduplicating by canonical state
// hash. BFS order means the first violation found has a minimal-length
// schedule. The search is deterministic: equal inputs explore identical
// state sequences and return identical results.
func Exhaustive(cfg Config, scn Scenario, opt Options) (*Result, error) {
	opt.fill()
	root, err := NewWorld(cfg, scn)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	visited := map[[32]byte]bool{root.hash(): true}
	queue := []bfsNode{{w: root, sched: nil}}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if len(node.sched) > res.Stats.MaxDepthSeen {
			res.Stats.MaxDepthSeen = len(node.sched)
		}
		acts := node.w.enabled()
		if len(acts) == 0 {
			res.Stats.Quiescent++
			if err := node.w.checkQuiescent(); err != nil {
				res.Violation = buildViolation(cfg, scn, node.sched, err, true)
				return res, nil
			}
			continue
		}
		if opt.MaxDepth > 0 && len(node.sched) >= opt.MaxDepth {
			res.Stats.Truncated = true
			continue
		}
		for i := range acts {
			child := node.w.clone()
			child.apply(acts[i])
			res.Stats.Transitions++
			sched := append(append([]int(nil), node.sched...), i)
			if err := child.checkStep(); err != nil {
				res.Violation = buildViolation(cfg, scn, sched, err, false)
				return res, nil
			}
			h := child.hash()
			if visited[h] {
				continue
			}
			if len(visited) >= opt.MaxStates {
				res.Stats.Truncated = true
				continue
			}
			visited[h] = true
			queue = append(queue, bfsNode{w: child, sched: sched})
		}
		res.Stats.States = len(visited)
		if opt.Progress != nil && res.Stats.States%1000 == 0 {
			opt.Progress(res.Stats)
		}
	}
	res.Stats.States = len(visited)
	return res, nil
}

// RandomWalk samples opt.Walks random schedules, each run to quiescence,
// checking invariants along the way. Violating schedules are shrunk to a
// minimal counterexample before being reported. Deterministic in
// (cfg, scn, opt.Seed, opt.Walks).
func RandomWalk(cfg Config, scn Scenario, opt Options) (*Result, error) {
	opt.fill()
	if _, err := NewWorld(cfg, scn); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}
	for walk := 0; walk < opt.Walks; walk++ {
		// Draw the whole schedule up front: applyIndex clamps, so a
		// generous prefix of random ints is a valid schedule and the walk
		// needs no feedback from the world to stay in range.
		sched := make([]int, 0, 64)
		w, err := NewWorld(cfg, scn)
		if err != nil {
			return nil, err
		}
		for steps := 0; ; steps++ {
			if steps > autoCompleteCap {
				return nil, fmt.Errorf("explore: walk %d exceeded %d steps without quiescing", walk, autoCompleteCap)
			}
			n := len(w.enabled())
			if n == 0 {
				break
			}
			choice := rng.Intn(n)
			sched = append(sched, choice)
			w.applyIndex(choice)
			res.Stats.Transitions++
			if err := w.checkStep(); err != nil {
				shrunk := Shrink(cfg, scn, sched)
				res.Violation = buildViolation(cfg, scn, shrunk, err, false)
				return res, nil
			}
		}
		if len(sched) > res.Stats.MaxDepthSeen {
			res.Stats.MaxDepthSeen = len(sched)
		}
		res.Stats.Quiescent++
		if err := w.checkQuiescent(); err != nil {
			shrunk := Shrink(cfg, scn, sched)
			res.Violation = buildViolation(cfg, scn, shrunk, err, true)
			return res, nil
		}
		res.Stats.States++
		if opt.Progress != nil && (walk+1)%32 == 0 {
			opt.Progress(res.Stats)
		}
	}
	return res, nil
}

// runOutcome is the result of executing one explicit schedule.
type runOutcome struct {
	w *World
	// violation is the first invariant failure, or nil.
	violation error
	// quiescentViolation marks violation as a quiescent-state property.
	quiescentViolation bool
	// steps counts all transitions executed, including the deterministic
	// auto-completion tail beyond the explicit schedule.
	steps int
}

// runSchedule executes sched from the initial world of (cfg, scn), then
// auto-completes deterministically (always choice 0, i.e. fault-free
// first-in-canonical-order) until quiescence, checking invariants
// throughout. With trace set, the returned world carries a full
// action/protocol trace.
func runSchedule(cfg Config, scn Scenario, sched []int, trace bool) (*runOutcome, error) {
	w, err := NewWorld(cfg, scn)
	if err != nil {
		return nil, err
	}
	w.tracing = trace
	out := &runOutcome{w: w}
	step := func(choice int) (bool, error) {
		if out.steps > autoCompleteCap {
			return false, fmt.Errorf("explore: schedule exceeded %d steps without quiescing", autoCompleteCap)
		}
		if _, ok := w.applyIndex(choice); !ok {
			return false, nil
		}
		out.steps++
		if err := w.checkStep(); err != nil {
			out.violation = err
			return false, nil
		}
		return true, nil
	}
	for _, choice := range sched {
		cont, err := step(choice)
		if err != nil {
			return nil, err
		}
		if !cont {
			break
		}
	}
	for out.violation == nil {
		cont, err := step(0)
		if err != nil {
			return nil, err
		}
		if !cont {
			break
		}
	}
	if out.violation == nil && w.Quiescent() {
		if err := w.checkQuiescent(); err != nil {
			out.violation = err
			out.quiescentViolation = true
		}
	}
	return out, nil
}

// Replay executes an explicit schedule with tracing and returns the final
// world and the violation it reproduces (nil if the schedule is clean).
func Replay(cfg Config, scn Scenario, sched []int) (*World, *Violation, error) {
	out, err := runSchedule(cfg, scn, sched, true)
	if err != nil {
		return nil, nil, err
	}
	if out.violation == nil {
		return out.w, nil, nil
	}
	v := buildViolation(cfg, scn, sched, out.violation, out.quiescentViolation)
	v.Trace = out.w.Trace()
	return out.w, v, nil
}

// runPrefix executes exactly sched — no auto-completion tail — and
// returns the resulting world (which is generally not quiescent). Backward
// search uses it to re-derive suspect states while minimizing the prefix
// that reaches them; invariant violations during the prefix are ignored
// here (the violation path reports through runSchedule instead).
func runPrefix(cfg Config, scn Scenario, sched []int) (*World, error) {
	w, err := NewWorld(cfg, scn)
	if err != nil {
		return nil, err
	}
	for i, choice := range sched {
		if i > autoCompleteCap {
			return nil, fmt.Errorf("explore: prefix exceeded %d steps", autoCompleteCap)
		}
		if _, ok := w.applyIndex(choice); !ok {
			break
		}
	}
	return w, nil
}

// Shrink minimizes a violating schedule, delta-debugging style: first
// remove chunks of decreasing size, then lower each surviving choice to 0.
// Clamped indices plus deterministic auto-completion keep every candidate
// schedule executable, so shrinking never has to repair a broken prefix.
// The result still violates an invariant (not necessarily the same one).
func Shrink(cfg Config, scn Scenario, sched []int) []int {
	return shrinkWith(sched, func(s []int) bool {
		out, err := runSchedule(cfg, scn, s, false)
		return err == nil && out.violation != nil
	})
}

// shrinkWith is the generalized ddmin core: minimize sched while keep
// still holds. Shrink instantiates it with "the run violates"; backward
// search instantiates it with "the prefix still reaches the suspect
// signature".
func shrinkWith(sched []int, keep func([]int) bool) []int {
	if !keep(sched) {
		return sched
	}
	cur := append([]int(nil), sched...)
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]int(nil), cur[:start]...), cur[start+chunk:]...)
			if keep(cand) {
				cur = cand
				removed = true
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removed {
			break
		}
		if chunk > 1 {
			chunk /= 2
		} else if !removed {
			break
		}
	}
	for i := range cur {
		if cur[i] == 0 {
			continue
		}
		cand := append([]int(nil), cur...)
		cand[i] = 0
		if keep(cand) {
			cur = cand
		}
	}
	return cur
}

// buildViolation assembles a Violation for sched: replays it with tracing
// for the human-readable trace and encodes the replay token.
func buildViolation(cfg Config, scn Scenario, sched []int, err error, quiescent bool) *Violation {
	v := &Violation{
		Err:       err,
		Schedule:  append([]int(nil), sched...),
		Quiescent: quiescent,
	}
	if tok, tokErr := EncodeToken(cfg, scn, sched); tokErr == nil {
		v.Token = tok
	} else {
		v.Token = fmt.Sprintf("<token error: %v>", tokErr)
	}
	if out, runErr := runSchedule(cfg, scn, sched, true); runErr == nil {
		v.Trace = out.w.Trace()
		if out.violation != nil {
			// The shrunk schedule's own failure is authoritative: ddmin
			// only preserves "some violation", so the minimized schedule
			// may fail differently than the state the search first hit,
			// and Err must be exactly what Token replays to.
			v.Err = out.violation
			v.Quiescent = out.quiescentViolation
		}
	}
	return v
}
