package explore

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// TestExhaustiveSplitHealConverges is the partition-tolerance gate: on a
// 4-switch ring, a split into {0,1}|{2,3} and its heal fire at EVERY point
// of every schedule — before, during, and after the join's flood, racing
// the parked-frame release and the reconciliation exchanges — and every
// interleaving must end fully converged (the strict quiescent standard:
// identical members, stamps, and topologies everywhere). This is the
// checker-level proof of the heal design: nothing a partition parks or a
// reconciliation replays may leave any switch behind.
func TestExhaustiveSplitHealConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("state space too large for -short")
	}
	scn := Scenario{
		Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		},
		Faults: []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1}, {2, 3}}},
			{Kind: FaultHeal},
		},
	}
	cfg := Config{Graph: ring4(t), Resync: true, ResyncMaxRounds: 2}
	res, err := Exhaustive(cfg, scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("split/heal violation: %v\nschedule %v\ntrace:\n%s",
			res.Violation.Err, res.Violation.Schedule, strings.Join(res.Violation.Trace, "\n"))
	}
	if res.Stats.Truncated {
		t.Fatalf("search truncated: %+v", res.Stats)
	}
	if res.Stats.Quiescent == 0 {
		t.Fatalf("no quiescent states checked: %+v", res.Stats)
	}
	t.Logf("stats: %+v", res.Stats)
}

// TestExhaustiveSplitHealCrashRestart is the combined scenario of the CI
// model-checker gate: on a 4-switch line, a split/heal cycle followed by a
// crash and cold restart of an endpoint, exhaustively interleaved with a
// join. Crash schedules are held to the lossy quiescent standard —
// information a crash destroys may stay lost, but no switch may end
// silently wedged mid-recovery.
func TestExhaustiveSplitHealCrashRestart(t *testing.T) {
	g, err := topo.Line(4, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{
		Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		},
		Faults: []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1}, {2, 3}}},
			{Kind: FaultHeal},
			{Kind: FaultCrash, Switch: 3},
			{Kind: FaultRestart, Switch: 3},
		},
	}
	cfg := Config{Graph: g, Resync: true, ResyncMaxRounds: 2}
	res, err := Exhaustive(cfg, scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("split/heal/crash violation: %v\nschedule %v\ntrace:\n%s",
			res.Violation.Err, res.Violation.Schedule, strings.Join(res.Violation.Trace, "\n"))
	}
	if res.Stats.Truncated {
		t.Fatalf("search truncated: %+v", res.Stats)
	}
	t.Logf("stats: %+v", res.Stats)
}

// TestExhaustiveCrashRestartRecovers explores every interleaving of a
// crash and cold restart with two concurrent joins on a 2-switch line —
// including schedules that crash switch 1 before, between, and after the
// joins, and inject its join while the rejoin exchange is still in flight.
func TestExhaustiveCrashRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("state space too large for -short")
	}
	g, err := topo.Line(2, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{
		Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
			{Switch: 1, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}},
		},
		Faults: []FaultOp{
			{Kind: FaultCrash, Switch: 1},
			{Kind: FaultRestart, Switch: 1},
		},
	}
	cfg := Config{Graph: g, Resync: true, ResyncMaxRounds: 2}
	res, err := Exhaustive(cfg, scn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("crash/restart violation: %v\nschedule %v\ntrace:\n%s",
			res.Violation.Err, res.Violation.Schedule, strings.Join(res.Violation.Trace, "\n"))
	}
	if res.Stats.Truncated {
		t.Fatalf("search truncated: %+v", res.Stats)
	}
	t.Logf("stats: %+v", res.Stats)
}

// TestRandomWalkMobility samples deep schedules combining a split/heal
// cycle, a crash/restart, drops, and a dup on the 4-switch ring — the
// model-checker twin of the runtime mobility soak. Every sampled schedule
// must satisfy the lossy quiescent standard.
func TestRandomWalkMobility(t *testing.T) {
	scn := twoJoins()
	scn.Faults = []FaultOp{
		{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 3}, {1, 2}}},
		{Kind: FaultHeal},
		{Kind: FaultCrash, Switch: 2},
		{Kind: FaultRestart, Switch: 2},
	}
	cfg := Config{Graph: ring4(t), Resync: true, ResyncMaxRounds: 2, MaxDrops: 1, MaxDups: 1}
	res, err := RandomWalk(cfg, scn, Options{Walks: 128, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("mobility walk violation: %v\nschedule %v\ntrace:\n%s",
			res.Violation.Err, res.Violation.Schedule, strings.Join(res.Violation.Trace, "\n"))
	}
	if res.Stats.Quiescent != 128 {
		t.Fatalf("want 128 quiescent walks, got %d", res.Stats.Quiescent)
	}
}

// TestFaultLaneValidation covers the static fault-lane checks.
func TestFaultLaneValidation(t *testing.T) {
	g := ring4(t)
	join := Inject{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Receiver}}
	split := FaultOp{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1}, {2, 3}}}
	cases := []struct {
		name string
		cfg  Config
		ops  []FaultOp
	}{
		{"faults without resync", Config{Graph: g}, []FaultOp{split, {Kind: FaultHeal}}},
		{"unhealed split", Config{Graph: g, Resync: true}, []FaultOp{split}},
		{"heal without split", Config{Graph: g, Resync: true}, []FaultOp{{Kind: FaultHeal}}},
		{"double split", Config{Graph: g, Resync: true}, []FaultOp{split, split, {Kind: FaultHeal}, {Kind: FaultHeal}}},
		{"overlapping groups", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1, 2}, {2, 3}}}, {Kind: FaultHeal}}},
		{"incomplete groups", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1}, {2}}}, {Kind: FaultHeal}}},
		{"empty group", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1, 2, 3}, {}}}, {Kind: FaultHeal}}},
		{"single group", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1, 2, 3}}}, {Kind: FaultHeal}}},
		{"group switch out of range", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1}, {2, 9}}}, {Kind: FaultHeal}}},
		{"restart of live switch", Config{Graph: g, Resync: true}, []FaultOp{{Kind: FaultRestart, Switch: 0}}},
		{"double crash", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultCrash, Switch: 0}, {Kind: FaultCrash, Switch: 0},
			{Kind: FaultRestart, Switch: 0}, {Kind: FaultRestart, Switch: 0}}},
		{"dead at end", Config{Graph: g, Resync: true}, []FaultOp{{Kind: FaultCrash, Switch: 0}}},
		{"crash out of range", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultCrash, Switch: 7}, {Kind: FaultRestart, Switch: 7}}},
		{"crash during split", Config{Graph: g, Resync: true}, []FaultOp{
			split, {Kind: FaultCrash, Switch: 0}, {Kind: FaultRestart, Switch: 0}, {Kind: FaultHeal}}},
		{"split while dead", Config{Graph: g, Resync: true}, []FaultOp{
			{Kind: FaultCrash, Switch: 0}, split, {Kind: FaultHeal}, {Kind: FaultRestart, Switch: 0}}},
		{"invalid kind", Config{Graph: g, Resync: true}, []FaultOp{{Kind: FaultKind(99)}}},
	}
	for _, tc := range cases {
		if _, err := NewWorld(tc.cfg, Scenario{Injects: []Inject{join}, Faults: tc.ops}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// And a well-formed lane passes.
	ok := []FaultOp{
		split, {Kind: FaultHeal},
		{Kind: FaultCrash, Switch: 3}, {Kind: FaultRestart, Switch: 3},
	}
	if _, err := NewWorld(Config{Graph: g, Resync: true}, Scenario{Injects: []Inject{join}, Faults: ok}); err != nil {
		t.Errorf("valid lane rejected: %v", err)
	}
}

// TestTokenV2RoundTrip checks the fault-lane token extension: scenarios
// with fault operations encode under the v2 prefix and round-trip exactly
// (including step-by-step hash equality of the replayed world), while
// fault-free scenarios keep emitting v1 tokens.
func TestTokenV2RoundTrip(t *testing.T) {
	cfg := Config{Graph: ring4(t), Resync: true, ResyncMaxRounds: 2}
	scn := twoJoins()
	scn.Faults = []FaultOp{
		{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0, 1}, {2, 3}}},
		{Kind: FaultHeal},
		{Kind: FaultCrash, Switch: 2},
		{Kind: FaultRestart, Switch: 2},
	}
	sched := []int{2, 0, 5, 1, 0}
	tok, err := EncodeToken(cfg, scn, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok, "dgmc-sched-v2:") {
		t.Fatalf("fault-lane token %q not v2", tok)
	}
	dcfg, dscn, dsched, err := DecodeToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(dscn.Faults) != 4 {
		t.Fatalf("fault lane mangled: %+v", dscn.Faults)
	}
	if dscn.Faults[0].Kind != FaultSplit || len(dscn.Faults[0].Groups) != 2 ||
		len(dscn.Faults[0].Groups[1]) != 2 || dscn.Faults[0].Groups[1][1] != 3 {
		t.Fatalf("split op mangled: %+v", dscn.Faults[0])
	}
	if dscn.Faults[2].Kind != FaultCrash || dscn.Faults[2].Switch != 2 {
		t.Fatalf("crash op mangled: %+v", dscn.Faults[2])
	}
	if len(dsched) != len(sched) {
		t.Fatalf("schedule mangled: %v", dsched)
	}
	// The decoded side replays hash-identically.
	w1, err := NewWorld(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWorld(dcfg, dscn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sched)+32; i++ {
		if w1.hash() != w2.hash() {
			t.Fatalf("worlds diverge at step %d", i)
		}
		c := 0
		if i < len(sched) {
			c = sched[i]
		}
		_, ok1 := w1.applyIndex(c)
		_, ok2 := w2.applyIndex(c)
		if ok1 != ok2 {
			t.Fatalf("quiescence diverges at step %d", i)
		}
		if !ok1 {
			break
		}
	}

	// Fault-free scenarios still produce v1 tokens.
	tok1, err := EncodeToken(Config{Graph: ring4(t)}, twoJoins(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok1, "dgmc-sched-v1:") {
		t.Fatalf("fault-free token %q not v1", tok1)
	}
}

// TestExhaustiveFaultsDeterministic: the fault-extended search is as
// replayable as the base one — equal inputs, identical stats.
func TestExhaustiveFaultsDeterministic(t *testing.T) {
	g, err := topo.Line(3, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{
		Injects: []Inject{
			{Switch: 0, Event: core.LocalEvent{Conn: 1, Kind: lsa.Join, Role: mctree.Sender | mctree.Receiver}},
		},
		Faults: []FaultOp{
			{Kind: FaultSplit, Groups: [][]topo.SwitchID{{0}, {1, 2}}},
			{Kind: FaultHeal},
		},
	}
	cfg := Config{Graph: g, Resync: true, ResyncMaxRounds: 2}
	var prev *Result
	for i := 0; i < 2; i++ {
		res, err := Exhaustive(cfg, scn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("violation: %v\ntrace:\n%s", res.Violation.Err, strings.Join(res.Violation.Trace, "\n"))
		}
		if prev != nil && !reflect.DeepEqual(prev, res) {
			t.Fatalf("non-deterministic search: run 1 %+v, run 2 %+v", prev.Stats, res.Stats)
		}
		r := *res
		prev = &r
	}
}
