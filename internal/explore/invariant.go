package explore

import (
	"fmt"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// This file defines the checked properties.
//
// Per-state invariants (checkStep) must hold after every transition:
//
//   - Vector bounds: R ≤ E and C ≤ E at every switch. (C ≤ R is NOT an
//     invariant: an accepted proposal's stamp can cover events the local
//     switch still holds buffered out of order, so C can transiently run
//     ahead of R.)
//   - Origin authority: R[x] and E[x] at any switch never exceed R[x] at
//     switch x itself — event counters originate at x and flow outward,
//     so nobody can know of more x-events than x has issued.
//
// Quiescent invariants (checkQuiescent) must hold whenever no action is
// enabled; they mirror Domain.CheckConverged so the explorer enforces the
// same consensus definition as the timed simulator:
//
//   - Within each fabric component, every switch with state for a
//     connection agrees on the committed stamp, member list, and installed
//     topology, and the topology is a valid tree/forest over the members
//     reachable in that component.
//   - In maximum-size components the stamps have also settled: R == E == C
//     (no lost events, no lost proposal-wakeups). Minority fragments may
//     hold legitimately stale state — the paper defers partition recovery —
//     and are checked for internal agreement only.
//   - Event conservation: each switch's own event counter covers every
//     membership event the scenario injected there (nothing vanished
//     before reaching the protocol).
//
// Schedules on which the explorer chose a Drop are held to a weaker
// quiescent standard. The paper assumes reliable flooding, and the
// simulator's fabric repairs per-hop losses by retransmission; a
// permanently lost LSA is therefore outside the protocol's guarantee, and
// a switch that never hears anything revealing the gap (its R still equals
// its E) legitimately ends divergent. What gap recovery does promise —
// and what lossy schedules check — is that no switch ends silently
// wedged: any connection still gapped (R < E, buffered out-of-order
// arrivals, or a lagging commit) must have exhausted its resync round
// budget, never stalled with rounds to spare and no timer armed (a lost
// wakeup). Event conservation is checked in both modes.

// Violation is an invariant failure found during exploration.
type Violation struct {
	// Err describes the failed invariant.
	Err error
	// Schedule is the choice sequence that reaches the failure from the
	// initial world (clamped indices; see World.applyIndex).
	Schedule []int
	// Token replays this violation via `dgmccheck -replay`.
	Token string
	// Trace is the human-readable action/protocol trace of the replay.
	Trace []string
	// Quiescent reports whether the failure is a quiescent-state property
	// (as opposed to a per-step one).
	Quiescent bool
}

func (v *Violation) Error() string {
	if v == nil {
		return "<nil>"
	}
	return v.Err.Error()
}

// checkStep verifies the per-state invariants.
func (w *World) checkStep() error {
	// Origin-authoritative event counts: own[x] = R[x] at switch x.
	own := make(map[lsa.ConnID][]uint32)
	for s, m := range w.machines {
		for _, conn := range m.AllConnections() {
			snap, _ := m.Connection(conn)
			counts := own[conn]
			if counts == nil {
				counts = make([]uint32, w.n)
				own[conn] = counts
			}
			if s < len(snap.R) {
				counts[s] = snap.R[s]
			}
		}
	}
	// A crash resets the origin's live counter; the authority bound is the
	// most events the origin EVER issued (high-water marks captured at
	// crash time), not its current, possibly still-recovering count.
	for conn, hw := range w.ownHigh {
		counts := own[conn]
		if counts == nil {
			counts = make([]uint32, w.n)
			own[conn] = counts
		}
		for x := range hw {
			if hw[x] > counts[x] {
				counts[x] = hw[x]
			}
		}
	}
	for s, m := range w.machines {
		for _, conn := range m.AllConnections() {
			snap, _ := m.Connection(conn)
			if !snap.E.Geq(snap.R) {
				return fmt.Errorf("switch %d conn %d: R exceeds E: R=%s E=%s", s, conn, snap.R, snap.E)
			}
			if !snap.E.Geq(snap.C) {
				return fmt.Errorf("switch %d conn %d: C exceeds E: C=%s E=%s", s, conn, snap.C, snap.E)
			}
			counts := own[conn]
			for x := 0; x < w.n && x < len(snap.R); x++ {
				if snap.R[x] > counts[x] {
					return fmt.Errorf("switch %d conn %d: R[%d]=%d exceeds origin's own count %d",
						s, conn, x, snap.R[x], counts[x])
				}
				if snap.E[x] > counts[x] {
					return fmt.Errorf("switch %d conn %d: E[%d]=%d exceeds origin's own count %d",
						s, conn, x, snap.E[x], counts[x])
				}
			}
		}
	}
	return nil
}

// lossyStandard reports whether this schedule's history downgrades it to
// the weakened quiescent standard. Crashes, like budgeted drops,
// legitimately lose information (frames queued at the dead switch, events
// a blank restart finds no holder for), so any schedule containing either
// is held to the lossy standard. Pure split/heal schedules lose nothing
// heal reconciliation cannot replay and keep the strict standard.
func (w *World) lossyStandard() bool {
	return w.dropsLeft < w.cfg.MaxDrops || w.crashedEver
}

// checkQuiescent verifies the consensus invariants. Call only when no
// action is enabled.
func (w *World) checkQuiescent() error {
	if w.lossyStandard() {
		return w.checkQuiescentLossy()
	}
	seen := make(map[topo.SwitchID]bool, w.n)
	var comps [][]topo.SwitchID
	maxSize := 0
	for s := 0; s < w.n; s++ {
		start := topo.SwitchID(s)
		if seen[start] {
			continue
		}
		comp := w.graph.Component(start)
		for _, c := range comp {
			seen[c] = true
		}
		comps = append(comps, comp)
		if len(comp) > maxSize {
			maxSize = len(comp)
		}
	}
	for _, comp := range comps {
		inComp := make(map[topo.SwitchID]bool, len(comp))
		for _, c := range comp {
			inComp[c] = true
		}
		if err := w.checkComponent(comp, inComp, len(comp) == maxSize); err != nil {
			return err
		}
	}
	return w.checkEventConservation()
}

// checkQuiescentLossy is the weakened quiescent check for schedules that
// permanently dropped at least one message (see the file comment): no
// switch may end silently wedged mid-recovery.
func (w *World) checkQuiescentLossy() error {
	for s, m := range w.machines {
		for _, conn := range m.AllConnections() {
			if m.Gapped(conn) && !m.ResyncGaveUp(conn) {
				snap, _ := m.Connection(conn)
				return fmt.Errorf("quiescent: switch %d conn %d wedged mid-recovery with resync rounds to spare: R=%s E=%s C=%s",
					s, conn, snap.R, snap.E, snap.C)
			}
		}
	}
	return w.checkEventConservation()
}

// checkComponent mirrors core.Domain's checkComponent: agreement among the
// switches of one fabric component, plus settled stamps and topology
// validity in strict (maximum-size) components.
func (w *World) checkComponent(comp []topo.SwitchID, inComp map[topo.SwitchID]bool, strict bool) error {
	conns := map[lsa.ConnID]bool{}
	for _, s := range comp {
		for _, id := range w.machines[s].Connections() {
			conns[id] = true
		}
	}
	for _, conn := range sortedConns(conns) {
		var ref *connView
		for _, s := range comp {
			m := w.machines[s]
			snap, ok := m.Connection(conn)
			if !ok {
				return fmt.Errorf("quiescent: switch %d has no state for conn %d", s, conn)
			}
			if strict && (!snap.R.Equal(snap.E) || !snap.R.Equal(snap.C)) {
				return fmt.Errorf("quiescent: switch %d conn %d stamps diverge: R=%s E=%s C=%s",
					s, conn, snap.R, snap.E, snap.C)
			}
			if ref == nil {
				ref = &connView{sw: s, snap: snap}
				continue
			}
			if !snap.C.Equal(ref.snap.C) {
				return fmt.Errorf("quiescent: conn %d: switch %d C=%s but switch %d C=%s",
					conn, s, snap.C, ref.sw, ref.snap.C)
			}
			if !snap.Members.Equal(ref.snap.Members) {
				return fmt.Errorf("quiescent: conn %d: member lists diverge between switches %d and %d: %v vs %v",
					conn, s, ref.sw, snap.Members, ref.snap.Members)
			}
			if (snap.Topology == nil) != (ref.snap.Topology == nil) ||
				(snap.Topology != nil && !snap.Topology.Equal(ref.snap.Topology)) {
				return fmt.Errorf("quiescent: conn %d: topologies diverge between switches %d and %d: %v vs %v",
					conn, s, ref.sw, snap.Topology, ref.snap.Topology)
			}
		}
		if strict && ref != nil && ref.snap.Topology != nil {
			local := make(mctree.Members, len(ref.snap.Members))
			for m, role := range ref.snap.Members {
				if inComp[m] {
					local[m] = role
				}
			}
			if err := ref.snap.Topology.Validate(w.graph, local); err != nil {
				return fmt.Errorf("quiescent: conn %d: converged topology invalid: %w", conn, err)
			}
		}
	}
	return nil
}

type connView struct {
	sw   topo.SwitchID
	snap core.Snapshot
}

func sortedConns(set map[lsa.ConnID]bool) []lsa.ConnID {
	out := make([]lsa.ConnID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// checkEventConservation verifies that every membership event the scenario
// injected is reflected in the injecting switch's own event counter (a
// lost event would leave R[x] at switch x below the number of events the
// world handed it).
func (w *World) checkEventConservation() error {
	for conn, counts := range w.injectedMembership {
		for s := 0; s < w.n; s++ {
			if counts[s] == 0 {
				continue
			}
			// A switch that crashed may legitimately have lost events it
			// originated but had not replicated before dying.
			if w.crashedOnce[s] {
				continue
			}
			snap, ok := w.machines[s].Connection(conn)
			if !ok {
				return fmt.Errorf("quiescent: conn %d: switch %d lost all state despite %d injected events",
					conn, s, counts[s])
			}
			if s < len(snap.R) && snap.R[s] < uint32(counts[s]) {
				return fmt.Errorf("quiescent: conn %d: switch %d own event count R[%d]=%d below %d injected events",
					conn, s, s, snap.R[s], counts[s])
			}
		}
	}
	return nil
}
