// Package stamp implements the vector timestamps of the D-GMC protocol.
//
// A timestamp T is an n-tuple of natural numbers, n being the number of
// switches in the network; T[x] counts how many events have been heard from
// switch x for a given multipoint connection. Timestamps are partially
// ordered componentwise: A ≤ B iff A[i] ≤ B[i] for all i, and A < B iff
// A ≤ B and A ≠ B (paper §3).
package stamp

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Stamp is a vector timestamp. The zero-length Stamp is valid and compares
// equal to itself; all stamps participating in a comparison must have equal
// length (the network size n).
type Stamp []uint32

// New returns an all-zero stamp for an n-switch network.
func New(n int) Stamp { return make(Stamp, n) }

// Clone returns an independent copy of s.
func (s Stamp) Clone() Stamp {
	c := make(Stamp, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with the contents of o. The lengths must match.
func (s Stamp) CopyFrom(o Stamp) {
	copy(s, o)
}

// Equal reports whether s and o are identical.
func (s Stamp) Equal(o Stamp) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Geq reports s ≥ o (componentwise). Stamps of different lengths are
// incomparable and Geq returns false.
func (s Stamp) Geq(o Stamp) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] < o[i] {
			return false
		}
	}
	return true
}

// Leq reports s ≤ o (componentwise).
func (s Stamp) Leq(o Stamp) bool { return o.Geq(s) }

// Greater reports s > o, i.e. s ≥ o and s ≠ o (the paper's strict order).
func (s Stamp) Greater(o Stamp) bool { return s.Geq(o) && !s.Equal(o) }

// Less reports s < o.
func (s Stamp) Less(o Stamp) bool { return o.Greater(s) }

// Concurrent reports whether neither s ≥ o nor o ≥ s holds (the stamps
// reflect conflicting views). Stamps of different lengths are considered
// concurrent.
func (s Stamp) Concurrent(o Stamp) bool { return !s.Geq(o) && !o.Geq(s) }

// MaxInPlace sets s[i] = max(s[i], o[i]) for every component — the update
// ReceiveLSA applies to the expected stamp E on every LSA arrival.
func (s Stamp) MaxInPlace(o Stamp) {
	n := len(s)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if o[i] > s[i] {
			s[i] = o[i]
		}
	}
}

// Inc increments component x, recording one more event heard from switch x.
func (s Stamp) Inc(x int) {
	if x >= 0 && x < len(s) {
		s[x]++
	}
}

// Sum returns the total number of events recorded across all components.
func (s Stamp) Sum() uint64 {
	var t uint64
	for _, v := range s {
		t += uint64(v)
	}
	return t
}

// String renders the stamp compactly, e.g. "⟨0 2 1⟩".
func (s Stamp) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, v := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString("⟩")
	return b.String()
}

// AppendBinary appends a length-prefixed big-endian encoding of s to buf
// and returns the extended slice.
func (s Stamp) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	for _, v := range s {
		buf = binary.BigEndian.AppendUint32(buf, v)
	}
	return buf
}

// DecodeBinary parses a stamp encoded by AppendBinary from the front of buf
// and returns the stamp and the remaining bytes.
func DecodeBinary(buf []byte) (Stamp, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("stamp: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if n < 0 || len(buf) < 4*n {
		return nil, nil, fmt.Errorf("stamp: truncated stamp of %d components", n)
	}
	s := make(Stamp, n)
	for i := 0; i < n; i++ {
		s[i] = binary.BigEndian.Uint32(buf[4*i:])
	}
	return s, buf[4*n:], nil
}
