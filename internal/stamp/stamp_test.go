package stamp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOrderBasics(t *testing.T) {
	a := Stamp{1, 2, 3}
	b := Stamp{1, 2, 3}
	c := Stamp{2, 2, 3}
	d := Stamp{0, 5, 3}

	if !a.Equal(b) || !a.Geq(b) || !a.Leq(b) {
		t.Error("equal stamps must satisfy ==, >=, <=")
	}
	if a.Greater(b) || a.Less(b) {
		t.Error("equal stamps must not be strictly ordered")
	}
	if !c.Greater(a) || !a.Less(c) || !c.Geq(a) {
		t.Error("c should dominate a")
	}
	if !a.Concurrent(d) || !d.Concurrent(a) {
		t.Error("a and d should be concurrent")
	}
	if a.Concurrent(c) {
		t.Error("comparable stamps reported concurrent")
	}
}

func TestDifferentLengthsIncomparable(t *testing.T) {
	a := Stamp{1, 2}
	b := Stamp{1, 2, 0}
	if a.Equal(b) || a.Geq(b) || b.Geq(a) {
		t.Error("stamps of different lengths must be incomparable")
	}
	if !a.Concurrent(b) {
		t.Error("different lengths should report concurrent")
	}
}

func TestIncAndSum(t *testing.T) {
	s := New(4)
	s.Inc(2)
	s.Inc(2)
	s.Inc(0)
	s.Inc(-1) // ignored
	s.Inc(4)  // ignored
	if s[0] != 1 || s[2] != 2 || s[1] != 0 || s[3] != 0 {
		t.Fatalf("stamp = %v", s)
	}
	if s.Sum() != 3 {
		t.Errorf("sum = %d, want 3", s.Sum())
	}
}

func TestMaxInPlace(t *testing.T) {
	s := Stamp{5, 0, 2}
	s.MaxInPlace(Stamp{1, 4, 2})
	want := Stamp{5, 4, 2}
	if !s.Equal(want) {
		t.Errorf("max = %v, want %v", s, want)
	}
	// Shorter other: only the overlap is merged.
	s.MaxInPlace(Stamp{9})
	if s[0] != 9 || s[1] != 4 {
		t.Errorf("partial max = %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Stamp{1, 2}
	c := s.Clone()
	c.Inc(0)
	if s[0] != 1 {
		t.Error("Clone shares storage")
	}
	s.CopyFrom(Stamp{7, 8})
	if s[0] != 7 || s[1] != 8 {
		t.Errorf("CopyFrom result = %v", s)
	}
}

func TestString(t *testing.T) {
	if got := (Stamp{0, 2, 1}).String(); got != "⟨0 2 1⟩" {
		t.Errorf("String = %q", got)
	}
	if got := New(0).String(); got != "⟨⟩" {
		t.Errorf("empty String = %q", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := []Stamp{nil, {}, {0}, {1, 2, 3}, New(100)}
	for _, s := range cases {
		buf := s.AppendBinary(nil)
		got, rest, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", s, err)
		}
		if len(rest) != 0 {
			t.Errorf("decode %v left %d bytes", s, len(rest))
		}
		if len(got) != len(s) {
			t.Fatalf("round trip %v -> %v", s, got)
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("round trip %v -> %v", s, got)
			}
		}
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("decoding nil should fail")
	}
	if _, _, err := DecodeBinary([]byte{0, 0, 0, 5, 1, 2}); err == nil {
		t.Error("decoding truncated payload should fail")
	}
}

// randomStamp generates stamps with small components so ordered pairs occur.
func randomStamp(r *rand.Rand, n int) Stamp {
	s := New(n)
	for i := range s {
		s[i] = uint32(r.Intn(4))
	}
	return s
}

func TestQuickPartialOrderLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(8)
			for i := range vals {
				vals[i] = reflect.ValueOf(randomStamp(r, n))
			}
		},
		Rand: r,
	}

	// Reflexivity, antisymmetry encoded via Equal, transitivity.
	law := func(a, b, c Stamp) bool {
		if !a.Geq(a) || !a.Leq(a) || a.Greater(a) {
			return false
		}
		if a.Geq(b) && b.Geq(a) && !a.Equal(b) {
			return false
		}
		if a.Geq(b) && b.Geq(c) && !a.Geq(c) {
			return false
		}
		// Exactly one of: equal, a>b, b>a, concurrent.
		states := 0
		if a.Equal(b) {
			states++
		}
		if a.Greater(b) {
			states++
		}
		if b.Greater(a) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxIsLeastUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(8)
			for i := range vals {
				vals[i] = reflect.ValueOf(randomStamp(r, n))
			}
		},
		Rand: r,
	}
	law := func(a, b Stamp) bool {
		m := a.Clone()
		m.MaxInPlace(b)
		if !m.Geq(a) || !m.Geq(b) {
			return false
		}
		// Least: any upper bound u of a,b dominates m.
		u := a.Clone()
		u.MaxInPlace(b)
		for i := range u {
			u[i]++ // strictly above both
		}
		return u.Geq(m)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomStamp(r, r.Intn(64)))
		},
		Rand: r,
	}
	law := func(s Stamp) bool {
		buf := s.AppendBinary(nil)
		got, rest, err := DecodeBinary(buf)
		return err == nil && len(rest) == 0 && got.Equal(s) || (len(s) == 0 && len(got) == 0 && err == nil)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}
