package exp

import (
	"math/rand"
	"testing"
	"time"
)

// TestPartitionSweepSmall runs a scaled-down partition sweep end to end:
// every run must survive its split/heal cycles and the nodal outage, and
// the table must show real reconciliation work.
func TestPartitionSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	tbl, err := Partition(PartitionParams{
		Sizes:        []int{10},
		Cycles:       2,
		Crash:        true,
		RunsPerPoint: 3,
		BaseSeed:     7,
		Events:       8,
		Tc:           200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(tbl.Rows))
	}
	row := tbl.Rows[0]
	if row.X != 10 {
		t.Fatalf("row x = %g, want 10", row.X)
	}
	// Column 1 is reconciles/cycle: two healed bipartitions plus a nodal
	// recovery must reconcile at least once per cycle on average.
	if row.Cells[1].Mean <= 0 {
		t.Fatalf("no heal reconciliations recorded: %+v", row)
	}
}

func TestRandomBipartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		groups := randomBipartition(rng, 5)
		if len(groups) != 2 || len(groups[0]) == 0 || len(groups[1]) == 0 {
			t.Fatalf("bad bipartition %v", groups)
		}
		seen := map[int]bool{}
		for _, g := range groups {
			for _, s := range g {
				if seen[int(s)] {
					t.Fatalf("switch %d twice in %v", s, groups)
				}
				seen[int(s)] = true
			}
		}
		if len(seen) != 5 {
			t.Fatalf("bipartition %v does not cover 5 switches", groups)
		}
	}
}
