package exp

import (
	"fmt"
	"math/rand"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/metrics"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// PartitionParams configures the partition sweep: D-GMC over the reliable
// flooding transport while undetected bipartitions open and heal under a
// live membership workload. Each run draws a random graph, a random
// workload, and random bipartitions; every split is later healed and the
// heal reconciliation (core.Machine.ReconcileNeighbor across the former
// boundary) must bring the whole network back to agreement. The sweep
// measures what partitions cost — reconciliation exchanges, replayed
// events, and slower convergence — across network sizes.
type PartitionParams struct {
	// Sizes lists the network sizes to sweep. Defaults to {10, 20, 30}.
	Sizes []int
	// Cycles is the number of partition/heal cycles per run. Defaults to 2.
	Cycles int
	// HealAfterRounds is how many rounds (Tf+Tc) each split stays open.
	// Defaults to 20.
	HealAfterRounds float64
	// Crash additionally isolates one random switch after the last cycle —
	// an undetected single-switch outage (the switch stops hearing the
	// network, as when its process dies; no link-state change is
	// advertised) reconciled back in HealAfterRounds later. This mirrors
	// rt.Cluster.KillNode's transport semantics at simulation scale.
	Crash bool
	// RunsPerPoint is the number of independent runs per size. Defaults
	// to 10.
	RunsPerPoint int
	// BaseSeed makes the whole sweep reproducible.
	BaseSeed int64
	// PerHop is the per-hop LSA transmission/processing time. Defaults
	// to 10µs.
	PerHop time.Duration
	// Tc is the topology computation time. Defaults to 500µs.
	Tc time.Duration
	// Events is the number of membership events per run. Defaults to 10.
	Events int
	// ResyncTimeoutRounds sets the gap-recovery timeout in rounds (Tf+Tc).
	// Defaults to 4.
	ResyncTimeoutRounds float64
}

func (p PartitionParams) normalized() PartitionParams {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{10, 20, 30}
	}
	if p.Cycles == 0 {
		p.Cycles = 2
	}
	if p.HealAfterRounds == 0 {
		p.HealAfterRounds = 20
	}
	if p.RunsPerPoint == 0 {
		p.RunsPerPoint = 10
	}
	if p.PerHop == 0 {
		p.PerHop = 10 * time.Microsecond
	}
	if p.Tc == 0 {
		p.Tc = 500 * time.Microsecond
	}
	if p.Events == 0 {
		p.Events = 10
	}
	if p.ResyncTimeoutRounds == 0 {
		p.ResyncTimeoutRounds = 4
	}
	return p
}

// Partition runs the partition sweep and reports, per network size, the
// convergence time in rounds, heal reconciliations per cycle, and replayed
// event LSAs per cycle (means with 95% CIs across RunsPerPoint runs).
// Every run must end fully converged — identical members, stamps, and
// topologies network-wide — or the sweep fails: surviving the splits is
// the experiment's claim, not a best effort.
func Partition(p PartitionParams) (*metrics.Table, error) {
	p = p.normalized()
	title := fmt.Sprintf(
		"Partition sweep — %d split/heal cycle(s) of %.0f rounds (%d runs/point)",
		p.Cycles, p.HealAfterRounds, p.RunsPerPoint)
	if p.Crash {
		title += " + nodal outage"
	}
	t := &metrics.Table{
		Title:   title,
		XLabel:  "switches",
		Columns: []string{"conv-rounds", "reconciles/cycle", "replays/cycle"},
	}
	for _, n := range p.Sizes {
		results, err := parallelMap(p.RunsPerPoint, func(run int) (partitionResult, error) {
			res, err := runPartition(p, n, run)
			if err != nil {
				return partitionResult{}, fmt.Errorf("n=%d run %d: %w", n, run, err)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		var conv, rec, rep metrics.Sample
		for _, res := range results {
			conv.Add(res.convergenceRounds)
			rec.Add(float64(res.reconciles) / float64(p.Cycles))
			rep.Add(float64(res.replays) / float64(p.Cycles))
		}
		cs, err := conv.Summarize()
		if err != nil {
			return nil, err
		}
		rs, err := rec.Summarize()
		if err != nil {
			return nil, err
		}
		ps, err := rep.Summarize()
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(float64(n), cs, rs, ps); err != nil {
			return nil, err
		}
	}
	return t, nil
}

type partitionResult struct {
	convergenceRounds float64
	reconciles        uint64
	replays           uint64
}

// runPartition executes one partitioned simulation run: the workload plays
// out while Cycles random bipartitions open and heal in sequence, each
// split lasting HealAfterRounds rounds with a HealAfterRounds gap before
// the next.
func runPartition(p PartitionParams, n, run int) (partitionResult, error) {
	seed := p.BaseSeed*104_729 + int64(n)*1_009 + int64(run)
	g, err := topo.Waxman(topo.DefaultGenConfig(n, seed))
	if err != nil {
		return partitionResult{}, err
	}
	tf, err := probeTf(g, p.PerHop)
	if err != nil {
		return partitionResult{}, err
	}
	round := tf + p.Tc

	// Stretch the workload across the fault window so events land before,
	// during, and after the splits.
	window := time.Duration((2*float64(p.Cycles) + 2) * p.HealAfterRounds * float64(round))
	events, err := workload.Sparse(workload.Config{
		N:       n,
		Events:  p.Events,
		Seed:    seed ^ 0x5bd1_e995,
		Start:   round,
		MeanGap: window / time.Duration(p.Events),
	})
	if err != nil {
		return partitionResult{}, err
	}

	rng := rand.New(rand.NewSource(seed ^ 0x9e37_79b9))
	healSpan := sim.Time(p.HealAfterRounds * float64(round))
	var parts []faults.Partition
	at := healSpan
	for c := 0; c < p.Cycles; c++ {
		parts = append(parts, faults.Partition{
			Groups: randomBipartition(rng, n),
			At:     at,
			HealAt: at + healSpan,
		})
		at += 2 * healSpan
	}
	if p.Crash {
		// Undetected single-switch outage in the quiet gap after the last
		// cycle: the victim stops hearing (and reaching) everyone, then is
		// reconciled back in like any healed partition.
		victim := topo.SwitchID(rng.Intn(n))
		rest := make([]topo.SwitchID, 0, n-1)
		for s := 0; s < n; s++ {
			if topo.SwitchID(s) != victim {
				rest = append(rest, topo.SwitchID(s))
			}
		}
		parts = append(parts, faults.Partition{
			Groups: [][]topo.SwitchID{{victim}, rest},
			At:     at,
			HealAt: at + healSpan,
		})
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	inj, err := faults.New(k, faults.Plan{Seed: seed, Partitions: parts})
	if err != nil {
		return partitionResult{}, err
	}
	// A tight retry budget keeps cross-boundary frames from consuming the
	// whole split retrying: the transport gives up, and the heal
	// reconciliation repairs the loss.
	net, err := flood.New(k, g, p.PerHop, flood.Reliable,
		flood.WithFaults(inj), flood.WithRetryBudget(2))
	if err != nil {
		return partitionResult{}, err
	}
	d, err := core.NewDomain(k, core.Config{
		Net:           net,
		ComputeTime:   p.Tc,
		Algorithm:     route.SPH{},
		Kinds:         map[lsa.ConnID]mctree.Kind{experimentConn: mctree.Symmetric},
		ResyncTimeout: sim.Time(p.ResyncTimeoutRounds * float64(round)),
	})
	if err != nil {
		return partitionResult{}, err
	}
	for _, pt := range parts {
		d.SchedulePartitionHeal(pt)
	}
	for _, e := range events {
		if e.Join {
			d.Join(e.At, e.Switch, experimentConn, e.Role)
		} else {
			d.Leave(e.At, e.Switch, experimentConn)
		}
	}
	if _, err := k.Run(); err != nil {
		return partitionResult{}, err
	}
	if err := d.CheckConverged(); err != nil {
		return partitionResult{}, fmt.Errorf("run did not converge: %w", err)
	}
	first, _ := workload.Span(events)
	m := d.Metrics()
	res := partitionResult{reconciles: m.Reconciles, replays: m.Replays}
	if d.LastInstall() > first && round > 0 {
		res.convergenceRounds = float64(d.LastInstall()-first) / float64(round)
	}
	return res, nil
}

// randomBipartition splits switches 0..n-1 into two non-empty groups.
func randomBipartition(rng *rand.Rand, n int) [][]topo.SwitchID {
	for {
		var a, b []topo.SwitchID
		for s := 0; s < n; s++ {
			if rng.Intn(2) == 0 {
				a = append(a, topo.SwitchID(s))
			} else {
				b = append(b, topo.SwitchID(s))
			}
		}
		if len(a) > 0 && len(b) > 0 {
			return [][]topo.SwitchID{a, b}
		}
	}
}
