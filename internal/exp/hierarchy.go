package exp

import (
	"fmt"
	"math/rand"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/hier"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/metrics"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// HierarchyParams configures the hierarchical-extension experiment.
type HierarchyParams struct {
	// AreaCounts lists how many areas to sweep (network size scales with
	// it). Defaults to {2, 4, 6, 8}.
	AreaCounts []int
	// AreaSize is the number of switches per area. Defaults to 12.
	AreaSize int
	// RunsPerPoint defaults to 10.
	RunsPerPoint int
	// EventsPerArea membership events injected in each area. Defaults 3.
	EventsPerArea int
	// BaseSeed drives the sweep.
	BaseSeed int64
	// PerHop and Tc are the usual timing parameters.
	PerHop, Tc time.Duration
}

func (p HierarchyParams) normalized() HierarchyParams {
	if len(p.AreaCounts) == 0 {
		p.AreaCounts = []int{2, 4, 6, 8}
	}
	if p.AreaSize == 0 {
		p.AreaSize = 12
	}
	if p.RunsPerPoint == 0 {
		p.RunsPerPoint = 10
	}
	if p.EventsPerArea == 0 {
		p.EventsPerArea = 3
	}
	if p.PerHop == 0 {
		p.PerHop = 10 * time.Microsecond
	}
	if p.Tc == 0 {
		p.Tc = 500 * time.Microsecond
	}
	return p
}

// buildHierNetwork constructs a k-area network: each area is a seeded
// random connected subgraph of AreaSize switches hanging off a gateway;
// gateways form a backbone ring.
func buildHierNetwork(p HierarchyParams, areaCount int, seed int64) (*topo.Graph, []hier.AreaSpec, error) {
	rng := rand.New(rand.NewSource(seed))
	n := areaCount * p.AreaSize
	g := topo.New(n)
	var specs []hier.AreaSpec
	for a := 0; a < areaCount; a++ {
		base := topo.SwitchID(a * p.AreaSize)
		ids := make([]topo.SwitchID, p.AreaSize)
		for i := range ids {
			ids[i] = base + topo.SwitchID(i)
		}
		// Random spanning tree inside the area plus ~25% extra chords.
		for i := 1; i < p.AreaSize; i++ {
			to := topo.SwitchID(rng.Intn(i))
			d := time.Duration(5+rng.Intn(11)) * time.Microsecond
			if err := g.AddLink(base+topo.SwitchID(i), base+to, d, 1); err != nil {
				return nil, nil, err
			}
		}
		for extra := 0; extra < p.AreaSize/4; extra++ {
			x := topo.SwitchID(rng.Intn(p.AreaSize))
			y := topo.SwitchID(rng.Intn(p.AreaSize))
			if x == y {
				continue
			}
			if _, dup := g.Link(base+x, base+y); dup {
				continue
			}
			d := time.Duration(5+rng.Intn(11)) * time.Microsecond
			if err := g.AddLink(base+x, base+y, d, 1); err != nil {
				return nil, nil, err
			}
		}
		specs = append(specs, hier.AreaSpec{Switches: ids, Gateway: base})
	}
	for a := 0; a < areaCount; a++ {
		from := specs[a].Gateway
		to := specs[(a+1)%areaCount].Gateway
		if _, dup := g.Link(from, to); dup {
			continue
		}
		if err := g.AddLink(from, to, 50*time.Microsecond, 1); err != nil {
			return nil, nil, err
		}
	}
	return g, specs, nil
}

// hierEvents draws EventsPerArea joins per area (non-gateway switches),
// sparsely spaced.
func hierEvents(p HierarchyParams, areaCount int, seed int64) []struct {
	At sim.Time
	S  topo.SwitchID
} {
	rng := rand.New(rand.NewSource(seed ^ 0x0badcafe))
	var out []struct {
		At sim.Time
		S  topo.SwitchID
	}
	at := sim.Time(0)
	for a := 0; a < areaCount; a++ {
		base := a * p.AreaSize
		used := map[int]bool{}
		for e := 0; e < p.EventsPerArea; e++ {
			var local int
			for {
				local = 1 + rng.Intn(p.AreaSize-1) // skip the gateway at 0
				if !used[local] {
					break
				}
			}
			used[local] = true
			at += 5 * time.Millisecond
			out = append(out, struct {
				At sim.Time
				S  topo.SwitchID
			}{at, topo.SwitchID(base + local)})
		}
	}
	return out
}

// Hierarchy compares flat D-GMC against the two-level hierarchical
// extension over growing multi-area networks: flooding transmissions per
// event (the scalability claim §2 motivates the hierarchy with) and
// topology computations per event.
func Hierarchy(p HierarchyParams) (*metrics.Table, error) {
	p = p.normalized()
	table := &metrics.Table{
		Title:  "Hierarchical extension — flood copies and computations per event (flat vs 2-level)",
		XLabel: "switches",
		Columns: []string{
			"copies/event flat",
			"copies/event hier",
			"comp/event flat",
			"comp/event hier",
		},
	}
	type hierPoint struct {
		flatCopies, hierCopies, flatComp, hierComp float64
	}
	for _, areaCount := range p.AreaCounts {
		points, err := parallelMap(p.RunsPerPoint, func(run int) (hierPoint, error) {
			seed := p.BaseSeed*31337 + int64(areaCount)*101 + int64(run)
			g, specs, err := buildHierNetwork(p, areaCount, seed)
			if err != nil {
				return hierPoint{}, err
			}
			events := hierEvents(p, areaCount, seed)

			// Hierarchical run.
			k1 := sim.NewKernel()
			hd, err := hier.NewDomain(k1, hier.Config{
				Global: g, Areas: specs, PerHop: p.PerHop, Tc: p.Tc,
			})
			if err != nil {
				k1.Shutdown()
				return hierPoint{}, err
			}
			for _, e := range events {
				if err := hd.Join(e.At, e.S, 1, mctree.SenderReceiver); err != nil {
					k1.Shutdown()
					return hierPoint{}, err
				}
			}
			if _, err := k1.Run(); err != nil {
				k1.Shutdown()
				return hierPoint{}, err
			}
			if err := hd.CheckConverged(); err != nil {
				k1.Shutdown()
				return hierPoint{}, fmt.Errorf("hier areas=%d run=%d: %w", areaCount, run, err)
			}
			hs := hd.Stats()
			k1.Shutdown()

			// Flat run.
			k2 := sim.NewKernel()
			defer k2.Shutdown()
			net, err := flood.New(k2, g, p.PerHop, flood.Direct)
			if err != nil {
				return hierPoint{}, err
			}
			fd, err := core.NewDomain(k2, core.Config{Net: net, ComputeTime: p.Tc, Algorithm: route.SPH{}})
			if err != nil {
				return hierPoint{}, err
			}
			for _, e := range events {
				fd.Join(e.At, e.S, lsa.ConnID(1), mctree.SenderReceiver)
			}
			if _, err := k2.Run(); err != nil {
				return hierPoint{}, err
			}
			if err := fd.CheckConverged(); err != nil {
				return hierPoint{}, fmt.Errorf("flat areas=%d run=%d: %w", areaCount, run, err)
			}
			nEvents := float64(len(events))
			return hierPoint{
				flatCopies: float64(net.Copies()) / nEvents,
				hierCopies: float64(hs.Copies) / nEvents,
				flatComp:   float64(fd.Metrics().Computations) / nEvents,
				hierComp:   float64(hs.Computations) / nEvents,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var flatCopies, hierCopies, flatComp, hierComp metrics.Sample
		for _, pt := range points {
			flatCopies.Add(pt.flatCopies)
			hierCopies.Add(pt.hierCopies)
			flatComp.Add(pt.flatComp)
			hierComp.Add(pt.hierComp)
		}
		cells := make([]metrics.Summary, 0, 4)
		for _, s := range []*metrics.Sample{&flatCopies, &hierCopies, &flatComp, &hierComp} {
			sum, err := s.Summarize()
			if err != nil {
				return nil, err
			}
			cells = append(cells, sum)
		}
		if err := table.AddRow(float64(areaCount*p.AreaSize), cells...); err != nil {
			return nil, err
		}
	}
	return table, nil
}
