package exp

import (
	"fmt"
	"time"

	"dgmc/internal/metrics"
	"dgmc/internal/workload"
)

// BurstScalingParams configures the burst-size sweep.
type BurstScalingParams struct {
	// N is the fixed network size. Defaults to 60.
	N int
	// BurstSizes lists the event counts to sweep. Defaults to
	// {2, 4, 8, 12, 16, 20}.
	BurstSizes []int
	// RunsPerPoint defaults to 20.
	RunsPerPoint int
	// BaseSeed drives the sweep.
	BaseSeed int64
	// PerHop and Tc default to the Experiment 1 timing.
	PerHop, Tc time.Duration
}

func (p BurstScalingParams) normalized() BurstScalingParams {
	if p.N == 0 {
		p.N = 60
	}
	if len(p.BurstSizes) == 0 {
		p.BurstSizes = []int{2, 4, 8, 12, 16, 20}
	}
	if p.RunsPerPoint == 0 {
		p.RunsPerPoint = 20
	}
	if p.PerHop == 0 {
		p.PerHop = 10 * time.Microsecond
	}
	if p.Tc == 0 {
		p.Tc = 500 * time.Microsecond
	}
	return p
}

// BurstScaling studies the cascading-reaction behaviour §4 raises: how do
// the protocol's overheads grow as more conflicting events pile into one
// burst window? The paper plots overheads against network size at a fixed
// burst; this sweep fixes the network and grows the burst, separating the
// conflict-resolution cost (withdrawn proposals, extra rounds) from the
// baseline one-computation-per-event cost.
func BurstScaling(p BurstScalingParams) (*metrics.Table, error) {
	p = p.normalized()
	table := &metrics.Table{
		Title:  fmt.Sprintf("Burst scaling — overheads vs burst size (n=%d)", p.N),
		XLabel: "burst events",
		Columns: []string{
			"proposals/event",
			"floodings/event",
			"withdrawn/event",
			"convergence (rounds)",
		},
	}
	base := Params{
		PerHop: p.PerHop,
		Tc:     p.Tc,
		Bursty: true,
	}.normalized()
	for _, burst := range p.BurstSizes {
		results, err := parallelMap(p.RunsPerPoint, func(run int) (RunResult, error) {
			pp := base
			pp.Events = burst
			pp.BaseSeed = p.BaseSeed*131 + int64(burst)*17 + int64(run)
			g, err := buildGraph(pp, p.N, run)
			if err != nil {
				return RunResult{}, err
			}
			tf, err := probeTf(g, pp.PerHop)
			if err != nil {
				return RunResult{}, err
			}
			events, err := workload.Bursty(workload.Config{
				N:      p.N,
				Events: burst,
				Seed:   pp.BaseSeed,
				Start:  tf + pp.Tc,
				Window: tf + pp.Tc,
			})
			if err != nil {
				return RunResult{}, err
			}
			res, err := RunDGMC(pp, g, events)
			if err != nil {
				return RunResult{}, fmt.Errorf("burst=%d run=%d: %w", burst, run, err)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		var prop, fld, wdr, conv metrics.Sample
		for _, res := range results {
			prop.Add(res.ProposalsPerEvent())
			fld.Add(res.FloodingsPerEvent())
			wdr.Add(float64(res.Withdrawn) / float64(res.Events))
			conv.Add(res.ConvergenceRounds)
		}
		cells := make([]metrics.Summary, 0, 4)
		for _, s := range []*metrics.Sample{&prop, &fld, &wdr, &conv} {
			sum, err := s.Summarize()
			if err != nil {
				return nil, err
			}
			cells = append(cells, sum)
		}
		if err := table.AddRow(float64(burst), cells...); err != nil {
			return nil, err
		}
	}
	return table, nil
}
