package exp

import (
	"reflect"
	"testing"
	"time"

	"dgmc/internal/flood"
)

func smallLossParams() LossParams {
	return LossParams{
		N:            12,
		DropRates:    []float64{0, 0.2},
		RunsPerPoint: 3,
		BaseSeed:     4,
		Events:       6,
	}
}

// TestLossSweepDeterministic runs the same sweep twice and requires
// identical tables: faults, workloads, and graphs are all seeded.
func TestLossSweepDeterministic(t *testing.T) {
	a, err := Loss(smallLossParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Loss(smallLossParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("loss sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Rows) != 2 || len(a.Rows[0].Cells) != 3 {
		t.Fatalf("table shape wrong: %+v", a)
	}
	if zero := a.Rows[0].Cells[1]; zero.Mean != 0 {
		t.Errorf("retransmits/event at drop rate 0 = %v, want 0", zero)
	}
	if lossy := a.Rows[1].Cells[1]; lossy.Mean == 0 {
		t.Error("retransmits/event at drop rate 0.2 is zero; faults not injected")
	}
}

// TestReliableMatchesHopByHopResults is the byte-identical guarantee at the
// experiment level: a fault-free Reliable run must report exactly the same
// RunResult as a HopByHop run of the same scenario, with zero retransmits.
func TestReliableMatchesHopByHopResults(t *testing.T) {
	base := Params{
		Sizes:         []int{15},
		GraphsPerSize: 1,
		BaseSeed:      2,
		PerHop:        10 * time.Microsecond,
		Tc:            500 * time.Microsecond,
		Events:        8,
		Bursty:        true,
	}
	run := func(mode flood.Mode) RunResult {
		p := base
		p.Mode = mode
		p = p.normalized()
		g, err := buildGraph(p, 15, 0)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := probeTf(g, p.PerHop)
		if err != nil {
			t.Fatal(err)
		}
		events, err := buildEvents(p, 15, 0, tf+p.Tc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDGMC(p, g, events)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hop := run(flood.HopByHop)
	rel := run(flood.Reliable)
	if rel.Retransmits != 0 {
		t.Errorf("fault-free reliable run retransmitted %d times", rel.Retransmits)
	}
	if hop != rel {
		t.Errorf("results diverge:\nhop-by-hop: %+v\nreliable:   %+v", hop, rel)
	}
}
