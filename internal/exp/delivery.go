package exp

import (
	"fmt"
	"sync/atomic"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/metrics"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// DeliveryParams configures the data-plane delivery sweep: payload streams
// pumped through a live rt.Cluster (real goroutines, real FIBs — not the
// simulator) while the fabric drops data frames at a configured probability
// and the control plane churns membership. The sweep measures what the
// paper's figures never did — the delivery ratio, duplication, and loss the
// installed trees actually give an application.
type DeliveryParams struct {
	// Rows/Cols shape the grid fabric. Defaults to 4×4.
	Rows, Cols int
	// DropProbs lists the per-link data-frame drop probabilities to sweep.
	// Defaults to {0, 0.01, 0.05}.
	DropProbs []float64
	// ChurnEvery lists the churn cadences to measure: one membership event
	// per that many packets in the churn phase. Defaults to {10, 40}.
	ChurnEvery []int
	// Packets is the stream length per phase. Defaults to 200.
	Packets int
	// RunsPerPoint is the number of independent runs per drop probability.
	// Defaults to 3.
	RunsPerPoint int
	// BaseSeed makes the sweep reproducible (loss draws and run layout; the
	// runtime's goroutine interleavings are real and stay nondeterministic).
	BaseSeed int64
}

func (p DeliveryParams) normalized() DeliveryParams {
	if p.Rows == 0 {
		p.Rows = 4
	}
	if p.Cols == 0 {
		p.Cols = 4
	}
	if len(p.DropProbs) == 0 {
		p.DropProbs = []float64{0, 0.01, 0.05}
	}
	if len(p.ChurnEvery) == 0 {
		p.ChurnEvery = []int{10, 40}
	}
	if p.Packets == 0 {
		p.Packets = 200
	}
	if p.RunsPerPoint == 0 {
		p.RunsPerPoint = 3
	}
	return p
}

// Delivery runs the delivery sweep and reports, per drop probability, the
// settled-phase delivery ratio, the ratio under each churn cadence, and the
// duplicate and refused-send rates per thousand expected deliveries (means
// with 95% CIs across RunsPerPoint runs).
func Delivery(p DeliveryParams) (*metrics.Table, error) {
	p = p.normalized()
	cols := []string{"ratio-settled"}
	for _, ce := range p.ChurnEvery {
		cols = append(cols, fmt.Sprintf("ratio-churn@%d", ce))
	}
	cols = append(cols, "dups/1k", "refused/1k",
		"drop-ne/1k", "drop-nr/1k", "drop-hb/1k", "drop-lp/1k")
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Delivery sweep — %d×%d live cluster, %d-packet streams (%d runs/point)",
			p.Rows, p.Cols, p.Packets, p.RunsPerPoint),
		XLabel:  "drop-%",
		Columns: cols,
	}
	for _, prob := range p.DropProbs {
		results, err := parallelMap(p.RunsPerPoint, func(run int) (deliveryResult, error) {
			res, err := runDelivery(p, prob, run)
			if err != nil {
				return deliveryResult{}, fmt.Errorf("drop=%.2f run %d: %w", prob, run, err)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		settled := &metrics.Sample{}
		churn := make([]*metrics.Sample, len(p.ChurnEvery))
		for i := range churn {
			churn[i] = &metrics.Sample{}
		}
		dups, refused := &metrics.Sample{}, &metrics.Sample{}
		taxonomy := [4]*metrics.Sample{{}, {}, {}, {}}
		for _, res := range results {
			settled.Add(res.settledRatio)
			for i, r := range res.churnRatios {
				churn[i].Add(r)
			}
			dups.Add(res.dupsPer1k)
			refused.Add(res.refusedPer1k)
			for i, d := range res.dropsPer1k {
				taxonomy[i].Add(d)
			}
		}
		cells := make([]metrics.Summary, 0, len(cols))
		for _, s := range append(append([]*metrics.Sample{settled}, churn...),
			dups, refused, taxonomy[0], taxonomy[1], taxonomy[2], taxonomy[3]) {
			sum, err := s.Summarize()
			if err != nil {
				return nil, err
			}
			cells = append(cells, sum)
		}
		if err := t.AddRow(prob*100, cells...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

type deliveryResult struct {
	settledRatio float64
	churnRatios  []float64
	dupsPer1k    float64
	refusedPer1k float64
	// dropsPer1k is the cluster-wide four-way data-plane drop taxonomy over
	// the whole run — no-entry, no-route, hop-budget, loop — normalized per
	// thousand expected deliveries. It attributes the loss the ratios show:
	// fabric loss leaves no counter, churn shows up as no-entry/no-route
	// (frames racing a FIB that has no entry yet), pathological topologies
	// as hop-budget, and duplicate suppression as loop.
	dropsPer1k [4]float64
}

// runDelivery executes one live run: boot the cluster, converge a member
// set spanning the grid, then pump one settled stream and one stream per
// churn cadence, auditing each with its own ledger.
func runDelivery(p DeliveryParams, prob float64, run int) (deliveryResult, error) {
	seed := p.BaseSeed*104_729 + int64(prob*10_000)*31 + int64(run)
	g, err := topo.Grid(p.Rows, p.Cols, 10*time.Microsecond)
	if err != nil {
		return deliveryResult{}, err
	}
	n := p.Rows * p.Cols
	conn := lsa.ConnID(1)

	var led atomic.Pointer[workload.Ledger]
	led.Store(workload.NewLedger())
	fab := rt.NewChanFabric(n)
	fab.SetLoss(prob, seed)
	c, err := rt.NewCluster(rt.ClusterConfig{
		Graph: g, ResyncTimeout: 50 * time.Millisecond,
		DataHandler: func(at topo.SwitchID, conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			led.Load().RecordRecv(at, workload.PacketID{Src: src, Seq: seq})
		},
	}, fab)
	if err != nil {
		return deliveryResult{}, err
	}
	defer c.Close()

	members := map[topo.SwitchID]bool{}
	join := func(sw topo.SwitchID) error {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			return err
		}
		members[sw] = true
		return nil
	}
	leave := func(sw topo.SwitchID) error {
		if err := c.Leave(sw, conn); err != nil {
			return err
		}
		delete(members, sw)
		return nil
	}
	// Corners plus one interior switch: trees span the whole grid.
	base := []topo.SwitchID{0, topo.SwitchID(p.Cols - 1), topo.SwitchID(p.Cols + 1),
		topo.SwitchID(n - p.Cols), topo.SwitchID(n - 1)}
	for _, sw := range base {
		if err := join(sw); err != nil {
			return deliveryResult{}, err
		}
	}
	if err := c.WaitConverged(60 * time.Second); err != nil {
		return deliveryResult{}, err
	}

	sources := func() []topo.SwitchID {
		out := make([]topo.SwitchID, 0, len(members))
		for s := 0; s < n; s++ {
			if members[topo.SwitchID(s)] {
				out = append(out, topo.SwitchID(s))
			}
		}
		return out
	}
	expect := func(src topo.SwitchID) []topo.SwitchID {
		var out []topo.SwitchID
		for sw := range members {
			if sw != src {
				out = append(out, sw)
			}
		}
		return out
	}
	pump := func(pace func(i int) error) (workload.Summary, error) {
		l := workload.NewLedger()
		led.Store(l)
		var paceErr error
		err := workload.Pump(c, l, workload.TrafficConfig{
			Conn: conn, Sources: sources(), Packets: p.Packets, Expect: expect,
			Pace: func(i int) {
				if paceErr == nil && pace != nil {
					paceErr = pace(i)
				}
				time.Sleep(100 * time.Microsecond)
			},
		})
		if err == nil {
			err = paceErr
		}
		if err != nil {
			return workload.Summary{}, err
		}
		if err := c.Settle(50*time.Millisecond, 60*time.Second); err != nil {
			return workload.Summary{}, err
		}
		return l.Summary(), nil
	}

	var res deliveryResult
	var totalDups, totalRefused, totalExpected int

	sum, err := pump(nil)
	if err != nil {
		return deliveryResult{}, err
	}
	res.settledRatio = sum.Ratio()
	totalDups += sum.Dups
	totalRefused += sum.Refused
	totalExpected += sum.Expected

	// Churn phases: every ce packets, a spare switch joins or a previous
	// joiner leaves, so trees re-install while the stream flows.
	spares := []topo.SwitchID{1, topo.SwitchID(p.Cols), topo.SwitchID(n - 2), 2}
	for _, ce := range p.ChurnEvery {
		next := 0
		sum, err := pump(func(i int) error {
			if i%ce != ce-1 {
				return nil
			}
			sw := spares[next%len(spares)]
			next++
			if members[sw] {
				return leave(sw)
			}
			return join(sw)
		})
		if err != nil {
			return deliveryResult{}, err
		}
		res.churnRatios = append(res.churnRatios, sum.Ratio())
		totalDups += sum.Dups
		totalRefused += sum.Refused
		totalExpected += sum.Expected
		if err := c.WaitConverged(60 * time.Second); err != nil {
			return deliveryResult{}, err
		}
	}
	var drops rt.ForwardStats
	for _, node := range c.Nodes() {
		s := node.ForwardStats()
		drops.DropNoEntry += s.DropNoEntry
		drops.DropNoRoute += s.DropNoRoute
		drops.DropHops += s.DropHops
		drops.DropLoop += s.DropLoop
	}
	if totalExpected > 0 {
		res.dupsPer1k = 1000 * float64(totalDups) / float64(totalExpected)
		res.refusedPer1k = 1000 * float64(totalRefused) / float64(totalExpected)
		for i, d := range [4]uint64{drops.DropNoEntry, drops.DropNoRoute, drops.DropHops, drops.DropLoop} {
			res.dropsPer1k[i] = 1000 * float64(d) / float64(totalExpected)
		}
	}
	return res, nil
}
