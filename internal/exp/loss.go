package exp

import (
	"fmt"
	"time"

	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/metrics"
)

// LossParams configures the loss sweep: D-GMC over the reliable flooding
// transport while the fault injector drops (and occasionally duplicates)
// link transmissions at increasing rates. The sweep measures what loss
// costs the protocol — extra retransmissions and slower convergence — and
// demonstrates that it still converges everywhere.
type LossParams struct {
	// N is the network size. Defaults to 30.
	N int
	// DropRates lists the per-transmission drop probabilities to sweep.
	// Defaults to {0, 0.01, 0.05, 0.1, 0.2}.
	DropRates []float64
	// RunsPerPoint is the number of independent runs (graph + workload +
	// fault draw) per drop rate. Defaults to 10.
	RunsPerPoint int
	// BaseSeed makes the whole sweep reproducible.
	BaseSeed int64
	// PerHop is the per-hop LSA transmission/processing time. Defaults to
	// 10µs (Experiment 1's ATM figure).
	PerHop time.Duration
	// Tc is the topology computation time. Defaults to 500µs.
	Tc time.Duration
	// Events is the number of membership events per run. Defaults to 10.
	Events int
	// Dup is the per-transmission duplication probability (exercises the
	// duplicate-suppression path alongside loss). Defaults to 0.02.
	Dup float64
	// RetryBudget bounds retransmission attempts per link copy. Defaults
	// to the flood package default (8).
	RetryBudget int
	// ResyncTimeoutRounds sets the gap-recovery timeout in rounds (Tf+Tc).
	// Defaults to 4.
	ResyncTimeoutRounds float64
}

func (p LossParams) normalized() LossParams {
	if p.N == 0 {
		p.N = 30
	}
	if len(p.DropRates) == 0 {
		p.DropRates = []float64{0, 0.01, 0.05, 0.1, 0.2}
	}
	if p.RunsPerPoint == 0 {
		p.RunsPerPoint = 10
	}
	if p.PerHop == 0 {
		p.PerHop = 10 * time.Microsecond
	}
	if p.Tc == 0 {
		p.Tc = 500 * time.Microsecond
	}
	if p.Events == 0 {
		p.Events = 10
	}
	if p.Dup == 0 {
		p.Dup = 0.02
	}
	if p.ResyncTimeoutRounds == 0 {
		p.ResyncTimeoutRounds = 4
	}
	return p
}

// Loss runs the loss sweep and reports, per drop rate, the convergence time
// in rounds, link-level retransmissions per event, and flooding operations
// per event (means with 95% CIs across RunsPerPoint runs). Every run must
// converge — R = E = C and identical topologies network-wide — or the sweep
// fails; surviving injected loss is the experiment's claim, not a best
// effort.
func Loss(p LossParams) (*metrics.Table, error) {
	p = p.normalized()
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Loss sweep — D-GMC over reliable flooding (n=%d, dup=%.2g, %d runs/point)",
			p.N, p.Dup, p.RunsPerPoint),
		XLabel:  "drop-rate",
		Columns: []string{"conv-rounds", "retransmits/event", "floodings/event"},
	}
	for ri, rate := range p.DropRates {
		results, err := parallelMap(p.RunsPerPoint, func(run int) (RunResult, error) {
			seed := p.BaseSeed*104_729 + int64(ri)*10_007 + int64(run)
			rp := Params{
				Sizes:               []int{p.N},
				GraphsPerSize:       1,
				BaseSeed:            seed,
				PerHop:              p.PerHop,
				Tc:                  p.Tc,
				Events:              p.Events,
				Bursty:              true,
				Mode:                flood.Reliable,
				RetryBudget:         p.RetryBudget,
				ResyncTimeoutRounds: p.ResyncTimeoutRounds,
			}.normalized()
			if rate > 0 || p.Dup > 0 {
				rp.Faults = &faults.Plan{
					Seed:    seed ^ 0x6c62_272e,
					Default: faults.LinkFaults{Drop: rate, Dup: p.Dup},
				}
			}
			g, err := buildGraph(rp, p.N, run)
			if err != nil {
				return RunResult{}, err
			}
			tf, err := probeTf(g, p.PerHop)
			if err != nil {
				return RunResult{}, err
			}
			events, err := buildEvents(rp, p.N, run, tf+p.Tc)
			if err != nil {
				return RunResult{}, err
			}
			res, err := RunDGMC(rp, g, events)
			if err != nil {
				return RunResult{}, fmt.Errorf("drop rate %g run %d: %w", rate, run, err)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		var conv, retr, fld metrics.Sample
		for _, res := range results {
			conv.Add(res.ConvergenceRounds)
			retr.Add(res.RetransmitsPerEvent())
			fld.Add(res.FloodingsPerEvent())
		}
		cs, err := conv.Summarize()
		if err != nil {
			return nil, err
		}
		rs, err := retr.Summarize()
		if err != nil {
			return nil, err
		}
		fs, err := fld.Summarize()
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(rate, cs, rs, fs); err != nil {
			return nil, err
		}
	}
	return t, nil
}
