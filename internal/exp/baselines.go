package exp

import (
	"fmt"

	"dgmc/internal/bruteforce"
	"dgmc/internal/flood"
	"dgmc/internal/metrics"
	"dgmc/internal/mospf"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// RunBruteForce executes the brute-force LSR-based MC baseline over the
// same workload and returns its computations-per-event ratio.
func RunBruteForce(p Params, g *topo.Graph, events []workload.Event) (float64, error) {
	p = p.normalized()
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, p.PerHop, flood.Direct)
	if err != nil {
		return 0, err
	}
	d, err := bruteforce.NewDomain(k, bruteforce.Config{Net: net, ComputeTime: p.Tc, Algorithm: p.Algorithm})
	if err != nil {
		return 0, err
	}
	for _, e := range events {
		if e.Join {
			d.Join(e.At, e.Switch, experimentConn, e.Role)
		} else {
			d.Leave(e.At, e.Switch, experimentConn)
		}
	}
	if _, err := k.Run(); err != nil {
		return 0, err
	}
	m := d.Metrics()
	if m.Events == 0 {
		return 0, fmt.Errorf("exp: brute-force run saw no events")
	}
	return float64(m.Computations) / float64(m.Events), nil
}

// RunMOSPF executes the MOSPF baseline: each membership event is followed
// one round later by a datagram from the group's first member (the
// data-driven trigger RFC 1584 relies on). It returns computations per
// event.
func RunMOSPF(p Params, g *topo.Graph, events []workload.Event) (float64, error) {
	p = p.normalized()
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, p.PerHop, flood.Direct)
	if err != nil {
		return 0, err
	}
	tf, err := net.FloodTime()
	if err != nil {
		return 0, err
	}
	round := tf + p.Tc
	d, err := mospf.NewDomain(k, mospf.Config{Net: net, ComputeTime: p.Tc})
	if err != nil {
		return 0, err
	}
	const group mospf.GroupID = 1
	members := map[topo.SwitchID]bool{}
	var source topo.SwitchID = topo.NoSwitch
	for _, e := range events {
		if e.Join {
			d.Join(e.At, e.Switch, group)
			members[e.Switch] = true
			if source == topo.NoSwitch || e.Switch < source {
				source = e.Switch
			}
		} else {
			d.Leave(e.At, e.Switch, group)
			delete(members, e.Switch)
		}
		// The next data packet after the event re-triggers computation at
		// every on-tree switch.
		if source != topo.NoSwitch {
			d.SendDatagram(e.At+round, source, group)
		}
	}
	if _, err := k.Run(); err != nil {
		return 0, err
	}
	m := d.Metrics()
	if m.Events == 0 {
		return 0, fmt.Errorf("exp: MOSPF run saw no events")
	}
	return float64(m.Computations) / float64(m.Events), nil
}

// Baselines runs the three protocols over identical workloads and reports
// topology computations per event — the comparison the paper's §2 and §4
// make: D-GMC stays a small constant while MOSPF scales with the MC size
// and brute force with the network size.
func Baselines(p Params, overrides func(*Params)) (*metrics.Table, error) {
	p = p.normalized()
	if overrides != nil {
		overrides(&p)
	}
	table := &metrics.Table{
		Title:   "Baseline comparison — topology computations per event",
		XLabel:  "switches",
		Columns: []string{"D-GMC", "MOSPF", "brute force"},
	}
	type baselinePoint struct {
		dg, mo, bf float64
	}
	for _, n := range p.Sizes {
		points, err := parallelMap(p.GraphsPerSize, func(i int) (baselinePoint, error) {
			g, err := buildGraph(p, n, i)
			if err != nil {
				return baselinePoint{}, err
			}
			tf, err := probeTf(g, p.PerHop)
			if err != nil {
				return baselinePoint{}, err
			}
			events, err := buildEvents(p, n, i, tf+p.Tc)
			if err != nil {
				return baselinePoint{}, err
			}
			res, err := RunDGMC(p, g, events)
			if err != nil {
				return baselinePoint{}, fmt.Errorf("dgmc size %d graph %d: %w", n, i, err)
			}
			mv, err := RunMOSPF(p, g, events)
			if err != nil {
				return baselinePoint{}, fmt.Errorf("mospf size %d graph %d: %w", n, i, err)
			}
			bv, err := RunBruteForce(p, g, events)
			if err != nil {
				return baselinePoint{}, fmt.Errorf("bruteforce size %d graph %d: %w", n, i, err)
			}
			return baselinePoint{dg: res.ProposalsPerEvent(), mo: mv, bf: bv}, nil
		})
		if err != nil {
			return nil, err
		}
		var dg, mo, bf metrics.Sample
		for _, pt := range points {
			dg.Add(pt.dg)
			mo.Add(pt.mo)
			bf.Add(pt.bf)
		}
		ds, err := dg.Summarize()
		if err != nil {
			return nil, err
		}
		ms, err := mo.Summarize()
		if err != nil {
			return nil, err
		}
		bs, err := bf.Summarize()
		if err != nil {
			return nil, err
		}
		if err := table.AddRow(float64(n), ds, ms, bs); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// DefaultBaselineParams uses the normal-traffic (sparse) regime of
// Experiment 3 — the "most situations" case in which the paper makes its
// comparison: D-GMC costs one computation per event, MOSPF one per on-tree
// switch, and brute force one per network switch. (Under bursts MOSPF's
// routing cache amortizes several membership events into the next datagram,
// which blurs the per-event accounting without changing who wins overall.)
func DefaultBaselineParams() Params {
	return Experiment3Params()
}
