// Package exp is the experiment harness: it wires networks, protocols, and
// workloads together inside the simulator and regenerates every figure of
// the paper's evaluation (§4) plus the comparisons the text makes against
// MOSPF, the brute-force LSR protocol, and CBT.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//   - Experiment1 — Figure 6(a,b,c): bursty events, computation dominates.
//   - Experiment2 — Figure 7(a,b,c): bursty events, communication dominates.
//   - Experiment3 — Figure 8(a,b): normal (sparse) traffic.
//   - Baselines — §2/§4 claim: D-GMC ≪ MOSPF ≪ brute force computations.
//   - TreeQuality — §5 claim: CBT trees are efficient but concentrate
//     traffic.
package exp

import (
	"fmt"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/metrics"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// DefaultSizes are the network sizes swept by every experiment.
var DefaultSizes = []int{20, 40, 60, 80, 100}

// Params configures one experiment sweep.
type Params struct {
	// Sizes lists the network sizes to sweep. Defaults to DefaultSizes.
	Sizes []int
	// GraphsPerSize is the number of random graphs per size (the paper
	// uses 20 per size). Defaults to 20.
	GraphsPerSize int
	// BaseSeed makes the whole sweep reproducible.
	BaseSeed int64
	// PerHop is the per-hop LSA transmission/processing time.
	PerHop time.Duration
	// Tc is the topology computation time.
	Tc time.Duration
	// Events is the number of membership events per run. Defaults to 10.
	Events int
	// Bursty selects clustered conflicting events; otherwise sparse.
	Bursty bool
	// BurstWindowRounds sizes the burst window in units of one round
	// (Tf+Tc). Defaults to 1.
	BurstWindowRounds float64
	// SparseGapRounds is the mean inter-event gap in rounds for sparse
	// workloads. Defaults to 20.
	SparseGapRounds float64
	// Algorithm computes MC topologies. Defaults to route.SPH{}.
	Algorithm route.Algorithm
	// Mode selects the flooding transport. Defaults to flood.Direct, the
	// analytic model the paper's experiments assume.
	Mode flood.Mode
	// Faults injects transport faults into every run (requires
	// Mode == flood.Reliable). The plan's Seed is used as given, so two
	// runs with identical Params see identical faults.
	Faults *faults.Plan
	// RetryBudget bounds reliable retransmission attempts per link copy
	// (0 = the flood package default).
	RetryBudget int
	// ResyncTimeoutRounds enables gap recovery: the domain's resync timeout
	// is set to this many rounds (Tf+Tc). Zero disables resync.
	ResyncTimeoutRounds float64
}

func (p Params) normalized() Params {
	if len(p.Sizes) == 0 {
		p.Sizes = DefaultSizes
	}
	if p.GraphsPerSize == 0 {
		p.GraphsPerSize = 20
	}
	if p.Events == 0 {
		p.Events = 10
	}
	if p.BurstWindowRounds == 0 {
		p.BurstWindowRounds = 1
	}
	if p.SparseGapRounds == 0 {
		p.SparseGapRounds = 20
	}
	if p.Algorithm == nil {
		p.Algorithm = route.SPH{}
	}
	if p.Mode == 0 {
		p.Mode = flood.Direct
	}
	return p
}

// Experiment1Params returns the paper's Experiment 1 setting: per-hop LSA
// transmission time (10µs, the ATM testbed's AAL-5 figure) far below the
// topology computation time.
func Experiment1Params() Params {
	return Params{
		PerHop: 10 * time.Microsecond,
		Tc:     500 * time.Microsecond,
		Bursty: true,
	}.normalized()
}

// Experiment2Params returns the paper's Experiment 2 setting: the flooding
// diameter Tf significantly exceeds Tc (a WAN).
func Experiment2Params() Params {
	return Params{
		PerHop: 1 * time.Millisecond,
		Tc:     100 * time.Microsecond,
		Bursty: true,
	}.normalized()
}

// Experiment3Params returns the paper's Experiment 3 setting: normal
// traffic periods, with the Experiment 1 timing parameters but events
// spread many rounds apart.
func Experiment3Params() Params {
	return Params{
		PerHop: 10 * time.Microsecond,
		Tc:     500 * time.Microsecond,
		Bursty: false,
	}.normalized()
}

// RunResult reports one simulation run.
type RunResult struct {
	N                 int
	Events            uint64
	Computations      uint64
	Floodings         uint64
	Withdrawn         uint64
	Tf                time.Duration
	Round             time.Duration
	ConvergenceRounds float64
	// Retransmits and Resyncs report the reliable transport's recovery
	// effort (both zero under Direct/HopByHop/TreeBased, and under
	// Reliable on a fault-free fabric).
	Retransmits uint64
	Resyncs     uint64
}

// ProposalsPerEvent returns topology computations per event.
func (r RunResult) ProposalsPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Computations) / float64(r.Events)
}

// FloodingsPerEvent returns flooding operations per event.
func (r RunResult) FloodingsPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Floodings) / float64(r.Events)
}

// RetransmitsPerEvent returns link-level retransmissions per event.
func (r RunResult) RetransmitsPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Retransmits) / float64(r.Events)
}

const experimentConn lsa.ConnID = 1

// buildGraph returns the i-th random graph for size n under the sweep seed.
func buildGraph(p Params, n int, i int) (*topo.Graph, error) {
	seed := p.BaseSeed*1_000_003 + int64(n)*1_009 + int64(i)
	return topo.Waxman(topo.DefaultGenConfig(n, seed))
}

// buildEvents generates the run's membership events given the network's
// round length.
func buildEvents(p Params, n int, i int, round time.Duration) ([]workload.Event, error) {
	cfg := workload.Config{
		N:      n,
		Events: p.Events,
		Seed:   p.BaseSeed*7_368_787 + int64(n)*31 + int64(i),
		Start:  round, // let processes spin up before the first event
	}
	if p.Bursty {
		cfg.Window = time.Duration(p.BurstWindowRounds * float64(round))
		return workload.Bursty(cfg)
	}
	cfg.MeanGap = time.Duration(p.SparseGapRounds * float64(round))
	return workload.Sparse(cfg)
}

// RunDGMC executes one D-GMC simulation run over graph g with the given
// events and returns its metrics. The run must converge; a convergence
// failure is returned as an error.
func RunDGMC(p Params, g *topo.Graph, events []workload.Event) (RunResult, error) {
	p = p.normalized()
	k := sim.NewKernel()
	defer k.Shutdown()
	var opts []flood.Option
	if p.RetryBudget > 0 {
		opts = append(opts, flood.WithRetryBudget(p.RetryBudget))
	}
	if p.Faults != nil {
		inj, err := faults.New(k, *p.Faults)
		if err != nil {
			return RunResult{}, err
		}
		opts = append(opts, flood.WithFaults(inj))
	}
	net, err := flood.New(k, g, p.PerHop, p.Mode, opts...)
	if err != nil {
		return RunResult{}, err
	}
	tf, err := net.FloodTime()
	if err != nil {
		return RunResult{}, err
	}
	cfg := core.Config{Net: net, ComputeTime: p.Tc, Algorithm: p.Algorithm}
	if p.ResyncTimeoutRounds > 0 {
		cfg.ResyncTimeout = sim.Time(p.ResyncTimeoutRounds * float64(tf+p.Tc))
	}
	d, err := core.NewDomain(k, cfg)
	if err != nil {
		return RunResult{}, err
	}
	for _, e := range events {
		if e.Join {
			d.Join(e.At, e.Switch, experimentConn, e.Role)
		} else {
			d.Leave(e.At, e.Switch, experimentConn)
		}
	}
	if _, err := k.Run(); err != nil {
		return RunResult{}, err
	}
	if err := d.CheckConverged(); err != nil {
		return RunResult{}, fmt.Errorf("run did not converge: %w", err)
	}
	first, _ := workload.Span(events)
	round := tf + p.Tc
	m := d.Metrics()
	res := RunResult{
		N:            g.NumSwitches(),
		Events:       m.Events,
		Computations: m.Computations,
		Floodings:    net.Floodings(),
		Withdrawn:    m.Withdrawn,
		Tf:           tf,
		Round:        round,
		Retransmits:  net.Reliability().Retransmits,
		Resyncs:      m.ResyncRequests,
	}
	if d.LastInstall() > first && round > 0 {
		res.ConvergenceRounds = float64(d.LastInstall()-first) / float64(round)
	}
	return res, nil
}

// FigureSet bundles the tables of one experiment: proposals per event (a),
// floodings per event (b), and convergence time in rounds (c, bursty only).
type FigureSet struct {
	Proposals   *metrics.Table
	Floodings   *metrics.Table
	Convergence *metrics.Table // nil for sparse workloads (Figure 8 has no (c))
}

// Sweep runs the full size sweep for one experiment and summarizes the
// paper's three metrics across the random graphs of each size.
func Sweep(name string, p Params) (FigureSet, error) {
	p = p.normalized()
	fs := FigureSet{
		Proposals: &metrics.Table{
			Title:  name + " — topology computations (proposals) per event",
			XLabel: "switches", Columns: []string{"proposals/event"},
		},
		Floodings: &metrics.Table{
			Title:  name + " — flooding operations per event",
			XLabel: "switches", Columns: []string{"floodings/event"},
		},
	}
	if p.Bursty {
		fs.Convergence = &metrics.Table{
			Title:  name + " — convergence time (rounds, round = Tf+Tc)",
			XLabel: "switches", Columns: []string{"rounds"},
		}
	}
	for _, n := range p.Sizes {
		// The replications are independent — each derives its graph and
		// workload from (n, i) — so they fan out across the worker pool.
		results, err := parallelMap(p.GraphsPerSize, func(i int) (RunResult, error) {
			g, err := buildGraph(p, n, i)
			if err != nil {
				return RunResult{}, err
			}
			// Round length depends on the graph; probe Tf first.
			tf, err := probeTf(g, p.PerHop)
			if err != nil {
				return RunResult{}, err
			}
			events, err := buildEvents(p, n, i, tf+p.Tc)
			if err != nil {
				return RunResult{}, err
			}
			res, err := RunDGMC(p, g, events)
			if err != nil {
				return RunResult{}, fmt.Errorf("size %d graph %d: %w", n, i, err)
			}
			return res, nil
		})
		if err != nil {
			return FigureSet{}, err
		}
		var prop, fld, conv metrics.Sample
		for _, res := range results {
			prop.Add(res.ProposalsPerEvent())
			fld.Add(res.FloodingsPerEvent())
			conv.Add(res.ConvergenceRounds)
		}
		ps, err := prop.Summarize()
		if err != nil {
			return FigureSet{}, err
		}
		fd, err := fld.Summarize()
		if err != nil {
			return FigureSet{}, err
		}
		if err := fs.Proposals.AddRow(float64(n), ps); err != nil {
			return FigureSet{}, err
		}
		if err := fs.Floodings.AddRow(float64(n), fd); err != nil {
			return FigureSet{}, err
		}
		if fs.Convergence != nil {
			cs, err := conv.Summarize()
			if err != nil {
				return FigureSet{}, err
			}
			if err := fs.Convergence.AddRow(float64(n), cs); err != nil {
				return FigureSet{}, err
			}
		}
	}
	return fs, nil
}

// probeTf computes the flooding diameter of g without building a domain.
func probeTf(g *topo.Graph, perHop time.Duration) (time.Duration, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, perHop, flood.Direct)
	if err != nil {
		return 0, err
	}
	return net.FloodTime()
}

// Experiment1 regenerates Figure 6.
func Experiment1(overrides func(*Params)) (FigureSet, error) {
	p := Experiment1Params()
	if overrides != nil {
		overrides(&p)
	}
	return Sweep("Experiment 1 (Figure 6): bursty events, computation dominates", p)
}

// Experiment2 regenerates Figure 7.
func Experiment2(overrides func(*Params)) (FigureSet, error) {
	p := Experiment2Params()
	if overrides != nil {
		overrides(&p)
	}
	return Sweep("Experiment 2 (Figure 7): bursty events, communication dominates", p)
}

// Experiment3 regenerates Figure 8.
func Experiment3(overrides func(*Params)) (FigureSet, error) {
	p := Experiment3Params()
	if overrides != nil {
		overrides(&p)
	}
	return Sweep("Experiment 3 (Figure 8): normal traffic periods", p)
}
