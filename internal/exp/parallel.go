package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the replication worker pool. A variable rather than a
// constant so the determinism test can pin it to 1 and compare the rendered
// tables against a fully parallel run.
var maxWorkers = runtime.NumCPU()

// parallelMap evaluates f(0) … f(n-1) across min(maxWorkers, n) goroutines
// and returns the results in index order. Each replication derives its RNG
// seeds from the index alone, so scheduling order cannot leak into the
// results; callers then accumulate the ordered slice sequentially, which
// keeps the summarized output byte-identical to the old sequential loops.
// When several replications fail, the error with the lowest index wins —
// the same error a sequential loop would have stopped on.
func parallelMap[T any](n int, f func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if results[i], errs[i] = f(i); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
