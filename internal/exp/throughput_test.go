package exp

import (
	"testing"
	"time"
)

// TestThroughputSmall exercises the saturation sweep end to end at toy
// scale: one 9-switch cell, short windows. It gates plumbing (cluster boot,
// closed-loop blast, table assembly), not absolute rates — those belong to
// BenchmarkClusterThroughput and the bench.sh gate.
func TestThroughputSmall(t *testing.T) {
	tbl, err := Throughput(ThroughputParams{
		Sizes:        []int{9},
		Sources:      []int{2},
		Payloads:     []int{32},
		Warmup:       20 * time.Millisecond,
		Measure:      50 * time.Millisecond,
		RunsPerPoint: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(tbl.Rows))
	}
	row := tbl.Rows[0]
	if row.X != 9 {
		t.Fatalf("row X = %v, want 9", row.X)
	}
	if len(row.Cells) != 2 {
		t.Fatalf("got %d cells, want 2 (ksend/s, kdeliv/s)", len(row.Cells))
	}
	if row.Cells[0].Mean <= 0 || row.Cells[1].Mean <= 0 {
		t.Fatalf("saturation run measured zero throughput: %+v", row.Cells)
	}
}

func TestThroughputShape(t *testing.T) {
	for _, tc := range []struct{ n, rows, cols int }{
		{16, 4, 4}, {32, 4, 8}, {64, 8, 8}, {9, 3, 3},
	} {
		r, c := throughputShape(tc.n)
		if r != tc.rows || c != tc.cols {
			t.Errorf("throughputShape(%d) = %d×%d, want %d×%d", tc.n, r, c, tc.rows, tc.cols)
		}
	}
}
