package exp

import (
	"testing"
)

// TestDeliverySweepSmall runs the live delivery sweep at a miniature scale
// and checks the physics: a lossless fabric delivers everything in the
// settled phase, a very lossy one does not.
func TestDeliverySweepSmall(t *testing.T) {
	p := DeliveryParams{
		Rows: 2, Cols: 3,
		DropProbs:    []float64{0, 0.3},
		ChurnEvery:   []int{15},
		Packets:      45,
		RunsPerPoint: 1,
		BaseSeed:     7,
	}
	tab, err := Delivery(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	wantCols := []string{"ratio-settled", "ratio-churn@15", "dups/1k", "refused/1k",
		"drop-ne/1k", "drop-nr/1k", "drop-hb/1k", "drop-lp/1k"}
	if len(tab.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", tab.Columns, wantCols)
	}
	for i, c := range wantCols {
		if tab.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", tab.Columns, wantCols)
		}
	}
	clean, lossy := tab.Rows[0], tab.Rows[1]
	if clean.X != 0 || lossy.X != 30 {
		t.Fatalf("x values = %g, %g, want 0, 30", clean.X, lossy.X)
	}
	if r := clean.Cells[0].Mean; r != 1 {
		t.Fatalf("lossless settled ratio = %g, want 1", r)
	}
	// Duplicates may legitimately appear in the churn phase (trees briefly
	// disagree mid-install); the settled lossless phase is the clean bar and
	// is covered by ratio == 1 with no strays feeding the dup counter.
	if r := lossy.Cells[0].Mean; r >= 1 || r <= 0 {
		t.Fatalf("30%%-drop settled ratio = %g, want partial delivery", r)
	}
	// The taxonomy columns must never go negative, and on the lossless run
	// the hop-budget column stays zero (trees are shallow, budget is ample).
	for _, row := range tab.Rows {
		for i := 4; i < 8; i++ {
			if row.Cells[i].Mean < 0 {
				t.Fatalf("drop taxonomy column %d negative: %+v", i, row.Cells[i])
			}
		}
	}
	if hb := clean.Cells[6].Mean; hb != 0 {
		t.Fatalf("lossless hop-budget drops/1k = %g, want 0", hb)
	}
}
