package exp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dgmc/internal/metrics"
)

func TestParallelMapOrderAndErrors(t *testing.T) {
	got, err := parallelMap(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}

	// The lowest-index error wins regardless of which worker hits it first.
	boom := func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("replication %d failed", i)
		}
		return i, nil
	}
	_, err = parallelMap(100, boom)
	if err == nil || err.Error() != "replication 3 failed" {
		t.Fatalf("err = %v, want replication 3's error", err)
	}

	if _, err := parallelMap(0, func(i int) (int, error) {
		return 0, errors.New("must not run")
	}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestParallelMapUsesWorkers(t *testing.T) {
	if maxWorkers < 2 {
		t.Skip("single-CPU machine")
	}
	var inFlight, peak atomic.Int64
	_, err := parallelMap(maxWorkers*4, func(i int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		// Busy-wait a little so workers overlap.
		for j := 0; j < 1_000_000; j++ {
			_ = j
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want ≥ 2", peak.Load())
	}
}

// withWorkers runs f with the pool pinned to w workers.
func withWorkers(t *testing.T, w int, f func()) {
	t.Helper()
	old := maxWorkers
	maxWorkers = w
	defer func() { maxWorkers = old }()
	f()
}

func renderText(t *testing.T, tab *metrics.Table) string {
	t.Helper()
	var sb strings.Builder
	if err := tab.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelSweepsMatchSequential is the acceptance check for the
// parallelized harness: for a fixed seed, every sweep must render
// byte-identical tables whether replications run on one worker or on all
// CPUs. Seeds are derived from replication indices and results are
// accumulated in index order, so the schedule must not be observable.
func TestParallelSweepsMatchSequential(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU machine: parallel and sequential are the same schedule")
	}

	render := func(t *testing.T) map[string]string {
		out := map[string]string{}

		fs, err := Sweep("det", Params{
			Sizes: []int{10, 16}, GraphsPerSize: 4, Events: 5,
			BaseSeed: 7, PerHop: 10 * time.Microsecond, Tc: 500 * time.Microsecond,
			Bursty: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out["sweep/proposals"] = renderText(t, fs.Proposals)
		out["sweep/floodings"] = renderText(t, fs.Floodings)
		out["sweep/convergence"] = renderText(t, fs.Convergence)

		loss, err := Loss(LossParams{
			N: 12, DropRates: []float64{0, 0.05}, RunsPerPoint: 3, BaseSeed: 7, Events: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		out["loss"] = renderText(t, loss)

		tq, err := TreeQuality(TreeQualityParams{
			Sizes: []int{14}, GraphsPerSize: 4, Members: 5, BaseSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		out["treequality"] = renderText(t, tq)

		bl, err := Baselines(DefaultBaselineParams(), func(p *Params) {
			p.Sizes = []int{10}
			p.GraphsPerSize = 3
			p.Events = 4
			p.BaseSeed = 7
		})
		if err != nil {
			t.Fatal(err)
		}
		out["baselines"] = renderText(t, bl)

		bs, err := BurstScaling(BurstScalingParams{
			N: 12, BurstSizes: []int{2, 6}, RunsPerPoint: 3, BaseSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		out["burstscaling"] = renderText(t, bs)

		hier, err := Hierarchy(HierarchyParams{
			AreaCounts: []int{2, 3}, AreaSize: 6, RunsPerPoint: 2, EventsPerArea: 2, BaseSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		out["hierarchy"] = renderText(t, hier)
		return out
	}

	var seq, par map[string]string
	withWorkers(t, 1, func() { seq = render(t) })
	withWorkers(t, runtime.NumCPU(), func() { par = render(t) })

	for name, want := range seq {
		if got := par[name]; got != want {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				name, want, got)
		}
	}
}
