package exp

import (
	"fmt"
	"math/rand"

	"dgmc/internal/cbt"
	"dgmc/internal/mctree"
	"dgmc/internal/metrics"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// TreeQualityParams configures the CBT-vs-D-GMC tree comparison of §5.
type TreeQualityParams struct {
	// Sizes lists network sizes. Defaults to DefaultSizes.
	Sizes []int
	// GraphsPerSize defaults to 20.
	GraphsPerSize int
	// Members is the MC group size. Defaults to 8.
	Members int
	// BaseSeed makes the sweep reproducible.
	BaseSeed int64
}

func (p TreeQualityParams) normalized() TreeQualityParams {
	if len(p.Sizes) == 0 {
		p.Sizes = DefaultSizes
	}
	if p.GraphsPerSize == 0 {
		p.GraphsPerSize = 20
	}
	if p.Members == 0 {
		p.Members = 8
	}
	return p
}

// TreeQuality compares CBT shared trees against the Steiner trees D-GMC
// installs for symmetric MCs: total tree cost (normalized to the Steiner
// tree) and maximum link load under all-members-send traffic. It
// reproduces the §5 trade-off: CBT's trees cost about the same, but the
// shared tree concentrates every sender's traffic on every tree link.
func TreeQuality(p TreeQualityParams) (*metrics.Table, error) {
	p = p.normalized()
	table := &metrics.Table{
		Title:  "Tree quality — CBT shared tree vs D-GMC Steiner tree (SPH)",
		XLabel: "switches",
		Columns: []string{
			"cost ratio (CBT/SPH)",
			"max load CBT",
			"max load source trees",
		},
	}
	// hasRatio records whether the Steiner tree had positive cost — a
	// degenerate graph yields no cost-ratio sample but still contributes
	// load samples, exactly as the sequential loop did.
	type qualityPoint struct {
		ratio            float64
		hasRatio         bool
		cbtLoad, srcLoad float64
	}
	for _, n := range p.Sizes {
		points, err := parallelMap(p.GraphsPerSize, func(i int) (qualityPoint, error) {
			seed := p.BaseSeed*2_654_435 + int64(n)*97 + int64(i)
			g, err := topo.Waxman(topo.DefaultGenConfig(n, seed))
			if err != nil {
				return qualityPoint{}, err
			}
			rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
			members := mctree.Members{}
			ids := make([]topo.SwitchID, 0, p.Members)
			for len(members) < p.Members {
				s := topo.SwitchID(rng.Intn(n))
				if _, dup := members[s]; dup {
					continue
				}
				members[s] = mctree.SenderReceiver
				ids = append(ids, s)
			}

			steiner, err := (route.SPH{}).Compute(g, mctree.Symmetric, members)
			if err != nil {
				return qualityPoint{}, fmt.Errorf("sph size %d graph %d: %w", n, i, err)
			}
			cb := route.NewCoreBased()
			core, err := cb.SelectCore(g, members)
			if err != nil {
				return qualityPoint{}, err
			}
			shared, err := cbt.New(g, core)
			if err != nil {
				return qualityPoint{}, err
			}
			for _, m := range ids {
				if err := shared.Join(m); err != nil {
					return qualityPoint{}, fmt.Errorf("cbt join size %d graph %d: %w", n, i, err)
				}
			}
			sharedTree := shared.MCTree()
			var pt qualityPoint
			if c := steiner.Cost(g); c > 0 {
				pt.ratio = float64(sharedTree.Cost(g)) / float64(c)
				pt.hasRatio = true
			}
			loads, err := shared.SharedTreeLoads(ids)
			if err != nil {
				return qualityPoint{}, err
			}
			pt.cbtLoad = loads.Max()
			src, err := cbt.SourceTreeLoads(g, ids, ids)
			if err != nil {
				return qualityPoint{}, err
			}
			pt.srcLoad = src.Max()
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		var costRatio, cbtLoad, srcLoad metrics.Sample
		for _, pt := range points {
			if pt.hasRatio {
				costRatio.Add(pt.ratio)
			}
			cbtLoad.Add(pt.cbtLoad)
			srcLoad.Add(pt.srcLoad)
		}
		cr, err := costRatio.Summarize()
		if err != nil {
			return nil, err
		}
		cl, err := cbtLoad.Summarize()
		if err != nil {
			return nil, err
		}
		sl, err := srcLoad.Summarize()
		if err != nil {
			return nil, err
		}
		if err := table.AddRow(float64(n), cr, cl, sl); err != nil {
			return nil, err
		}
	}
	return table, nil
}
