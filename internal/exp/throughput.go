package exp

import (
	"fmt"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/metrics"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// ThroughputParams configures the data-plane saturation sweep: a live
// rt.Cluster on an in-process ChanFabric is blasted flat-out by the
// workload.Blast generator and the sustained packets/sec is measured across
// cluster sizes, concurrent source counts, and payload sizes. This is the
// experiment behind the PR-10 fabric rework: packets/sec as a first-class,
// regression-gated metric rather than a side effect of delivery soaks.
type ThroughputParams struct {
	// Sizes lists the cluster sizes (switch counts) to sweep; each becomes
	// one table row. Defaults to {16, 32, 64}.
	Sizes []int
	// Sources lists how many member switches originate concurrently; the
	// member set has five switches (four corners plus one interior), so
	// values above five are clamped. Defaults to {1, 5}.
	Sources []int
	// Payloads lists the app-payload sizes in bytes. Defaults to {64, 512}.
	Payloads []int
	// Warmup and Measure are the per-run windows (defaults 100ms / 300ms).
	// Warmup lets pools, schedulers, and the closed loop reach steady state
	// before the measured window opens.
	Warmup, Measure time.Duration
	// MaxInFlight bounds the fabric's outstanding frames — the closed loop
	// that keeps an unbounded in-process fabric from ballooning its queues
	// under open-loop load (default 1024).
	MaxInFlight int64
	// RunsPerPoint is the number of runs per cell (default 3). Runs execute
	// serially: racing saturation runs against each other would measure
	// scheduler contention, not the fabric.
	RunsPerPoint int
}

func (p ThroughputParams) normalized() ThroughputParams {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{16, 32, 64}
	}
	if len(p.Sources) == 0 {
		p.Sources = []int{1, 5}
	}
	if len(p.Payloads) == 0 {
		p.Payloads = []int{64, 512}
	}
	if p.Warmup <= 0 {
		p.Warmup = 100 * time.Millisecond
	}
	if p.Measure <= 0 {
		p.Measure = 300 * time.Millisecond
	}
	if p.MaxInFlight <= 0 {
		p.MaxInFlight = 1024
	}
	if p.RunsPerPoint == 0 {
		p.RunsPerPoint = 3
	}
	return p
}

// Throughput runs the saturation sweep and reports, per cluster size, the
// sustained origination rate (kpkt/s) and cluster-wide delivery rate for
// every sources × payload combination (means with 95% CIs).
func Throughput(p ThroughputParams) (*metrics.Table, error) {
	p = p.normalized()
	var cols []string
	for _, src := range p.Sources {
		for _, pay := range p.Payloads {
			cols = append(cols,
				fmt.Sprintf("ksend/s s%d·%dB", src, pay),
				fmt.Sprintf("kdeliv/s s%d·%dB", src, pay))
		}
	}
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Throughput sweep — live ChanFabric cluster under saturating load, %s measure (%d runs/point)",
			p.Measure, p.RunsPerPoint),
		XLabel:  "switches",
		Columns: cols,
	}
	for _, size := range p.Sizes {
		var cells []metrics.Summary
		for _, src := range p.Sources {
			for _, pay := range p.Payloads {
				send, deliv := &metrics.Sample{}, &metrics.Sample{}
				for run := 0; run < p.RunsPerPoint; run++ {
					res, err := runThroughput(p, size, src, pay)
					if err != nil {
						return nil, fmt.Errorf("n=%d src=%d payload=%d run %d: %w",
							size, src, pay, run, err)
					}
					send.Add(res.SendRate() / 1000)
					deliv.Add(res.DeliveredRate() / 1000)
				}
				for _, s := range []*metrics.Sample{send, deliv} {
					sum, err := s.Summarize()
					if err != nil {
						return nil, err
					}
					cells = append(cells, sum)
				}
			}
		}
		if err := t.AddRow(float64(size), cells...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// throughputShape maps a switch count to a grid as square as possible.
func throughputShape(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// runThroughput executes one saturation run: boot the cluster, converge the
// five-member set, then blast from the first src members with a closed loop
// bounding the fabric's in-flight frames.
func runThroughput(p ThroughputParams, size, src, payload int) (workload.BlastResult, error) {
	rows, cols := throughputShape(size)
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		return workload.BlastResult{}, err
	}
	conn := lsa.ConnID(1)
	fab := rt.NewChanFabric(size)
	c, err := rt.NewCluster(rt.ClusterConfig{
		Graph: g, ResyncTimeout: 50 * time.Millisecond,
	}, fab)
	if err != nil {
		return workload.BlastResult{}, err
	}
	defer c.Close()

	members := []topo.SwitchID{0, topo.SwitchID(cols - 1), topo.SwitchID(cols + 1),
		topo.SwitchID(size - cols), topo.SwitchID(size - 1)}
	for _, sw := range members {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			return workload.BlastResult{}, err
		}
	}
	if err := c.WaitConverged(60 * time.Second); err != nil {
		return workload.BlastResult{}, err
	}
	if src > len(members) {
		src = len(members)
	}
	if src < 1 {
		src = 1
	}
	return workload.Blast(c, workload.BlastConfig{
		Conn:        conn,
		Sources:     members[:src],
		PayloadSize: payload,
		Warmup:      p.Warmup,
		Measure:     p.Measure,
		InFlight:    fab.InFlight,
		MaxInFlight: p.MaxInFlight,
		Stats: func() workload.BlastStats {
			s := c.ForwardStats()
			return workload.BlastStats{Delivered: s.Delivered, Forwarded: s.Forwarded}
		},
	})
}
