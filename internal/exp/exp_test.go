package exp

import (
	"strings"
	"testing"
	"time"

	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// smallParams shrinks a sweep so unit tests stay fast; the full sweep runs
// in the benchmark harness.
func small(p Params) Params {
	p.Sizes = []int{12, 24}
	p.GraphsPerSize = 3
	p.Events = 6
	return p
}

func TestRunDGMCSingle(t *testing.T) {
	p := Experiment1Params()
	g, err := buildGraph(p, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := probeTf(g, p.PerHop)
	if err != nil {
		t.Fatal(err)
	}
	events, err := buildEvents(p, 20, 0, tf+p.Tc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDGMC(p, g, events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != uint64(len(events)) {
		t.Errorf("events = %d, want %d", res.Events, len(events))
	}
	if res.ProposalsPerEvent() <= 0 || res.FloodingsPerEvent() < 1 {
		t.Errorf("ratios = %.2f / %.2f", res.ProposalsPerEvent(), res.FloodingsPerEvent())
	}
	if res.Tf <= 0 || res.Round <= res.Tf {
		t.Errorf("Tf=%v round=%v", res.Tf, res.Round)
	}
}

func TestExperiment1ShapeTargets(t *testing.T) {
	fs, err := Experiment1(func(p *Params) { *p = small(*p) })
	if err != nil {
		t.Fatal(err)
	}
	if fs.Convergence == nil {
		t.Fatal("bursty experiment must report convergence")
	}
	for _, r := range fs.Proposals.Rows {
		// Shape target: proposals per event is a small constant, far below
		// one-per-switch (the brute-force cost).
		if r.Cells[0].Mean >= r.X/2 {
			t.Errorf("n=%g: proposals/event %.2f not ≪ n", r.X, r.Cells[0].Mean)
		}
		if r.Cells[0].Mean < 1 {
			t.Errorf("n=%g: proposals/event %.2f below 1 — metrics wrong", r.X, r.Cells[0].Mean)
		}
	}
	for _, r := range fs.Floodings.Rows {
		if r.Cells[0].Mean < 1 || r.Cells[0].Mean > 6 {
			t.Errorf("n=%g: floodings/event %.2f outside plausible range", r.X, r.Cells[0].Mean)
		}
	}
	for _, r := range fs.Convergence.Rows {
		if r.Cells[0].Mean <= 0 || r.Cells[0].Mean > 40 {
			t.Errorf("n=%g: convergence %.2f rounds implausible", r.X, r.Cells[0].Mean)
		}
	}
}

func TestExperiment3SparseRatiosNearOne(t *testing.T) {
	fs, err := Experiment3(func(p *Params) { *p = small(*p) })
	if err != nil {
		t.Fatal(err)
	}
	if fs.Convergence != nil {
		t.Error("sparse experiment should not report convergence")
	}
	for _, r := range fs.Proposals.Rows {
		if r.Cells[0].Mean < 1 || r.Cells[0].Mean > 1.35 {
			t.Errorf("n=%g: sparse proposals/event %.2f, want ≈1.0", r.X, r.Cells[0].Mean)
		}
	}
	for _, r := range fs.Floodings.Rows {
		if r.Cells[0].Mean < 1 || r.Cells[0].Mean > 1.35 {
			t.Errorf("n=%g: sparse floodings/event %.2f, want ≈1.0", r.X, r.Cells[0].Mean)
		}
	}
}

func TestExperiment2MoreWorkThanExperiment1(t *testing.T) {
	fs1, err := Experiment1(func(p *Params) { *p = small(*p) })
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Experiment2(func(p *Params) { *p = small(*p) })
	if err != nil {
		t.Fatal(err)
	}
	// The paper: Experiment 2 incurs more computations per event than
	// Experiment 1 (long floods mean more switches act before hearing a
	// proposal). Compare the largest size.
	last := len(fs1.Proposals.Rows) - 1
	p1 := fs1.Proposals.Rows[last].Cells[0].Mean
	p2 := fs2.Proposals.Rows[last].Cells[0].Mean
	if p2 < p1 {
		t.Errorf("experiment 2 proposals/event %.2f < experiment 1 %.2f — shape inverted", p2, p1)
	}
}

func TestBaselinesOrdering(t *testing.T) {
	table, err := Baselines(DefaultBaselineParams(), func(p *Params) { *p = small(*p) })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table.Rows {
		dgmc, mospfC, brute := r.Cells[0].Mean, r.Cells[1].Mean, r.Cells[2].Mean
		if !(dgmc < mospfC && mospfC < brute) {
			t.Errorf("n=%g: ordering violated: dgmc=%.2f mospf=%.2f brute=%.2f",
				r.X, dgmc, mospfC, brute)
		}
		// Brute force is n computations per event by construction.
		if brute < r.X*0.9 || brute > r.X*1.1 {
			t.Errorf("n=%g: brute force %.2f not ≈ n", r.X, brute)
		}
	}
}

func TestTreeQuality(t *testing.T) {
	table, err := TreeQuality(TreeQualityParams{Sizes: []int{20, 40}, GraphsPerSize: 4, Members: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range table.Rows {
		costRatio, cbtMax, srcMax := r.Cells[0].Mean, r.Cells[1].Mean, r.Cells[2].Mean
		if costRatio < 0.8 || costRatio > 2.5 {
			t.Errorf("n=%g: CBT/SPH cost ratio %.2f implausible", r.X, costRatio)
		}
		if cbtMax != 6 {
			t.Errorf("n=%g: CBT max load %.2f, want 6 (all senders on every tree link)", r.X, cbtMax)
		}
		if srcMax > cbtMax {
			t.Errorf("n=%g: source trees max %.2f exceeds shared %.2f", r.X, srcMax, cbtMax)
		}
	}
}

func TestBuildEventsModes(t *testing.T) {
	p := Experiment1Params()
	events, err := buildEvents(p, 20, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	first, last := workload.Span(events)
	if last-first > time.Millisecond {
		t.Errorf("bursty events span %v, window was 1ms", last-first)
	}
	p = Experiment3Params()
	events, err = buildEvents(p, 20, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	first, last = workload.Span(events)
	if last-first < 5*time.Millisecond {
		t.Errorf("sparse events span only %v", last-first)
	}
}

func TestTablesRender(t *testing.T) {
	fs, err := Experiment1(func(p *Params) {
		p.Sizes = []int{10}
		p.GraphsPerSize = 2
		p.Events = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fs.Proposals.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "proposals/event") {
		t.Errorf("text table malformed:\n%s", sb.String())
	}
	sb.Reset()
	if err := fs.Floodings.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "_mean") {
		t.Errorf("csv malformed:\n%s", sb.String())
	}
}

func TestBuildGraphDeterministic(t *testing.T) {
	p := Experiment1Params()
	a, err := buildGraph(p, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildGraph(p, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Error("same seed produced different graphs")
	}
	c, err := buildGraph(p, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := c.NumLinks() == a.NumLinks()
	if same {
		for _, l := range a.Links() {
			if _, ok := c.Link(l.A, l.B); !ok {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different graph index produced identical graphs")
	}
	_ = topo.NoSwitch
}

func TestHierarchySweep(t *testing.T) {
	table, err := Hierarchy(HierarchyParams{AreaCounts: []int{2, 4}, AreaSize: 8, RunsPerPoint: 3, EventsPerArea: 2})
	if err != nil {
		t.Fatal(err)
	}
	// At two areas the gateway-anchoring overhead can cancel the area-
	// scoping savings (the crossover); at scale the hierarchy must win and
	// the savings must grow.
	first := table.Rows[0]
	last := table.Rows[len(table.Rows)-1]
	if last.Cells[1].Mean >= last.Cells[0].Mean {
		t.Errorf("n=%g: hierarchy did not reduce copies (%.1f vs %.1f)",
			last.X, last.Cells[1].Mean, last.Cells[0].Mean)
	}
	saveFirst := 1 - first.Cells[1].Mean/first.Cells[0].Mean
	saveLast := 1 - last.Cells[1].Mean/last.Cells[0].Mean
	if saveLast <= saveFirst {
		t.Errorf("savings did not grow with scale: %.2f -> %.2f", saveFirst, saveLast)
	}
}

func TestBurstScaling(t *testing.T) {
	table, err := BurstScaling(BurstScalingParams{N: 20, BurstSizes: []int{2, 8}, RunsPerPoint: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	small, big := table.Rows[0], table.Rows[1]
	// Larger bursts conflict more: withdrawn proposals per event and
	// convergence rounds must not shrink.
	if big.Cells[2].Mean < small.Cells[2].Mean-0.3 {
		t.Errorf("withdrawn/event fell with burst size: %.2f -> %.2f",
			small.Cells[2].Mean, big.Cells[2].Mean)
	}
	for _, r := range table.Rows {
		if r.Cells[0].Mean < 1 {
			t.Errorf("burst=%g: proposals/event %.2f < 1", r.X, r.Cells[0].Mean)
		}
	}
}
