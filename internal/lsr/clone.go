package lsr

import (
	"encoding/binary"
	"sort"

	"dgmc/internal/topo"
)

// Clone returns an independent deep copy of the instance: same switch,
// same image contents, same staleness-protection state, sharing nothing
// mutable with the original. The schedule-exploration harness
// (internal/explore) uses it to branch a switch's state at a choice point.
func (i *Instance) Clone() *Instance {
	c := &Instance{
		self:    i.self,
		image:   i.image.Clone(),
		nextHop: make([]topo.SwitchID, len(i.nextHop)),
		version: i.version,
		mySeq:   i.mySeq,
		seen:    make(map[topo.SwitchID]uint32, len(i.seen)),
	}
	copy(c.nextHop, i.nextHop)
	for k, v := range i.seen {
		c.seen[k] = v
	}
	return c
}

// AppendState appends a canonical encoding of the instance's
// behavior-relevant state to buf: the up/down bit of every link in stable
// link order, the own-advertisement sequence number, and the per-originator
// staleness horizon. Two instances with equal encodings react identically
// to every future input. Pure bookkeeping (the version counter, the
// routing table, which is a function of the image) is excluded so that
// different event orders reaching the same image compare equal.
func (i *Instance) AppendState(buf []byte) []byte {
	for _, l := range i.image.Links() {
		if l.Down {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, i.mySeq)
	ids := make([]topo.SwitchID, 0, len(i.seen))
	for id := range i.seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(id)))
		buf = binary.BigEndian.AppendUint32(buf, i.seen[id])
	}
	return buf
}
