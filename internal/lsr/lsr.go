// Package lsr implements the unicast link-state routing substrate that the
// D-GMC protocol layers on (paper §1): every switch maintains a complete
// local image of the network, learned through flooded link-state
// advertisements, and computes unicast routing tables locally — the OSPF
// working principle.
//
// The MC protocol reuses three things from this substrate: the local
// network image (as input to topology computation), the flooding service,
// and the origination of non-MC LSAs when link/nodal events are detected.
package lsr

import (
	"fmt"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// Instance is a single switch's link-state routing state: its local image
// of the network and the unicast routing table derived from it.
type Instance struct {
	self    topo.SwitchID
	image   *topo.Graph
	nextHop []topo.SwitchID
	version uint64
	// mySeq numbers this switch's own advertisements; seen tracks the
	// highest sequence number accepted per originator (OSPF-style
	// staleness protection).
	mySeq uint32
	seen  map[topo.SwitchID]uint32
}

// NewInstance creates switch self's LSR instance with an initial network
// image cloned from base (the configured topology; in a real deployment
// this is learned by initial flooding, which the simulation elides).
func NewInstance(self topo.SwitchID, base *topo.Graph) (*Instance, error) {
	if self < 0 || int(self) >= base.NumSwitches() {
		return nil, fmt.Errorf("lsr: switch %d out of range [0,%d)", self, base.NumSwitches())
	}
	i := &Instance{self: self, image: base.Clone(), seen: make(map[topo.SwitchID]uint32)}
	i.recompute()
	return i, nil
}

// Self returns the switch this instance runs on.
func (i *Instance) Self() topo.SwitchID { return i.self }

// Image returns the switch's local image of the network. Callers must
// treat it as read-only; it is shared with the MC protocol's topology
// computations.
func (i *Instance) Image() *topo.Graph { return i.image }

// Version counts applied topology changes; it increments whenever an LSA
// changes the local image.
func (i *Instance) Version() uint64 { return i.version }

// HandleLSA applies a non-MC LSA to the local image, recomputing the
// routing table if the image changed. It returns whether the image changed.
// Sequenced advertisements (Seq > 0) older than or equal to the newest
// accepted from the same originator are discarded, so duplicated or
// reordered delivery cannot regress the image (as in OSPF); unsequenced
// advertisements (Seq == 0) are applied idempotently.
func (i *Instance) HandleLSA(nm *lsa.NonMC) (changed bool, err error) {
	if nm == nil {
		return false, fmt.Errorf("lsr: nil LSA")
	}
	l, ok := i.image.Link(nm.Change.A, nm.Change.B)
	if !ok {
		return false, fmt.Errorf("lsr: LSA for unknown link (%d,%d)", nm.Change.A, nm.Change.B)
	}
	if nm.Seq > 0 {
		if nm.Seq <= i.seen[nm.Src] {
			return false, nil // stale or duplicate
		}
		i.seen[nm.Src] = nm.Seq
	}
	if l.Down == nm.Change.Down {
		return false, nil
	}
	if err := i.image.SetLinkDown(nm.Change.A, nm.Change.B, nm.Change.Down); err != nil {
		return false, err
	}
	i.version++
	i.recompute()
	return true, nil
}

// ApplyLocalEvent records a link event detected at this switch itself
// (before flooding it) and returns the sequenced LSA to flood.
func (i *Instance) ApplyLocalEvent(change lsa.LinkChange) (*lsa.NonMC, error) {
	i.mySeq++
	nm := &lsa.NonMC{Src: i.self, Seq: i.mySeq, Change: change}
	if _, err := i.HandleLSA(nm); err != nil {
		i.mySeq--
		return nil, err
	}
	return nm, nil
}

// NextHop returns the neighbor to forward to for destination dst, or
// (NoSwitch, false) when dst is unreachable. NextHop for self is self.
func (i *Instance) NextHop(dst topo.SwitchID) (topo.SwitchID, bool) {
	if dst < 0 || int(dst) >= len(i.nextHop) {
		return topo.NoSwitch, false
	}
	nh := i.nextHop[dst]
	return nh, nh != topo.NoSwitch
}

// recompute rebuilds the unicast routing table from the local image.
func (i *Instance) recompute() {
	n := i.image.NumSwitches()
	i.nextHop = make([]topo.SwitchID, n)
	spt := i.image.ShortestPaths(i.self)
	for d := 0; d < n; d++ {
		dst := topo.SwitchID(d)
		if dst == i.self {
			i.nextHop[d] = i.self
			continue
		}
		path := spt.Path(dst)
		if len(path) < 2 {
			i.nextHop[d] = topo.NoSwitch
			continue
		}
		i.nextHop[d] = path[1]
	}
}

// Route traces the unicast path from this switch to dst through a set of
// instances (indexed by switch ID), following each hop's own table — the
// way a real packet would be forwarded. It errors on loops or blackholes.
func Route(instances []*Instance, from, dst topo.SwitchID) ([]topo.SwitchID, error) {
	if int(from) >= len(instances) || int(dst) >= len(instances) || from < 0 || dst < 0 {
		return nil, fmt.Errorf("lsr: route endpoints (%d,%d) out of range", from, dst)
	}
	path := []topo.SwitchID{from}
	cur := from
	for cur != dst {
		nh, ok := instances[cur].NextHop(dst)
		if !ok {
			return nil, fmt.Errorf("lsr: no route from %d to %d at switch %d", from, dst, cur)
		}
		cur = nh
		path = append(path, cur)
		if len(path) > len(instances)+1 {
			return nil, fmt.Errorf("lsr: routing loop from %d to %d: %v", from, dst, path)
		}
	}
	return path, nil
}
