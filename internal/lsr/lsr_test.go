package lsr

import (
	"testing"
	"time"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func newDomain(t *testing.T, g *topo.Graph) []*Instance {
	t.Helper()
	instances := make([]*Instance, g.NumSwitches())
	for s := range instances {
		inst, err := NewInstance(topo.SwitchID(s), g)
		if err != nil {
			t.Fatal(err)
		}
		instances[s] = inst
	}
	return instances
}

func TestNewInstanceValidation(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstance(-1, g); err == nil {
		t.Error("negative self accepted")
	}
	if _, err := NewInstance(3, g); err == nil {
		t.Error("out-of-range self accepted")
	}
	inst, err := NewInstance(1, g)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Self() != 1 {
		t.Errorf("self = %d", inst.Self())
	}
}

func TestInitialRoutingTables(t *testing.T) {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	instances := newDomain(t, g)

	nh, ok := instances[0].NextHop(3)
	if !ok || nh != 1 {
		t.Errorf("0->3 next hop = %d,%v", nh, ok)
	}
	nh, ok = instances[2].NextHop(0)
	if !ok || nh != 1 {
		t.Errorf("2->0 next hop = %d,%v", nh, ok)
	}
	nh, ok = instances[1].NextHop(1)
	if !ok || nh != 1 {
		t.Errorf("self next hop = %d,%v", nh, ok)
	}
	if _, ok := instances[0].NextHop(9); ok {
		t.Error("next hop for bogus destination")
	}
	path, err := Route(instances, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Errorf("path = %v", path)
	}
}

func TestHandleLSAUpdatesImageAndTable(t *testing.T) {
	// Ring: failing one link forces routing the long way.
	g, err := topo.Ring(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	instances := newDomain(t, g)

	nh, _ := instances[0].NextHop(3)
	if nh != 3 {
		t.Fatalf("initial 0->3 next hop = %d, want direct 3", nh)
	}
	nm := &lsa.NonMC{Src: 0, Change: lsa.LinkChange{A: 0, B: 3, Down: true}}
	changed, err := instances[0].HandleLSA(nm)
	if err != nil || !changed {
		t.Fatalf("HandleLSA: changed=%v err=%v", changed, err)
	}
	if instances[0].Version() != 1 {
		t.Errorf("version = %d", instances[0].Version())
	}
	nh, ok := instances[0].NextHop(3)
	if !ok || nh != 1 {
		t.Errorf("0->3 after failure next hop = %d,%v, want 1", nh, ok)
	}
	// Duplicate LSA is idempotent.
	changed, err = instances[0].HandleLSA(nm)
	if err != nil || changed {
		t.Errorf("duplicate LSA: changed=%v err=%v", changed, err)
	}
	// Link recovery restores the direct route.
	up := &lsa.NonMC{Src: 3, Change: lsa.LinkChange{A: 0, B: 3, Down: false}}
	if changed, err := instances[0].HandleLSA(up); err != nil || !changed {
		t.Fatalf("recovery LSA: changed=%v err=%v", changed, err)
	}
	if nh, _ := instances[0].NextHop(3); nh != 3 {
		t.Errorf("0->3 after recovery = %d", nh)
	}
}

func TestHandleLSAErrors(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(0, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.HandleLSA(nil); err == nil {
		t.Error("nil LSA accepted")
	}
	bogus := &lsa.NonMC{Src: 0, Change: lsa.LinkChange{A: 0, B: 2, Down: true}}
	if _, err := inst.HandleLSA(bogus); err == nil {
		t.Error("LSA for unknown link accepted")
	}
}

func TestApplyLocalEvent(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(0, g)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := inst.ApplyLocalEvent(lsa.LinkChange{A: 0, B: 1, Down: true})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Src != 0 || !nm.Change.Down {
		t.Errorf("LSA = %+v", nm)
	}
	if _, ok := inst.NextHop(2); ok {
		t.Error("route survived local link failure")
	}
	// Instance image changed, not the shared base graph.
	if l, _ := g.Link(0, 1); l.Down {
		t.Error("ApplyLocalEvent mutated the base graph")
	}
}

func TestRouteErrors(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	instances := newDomain(t, g)
	if _, err := Route(instances, 0, 5); err == nil {
		t.Error("out-of-range destination accepted")
	}
	// Blackhole: switch 0 thinks 0-1 is down.
	if _, err := instances[0].ApplyLocalEvent(lsa.LinkChange{A: 0, B: 1, Down: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Route(instances, 0, 2); err == nil {
		t.Error("blackhole route succeeded")
	}
	// Loop: 1 still routes 0->... but 0 routes via nothing — craft a loop by
	// making 1 think the 1-2 link is down while 2 disagrees.
	instances = newDomain(t, g)
	if _, err := instances[1].ApplyLocalEvent(lsa.LinkChange{A: 0, B: 1, Down: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := instances[0].ApplyLocalEvent(lsa.LinkChange{A: 1, B: 2, Down: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Route(instances, 0, 2); err == nil {
		t.Error("inconsistent-image route did not error")
	}
}

// TestDomainConvergenceViaFlooding is the substrate integration test: a
// link event is detected at one switch, flooded as a non-MC LSA, and every
// switch's image and routing table converge.
func TestDomainConvergenceViaFlooding(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(30, 9))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, time.Microsecond, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	instances := newDomain(t, g)
	for s := 0; s < g.NumSwitches(); s++ {
		s := s
		k.Spawn("lsr", func(p *sim.Process) {
			for {
				d, ok := net.Mailbox(topo.SwitchID(s)).Recv(p).(flood.Delivery)
				if !ok {
					continue
				}
				nm, ok := d.Payload.(*lsa.NonMC)
				if !ok {
					continue
				}
				if _, err := instances[s].HandleLSA(nm); err != nil {
					t.Errorf("switch %d: %v", s, err)
					return
				}
			}
		})
	}

	// Pick a link whose failure keeps the network connected.
	var fail topo.Link
	found := false
	for _, l := range g.Links() {
		trial := g.Clone()
		if err := trial.SetLinkDown(l.A, l.B, true); err != nil {
			t.Fatal(err)
		}
		if trial.Connected() {
			fail = l
			found = true
			break
		}
	}
	if !found {
		t.Skip("no redundant link in generated graph")
	}

	// Switch fail.A detects the failure.
	k.Schedule(0, func() {
		nm, err := instances[fail.A].ApplyLocalEvent(lsa.LinkChange{A: fail.A, B: fail.B, Down: true})
		if err != nil {
			t.Errorf("originate: %v", err)
			return
		}
		net.Flood(fail.A, nm)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}

	for s := 0; s < g.NumSwitches(); s++ {
		l, ok := instances[s].Image().Link(fail.A, fail.B)
		if !ok || !l.Down {
			t.Fatalf("switch %d image did not converge", s)
		}
	}
	// Hop-by-hop forwarding works between every pair after convergence.
	for from := 0; from < g.NumSwitches(); from += 7 {
		for dst := 0; dst < g.NumSwitches(); dst += 5 {
			if _, err := Route(instances, topo.SwitchID(from), topo.SwitchID(dst)); err != nil {
				t.Errorf("route %d->%d: %v", from, dst, err)
			}
		}
	}
}

// TestSequencedLSAStalenessProtection verifies the OSPF-style rule: a
// reordered (older) advertisement from the same originator cannot regress
// the image, and duplicates of the newest are ignored.
func TestSequencedLSAStalenessProtection(t *testing.T) {
	g, err := topo.Ring(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := NewInstance(0, g)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := NewInstance(2, g)
	if err != nil {
		t.Fatal(err)
	}
	down, err := origin.ApplyLocalEvent(lsa.LinkChange{A: 0, B: 1, Down: true})
	if err != nil {
		t.Fatal(err)
	}
	up, err := origin.ApplyLocalEvent(lsa.LinkChange{A: 0, B: 1, Down: false})
	if err != nil {
		t.Fatal(err)
	}
	if down.Seq != 1 || up.Seq != 2 {
		t.Fatalf("seqs = %d, %d", down.Seq, up.Seq)
	}

	// Reordered delivery: the newer "up" arrives first.
	if changed, err := receiver.HandleLSA(up); err != nil || changed {
		t.Fatalf("up first: changed=%v err=%v (image already up)", changed, err)
	}
	// The stale "down" must be discarded, not applied.
	if changed, err := receiver.HandleLSA(down); err != nil || changed {
		t.Errorf("stale down applied: changed=%v err=%v", changed, err)
	}
	if l, _ := receiver.Image().Link(0, 1); l.Down {
		t.Error("stale LSA regressed the image")
	}
	// A duplicate of the newest is ignored too.
	if changed, err := receiver.HandleLSA(up); err != nil || changed {
		t.Errorf("duplicate newest: changed=%v err=%v", changed, err)
	}
	// A genuinely newer advertisement still applies.
	down2, err := origin.ApplyLocalEvent(lsa.LinkChange{A: 0, B: 1, Down: true})
	if err != nil {
		t.Fatal(err)
	}
	if changed, err := receiver.HandleLSA(down2); err != nil || !changed {
		t.Errorf("newer LSA rejected: changed=%v err=%v", changed, err)
	}
}

// TestSequenceNumbersAreIndependentPerOriginator checks that staleness is
// tracked per source: seq 1 from a second originator is not stale just
// because the first originator reached seq 2.
func TestSequenceNumbersAreIndependentPerOriginator(t *testing.T) {
	g, err := topo.Ring(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := NewInstance(3, g)
	if err != nil {
		t.Fatal(err)
	}
	a := &lsa.NonMC{Src: 0, Seq: 2, Change: lsa.LinkChange{A: 0, B: 1, Down: true}}
	if changed, err := receiver.HandleLSA(a); err != nil || !changed {
		t.Fatalf("seed LSA: %v %v", changed, err)
	}
	b := &lsa.NonMC{Src: 1, Seq: 1, Change: lsa.LinkChange{A: 1, B: 2, Down: true}}
	if changed, err := receiver.HandleLSA(b); err != nil || !changed {
		t.Errorf("other-origin seq 1 treated as stale: changed=%v err=%v", changed, err)
	}
}
