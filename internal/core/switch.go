package core

import (
	"fmt"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/lsr"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func switchID(x int) topo.SwitchID { return topo.SwitchID(x) }

// Switch is one simulated network switch running the D-GMC protocol: the
// runtime-agnostic state machine (Machine) plus the simulation adapter that
// drives it — the two protocol entities (EventHandler and ReceiveLSA) as
// simulated processes, virtual-time compute costs, and the flood.Network
// fabric. It implements Host. The live runtime equivalent is
// internal/rt.Node, driving the exact same Machine.
type Switch struct {
	id     topo.SwitchID
	d      *Domain
	m      *Machine
	events *sim.Mailbox
	// cur is the process currently executing machine code, so HoldCompute
	// suspends the right entity. Only ever mutated from kernel context.
	cur *sim.Process
}

func newSwitch(d *Domain, id topo.SwitchID) (*Switch, error) {
	s := &Switch{
		id:     id,
		d:      d,
		events: sim.NewMailbox(d.k, fmt.Sprintf("events-%d", id)),
	}
	m, err := NewMachine(MachineConfig{
		ID:                  id,
		Graph:               d.net.Graph(),
		Algorithm:           d.algorithm,
		Kinds:               d.kinds,
		ReoptimizeThreshold: d.reoptThresh,
		Resync:              d.resyncAfter > 0,
		ResyncMaxRounds:     d.resyncMax,
		Metrics:             d.metrics,
	}, s)
	if err != nil {
		return nil, err
	}
	s.m = m
	return s, nil
}

// ID returns the switch's network ID.
func (s *Switch) ID() topo.SwitchID { return s.id }

// Machine returns the switch's protocol state machine.
func (s *Switch) Machine() *Machine { return s.m }

// Unicast returns the switch's LSR instance (its local network image).
func (s *Switch) Unicast() *lsr.Instance { return s.m.Unicast() }

// Connection returns a snapshot of the switch's state for conn, or ok=false
// if the switch holds no state for it.
func (s *Switch) Connection(conn lsa.ConnID) (Snapshot, bool) {
	return s.m.Connection(conn)
}

// Connections lists the IDs of live (non-dormant) connections at this
// switch.
func (s *Switch) Connections() []lsa.ConnID { return s.m.Connections() }

// eventLoop is the process body that invokes EventHandler for each injected
// local event, in arrival order.
func (s *Switch) eventLoop(p *sim.Process) {
	for {
		ev, ok := s.events.Recv(p).(LocalEvent)
		if !ok {
			continue
		}
		s.cur = p
		s.m.HandleLocalEvent(p, ev)
	}
}

// lsaLoop is the process body for the ReceiveLSA entity: it wakes whenever
// the switch's LSA mailbox is non-empty.
func (s *Switch) lsaLoop(p *sim.Process) {
	inbox := s.d.net.Mailbox(s.id)
	for {
		first := inbox.Recv(p)
		batch := append([]any{first}, inbox.Drain()...)
		s.cur = p
		s.m.ReceiveBatch(p, batch)
	}
}

// --- Host implementation (simulation runtime) ---

var _ Host = (*Switch)(nil)

// FloodMC implements Host: flood an MC LSA over the fabric, on the wire
// when the domain is configured to encode advertisements.
func (s *Switch) FloodMC(m *lsa.MC) {
	if s.d.encodeLSAs {
		s.d.net.Flood(s.id, m.Marshal())
		return
	}
	s.d.net.Flood(s.id, m)
}

// FloodNonMC implements Host.
func (s *Switch) FloodNonMC(nm *lsa.NonMC) {
	if s.d.encodeLSAs {
		s.d.net.Flood(s.id, nm.Marshal())
		return
	}
	s.d.net.Flood(s.id, nm)
}

// SendUnicast implements Host: resync traffic rides the fabric's neighbor
// unicast service.
func (s *Switch) SendUnicast(to topo.SwitchID, payload any) {
	s.d.net.Unicast(s.id, to, payload)
}

// HoldCompute implements Host: charge Tc of virtual time to the entity
// that is computing. ctx is the *sim.Process threaded through the machine
// entry point; it falls back to the process currently driving the machine.
func (s *Switch) HoldCompute(ctx any) {
	p, ok := ctx.(*sim.Process)
	if !ok {
		p = s.cur
	}
	if p != nil && s.d.computeTime > 0 {
		p.Hold(s.d.computeTime)
	}
}

// PendingMC implements Host: report whether the switch's mailbox currently
// holds an MC LSA for conn (Figure 5 line 22).
func (s *Switch) PendingMC(conn lsa.ConnID) bool {
	for _, raw := range s.d.net.Mailbox(s.id).Snapshot() {
		del, ok := raw.(flood.Delivery)
		if !ok {
			continue
		}
		payload := del.Payload
		if wire, ok := payload.([]byte); ok {
			mc, _, err := lsa.Unmarshal(wire)
			if err != nil || mc == nil {
				continue
			}
			payload = mc
		}
		if m, ok := payload.(*lsa.MC); ok && m.Conn == conn {
			return true
		}
	}
	return false
}

// Neighbors implements Host.
func (s *Switch) Neighbors() []topo.SwitchID {
	return s.d.net.Graph().Neighbors(s.id)
}

// FabricLinkChanged implements Host: mirror a locally detected link event
// into the shared fabric graph so floods route around the failure.
func (s *Switch) FabricLinkChanged(change lsa.LinkChange) {
	if err := s.d.net.Graph().SetLinkDown(change.A, change.B, change.Down); err != nil {
		s.d.trace(TraceError, ChainID{}, s.id, 0, "fabric: %v", err)
	}
}

// ArmResync implements Host: schedule the machine's gap check after the
// domain's resync timeout of virtual time.
func (s *Switch) ArmResync(conn lsa.ConnID) {
	s.d.k.After(s.d.resyncAfter, func() { s.m.ResyncFired(conn) })
}

// SelfNudge implements Host: deliver a ResyncNudge through the switch's
// own LSA mailbox.
func (s *Switch) SelfNudge(conn lsa.ConnID) {
	s.d.net.Mailbox(s.id).Send(ResyncNudge{Conn: conn}, 0)
}

// NoteInstall implements Host.
func (s *Switch) NoteInstall() { s.d.noteInstall() }

// ForwardingChanged implements Host. The simulator has no live data plane —
// its delivery model (internal/deliver) reads installed topologies directly.
func (s *Switch) ForwardingChanged(lsa.ConnID) {}

// Trace implements Host.
func (s *Switch) Trace(kind TraceKind, chain ChainID, conn lsa.ConnID, format string, args ...any) {
	s.d.trace(kind, chain, s.id, conn, format, args...)
}

// TraceEnabled implements Host.
func (s *Switch) TraceEnabled() bool { return s.d.tracer != nil }
