package core

import (
	"fmt"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/lsr"
	"dgmc/internal/mctree"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func switchID(x int) topo.SwitchID { return topo.SwitchID(x) }

// localEvent is what the host side injects into a switch's event mailbox.
type localEvent struct {
	conn lsa.ConnID
	kind lsa.Event // Join, Leave, or Link
	role mctree.Role
	link lsa.LinkChange // for Link events
}

// Switch is one network switch running the D-GMC protocol: its unicast LSR
// instance, its per-connection protocol state, and the two protocol
// entities (EventHandler and ReceiveLSA) as simulated processes.
type Switch struct {
	id     topo.SwitchID
	d      *Domain
	uni    *lsr.Instance
	conns  map[lsa.ConnID]*connState
	events *sim.Mailbox
}

func newSwitch(d *Domain, id topo.SwitchID) (*Switch, error) {
	uni, err := lsr.NewInstance(id, d.net.Graph())
	if err != nil {
		return nil, err
	}
	s := &Switch{
		id:     id,
		d:      d,
		uni:    uni,
		conns:  make(map[lsa.ConnID]*connState),
		events: sim.NewMailbox(d.k, fmt.Sprintf("events-%d", id)),
	}
	return s, nil
}

// ID returns the switch's network ID.
func (s *Switch) ID() topo.SwitchID { return s.id }

// Unicast returns the switch's LSR instance (its local network image).
func (s *Switch) Unicast() *lsr.Instance { return s.uni }

// Connection returns a snapshot of the switch's state for conn, or ok=false
// if the switch holds no state for it.
func (s *Switch) Connection(conn lsa.ConnID) (Snapshot, bool) {
	cs, ok := s.conns[conn]
	if !ok {
		return Snapshot{}, false
	}
	return cs.snapshot(), true
}

// Connections lists the IDs of live (non-dormant) connections at this
// switch.
func (s *Switch) Connections() []lsa.ConnID {
	out := make([]lsa.ConnID, 0, len(s.conns))
	for id, cs := range s.conns {
		if !cs.dormant {
			out = append(out, id)
		}
	}
	return out
}

// conn returns (allocating if needed) the state for connection id. Per
// §3.4, switches allocate MC data structures when they first hear of the
// connection.
func (s *Switch) conn(id lsa.ConnID) *connState {
	cs, ok := s.conns[id]
	if !ok {
		cs = newConnState(id, s.d.kindOf(id), s.d.n)
		s.conns[id] = cs
	}
	return cs
}

// updateDormancy destroys the connection's heavy state when the member
// list has emptied and no LSAs are known to be outstanding (§3.4). The
// event counters persist (see connState.dormant); a later event resurrects
// the connection.
func (s *Switch) updateDormancy(cs *connState) {
	if len(cs.members) == 0 && cs.r.Geq(cs.e) {
		if !cs.dormant {
			cs.dormant = true
			cs.topology = nil
			cs.lastDelta = nil
			s.d.trace(TraceDestroy, s.id, cs.id, "connection state destroyed")
		}
		return
	}
	if cs.dormant && len(cs.members) > 0 {
		cs.dormant = false
	}
}

// eventLoop is the process body that invokes EventHandler for each injected
// local event, in arrival order.
func (s *Switch) eventLoop(p *sim.Process) {
	for {
		ev, ok := s.events.Recv(p).(localEvent)
		if !ok {
			continue
		}
		s.handleLocalEvent(p, ev)
	}
}

// handleLocalEvent dispatches one injected event. A membership event
// invokes EventHandler once; a link event floods one non-MC LSA and then
// invokes EventHandler once per affected connection (Figure 2).
func (s *Switch) handleLocalEvent(p *sim.Process, ev localEvent) {
	switch ev.kind {
	case lsa.Join, lsa.Leave:
		s.eventHandler(p, ev.kind, ev.role, s.conn(ev.conn))
	case lsa.Link:
		nm, err := s.uni.ApplyLocalEvent(ev.link)
		if err != nil {
			s.d.trace(TraceError, s.id, ev.conn, "local link event: %v", err)
			return
		}
		if ev.link.Down {
			// Keep the shared fabric in sync so floods route around the
			// failure (the physical network changed, not just images).
			if err := s.d.net.Graph().SetLinkDown(ev.link.A, ev.link.B, true); err != nil {
				s.d.trace(TraceError, s.id, ev.conn, "fabric: %v", err)
			}
		} else {
			if err := s.d.net.Graph().SetLinkDown(ev.link.A, ev.link.B, false); err != nil {
				s.d.trace(TraceError, s.id, ev.conn, "fabric: %v", err)
			}
		}
		if s.d.encodeLSAs {
			s.d.net.Flood(s.id, nm.Marshal())
		} else {
			s.d.net.Flood(s.id, nm)
		}
		s.d.metrics.NonMCLSAs++
		// One MC LSA per connection whose topology uses the affected link.
		for _, cs := range s.affectedConns(ev.link) {
			cs.lastDelta = nil
			s.eventHandler(p, lsa.Link, 0, cs)
		}
		// §3.5 re-optimization: a recovered link may offer better trees.
		if !ev.link.Down && s.d.reoptThresh > 0 {
			s.reoptimize(p)
		}
	}
}

// reoptimize implements §3.5's policy for non-adverse changes: estimate a
// fresh topology for each live connection on the improved image, and
// signal a link event (re-converging the network) only when the installed
// tree deviates from the fresh one by more than the configured threshold.
func (s *Switch) reoptimize(p *sim.Process) {
	for _, id := range sortedConnIDs(s.conns) {
		cs := s.conns[id]
		if cs.dormant || cs.topology == nil || len(cs.members) < 2 {
			continue
		}
		s.d.metrics.ReoptChecks++
		s.d.metrics.Computations++
		members := s.filterReachable(cs.members.Clone())
		p.Hold(s.d.computeTime)
		fresh, err := s.d.algorithm.Compute(s.uni.Image(), cs.kind, members)
		if err != nil || cs.topology == nil {
			continue
		}
		cur := float64(cs.topology.Cost(s.uni.Image()))
		if cur <= float64(fresh.Cost(s.uni.Image()))*(1+s.d.reoptThresh) {
			continue // within tolerance of optimal: leave the tree alone
		}
		s.d.trace(TraceCompute, s.id, cs.id, "re-optimizing (%.0f%% over fresh cost)",
			100*(cur/float64(fresh.Cost(s.uni.Image()))-1))
		cs.lastDelta = nil
		s.eventHandler(p, lsa.Link, 0, cs)
	}
}

// affectedConns returns connections whose installed topology uses the
// changed link, in ascending connection order for determinism.
func (s *Switch) affectedConns(change lsa.LinkChange) []*connState {
	var out []*connState
	for _, id := range sortedConnIDs(s.conns) {
		cs := s.conns[id]
		if cs.topology != nil && cs.topology.Has(change.A, change.B) {
			out = append(out, cs)
		}
	}
	return out
}

func sortedConnIDs(m map[lsa.ConnID]*connState) []lsa.ConnID {
	out := make([]lsa.ConnID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// eventHandler is Figure 4 of the paper: handle one local event for one
// connection.
func (s *Switch) eventHandler(p *sim.Process, event lsa.Event, role mctree.Role, cs *connState) {
	x := int(s.id)
	s.d.metrics.Events++
	s.d.trace(TraceEvent, s.id, cs.id, "local %s event", event)

	// Line 1: R[x]++, E[x]++.
	cs.r.Inc(x)
	cs.e.Inc(x)
	// Apply the membership change locally (remote switches learn it from
	// the flooded LSA; Figure 5 line 8 is the receiving-side mirror).
	cs.applyMembership(event, x, role)

	// Line 2: any known outstanding LSAs?
	if cs.r.Geq(cs.e) {
		// Lines 4-5: snapshot R, compute a proposal (takes Tc).
		oldR := cs.r.Clone()
		proposal, err := s.computeTopology(p, cs)
		if err != nil {
			s.d.trace(TraceError, s.id, cs.id, "compute: %v", err)
			proposal = nil
		}
		// Line 6: is the proposal still valid?
		if proposal != nil && cs.r.Equal(oldR) {
			// Lines 7-10: flood proposal, install it.
			m := &lsa.MC{Src: s.id, Event: event, Role: role, Conn: cs.id, Proposal: proposal, Stamp: oldR.Clone()}
			s.floodMC(m)
			cs.logEvent(m)
			cs.c.CopyFrom(oldR)
			cs.makeProposal = false
			s.install(cs, proposal, "event-handler")
		} else {
			// Lines 12-13: withdraw; flood the bare event, defer to
			// ReceiveLSA.
			m := &lsa.MC{Src: s.id, Event: event, Role: role, Conn: cs.id, Proposal: nil, Stamp: oldR.Clone()}
			s.floodMC(m)
			cs.logEvent(m)
			cs.makeProposal = true
			s.d.metrics.Withdrawn++
			s.d.trace(TraceWithdraw, s.id, cs.id, "event-handler proposal withdrawn")
		}
	} else {
		// Lines 16-17: outstanding LSAs exist; flood the bare event and
		// defer to ReceiveLSA.
		m := &lsa.MC{Src: s.id, Event: event, Role: role, Conn: cs.id, Proposal: nil, Stamp: cs.r.Clone()}
		s.floodMC(m)
		cs.logEvent(m)
		cs.makeProposal = true
	}
	s.updateDormancy(cs)
	s.maybeScheduleResync(cs)
}

// lsaLoop is the process body for the ReceiveLSA entity: it wakes whenever
// the switch's LSA mailbox is non-empty.
func (s *Switch) lsaLoop(p *sim.Process) {
	inbox := s.d.net.Mailbox(s.id)
	for {
		first := inbox.Recv(p)
		batch := append([]any{first}, inbox.Drain()...)
		s.receiveBatch(p, batch)
	}
}

// receiveBatch demultiplexes a drained mailbox batch: non-MC LSAs go to the
// unicast substrate; MC LSAs are grouped per connection and handed to
// ReceiveLSA (which the paper presents per-MC). Resync traffic (unicast
// requests/replays between neighbors, and self-addressed nudges) rides the
// same mailbox: replayed LSAs join the per-connection groups, requests are
// served after ReceiveLSA has consumed the batch.
func (s *Switch) receiveBatch(p *sim.Process, batch []any) {
	perConn := make(map[lsa.ConnID][]*lsa.MC)
	var order []lsa.ConnID
	var requests []resyncRequest
	addMC := func(m *lsa.MC) {
		if _, seen := perConn[m.Conn]; !seen {
			order = append(order, m.Conn)
		}
		perConn[m.Conn] = append(perConn[m.Conn], m)
	}
	for _, raw := range batch {
		switch v := raw.(type) {
		case resyncNudge:
			if _, seen := perConn[v.conn]; !seen {
				order = append(order, v.conn)
				perConn[v.conn] = nil
			}
			continue
		case flood.Unicast:
			switch pl := v.Payload.(type) {
			case resyncRequest:
				requests = append(requests, pl)
			case resyncResponse:
				for _, m := range pl.Batch {
					addMC(m)
				}
			}
			continue
		}
		del, ok := raw.(flood.Delivery)
		if !ok {
			continue
		}
		payload := del.Payload
		if wire, ok := payload.([]byte); ok {
			mc, nm, err := lsa.Unmarshal(wire)
			if err != nil {
				s.d.trace(TraceError, s.id, 0, "decode LSA: %v", err)
				continue
			}
			if mc != nil {
				payload = mc
			} else {
				payload = nm
			}
		}
		switch m := payload.(type) {
		case *lsa.NonMC:
			if _, err := s.uni.HandleLSA(m); err != nil {
				s.d.trace(TraceError, s.id, 0, "unicast LSA: %v", err)
			}
		case *lsa.MC:
			addMC(m)
		}
	}
	for _, conn := range order {
		s.receiveLSA(p, s.conn(conn), perConn[conn])
	}
	for _, req := range requests {
		s.handleResyncRequest(req)
	}
}

// receiveLSA is Figure 5 of the paper: process a batch of LSAs for one
// connection, then decide whether to compute and flood a proposal.
func (s *Switch) receiveLSA(p *sim.Process, cs *connState, batch []*lsa.MC) {
	x := int(s.id)

	// Lines 1-2.
	var candidate *mctree.Tree
	candidateStamp := cs.c.Clone()

	// Lines 3-18: consume the LSAs.
	for _, m := range batch {
		s.d.trace(TraceRecv, s.id, cs.id, "recv %s", m)
		// Lines 5-9: an event LSA advances R and the member list. A lossy
		// transport can deliver copies duplicated or out of per-origin
		// order, so application is ordered: stale copies are dropped, early
		// ones buffered, and applying one event can release buffered
		// successors — which are then consumed as if freshly received. On a
		// loss-free transport this degenerates to the paper's lines 5-9.
		for _, a := range s.applyEventLSA(cs, m) {
			// Line 10: merge any new expectations.
			cs.e.MaxInPlace(a.Stamp)
			// Lines 11-17.
			if a.Stamp.Geq(cs.e) && a.Proposal != nil {
				// The proposal is based on every event known to this switch.
				candidate = a.Proposal
				candidateStamp = a.Stamp.Clone()
				cs.makeProposal = false
			} else if cs.r[x] > a.Stamp[x] {
				// Inconsistency: the sender did not know about all our local
				// events; we owe the network a proposal.
				cs.makeProposal = true
			}
		}
	}

	// Line 19: compute a proposal if owed, expectations met, and the basis
	// would be fresher than the installed topology.
	if cs.makeProposal && cs.r.Geq(cs.e) && cs.r.Greater(cs.c) {
		// Line 20-21: snapshot R, compute (takes Tc).
		oldR := cs.r.Clone()
		proposal, err := s.computeTopology(p, cs)
		if err != nil {
			s.d.trace(TraceError, s.id, cs.id, "compute: %v", err)
			proposal = nil
		}
		// Line 22: still current, and nothing new queued for this MC?
		if proposal != nil && !s.pendingMCLSAs(cs.id) && cs.r.Equal(oldR) {
			// Lines 23-27: flood as a triggered LSA (V = none).
			s.floodMC(&lsa.MC{Src: s.id, Event: lsa.None, Conn: cs.id, Proposal: proposal, Stamp: oldR.Clone()})
			cs.e.CopyFrom(cs.r) // line 24: bring E up to date
			candidate = proposal
			candidateStamp = oldR
			cs.makeProposal = false
		} else {
			// Lines 28-30: withdraw.
			candidate = nil
			s.d.metrics.Withdrawn++
			s.d.trace(TraceWithdraw, s.id, cs.id, "triggered proposal withdrawn")
		}
	}

	// Lines 32-35: accept the best proposal seen.
	if candidate != nil {
		cs.c.CopyFrom(candidateStamp)
		s.install(cs, candidate, "receive-lsa")
	}
	s.updateDormancy(cs)
	s.maybeScheduleResync(cs)
}

// filterReachable restricts a member set to switches this switch can
// currently reach in its local image. Members cut off by link or nodal
// failures are excluded from topology computations so the reachable part
// of the network still converges on a serviceable tree — each partition
// proceeds with the members it can see (full partition *recovery* remains
// out of scope, as in the paper §6).
func (s *Switch) filterReachable(members mctree.Members) mctree.Members {
	out := make(mctree.Members, len(members))
	var reach map[topo.SwitchID]bool
	for m, role := range members {
		if m == s.id {
			out[m] = role
			continue
		}
		if reach == nil {
			reach = make(map[topo.SwitchID]bool)
			for _, r := range s.uni.Image().Component(s.id) {
				reach[r] = true
			}
		}
		if reach[m] {
			out[m] = role
		}
	}
	return out
}

// pendingMCLSAs reports whether the switch's mailbox currently holds an MC
// LSA for conn (Figure 5 line 22).
func (s *Switch) pendingMCLSAs(conn lsa.ConnID) bool {
	for _, raw := range s.d.net.Mailbox(s.id).Snapshot() {
		del, ok := raw.(flood.Delivery)
		if !ok {
			continue
		}
		payload := del.Payload
		if wire, ok := payload.([]byte); ok {
			mc, _, err := lsa.Unmarshal(wire)
			if err != nil || mc == nil {
				continue
			}
			payload = mc
		}
		if m, ok := payload.(*lsa.MC); ok && m.Conn == conn {
			return true
		}
	}
	return false
}

// computeTopology runs the configured algorithm over this switch's local
// image, charging Tc of virtual time (the computation is the protocol's
// dominant cost, Figure 4 line 5 / Figure 5 line 21).
func (s *Switch) computeTopology(p *sim.Process, cs *connState) (*mctree.Tree, error) {
	s.d.metrics.Computations++
	s.d.trace(TraceCompute, s.id, cs.id, "computing topology (members=%d)", len(cs.members))
	members := cs.members.Clone() // membership snapshot: may change during Tc
	delta := cs.lastDelta
	prev := cs.topology
	p.Hold(s.d.computeTime)
	// Reachability is evaluated against the image as of the end of the
	// computation: link/nodal LSAs applied during Tc must not leave us
	// asking the algorithm to span a switch the network can no longer
	// reach (members cut off by failures are served again after repair or
	// timed out by the application; the paper defers partition recovery).
	members = s.filterReachable(members)
	t, err := s.d.algorithm.Update(s.uni.Image(), cs.kind, members, prev, delta)
	if err != nil {
		return nil, err
	}
	// An incremental update is only a hint about the latest change; when
	// several changes accumulated since the previous topology (e.g. two
	// joins in one LSA batch) the result may not span every member. Fall
	// back to a from-scratch computation in that case.
	if t.Validate(s.uni.Image(), members) != nil {
		return s.d.algorithm.Compute(s.uni.Image(), cs.kind, members)
	}
	return t, nil
}

// floodMC floods an MC LSA network-wide, on the wire when configured.
func (s *Switch) floodMC(m *lsa.MC) {
	s.d.metrics.MCLSAs++
	s.d.trace(TraceFlood, s.id, m.Conn, "flood %s", m)
	if s.d.encodeLSAs {
		s.d.net.Flood(s.id, m.Marshal())
		return
	}
	s.d.net.Flood(s.id, m)
}

// install records the accepted topology and updates the switch's MC routing
// entries (its tree-adjacent links).
func (s *Switch) install(cs *connState, t *mctree.Tree, via string) {
	cs.topology = t
	cs.installs++
	s.d.metrics.Installs++
	s.d.noteInstall()
	s.d.trace(TraceInstall, s.id, cs.id, "installed %s via %s", t, via)
}
