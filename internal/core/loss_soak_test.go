package core

import (
	"testing"
	"time"

	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// probeRound returns Tf+Tc for g so fault windows and resync timeouts can
// be sized before the real (faulty) network is built.
func probeRound(t *testing.T, g *topo.Graph, perHop, tc time.Duration) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, perHop, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := net.FloodTime()
	if err != nil {
		t.Fatal(err)
	}
	return tf + tc
}

// injectShifted injects a churn slice for conn, re-based so its first event
// lands at `base` (preserving the slice's inter-event gaps).
func injectShifted(d *Domain, conn lsa.ConnID, slice []workload.Event, base sim.Time) {
	if len(slice) == 0 {
		return
	}
	shift := base - slice[0].At
	for _, e := range slice {
		if e.Join {
			d.Join(e.At+shift, e.Switch, conn, e.Role)
		} else {
			d.Leave(e.At+shift, e.Switch, conn)
		}
	}
}

// TestSoakLossyChurnConverges is the robustness soak: ~1000 churn events on
// two connections over a fabric that drops 20% of transmissions, duplicates
// 5%, jitters deliveries, and silently flaps one link for twenty rounds —
// with a deliberately tight retry budget so the transport alone cannot mask
// every loss and the core resync machinery must close the gaps. The domain
// must fully re-converge (R = E = C everywhere, identical topologies) after
// every phase.
func TestSoakLossyChurnConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n      = 20
		perHop = 10 * time.Microsecond
		tc     = 500 * time.Microsecond
	)
	g, err := topo.Waxman(topo.DefaultGenConfig(n, 77))
	if err != nil {
		t.Fatal(err)
	}
	round := probeRound(t, g, perHop, tc)
	flapLink := g.Links()[0]
	plan := faults.Plan{
		Seed:    123,
		Default: faults.LinkFaults{Drop: 0.2, Dup: 0.05, Jitter: 5 * time.Microsecond},
		Flaps: []faults.Flap{{
			A: flapLink.A, B: flapLink.B,
			DownAt: 40 * round, UpAt: 60 * round,
		}},
	}
	t.Log(plan.Describe())

	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	inj, err := faults.New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	net, err := flood.New(k, g, perHop, flood.Reliable,
		flood.WithFaults(inj), flood.WithRetryBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{
		Net:         net,
		ComputeTime: tc,
		Algorithm:   route.SPH{},
		Kinds: map[lsa.ConnID]mctree.Kind{
			1: mctree.Symmetric,
			2: mctree.ReceiverOnly,
		},
		ResyncTimeout: 4 * round,
	})
	if err != nil {
		t.Fatal(err)
	}

	churn1, err := workload.Churn(workload.Config{
		N: n, Events: 510, Seed: 5, Start: round, MeanGap: 2 * round})
	if err != nil {
		t.Fatal(err)
	}
	churn2, err := workload.Churn(workload.Config{
		N: n, Events: 510, Seed: 6, Start: round, MeanGap: 2 * round, Role: mctree.Receiver})
	if err != nil {
		t.Fatal(err)
	}

	const phases = 3
	per := len(churn1) / phases
	for ph := 0; ph < phases; ph++ {
		base := k.Now() + round
		injectShifted(d, 1, churn1[ph*per:(ph+1)*per], base)
		injectShifted(d, 2, churn2[ph*per:(ph+1)*per], base)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckConverged(); err != nil {
			t.Fatalf("phase %d did not converge: %v", ph, err)
		}
	}

	m := d.Metrics()
	rs := net.Reliability()
	t.Logf("soak: %d events, %d computations, %s", m.Events, m.Computations, rs)
	t.Logf("recovery: out-of-order=%d resync-requests=%d responses=%d give-ups=%d",
		m.OutOfOrderLSAs, m.ResyncRequests, m.ResyncResponses, m.ResyncGiveUps)
	if m.Events != uint64(phases*per*2) {
		t.Errorf("events = %d, want %d", m.Events, phases*per*2)
	}
	if rs.Drops == 0 || rs.Retransmits == 0 {
		t.Errorf("faults not exercised: %s", rs)
	}
	if rs.GiveUps == 0 {
		t.Error("retry budget never exhausted; resync path untested — tighten the budget or raise the drop rate")
	}
	if m.ResyncRequests == 0 {
		t.Error("no resync requests despite transport give-ups")
	}
	if m.ResyncGiveUps != 0 {
		t.Errorf("%d resync give-ups; gaps were abandoned", m.ResyncGiveUps)
	}
	// Recovery effort must stay bounded: resync is a per-gap exchange, not
	// a broadcast storm.
	if m.ResyncRequests > m.Events*4 {
		t.Errorf("resync requests (%d) out of proportion to events (%d)", m.ResyncRequests, m.Events)
	}
}

// TestSoakLossyWithoutResyncDiverges is the control for the soak above: the
// same kind of lossy fabric with retransmission and resync both disabled
// must NOT converge — otherwise the recovery machinery is vacuous and the
// soak proves nothing.
func TestSoakLossyWithoutResyncDiverges(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n      = 20
		perHop = 10 * time.Microsecond
		tc     = 500 * time.Microsecond
	)
	g, err := topo.Waxman(topo.DefaultGenConfig(n, 77))
	if err != nil {
		t.Fatal(err)
	}
	round := probeRound(t, g, perHop, tc)
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	inj, err := faults.New(k, faults.Plan{
		Seed:    123,
		Default: faults.LinkFaults{Drop: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := flood.New(k, g, perHop, flood.Reliable,
		flood.WithFaults(inj), flood.WithRetryBudget(0)) // plain lossy flooding
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{
		Net:         net,
		ComputeTime: tc,
		Algorithm:   route.SPH{},
		// ResyncTimeout zero: no gap recovery.
	})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := workload.Churn(workload.Config{
		N: n, Events: 100, Seed: 9, Start: round, MeanGap: 2 * round})
	if err != nil {
		t.Fatal(err)
	}
	injectShifted(d, 1, churn, round)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err == nil {
		t.Fatal("run with loss but no recovery converged; the soak's faults are too weak to prove anything")
	} else {
		t.Logf("diverged as expected: %v", err)
	}
}
