package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"dgmc/internal/deliver"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// TestSoakLargeNetwork drives a 100-switch network through heavy mixed
// churn on three connections of different kinds, with link and nodal
// failures injected mid-run, and requires full convergence plus working
// data-plane delivery at the end. This is the "everything at once"
// integration test.
func TestSoakLargeNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g, err := topo.Waxman(topo.DefaultGenConfig(100, 2026))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[lsa.ConnID]mctree.Kind{
		1: mctree.Symmetric,
		2: mctree.ReceiverOnly,
		3: mctree.Asymmetric,
	}
	f := newFixture(t, g, func(c *Config) {
		c.Kinds = kinds
		c.Algorithm = route.NewIncremental(route.SPH{})
		c.EncodeLSAs = true // full wire format under load
	})
	rng := rand.New(rand.NewSource(99))

	members := map[lsa.ConnID]map[topo.SwitchID]bool{1: {}, 2: {}, 3: {}}
	// Seed the asymmetric connection with its sender.
	f.d.Join(0, 50, 3, mctree.Sender)
	members[3][50] = true

	at := sim.Time(time.Millisecond)
	for i := 0; i < 40; i++ {
		// Alternate tight bursts and quiet gaps.
		if i%8 < 4 {
			at += sim.Time(rng.Intn(int(200 * time.Microsecond)))
		} else {
			at += sim.Time(rng.Intn(int(20 * time.Millisecond)))
		}
		conn := lsa.ConnID(1 + rng.Intn(3))
		ms := members[conn]
		if len(ms) > 1 && rng.Intn(4) == 0 {
			ids := make([]topo.SwitchID, 0, len(ms))
			for s := range ms {
				ids = append(ids, s)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			victim := ids[rng.Intn(len(ids))]
			if conn == 3 && victim == 50 {
				continue // keep the broadcast sender
			}
			f.d.Leave(at, victim, conn)
			delete(ms, victim)
			continue
		}
		s := topo.SwitchID(rng.Intn(100))
		if ms[s] {
			continue
		}
		role := mctree.SenderReceiver
		if conn == 2 || conn == 3 {
			role = mctree.Receiver
		}
		f.d.Join(at, s, conn, role)
		ms[s] = true
	}

	// Two link failures on redundant links, spaced out.
	failed := 0
	for _, l := range g.Links() {
		if failed == 2 {
			break
		}
		trial := g.Clone()
		if err := trial.SetLinkDown(l.A, l.B, true); err != nil {
			t.Fatal(err)
		}
		if !trial.Connected() {
			continue
		}
		at += 30 * time.Millisecond
		f.d.FailLink(at, l.A, l.B)
		if err := g.SetLinkDown(l.A, l.B, true); err != nil { // keep trial baseline accurate
			t.Fatal(err)
		}
		if err := g.SetLinkDown(l.A, l.B, false); err != nil {
			t.Fatal(err)
		}
		failed++
	}

	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("soak did not converge: %v", err)
	}

	// Data-plane verification on every connection.
	for conn := lsa.ConnID(1); conn <= 3; conn++ {
		snap, ok := f.d.Switch(0).Connection(conn)
		if !ok || len(snap.Members) == 0 {
			continue
		}
		var src topo.SwitchID = topo.NoSwitch
		for _, m := range snap.Members.IDs() {
			if snap.Members[m].CanSend() {
				src = m
				break
			}
		}
		if src == topo.NoSwitch {
			if snap.Kind != mctree.ReceiverOnly {
				continue
			}
			src = 0 // receiver-only: anyone can publish
		}
		if _, err := deliver.Multicast(g, snap.Topology, snap.Members, src); err != nil {
			t.Errorf("conn %d delivery: %v", conn, err)
		}
	}

	m := f.d.Metrics()
	t.Logf("soak: %d events, %d computations (%.2f/event), %d floodings, %d withdrawn",
		m.Events, m.Computations, float64(m.Computations)/float64(m.Events),
		f.net.Floodings(), m.Withdrawn)
	if m.Computations > m.Events*30 {
		t.Errorf("computation overhead exploded: %d computations for %d events", m.Computations, m.Events)
	}
}
