package core

import (
	"encoding/binary"
	"sort"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// This file is the deterministic clone/encode API that implementation-level
// model checking (internal/explore) is built on: CloneWith branches a
// machine's complete protocol state at a schedule choice point, and
// AppendState writes a canonical byte encoding of everything that affects
// the machine's future behavior, so two interleavings that reach the same
// protocol state hash equal and the explorer can deduplicate them.

// CloneWith returns a deep copy of the machine bound to host. The copy
// shares nothing mutable with the original: the unicast image, every
// connection's timestamps, member list, out-of-order buffer, and replay log
// are copied. Immutable values — installed topologies, logged LSAs, the
// algorithm, the kind table — are shared by pointer, matching the
// protocol's own treatment of them (a flooded LSA or installed tree is
// never modified in place). Metrics are copied by value so the clone
// counts independently.
func (m *Machine) CloneWith(host Host) *Machine {
	metrics := *m.metrics
	c := &Machine{
		id:        m.id,
		host:      host,
		uni:       m.uni.Clone(),
		conns:     make(map[lsa.ConnID]*connState, len(m.conns)),
		n:         m.n,
		alg:       m.alg,
		kinds:     m.kinds,
		reopt:     m.reopt,
		resync:    m.resync,
		resyncMax: m.resyncMax,
		metrics:   &metrics,
		mutation:  m.mutation,
	}
	for id, cs := range m.conns {
		c.conns[id] = cs.clone()
	}
	return c
}

// clone returns a deep copy of the connection state. Logged and buffered
// LSAs and the installed topology are shared by pointer (immutable by
// protocol convention).
func (cs *connState) clone() *connState {
	c := &connState{
		id:              cs.id,
		kind:            cs.kind,
		members:         cs.members.Clone(),
		r:               cs.r.Clone(),
		e:               cs.e.Clone(),
		c:               cs.c.Clone(),
		topology:        cs.topology,
		makeProposal:    cs.makeProposal,
		lastDelta:       cs.lastDelta,
		installs:        cs.installs,
		dormant:         cs.dormant,
		oooCount:        cs.oooCount,
		resyncScheduled: cs.resyncScheduled,
		resyncRounds:    cs.resyncRounds,
		resyncNext:      cs.resyncNext,
		gaveUpOOO:       cs.gaveUpOOO,
	}
	if cs.gaveUpR != nil {
		c.gaveUpR = cs.gaveUpR.Clone()
	}
	if cs.gaveUpE != nil {
		c.gaveUpE = cs.gaveUpE.Clone()
	}
	if len(cs.eventLog) > 0 {
		c.eventLog = make([]*lsa.MC, len(cs.eventLog))
		copy(c.eventLog, cs.eventLog)
	}
	if len(cs.ooo) > 0 {
		c.ooo = make(map[topo.SwitchID]map[uint32]*lsa.MC, len(cs.ooo))
		for src, byIdx := range cs.ooo {
			inner := make(map[uint32]*lsa.MC, len(byIdx))
			for idx, msg := range byIdx {
				inner[idx] = msg
			}
			c.ooo[src] = inner
		}
	}
	return c
}

// Gapped reports whether conn has unfinished recovery work: events known
// but not received (R < E), arrivals buffered out of order, or a commit
// lagging the received events. Checkers use it to tell a repaired state
// from a silently wedged one.
func (m *Machine) Gapped(conn lsa.ConnID) bool {
	cs, ok := m.conns[conn]
	return ok && cs.gapped()
}

// ResyncGaveUp reports whether conn's gap recovery exhausted its round
// budget (further arming is blocked until healthy state resets it).
func (m *Machine) ResyncGaveUp(conn lsa.ConnID) bool {
	cs, ok := m.conns[conn]
	return ok && cs.resyncRounds > m.resyncMax
}

// AllConnections lists every connection ID the switch holds state for,
// including dormant ones, in ascending order. Connections() hides dormant
// state on purpose; checkers need the counters that survive it.
func (m *Machine) AllConnections() []lsa.ConnID {
	return sortedConnIDs(m.conns)
}

// AppendState appends a canonical encoding of the machine's protocol state
// to buf. Everything that can influence a future transition is included:
// the unicast image and its staleness horizon, and per connection (in
// ascending ID order) the three timestamps, the member list, the flags,
// the installed topology, the incremental-update hint, the replay log, the
// out-of-order buffer, and the resync bookkeeping. Pure counters (metrics,
// install counts) are excluded. Two machines with equal encodings are
// behaviorally indistinguishable, which is what makes the encoding a sound
// deduplication key for state-space search.
func (m *Machine) AppendState(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.id)))
	buf = m.uni.AppendState(buf)
	ids := sortedConnIDs(m.conns)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = m.conns[id].appendState(buf)
	}
	return buf
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendTree(buf []byte, t *mctree.Tree) []byte {
	// mctree's length-prefixed encoding handles nil (edge count sentinel).
	return t.AppendBinary(buf)
}

func appendMC(buf []byte, msg *lsa.MC) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(msg.Src)))
	buf = append(buf, byte(msg.Event), byte(msg.Role))
	buf = binary.BigEndian.AppendUint32(buf, uint32(msg.Conn))
	buf = appendTree(buf, msg.Proposal)
	buf = msg.Stamp.AppendBinary(buf)
	return buf
}

func (cs *connState) appendState(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(cs.id))
	buf = append(buf, byte(cs.kind))
	buf = cs.r.AppendBinary(buf)
	buf = cs.e.AppendBinary(buf)
	buf = cs.c.AppendBinary(buf)
	mem := cs.members.IDs()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(mem)))
	for _, s := range mem {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(s)))
		buf = append(buf, byte(cs.members[s]))
	}
	buf = appendBool(buf, cs.makeProposal)
	buf = appendBool(buf, cs.dormant)
	buf = appendTree(buf, cs.topology)
	if cs.lastDelta == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(cs.lastDelta.Switch)))
		buf = appendBool(buf, cs.lastDelta.Join)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cs.eventLog)))
	for _, msg := range cs.eventLog {
		buf = appendMC(buf, msg)
	}
	// Out-of-order buffer in (origin, index) order.
	srcs := make([]topo.SwitchID, 0, len(cs.ooo))
	for src, byIdx := range cs.ooo {
		if len(byIdx) > 0 {
			srcs = append(srcs, src)
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(srcs)))
	for _, src := range srcs {
		byIdx := cs.ooo[src]
		idxs := make([]uint32, 0, len(byIdx))
		for idx := range byIdx {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(src)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(idxs)))
		for _, idx := range idxs {
			buf = appendMC(buf, byIdx[idx])
		}
	}
	buf = appendBool(buf, cs.resyncScheduled)
	buf = binary.BigEndian.AppendUint32(buf, uint32(cs.resyncRounds))
	buf = binary.BigEndian.AppendUint32(buf, uint32(cs.resyncNext))
	buf = cs.gaveUpR.AppendBinary(buf)
	buf = cs.gaveUpE.AppendBinary(buf)
	buf = binary.BigEndian.AppendUint32(buf, uint32(cs.gaveUpOOO))
	return buf
}
