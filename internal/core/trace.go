package core

import (
	"fmt"
	"io"

	"dgmc/internal/lsa"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// TraceKind classifies protocol trace entries.
type TraceKind uint8

const (
	// TraceEvent: a local event entered EventHandler.
	TraceEvent TraceKind = iota + 1
	// TraceRecv: an MC LSA was consumed by ReceiveLSA.
	TraceRecv
	// TraceCompute: a topology computation started.
	TraceCompute
	// TraceFlood: an MC LSA was flooded.
	TraceFlood
	// TraceInstall: a topology was installed.
	TraceInstall
	// TraceWithdraw: a computed proposal was withdrawn as obsolete.
	TraceWithdraw
	// TraceDestroy: connection state was deleted (empty member list).
	TraceDestroy
	// TraceError: a protocol-level error was logged and absorbed.
	TraceError
	// TraceResync: gap-recovery activity (out-of-order buffering, resync
	// requests, replays, give-ups).
	TraceResync
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceEvent:
		return "event"
	case TraceRecv:
		return "recv"
	case TraceCompute:
		return "compute"
	case TraceFlood:
		return "flood"
	case TraceInstall:
		return "install"
	case TraceWithdraw:
		return "withdraw"
	case TraceDestroy:
		return "destroy"
	case TraceError:
		return "error"
	case TraceResync:
		return "resync"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEntry is one observed protocol step.
type TraceEntry struct {
	At     sim.Time
	Kind   TraceKind
	Switch topo.SwitchID
	Conn   lsa.ConnID
	Detail string
}

// String implements fmt.Stringer.
func (e TraceEntry) String() string {
	return fmt.Sprintf("%12v sw=%-3d conn=%-3d %-8s %s", e.At, e.Switch, e.Conn, e.Kind, e.Detail)
}

// Tracer observes protocol activity.
type Tracer interface {
	Trace(TraceEntry)
}

// WriterTracer prints every entry to an io.Writer.
type WriterTracer struct {
	W io.Writer
}

var _ Tracer = (*WriterTracer)(nil)

// Trace implements Tracer.
func (t *WriterTracer) Trace(e TraceEntry) {
	fmt.Fprintln(t.W, e.String())
}

// CollectTracer accumulates entries in memory (for tests).
type CollectTracer struct {
	Entries []TraceEntry
}

var _ Tracer = (*CollectTracer)(nil)

// Trace implements Tracer.
func (t *CollectTracer) Trace(e TraceEntry) { t.Entries = append(t.Entries, e) }

// Count returns how many collected entries have the given kind.
func (t *CollectTracer) Count(kind TraceKind) int {
	n := 0
	for _, e := range t.Entries {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
