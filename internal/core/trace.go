package core

import (
	"fmt"
	"io"
	"sync"

	"dgmc/internal/lsa"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// TraceKind classifies protocol trace entries.
type TraceKind uint8

const (
	// TraceEvent: a local event entered EventHandler.
	TraceEvent TraceKind = iota + 1
	// TraceRecv: an MC LSA was consumed by ReceiveLSA.
	TraceRecv
	// TraceCompute: a topology computation started.
	TraceCompute
	// TraceFlood: an MC LSA was flooded.
	TraceFlood
	// TraceInstall: a topology was installed.
	TraceInstall
	// TraceWithdraw: a computed proposal was withdrawn as obsolete.
	TraceWithdraw
	// TraceDestroy: connection state was deleted (empty member list).
	TraceDestroy
	// TraceError: a protocol-level error was logged and absorbed.
	TraceError
	// TraceResync: gap-recovery activity (out-of-order buffering, resync
	// requests, replays).
	TraceResync
	// TraceGiveUp: gap recovery exhausted its round budget — the explicit
	// terminal state of a gap. Recovery re-arms only when new evidence (any
	// change to R, E, or the out-of-order buffer) arrives.
	TraceGiveUp
	// TraceHeal: a heal-reconciliation exchange with a neighbor was started
	// (post-partition contact or a restarted switch's cold rejoin).
	TraceHeal
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceEvent:
		return "event"
	case TraceRecv:
		return "recv"
	case TraceCompute:
		return "compute"
	case TraceFlood:
		return "flood"
	case TraceInstall:
		return "install"
	case TraceWithdraw:
		return "withdraw"
	case TraceDestroy:
		return "destroy"
	case TraceError:
		return "error"
	case TraceResync:
		return "resync"
	case TraceGiveUp:
		return "give-up"
	case TraceHeal:
		return "heal"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// ChainID identifies the causal chain a trace entry belongs to: the local
// event that set the chain in motion, named by its originating switch and
// that switch's per-connection event index. The protocol already carries
// exactly this identity on the wire — an event LSA from switch x has
// Stamp[x] equal to x's event count — so chains need no extra protocol
// state: every event→compute→flood→recv→install step across the network
// derives the same ChainID from what it sees, and an observer can stitch
// the distributed steps back into one span tree.
//
// Entries that no single event caused (resync housekeeping, decode errors,
// unicast LSA handling) carry the zero ChainID.
type ChainID struct {
	// Origin is the switch whose local event started the chain.
	Origin topo.SwitchID
	// Seq is the origin's per-connection event index (1-based; the value
	// of Stamp[Origin] on the event's LSA).
	Seq uint32
}

// IsZero reports whether c identifies no chain.
func (c ChainID) IsZero() bool { return c == ChainID{} }

// String renders the chain compactly, e.g. "3/2" (switch 3's 2nd event).
func (c ChainID) String() string {
	if c.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%d/%d", c.Origin, c.Seq)
}

// chainOf derives the causal chain of an MC LSA. For event LSAs this is
// exact: the LSA is the flooded image of its origin's Seq-th event. A
// triggered LSA (V = none) is attributed to the proposer's own latest
// event, the closest cause its stamp still names.
func chainOf(m *lsa.MC) ChainID {
	x := int(m.Src)
	if x < 0 || x >= len(m.Stamp) {
		return ChainID{}
	}
	return ChainID{Origin: m.Src, Seq: m.Stamp[x]}
}

// TraceEntry is one observed protocol step.
type TraceEntry struct {
	At     sim.Time
	Kind   TraceKind
	Switch topo.SwitchID
	Conn   lsa.ConnID
	// Chain ties the entry to the local event that caused it (zero when no
	// single event did).
	Chain  ChainID
	Detail string
}

// String implements fmt.Stringer.
func (e TraceEntry) String() string {
	return fmt.Sprintf("%12v sw=%-3d conn=%-3d chain=%-6s %-8s %s",
		e.At, e.Switch, e.Conn, e.Chain, e.Kind, e.Detail)
}

// Tracer observes protocol activity. Implementations attached to the
// concurrent runtime (internal/rt) must be safe for concurrent use; both
// tracers in this package are.
type Tracer interface {
	Trace(TraceEntry)
}

// WriterTracer prints every entry to an io.Writer. Safe for concurrent use
// (entries from different goroutines are serialized, never interleaved
// mid-line).
type WriterTracer struct {
	W io.Writer

	mu sync.Mutex
}

var _ Tracer = (*WriterTracer)(nil)

// Trace implements Tracer.
func (t *WriterTracer) Trace(e TraceEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.W, e.String())
}

// CollectTracer accumulates entries in memory (for tests). Safe for
// concurrent use; read Entries only via Snapshot, Count, or after the
// traced system has quiesced.
type CollectTracer struct {
	mu      sync.Mutex
	Entries []TraceEntry
}

var _ Tracer = (*CollectTracer)(nil)

// Trace implements Tracer.
func (t *CollectTracer) Trace(e TraceEntry) {
	t.mu.Lock()
	t.Entries = append(t.Entries, e)
	t.mu.Unlock()
}

// Snapshot returns a copy of the collected entries.
func (t *CollectTracer) Snapshot() []TraceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEntry(nil), t.Entries...)
}

// Count returns how many collected entries have the given kind.
func (t *CollectTracer) Count(kind TraceKind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.Entries {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// MultiTracer fans every entry out to each member tracer, in order.
type MultiTracer []Tracer

var _ Tracer = (MultiTracer)(nil)

// Trace implements Tracer.
func (ts MultiTracer) Trace(e TraceEntry) {
	for _, t := range ts {
		t.Trace(e)
	}
}
