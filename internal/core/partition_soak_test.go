package core

import (
	"testing"
	"time"

	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// gridColumnSplit partitions a rows×cols grid (row-major IDs) into the
// columns below cut and the rest — a clean bipartition whose sides both
// stay internally connected.
func gridColumnSplit(rows, cols, cut int) [][]topo.SwitchID {
	var a, b []topo.SwitchID
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := topo.SwitchID(r*cols + c)
			if c < cut {
				a = append(a, id)
			} else {
				b = append(b, id)
			}
		}
	}
	return [][]topo.SwitchID{a, b}
}

// TestPartitionHealSimConverges is the deterministic split-brain scenario:
// a 3×4 grid splits down the middle with members on both sides, each side
// keeps churning independently (joins and a leave the other side cannot
// see), a mid-split probe proves the views really diverged, and after the
// heal the boundary reconciliation plus replay re-flooding must converge
// every switch to the union of both histories.
func TestPartitionHealSimConverges(t *testing.T) {
	const (
		rows   = 3
		cols   = 4
		perHop = 10 * time.Microsecond
		tc     = 500 * time.Microsecond
		conn   = lsa.ConnID(1)
	)
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	round := probeRound(t, g, perHop, tc)

	p := faults.Partition{
		Groups: gridColumnSplit(rows, cols, 2),
		At:     10 * round,
		HealAt: 30 * round,
	}
	plan := faults.Plan{Seed: 7, Partitions: []faults.Partition{p}}
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	inj, err := faults.New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Reliable transport with a tight retry budget: intra-side traffic is
	// lossless, cross-boundary frames exhaust their retries and vanish —
	// the transport's view of a split.
	net, err := flood.New(k, g, perHop, flood.Reliable,
		flood.WithFaults(inj), flood.WithRetryBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{
		Net:           net,
		ComputeTime:   tc,
		Algorithm:     route.SPH{},
		ResyncTimeout: 4 * round,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SchedulePartitionHeal(p)

	// Pre-split: members on both future sides (0 in A, 11 in B).
	d.Join(round, 0, conn, mctree.SenderReceiver)
	d.Join(2*round, 11, conn, mctree.SenderReceiver)
	// Mid-split churn on both sides: A gains 5 and loses 0, B gains 6 and 10.
	d.Join(15*round, 5, conn, mctree.SenderReceiver)
	d.Join(15*round, 6, conn, mctree.SenderReceiver)
	d.Leave(18*round, 0, conn)
	d.Join(20*round, 10, conn, mctree.SenderReceiver)

	// Mid-split probe: the sides must hold genuinely divergent views, or
	// the heal below proves nothing.
	k.After(25*round, func() {
		sa, ok := d.Switch(1).Connection(conn)
		if !ok {
			t.Error("side A holds no connection state mid-split")
			return
		}
		sb, ok := d.Switch(2).Connection(conn)
		if !ok {
			t.Error("side B holds no connection state mid-split")
			return
		}
		if _, leak := sa.Members[6]; leak {
			t.Error("side A learned a mid-split B join; the partition leaks")
		}
		if _, leak := sb.Members[5]; leak {
			t.Error("side B learned a mid-split A join; the partition leaks")
		}
		if _, stale := sb.Members[0]; !stale {
			t.Error("side B already saw A's mid-split leave; the partition leaks")
		}
	})

	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatalf("did not converge after heal: %v", err)
	}
	// Every switch must hold the union of both sides' histories.
	want := []topo.SwitchID{5, 6, 10, 11}
	for s := 0; s < g.NumSwitches(); s++ {
		snap, ok := d.Switch(topo.SwitchID(s)).Connection(conn)
		if !ok {
			t.Fatalf("switch %d holds no connection state after heal", s)
		}
		if len(snap.Members) != len(want) {
			t.Fatalf("switch %d members = %v, want %v", s, snap.Members, want)
		}
		for _, m := range want {
			if _, in := snap.Members[m]; !in {
				t.Fatalf("switch %d missing member %d: %v", s, m, snap.Members)
			}
		}
		if _, in := snap.Members[0]; in {
			t.Fatalf("switch %d still lists member 0 after its mid-split leave", s)
		}
	}
	m := d.Metrics()
	rs := net.Reliability()
	t.Logf("partition/heal: reconciles=%d replays=%d resync-requests=%d give-ups=%d transport=%s",
		m.Reconciles, m.Replays, m.ResyncRequests, m.ResyncGiveUps, rs)
	if m.Reconciles == 0 {
		t.Error("heal triggered no reconciliation")
	}
	if m.Replays == 0 {
		t.Error("reconciliation replayed nothing despite divergent histories")
	}
	if rs.GiveUps == 0 {
		t.Error("no transport give-ups; the partition never actually cut traffic")
	}
	if m.ResyncGiveUps != 0 {
		t.Errorf("%d resync give-ups; heal recovery was abandoned somewhere", m.ResyncGiveUps)
	}
}

// TestMobilitySimSoak runs the generated mobility workload — churn overlaid
// with random bipartitions and flapping links on top of background loss —
// through the simulator and requires full convergence once the network
// calms down. This is the sim-side twin of the live-runtime mobility soak.
func TestMobilitySimSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n      = 16
		perHop = 10 * time.Microsecond
		tc     = 500 * time.Microsecond
		conn   = lsa.ConnID(1)
	)
	g, err := topo.Grid(4, 4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	round := probeRound(t, g, perHop, tc)

	events, plan, err := workload.Mobility(workload.MobilityConfig{
		Config: workload.Config{
			N: n, Events: 160, Seed: 21, Start: round, MeanGap: 2 * round,
		},
		Graph:      g,
		Partitions: 2,
		FlapLinks:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Background loss on top of the splits and flaps.
	plan.Default = faults.LinkFaults{Drop: 0.1, Dup: 0.02}
	t.Log(plan.Describe())

	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	inj, err := faults.New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	net, err := flood.New(k, g, perHop, flood.Reliable,
		flood.WithFaults(inj), flood.WithRetryBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{
		Net:           net,
		ComputeTime:   tc,
		Algorithm:     route.SPH{},
		ResyncTimeout: 4 * round,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plan.Partitions {
		d.SchedulePartitionHeal(p)
	}
	for _, e := range events {
		if e.Join {
			d.Join(e.At, e.Switch, conn, e.Role)
		} else {
			d.Leave(e.At, e.Switch, conn)
		}
	}

	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatalf("mobility soak did not converge: %v", err)
	}
	m := d.Metrics()
	rs := net.Reliability()
	t.Logf("mobility: %d events, reconciles=%d replays=%d resync-requests=%d give-ups=%d rearms=%d",
		m.Events, m.Reconciles, m.Replays, m.ResyncRequests, m.ResyncGiveUps, m.ResyncRearms)
	t.Logf("transport: %s", rs)
	if m.Events != uint64(len(events)) {
		t.Errorf("events = %d, want %d", m.Events, len(events))
	}
	if m.Reconciles == 0 {
		t.Error("two heals triggered no reconciliation")
	}
	if rs.Drops == 0 || rs.GiveUps == 0 {
		t.Error("faults not exercised: the soak proves nothing")
	}
}
