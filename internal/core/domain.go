package core

import (
	"errors"
	"fmt"

	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// Metrics aggregates protocol activity network-wide. Flooding operations
// are counted by the flood.Network; everything else here.
type Metrics struct {
	// Events counts EventHandler invocations (one per event per MC).
	Events uint64
	// Computations counts topology computations (proposals computed,
	// whether or not they survive to flooding).
	Computations uint64
	// Withdrawn counts proposals computed but withdrawn as obsolete.
	Withdrawn uint64
	// ComputeNanos accumulates the wall-clock nanoseconds spent inside the
	// topology algorithm (the real cost of Computations; the simulator's
	// virtual Tc is accounted separately by the kernel).
	ComputeNanos uint64
	// Installs counts topology installations across all switches.
	Installs uint64
	// MCLSAs and NonMCLSAs count originated advertisements.
	MCLSAs    uint64
	NonMCLSAs uint64
	// ReoptChecks counts re-optimization estimates run on link recovery
	// (each also counts as a Computation).
	ReoptChecks uint64
	// OutOfOrderLSAs counts event LSAs buffered because they arrived ahead
	// of per-origin order (only possible on lossy/jittery fabrics).
	OutOfOrderLSAs uint64
	// ResyncRequests and ResyncResponses count the gap-recovery exchanges
	// (requests issued when R < E persisted past the resync timeout, and
	// replay responses served to neighbors).
	ResyncRequests  uint64
	ResyncResponses uint64
	// ResyncGiveUps counts connections on which a switch exhausted its
	// resync round budget with the gap still open.
	ResyncGiveUps uint64
	// ResyncRearms counts gaps whose recovery restarted after a give-up
	// because new evidence (a changed R, E, or out-of-order buffer) arrived.
	ResyncRearms uint64
	// Reconciles counts heal-reconciliation exchanges started: one per
	// (connection, neighbor) pair a switch reconciled after a partition
	// healed, plus one per neighbor a restarted switch cold-rejoined from.
	Reconciles uint64
	// Replays counts event LSAs re-flooded after being learned through a
	// resync replay, propagating recovered knowledge beyond the replaying
	// pair (the OSPF rule that LSAs learned during database exchange are
	// flooded onward).
	Replays uint64
}

// Config configures a D-GMC domain.
type Config struct {
	// Net is the flooding fabric (carries the network graph). Required.
	Net *flood.Network
	// ComputeTime is Tc, the virtual time a topology computation takes.
	ComputeTime sim.Time
	// Algorithm computes MC topologies. Required.
	Algorithm route.Algorithm
	// Kinds maps connection IDs to their MC type. Connections not listed
	// default to Symmetric. (Deployments derive the type from the group
	// address range; the simulation declares it up front.)
	Kinds map[lsa.ConnID]mctree.Kind
	// Tracer observes protocol activity; nil disables tracing.
	Tracer Tracer
	// EncodeLSAs floods advertisements in their binary wire format instead
	// of as in-memory structs, exercising the lsa codec end-to-end. Off by
	// default because it only costs simulation time.
	EncodeLSAs bool
	// ReoptimizeThreshold enables §3.5's re-optimization policy: when a
	// link recovers, the detecting switch estimates a fresh topology for
	// each live connection and, if the installed tree costs more than
	// (1+threshold)× the fresh one, signals a link event so the network
	// re-converges on the better tree. Zero disables re-optimization
	// (recoveries then only update unicast images, as adverse changes are
	// the only mandatory triggers).
	ReoptimizeThreshold float64
	// ResyncTimeout enables gap recovery on lossy fabrics: when a switch's
	// received stamp R stays below its expected stamp E (or events sit
	// buffered out of order) for this long, the switch requests a resync
	// from a neighbor — a small request/replay exchange analogous to
	// OSPF's database description. Zero disables resync; the protocol then
	// assumes perfectly reliable flooding, as the paper does. Pick a value
	// comfortably above the flooding round (e.g. 2×(Tf+Tc)) so resync only
	// fires for genuine losses, not in-flight LSAs.
	ResyncTimeout sim.Time
	// ResyncMaxRounds bounds resync requests per connection per gap
	// (default 64 when resync is enabled), guaranteeing quiescence even if
	// a gap proves unfillable (e.g. a partitioned helper set).
	ResyncMaxRounds int
}

// Domain is a network of switches all running the D-GMC protocol inside
// one simulation kernel.
type Domain struct {
	k           *sim.Kernel
	net         *flood.Network
	computeTime sim.Time
	algorithm   route.Algorithm
	kinds       map[lsa.ConnID]mctree.Kind
	tracer      Tracer
	encodeLSAs  bool
	reoptThresh float64
	resyncAfter sim.Time
	resyncMax   int
	n           int

	switches []*Switch
	metrics  *Metrics

	lastInstall sim.Time
}

// NewDomain builds the per-switch protocol state and spawns the two
// protocol entities on every switch.
func NewDomain(k *sim.Kernel, cfg Config) (*Domain, error) {
	if cfg.Net == nil {
		return nil, errors.New("core: Config.Net is required")
	}
	if cfg.Algorithm == nil {
		return nil, errors.New("core: Config.Algorithm is required")
	}
	if cfg.ComputeTime < 0 {
		return nil, fmt.Errorf("core: negative compute time %v", cfg.ComputeTime)
	}
	if cfg.ReoptimizeThreshold < 0 {
		return nil, fmt.Errorf("core: negative re-optimization threshold %v", cfg.ReoptimizeThreshold)
	}
	if cfg.ResyncTimeout < 0 {
		return nil, fmt.Errorf("core: negative resync timeout %v", cfg.ResyncTimeout)
	}
	if cfg.ResyncMaxRounds < 0 {
		return nil, fmt.Errorf("core: negative resync round limit %d", cfg.ResyncMaxRounds)
	}
	if cfg.ResyncMaxRounds == 0 {
		cfg.ResyncMaxRounds = 64
	}
	d := &Domain{
		k:           k,
		net:         cfg.Net,
		computeTime: cfg.ComputeTime,
		algorithm:   cfg.Algorithm,
		kinds:       cfg.Kinds,
		tracer:      cfg.Tracer,
		encodeLSAs:  cfg.EncodeLSAs,
		reoptThresh: cfg.ReoptimizeThreshold,
		resyncAfter: cfg.ResyncTimeout,
		resyncMax:   cfg.ResyncMaxRounds,
		n:           cfg.Net.Graph().NumSwitches(),
		metrics:     &Metrics{},
	}
	d.switches = make([]*Switch, d.n)
	for i := 0; i < d.n; i++ {
		sw, err := newSwitch(d, topo.SwitchID(i))
		if err != nil {
			return nil, err
		}
		d.switches[i] = sw
		k.Spawn(fmt.Sprintf("dgmc-%d-events", i), sw.eventLoop)
		k.Spawn(fmt.Sprintf("dgmc-%d-lsa", i), sw.lsaLoop)
	}
	return d, nil
}

// kindOf returns the declared MC type for conn (default Symmetric).
func (d *Domain) kindOf(conn lsa.ConnID) mctree.Kind {
	if k, ok := d.kinds[conn]; ok {
		return k
	}
	return mctree.Symmetric
}

// Switch returns switch s.
func (d *Domain) Switch(s topo.SwitchID) *Switch { return d.switches[s] }

// NumSwitches returns the domain size.
func (d *Domain) NumSwitches() int { return d.n }

// Metrics returns the live metrics (valid to read when the kernel is idle).
func (d *Domain) Metrics() *Metrics { return d.metrics }

// Network returns the flooding fabric.
func (d *Domain) Network() *flood.Network { return d.net }

// LastInstall returns the virtual time of the most recent topology
// installation anywhere in the domain — the convergence instant once the
// simulation is quiescent.
func (d *Domain) LastInstall() sim.Time { return d.lastInstall }

func (d *Domain) noteInstall() { d.lastInstall = d.k.Now() }

// Join schedules a host-driven join of connection conn at ingress switch s
// with the given role, at virtual time at.
func (d *Domain) Join(at sim.Time, s topo.SwitchID, conn lsa.ConnID, role mctree.Role) {
	d.switches[s].events.Send(LocalEvent{Conn: conn, Kind: lsa.Join, Role: role}, at-d.k.Now())
}

// Leave schedules a host-driven leave of connection conn at switch s.
func (d *Domain) Leave(at sim.Time, s topo.SwitchID, conn lsa.ConnID) {
	d.switches[s].events.Send(LocalEvent{Conn: conn, Kind: lsa.Leave}, at-d.k.Now())
}

// FailLink schedules a failure of link (a,b), detected by switch a.
func (d *Domain) FailLink(at sim.Time, a, b topo.SwitchID) {
	d.switches[a].events.Send(LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{A: a, B: b, Down: true}}, at-d.k.Now())
}

// RestoreLink schedules a recovery of link (a,b), detected by switch a.
func (d *Domain) RestoreLink(at sim.Time, a, b topo.SwitchID) {
	d.switches[a].events.Send(LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{A: a, B: b, Down: false}}, at-d.k.Now())
}

// FailSwitch schedules a nodal failure of switch s at time at: every link
// incident to s fails, each detected independently by its surviving
// neighbour — the paper's "nodal events". The failed switch keeps its
// stale state but is cut off from all further flooding.
func (d *Domain) FailSwitch(at sim.Time, s topo.SwitchID) {
	for _, nb := range d.net.Graph().Neighbors(s) {
		d.switches[nb].events.Send(
			LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{A: nb, B: s, Down: true}},
			at-d.k.Now())
	}
}

// Reconcile schedules a heal-reconciliation exchange at virtual time at:
// switch a sends neighbor b one resync request per known connection,
// advertising a's R stamps (see Machine.ReconcileNeighbor). Call it for
// both directions of every boundary link when a partition heals.
func (d *Domain) Reconcile(at sim.Time, a, b topo.SwitchID) {
	d.k.After(at-d.k.Now(), func() { d.switches[a].m.ReconcileNeighbor(b) })
}

// SchedulePartitionHeal schedules the protocol half of a transport
// partition (faults.Partition in the fabric's fault plan): at p.HealAt,
// every up fabric link crossing p's groups reconciles in both directions,
// modelling the hello-protocol contact both sides make when connectivity
// returns. Replayed events re-flood from the boundary, so each side's
// interior converges too. A never-healing partition (HealAt zero) gets no
// reconciliation.
func (d *Domain) SchedulePartitionHeal(p faults.Partition) {
	if p.HealAt == 0 {
		return
	}
	g := d.net.Graph()
	for s := 0; s < d.n; s++ {
		a := topo.SwitchID(s)
		for _, b := range g.Neighbors(a) {
			if a < b && p.Crosses(a, b) {
				d.Reconcile(p.HealAt, a, b)
				d.Reconcile(p.HealAt, b, a)
			}
		}
	}
}

// trace forwards to the configured tracer, if any.
func (d *Domain) trace(kind TraceKind, chain ChainID, sw topo.SwitchID, conn lsa.ConnID, format string, args ...any) {
	if d.tracer == nil {
		return
	}
	d.tracer.Trace(TraceEntry{
		At:     d.k.Now(),
		Kind:   kind,
		Switch: sw,
		Conn:   conn,
		Chain:  chain,
		Detail: fmt.Sprintf(format, args...),
	})
}

// CheckConverged verifies that the domain has reached consensus. Because
// flooding cannot cross failed links, consistency is required within each
// connected component of the (current) network: inside a component, every
// switch must hold identical member lists, identical C stamps with
// C == R == E, and identical installed topologies; each topology must be a
// valid tree spanning the component's reachable members. Call it only when
// the kernel is quiescent.
func (d *Domain) CheckConverged() error {
	seen := make(map[topo.SwitchID]bool, d.n)
	var comps [][]topo.SwitchID
	maxSize := 0
	for s := 0; s < d.n; s++ {
		start := topo.SwitchID(s)
		if seen[start] {
			continue
		}
		comp := d.net.Graph().Component(start)
		for _, c := range comp {
			seen[c] = true
		}
		comps = append(comps, comp)
		if len(comp) > maxSize {
			maxSize = len(comp)
		}
	}
	for _, comp := range comps {
		inComp := make(map[topo.SwitchID]bool, len(comp))
		for _, c := range comp {
			inComp[c] = true
		}
		// Majority components must satisfy the full quiescence invariant;
		// minority fragments (e.g. a failed switch cut off mid-flood) may
		// hold legitimately stale state and are checked for internal
		// agreement only — the paper defers partition recovery (§6).
		strict := len(comp) == maxSize
		if err := d.checkComponent(comp, inComp, strict); err != nil {
			return err
		}
	}
	return nil
}

// checkComponent verifies consensus among the switches of one component.
func (d *Domain) checkComponent(comp []topo.SwitchID, inComp map[topo.SwitchID]bool, strict bool) error {
	conns := map[lsa.ConnID]bool{}
	for _, s := range comp {
		for _, id := range d.switches[s].Connections() {
			conns[id] = true
		}
	}
	for conn := range conns {
		var ref *Snapshot
		var refSwitch topo.SwitchID
		for _, s := range comp {
			sw := d.switches[s]
			snap, ok := sw.Connection(conn)
			if !ok {
				return fmt.Errorf("core: switch %d has no state for conn %d", sw.ID(), conn)
			}
			if strict && (!snap.R.Equal(snap.E) || !snap.R.Equal(snap.C)) {
				return fmt.Errorf("core: switch %d conn %d stamps diverge: R=%s E=%s C=%s",
					sw.ID(), conn, snap.R, snap.E, snap.C)
			}
			if ref == nil {
				sn := snap
				ref = &sn
				refSwitch = sw.ID()
				continue
			}
			if !snap.C.Equal(ref.C) {
				return fmt.Errorf("core: conn %d: switch %d C=%s but switch %d C=%s",
					conn, sw.ID(), snap.C, refSwitch, ref.C)
			}
			if !snap.Members.Equal(ref.Members) {
				return fmt.Errorf("core: conn %d: member lists diverge between switches %d and %d",
					conn, sw.ID(), refSwitch)
			}
			if (snap.Topology == nil) != (ref.Topology == nil) ||
				(snap.Topology != nil && !snap.Topology.Equal(ref.Topology)) {
				return fmt.Errorf("core: conn %d: topologies diverge between switches %d and %d: %v vs %v",
					conn, sw.ID(), refSwitch, snap.Topology, ref.Topology)
			}
		}
		if strict && ref != nil && ref.Topology != nil {
			// The topology serves the members this component can reach.
			local := make(mctree.Members, len(ref.Members))
			for m, role := range ref.Members {
				if inComp[m] {
					local[m] = role
				}
			}
			if err := ref.Topology.Validate(d.net.Graph(), local); err != nil {
				return fmt.Errorf("core: conn %d: converged topology invalid: %w", conn, err)
			}
		}
	}
	return nil
}
