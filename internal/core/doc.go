// Package core implements D-GMC, the distributed generic multipoint-
// connection protocol of Huang & McKinley (ICDCS 1996) — the paper's
// primary contribution.
//
// # Protocol overview
//
// D-GMC constructs and maintains multipoint connections (MCs) under
// link-state routing. Membership changes and link/nodal events are flooded
// to all switches as MC LSAs; only the switch that detects an event
// computes a new MC topology, and the resulting proposal rides inside the
// flooded LSA. In the common case each event therefore costs one topology
// computation and one flooding operation network-wide, versus one
// computation per switch for MOSPF-style or brute-force event-driven
// protocols.
//
// Conflicting concurrent events are reconciled with vector timestamps.
// Per MC, every switch keeps three n-component stamps:
//
//   - R (received): R[y] counts events heard from switch y,
//   - E (expected): the componentwise max of R and every LSA timestamp
//     seen — events known to exist somewhere in the network,
//   - C (current): the event set the installed topology is based on.
//
// Two protocol entities run at each switch:
//
//   - EventHandler is invoked for each local event (host join/leave via
//     the ingress switch, or a detected link event) and corresponds to
//     Figure 4 of the paper;
//   - ReceiveLSA drains the switch's LSA mailbox and corresponds to
//     Figure 5.
//
// Both entities may compute and flood a topology proposal, guarded by
// timestamp comparisons and a per-connection makeProposal flag. A proposal
// computed from a stale basis (the R stamp advanced during the
// computation, or LSAs are queued) is withdrawn rather than flooded.
//
// # Mapping to the simulator
//
// Each switch runs two sim processes sharing the switch state — exactly
// the concurrency model of the paper, where timestamp accesses are atomic
// between the two entities (our kernel's cooperative scheduling yields
// only inside Hold, i.e. during topology computations, which is when the
// paper's protocol must tolerate interleaving and does so via the old_R
// checks). Topology computation occupies Tc of virtual time; flooding is
// provided by internal/flood.
//
// The protocol is independent of the topology-computation algorithm
// (internal/route) and serves symmetric, receiver-only, and asymmetric MCs
// with the same code.
package core
