package core

import "dgmc/internal/lsa"

// Checker predicate hooks: read-only probes into per-connection protocol
// state that guided/backward schedule search (internal/explore) uses to
// rank world states by near-violation signals — a switch owing a proposal
// with nothing in flight to trigger it, recovery machinery armed or
// exhausted, events buffered out of order. They expose no state a Snapshot
// does not already imply; they exist so the explorer can score millions of
// states without allocating snapshots.

// ProposalOwed reports whether conn's shared makeProposal flag is set:
// this switch owes the network a topology proposal it has not yet computed
// and flooded.
func (m *Machine) ProposalOwed(conn lsa.ConnID) bool {
	cs, ok := m.conns[conn]
	return ok && cs.makeProposal
}

// ResyncArmed reports whether a gap-check timer is pending for conn.
func (m *Machine) ResyncArmed(conn lsa.ConnID) bool {
	cs, ok := m.conns[conn]
	return ok && cs.resyncScheduled
}

// ResyncRoundsUsed returns how many resync rounds conn's current gap has
// consumed (0 when healthy; resyncMax+1 after a give-up).
func (m *Machine) ResyncRoundsUsed(conn lsa.ConnID) int {
	cs, ok := m.conns[conn]
	if !ok {
		return 0
	}
	return cs.resyncRounds
}

// OutOfOrderDepth returns the number of event LSAs buffered out of
// per-origin order for conn.
func (m *Machine) OutOfOrderDepth(conn lsa.ConnID) int {
	cs, ok := m.conns[conn]
	if !ok {
		return 0
	}
	return cs.oooCount
}

// Dormant reports whether conn's member list has emptied (§3.4
// "destroyed"): counters persist but there is no live state to converge.
func (m *Machine) Dormant(conn lsa.ConnID) bool {
	cs, ok := m.conns[conn]
	return ok && cs.dormant
}
