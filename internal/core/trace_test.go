package core

import (
	"strings"
	"sync"
	"testing"

	"dgmc/internal/lsa"
	"dgmc/internal/sim"
	"dgmc/internal/stamp"
)

func TestTraceKindStrings(t *testing.T) {
	known := map[TraceKind]string{
		TraceEvent:    "event",
		TraceRecv:     "recv",
		TraceCompute:  "compute",
		TraceFlood:    "flood",
		TraceInstall:  "install",
		TraceWithdraw: "withdraw",
		TraceDestroy:  "destroy",
		TraceError:    "error",
		TraceResync:   "resync",
	}
	seen := map[string]bool{}
	for k, want := range known {
		got := k.String()
		if got != want {
			t.Errorf("TraceKind(%d).String() = %q, want %q", k, got, want)
		}
		if seen[got] {
			t.Errorf("duplicate name %q", got)
		}
		seen[got] = true
	}
	if got := TraceKind(250).String(); got != "TraceKind(250)" {
		t.Errorf("unknown kind renders %q", got)
	}
}

func TestChainID(t *testing.T) {
	var zero ChainID
	if !zero.IsZero() || zero.String() != "-" {
		t.Errorf("zero chain = %q, IsZero=%v", zero.String(), zero.IsZero())
	}
	c := ChainID{Origin: 3, Seq: 12}
	if c.IsZero() || c.String() != "3/12" {
		t.Errorf("chain = %q, IsZero=%v", c.String(), c.IsZero())
	}
}

func TestChainOf(t *testing.T) {
	st := stamp.New(4)
	st.Inc(2)
	st.Inc(2)
	m := &lsa.MC{Src: 2, Event: lsa.Join, Conn: 1, Stamp: st}
	if got := chainOf(m); got != (ChainID{Origin: 2, Seq: 2}) {
		t.Errorf("chainOf = %v", got)
	}
	// Out-of-range Src (corrupt or foreign LSA) degrades to the zero chain.
	bad := &lsa.MC{Src: 9, Stamp: stamp.New(4)}
	if got := chainOf(bad); !got.IsZero() {
		t.Errorf("chainOf out-of-range = %v, want zero", got)
	}
}

func TestTraceEntryString(t *testing.T) {
	e := TraceEntry{
		At: sim.Time(1500), Kind: TraceFlood, Switch: 4, Conn: 9,
		Chain: ChainID{Origin: 4, Seq: 2}, Detail: "join proposal",
	}
	s := e.String()
	for _, want := range []string{"sw=4", "conn=9", "chain=4/2", "flood", "join proposal"} {
		if !strings.Contains(s, want) {
			t.Errorf("entry %q missing %q", s, want)
		}
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var sb strings.Builder
	tr := &WriterTracer{W: &sb}
	tr.Trace(TraceEntry{Kind: TraceInstall, Switch: 1, Conn: 2, Detail: "tree"})
	tr.Trace(TraceEntry{Kind: TraceEvent, Switch: 0, Conn: 2, Detail: "join"})
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "install") || !strings.Contains(lines[1], "event") {
		t.Fatalf("lines out of order or malformed: %q", lines)
	}
}

func TestCollectTracerCountAndSnapshot(t *testing.T) {
	tr := &CollectTracer{}
	tr.Trace(TraceEntry{Kind: TraceFlood})
	tr.Trace(TraceEntry{Kind: TraceFlood})
	tr.Trace(TraceEntry{Kind: TraceInstall})
	if got := tr.Count(TraceFlood); got != 2 {
		t.Errorf("Count(flood) = %d, want 2", got)
	}
	if got := tr.Count(TraceWithdraw); got != 0 {
		t.Errorf("Count(withdraw) = %d, want 0", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	snap[0].Kind = TraceError // must not alias the collector's storage
	if tr.Count(TraceFlood) != 2 {
		t.Error("Snapshot aliases internal storage")
	}
}

// TestTracersConcurrent drives both tracers from many goroutines; run under
// -race this pins the goroutine-safety the rt package relies on.
func TestTracersConcurrent(t *testing.T) {
	var sb strings.Builder
	wt := &WriterTracer{W: &sb}
	ct := &CollectTracer{}
	multi := MultiTracer{wt, ct}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				multi.Trace(TraceEntry{Kind: TraceRecv, Detail: "x"})
			}
		}()
	}
	wg.Wait()
	if got := ct.Count(TraceRecv); got != 1600 {
		t.Errorf("collected %d entries, want 1600", got)
	}
	if got := strings.Count(sb.String(), "\n"); got != 1600 {
		t.Errorf("wrote %d lines, want 1600", got)
	}
}
