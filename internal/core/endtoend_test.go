package core

import (
	"testing"
	"time"

	"dgmc/internal/deliver"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// TestConvergedTreesCarryTraffic drives the full loop: the protocol
// converges on topologies for all three MC kinds, then the data plane
// delivers packets over exactly those trees — every receiver reached once,
// senders policed per kind.
func TestConvergedTreesCarryTraffic(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(30, 55))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[lsa.ConnID]mctree.Kind{
		1: mctree.Symmetric,
		2: mctree.ReceiverOnly,
		3: mctree.Asymmetric,
	}
	f := newFixture(t, g, func(c *Config) { c.Kinds = kinds })

	at := time.Duration(0)
	step := func() time.Duration { at += 2 * time.Millisecond; return at }
	// Symmetric conference.
	confMembers := []topo.SwitchID{1, 8, 15, 22}
	for _, s := range confMembers {
		f.d.Join(step(), s, 1, mctree.SenderReceiver)
	}
	// Receiver-only feed.
	feedMembers := []topo.SwitchID{4, 12, 27}
	for _, s := range feedMembers {
		f.d.Join(step(), s, 2, mctree.Receiver)
	}
	// Asymmetric broadcast.
	f.d.Join(step(), 6, 3, mctree.Sender)
	for _, s := range []topo.SwitchID{0, 19, 29} {
		f.d.Join(step(), s, 3, mctree.Receiver)
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatal(err)
	}

	// Symmetric: every member can reach every other member.
	conf, _ := f.d.Switch(0).Connection(1)
	for _, src := range confMembers {
		rep, err := deliver.Multicast(g, conf.Topology, conf.Members, src)
		if err != nil {
			t.Fatalf("symmetric send from %d: %v", src, err)
		}
		if len(rep.Latency) != len(confMembers)-1 {
			t.Errorf("symmetric from %d reached %d members", src, len(rep.Latency))
		}
	}

	// Receiver-only: an arbitrary off-tree switch can publish via a contact
	// node.
	feed, _ := f.d.Switch(0).Connection(2)
	var publisher topo.SwitchID = topo.NoSwitch
	for _, s := range g.Switches() {
		if !feed.Topology.On(s) {
			publisher = s
			break
		}
	}
	if publisher == topo.NoSwitch {
		t.Skip("feed tree spans the whole network")
	}
	rep, err := deliver.Multicast(g, feed.Topology, feed.Members, publisher)
	if err != nil {
		t.Fatalf("receiver-only publish from %d: %v", publisher, err)
	}
	if len(rep.Latency) != len(feedMembers) {
		t.Errorf("feed reached %d of %d members", len(rep.Latency), len(feedMembers))
	}
	if rep.Contact == publisher {
		t.Error("off-tree publisher needed no contact node?")
	}

	// Asymmetric: the sender reaches all receivers; receivers are policed.
	bc, _ := f.d.Switch(0).Connection(3)
	rep, err = deliver.Multicast(g, bc.Topology, bc.Members, 6)
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if len(rep.Latency) != 3 {
		t.Errorf("broadcast reached %d receivers", len(rep.Latency))
	}
	if _, err := deliver.Multicast(g, bc.Topology, bc.Members, 19); err == nil {
		t.Error("receiver allowed to broadcast")
	}

	// After a link failure and repair, traffic still flows everywhere.
	edge := conf.Topology.Edges()[0]
	f.d.FailLink(at+10*time.Millisecond, edge.A, edge.B)
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	conf, _ = f.d.Switch(0).Connection(1)
	if _, err := deliver.Multicast(g, conf.Topology, conf.Members, confMembers[0]); err != nil {
		t.Errorf("post-repair delivery: %v", err)
	}
}

// TestDelayBoundedUnderProtocol runs the protocol with the QoS-constrained
// algorithm: every installed topology must honour the delay bound — the
// §2 argument that an event-driven protocol can negotiate QoS before data
// flows.
func TestDelayBoundedUnderProtocol(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(25, 77))
	if err != nil {
		t.Fatal(err)
	}
	bound := 200 * time.Microsecond // loose enough to be satisfiable
	f := newFixture(t, g, func(c *Config) {
		c.Algorithm = route.DelayBounded{Bound: bound}
	})
	members := []topo.SwitchID{2, 7, 13, 19, 24}
	for i, s := range members {
		f.d.Join(time.Duration(i)*3*time.Millisecond, s, 1, mctree.SenderReceiver)
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	snap, _ := f.d.Switch(0).Connection(1)
	root := snap.Topology.Root
	if root == topo.NoSwitch {
		root = snap.Members.IDs()[0]
	}
	for _, m := range snap.Members.IDs() {
		if m == root {
			continue
		}
		if d := snap.Topology.PathDelay(g, root, m); d < 0 || d > bound {
			t.Errorf("member %d at %v violates bound %v", m, d, bound)
		}
	}
}
