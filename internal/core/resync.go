package core

import (
	"dgmc/internal/lsa"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// Gap recovery for lossy fabrics (the OSPF database-exchange analogue).
//
// The paper assumes flooding is perfectly reliable, so R (received) can
// never permanently trail E (expected). On a fabric that drops, duplicates,
// or reorders LSAs that assumption breaks in three ways, each handled here:
//
//  1. Duplicated or reordered event LSAs would corrupt the member list if
//     applied naively. applyEventLSA applies each origin's events strictly
//     in order, using the fact that an event LSA from switch x carries
//     Stamp[x] equal to x's per-connection event index: stale copies are
//     dropped, early arrivals buffered until the gap before them fills.
//
//  2. A lost event LSA leaves R < E (or events buffered out of order)
//     forever. When that persists past Config.ResyncTimeout the switch asks
//     a neighbor to replay the per-origin suffixes beyond its R; neighbors
//     rotate across rounds so a single equally-gapped peer cannot wedge
//     recovery. The request's R also advertises the requester's knowledge:
//     the peer merges it into its own E, so gap detection is symmetric.
//
//  3. A lost *proposal* flood leaves R = E but C behind on some switches —
//     the protocol is quiescent but unconverged. The replay response ends
//     with a pseudo-proposal (a triggered LSA carrying the peer's installed
//     topology at its committed stamp) so the requester can adopt the
//     topology it missed; and the requester independently nudges its own
//     ReceiveLSA with makeProposal set, so even a neighborhood of equally
//     wedged switches recomputes and floods a fresh proposal.
//
// Everything travels through the ordinary ReceiveLSA path and the ordinary
// acceptance rules (a proposal is accepted only if its stamp dominates E),
// so resync can never regress C or install a stale topology. Rounds are
// bounded by Config.ResyncMaxRounds to guarantee quiescence.

// resyncRequest asks a neighbor to replay the event LSAs the requester is
// missing. R is the requester's received stamp; the peer replays exactly
// the per-origin suffixes beyond it.
type resyncRequest struct {
	Conn lsa.ConnID
	From topo.SwitchID
	R    stamp.Stamp
}

// resyncResponse carries the replayed LSAs (in the peer's application
// order, ending with a pseudo-proposal when the peer has an installed
// topology). The batch is consumed by the ordinary ReceiveLSA path.
type resyncResponse struct {
	Conn  lsa.ConnID
	From  topo.SwitchID
	Batch []*lsa.MC
}

// resyncNudge is a self-addressed mailbox entry that runs ReceiveLSA with
// an empty batch, giving Figure 5 line 19 a chance to fire after
// resyncCheck set makeProposal (commit-lag recovery).
type resyncNudge struct {
	conn lsa.ConnID
}

// applyEventLSA performs Figure 5 lines 5-9 under per-origin ordering and
// returns the LSAs the caller should continue processing: nil for a stale
// or buffered copy, otherwise the LSA itself followed by any buffered
// successors it released (R advanced and membership applied for each).
// Non-event (triggered) LSAs pass through untouched. On a loss-free fabric
// every event arrives exactly once and in order, so this reduces to the
// paper's unconditional apply.
func (s *Switch) applyEventLSA(cs *connState, m *lsa.MC) []*lsa.MC {
	if !m.Event.IsEvent() {
		return []*lsa.MC{m}
	}
	src := m.Src
	x := int(src)
	idx := m.Stamp[x]
	switch {
	case idx <= cs.r[x]:
		// Already applied: a retransmitted, fault-duplicated, or replayed
		// copy. Its stamp was merged into E when the first copy arrived.
		return nil
	case idx == cs.r[x]+1:
		out := []*lsa.MC{m}
		cs.r.Inc(x)
		cs.applyMembership(m.Event, x, m.Role)
		cs.logEvent(m)
		// Applying this event may release buffered successors.
		for {
			next, ok := cs.takeBuffered(src, cs.r[x]+1)
			if !ok {
				break
			}
			cs.r.Inc(x)
			cs.applyMembership(next.Event, x, next.Role)
			cs.logEvent(next)
			out = append(out, next)
		}
		return out
	default:
		// Ahead of order: an intervening event from src is missing. Buffer
		// the LSA, but merge its stamp into E now — it is hard evidence the
		// missing events exist, and the R < E it creates is what arms gap
		// recovery.
		if cs.buffer(m) {
			cs.e.MaxInPlace(m.Stamp)
			s.d.metrics.OutOfOrderLSAs++
			s.d.trace(TraceResync, s.id, cs.id,
				"buffered out-of-order event from %d (idx %d, applied %d)", src, idx, cs.r[x])
		}
		return nil
	}
}

// maybeScheduleResync arms the gap-check timer for cs if resync is enabled,
// the connection currently looks gapped, and no check is already pending.
// Called after every EventHandler and ReceiveLSA invocation; a no-op when
// the connection is healthy (it then also resets the round budget, so each
// new gap starts fresh).
func (s *Switch) maybeScheduleResync(cs *connState) {
	if s.d.resyncAfter <= 0 || cs.resyncScheduled {
		return
	}
	if !cs.gapped() {
		cs.resyncRounds = 0
		return
	}
	if cs.resyncRounds > s.d.resyncMax {
		return // gave up on this gap; only new healthy state resets it
	}
	cs.resyncScheduled = true
	s.d.k.After(s.d.resyncAfter, func() {
		cs.resyncScheduled = false
		s.resyncCheck(cs)
	})
}

// resyncCheck runs when the gap-check timer fires: if the gap healed in the
// meantime it does nothing; otherwise it spends one resync round on the
// appropriate recovery action and re-arms.
func (s *Switch) resyncCheck(cs *connState) {
	if !cs.gapped() {
		cs.resyncRounds = 0
		return
	}
	if cs.resyncRounds >= s.d.resyncMax {
		cs.resyncRounds = s.d.resyncMax + 1 // block further arming for this gap
		s.d.metrics.ResyncGiveUps++
		s.d.trace(TraceResync, s.id, cs.id,
			"giving up after %d resync rounds (R=%s E=%s C=%s)", s.d.resyncMax, cs.r, cs.e, cs.c)
		return
	}
	cs.resyncRounds++
	if cs.oooCount == 0 && cs.r.Geq(cs.e) {
		// Only the commit lags: every event is applied but the accepted
		// proposal's flood was lost. Owe the network a proposal and nudge
		// ReceiveLSA so line 19 recomputes and floods a triggered one.
		cs.makeProposal = true
		s.d.trace(TraceResync, s.id, cs.id,
			"commit lag (R=%s C=%s): self-nudging a proposal (round %d)", cs.r, cs.c, cs.resyncRounds)
		s.d.net.Mailbox(s.id).Send(resyncNudge{conn: cs.id}, 0)
	} else if nbs := s.d.net.Graph().Neighbors(s.id); len(nbs) > 0 {
		nb := nbs[cs.resyncNext%len(nbs)]
		cs.resyncNext++
		s.d.metrics.ResyncRequests++
		s.d.trace(TraceResync, s.id, cs.id,
			"requesting resync from %d (round %d, R=%s E=%s ooo=%d)", nb, cs.resyncRounds, cs.r, cs.e, cs.oooCount)
		s.d.net.Unicast(s.id, nb, resyncRequest{Conn: cs.id, From: s.id, R: cs.r.Clone()})
	}
	s.maybeScheduleResync(cs)
}

// handleResyncRequest serves a neighbor's resync request from this switch's
// event log: replay every logged event beyond the requester's R, close with
// a pseudo-proposal carrying the installed topology, and let the request's
// R advertise any events the requester has seen that we have not.
func (s *Switch) handleResyncRequest(req resyncRequest) {
	cs := s.conn(req.Conn)
	if len(req.R) == len(cs.e) {
		cs.e.MaxInPlace(req.R)
	}
	var batch []*lsa.MC
	for _, m := range cs.eventLog {
		if m.Stamp[int(m.Src)] > req.R[int(m.Src)] {
			batch = append(batch, m)
		}
	}
	if cs.topology != nil {
		batch = append(batch, &lsa.MC{
			Src: s.id, Event: lsa.None, Conn: cs.id,
			Proposal: cs.topology, Stamp: cs.c.Clone(),
		})
	}
	if len(batch) > 0 {
		s.d.metrics.ResyncResponses++
		s.d.trace(TraceResync, s.id, cs.id, "replaying %d LSAs to %d", len(batch), req.From)
		s.d.net.Unicast(s.id, req.From, resyncResponse{Conn: cs.id, From: s.id, Batch: batch})
	}
	s.maybeScheduleResync(cs) // the E merge may have revealed our own gap
}
