package core

import (
	"dgmc/internal/lsa"
)

// Gap recovery for lossy fabrics (the OSPF database-exchange analogue).
//
// The paper assumes flooding is perfectly reliable, so R (received) can
// never permanently trail E (expected). On a fabric that drops, duplicates,
// or reorders LSAs that assumption breaks in three ways, each handled here:
//
//  1. Duplicated or reordered event LSAs would corrupt the member list if
//     applied naively. applyEventLSA applies each origin's events strictly
//     in order, using the fact that an event LSA from switch x carries
//     Stamp[x] equal to x's per-connection event index: stale copies are
//     dropped, early arrivals buffered until the gap before them fills.
//
//  2. A lost event LSA leaves R < E (or events buffered out of order)
//     forever. When that persists past the host's resync timeout the switch
//     asks a neighbor to replay the per-origin suffixes beyond its R;
//     neighbors rotate across rounds so a single equally-gapped peer cannot
//     wedge recovery. The request's R also advertises the requester's
//     knowledge: the peer merges it into its own E, so gap detection is
//     symmetric.
//
//  3. A lost *proposal* flood leaves R = E but C behind on some switches —
//     the protocol is quiescent but unconverged. The replay response ends
//     with a pseudo-proposal (a triggered LSA carrying the peer's installed
//     topology at its committed stamp) so the requester can adopt the
//     topology it missed; and the requester independently nudges its own
//     ReceiveLSA with makeProposal set, so even a neighborhood of equally
//     wedged switches recomputes and floods a fresh proposal.
//
// Everything travels through the ordinary ReceiveLSA path and the ordinary
// acceptance rules (a proposal is accepted only if its stamp dominates E),
// so resync can never regress C or install a stale topology. Rounds are
// bounded by MachineConfig.ResyncMaxRounds to guarantee quiescence.
//
// The wire messages themselves (lsa.ResyncRequest, lsa.ResyncResponse) live
// in internal/lsa so live transports can frame them.

// applyEventLSA performs Figure 5 lines 5-9 under per-origin ordering and
// returns the LSAs the caller should continue processing: nil for a stale
// or buffered copy, otherwise the LSA itself followed by any buffered
// successors it released (R advanced and membership applied for each).
// Non-event (triggered) LSAs pass through untouched. On a loss-free fabric
// every event arrives exactly once and in order, so this reduces to the
// paper's unconditional apply.
func (m *Machine) applyEventLSA(cs *connState, msg *lsa.MC) []*lsa.MC {
	if !msg.Event.IsEvent() {
		return []*lsa.MC{msg}
	}
	src := msg.Src
	x := int(src)
	idx := msg.Stamp[x]
	switch {
	case idx <= cs.r[x]:
		// Already applied: a retransmitted, fault-duplicated, or replayed
		// copy. Its stamp was merged into E when the first copy arrived.
		return nil
	case idx == cs.r[x]+1:
		out := []*lsa.MC{msg}
		cs.r.Inc(x)
		cs.applyMembership(msg.Event, x, msg.Role)
		cs.logEvent(msg)
		// Applying this event may release buffered successors.
		for {
			next, ok := cs.takeBuffered(src, cs.r[x]+1)
			if !ok {
				break
			}
			cs.r.Inc(x)
			cs.applyMembership(next.Event, x, next.Role)
			cs.logEvent(next)
			out = append(out, next)
		}
		return out
	default:
		// Ahead of order: an intervening event from src is missing. Buffer
		// the LSA, but merge its stamp into E now — it is hard evidence the
		// missing events exist, and the R < E it creates is what arms gap
		// recovery.
		if cs.buffer(msg) {
			cs.e.MaxInPlace(msg.Stamp)
			m.metrics.OutOfOrderLSAs++
			if m.host.TraceEnabled() {
				m.host.Trace(TraceResync, chainOf(msg), cs.id,
					"buffered out-of-order event from %d (idx %d, applied %d)", src, idx, cs.r[x])
			}
		}
		return nil
	}
}

// maybeScheduleResync arms the gap-check timer for cs if resync is enabled,
// the connection currently looks gapped, and no check is already pending.
// Called after every EventHandler and ReceiveLSA invocation; a no-op when
// the connection is healthy (it then also resets the round budget, so each
// new gap starts fresh).
func (m *Machine) maybeScheduleResync(cs *connState) {
	if !m.resync || cs.resyncScheduled {
		return
	}
	if !cs.gapped() {
		cs.resyncRounds = 0
		return
	}
	if cs.resyncRounds > m.resyncMax {
		return // gave up on this gap; only new healthy state resets it
	}
	cs.resyncScheduled = true
	m.host.ArmResync(cs.id)
}

// ResyncFired is the gap-check timer callback: the host calls it once per
// ArmResync, after its resync timeout has elapsed. The hosting runtime
// must serialize it with every other Machine call.
func (m *Machine) ResyncFired(conn lsa.ConnID) {
	cs, ok := m.conns[conn]
	if !ok {
		return
	}
	cs.resyncScheduled = false
	m.resyncCheck(cs)
}

// resyncCheck runs when the gap-check timer fires: if the gap healed in the
// meantime it does nothing; otherwise it spends one resync round on the
// appropriate recovery action and re-arms.
func (m *Machine) resyncCheck(cs *connState) {
	if !cs.gapped() {
		cs.resyncRounds = 0
		return
	}
	if cs.resyncRounds >= m.resyncMax {
		cs.resyncRounds = m.resyncMax + 1 // block further arming for this gap
		m.metrics.ResyncGiveUps++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id,
				"giving up after %d resync rounds (R=%s E=%s C=%s)", m.resyncMax, cs.r, cs.e, cs.c)
		}
		return
	}
	cs.resyncRounds++
	if cs.oooCount == 0 && cs.r.Geq(cs.e) {
		// Only the commit lags: every event is applied but the accepted
		// proposal's flood was lost. Owe the network a proposal and nudge
		// ReceiveLSA so line 19 recomputes and floods a triggered one.
		cs.makeProposal = true
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id,
				"commit lag (R=%s C=%s): self-nudging a proposal (round %d)", cs.r, cs.c, cs.resyncRounds)
		}
		m.host.SelfNudge(cs.id)
	} else if nbs := m.host.Neighbors(); len(nbs) > 0 {
		nb := nbs[cs.resyncNext%len(nbs)]
		cs.resyncNext++
		m.metrics.ResyncRequests++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id,
				"requesting resync from %d (round %d, R=%s E=%s ooo=%d)", nb, cs.resyncRounds, cs.r, cs.e, cs.oooCount)
		}
		m.host.SendUnicast(nb, &lsa.ResyncRequest{Conn: cs.id, From: m.id, R: cs.r.Clone()})
	}
	m.maybeScheduleResync(cs)
}

// handleResyncRequest serves a neighbor's resync request from this switch's
// event log: replay every logged event beyond the requester's R, close with
// a pseudo-proposal carrying the installed topology, and let the request's
// R advertise any events the requester has seen that we have not.
func (m *Machine) handleResyncRequest(req *lsa.ResyncRequest) {
	cs := m.conn(req.Conn)
	if len(req.R) == len(cs.e) {
		cs.e.MaxInPlace(req.R)
	}
	var batch []*lsa.MC
	for _, msg := range cs.eventLog {
		if int(msg.Src) < len(req.R) && msg.Stamp[int(msg.Src)] > req.R[int(msg.Src)] {
			batch = append(batch, msg)
		}
	}
	if cs.topology != nil {
		batch = append(batch, &lsa.MC{
			Src: m.id, Event: lsa.None, Conn: cs.id,
			Proposal: cs.topology, Stamp: cs.c.Clone(),
		})
	}
	if len(batch) > 0 {
		m.metrics.ResyncResponses++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id, "replaying %d LSAs to %d", len(batch), req.From)
		}
		m.host.SendUnicast(req.From, &lsa.ResyncResponse{Conn: cs.id, From: m.id, Batch: batch})
	}
	m.maybeScheduleResync(cs) // the E merge may have revealed our own gap
}
