package core

import (
	"dgmc/internal/lsa"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// Gap recovery for lossy fabrics (the OSPF database-exchange analogue).
//
// The paper assumes flooding is perfectly reliable, so R (received) can
// never permanently trail E (expected). On a fabric that drops, duplicates,
// or reorders LSAs that assumption breaks in three ways, each handled here:
//
//  1. Duplicated or reordered event LSAs would corrupt the member list if
//     applied naively. applyEventLSA applies each origin's events strictly
//     in order, using the fact that an event LSA from switch x carries
//     Stamp[x] equal to x's per-connection event index: stale copies are
//     dropped, early arrivals buffered until the gap before them fills.
//
//  2. A lost event LSA leaves R < E (or events buffered out of order)
//     forever. When that persists past the host's resync timeout the switch
//     asks a neighbor to replay the per-origin suffixes beyond its R;
//     neighbors rotate across rounds so a single equally-gapped peer cannot
//     wedge recovery. The request's R also advertises the requester's
//     knowledge: the peer merges it into its own E, so gap detection is
//     symmetric.
//
//  3. A lost *proposal* flood leaves R = E but C behind on some switches —
//     the protocol is quiescent but unconverged. The replay response ends
//     with a pseudo-proposal (a triggered LSA carrying the peer's installed
//     topology at its committed stamp) so the requester can adopt the
//     topology it missed; and the requester independently nudges its own
//     ReceiveLSA with makeProposal set, so even a neighborhood of equally
//     wedged switches recomputes and floods a fresh proposal.
//
// Everything travels through the ordinary ReceiveLSA path and the ordinary
// acceptance rules (a proposal is accepted only if its stamp dominates E),
// so resync can never regress C or install a stale topology. Rounds are
// bounded by MachineConfig.ResyncMaxRounds to guarantee quiescence.
//
// The wire messages themselves (lsa.ResyncRequest, lsa.ResyncResponse) live
// in internal/lsa so live transports can frame them.

// applyEventLSA performs Figure 5 lines 5-9 under per-origin ordering and
// returns the LSAs the caller should continue processing: nil for a stale
// or buffered copy, otherwise the LSA itself followed by any buffered
// successors it released (R advanced and membership applied for each).
// Non-event (triggered) LSAs pass through untouched. On a loss-free fabric
// every event arrives exactly once and in order, so this reduces to the
// paper's unconditional apply.
func (m *Machine) applyEventLSA(cs *connState, msg *lsa.MC) []*lsa.MC {
	if !msg.Event.IsEvent() {
		return []*lsa.MC{msg}
	}
	src := msg.Src
	x := int(src)
	idx := msg.Stamp[x]
	if m.mutation == MutationIgnoreEventOrder {
		// Seeded bug (checker validation): trust the fabric never to
		// reorder or duplicate — apply every copy the moment it arrives,
		// with no stale-drop and no out-of-order buffering.
		if idx > cs.r[x] {
			cs.r[x] = idx
		}
		cs.applyMembership(msg.Event, x, msg.Role)
		cs.logEvent(msg)
		return []*lsa.MC{msg}
	}
	switch {
	case idx <= cs.r[x]:
		// Already applied: a retransmitted, fault-duplicated, or replayed
		// copy. Its stamp was merged into E when the first copy arrived.
		return nil
	case idx == cs.r[x]+1:
		out := []*lsa.MC{msg}
		cs.r.Inc(x)
		cs.applyMembership(msg.Event, x, msg.Role)
		cs.logEvent(msg)
		// Applying this event may release buffered successors.
		for {
			next, ok := cs.takeBuffered(src, cs.r[x]+1)
			if !ok {
				break
			}
			cs.r.Inc(x)
			cs.applyMembership(next.Event, x, next.Role)
			cs.logEvent(next)
			out = append(out, next)
		}
		return out
	default:
		// Ahead of order: an intervening event from src is missing. Buffer
		// the LSA, but merge its stamp into E now — it is hard evidence the
		// missing events exist, and the R < E it creates is what arms gap
		// recovery.
		if cs.buffer(msg) {
			cs.e.MaxInPlace(msg.Stamp)
			m.metrics.OutOfOrderLSAs++
			if m.host.TraceEnabled() {
				m.host.Trace(TraceResync, chainOf(msg), cs.id,
					"buffered out-of-order event from %d (idx %d, applied %d)", src, idx, cs.r[x])
			}
		}
		return nil
	}
}

// maybeScheduleResync arms the gap-check timer for cs if resync is enabled,
// the connection currently looks gapped, and no check is already pending.
// Called after every EventHandler and ReceiveLSA invocation; a no-op when
// the connection is healthy (it then also resets the round budget, so each
// new gap starts fresh).
//
// A gap whose round budget is exhausted is terminal only while the state it
// gave up on persists: if R, E, or the out-of-order buffer has changed since
// the give-up — a late flood, a replay, a healed partition — that is new
// evidence, and recovery re-arms with a fresh budget instead of staying
// wedged forever.
func (m *Machine) maybeScheduleResync(cs *connState) {
	if !m.resync || cs.resyncScheduled {
		return
	}
	if !cs.gapped() {
		cs.clearGiveUp()
		return
	}
	if cs.resyncRounds > m.resyncMax {
		if cs.r.Equal(cs.gaveUpR) && cs.e.Equal(cs.gaveUpE) && cs.oooCount == cs.gaveUpOOO {
			return // same gap, no new evidence: stay terminal
		}
		cs.clearGiveUp()
		m.metrics.ResyncRearms++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id,
				"new evidence after give-up: re-arming recovery (R=%s E=%s ooo=%d)", cs.r, cs.e, cs.oooCount)
		}
	}
	cs.resyncScheduled = true
	m.host.ArmResync(cs.id)
}

// clearGiveUp resets the round budget and forgets the give-up signature
// (the gap healed, or new evidence restarted recovery).
func (cs *connState) clearGiveUp() {
	cs.resyncRounds = 0
	cs.gaveUpR = nil
	cs.gaveUpE = nil
	cs.gaveUpOOO = 0
}

// ResyncFired is the gap-check timer callback: the host calls it once per
// ArmResync, after its resync timeout has elapsed. The hosting runtime
// must serialize it with every other Machine call.
func (m *Machine) ResyncFired(conn lsa.ConnID) {
	cs, ok := m.conns[conn]
	if !ok {
		return
	}
	cs.resyncScheduled = false
	m.resyncCheck(cs)
}

// resyncCheck runs when the gap-check timer fires: if the gap healed in the
// meantime it does nothing; otherwise it spends one resync round on the
// appropriate recovery action and re-arms.
func (m *Machine) resyncCheck(cs *connState) {
	if !cs.gapped() {
		cs.clearGiveUp()
		return
	}
	if cs.resyncRounds >= m.resyncMax {
		// Explicit terminal state: block further arming for this gap and
		// record the state we gave up on, so any later deviation from it
		// counts as new evidence and re-arms recovery.
		cs.resyncRounds = m.resyncMax + 1
		cs.gaveUpR = cs.r.Clone()
		cs.gaveUpE = cs.e.Clone()
		cs.gaveUpOOO = cs.oooCount
		m.metrics.ResyncGiveUps++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceGiveUp, ChainID{}, cs.id,
				"giving up after %d resync rounds (R=%s E=%s C=%s)", m.resyncMax, cs.r, cs.e, cs.c)
		}
		return
	}
	cs.resyncRounds++
	if cs.oooCount == 0 && cs.r.Geq(cs.e) {
		// Only the commit lags: every event is applied but the accepted
		// proposal's flood was lost. Owe the network a proposal and nudge
		// ReceiveLSA so line 19 recomputes and floods a triggered one.
		cs.makeProposal = true
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id,
				"commit lag (R=%s C=%s): self-nudging a proposal (round %d)", cs.r, cs.c, cs.resyncRounds)
		}
		m.host.SelfNudge(cs.id)
	} else if nbs := m.host.Neighbors(); len(nbs) > 0 {
		nb := nbs[cs.resyncNext%len(nbs)]
		cs.resyncNext++
		m.metrics.ResyncRequests++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id,
				"requesting resync from %d (round %d, R=%s E=%s ooo=%d)", nb, cs.resyncRounds, cs.r, cs.e, cs.oooCount)
		}
		m.host.SendUnicast(nb, &lsa.ResyncRequest{Conn: cs.id, From: m.id, R: cs.r.Clone()})
	}
	m.maybeScheduleResync(cs)
}

// handleResyncRequest serves a neighbor's resync request from this switch's
// event log: replay every logged event beyond the requester's R, close with
// a pseudo-proposal carrying the installed topology, and let the request's
// R advertise any events the requester has seen that we have not. The
// wildcard lsa.AllConns serves every known connection — including dormant
// ones, whose counters and logs survive dormancy — which is how a restarted
// switch with no state at all rebuilds from a neighbor.
func (m *Machine) handleResyncRequest(req *lsa.ResyncRequest) {
	if req.Conn == lsa.AllConns {
		for _, id := range m.AllConnections() {
			m.serveResync(m.conns[id], req.From, req.R)
		}
		return
	}
	cs := m.conn(req.Conn)
	m.serveResync(cs, req.From, req.R)
	m.maybeScheduleResync(cs) // the E merge may have revealed our own gap
}

// serveResync replays this switch's event-log suffix beyond r (an empty or
// short r reads as all-zeros: replay everything) to the requesting neighbor
// and merges r into E, making gap detection symmetric.
func (m *Machine) serveResync(cs *connState, from topo.SwitchID, r stamp.Stamp) {
	if len(r) == len(cs.e) {
		cs.e.MaxInPlace(r)
	}
	rAt := func(x int) uint32 {
		if x >= 0 && x < len(r) {
			return r[x]
		}
		return 0
	}
	var batch []*lsa.MC
	for _, msg := range cs.eventLog {
		if msg.Stamp[int(msg.Src)] > rAt(int(msg.Src)) {
			batch = append(batch, msg)
		}
	}
	if cs.topology != nil {
		// The capstone must carry C — the stamp the topology was actually
		// committed at. Stamping it with E is the seeded-bug site for
		// MutationUncappedPseudoProposal (checker validation): post-heal E
		// dominates the requester's expectations, so a stale tree would be
		// accepted over fresher ones.
		capStamp := cs.c.Clone()
		if m.mutation == MutationUncappedPseudoProposal {
			capStamp = cs.e.Clone()
		}
		batch = append(batch, &lsa.MC{
			Src: m.id, Event: lsa.None, Conn: cs.id,
			Proposal: cs.topology, Stamp: capStamp,
		})
	}
	if len(batch) > 0 {
		m.metrics.ResyncResponses++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceResync, ChainID{}, cs.id, "replaying %d LSAs to %d", len(batch), from)
		}
		m.host.SendUnicast(from, &lsa.ResyncResponse{Conn: cs.id, From: m.id, Batch: batch})
	}
}

// ResumeTimers re-arms the gap-check timer for every connection that had
// one pending when the machine's state was captured: a snapshot taken with
// resyncScheduled set carries the flag, but the timer itself died with the
// old runtime, and nothing else would ever call ResyncFired for that gap
// again. Call once after restoring a machine into a new runtime.
func (m *Machine) ResumeTimers() {
	if !m.resync {
		return
	}
	for _, id := range m.AllConnections() {
		if m.conns[id].resyncScheduled {
			m.host.ArmResync(id)
		}
	}
}

// ReconcileNeighbor starts heal reconciliation with nb: for every known
// connection, send nb a resync request advertising this switch's R. The
// peer merges each R into its E (so it learns what we know that it does
// not) and replays its log suffix beyond it (so we learn what it knows).
// Called on both sides of a healed boundary, this converges the pair to
// the elementwise-max event set; replayed events are then re-flooded
// (see receiveLSA), so knowledge recovered at the boundary propagates to
// the interior of each former partition side as ordinary flooding.
//
// The hosting runtime must serialize this with every other Machine call.
func (m *Machine) ReconcileNeighbor(nb topo.SwitchID) {
	for _, id := range m.AllConnections() {
		cs := m.conns[id]
		m.metrics.Reconciles++
		m.metrics.ResyncRequests++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceHeal, ChainID{}, cs.id,
				"reconciling with %d after heal (R=%s E=%s C=%s)", nb, cs.r, cs.e, cs.c)
		}
		m.host.SendUnicast(nb, &lsa.ResyncRequest{Conn: cs.id, From: m.id, R: cs.r.Clone()})
		m.maybeScheduleResync(cs)
	}
}

// RequestFullResync is the cold-rejoin path of a restarted switch: ask
// every current neighbor to replay everything it knows about every
// connection (the lsa.AllConns wildcard with an empty R). Duplicate
// replays from multiple neighbors are harmless — per-origin ordered apply
// drops already-applied copies — and asking all neighbors tolerates
// neighbors that themselves hold no state. Recovering the switch's own
// event counter before originating new events is what makes a restart
// safe: a fresh event flooded with a reset counter would be stale-dropped
// network-wide.
//
// The hosting runtime must serialize this with every other Machine call.
func (m *Machine) RequestFullResync() {
	nbs := m.host.Neighbors()
	for _, nb := range nbs {
		m.metrics.Reconciles++
		m.metrics.ResyncRequests++
		if m.host.TraceEnabled() {
			m.host.Trace(TraceHeal, ChainID{}, lsa.AllConns,
				"cold rejoin: requesting full resync from %d", nb)
		}
		m.host.SendUnicast(nb, &lsa.ResyncRequest{Conn: lsa.AllConns, From: m.id, R: nil})
	}
}
