package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const (
	testTc     = 100 * time.Microsecond
	testPerHop = 2 * time.Microsecond
)

type fixture struct {
	k   *sim.Kernel
	net *flood.Network
	d   *Domain
}

func newFixture(t *testing.T, g *topo.Graph, opts ...func(*Config)) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	net, err := flood.New(k, g, testPerHop, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Net: net, ComputeTime: testTc, Algorithm: route.SPH{}}
	for _, o := range opts {
		o(&cfg)
	}
	d, err := NewDomain(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{k: k, net: net, d: d}
}

func (f *fixture) run(t *testing.T) {
	t.Helper()
	if _, err := f.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func lineFixture(t *testing.T, n int) *fixture {
	t.Helper()
	g, err := topo.Line(n, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return newFixture(t, g)
}

func TestNewDomainValidation(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 0, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(k, Config{Algorithm: route.SPH{}}); err == nil {
		t.Error("missing Net accepted")
	}
	if _, err := NewDomain(k, Config{Net: net}); err == nil {
		t.Error("missing Algorithm accepted")
	}
	if _, err := NewDomain(k, Config{Net: net, Algorithm: route.SPH{}, ComputeTime: -1}); err == nil {
		t.Error("negative Tc accepted")
	}
}

func TestSingleJoinCreatesConnectionEverywhere(t *testing.T) {
	f := lineFixture(t, 4)
	f.d.Join(0, 1, 7, mctree.SenderReceiver)
	f.run(t)

	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	for s := 0; s < 4; s++ {
		snap, ok := f.d.Switch(topo.SwitchID(s)).Connection(7)
		if !ok {
			t.Fatalf("switch %d has no state for conn 7", s)
		}
		if len(snap.Members) != 1 || snap.Members[1] != mctree.SenderReceiver {
			t.Errorf("switch %d members = %v", s, snap.Members)
		}
		if snap.Topology == nil || snap.Topology.NumEdges() != 0 {
			t.Errorf("switch %d topology = %v, want empty tree", s, snap.Topology)
		}
	}
	m := f.d.Metrics()
	if m.Events != 1 || m.Computations != 1 {
		t.Errorf("events=%d computations=%d, want 1,1", m.Events, m.Computations)
	}
	if f.net.Floodings() != 1 {
		t.Errorf("floodings = %d, want 1", f.net.Floodings())
	}
}

func TestSparseEventsCostOneComputationAndFloodEach(t *testing.T) {
	// This is the paper's Experiment 3 in miniature: well-separated events
	// are handled individually — one computation, one flooding per event.
	f := lineFixture(t, 5)
	gap := 10 * time.Millisecond // ≫ round
	f.d.Join(0*gap, 0, 1, mctree.SenderReceiver)
	f.d.Join(1*gap, 4, 1, mctree.SenderReceiver)
	f.d.Join(2*gap, 2, 1, mctree.SenderReceiver)
	f.d.Leave(3*gap, 4, 1)
	f.run(t)

	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	m := f.d.Metrics()
	if m.Events != 4 {
		t.Fatalf("events = %d", m.Events)
	}
	if m.Computations != 4 {
		t.Errorf("computations = %d, want 4 (one per sparse event)", m.Computations)
	}
	if f.net.Floodings() != 4 {
		t.Errorf("floodings = %d, want 4", f.net.Floodings())
	}
	if m.Withdrawn != 0 {
		t.Errorf("withdrawn = %d, want 0 for sparse events", m.Withdrawn)
	}
	snap, _ := f.d.Switch(0).Connection(1)
	if len(snap.Members) != 2 {
		t.Errorf("final members = %v", snap.Members)
	}
	if snap.Topology == nil || snap.Topology.NumEdges() != 2 {
		t.Errorf("final topology = %v, want path 0-1-2", snap.Topology)
	}
}

func TestBurstyEventsConverge(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(30, 17))
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	// 8 conflicting joins within a fraction of Tc.
	rng := rand.New(rand.NewSource(3))
	joined := map[topo.SwitchID]bool{}
	for len(joined) < 8 {
		s := topo.SwitchID(rng.Intn(30))
		if joined[s] {
			continue
		}
		joined[s] = true
		f.d.Join(sim.Time(rng.Intn(int(testTc/2))), s, 9, mctree.SenderReceiver)
	}
	f.run(t)

	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	snap, _ := f.d.Switch(0).Connection(9)
	if len(snap.Members) != 8 {
		t.Fatalf("members = %d, want 8", len(snap.Members))
	}
	if snap.Topology == nil {
		t.Fatal("no topology installed")
	}
	if err := snap.Topology.Validate(g, snap.Members); err != nil {
		t.Errorf("topology invalid: %v", err)
	}
	m := f.d.Metrics()
	if m.Computations >= 8*30 {
		t.Errorf("computations = %d — looks like per-switch recomputation (brute force)", m.Computations)
	}
	t.Logf("burst of 8 events: %d computations, %d floodings, %d withdrawn",
		m.Computations, f.net.Floodings(), m.Withdrawn)
}

func TestLastMemberLeaveDestroysState(t *testing.T) {
	f := lineFixture(t, 3)
	f.d.Join(0, 0, 5, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 2, 5, mctree.SenderReceiver)
	f.d.Leave(2*time.Millisecond, 0, 5)
	f.d.Leave(3*time.Millisecond, 2, 5)
	f.run(t)

	for s := 0; s < 3; s++ {
		if ids := f.d.Switch(topo.SwitchID(s)).Connections(); len(ids) != 0 {
			t.Errorf("switch %d still holds live connections %v", s, ids)
		}
	}
	if err := f.d.CheckConverged(); err != nil {
		t.Errorf("converged check after destruction: %v", err)
	}
}

func TestConnectionResurrection(t *testing.T) {
	f := lineFixture(t, 3)
	f.d.Join(0, 0, 5, mctree.SenderReceiver)
	f.d.Leave(time.Millisecond, 0, 5)
	f.d.Join(2*time.Millisecond, 1, 5, mctree.Receiver)
	f.run(t)

	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	snap, ok := f.d.Switch(2).Connection(5)
	if !ok {
		t.Fatal("no state after resurrection")
	}
	if len(snap.Members) != 1 || snap.Members[1] != mctree.Receiver {
		t.Errorf("members = %v", snap.Members)
	}
	// Event counters persisted across the dormant phase.
	if snap.R.Sum() != 3 {
		t.Errorf("R sum = %d, want 3 (join+leave+join)", snap.R.Sum())
	}
}

func TestLinkFailureRepairsTopology(t *testing.T) {
	// Ring so the tree can route around the failure.
	g, err := topo.Ring(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	f.d.Join(0, 0, 3, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 1, 3, mctree.SenderReceiver)
	f.d.Join(2*time.Millisecond, 2, 3, mctree.SenderReceiver)
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("setup not converged: %v", err)
	}
	snap, _ := f.d.Switch(0).Connection(3)
	if !snap.Topology.Has(0, 1) || !snap.Topology.Has(1, 2) {
		t.Fatalf("unexpected initial tree %v", snap.Topology)
	}
	preNonMC := f.d.Metrics().NonMCLSAs
	preMC := f.d.Metrics().MCLSAs

	f.d.FailLink(5*time.Millisecond, 1, 2)
	f.run(t)

	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged after failure: %v", err)
	}
	snap, _ = f.d.Switch(4).Connection(3)
	if snap.Topology.Has(1, 2) {
		t.Errorf("repaired tree still uses failed link: %v", snap.Topology)
	}
	if err := snap.Topology.Validate(g, snap.Members); err != nil {
		t.Errorf("repaired tree invalid: %v", err)
	}
	m := f.d.Metrics()
	if m.NonMCLSAs != preNonMC+1 {
		t.Errorf("non-MC LSAs = %d, want exactly one more than %d", m.NonMCLSAs, preNonMC)
	}
	if m.MCLSAs <= preMC {
		t.Error("no MC LSA flooded for the affected connection")
	}
	// Every switch's unicast image knows the link is down.
	for s := 0; s < 6; s++ {
		l, _ := f.d.Switch(topo.SwitchID(s)).Unicast().Image().Link(1, 2)
		if !l.Down {
			t.Errorf("switch %d image missed the link failure", s)
		}
	}
}

func TestLinkFailureOffTreeTriggersNoMCLSAs(t *testing.T) {
	g, err := topo.Ring(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	f.d.Join(0, 0, 3, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 1, 3, mctree.SenderReceiver)
	f.run(t)
	preMC := f.d.Metrics().MCLSAs
	// Link (3,4) is not on the 0-1 tree.
	f.d.FailLink(5*time.Millisecond, 3, 4)
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	if m := f.d.Metrics(); m.MCLSAs != preMC {
		t.Errorf("MC LSAs = %d, want unchanged %d for off-tree failure", m.MCLSAs, preMC)
	}
}

func TestAllThreeKindsConverge(t *testing.T) {
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[lsa.ConnID]mctree.Kind{
		1: mctree.Symmetric,
		2: mctree.ReceiverOnly,
		3: mctree.Asymmetric,
	}
	f := newFixture(t, g, func(c *Config) { c.Kinds = kinds })

	// Symmetric teleconference.
	f.d.Join(0, 0, 1, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 8, 1, mctree.SenderReceiver)
	// Receiver-only group.
	f.d.Join(2*time.Millisecond, 2, 2, mctree.Receiver)
	f.d.Join(3*time.Millisecond, 6, 2, mctree.Receiver)
	// Asymmetric broadcast: sender first, then receivers.
	f.d.Join(4*time.Millisecond, 4, 3, mctree.Sender)
	f.d.Join(5*time.Millisecond, 0, 3, mctree.Receiver)
	f.d.Join(6*time.Millisecond, 8, 3, mctree.Receiver)
	f.run(t)

	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	for conn, kind := range kinds {
		snap, ok := f.d.Switch(0).Connection(conn)
		if !ok {
			t.Fatalf("conn %d missing", conn)
		}
		if snap.Kind != kind || snap.Topology.Kind != kind {
			t.Errorf("conn %d kind = %v/%v, want %v", conn, snap.Kind, snap.Topology.Kind, kind)
		}
	}
	asym, _ := f.d.Switch(3).Connection(3)
	if asym.Topology.Root != 4 {
		t.Errorf("asymmetric tree root = %d, want sender 4", asym.Topology.Root)
	}
}

func TestMultipleConnectionsAreIndependent(t *testing.T) {
	f := lineFixture(t, 5)
	for conn := lsa.ConnID(1); conn <= 3; conn++ {
		f.d.Join(0, 0, conn, mctree.SenderReceiver)
		f.d.Join(sim.Time(conn)*50*time.Microsecond, 4, conn, mctree.SenderReceiver)
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	for conn := lsa.ConnID(1); conn <= 3; conn++ {
		snap, ok := f.d.Switch(2).Connection(conn)
		if !ok || len(snap.Members) != 2 {
			t.Errorf("conn %d: %v", conn, snap.Members)
		}
	}
}

func TestIncrementalAlgorithmUnderProtocol(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(25, 5))
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g, func(c *Config) { c.Algorithm = route.NewIncremental(route.SPH{}) })
	rng := rand.New(rand.NewSource(1))
	at := sim.Time(0)
	members := map[topo.SwitchID]bool{}
	for i := 0; i < 6; i++ {
		s := topo.SwitchID(rng.Intn(25))
		if members[s] {
			continue
		}
		members[s] = true
		f.d.Join(at, s, 1, mctree.SenderReceiver)
		at += 3 * time.Millisecond
	}
	// A couple of leaves, in deterministic order.
	ids := make([]topo.SwitchID, 0, len(members))
	for s := range members {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, s := range ids {
		if len(members) <= 3 {
			break
		}
		f.d.Leave(at, s, 1)
		at += 3 * time.Millisecond
		delete(members, s)
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	snap, _ := f.d.Switch(0).Connection(1)
	if err := snap.Topology.Validate(g, snap.Members); err != nil {
		t.Errorf("final incremental topology invalid: %v", err)
	}
}

func TestEGeqRInvariantThroughout(t *testing.T) {
	// E must dominate R at every switch whenever the simulation is paused.
	g, err := topo.Waxman(topo.DefaultGenConfig(20, 8))
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		f.d.Join(sim.Time(rng.Intn(int(testTc))), topo.SwitchID(rng.Intn(20)), 2, mctree.SenderReceiver)
	}
	deadline := sim.Time(time.Second)
	for step := sim.Time(50 * time.Microsecond); step < deadline; step += 50 * time.Microsecond {
		if _, err := f.k.RunUntil(step); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 20; s++ {
			if snap, ok := f.d.Switch(topo.SwitchID(s)).Connection(2); ok {
				if !snap.E.Geq(snap.R) {
					t.Fatalf("at %v switch %d: E=%s does not dominate R=%s", step, s, snap.E, snap.R)
				}
			}
		}
		if f.k.Pending() == 0 {
			break
		}
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (Metrics, uint64, string) {
		g, err := topo.Waxman(topo.DefaultGenConfig(20, 21))
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		defer k.Shutdown()
		net, err := flood.New(k, g, testPerHop, flood.Direct)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDomain(k, Config{Net: net, ComputeTime: testTc, Algorithm: route.SPH{}})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 7; i++ {
			d.Join(sim.Time(rng.Intn(int(testTc))), topo.SwitchID(rng.Intn(20)), 3, mctree.SenderReceiver)
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckConverged(); err != nil {
			t.Fatal(err)
		}
		snap, _ := d.Switch(0).Connection(3)
		return *d.Metrics(), net.Floodings(), snap.Topology.String()
	}
	m1, fl1, t1 := runOnce()
	m2, fl2, t2 := runOnce()
	// ComputeNanos is wall clock, deterministic protocol or not.
	m1.ComputeNanos, m2.ComputeNanos = 0, 0
	if m1 != m2 || fl1 != fl2 || t1 != t2 {
		t.Errorf("replay diverged: %+v/%d/%s vs %+v/%d/%s", m1, fl1, t1, m2, fl2, t2)
	}
}

func TestTracerObservesProtocol(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tr := &CollectTracer{}
	f := newFixture(t, g, func(c *Config) { c.Tracer = tr })
	f.d.Join(0, 0, 1, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 2, 1, mctree.SenderReceiver)
	f.run(t)

	if tr.Count(TraceEvent) != 2 {
		t.Errorf("event traces = %d", tr.Count(TraceEvent))
	}
	if tr.Count(TraceCompute) != 2 || tr.Count(TraceFlood) != 2 {
		t.Errorf("compute=%d flood=%d", tr.Count(TraceCompute), tr.Count(TraceFlood))
	}
	if tr.Count(TraceInstall) == 0 || tr.Count(TraceRecv) == 0 {
		t.Error("missing install/recv traces")
	}
	for _, e := range tr.Entries {
		if e.String() == "" {
			t.Fatal("empty trace string")
		}
	}
}

func TestHopByHopFloodingMode(t *testing.T) {
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, testPerHop, flood.HopByHop)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{Net: net, ComputeTime: testTc, Algorithm: route.SPH{}})
	if err != nil {
		t.Fatal(err)
	}
	d.Join(0, 0, 1, mctree.SenderReceiver)
	d.Join(50*time.Microsecond, 8, 1, mctree.SenderReceiver)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatalf("not converged over hop-by-hop flooding: %v", err)
	}
}

func TestLinkRecoveryReoptimizesNothingButImages(t *testing.T) {
	g, err := topo.Ring(5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	f.d.Join(0, 0, 1, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 2, 1, mctree.SenderReceiver)
	f.d.FailLink(2*time.Millisecond, 0, 1)
	f.d.RestoreLink(10*time.Millisecond, 0, 1)
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("not converged: %v", err)
	}
	for s := 0; s < 5; s++ {
		l, _ := f.d.Switch(topo.SwitchID(s)).Unicast().Image().Link(0, 1)
		if l.Down {
			t.Errorf("switch %d image missed recovery", s)
		}
	}
}
