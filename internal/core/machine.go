package core

import (
	"fmt"
	"time"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/lsr"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// This file is the pure D-GMC state machine: one switch's EventHandler and
// ReceiveLSA entities (Figures 4 and 5 of the paper) plus gap recovery,
// with every runtime dependency — flooding, unicast, timers, the cost of a
// topology computation — abstracted behind the Host interface. The same
// Machine runs under the discrete-event simulator (internal/sim via the
// Switch adapter in this package) and under the live concurrent runtime
// (internal/rt), so the protocol is exercised, never forked.

// LocalEvent is what the hosting runtime injects into a switch's event
// path: a membership change for a connection, or a locally detected link
// event (Kind == lsa.Link, with Link describing the change).
type LocalEvent struct {
	Conn lsa.ConnID
	Kind lsa.Event // Join, Leave, or Link
	Role mctree.Role
	Link lsa.LinkChange // for Link events
}

// ResyncNudge is a self-addressed receive-path entry: it runs ReceiveLSA
// with an empty batch, giving Figure 5 line 19 a chance to fire after gap
// recovery set makeProposal (commit-lag recovery). Runtimes deliver it to
// their own switch's receive path when Host.SelfNudge is called.
type ResyncNudge struct{ Conn lsa.ConnID }

// Host abstracts everything a Machine needs from its runtime. The
// simulator implements it with virtual time and the flood.Network fabric;
// the live runtime (internal/rt) implements it with goroutines, real
// timers, and a wire transport.
//
// All methods are invoked synchronously from within Machine calls; a Host
// must not call back into the Machine from them (except from the deferred
// callbacks it schedules for ArmResync and SelfNudge).
type Host interface {
	// FloodMC floods an MC LSA network-wide.
	FloodMC(m *lsa.MC)
	// FloodNonMC floods a non-MC (link-state) LSA network-wide.
	FloodNonMC(nm *lsa.NonMC)
	// SendUnicast sends a resync message point-to-point to a neighbor.
	SendUnicast(to topo.SwitchID, payload any)
	// HoldCompute charges the cost of one topology computation (the
	// paper's Tc). The simulator suspends the calling process for Tc of
	// virtual time — other entities run meanwhile, which is exactly the
	// window the protocol's withdraw checks exist for. Live runtimes
	// usually make this a no-op: the real computation takes real time.
	// ctx is the opaque token passed into HandleLocalEvent/ReceiveBatch.
	HoldCompute(ctx any)
	// PendingMC reports whether the switch's receive queue currently
	// holds an MC LSA for conn (Figure 5 line 22).
	PendingMC(conn lsa.ConnID) bool
	// Neighbors lists the switch's current direct neighbors.
	Neighbors() []topo.SwitchID
	// FabricLinkChanged tells the runtime a locally detected link event
	// was applied. The simulator mirrors it into the shared fabric graph
	// so floods route around failures; live runtimes, where each node
	// owns only its image, may ignore it.
	FabricLinkChanged(change lsa.LinkChange)
	// ArmResync schedules Machine.ResyncFired(conn) to run once after the
	// runtime's resync timeout. Called only when the Machine was built
	// with Resync enabled.
	ArmResync(conn lsa.ConnID)
	// SelfNudge delivers ResyncNudge{conn} to this switch's own receive
	// path (a future ReceiveBatch).
	SelfNudge(conn lsa.ConnID)
	// NoteInstall records that a topology was installed (convergence
	// bookkeeping).
	NoteInstall()
	// ForwardingChanged tells the runtime that forwarding-relevant state
	// for conn (installed topology, membership, or dormancy) may have
	// changed, or — with conn == lsa.AllConns — that the unicast link-state
	// image changed, invalidating contact routes for every connection.
	// Hosts with a data plane recompile their FIB from ForwardingState
	// after the current Machine call returns (not from inside the hook);
	// control-plane-only hosts ignore it.
	ForwardingChanged(conn lsa.ConnID)
	// Trace observes protocol activity; implementations may drop entries.
	// chain names the causal chain the step belongs to (zero when no
	// single local event caused it).
	Trace(kind TraceKind, chain ChainID, conn lsa.ConnID, format string, args ...any)
	// TraceEnabled reports whether Trace currently does anything. The
	// machine's hot paths consult it before building Trace arguments — the
	// variadic call boxes every argument even when the host drops the
	// entry, and those boxes were a measurable share of per-step garbage.
	TraceEnabled() bool
}

// Mutation selects a deliberately seeded protocol bug. The schedule
// exploration harness (internal/explore) uses mutations to validate its
// own invariant checks: a checker that cannot catch a known-broken
// timestamp comparison cannot be trusted to certify the correct one.
// Production configurations leave it at MutationNone.
type Mutation uint8

const (
	// MutationNone runs the protocol as specified.
	MutationNone Mutation = iota
	// MutationAcceptStaleProposal drops the vector-timestamp dominance
	// check on proposal acceptance (Figure 5 line 11): every proposal-
	// carrying event LSA is accepted, so a proposal based on fewer events
	// can overwrite a fresher topology — and, because taking the accept
	// branch skips the inconsistency check, no switch owes the network a
	// correction afterwards. Under concurrent events, specific delivery
	// orders then quiesce with switches installed on different trees.
	MutationAcceptStaleProposal
	// MutationIgnoreEventOrder disables per-origin ordered application of
	// event LSAs (the stale-drop/buffer machinery of applyEventLSA):
	// every arriving copy is applied to the member list immediately, as if
	// the fabric were trusted never to reorder or duplicate. A leave
	// delivered before the join it follows then resurrects the member at
	// that switch when the join's copy lands, and specific delivery orders
	// quiesce with member lists diverged.
	MutationIgnoreEventOrder
	// MutationUncappedPseudoProposal stamps the pseudo-proposal that
	// closes a resync replay (serveResync) with the server's expectation
	// vector E instead of its committed stamp C. After a heal the server's
	// E covers the requester's knowledge too, so a stale installed
	// topology gains a stamp that dominates everything the requester will
	// ever expect and overwrites fresher trees.
	MutationUncappedPseudoProposal
)

// Valid reports whether mu is a defined mutation.
func (mu Mutation) Valid() bool { return mu <= MutationUncappedPseudoProposal }

// String implements fmt.Stringer.
func (mu Mutation) String() string {
	switch mu {
	case MutationNone:
		return "none"
	case MutationAcceptStaleProposal:
		return "accept-stale"
	case MutationIgnoreEventOrder:
		return "ignore-event-order"
	case MutationUncappedPseudoProposal:
		return "uncapped-pseudo-proposal"
	default:
		return fmt.Sprintf("Mutation(%d)", uint8(mu))
	}
}

// Mutations returns every defined mutation, MutationNone first.
func Mutations() []Mutation {
	var out []Mutation
	for mu := MutationNone; mu.Valid(); mu++ {
		out = append(out, mu)
	}
	return out
}

// ParseMutation resolves a mutation by its String name.
func ParseMutation(name string) (Mutation, error) {
	for _, mu := range Mutations() {
		if mu.String() == name {
			return mu, nil
		}
	}
	return MutationNone, fmt.Errorf("core: unknown mutation %q", name)
}

// MachineConfig configures one switch's protocol state machine.
type MachineConfig struct {
	// ID is the switch's network ID. Required to be in [0, Graph.NumSwitches()).
	ID topo.SwitchID
	// Graph is the configured network topology; the machine clones it
	// into its local LSR image. Required.
	Graph *topo.Graph
	// Algorithm computes MC topologies. Required.
	Algorithm route.Algorithm
	// Kinds maps connection IDs to their MC type (default Symmetric).
	Kinds map[lsa.ConnID]mctree.Kind
	// ReoptimizeThreshold enables §3.5 re-optimization on link recovery
	// (see Config.ReoptimizeThreshold). Zero disables.
	ReoptimizeThreshold float64
	// Resync enables gap recovery; the timeout itself lives in the Host
	// (virtual for the simulator, wall-clock for live runtimes).
	Resync bool
	// ResyncMaxRounds bounds resync requests per connection per gap
	// (default 64 when resync is enabled).
	ResyncMaxRounds int
	// Metrics receives protocol counters. The simulator shares one
	// Metrics across the domain; live runtimes keep one per node. A nil
	// Metrics is allocated internally.
	Metrics *Metrics
	// Mutation seeds a known protocol bug for checker validation
	// (MutationNone for correct operation).
	Mutation Mutation
}

// Machine is one switch's D-GMC protocol state: its unicast LSR instance,
// its per-connection protocol state, and the EventHandler/ReceiveLSA
// logic. A Machine is not safe for concurrent use; the hosting runtime
// must serialize calls into it (the simulator by running one process at a
// time, the live runtime with a per-node mutex).
type Machine struct {
	id        topo.SwitchID
	host      Host
	uni       *lsr.Instance
	conns     map[lsa.ConnID]*connState
	n         int
	alg       route.Algorithm
	kinds     map[lsa.ConnID]mctree.Kind
	reopt     float64
	resync    bool
	resyncMax int
	metrics   *Metrics
	mutation  Mutation
}

// NewMachine builds a switch's protocol state machine bound to host.
func NewMachine(cfg MachineConfig, host Host) (*Machine, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: MachineConfig.Graph is required")
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("core: MachineConfig.Algorithm is required")
	}
	if host == nil {
		return nil, fmt.Errorf("core: nil Host")
	}
	if cfg.ReoptimizeThreshold < 0 {
		return nil, fmt.Errorf("core: negative re-optimization threshold %v", cfg.ReoptimizeThreshold)
	}
	if cfg.ResyncMaxRounds < 0 {
		return nil, fmt.Errorf("core: negative resync round limit %d", cfg.ResyncMaxRounds)
	}
	if cfg.ResyncMaxRounds == 0 {
		cfg.ResyncMaxRounds = 64
	}
	if !cfg.Mutation.Valid() {
		return nil, fmt.Errorf("core: unknown mutation %d", cfg.Mutation)
	}
	uni, err := lsr.NewInstance(cfg.ID, cfg.Graph)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	return &Machine{
		id:        cfg.ID,
		host:      host,
		uni:       uni,
		conns:     make(map[lsa.ConnID]*connState),
		n:         cfg.Graph.NumSwitches(),
		alg:       cfg.Algorithm,
		kinds:     cfg.Kinds,
		reopt:     cfg.ReoptimizeThreshold,
		resync:    cfg.Resync,
		resyncMax: cfg.ResyncMaxRounds,
		metrics:   cfg.Metrics,
		mutation:  cfg.Mutation,
	}, nil
}

// ID returns the switch's network ID.
func (m *Machine) ID() topo.SwitchID { return m.id }

// Unicast returns the switch's LSR instance (its local network image).
func (m *Machine) Unicast() *lsr.Instance { return m.uni }

// ForwardingState invokes fn for every live (non-dormant) connection in
// ascending ID order with the state the data plane compiles from: MC kind,
// membership, and the installed topology (nil when none is installed yet).
// The members map and tree are the machine's own — fn must only read them
// and must not retain them beyond the call.
func (m *Machine) ForwardingState(fn func(conn lsa.ConnID, kind mctree.Kind, members mctree.Members, t *mctree.Tree)) {
	for _, id := range sortedConnIDs(m.conns) {
		cs := m.conns[id]
		if cs.dormant {
			continue
		}
		fn(id, cs.kind, cs.members, cs.topology)
	}
}

// Metrics returns the machine's counters.
func (m *Machine) Metrics() *Metrics { return m.metrics }

// Connection returns a snapshot of the switch's state for conn, or
// ok=false if the switch holds no state for it.
func (m *Machine) Connection(conn lsa.ConnID) (Snapshot, bool) {
	cs, ok := m.conns[conn]
	if !ok {
		return Snapshot{}, false
	}
	return cs.snapshot(), true
}

// Connections lists the IDs of live (non-dormant) connections at this
// switch.
func (m *Machine) Connections() []lsa.ConnID {
	out := make([]lsa.ConnID, 0, len(m.conns))
	for id, cs := range m.conns {
		if !cs.dormant {
			out = append(out, id)
		}
	}
	return out
}

// kindOf returns the declared MC type for conn (default Symmetric).
func (m *Machine) kindOf(conn lsa.ConnID) mctree.Kind {
	if k, ok := m.kinds[conn]; ok {
		return k
	}
	return mctree.Symmetric
}

// conn returns (allocating if needed) the state for connection id. Per
// §3.4, switches allocate MC data structures when they first hear of the
// connection.
func (m *Machine) conn(id lsa.ConnID) *connState {
	cs, ok := m.conns[id]
	if !ok {
		cs = newConnState(id, m.kindOf(id), m.n)
		m.conns[id] = cs
	}
	return cs
}

// updateDormancy destroys the connection's heavy state when the member
// list has emptied and no LSAs are known to be outstanding (§3.4). The
// event counters persist (see connState.dormant); a later event resurrects
// the connection.
func (m *Machine) updateDormancy(cs *connState, chain ChainID) {
	if len(cs.members) == 0 && cs.r.Geq(cs.e) {
		if !cs.dormant {
			cs.dormant = true
			cs.topology = nil
			cs.lastDelta = nil
			if m.host.TraceEnabled() {
				m.host.Trace(TraceDestroy, chain, cs.id, "connection state destroyed")
			}
		}
		return
	}
	if cs.dormant && len(cs.members) > 0 {
		cs.dormant = false
	}
}

// HandleLocalEvent dispatches one injected event. A membership event
// invokes EventHandler once; a link event floods one non-MC LSA and then
// invokes EventHandler once per affected connection (Figure 2). ctx is an
// opaque token handed through to Host.HoldCompute (the simulator threads
// its *sim.Process here; live runtimes may pass nil).
func (m *Machine) HandleLocalEvent(ctx any, ev LocalEvent) {
	switch ev.Kind {
	case lsa.Join, lsa.Leave:
		m.eventHandler(ctx, ev.Kind, ev.Role, m.conn(ev.Conn))
	case lsa.Link:
		nm, err := m.uni.ApplyLocalEvent(ev.Link)
		if err != nil {
			if m.host.TraceEnabled() {
				m.host.Trace(TraceError, ChainID{}, ev.Conn, "local link event: %v", err)
			}
			return
		}
		// Keep the runtime's fabric in sync so floods route around the
		// failure (the physical network changed, not just images).
		m.host.FabricLinkChanged(ev.Link)
		m.host.ForwardingChanged(lsa.AllConns)
		m.host.FloodNonMC(nm)
		m.metrics.NonMCLSAs++
		// One MC LSA per connection whose topology uses the affected link.
		for _, cs := range m.affectedConns(ev.Link) {
			cs.lastDelta = nil
			m.eventHandler(ctx, lsa.Link, 0, cs)
		}
		// §3.5 re-optimization: a recovered link may offer better trees.
		if !ev.Link.Down && m.reopt > 0 {
			m.reoptimize(ctx)
		}
	}
}

// reoptimize implements §3.5's policy for non-adverse changes: estimate a
// fresh topology for each live connection on the improved image, and
// signal a link event (re-converging the network) only when the installed
// tree deviates from the fresh one by more than the configured threshold.
func (m *Machine) reoptimize(ctx any) {
	for _, id := range sortedConnIDs(m.conns) {
		cs := m.conns[id]
		if cs.dormant || cs.topology == nil || len(cs.members) < 2 {
			continue
		}
		m.metrics.ReoptChecks++
		m.metrics.Computations++
		members := m.filterReachable(cs.members.Clone())
		m.host.HoldCompute(ctx)
		start := time.Now()
		fresh, err := m.alg.Compute(m.uni.Image(), cs.kind, members)
		m.metrics.ComputeNanos += uint64(time.Since(start))
		if err != nil || cs.topology == nil {
			continue
		}
		cur := float64(cs.topology.Cost(m.uni.Image()))
		if cur <= float64(fresh.Cost(m.uni.Image()))*(1+m.reopt) {
			continue // within tolerance of optimal: leave the tree alone
		}
		if m.host.TraceEnabled() {
			m.host.Trace(TraceCompute, ChainID{}, cs.id, "re-optimizing (%.0f%% over fresh cost)",
				100*(cur/float64(fresh.Cost(m.uni.Image()))-1))
		}
		cs.lastDelta = nil
		m.eventHandler(ctx, lsa.Link, 0, cs)
	}
}

// affectedConns returns connections whose installed topology uses the
// changed link, in ascending connection order for determinism.
func (m *Machine) affectedConns(change lsa.LinkChange) []*connState {
	var out []*connState
	for _, id := range sortedConnIDs(m.conns) {
		cs := m.conns[id]
		if cs.topology != nil && cs.topology.Has(change.A, change.B) {
			out = append(out, cs)
		}
	}
	return out
}

func sortedConnIDs(m map[lsa.ConnID]*connState) []lsa.ConnID {
	out := make([]lsa.ConnID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// eventHandler is Figure 4 of the paper: handle one local event for one
// connection.
func (m *Machine) eventHandler(ctx any, event lsa.Event, role mctree.Role, cs *connState) {
	x := int(m.id)
	m.metrics.Events++
	// This event is the root of a new causal chain: its flooded LSA will
	// carry Stamp[x] == cs.r[x]+1, so remote steps derive the same ID.
	chain := ChainID{Origin: m.id, Seq: cs.r[x] + 1}
	if m.host.TraceEnabled() {
		m.host.Trace(TraceEvent, chain, cs.id, "local %s event", event)
	}

	// Line 1: R[x]++, E[x]++.
	cs.r.Inc(x)
	cs.e.Inc(x)
	// Apply the membership change locally (remote switches learn it from
	// the flooded LSA; Figure 5 line 8 is the receiving-side mirror).
	cs.applyMembership(event, x, role)

	// Line 2: any known outstanding LSAs?
	if cs.r.Geq(cs.e) {
		// Lines 4-5: snapshot R, compute a proposal (takes Tc).
		oldR := cs.r.Clone()
		proposal, err := m.computeTopology(ctx, chain, cs)
		if err != nil {
			if m.host.TraceEnabled() {
				m.host.Trace(TraceError, chain, cs.id, "compute: %v", err)
			}
			proposal = nil
		}
		// Line 6: is the proposal still valid?
		if proposal != nil && cs.r.Equal(oldR) {
			// Lines 7-10: flood proposal, install it. The message owns oldR
			// from here (it is a snapshot never touched again locally, and
			// LSA stamps are read-only on every receive path).
			msg := &lsa.MC{Src: m.id, Event: event, Role: role, Conn: cs.id, Proposal: proposal, Stamp: oldR}
			m.floodMC(chain, msg)
			cs.logEvent(msg)
			cs.c.CopyFrom(oldR)
			cs.makeProposal = false
			m.install(cs, chain, proposal, "event-handler")
		} else {
			// Lines 12-13: withdraw; flood the bare event, defer to
			// ReceiveLSA.
			msg := &lsa.MC{Src: m.id, Event: event, Role: role, Conn: cs.id, Proposal: nil, Stamp: oldR}
			m.floodMC(chain, msg)
			cs.logEvent(msg)
			cs.makeProposal = true
			m.metrics.Withdrawn++
			if m.host.TraceEnabled() {
				m.host.Trace(TraceWithdraw, chain, cs.id, "event-handler proposal withdrawn")
			}
		}
	} else {
		// Lines 16-17: outstanding LSAs exist; flood the bare event and
		// defer to ReceiveLSA.
		msg := &lsa.MC{Src: m.id, Event: event, Role: role, Conn: cs.id, Proposal: nil, Stamp: cs.r.Clone()}
		m.floodMC(chain, msg)
		cs.logEvent(msg)
		cs.makeProposal = true
	}
	m.updateDormancy(cs, chain)
	m.host.ForwardingChanged(cs.id)
	m.maybeScheduleResync(cs)
}

// ReceiveBatch demultiplexes a drained receive-queue batch: non-MC LSAs go
// to the unicast substrate; MC LSAs are grouped per connection and handed
// to ReceiveLSA (which the paper presents per-MC). Resync traffic (unicast
// requests/replays between neighbors, and self-addressed nudges) rides the
// same queue: replayed LSAs join the per-connection groups, requests are
// served after ReceiveLSA has consumed the batch.
//
// Accepted batch entries: flood.Delivery (payload *lsa.MC, *lsa.NonMC, or
// their []byte wire encoding), flood.Unicast (payload *lsa.ResyncRequest
// or *lsa.ResyncResponse), bare *lsa.MC / *lsa.NonMC / *lsa.ResyncRequest /
// *lsa.ResyncResponse, and ResyncNudge. Anything else is ignored.
func (m *Machine) ReceiveBatch(ctx any, batch []any) {
	perConn := make(map[lsa.ConnID][]*lsa.MC)
	var order []lsa.ConnID
	var requests []*lsa.ResyncRequest
	var replayed map[*lsa.MC]bool
	addMC := func(mc *lsa.MC) {
		if _, seen := perConn[mc.Conn]; !seen {
			order = append(order, mc.Conn)
		}
		perConn[mc.Conn] = append(perConn[mc.Conn], mc)
	}
	handleNonMC := func(nm *lsa.NonMC) {
		changed, err := m.uni.HandleLSA(nm)
		if err != nil {
			if m.host.TraceEnabled() {
				m.host.Trace(TraceError, ChainID{}, 0, "unicast LSA: %v", err)
			}
			return
		}
		if changed {
			m.host.ForwardingChanged(lsa.AllConns)
		}
	}
	var consume func(raw any)
	consume = func(raw any) {
		switch v := raw.(type) {
		case ResyncNudge:
			if _, seen := perConn[v.Conn]; !seen {
				order = append(order, v.Conn)
				perConn[v.Conn] = nil
			}
		case *lsa.ResyncRequest:
			requests = append(requests, v)
		case *lsa.ResyncResponse:
			for _, mc := range v.Batch {
				if replayed == nil {
					replayed = make(map[*lsa.MC]bool)
				}
				replayed[mc] = true
				addMC(mc)
			}
		case flood.Unicast:
			consume(v.Payload)
		case flood.Delivery:
			payload := v.Payload
			if wire, ok := payload.([]byte); ok {
				mc, nm, err := lsa.Unmarshal(wire)
				if err != nil {
					if m.host.TraceEnabled() {
						m.host.Trace(TraceError, ChainID{}, 0, "decode LSA: %v", err)
					}
					return
				}
				if mc != nil {
					payload = mc
				} else {
					payload = nm
				}
			}
			consume(payload)
		case *lsa.NonMC:
			handleNonMC(v)
		case *lsa.MC:
			addMC(v)
		}
	}
	for _, raw := range batch {
		consume(raw)
	}
	for _, conn := range order {
		m.receiveLSA(ctx, m.conn(conn), perConn[conn], replayed)
	}
	for _, req := range requests {
		m.handleResyncRequest(req)
	}
}

// receiveLSA is Figure 5 of the paper: process a batch of LSAs for one
// connection, then decide whether to compute and flood a proposal.
// replayed marks batch entries that arrived in a resync replay rather than
// a flood (nil when none did).
func (m *Machine) receiveLSA(ctx any, cs *connState, batch []*lsa.MC, replayed map[*lsa.MC]bool) {
	x := int(m.id)

	// Lines 1-2. candidateStamp is only read when candidate is non-nil, and
	// every assignment of candidate assigns it too, so it needs no initial
	// clone of C.
	var candidate *mctree.Tree
	var candidateStamp stamp.Stamp
	// batchChain attributes the steps this batch causes (computations,
	// triggered floods, installs) to the most recent event applied; an
	// installed candidate is attributed to the LSA that carried it.
	var batchChain, candidateChain ChainID

	// Lines 3-18: consume the LSAs.
	for _, msg := range batch {
		if m.host.TraceEnabled() {
			m.host.Trace(TraceRecv, chainOf(msg), cs.id, "recv %s", msg)
		}
		// Lines 5-9: an event LSA advances R and the member list. A lossy
		// transport can deliver copies duplicated or out of per-origin
		// order, so application is ordered: stale copies are dropped, early
		// ones buffered, and applying one event can release buffered
		// successors — which are then consumed as if freshly received. On a
		// loss-free transport this degenerates to the paper's lines 5-9.
		for _, a := range m.applyEventLSA(cs, msg) {
			if a.Event.IsEvent() {
				batchChain = chainOf(a)
				// An event learned through a replay was never flooded to the
				// rest of the network by this switch's side of the exchange.
				// Flood it onward (the OSPF rule for LSAs learned during
				// database exchange), so knowledge recovered across a healed
				// boundary propagates transitively instead of stopping at
				// the reconciling pair. Copies reaching switches that
				// already applied the event are stale-dropped; re-flooding
				// is bounded because only replay arrivals qualify — the
				// forwarded copies themselves arrive as ordinary floods.
				if replayed[a] {
					m.metrics.Replays++
					m.floodMC(batchChain, a)
				}
			}
			// Line 10: merge any new expectations.
			cs.e.MaxInPlace(a.Stamp)
			// Lines 11-17. The stamp dominance check is the seeded-bug
			// site for MutationAcceptStaleProposal (checker validation).
			dominates := a.Stamp.Geq(cs.e)
			if m.mutation == MutationAcceptStaleProposal {
				dominates = true
			}
			if dominates && a.Proposal != nil {
				// The proposal is based on every event known to this switch.
				// Aliasing a.Stamp is safe: received stamps are read-only.
				candidate = a.Proposal
				candidateStamp = a.Stamp
				candidateChain = chainOf(a)
				cs.makeProposal = false
			} else if cs.r[x] > a.Stamp[x] {
				// Inconsistency: the sender did not know about all our local
				// events; we owe the network a proposal.
				cs.makeProposal = true
			}
		}
	}

	// Line 19: compute a proposal if owed, expectations met, and the basis
	// would be fresher than the installed topology.
	if cs.makeProposal && cs.r.Geq(cs.e) && cs.r.Greater(cs.c) {
		// Line 20-21: snapshot R, compute (takes Tc).
		oldR := cs.r.Clone()
		proposal, err := m.computeTopology(ctx, batchChain, cs)
		if err != nil {
			if m.host.TraceEnabled() {
				m.host.Trace(TraceError, batchChain, cs.id, "compute: %v", err)
			}
			proposal = nil
		}
		// Line 22: still current, and nothing new queued for this MC?
		if proposal != nil && !m.host.PendingMC(cs.id) && cs.r.Equal(oldR) {
			// Lines 23-27: flood as a triggered LSA (V = none).
			m.floodMC(batchChain, &lsa.MC{Src: m.id, Event: lsa.None, Conn: cs.id, Proposal: proposal, Stamp: oldR})
			cs.e.CopyFrom(cs.r) // line 24: bring E up to date
			candidate = proposal
			candidateStamp = oldR
			candidateChain = batchChain
			cs.makeProposal = false
		} else {
			// Lines 28-30: withdraw.
			candidate = nil
			m.metrics.Withdrawn++
			if m.host.TraceEnabled() {
				m.host.Trace(TraceWithdraw, batchChain, cs.id, "triggered proposal withdrawn")
			}
		}
	}

	// Lines 32-35: accept the best proposal seen.
	if candidate != nil {
		cs.c.CopyFrom(candidateStamp)
		m.install(cs, candidateChain, candidate, "receive-lsa")
	}
	m.updateDormancy(cs, batchChain)
	m.host.ForwardingChanged(cs.id)
	m.maybeScheduleResync(cs)
}

// filterReachable restricts a member set to switches this switch can
// currently reach in its local image. Members cut off by link or nodal
// failures are excluded from topology computations so the reachable part
// of the network still converges on a serviceable tree — each partition
// proceeds with the members it can see (full partition *recovery* remains
// out of scope, as in the paper §6).
func (m *Machine) filterReachable(members mctree.Members) mctree.Members {
	out := make(mctree.Members, len(members))
	var reach map[topo.SwitchID]bool
	for mem, role := range members {
		if mem == m.id {
			out[mem] = role
			continue
		}
		if reach == nil {
			reach = make(map[topo.SwitchID]bool)
			for _, r := range m.uni.Image().Component(m.id) {
				reach[r] = true
			}
		}
		if reach[mem] {
			out[mem] = role
		}
	}
	return out
}

// computeTopology runs the configured algorithm over this switch's local
// image, charging Tc via the host (the computation is the protocol's
// dominant cost, Figure 4 line 5 / Figure 5 line 21).
func (m *Machine) computeTopology(ctx any, chain ChainID, cs *connState) (*mctree.Tree, error) {
	m.metrics.Computations++
	if m.host.TraceEnabled() {
		m.host.Trace(TraceCompute, chain, cs.id, "computing topology (members=%d)", len(cs.members))
	}
	members := cs.members.Clone() // membership snapshot: may change during Tc
	delta := cs.lastDelta
	prev := cs.topology
	m.host.HoldCompute(ctx)
	// Wall-clock cost of the algorithm itself (the virtual Tc is charged by
	// HoldCompute above and deliberately excluded here).
	start := time.Now()
	defer func() { m.metrics.ComputeNanos += uint64(time.Since(start)) }()
	// Reachability is evaluated against the image as of the end of the
	// computation: link/nodal LSAs applied during Tc must not leave us
	// asking the algorithm to span a switch the network can no longer
	// reach (members cut off by failures are served again after repair or
	// timed out by the application; the paper defers partition recovery).
	members = m.filterReachable(members)
	t, err := m.alg.Update(m.uni.Image(), cs.kind, members, prev, delta)
	if err != nil {
		return nil, err
	}
	// An incremental update is only a hint about the latest change; when
	// several changes accumulated since the previous topology (e.g. two
	// joins in one LSA batch) the result may not span every member. Fall
	// back to a from-scratch computation in that case.
	if t.Validate(m.uni.Image(), members) != nil {
		return m.alg.Compute(m.uni.Image(), cs.kind, members)
	}
	return t, nil
}

// floodMC floods an MC LSA network-wide via the host.
func (m *Machine) floodMC(chain ChainID, msg *lsa.MC) {
	m.metrics.MCLSAs++
	if m.host.TraceEnabled() {
		m.host.Trace(TraceFlood, chain, msg.Conn, "flood %s", msg)
	}
	m.host.FloodMC(msg)
}

// install records the accepted topology and updates the switch's MC routing
// entries (its tree-adjacent links).
func (m *Machine) install(cs *connState, chain ChainID, t *mctree.Tree, via string) {
	cs.topology = t
	cs.installs++
	m.metrics.Installs++
	m.host.NoteInstall()
	if m.host.TraceEnabled() {
		m.host.Trace(TraceInstall, chain, cs.id, "installed %s via %s", t, via)
	}
}

// GapBufferDepth returns the number of event LSAs currently buffered out of
// per-origin order across every connection (observability: a sustained
// non-zero depth means losses are outrunning gap recovery).
func (m *Machine) GapBufferDepth() int {
	total := 0
	for _, cs := range m.conns {
		total += cs.oooCount
	}
	return total
}
