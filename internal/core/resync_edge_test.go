package core

import (
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// scriptHost is a core.Host that records everything the machine sends so a
// test can shuttle messages between machines in any order it wants —
// including the adversarial interleavings the simulator's scheduler would
// only hit by luck.
type scriptHost struct {
	id        topo.SwitchID
	neighbors []topo.SwitchID

	floods   []*lsa.MC
	nonMC    []*lsa.NonMC
	unicasts []scriptUnicast
	armed    []lsa.ConnID
	nudges   []lsa.ConnID
}

type scriptUnicast struct {
	to      topo.SwitchID
	payload any
}

var _ Host = (*scriptHost)(nil)

func (h *scriptHost) FloodMC(m *lsa.MC)        { h.floods = append(h.floods, m) }
func (h *scriptHost) FloodNonMC(nm *lsa.NonMC) { h.nonMC = append(h.nonMC, nm) }
func (h *scriptHost) SendUnicast(to topo.SwitchID, payload any) {
	h.unicasts = append(h.unicasts, scriptUnicast{to: to, payload: payload})
}
func (h *scriptHost) HoldCompute(any)                                      {}
func (h *scriptHost) PendingMC(lsa.ConnID) bool                            { return false }
func (h *scriptHost) Neighbors() []topo.SwitchID                           { return h.neighbors }
func (h *scriptHost) FabricLinkChanged(lsa.LinkChange)                     {}
func (h *scriptHost) ArmResync(conn lsa.ConnID)                            { h.armed = append(h.armed, conn) }
func (h *scriptHost) SelfNudge(conn lsa.ConnID)                            { h.nudges = append(h.nudges, conn) }
func (h *scriptHost) NoteInstall()                                         {}
func (h *scriptHost) ForwardingChanged(lsa.ConnID)                         {}
func (h *scriptHost) Trace(TraceKind, ChainID, lsa.ConnID, string, ...any) {}
func (h *scriptHost) TraceEnabled() bool                                   { return false }

// scriptNet is a set of machines wired through scriptHosts with explicit
// message pumping.
type scriptNet struct {
	t        *testing.T
	machines map[topo.SwitchID]*Machine
	hosts    map[topo.SwitchID]*scriptHost
}

func newScriptNet(t *testing.T, g *topo.Graph, resyncMax int, ids ...topo.SwitchID) *scriptNet {
	t.Helper()
	sn := &scriptNet{
		t:        t,
		machines: map[topo.SwitchID]*Machine{},
		hosts:    map[topo.SwitchID]*scriptHost{},
	}
	for _, id := range ids {
		h := &scriptHost{id: id, neighbors: g.Neighbors(id)}
		m, err := NewMachine(MachineConfig{
			ID: id, Graph: g, Algorithm: route.SPH{},
			Resync: true, ResyncMaxRounds: resyncMax,
		}, h)
		if err != nil {
			t.Fatal(err)
		}
		sn.machines[id] = m
		sn.hosts[id] = h
	}
	return sn
}

// pump delivers queued messages between the net's machines until quiescent:
// floods go to every other machine, unicasts to their target, nudges back
// to their sender. When the message queues drain but gap timers are armed,
// it fires them (the "timeout elapsed" moment) and keeps pumping; it stops
// when nothing is queued and nothing is armed, or fails the test after a
// bounded number of rounds.
func (sn *scriptNet) pump() {
	sn.t.Helper()
	for round := 0; ; round++ {
		if round > 200 {
			sn.t.Fatal("script net did not quiesce in 200 pump rounds")
		}
		moved := false
		for id, h := range sn.hosts {
			floods, unis, nudges := h.floods, h.unicasts, h.nudges
			h.floods, h.unicasts, h.nudges = nil, nil, nil
			for _, mc := range floods {
				for other, m := range sn.machines {
					if other != id {
						m.ReceiveBatch(nil, []any{mc})
						moved = true
					}
				}
			}
			for _, u := range unis {
				if m, ok := sn.machines[u.to]; ok {
					m.ReceiveBatch(nil, []any{u.payload})
					moved = true
				}
			}
			for _, conn := range nudges {
				sn.machines[id].ReceiveBatch(nil, []any{ResyncNudge{Conn: conn}})
				moved = true
			}
		}
		if moved {
			continue
		}
		// Queues drained; let pending gap timers fire.
		fired := false
		for id, h := range sn.hosts {
			armed := h.armed
			h.armed = nil
			for _, conn := range armed {
				sn.machines[id].ResyncFired(conn)
				fired = true
			}
		}
		if !fired {
			return
		}
	}
}

// eventMC builds switch src's idx-th event LSA for conn on an n-switch
// network (the stamp encodes only src's own counter, as a real event LSA
// from a switch that has seen nothing else would).
func eventMC(n int, src topo.SwitchID, conn lsa.ConnID, idx uint32, ev lsa.Event) *lsa.MC {
	st := make([]uint32, n)
	st[src] = idx
	return &lsa.MC{Src: src, Event: ev, Conn: conn, Role: mctree.SenderReceiver, Stamp: st}
}

// TestResyncGiveUpRearmsOnNewEvidence is the regression test for the silent
// wedge: a gap whose resync budget is exhausted must become an explicit
// terminal state, and a later change in the connection's observed state —
// here another out-of-order event — must restart recovery with a fresh
// budget instead of staying wedged forever.
func TestResyncGiveUpRearmsOnNewEvidence(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const conn = lsa.ConnID(1)
	h := &scriptHost{id: 2, neighbors: g.Neighbors(2)}
	m, err := NewMachine(MachineConfig{
		ID: 2, Graph: g, Algorithm: route.SPH{},
		Resync: true, ResyncMaxRounds: 2,
	}, h)
	if err != nil {
		t.Fatal(err)
	}

	// Event #2 from switch 0 arrives before event #1: buffered out of
	// order, the connection is gapped, and a gap check is armed.
	m.ReceiveBatch(nil, []any{eventMC(3, 0, conn, 2, lsa.Leave)})
	if !m.Gapped(conn) {
		t.Fatal("machine not gapped after an out-of-order event")
	}
	if len(h.armed) != 1 {
		t.Fatalf("armed %d gap checks, want 1", len(h.armed))
	}

	// Every resync request is lost (the host just records them). Two rounds
	// exhaust the budget; the third check is the give-up.
	for i := 0; i < 3; i++ {
		h.armed = nil
		m.ResyncFired(conn)
	}
	if got := m.Metrics().ResyncGiveUps; got != 1 {
		t.Fatalf("ResyncGiveUps = %d, want 1", got)
	}
	if !m.ResyncGaveUp(conn) {
		t.Fatal("machine does not report the terminal give-up state")
	}
	if len(h.unicasts) != 2 {
		t.Fatalf("sent %d resync requests, want 2 (the budget)", len(h.unicasts))
	}
	// Terminal means terminal: identical evidence must not re-arm. A
	// duplicate of the same out-of-order event changes nothing.
	h.armed = nil
	m.ReceiveBatch(nil, []any{eventMC(3, 0, conn, 2, lsa.Leave)})
	if len(h.armed) != 0 {
		t.Fatalf("duplicate evidence re-armed recovery: %v", h.armed)
	}
	if got := m.Metrics().ResyncRearms; got != 0 {
		t.Fatalf("ResyncRearms = %d before any new evidence", got)
	}

	// New evidence — a third event from the same origin — must re-arm with
	// a fresh budget.
	m.ReceiveBatch(nil, []any{eventMC(3, 0, conn, 3, lsa.Join)})
	if got := m.Metrics().ResyncRearms; got != 1 {
		t.Fatalf("ResyncRearms = %d, want 1", got)
	}
	if len(h.armed) != 1 {
		t.Fatalf("new evidence armed %d gap checks, want 1", len(h.armed))
	}
	if m.ResyncGaveUp(conn) {
		t.Fatal("still reporting give-up after recovery re-armed")
	}

	// The missing event finally arrives; the ordering gap closes and the
	// buffered successors apply in order (join, leave, join → member
	// present). Commit lag remains — there is no peer to commit with — so
	// check R against E rather than gapped().
	m.ReceiveBatch(nil, []any{eventMC(3, 0, conn, 1, lsa.Join)})
	snap, ok := m.Connection(conn)
	if !ok {
		t.Fatal("no connection state")
	}
	if !snap.R.Geq(snap.E) {
		t.Fatalf("ordering gap still open after the missing event arrived: R=%s E=%s", snap.R, snap.E)
	}
	if snap.R[0] != 3 {
		t.Fatalf("R[0] = %d, want 3", snap.R[0])
	}
	if _, in := snap.Members[0]; !in {
		t.Fatal("member 0 missing after ordered replay of the buffer")
	}
}

// TestSimultaneousBidirectionalResync reconciles two healed peers that both
// initiate at the same instant — each side's request crosses the other's on
// the wire — and requires both to converge to the elementwise-max event set
// with one agreed topology. This is the first exchange after every heal, so
// the symmetric race is the common case, not a corner.
func TestSimultaneousBidirectionalResync(t *testing.T) {
	g, err := topo.Line(2, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const conn = lsa.ConnID(1)
	sn := newScriptNet(t, g, 8, 0, 1)
	m0, m1 := sn.machines[0], sn.machines[1]
	h0, h1 := sn.hosts[0], sn.hosts[1]

	// Diverge: each switch joins locally but its flood never reaches the
	// other (the partition window). Drop the captured floods.
	m0.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Join, Role: mctree.SenderReceiver})
	m1.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Join, Role: mctree.SenderReceiver})
	h0.floods, h0.nonMC, h0.unicasts, h0.nudges = nil, nil, nil, nil
	h1.floods, h1.nonMC, h1.unicasts, h1.nudges = nil, nil, nil, nil

	// Heal: both sides reconcile simultaneously; requests cross.
	m0.ReconcileNeighbor(1)
	m1.ReconcileNeighbor(0)
	if len(h0.unicasts) != 1 || len(h1.unicasts) != 1 {
		t.Fatalf("reconcile sent %d/%d unicasts, want 1/1", len(h0.unicasts), len(h1.unicasts))
	}
	sn.pump()

	s0, _ := m0.Connection(conn)
	s1, _ := m1.Connection(conn)
	if !s0.R.Equal(s1.R) || s0.R[0] != 1 || s0.R[1] != 1 {
		t.Fatalf("R did not converge to the elementwise max: %s vs %s", s0.R, s1.R)
	}
	if !s0.Members.Equal(s1.Members) || len(s0.Members) != 2 {
		t.Fatalf("members did not merge: %v vs %v", s0.Members, s1.Members)
	}
	if !s0.C.Equal(s1.C) || !s0.R.Equal(s0.C) {
		t.Fatalf("commit did not settle: R=%s C0=%s C1=%s", s0.R, s0.C, s1.C)
	}
	if s0.Topology == nil || !s0.Topology.Equal(s1.Topology) {
		t.Fatalf("topologies disagree after reconciliation: %v vs %v", s0.Topology, s1.Topology)
	}
	if m0.Metrics().Reconciles == 0 || m1.Metrics().Reconciles == 0 {
		t.Fatal("reconcile exchanges not counted")
	}
}

// TestResyncResponseRacesFreshLocalEvent interleaves a replay with a brand
// new local event: the requester originates its own event after asking for
// the replay but before the response lands. The response must fill the gap
// without clobbering the fresh event, and both switches must converge on
// the union.
func TestResyncResponseRacesFreshLocalEvent(t *testing.T) {
	g, err := topo.Line(2, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const conn = lsa.ConnID(1)
	sn := newScriptNet(t, g, 8, 0, 1)
	m0, m1 := sn.machines[0], sn.machines[1]
	h0, h1 := sn.hosts[0], sn.hosts[1]

	// Shared history: switch 1 joins and switch 0 sees it.
	m1.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Join, Role: mctree.SenderReceiver})
	for _, mc := range h1.floods {
		m0.ReceiveBatch(nil, []any{mc})
	}
	h0.floods, h0.nonMC, h0.unicasts, h0.nudges = nil, nil, nil, nil
	h1.floods, h1.nonMC, h1.nudges = nil, nil, nil

	// Partition: switch 1 leaves but the flood never crosses.
	m1.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Leave})
	h1.floods, h1.nonMC, h1.nudges = nil, nil, nil

	// Heal: switch 0 asks switch 1 for a replay.
	m0.ReconcileNeighbor(1)
	req := h0.unicasts[0]
	h0.unicasts = nil
	m1.ReceiveBatch(nil, []any{req.payload})
	if len(h1.unicasts) != 1 {
		t.Fatalf("request produced %d responses, want 1", len(h1.unicasts))
	}
	resp := h1.unicasts[0]
	h1.unicasts = nil

	// The race: before the response lands, switch 0 originates a fresh
	// event of its own.
	m0.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Join, Role: mctree.SenderReceiver})

	// Now the response arrives, replaying switch 1's history.
	m0.ReceiveBatch(nil, []any{resp.payload})
	s0, _ := m0.Connection(conn)
	if s0.R[0] != 1 || s0.R[1] != 2 {
		t.Fatalf("R = %s, want [1 2] (own fresh event plus the replayed pair)", s0.R)
	}
	if _, in := s0.Members[0]; !in {
		t.Fatal("replay clobbered the fresh local join")
	}
	if _, in := s0.Members[1]; in {
		t.Fatal("replayed leave not applied (member 1 still listed)")
	}

	// Let the queued floods and timers finish the exchange; both switches
	// must converge on the union.
	sn.pump()
	s0, _ = m0.Connection(conn)
	s1, _ := m1.Connection(conn)
	if !s0.R.Equal(s1.R) || !s0.C.Equal(s1.C) || !s0.Members.Equal(s1.Members) {
		t.Fatalf("no convergence after the race: R %s/%s C %s/%s members %v/%v",
			s0.R, s1.R, s0.C, s1.C, s0.Members, s1.Members)
	}
}

// TestReplayEndsAtPseudoProposalBoundary pins the shape and handling of a
// replay batch: the served batch is the event-log suffix beyond the
// requester's R followed by exactly one pseudo-proposal (the server's
// installed topology at its committed stamp) — and the receiver re-floods
// only the replayed *events*, never the pseudo-proposal, which exists only
// for the requesting switch.
func TestReplayEndsAtPseudoProposalBoundary(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const conn = lsa.ConnID(1)
	sn := newScriptNet(t, g, 8, 1, 2)
	m1, m2 := sn.machines[1], sn.machines[2]

	// Switches 1 and 2 build a two-member connection and commit a topology.
	m1.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Join, Role: mctree.SenderReceiver})
	m2.HandleLocalEvent(nil, LocalEvent{Conn: conn, Kind: lsa.Join, Role: mctree.SenderReceiver})
	sn.pump()
	s1, _ := m1.Connection(conn)
	if s1.Topology == nil || !s1.R.Equal(s1.C) {
		t.Fatalf("setup did not commit: R=%s C=%s topo=%v", s1.R, s1.C, s1.Topology)
	}

	// A blank latecomer (switch 0) cold-rejoins from switch 1.
	h0 := &scriptHost{id: 0, neighbors: g.Neighbors(0)}
	m0, err := NewMachine(MachineConfig{
		ID: 0, Graph: g, Algorithm: route.SPH{}, Resync: true, ResyncMaxRounds: 8,
	}, h0)
	if err != nil {
		t.Fatal(err)
	}
	m0.RequestFullResync()
	if len(h0.unicasts) != 1 {
		t.Fatalf("full resync sent %d requests, want 1 (one neighbor)", len(h0.unicasts))
	}
	req := h0.unicasts[0]
	h0.unicasts = nil
	h1 := sn.hosts[1]
	m1.ReceiveBatch(nil, []any{req.payload})
	if len(h1.unicasts) != 1 {
		t.Fatalf("wildcard request produced %d responses, want 1", len(h1.unicasts))
	}
	resp, ok := h1.unicasts[0].payload.(*lsa.ResyncResponse)
	if !ok {
		t.Fatalf("response payload is %T", h1.unicasts[0].payload)
	}
	h1.unicasts = nil

	// Batch shape: every entry but the last is a real event, the last is
	// the pseudo-proposal terminator.
	if len(resp.Batch) != 3 {
		t.Fatalf("replay batch has %d entries, want 3 (two events + pseudo-proposal)", len(resp.Batch))
	}
	for i, mc := range resp.Batch[:len(resp.Batch)-1] {
		if !mc.Event.IsEvent() {
			t.Fatalf("batch[%d] is not an event: %+v", i, mc)
		}
	}
	last := resp.Batch[len(resp.Batch)-1]
	if last.Event.IsEvent() || last.Proposal == nil || !last.Stamp.Equal(s1.C) {
		t.Fatalf("batch does not end with a pseudo-proposal at C: %+v", last)
	}

	// Apply: the latecomer adopts state and re-floods the two events — and
	// only the events.
	m0.ReceiveBatch(nil, []any{resp})
	s0, _ := m0.Connection(conn)
	if !s0.R.Equal(s1.R) || !s0.Members.Equal(s1.Members) {
		t.Fatalf("latecomer did not adopt the replayed state: R=%s members=%v", s0.R, s0.Members)
	}
	if s0.Topology == nil || !s0.Topology.Equal(s1.Topology) {
		t.Fatalf("latecomer did not adopt the pseudo-proposal topology: %v", s0.Topology)
	}
	if got := m0.Metrics().Replays; got != 2 {
		t.Fatalf("re-flooded %d replayed LSAs, want 2", got)
	}
	for _, mc := range h0.floods {
		if !mc.Event.IsEvent() && mc.Proposal != nil && mc.Src == 1 {
			t.Fatal("the pseudo-proposal was re-flooded")
		}
	}
}
