package core

import (
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/stamp"
)

// connState is one switch's protocol state for one multipoint connection:
// the member list, the three vector timestamps, the installed topology, and
// the shared makeProposal flag (paper §3.2–3.3).
type connState struct {
	id      lsa.ConnID
	kind    mctree.Kind
	members mctree.Members

	r, e, c stamp.Stamp

	// topology is the currently installed MC topology (nil before the
	// first accepted proposal).
	topology *mctree.Tree

	// makeProposal is the flag shared between EventHandler and ReceiveLSA:
	// true when this switch owes the network a topology proposal.
	makeProposal bool

	// lastDelta remembers the most recent membership change applied, as a
	// hint for incremental topology updates. nil forces from-scratch.
	lastDelta *route.Change

	// installs counts accepted/installed topologies (for convergence
	// bookkeeping and metrics).
	installs uint64

	// dormant marks state for a connection whose member list has emptied
	// (§3.4 "destroyed"). The heavy state (members, topology) is gone, but
	// the event counters persist — like OSPF LSA sequence numbers — so
	// that LSAs still in flight when the last member left cannot be
	// mistaken for a fresh incarnation of the connection. A new event
	// resurrects the state.
	dormant bool
}

func newConnState(id lsa.ConnID, kind mctree.Kind, n int) *connState {
	return &connState{
		id:      id,
		kind:    kind,
		members: make(mctree.Members),
		r:       stamp.New(n),
		e:       stamp.New(n),
		c:       stamp.New(n),
	}
}

// applyMembership updates the member list for an event LSA from src.
// Link events do not change membership (Figure 5 line 8).
func (cs *connState) applyMembership(event lsa.Event, src int, role mctree.Role) {
	switch event {
	case lsa.Join:
		cs.members[switchID(src)] = role
		cs.lastDelta = &route.Change{Switch: switchID(src), Join: true}
	case lsa.Leave:
		delete(cs.members, switchID(src))
		cs.lastDelta = &route.Change{Switch: switchID(src), Join: false}
	case lsa.Link:
		cs.lastDelta = nil // force from-scratch around the failed link
	}
}

// Snapshot is a read-only copy of a connection's state, for inspection by
// tests, metrics, and tools.
type Snapshot struct {
	Conn     lsa.ConnID
	Kind     mctree.Kind
	Members  mctree.Members
	R, E, C  stamp.Stamp
	Topology *mctree.Tree
	Installs uint64
}

func (cs *connState) snapshot() Snapshot {
	var topoCopy *mctree.Tree
	if cs.topology != nil {
		topoCopy = cs.topology.Clone()
	}
	return Snapshot{
		Conn:     cs.id,
		Kind:     cs.kind,
		Members:  cs.members.Clone(),
		R:        cs.r.Clone(),
		E:        cs.e.Clone(),
		C:        cs.c.Clone(),
		Topology: topoCopy,
		Installs: cs.installs,
	}
}
