package core

import (
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// connState is one switch's protocol state for one multipoint connection:
// the member list, the three vector timestamps, the installed topology, and
// the shared makeProposal flag (paper §3.2–3.3).
type connState struct {
	id      lsa.ConnID
	kind    mctree.Kind
	members mctree.Members

	r, e, c stamp.Stamp

	// topology is the currently installed MC topology (nil before the
	// first accepted proposal).
	topology *mctree.Tree

	// makeProposal is the flag shared between EventHandler and ReceiveLSA:
	// true when this switch owes the network a topology proposal.
	makeProposal bool

	// lastDelta remembers the most recent membership change applied, as a
	// hint for incremental topology updates. nil forces from-scratch.
	lastDelta *route.Change

	// installs counts accepted/installed topologies (for convergence
	// bookkeeping and metrics).
	installs uint64

	// dormant marks state for a connection whose member list has emptied
	// (§3.4 "destroyed"). The heavy state (members, topology) is gone, but
	// the event counters persist — like OSPF LSA sequence numbers — so
	// that LSAs still in flight when the last member left cannot be
	// mistaken for a fresh incarnation of the connection. A new event
	// resurrects the state.
	dormant bool

	// eventLog retains every applied event LSA in application order, so
	// this switch can replay missed events to a resyncing neighbor (the
	// OSPF database-exchange analogue). The entry for switch x's i-th
	// event has Stamp[x] == i, which is how resync responses are filtered.
	// Like the counters, the log survives dormancy.
	eventLog []*lsa.MC

	// ooo buffers event LSAs that arrived ahead of per-origin order (the
	// i+2nd event before the i+1st — possible once retransmission or
	// injected jitter reorders deliveries). Keyed by origin, then by the
	// event's per-origin index. oooCount mirrors the total buffered.
	ooo      map[topo.SwitchID]map[uint32]*lsa.MC
	oooCount int

	// Resync state: whether a gap-check timer is armed, how many resync
	// requests this incarnation of the gap has issued, and the rotation
	// cursor over neighbors.
	resyncScheduled bool
	resyncRounds    int
	resyncNext      int

	// Give-up signature: the (R, E, ooo depth) recorded when this gap
	// exhausted its round budget. While the signature still matches the
	// live state the give-up is terminal; any deviation is new evidence
	// (a replay landed, a flood arrived, a partition healed) and re-arms
	// recovery with a fresh round budget.
	gaveUpR   stamp.Stamp
	gaveUpE   stamp.Stamp
	gaveUpOOO int
}

func newConnState(id lsa.ConnID, kind mctree.Kind, n int) *connState {
	return &connState{
		id:      id,
		kind:    kind,
		members: make(mctree.Members),
		r:       stamp.New(n),
		e:       stamp.New(n),
		c:       stamp.New(n),
	}
}

// gapped reports whether this switch knows it is missing LSAs for the
// connection: expectations exceed receipts, or events are buffered out of
// order (direct evidence that the intervening ones were lost or delayed),
// or — on a live connection — the committed stamp trails the received one,
// which after a timeout means the accepted proposal's flood was lost.
func (cs *connState) gapped() bool {
	if cs.oooCount > 0 || !cs.r.Geq(cs.e) {
		return true
	}
	return !cs.dormant && cs.r.Greater(cs.c)
}

// logEvent appends an applied event LSA to the replay log. Proposals are
// kept: a replayed proposal-carrying event LSA lets a resyncing switch
// adopt the topology it missed, not just the event.
func (cs *connState) logEvent(m *lsa.MC) {
	if m.Event.IsEvent() {
		cs.eventLog = append(cs.eventLog, m)
	}
}

// buffer stashes an out-of-order event LSA for later application; it
// reports whether the LSA was newly buffered.
func (cs *connState) buffer(m *lsa.MC) bool {
	src := m.Src
	idx := m.Stamp[int(src)]
	if cs.ooo == nil {
		cs.ooo = make(map[topo.SwitchID]map[uint32]*lsa.MC)
	}
	if cs.ooo[src] == nil {
		cs.ooo[src] = make(map[uint32]*lsa.MC)
	}
	if _, dup := cs.ooo[src][idx]; dup {
		return false
	}
	cs.ooo[src][idx] = m
	cs.oooCount++
	return true
}

// takeBuffered removes and returns the buffered event with the given
// per-origin index, if present.
func (cs *connState) takeBuffered(src topo.SwitchID, idx uint32) (*lsa.MC, bool) {
	m, ok := cs.ooo[src][idx]
	if !ok {
		return nil, false
	}
	delete(cs.ooo[src], idx)
	cs.oooCount--
	return m, true
}

// applyMembership updates the member list for an event LSA from src.
// Link events do not change membership (Figure 5 line 8).
func (cs *connState) applyMembership(event lsa.Event, src int, role mctree.Role) {
	switch event {
	case lsa.Join:
		cs.members[switchID(src)] = role
		cs.lastDelta = &route.Change{Switch: switchID(src), Join: true}
	case lsa.Leave:
		delete(cs.members, switchID(src))
		cs.lastDelta = &route.Change{Switch: switchID(src), Join: false}
	case lsa.Link:
		cs.lastDelta = nil // force from-scratch around the failed link
	}
}

// Snapshot is a read-only copy of a connection's state, for inspection by
// tests, metrics, and tools.
type Snapshot struct {
	Conn     lsa.ConnID
	Kind     mctree.Kind
	Members  mctree.Members
	R, E, C  stamp.Stamp
	Topology *mctree.Tree
	Installs uint64
}

func (cs *connState) snapshot() Snapshot {
	var topoCopy *mctree.Tree
	if cs.topology != nil {
		topoCopy = cs.topology.Clone()
	}
	return Snapshot{
		Conn:     cs.id,
		Kind:     cs.kind,
		Members:  cs.members.Clone(),
		R:        cs.r.Clone(),
		E:        cs.e.Clone(),
		C:        cs.c.Clone(),
		Topology: topoCopy,
		Installs: cs.installs,
	}
}
