package core_test

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// Example runs a minimal D-GMC network: three switches in a line, two
// hosts joining a symmetric connection, and prints the converged tree.
func Example() {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 2*time.Microsecond, flood.Direct)
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.NewDomain(k, core.Config{
		Net:         net,
		ComputeTime: 100 * time.Microsecond,
		Algorithm:   route.SPH{},
	})
	if err != nil {
		log.Fatal(err)
	}

	d.Join(0, 0, 1, mctree.SenderReceiver)
	d.Join(time.Millisecond, 2, 1, mctree.SenderReceiver)
	if _, err := k.Run(); err != nil {
		log.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		log.Fatal(err)
	}

	snap, _ := d.Switch(1).Connection(1)
	fmt.Println("members:", snap.Members.IDs())
	fmt.Println("topology:", snap.Topology)
	fmt.Println("computations:", d.Metrics().Computations)
	// Output:
	// members: [0 2]
	// topology: symmetric{0-1 1-2}
	// computations: 2
}
