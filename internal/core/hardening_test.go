package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// TestWireEncodedLSAsConvergeIdentically runs the same scenario with
// in-memory and binary-encoded LSAs and requires identical outcomes.
func TestWireEncodedLSAsConvergeIdentically(t *testing.T) {
	scenario := func(encode bool) (Metrics, string) {
		g, err := topo.Waxman(topo.DefaultGenConfig(20, 31))
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		defer k.Shutdown()
		net, err := flood.New(k, g, testPerHop, flood.Direct)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDomain(k, Config{
			Net: net, ComputeTime: testTc, Algorithm: route.SPH{}, EncodeLSAs: encode,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 6; i++ {
			d.Join(sim.Time(rng.Intn(int(testTc))), topo.SwitchID(rng.Intn(20)), 4, mctree.SenderReceiver)
		}
		// A link failure exercises non-MC LSA encoding too.
		var fail topo.Link
		for _, l := range g.Links() {
			trial := g.Clone()
			if err := trial.SetLinkDown(l.A, l.B, true); err != nil {
				t.Fatal(err)
			}
			if trial.Connected() {
				fail = l
				break
			}
		}
		d.FailLink(50*time.Millisecond, fail.A, fail.B)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckConverged(); err != nil {
			t.Fatalf("encode=%v: %v", encode, err)
		}
		snap, _ := d.Switch(0).Connection(4)
		return *d.Metrics(), snap.Topology.String()
	}
	mPlain, tPlain := scenario(false)
	mWire, tWire := scenario(true)
	// ComputeNanos is wall clock, deterministic protocol or not.
	mPlain.ComputeNanos, mWire.ComputeNanos = 0, 0
	if mPlain != mWire {
		t.Errorf("metrics diverge: %+v vs %+v", mPlain, mWire)
	}
	if tPlain != tWire {
		t.Errorf("topologies diverge: %s vs %s", tPlain, tWire)
	}
}

// TestLinkFailureFansOutPerAffectedConnection checks the paper's Figure 2
// accounting: one link event = one non-MC LSA + k MC LSAs, where k is the
// number of connections whose topology uses the link.
func TestLinkFailureFansOutPerAffectedConnection(t *testing.T) {
	// A ladder: short path 0-1-2-3 plus detour 0-4-5-3, so failing the
	// middle link keeps the graph connected.
	gr := topo.New(6)
	for _, e := range [][2]topo.SwitchID{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 3}} {
		if err := gr.AddLink(e[0], e[1], 10*time.Microsecond, 1); err != nil {
			t.Fatal(err)
		}
	}
	f := newFixture(t, gr)
	// Three connections between 0 and 3: two along the short path (via 1,2)
	// and one that ends up elsewhere.
	for conn := lsa.ConnID(1); conn <= 3; conn++ {
		f.d.Join(sim.Time(conn)*time.Millisecond, 0, conn, mctree.SenderReceiver)
		f.d.Join(sim.Time(conn)*time.Millisecond+500*time.Microsecond, 3, conn, mctree.SenderReceiver)
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// Count connections whose tree uses link (1,2).
	k := 0
	for conn := lsa.ConnID(1); conn <= 3; conn++ {
		snap, _ := f.d.Switch(1).Connection(conn)
		if snap.Topology.Has(1, 2) {
			k++
		}
	}
	if k == 0 {
		t.Skip("no tree crossed the target link")
	}
	m0 := *f.d.Metrics()
	pre := f.net.Floodings()
	f.d.FailLink(50*time.Millisecond, 1, 2)
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	m1 := *f.d.Metrics()
	if got := m1.NonMCLSAs - m0.NonMCLSAs; got != 1 {
		t.Errorf("non-MC LSAs = %d, want 1", got)
	}
	// The event itself floods exactly k MC LSAs; triggered proposals may
	// add more, but at least k and exactly k event LSAs.
	if got := m1.Events - m0.Events; got != uint64(k) {
		t.Errorf("MC link events = %d, want k=%d", got, k)
	}
	if f.net.Floodings()-pre < uint64(k)+1 {
		t.Errorf("floodings = %d, want at least k+1=%d", f.net.Floodings()-pre, k+1)
	}
}

// TestPartitionedComponentsStayInternallyConsistent verifies behaviour
// under network partitioning (the paper defers *recovery* to future work;
// the protocol must still keep each side internally consistent).
func TestPartitionedComponentsStayInternallyConsistent(t *testing.T) {
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	// Partition first: switch 2 detects the cut.
	f.d.FailLink(0, 2, 3)
	// Then a fresh connection comes up on each side.
	f.d.Join(time.Millisecond, 0, 7, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 1, 7, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 4, 7, mctree.SenderReceiver)
	f.d.Join(time.Millisecond, 5, 7, mctree.SenderReceiver)
	f.run(t)

	// Global convergence is impossible; each side must agree internally.
	sideA := []topo.SwitchID{0, 1, 2}
	sideB := []topo.SwitchID{3, 4, 5}
	for _, side := range [][]topo.SwitchID{sideA, sideB} {
		var ref *Snapshot
		for _, s := range side {
			snap, ok := f.d.Switch(s).Connection(7)
			if !ok {
				t.Fatalf("switch %d has no state", s)
			}
			if !snap.R.Equal(snap.E) {
				t.Errorf("switch %d: R=%s E=%s diverge within component", s, snap.R, snap.E)
			}
			if ref == nil {
				r := snap
				ref = &r
				continue
			}
			if !snap.C.Equal(ref.C) || !snap.Members.Equal(ref.Members) {
				t.Errorf("switch %d disagrees with its component", s)
			}
			if (snap.Topology == nil) != (ref.Topology == nil) ||
				(snap.Topology != nil && !snap.Topology.Equal(ref.Topology)) {
				t.Errorf("switch %d topology differs within component", s)
			}
		}
	}
	// Side A's members are {0,1}; side B's are {4,5}.
	a, _ := f.d.Switch(0).Connection(7)
	if len(a.Members) != 2 || a.Members[0] == 0 || a.Members[1] == 0 {
		t.Errorf("side A members = %v", a.Members)
	}
	b, _ := f.d.Switch(5).Connection(7)
	if len(b.Members) != 2 || b.Members[4] == 0 || b.Members[5] == 0 {
		t.Errorf("side B members = %v", b.Members)
	}
}

// TestFuzzRandomScenariosConverge drives many random scenarios — mixed
// bursty/sparse joins and leaves on multiple connections, with optional
// link failures — and requires global convergence with valid trees every
// time, under both from-scratch and incremental algorithms.
func TestFuzzRandomScenariosConverge(t *testing.T) {
	algs := []route.Algorithm{route.SPH{}, route.NewIncremental(route.SPH{}), route.KMB{}}
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed*7919 + 13))
		n := 10 + rng.Intn(30)
		g, err := topo.Waxman(topo.DefaultGenConfig(n, seed+100))
		if err != nil {
			t.Fatal(err)
		}
		alg := algs[int(seed)%len(algs)]

		k := sim.NewKernel()
		net, err := flood.New(k, g, testPerHop, flood.Direct)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDomain(k, Config{
			Net: net, ComputeTime: testTc, Algorithm: alg,
			Kinds: map[lsa.ConnID]mctree.Kind{1: mctree.Symmetric, 2: mctree.ReceiverOnly},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Random schedule: 6-16 membership events over two connections,
		// spread over a mix of tight and loose gaps.
		members := map[lsa.ConnID]map[topo.SwitchID]bool{1: {}, 2: {}}
		at := sim.Time(0)
		nEvents := 6 + rng.Intn(11)
		for i := 0; i < nEvents; i++ {
			at += sim.Time(rng.Intn(int(4 * testTc)))
			conn := lsa.ConnID(1 + rng.Intn(2))
			ms := members[conn]
			if len(ms) > 0 && rng.Intn(3) == 0 {
				ids := make([]topo.SwitchID, 0, len(ms))
				for s := range ms {
					ids = append(ids, s)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				s := ids[rng.Intn(len(ids))]
				d.Leave(at, s, conn)
				delete(ms, s)
			} else {
				s := topo.SwitchID(rng.Intn(n))
				if ms[s] {
					continue
				}
				role := mctree.SenderReceiver
				if conn == 2 {
					role = mctree.Receiver
				}
				d.Join(at, s, conn, role)
				ms[s] = true
			}
		}
		// Optionally fail one redundant link — or a whole redundant switch —
		// mid-run.
		switch rng.Intn(3) {
		case 0:
			for _, l := range g.Links() {
				trial := g.Clone()
				if err := trial.SetLinkDown(l.A, l.B, true); err != nil {
					t.Fatal(err)
				}
				if trial.Connected() {
					d.FailLink(at/2, l.A, l.B)
					break
				}
			}
		case 1:
			for cand := 0; cand < n; cand++ {
				s := topo.SwitchID(cand)
				if members[1][s] || members[2][s] {
					continue // keep the victim a non-member for fuzz simplicity
				}
				trial := g.Clone()
				for _, nb := range trial.Neighbors(s) {
					if err := trial.SetLinkDown(s, nb, true); err != nil {
						t.Fatal(err)
					}
				}
				other := topo.SwitchID((cand + 1) % n)
				if len(trial.Component(other)) == n-1 {
					d.FailSwitch(at/2, s)
					break
				}
			}
		}
		if _, err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := d.CheckConverged(); err != nil {
			t.Errorf("seed %d (n=%d, %s): %v", seed, n, alg.Name(), err)
		}
		k.Shutdown()
	}
}

// TestNodalFailure exercises the paper's "nodal events": a member switch
// dies, every incident link fails (detected by the surviving neighbours),
// and the surviving majority converges on a tree spanning the members it
// can still reach.
func TestNodalFailure(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(24, 61))
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, g)
	members := []topo.SwitchID{2, 7, 13, 19}
	for i, s := range members {
		f.d.Join(sim.Time(i)*2*time.Millisecond, s, 1, mctree.SenderReceiver)
	}
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatal(err)
	}

	// Pick a victim member whose death keeps the rest connected.
	victim := topo.NoSwitch
	for _, cand := range members {
		trial := g.Clone()
		for _, nb := range trial.Neighbors(cand) {
			if err := trial.SetLinkDown(cand, nb, true); err != nil {
				t.Fatal(err)
			}
		}
		comp := trial.Component(pickOther(members, cand))
		if len(comp) == g.NumSwitches()-1 {
			victim = cand
			break
		}
	}
	if victim == topo.NoSwitch {
		t.Skip("no member is safely removable in this graph")
	}

	f.d.FailSwitch(f.k.Now()+5*time.Millisecond, victim)
	f.run(t)
	if err := f.d.CheckConverged(); err != nil {
		t.Fatalf("survivors did not converge: %v", err)
	}
	// A survivor's installed topology spans the surviving members and
	// avoids the dead switch entirely.
	witness := pickOther(members, victim)
	snap, _ := f.d.Switch(witness).Connection(1)
	if snap.Topology.On(victim) {
		t.Errorf("repaired tree still crosses dead switch %d: %v", victim, snap.Topology)
	}
	survivors := mctree.Members{}
	for _, m := range members {
		if m != victim {
			survivors[m] = mctree.SenderReceiver
		}
	}
	if err := snap.Topology.Validate(g, survivors); err != nil {
		t.Errorf("survivor tree invalid: %v", err)
	}
	// The dead member is still listed (nobody can speak for it — the
	// application layer would eventually time it out), but excluded from
	// the installed topology.
	if _, listed := snap.Members[victim]; !listed {
		t.Error("dead member vanished from the member list without a leave event")
	}
}

func pickOther(members []topo.SwitchID, not topo.SwitchID) topo.SwitchID {
	for _, m := range members {
		if m != not {
			return m
		}
	}
	return topo.NoSwitch
}

// TestReoptimizationOnRecovery exercises §3.5's re-optimization policy: a
// failed tree link forces a detour; when the link recovers, a domain with
// the policy enabled re-converges on the cheaper tree, while the default
// domain keeps the detour (recoveries are not adverse changes).
func TestReoptimizationOnRecovery(t *testing.T) {
	scenario := func(threshold float64) (before, after *mctree.Tree, reopts uint64) {
		g, err := topo.Ring(8, 10*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		defer k.Shutdown()
		net, err := flood.New(k, g, testPerHop, flood.Direct)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDomain(k, Config{
			Net: net, ComputeTime: testTc, Algorithm: route.SPH{},
			ReoptimizeThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Join(0, 0, 1, mctree.SenderReceiver)
		d.Join(time.Millisecond, 2, 1, mctree.SenderReceiver)
		d.FailLink(5*time.Millisecond, 1, 2) // tree 0-1-2 must detour
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckConverged(); err != nil {
			t.Fatal(err)
		}
		snap, _ := d.Switch(5).Connection(1)
		before = snap.Topology

		d.RestoreLink(k.Now()+5*time.Millisecond, 1, 2)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckConverged(); err != nil {
			t.Fatal(err)
		}
		snap, _ = d.Switch(5).Connection(1)
		return before, snap.Topology, d.Metrics().ReoptChecks
	}

	// Default: no re-optimization; the detour tree survives recovery.
	before, after, reopts := scenario(0)
	if before.NumEdges() != 6 {
		t.Fatalf("detour tree = %v, want the 6-hop way around", before)
	}
	if !after.Equal(before) {
		t.Errorf("default policy re-optimized: %v -> %v", before, after)
	}
	if reopts != 0 {
		t.Errorf("default policy ran %d re-opt checks", reopts)
	}

	// 10%% threshold: the 6-hop detour is 3x the fresh 2-hop tree.
	_, after, reopts = scenario(0.1)
	if after.NumEdges() != 2 || !after.Has(1, 2) {
		t.Errorf("re-optimized tree = %v, want 0-1-2 restored", after)
	}
	if reopts == 0 {
		t.Error("no re-opt checks ran")
	}
}
