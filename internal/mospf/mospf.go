// Package mospf implements the MOSPF-style baseline the paper compares
// against (§2): multicast membership is flooded in group-membership LSAs,
// and topology computation is on-demand and data-driven — when a datagram
// for group G from source S reaches a router with no (S,G) cache entry, the
// router computes a shortest-path tree rooted at S spanning G's members,
// caches it, and forwards along it. Forwarding then triggers the same
// computation at every downstream router, so one membership event followed
// by one datagram costs a topology computation at every switch involved in
// the MC.
//
// The package exists to reproduce the paper's overhead comparison; it
// implements enough of MOSPF (RFC 1584's cost model, not its full packet
// formats) to measure computations and floodings per event faithfully.
package mospf

import (
	"errors"
	"fmt"

	"dgmc/internal/flood"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// GroupID identifies a multicast group.
type GroupID uint32

// Metrics aggregates baseline activity network-wide.
type Metrics struct {
	// Events counts membership events.
	Events uint64
	// Computations counts SPT computations (cache misses).
	Computations uint64
	// Datagrams counts data packets injected.
	Datagrams uint64
	// Forwards counts hop-by-hop datagram copies.
	Forwards uint64
	// Delivered counts datagram arrivals at member switches.
	Delivered uint64
}

// membershipLSA is flooded when a switch's membership in a group changes.
type membershipLSA struct {
	src   topo.SwitchID
	group GroupID
	join  bool
}

// datagram is a forwarded data packet.
type datagram struct {
	source topo.SwitchID
	group  GroupID
	from   topo.SwitchID // upstream switch, to avoid reflecting
	id     uint64
}

type cacheKey struct {
	source topo.SwitchID
	group  GroupID
}

// Config configures a MOSPF domain.
type Config struct {
	// Net is the flooding fabric. Required.
	Net *flood.Network
	// ComputeTime is the cost of one SPT computation.
	ComputeTime sim.Time
}

// Domain runs the MOSPF baseline on every switch of the network.
type Domain struct {
	k           *sim.Kernel
	net         *flood.Network
	computeTime sim.Time
	n           int

	switches []*mswitch
	metrics  *Metrics
	nextID   uint64
}

type mswitch struct {
	id      topo.SwitchID
	d       *Domain
	image   *topo.Graph
	members map[GroupID]mctree.Members
	cache   map[cacheKey]*mctree.Tree
	data    *sim.Mailbox
}

// NewDomain builds the per-switch state and spawns the LSA and data-plane
// processes.
func NewDomain(k *sim.Kernel, cfg Config) (*Domain, error) {
	if cfg.Net == nil {
		return nil, errors.New("mospf: Config.Net is required")
	}
	if cfg.ComputeTime < 0 {
		return nil, fmt.Errorf("mospf: negative compute time %v", cfg.ComputeTime)
	}
	d := &Domain{
		k:           k,
		net:         cfg.Net,
		computeTime: cfg.ComputeTime,
		n:           cfg.Net.Graph().NumSwitches(),
		metrics:     &Metrics{},
	}
	d.switches = make([]*mswitch, d.n)
	for i := 0; i < d.n; i++ {
		sw := &mswitch{
			id:      topo.SwitchID(i),
			d:       d,
			image:   cfg.Net.Graph().Clone(),
			members: make(map[GroupID]mctree.Members),
			cache:   make(map[cacheKey]*mctree.Tree),
			data:    sim.NewMailbox(k, fmt.Sprintf("mospf-data-%d", i)),
		}
		d.switches[i] = sw
		k.Spawn(fmt.Sprintf("mospf-%d-lsa", i), sw.lsaLoop)
		k.Spawn(fmt.Sprintf("mospf-%d-data", i), sw.dataLoop)
	}
	return d, nil
}

// Metrics returns the live metrics.
func (d *Domain) Metrics() *Metrics { return d.metrics }

// Members returns switch s's view of group g's member set.
func (d *Domain) Members(s topo.SwitchID, g GroupID) mctree.Members {
	return d.switches[s].members[g].Clone()
}

// CacheSize returns the number of cached (source, group) trees at switch s.
func (d *Domain) CacheSize(s topo.SwitchID) int { return len(d.switches[s].cache) }

// Join schedules a membership join at switch s for group g.
func (d *Domain) Join(at sim.Time, s topo.SwitchID, g GroupID) {
	d.k.ScheduleAt(at, func() {
		sw := d.switches[s]
		sw.applyMembership(membershipLSA{src: s, group: g, join: true})
		d.metrics.Events++
		d.net.Flood(s, membershipLSA{src: s, group: g, join: true})
	})
}

// Leave schedules a membership leave at switch s for group g.
func (d *Domain) Leave(at sim.Time, s topo.SwitchID, g GroupID) {
	d.k.ScheduleAt(at, func() {
		sw := d.switches[s]
		sw.applyMembership(membershipLSA{src: s, group: g, join: false})
		d.metrics.Events++
		d.net.Flood(s, membershipLSA{src: s, group: g, join: false})
	})
}

// SendDatagram schedules a data packet from source s to group g — the
// data-driven trigger for MOSPF's topology computations.
func (d *Domain) SendDatagram(at sim.Time, s topo.SwitchID, g GroupID) {
	d.k.ScheduleAt(at, func() {
		d.nextID++
		d.metrics.Datagrams++
		d.switches[s].data.Send(datagram{source: s, group: g, from: topo.NoSwitch, id: d.nextID}, 0)
	})
}

func (sw *mswitch) applyMembership(m membershipLSA) {
	g := sw.members[m.group]
	if g == nil {
		g = make(mctree.Members)
		sw.members[m.group] = g
	}
	if m.join {
		g[m.src] = mctree.SenderReceiver
	} else {
		delete(g, m.src)
	}
	// Membership changed: every cached tree for this group is stale.
	for key := range sw.cache {
		if key.group == m.group {
			delete(sw.cache, key)
		}
	}
}

// lsaLoop applies flooded membership LSAs.
func (sw *mswitch) lsaLoop(p *sim.Process) {
	for {
		del, ok := sw.d.net.Mailbox(sw.id).Recv(p).(flood.Delivery)
		if !ok {
			continue
		}
		if m, ok := del.Payload.(membershipLSA); ok {
			sw.applyMembership(m)
		}
	}
}

// dataLoop forwards datagrams, computing an SPT on cache miss — the heart
// of the data-driven cost model.
func (sw *mswitch) dataLoop(p *sim.Process) {
	for {
		dg, ok := sw.data.Recv(p).(datagram)
		if !ok {
			continue
		}
		key := cacheKey{dg.source, dg.group}
		tree, cached := sw.cache[key]
		if !cached {
			sw.d.metrics.Computations++
			p.Hold(sw.d.computeTime)
			members := sw.members[dg.group]
			t, err := (route.SPT{}).Compute(sw.image, mctree.Asymmetric, withSource(members, dg.source))
			if err != nil {
				continue // no route to some member; drop
			}
			sw.cache[key] = t
			tree = t
		}
		if m, ok := sw.members[dg.group][sw.id]; ok && m.CanReceive() {
			sw.d.metrics.Delivered++
		}
		for _, nb := range tree.Neighbors(sw.id) {
			if nb == dg.from {
				continue
			}
			l, ok := sw.image.Link(sw.id, nb)
			if !ok || l.Down {
				continue
			}
			sw.d.metrics.Forwards++
			fwd := dg
			fwd.from = sw.id
			sw.d.switches[nb].data.Send(fwd, l.Delay+sw.d.net.PerHop())
		}
	}
}

// withSource returns the group members as receivers plus the datagram
// source as the sole sender, so the SPT roots at the source even when it is
// not itself a group member.
func withSource(members mctree.Members, src topo.SwitchID) mctree.Members {
	out := make(mctree.Members, len(members)+1)
	for k := range members {
		out[k] = mctree.Receiver
	}
	out[src] |= mctree.Sender
	return out
}
