package mospf

import (
	"testing"
	"time"

	"dgmc/internal/flood"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const (
	testTc     = 100 * time.Microsecond
	testPerHop = 2 * time.Microsecond
)

func newDomain(t *testing.T, g *topo.Graph) (*sim.Kernel, *Domain) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	net, err := flood.New(k, g, testPerHop, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{Net: net, ComputeTime: testTc})
	if err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	if _, err := NewDomain(k, Config{}); err == nil {
		t.Error("missing Net accepted")
	}
	g, err := topo.Line(2, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	net, err := flood.New(k, g, 0, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(k, Config{Net: net, ComputeTime: -1}); err == nil {
		t.Error("negative Tc accepted")
	}
}

func TestMembershipLSAsReachAllSwitches(t *testing.T) {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 3, 1)
	d.Join(time.Millisecond, 0, 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		m := d.Members(topo.SwitchID(s), 1)
		if len(m) != 2 {
			t.Errorf("switch %d member view = %v", s, m)
		}
	}
	if d.Metrics().Events != 2 {
		t.Errorf("events = %d", d.Metrics().Events)
	}
}

func TestDatagramTriggersComputationAtEveryOnTreeSwitch(t *testing.T) {
	// Line 0-1-2-3, members at 0 and 3, source at 0: the delivery tree is
	// the whole line, so all 4 switches must compute.
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1)
	d.Join(0, 3, 1)
	d.SendDatagram(time.Millisecond, 0, 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Computations != 4 {
		t.Errorf("computations = %d, want 4 (every on-tree switch)", m.Computations)
	}
	if m.Delivered != 2 {
		t.Errorf("delivered = %d, want 2", m.Delivered)
	}
	if m.Forwards != 3 {
		t.Errorf("forwards = %d, want 3 hops", m.Forwards)
	}
}

func TestCacheAvoidsRecomputationUntilEvent(t *testing.T) {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1)
	d.Join(0, 3, 1)
	d.SendDatagram(time.Millisecond, 0, 1)
	d.SendDatagram(2*time.Millisecond, 0, 1) // cache hit everywhere
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.Computations != 4 {
		t.Errorf("computations = %d, want 4 (second datagram cached)", m.Computations)
	}
	if d.CacheSize(1) != 1 {
		t.Errorf("cache size at relay = %d", d.CacheSize(1))
	}

	// A membership event invalidates caches: the next datagram recomputes.
	d.Join(3*time.Millisecond, 2, 1)
	d.SendDatagram(4*time.Millisecond, 0, 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.Computations != 8 {
		t.Errorf("computations = %d, want 8 after cache flush", m.Computations)
	}
}

func TestPerSourceTreesMultiplyComputations(t *testing.T) {
	// Two sources into the same group: MOSPF builds one SPT per source at
	// every on-tree switch — the symmetric-MC weakness §2 describes.
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1)
	d.Join(0, 3, 1)
	d.SendDatagram(time.Millisecond, 0, 1)
	d.SendDatagram(2*time.Millisecond, 3, 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.Computations != 8 {
		t.Errorf("computations = %d, want 8 (4 per source)", m.Computations)
	}
}

func TestLeaveShrinksTree(t *testing.T) {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1)
	d.Join(0, 3, 1)
	d.Leave(time.Millisecond, 3, 1)
	d.SendDatagram(2*time.Millisecond, 0, 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Delivered != 1 {
		t.Errorf("delivered = %d, want only member 0", m.Delivered)
	}
	if m.Forwards != 0 {
		t.Errorf("forwards = %d, want 0 (tree is just the source)", m.Forwards)
	}
}
