package route

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

func grid(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Grid(4, 4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func symMembers(ids ...topo.SwitchID) mctree.Members {
	m := make(mctree.Members, len(ids))
	for _, s := range ids {
		m[s] = mctree.SenderReceiver
	}
	return m
}

func allAlgorithms() []Algorithm {
	return []Algorithm{SPH{}, KMB{}, SPT{}, NewCoreBased(), NewIncremental(SPH{})}
}

func TestComputeProducesValidTrees(t *testing.T) {
	g := grid(t)
	members := symMembers(0, 3, 12, 15) // four corners
	for _, alg := range allAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			for _, kind := range []mctree.Kind{mctree.Symmetric, mctree.ReceiverOnly} {
				tr, err := alg.Compute(g, kind, members)
				if err != nil {
					t.Fatalf("%s/%s: %v", alg.Name(), kind, err)
				}
				if err := tr.Validate(g, members); err != nil {
					t.Fatalf("%s/%s: invalid tree %v: %v", alg.Name(), kind, tr, err)
				}
				if tr.Kind != kind {
					t.Errorf("kind = %v, want %v", tr.Kind, kind)
				}
			}
		})
	}
}

func TestAsymmetricRootsAtSender(t *testing.T) {
	g := grid(t)
	members := mctree.Members{5: mctree.Sender, 0: mctree.Receiver, 15: mctree.Receiver}
	for _, alg := range []Algorithm{SPH{}, KMB{}, SPT{}, NewIncremental(SPH{})} {
		tr, err := alg.Compute(g, mctree.Asymmetric, members)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if tr.Root != 5 {
			t.Errorf("%s: root = %d, want 5", alg.Name(), tr.Root)
		}
		if err := tr.Validate(g, members); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestAsymmetricWithoutSenderFails(t *testing.T) {
	g := grid(t)
	members := mctree.Members{0: mctree.Receiver, 15: mctree.Receiver}
	for _, alg := range []Algorithm{SPH{}, KMB{}, SPT{}} {
		if _, err := alg.Compute(g, mctree.Asymmetric, members); !errors.Is(err, ErrNoSource) {
			t.Errorf("%s: err = %v, want ErrNoSource", alg.Name(), err)
		}
	}
	// Single receiver-only member is fine (degenerate MC).
	if _, err := (SPH{}).Compute(g, mctree.Asymmetric, mctree.Members{0: mctree.Receiver}); err != nil {
		t.Errorf("singleton asymmetric MC: %v", err)
	}
}

func TestSingletonAndEmptyMemberSets(t *testing.T) {
	g := grid(t)
	for _, alg := range allAlgorithms() {
		tr, err := alg.Compute(g, mctree.Symmetric, symMembers(7))
		if err != nil {
			t.Fatalf("%s singleton: %v", alg.Name(), err)
		}
		if tr.NumEdges() != 0 {
			t.Errorf("%s singleton: %d edges", alg.Name(), tr.NumEdges())
		}
	}
	tr, err := (SPH{}).Compute(g, mctree.Symmetric, mctree.Members{})
	if err != nil || tr.NumEdges() != 0 {
		t.Errorf("empty member set: %v %v", tr, err)
	}
}

func TestUnreachableMember(t *testing.T) {
	g, err := topo.Line(4, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	members := symMembers(0, 3)
	for _, alg := range allAlgorithms() {
		if _, err := alg.Compute(g, mctree.Symmetric, members); !errors.Is(err, ErrUnreachable) {
			t.Errorf("%s: err = %v, want ErrUnreachable", alg.Name(), err)
		}
	}
}

func TestInvalidKindRejected(t *testing.T) {
	g := grid(t)
	for _, alg := range allAlgorithms() {
		if _, err := alg.Compute(g, mctree.Kind(9), symMembers(0, 1)); err == nil {
			t.Errorf("%s accepted invalid kind", alg.Name())
		}
	}
}

func TestSPHLineIsExact(t *testing.T) {
	// On a path graph the Steiner tree is the sub-path between extremes.
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := (SPH{}).Compute(g, mctree.Symmetric, symMembers(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 3 || tr.Cost(g) != 30*time.Microsecond {
		t.Errorf("tree = %v cost %v", tr, tr.Cost(g))
	}
}

func TestKMBMatchesSPHOnSimpleCases(t *testing.T) {
	g := grid(t)
	members := symMembers(0, 3, 15)
	sph, err := (SPH{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	kmb, err := (KMB{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	// Both are 2-approximations; on a uniform grid with corner members
	// their costs must be within 2x of each other and span the members.
	if kmb.Cost(g) > 2*sph.Cost(g) || sph.Cost(g) > 2*kmb.Cost(g) {
		t.Errorf("cost gap too large: sph=%v kmb=%v", sph.Cost(g), kmb.Cost(g))
	}
}

func TestSPTUsesShortestPaths(t *testing.T) {
	g := grid(t) // uniform delays: SPT distance == hop distance * 10µs
	members := mctree.Members{0: mctree.Sender, 15: mctree.Receiver, 3: mctree.Receiver}
	tr, err := (SPT{}).Compute(g, mctree.Asymmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.PathDelay(g, 0, 15); d != 60*time.Microsecond {
		t.Errorf("delay root->15 over tree = %v, want 60µs (shortest)", d)
	}
	if d := tr.PathDelay(g, 0, 3); d != 30*time.Microsecond {
		t.Errorf("delay root->3 over tree = %v, want 30µs", d)
	}
}

func TestCoreSelection(t *testing.T) {
	g, err := topo.Line(5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	cb := NewCoreBased()
	core, err := cb.SelectCore(g, symMembers(0, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if core != 2 {
		t.Errorf("core = %d, want middle switch 2", core)
	}
	pinned := &CoreBased{Core: 4}
	tr, err := pinned.Compute(g, mctree.ReceiverOnly, symMembers(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 4 {
		t.Errorf("pinned core root = %d", tr.Root)
	}
	if !tr.On(4) {
		t.Error("pinned core not on tree")
	}
	if _, err := cb.SelectCore(g, mctree.Members{}); err == nil {
		t.Error("core selection with no members succeeded")
	}
}

func TestIncrementalJoinGraftsWithoutRebuilding(t *testing.T) {
	g := grid(t)
	alg := NewIncremental(SPH{})
	members := symMembers(0, 3)
	base, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	members[12] = mctree.SenderReceiver
	updated, err := alg.Update(g, mctree.Symmetric, members, base, &Change{Switch: 12, Join: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := updated.Validate(g, members); err != nil {
		t.Fatalf("grafted tree invalid: %v", err)
	}
	// Every old edge must survive a pure graft.
	for _, e := range base.Edges() {
		if !updated.Has(e.A, e.B) {
			t.Errorf("graft dropped edge %v", e)
		}
	}
}

func TestIncrementalLeavePrunesBranch(t *testing.T) {
	g, err := topo.Line(5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewIncremental(SPH{})
	members := symMembers(0, 2, 4)
	base, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if base.NumEdges() != 4 {
		t.Fatalf("base tree = %v", base)
	}
	delete(members, 4)
	updated, err := alg.Update(g, mctree.Symmetric, members, base, &Change{Switch: 4, Join: false})
	if err != nil {
		t.Fatal(err)
	}
	if updated.NumEdges() != 2 {
		t.Errorf("pruned tree = %v, want 0-1-2", updated)
	}
	if err := updated.Validate(g, members); err != nil {
		t.Errorf("pruned tree invalid: %v", err)
	}
}

func TestIncrementalLeaveKeepsRelayBranches(t *testing.T) {
	// Member in the middle leaves: its switch must remain as a relay.
	g, err := topo.Line(5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewIncremental(SPH{})
	members := symMembers(0, 2, 4)
	base, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	delete(members, 2)
	updated, err := alg.Update(g, mctree.Symmetric, members, base, &Change{Switch: 2, Join: false})
	if err != nil {
		t.Fatal(err)
	}
	if updated.NumEdges() != 4 {
		t.Errorf("middle leave should keep relay path: %v", updated)
	}
	if err := updated.Validate(g, members); err != nil {
		t.Errorf("tree invalid: %v", err)
	}
}

func TestIncrementalFallsBackWhenTreeInvalidated(t *testing.T) {
	g := grid(t)
	alg := NewIncremental(SPH{})
	members := symMembers(0, 15)
	base, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	// Fail a link on the tree; update must recompute around it.
	e := base.Edges()[0]
	if err := g.SetLinkDown(e.A, e.B, true); err != nil {
		t.Fatal(err)
	}
	members[5] = mctree.SenderReceiver
	updated, err := alg.Update(g, mctree.Symmetric, members, base, &Change{Switch: 5, Join: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := updated.Validate(g, members); err != nil {
		t.Errorf("fallback tree invalid: %v", err)
	}
	if updated.Has(e.A, e.B) {
		t.Error("updated tree still uses failed link")
	}
}

func TestIncrementalLeaveToSingleton(t *testing.T) {
	g := grid(t)
	alg := NewIncremental(SPH{})
	members := symMembers(0, 15)
	base, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	delete(members, 15)
	updated, err := alg.Update(g, mctree.Symmetric, members, base, &Change{Switch: 15, Join: false})
	if err != nil {
		t.Fatal(err)
	}
	if updated.NumEdges() != 0 {
		t.Errorf("singleton MC should have empty tree, got %v", updated)
	}
}

func TestIncrementalNilPrevFallsBack(t *testing.T) {
	g := grid(t)
	alg := NewIncremental(SPH{})
	members := symMembers(0, 15)
	tr, err := alg.Update(g, mctree.Symmetric, members, nil, &Change{Switch: 15, Join: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g, members); err != nil {
		t.Errorf("fallback tree invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := topo.DefaultGenConfig(40, 4)
	g, err := topo.Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		members := mctree.Members{}
		for len(members) < 6 {
			members[topo.SwitchID(rng.Intn(40))] = mctree.SenderReceiver
		}
		for _, alg := range allAlgorithms() {
			a, err := alg.Compute(g, mctree.Symmetric, members)
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			b, err := alg.Compute(g, mctree.Symmetric, members.Clone())
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if !a.Equal(b) {
				t.Errorf("%s nondeterministic: %v vs %v", alg.Name(), a, b)
			}
		}
	}
}

func TestRandomGraphsAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		n := 15 + rng.Intn(50)
		g, err := topo.Waxman(topo.DefaultGenConfig(n, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		members := mctree.Members{}
		cnt := 2 + rng.Intn(8)
		for len(members) < cnt {
			members[topo.SwitchID(rng.Intn(n))] = mctree.SenderReceiver
		}
		for _, alg := range allAlgorithms() {
			tr, err := alg.Compute(g, mctree.Symmetric, members)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.Name(), err)
			}
			if err := tr.Validate(g, members); err != nil {
				t.Fatalf("trial %d %s: %v (tree %v)", trial, alg.Name(), err, tr)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sph", "kmb", "spt", "cbt", "incremental"} {
		alg, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if alg == nil {
			t.Errorf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
	if got := NewIncremental(SPH{}).Name(); got != "incremental(sph)" {
		t.Errorf("incremental name = %q", got)
	}
}

// TestQuickLeavesAreAnchors: every leaf of a computed tree must be a member
// (or the root/core) — no algorithm may leave dangling relay branches.
func TestQuickLeavesAreAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		n := 12 + rng.Intn(40)
		g, err := topo.Waxman(topo.DefaultGenConfig(n, int64(trial)+500))
		if err != nil {
			t.Fatal(err)
		}
		members := mctree.Members{}
		cnt := 2 + rng.Intn(7)
		for len(members) < cnt {
			members[topo.SwitchID(rng.Intn(n))] = mctree.SenderReceiver
		}
		for _, alg := range allAlgorithms() {
			tr, err := alg.Compute(g, mctree.Symmetric, members)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.Name(), err)
			}
			for _, s := range tr.Nodes() {
				if len(tr.Neighbors(s)) != 1 {
					continue // not a leaf
				}
				if _, isMember := members[s]; isMember || s == tr.Root {
					continue
				}
				t.Fatalf("trial %d %s: leaf %d is neither member nor root (tree %v)",
					trial, alg.Name(), s, tr)
			}
		}
	}
}
