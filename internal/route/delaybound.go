package route

import (
	"errors"
	"fmt"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// ErrDelayUnsatisfiable is returned when a member cannot be reached within
// the delay bound even over its direct shortest path.
var ErrDelayUnsatisfiable = errors.New("route: delay bound unsatisfiable")

// DelayBounded computes trees with a quality-of-service constraint: the
// tree delay from the root to every member must not exceed Bound. This
// serves the paper's §2 observation that an event-driven protocol like
// D-GMC can negotiate QoS before data flows (which data-driven MOSPF
// cannot): the bound is part of the connection's contract and every
// proposal honours it.
//
// The algorithm is a constrained shortest-path heuristic: members are
// attached in SPH order via their cheapest path to the tree, but when that
// graft would break the member's delay bound, the member is attached along
// its direct shortest path from the root instead (which is minimal, so if
// it misses the bound no tree can satisfy it).
type DelayBounded struct {
	// Bound is the maximum root-to-member tree delay. Required.
	Bound time.Duration
}

var _ Algorithm = (*DelayBounded)(nil)

// Name implements Algorithm.
func (a DelayBounded) Name() string {
	return fmt.Sprintf("delay-bounded(%v)", a.Bound)
}

// Compute implements Algorithm.
func (a DelayBounded) Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	if a.Bound <= 0 {
		return nil, fmt.Errorf("route: non-positive delay bound %v", a.Bound)
	}
	span, root, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	if root == topo.NoSwitch && len(span) > 0 {
		root = span[0] // the delay bound needs an anchor point
	}
	t := mctree.NewWithRoot(kind, root)
	if len(span) <= 1 {
		return t, nil
	}
	rootSPT := g.ShortestPaths(root)
	onTree := map[topo.SwitchID]bool{root: true}
	remaining := make(map[topo.SwitchID]bool, len(span))
	for _, s := range span {
		if s != root {
			remaining[s] = true
		}
	}
	// delay[s] is the current tree delay from the root to on-tree switch s.
	delay := map[topo.SwitchID]time.Duration{root: 0}

	sc := topo.AcquireSSSP()
	defer topo.ReleaseSSSP(sc)
	for len(remaining) > 0 {
		dist, pred := nearestToTree(g, onTree, sc)
		best := topo.NoSwitch
		bestD := inf
		for s := range remaining {
			if dist[s] < bestD || (dist[s] == bestD && s < best) {
				bestD = dist[s]
				best = s
			}
		}
		if best == topo.NoSwitch || bestD == inf {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, keys(remaining))
		}
		// Where would the graft attach, and what root delay would result?
		attach := best
		for !onTree[attach] {
			attach = pred[attach]
		}
		grafted := delay[attach] + bestD
		if grafted <= a.Bound {
			a.graftWithDelays(g, t, onTree, delay, pred, best)
		} else {
			// Attach along the direct shortest path from the root.
			direct := rootSPT.Delay[best]
			if direct < 0 {
				return nil, fmt.Errorf("%w: %d", ErrUnreachable, best)
			}
			if direct > a.Bound {
				return nil, fmt.Errorf("%w: member %d needs %v, bound is %v",
					ErrDelayUnsatisfiable, best, direct, a.Bound)
			}
			path := rootSPT.Path(best)
			for i := 0; i+1 < len(path); i++ {
				u, v := path[i], path[i+1]
				if !t.Has(u, v) {
					t.AddEdge(u, v)
				}
				onTree[v] = true
				l, _ := g.Link(u, v)
				if du, ok := delay[u]; ok {
					if dv, seen := delay[v]; !seen || du+l.Delay < dv {
						delay[v] = du + l.Delay
					}
				}
			}
		}
		delete(remaining, best)
	}
	// Direct-path attachment can close cycles with earlier grafts; rebuild
	// a clean subtree if so, preferring low-delay paths.
	if t.NumEdges() != len(t.Nodes())-1 {
		t = a.rebuild(g, t, span, root)
	}
	// Post-condition: every member within bound (cycle-rebuild may have
	// changed delays; verify rather than trust).
	for _, m := range span {
		if m == root {
			continue
		}
		if d := t.PathDelay(g, root, m); d < 0 || d > a.Bound {
			// Last resort: the pure SPT satisfies the bound iff it is
			// satisfiable at all.
			spt, err := (SPT{}).Compute(g, kind, members)
			if err != nil {
				return nil, err
			}
			spt.Root = root
			return a.verify(g, spt, span, root)
		}
	}
	return t, nil
}

// graftWithDelays grafts the path to target and records root delays of the
// new on-tree switches.
func (a DelayBounded) graftWithDelays(g *topo.Graph, t *mctree.Tree, onTree map[topo.SwitchID]bool,
	delay map[topo.SwitchID]time.Duration, pred []topo.SwitchID, target topo.SwitchID) {
	// Collect the path back to the tree, then walk it forward.
	var rev []topo.SwitchID
	s := target
	for !onTree[s] {
		rev = append(rev, s)
		s = pred[s]
	}
	attach := s
	d := delay[attach]
	for i := len(rev) - 1; i >= 0; i-- {
		next := rev[i]
		l, _ := g.Link(s, next)
		d += l.Delay
		t.AddEdge(s, next)
		onTree[next] = true
		delay[next] = d
		s = next
	}
}

// rebuild extracts a low-delay spanning subtree from the (possibly cyclic)
// edge union: a Dijkstra from the root restricted to union edges, pruned to
// the members.
func (a DelayBounded) rebuild(g *topo.Graph, union *mctree.Tree, span []topo.SwitchID, root topo.SwitchID) *mctree.Tree {
	type item struct {
		s topo.SwitchID
		d time.Duration
	}
	dist := map[topo.SwitchID]time.Duration{root: 0}
	parent := map[topo.SwitchID]topo.SwitchID{root: topo.NoSwitch}
	// Simple Dijkstra over the union subgraph.
	done := map[topo.SwitchID]bool{}
	for {
		cur := item{s: topo.NoSwitch, d: inf}
		for s, d := range dist {
			if !done[s] && (d < cur.d || (d == cur.d && s < cur.s)) {
				cur = item{s, d}
			}
		}
		if cur.s == topo.NoSwitch {
			break
		}
		done[cur.s] = true
		for _, nb := range union.Neighbors(cur.s) {
			l, ok := g.Link(cur.s, nb)
			if !ok {
				continue
			}
			nd := cur.d + l.Delay
			if old, seen := dist[nb]; !seen || nd < old {
				dist[nb] = nd
				parent[nb] = cur.s
			}
		}
	}
	out := mctree.NewWithRoot(union.Kind, root)
	marked := map[topo.SwitchID]bool{}
	for _, m := range span {
		for s := m; !marked[s] && parent[s] != topo.NoSwitch; s = parent[s] {
			out.AddEdge(s, parent[s])
			marked[s] = true
		}
	}
	return out
}

// verify checks the bound on a candidate tree, returning
// ErrDelayUnsatisfiable if any member misses it.
func (a DelayBounded) verify(g *topo.Graph, t *mctree.Tree, span []topo.SwitchID, root topo.SwitchID) (*mctree.Tree, error) {
	for _, m := range span {
		if m == root {
			continue
		}
		if d := t.PathDelay(g, root, m); d < 0 || d > a.Bound {
			return nil, fmt.Errorf("%w: member %d at %v, bound %v", ErrDelayUnsatisfiable, m, d, a.Bound)
		}
	}
	return t, nil
}

// Update implements Algorithm by recomputation (incremental updates could
// violate the bound silently).
func (a DelayBounded) Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, _ *mctree.Tree, _ *Change) (*mctree.Tree, error) {
	return a.Compute(g, kind, members)
}
