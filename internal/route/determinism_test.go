package route

import (
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// This file pins the heap-based SSSP kernel to the O(n²) linear-min scan it
// replaced, bit for bit. D-GMC's consensus assumes every switch computes the
// same tree from the same image, so the kernel swap must not change a single
// predecessor choice — not even among equal-cost paths. The reference
// implementations below are verbatim copies of the replaced code.

// refNearestToTree is the pre-kernel multi-source linear-scan Dijkstra from
// this package.
func refNearestToTree(g *topo.Graph, onTree map[topo.SwitchID]bool) (dist []time.Duration, pred []topo.SwitchID) {
	n := g.NumSwitches()
	dist = make([]time.Duration, n)
	pred = make([]topo.SwitchID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		pred[i] = topo.NoSwitch
	}
	for s := range onTree {
		dist[s] = 0
	}
	for {
		u := topo.NoSwitch
		best := inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = topo.SwitchID(i)
			}
		}
		if u == topo.NoSwitch {
			break
		}
		done[u] = true
		for _, v := range g.Neighbors(u) {
			l, ok := g.Link(u, v)
			if !ok || l.Down {
				continue
			}
			if nd := dist[u] + l.Delay; nd < dist[v] || (nd == dist[v] && !done[v] && pred[v] > u) {
				dist[v] = nd
				pred[v] = u
			}
		}
	}
	return dist, pred
}

// refShortestPaths is the pre-kernel single-source linear-scan Dijkstra from
// topo.Graph.ShortestPaths.
func refShortestPaths(g *topo.Graph, src topo.SwitchID) *topo.SPT {
	t := &topo.SPT{
		Src:   src,
		Delay: make([]time.Duration, g.NumSwitches()),
		Pred:  make([]topo.SwitchID, g.NumSwitches()),
	}
	for i := range t.Delay {
		t.Delay[i] = -1
		t.Pred[i] = topo.NoSwitch
	}
	if src < 0 || int(src) >= g.NumSwitches() {
		return t
	}
	n := g.NumSwitches()
	dist := make([]time.Duration, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for {
		u := topo.NoSwitch
		best := inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = topo.SwitchID(i)
			}
		}
		if u == topo.NoSwitch {
			break
		}
		done[u] = true
		for _, v := range g.Neighbors(u) {
			l, ok := g.Link(u, v)
			if !ok || l.Down {
				continue
			}
			if nd := dist[u] + l.Delay; nd < dist[v] || (nd == dist[v] && !done[v] && t.Pred[v] > u) {
				dist[v] = nd
				t.Pred[v] = u
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i] < inf {
			t.Delay[i] = dist[i]
		}
	}
	t.Pred[src] = topo.NoSwitch
	return t
}

// refSPHCompute is SPH.Compute with the reference scan substituted in.
func refSPHCompute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	span, root, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	t := mctree.NewWithRoot(kind, root)
	if len(span) <= 1 {
		return t, nil
	}
	start := root
	if start == topo.NoSwitch {
		start = span[0]
	}
	onTree := map[topo.SwitchID]bool{start: true}
	remaining := make(map[topo.SwitchID]bool, len(span))
	for _, s := range span {
		if s != start {
			remaining[s] = true
		}
	}
	for len(remaining) > 0 {
		dist, pred := refNearestToTree(g, onTree)
		best := topo.NoSwitch
		bestD := inf
		for s := range remaining {
			if dist[s] < bestD || (dist[s] == bestD && s < best) {
				bestD = dist[s]
				best = s
			}
		}
		if best == topo.NoSwitch || bestD == inf {
			return nil, ErrUnreachable
		}
		graft(t, onTree, pred, best)
		delete(remaining, best)
	}
	return t, nil
}

// degradedCopy clones g and deterministically fails every fifth link, so the
// comparison also covers Down handling and unreachable switches.
func degradedCopy(t *testing.T, g *topo.Graph) *topo.Graph {
	t.Helper()
	c := g.Clone()
	for i, l := range c.Links() {
		if i%5 == 2 {
			if err := c.SetLinkDown(l.A, l.B, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestKernelMatchesLinearScanReference(t *testing.T) {
	for _, n := range []int{8, 24, 48, 96} {
		for seed := int64(1); seed <= 4; seed++ {
			base, err := topo.Waxman(topo.DefaultGenConfig(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range []*topo.Graph{base, degradedCopy(t, base)} {
				// Single-source: every root, exact Delay and Pred.
				for src := 0; src < n; src++ {
					got := g.ShortestPaths(topo.SwitchID(src))
					want := refShortestPaths(g, topo.SwitchID(src))
					for i := 0; i < n; i++ {
						if got.Delay[i] != want.Delay[i] || got.Pred[i] != want.Pred[i] {
							t.Fatalf("n=%d seed=%d src=%d switch %d: kernel (delay %v pred %d) != reference (delay %v pred %d)",
								n, seed, src, i, got.Delay[i], got.Pred[i], want.Delay[i], want.Pred[i])
						}
					}
				}
				// Multi-source: the seed sets SPH actually generates.
				sc := topo.AcquireSSSP()
				for _, onTree := range []map[topo.SwitchID]bool{
					{0: true},
					{topo.SwitchID(n / 2): true, topo.SwitchID(n - 1): true},
					{1: true, topo.SwitchID(n / 3): true, topo.SwitchID(2 * n / 3): true},
				} {
					gotD, gotP := nearestToTree(g, onTree, sc)
					wantD, wantP := refNearestToTree(g, onTree)
					for i := 0; i < n; i++ {
						if gotD[i] != wantD[i] || gotP[i] != wantP[i] {
							t.Fatalf("n=%d seed=%d onTree=%v switch %d: kernel (dist %v pred %d) != reference (dist %v pred %d)",
								n, seed, onTree, i, gotD[i], gotP[i], wantD[i], wantP[i])
						}
					}
				}
				topo.ReleaseSSSP(sc)
				// End to end: the trees the protocol would flood.
				members := mctree.Members{}
				for s := 0; s < n; s += 3 {
					members[topo.SwitchID(s)] = mctree.SenderReceiver
				}
				gotT, gotErr := (SPH{}).Compute(g, mctree.Symmetric, members)
				wantT, wantErr := refSPHCompute(g, mctree.Symmetric, members)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("n=%d seed=%d: kernel err %v, reference err %v", n, seed, gotErr, wantErr)
				}
				if gotErr == nil && !gotT.Equal(wantT) {
					t.Fatalf("n=%d seed=%d: kernel tree %v != reference tree %v", n, seed, gotT, wantT)
				}
			}
		}
	}
}
