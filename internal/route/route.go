// Package route implements the topology-computation algorithms that the
// D-GMC protocol plugs in (paper §3.5): the protocol itself is independent
// of how trees are computed, so this package provides both Steiner-tree
// heuristics for symmetric and receiver-only MCs and source-rooted
// shortest-path trees for asymmetric MCs, each in from-scratch and
// incremental-update variants.
package route

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// ErrUnreachable is returned when some member cannot be connected to the
// rest of the MC over up links.
var ErrUnreachable = errors.New("route: member unreachable")

// ErrNoSource is returned when an asymmetric MC has receivers but no
// sender to root the tree at.
var ErrNoSource = errors.New("route: asymmetric MC has no sender")

// Change describes a single membership delta, used by incremental updates.
type Change struct {
	// Switch is the member that joined or left.
	Switch topo.SwitchID
	// Join is true for a join, false for a leave.
	Join bool
}

// Algorithm computes MC topologies from a local network image and member
// list. Implementations must be deterministic: identical inputs produce
// identical trees, which the D-GMC consensus relies on for convergence.
type Algorithm interface {
	// Name identifies the algorithm in logs and benchmarks.
	Name() string
	// Compute builds a topology from scratch.
	Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error)
	// Update adapts prev to the new member list; delta describes the
	// triggering change when known (it may be ignored). Implementations
	// may fall back to Compute. prev may be nil.
	Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, prev *mctree.Tree, delta *Change) (*mctree.Tree, error)
}

// Compile-time interface checks.
var (
	_ Algorithm = (*SPH)(nil)
	_ Algorithm = (*KMB)(nil)
	_ Algorithm = (*SPT)(nil)
	_ Algorithm = (*CoreBased)(nil)
	_ Algorithm = (*Incremental)(nil)
)

// anchor picks the switches a tree must span for the given kind, plus the
// root annotation. For asymmetric MCs the tree is rooted at the
// lowest-numbered sender and spans all receivers (and remaining senders, so
// they stay attached for management traffic as ATM UNI does with its
// root-initiated joins).
func anchor(kind mctree.Kind, members mctree.Members) (span []topo.SwitchID, root topo.SwitchID, err error) {
	switch kind {
	case mctree.Asymmetric:
		senders := members.Senders()
		if len(senders) == 0 {
			if len(members) <= 1 {
				return members.IDs(), topo.NoSwitch, nil
			}
			return nil, topo.NoSwitch, ErrNoSource
		}
		return members.IDs(), senders[0], nil
	case mctree.Symmetric, mctree.ReceiverOnly:
		return members.IDs(), topo.NoSwitch, nil
	default:
		return nil, topo.NoSwitch, fmt.Errorf("route: invalid MC kind %d", kind)
	}
}

const inf = topo.Unreachable

// nearestToTree runs a deterministic multi-source Dijkstra from the tree's
// node set and returns, for every switch, the delay to the tree and the
// predecessor toward it. The returned slices alias sc and stay valid until
// sc's next use; sc lets the SPH-style attachment loops reuse one scratch
// across their O(members) Dijkstra runs without allocating.
func nearestToTree(g *topo.Graph, onTree map[topo.SwitchID]bool, sc *topo.SSSPScratch) (dist []time.Duration, pred []topo.SwitchID) {
	sc.Reset(g.NumSwitches())
	for s := range onTree {
		sc.Seed(s)
	}
	g.RunSSSP(sc, 0)
	return sc.Dist, sc.Pred
}

// graft adds the shortest path from target back to the tree (following
// pred) into t and marks the new nodes in onTree.
func graft(t *mctree.Tree, onTree map[topo.SwitchID]bool, pred []topo.SwitchID, target topo.SwitchID) {
	for s := target; !onTree[s]; s = pred[s] {
		p := pred[s]
		if p == topo.NoSwitch {
			return
		}
		t.AddEdge(s, p)
		onTree[s] = true
	}
}

// SPH is the shortest-path heuristic (Takahashi–Matsuyama) for Steiner
// trees: start from one member and repeatedly attach the member closest to
// the current tree via its shortest path. Its worst-case cost is within 2×
// optimal.
type SPH struct{}

// Name implements Algorithm.
func (SPH) Name() string { return "sph" }

// Compute implements Algorithm.
func (SPH) Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	span, root, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	t := mctree.NewWithRoot(kind, root)
	if len(span) <= 1 {
		return t, nil
	}
	start := root
	if start == topo.NoSwitch {
		start = span[0]
	}
	onTree := map[topo.SwitchID]bool{start: true}
	remaining := make(map[topo.SwitchID]bool, len(span))
	for _, s := range span {
		if s != start {
			remaining[s] = true
		}
	}
	sc := topo.AcquireSSSP()
	defer topo.ReleaseSSSP(sc)
	for len(remaining) > 0 {
		dist, pred := nearestToTree(g, onTree, sc)
		// Pick the closest remaining member; ties by lowest ID.
		best := topo.NoSwitch
		bestD := inf
		for s := range remaining {
			if dist[s] < bestD || (dist[s] == bestD && s < best) {
				bestD = dist[s]
				best = s
			}
		}
		if best == topo.NoSwitch || bestD == inf {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, keys(remaining))
		}
		graft(t, onTree, pred, best)
		delete(remaining, best)
	}
	return t, nil
}

// Update implements Algorithm by recomputing from scratch; use Incremental
// to wrap SPH with cheap per-event updates.
func (a SPH) Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, _ *mctree.Tree, _ *Change) (*mctree.Tree, error) {
	return a.Compute(g, kind, members)
}

func keys(m map[topo.SwitchID]bool) []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KMB is the Kou–Markowsky–Berman Steiner heuristic: build the complete
// distance graph over members, take its minimum spanning tree, expand each
// MST edge into the underlying shortest path, and prune non-member leaves.
// Like SPH it is within 2× optimal but often trades slightly worse trees
// for a more parallelizable structure.
type KMB struct{}

// Name implements Algorithm.
func (KMB) Name() string { return "kmb" }

// Compute implements Algorithm.
func (KMB) Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	span, root, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	t := mctree.NewWithRoot(kind, root)
	if len(span) <= 1 {
		return t, nil
	}
	// Shortest paths from every member.
	spts := make(map[topo.SwitchID]*topo.SPT, len(span))
	for _, s := range span {
		spts[s] = g.ShortestPaths(s)
	}
	// Prim's MST over the member distance graph, deterministic ties.
	in := map[topo.SwitchID]bool{span[0]: true}
	type via struct {
		from topo.SwitchID
		d    time.Duration
	}
	bestTo := make(map[topo.SwitchID]via, len(span))
	for _, s := range span[1:] {
		d := spts[span[0]].Delay[s]
		if d < 0 {
			return nil, fmt.Errorf("%w: %d", ErrUnreachable, s)
		}
		bestTo[s] = via{span[0], d}
	}
	for len(in) < len(span) {
		pick := topo.NoSwitch
		pickD := inf
		for s, v := range bestTo {
			if in[s] {
				continue
			}
			if v.d < pickD || (v.d == pickD && s < pick) {
				pickD = v.d
				pick = s
			}
		}
		if pick == topo.NoSwitch {
			return nil, ErrUnreachable
		}
		// Expand the MST edge into its underlying path.
		path := spts[bestTo[pick].from].Path(pick)
		for i := 0; i+1 < len(path); i++ {
			t.AddEdge(path[i], path[i+1])
		}
		in[pick] = true
		for s := range bestTo {
			if in[s] {
				continue
			}
			if d := spts[pick].Delay[s]; d >= 0 && d < bestTo[s].d {
				bestTo[s] = via{pick, d}
			}
		}
	}
	// Expanded paths may overlap and create cycles; rebuild as a true tree
	// with BFS over the union subgraph, then prune non-member leaves.
	pruned := spanningSubtree(g, t, span)
	pruned.Kind = kind
	pruned.Root = root
	return pruned, nil
}

// Update implements Algorithm by recomputation.
func (a KMB) Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, _ *mctree.Tree, _ *Change) (*mctree.Tree, error) {
	return a.Compute(g, kind, members)
}

// spanningSubtree extracts a cycle-free subtree of union (a subgraph given
// as a Tree's edge set) that spans span, pruning everything else.
func spanningSubtree(g *topo.Graph, union *mctree.Tree, span []topo.SwitchID) *mctree.Tree {
	if len(span) == 0 {
		return mctree.New(union.Kind)
	}
	// BFS from span[0] over the union edges; keep parent pointers.
	parent := map[topo.SwitchID]topo.SwitchID{span[0]: topo.NoSwitch}
	queue := []topo.SwitchID{span[0]}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range union.Neighbors(u) {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	// Keep only edges on paths from members to the BFS root.
	keep := mctree.New(union.Kind)
	marked := map[topo.SwitchID]bool{}
	for _, m := range span {
		if _, ok := parent[m]; !ok {
			continue
		}
		for s := m; !marked[s] && parent[s] != topo.NoSwitch; s = parent[s] {
			keep.AddEdge(s, parent[s])
			marked[s] = true
		}
	}
	_ = g
	return keep
}

// SPT builds a source-rooted shortest-path tree: the union of the shortest
// paths from the root to every member. This is the MOSPF-style topology the
// paper uses for asymmetric MCs.
type SPT struct{}

// Name implements Algorithm.
func (SPT) Name() string { return "spt" }

// Compute implements Algorithm.
func (SPT) Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	span, root, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	if root == topo.NoSwitch && len(span) > 0 {
		root = span[0] // symmetric/receiver-only fall back to lowest member
	}
	t := mctree.NewWithRoot(kind, root)
	if len(span) <= 1 {
		return t, nil
	}
	spt := g.ShortestPaths(root)
	for _, m := range span {
		if m == root {
			continue
		}
		path := spt.Path(m)
		if path == nil {
			return nil, fmt.Errorf("%w: %d", ErrUnreachable, m)
		}
		for i := 0; i+1 < len(path); i++ {
			t.AddEdge(path[i], path[i+1])
		}
	}
	return t, nil
}

// Update implements Algorithm by recomputation.
func (a SPT) Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, _ *mctree.Tree, _ *Change) (*mctree.Tree, error) {
	return a.Compute(g, kind, members)
}

// CoreBased builds a CBT-style shared tree: a core switch is selected and
// every member is attached along its unicast shortest path to the core.
// Zero value uses median core selection; set Core to pin one.
type CoreBased struct {
	// Core, when >= 0, is used as the core switch. Otherwise the member
	// with minimum total delay to all other members is chosen.
	Core topo.SwitchID
}

// NewCoreBased returns a CoreBased with automatic core selection.
func NewCoreBased() *CoreBased { return &CoreBased{Core: topo.NoSwitch} }

// Name implements Algorithm.
func (c *CoreBased) Name() string { return "cbt" }

// SelectCore returns the core used for the given members: the pinned core
// if set, else the member minimizing total shortest-path delay to all
// members (ties to the lowest ID).
func (c *CoreBased) SelectCore(g *topo.Graph, members mctree.Members) (topo.SwitchID, error) {
	if c.Core != topo.NoSwitch {
		return c.Core, nil
	}
	ids := members.IDs()
	if len(ids) == 0 {
		return topo.NoSwitch, errors.New("route: no members to select core from")
	}
	best := topo.NoSwitch
	bestSum := inf
	for _, cand := range ids {
		spt := g.ShortestPaths(cand)
		var sum time.Duration
		ok := true
		for _, m := range ids {
			if spt.Delay[m] < 0 {
				ok = false
				break
			}
			sum += spt.Delay[m]
		}
		if !ok {
			continue
		}
		if sum < bestSum || (sum == bestSum && cand < best) {
			bestSum = sum
			best = cand
		}
	}
	if best == topo.NoSwitch {
		return topo.NoSwitch, ErrUnreachable
	}
	return best, nil
}

// Compute implements Algorithm.
func (c *CoreBased) Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	span, _, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	if len(span) == 0 {
		return mctree.New(kind), nil
	}
	core, err := c.SelectCore(g, members)
	if err != nil {
		return nil, err
	}
	t := mctree.NewWithRoot(kind, core)
	if len(span) == 1 && span[0] == core {
		return t, nil
	}
	spt := g.ShortestPaths(core)
	for _, m := range span {
		if m == core {
			continue
		}
		path := spt.Path(m)
		if path == nil {
			return nil, fmt.Errorf("%w: %d", ErrUnreachable, m)
		}
		for i := 0; i+1 < len(path); i++ {
			t.AddEdge(path[i], path[i+1])
		}
	}
	return t, nil
}

// Update implements Algorithm by recomputation.
func (c *CoreBased) Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, _ *mctree.Tree, _ *Change) (*mctree.Tree, error) {
	return c.Compute(g, kind, members)
}

// Incremental wraps a base algorithm with the cheap per-event updates the
// paper recommends (§3.5): a join grafts the shortest path from the new
// member to the existing tree; a leave prunes the branch back to the
// nearest still-needed switch. Anything more complicated (link events,
// empty previous tree, root changes) falls back to the base Compute.
type Incremental struct {
	// Base computes from-scratch topologies. Required.
	Base Algorithm
}

// NewIncremental wraps base.
func NewIncremental(base Algorithm) *Incremental { return &Incremental{Base: base} }

// Name implements Algorithm.
func (a *Incremental) Name() string { return "incremental(" + a.Base.Name() + ")" }

// Compute implements Algorithm by delegating to the base.
func (a *Incremental) Compute(g *topo.Graph, kind mctree.Kind, members mctree.Members) (*mctree.Tree, error) {
	return a.Base.Compute(g, kind, members)
}

// Update implements Algorithm.
func (a *Incremental) Update(g *topo.Graph, kind mctree.Kind, members mctree.Members, prev *mctree.Tree, delta *Change) (*mctree.Tree, error) {
	if prev == nil || delta == nil {
		return a.Base.Compute(g, kind, members)
	}
	span, root, err := anchor(kind, members)
	if err != nil {
		return nil, err
	}
	if prev.Kind != kind || prev.Root != root {
		return a.Base.Compute(g, kind, members)
	}
	// The previous tree must still be valid in the current network image.
	if err := prev.Validate(g, nil); err != nil {
		return a.Base.Compute(g, kind, members)
	}
	t := prev.Clone()
	if delta.Join {
		return a.graftJoin(g, t, span, delta.Switch)
	}
	return a.pruneLeave(g, kind, members, t, span)
}

func (a *Incremental) graftJoin(g *topo.Graph, t *mctree.Tree, span []topo.SwitchID, joined topo.SwitchID) (*mctree.Tree, error) {
	onTree := map[topo.SwitchID]bool{}
	for _, s := range t.Nodes() {
		onTree[s] = true
	}
	if len(onTree) == 0 {
		// Previous tree was a singleton (no edges); seed it with the other
		// members so the graft has a target.
		for _, s := range span {
			if s != joined {
				onTree[s] = true
			}
		}
	}
	if onTree[joined] {
		return t, nil // already spanned as a relay
	}
	sc := topo.AcquireSSSP()
	defer topo.ReleaseSSSP(sc)
	dist, pred := nearestToTree(g, onTree, sc)
	if dist[joined] == inf {
		return nil, fmt.Errorf("%w: %d", ErrUnreachable, joined)
	}
	graft(t, onTree, pred, joined)
	return t, nil
}

func (a *Incremental) pruneLeave(g *topo.Graph, kind mctree.Kind, members mctree.Members, t *mctree.Tree, span []topo.SwitchID) (*mctree.Tree, error) {
	if len(span) <= 1 {
		return mctree.NewWithRoot(kind, t.Root), nil
	}
	needed := make(map[topo.SwitchID]bool, len(span))
	for _, s := range span {
		needed[s] = true
	}
	if t.Root != topo.NoSwitch {
		needed[t.Root] = true
	}
	// Repeatedly trim leaves that are not needed.
	for {
		trimmed := false
		for _, s := range t.Nodes() {
			if needed[s] {
				continue
			}
			nb := t.Neighbors(s)
			if len(nb) == 1 {
				t.RemoveEdge(s, nb[0])
				trimmed = true
			}
		}
		if !trimmed {
			break
		}
	}
	_ = g
	_ = members
	return t, nil
}

// ByName returns a ready-to-use algorithm by name: "sph", "kmb", "spt",
// "cbt", or "incremental" (incremental over SPH).
func ByName(name string) (Algorithm, error) {
	switch name {
	case "sph":
		return SPH{}, nil
	case "kmb":
		return KMB{}, nil
	case "spt":
		return SPT{}, nil
	case "cbt":
		return NewCoreBased(), nil
	case "incremental":
		return NewIncremental(SPH{}), nil
	default:
		return nil, fmt.Errorf("route: unknown algorithm %q", name)
	}
}
