package route

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

func TestDelayBoundedValidation(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (DelayBounded{}).Compute(g, mctree.Symmetric, symMembers(0, 2)); err == nil {
		t.Error("zero bound accepted")
	}
	if got := (DelayBounded{Bound: time.Millisecond}).Name(); got != "delay-bounded(1ms)" {
		t.Errorf("name = %q", got)
	}
}

func TestDelayBoundedLooseBoundMatchesSPH(t *testing.T) {
	// With a generous bound the constraint never bites, so the tree is a
	// cheap Steiner tree spanning the members.
	g, err := topo.Grid(4, 4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := symMembers(0, 3, 12, 15)
	loose := DelayBounded{Bound: time.Second}
	tr, err := loose.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g, members); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	sph, err := (SPH{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost(g) > 2*sph.Cost(g) {
		t.Errorf("loose-bound cost %v far above SPH %v", tr.Cost(g), sph.Cost(g))
	}
}

func TestDelayBoundedTightBoundForcesDirectPaths(t *testing.T) {
	// Line 0-1-2-3-4-5 with member set {0, 5}, root 0: any tree must use
	// the full 50µs path. A 30µs bound is unsatisfiable.
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := symMembers(0, 5)
	if _, err := (DelayBounded{Bound: 30 * time.Microsecond}).Compute(g, mctree.Symmetric, members); !errors.Is(err, ErrDelayUnsatisfiable) {
		t.Errorf("err = %v, want ErrDelayUnsatisfiable", err)
	}
	// Exactly-enough bound succeeds.
	tr, err := (DelayBounded{Bound: 50 * time.Microsecond}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g, members); err != nil {
		t.Error(err)
	}
}

func TestDelayBoundedBitesOnDeepGrafts(t *testing.T) {
	// SPH grafts members onto the *nearest tree point*, which can leave a
	// member far from the root even when it has a short direct path:
	//
	//   0 --1µs-- 1 --1µs-- 2     (members 0 and 2; SPH builds this first)
	//             |
	//           1.5µs
	//             |
	//   0 -----2.4µs----- 3      (member 3: graft via 1 = 2.5µs from root,
	//                             direct = 2.4µs)
	//
	// Unconstrained SPH grafts 3 at switch 1 (cheapest: 1.5µs edge), giving
	// a 2.5µs root delay. A 2.4µs bound forces the direct link.
	g := topo.New(4)
	mustAdd := func(a, b topo.SwitchID, d time.Duration) {
		t.Helper()
		if err := g.AddLink(a, b, d, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, time.Microsecond)
	mustAdd(1, 2, time.Microsecond)
	mustAdd(1, 3, 1500*time.Nanosecond)
	mustAdd(0, 3, 2400*time.Nanosecond)

	members := symMembers(0, 2, 3)
	sph, err := (SPH{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if d := sph.PathDelay(g, 0, 3); d != 2500*time.Nanosecond {
		t.Fatalf("unconstrained delay 0->3 = %v (tree %v), want 2.5µs", d, sph)
	}
	bounded, err := (DelayBounded{Bound: 2400 * time.Nanosecond}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := bounded.Validate(g, members); err != nil {
		t.Fatalf("bounded tree invalid: %v (tree %v)", err, bounded)
	}
	if d := bounded.PathDelay(g, 0, 3); d > 2400*time.Nanosecond {
		t.Errorf("bounded delay 0->3 = %v exceeds bound (tree %v)", d, bounded)
	}
	if d := bounded.PathDelay(g, 0, 2); d > 2400*time.Nanosecond {
		t.Errorf("bounded delay 0->2 = %v exceeds bound", d)
	}
	if bounded.Cost(g) < sph.Cost(g) {
		t.Errorf("bounded tree cheaper than unconstrained: %v < %v", bounded.Cost(g), sph.Cost(g))
	}
}

func TestDelayBoundedAsymmetricRootsAtSender(t *testing.T) {
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := mctree.Members{4: mctree.Sender, 0: mctree.Receiver, 8: mctree.Receiver}
	tr, err := (DelayBounded{Bound: time.Second}).Compute(g, mctree.Asymmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 4 {
		t.Errorf("root = %d", tr.Root)
	}
}

func TestDelayBoundedRandomGraphsHonourBound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 15 + rng.Intn(40)
		g, err := topo.Waxman(topo.DefaultGenConfig(n, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		members := mctree.Members{}
		for len(members) < 5 {
			members[topo.SwitchID(rng.Intn(n))] = mctree.SenderReceiver
		}
		root := members.IDs()[0]
		spt := g.ShortestPaths(root)
		// Bound = 1.2× the worst direct distance: always satisfiable, often
		// binding.
		var worst time.Duration
		for _, m := range members.IDs() {
			if spt.Delay[m] > worst {
				worst = spt.Delay[m]
			}
		}
		bound := worst + worst/5
		alg := DelayBounded{Bound: bound}
		tr, err := alg.Compute(g, mctree.Symmetric, members)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(g, members); err != nil {
			t.Fatalf("trial %d: invalid tree: %v", trial, err)
		}
		for _, m := range members.IDs() {
			if m == root {
				continue
			}
			if d := tr.PathDelay(g, root, m); d < 0 || d > bound {
				t.Fatalf("trial %d: member %d delay %v > bound %v (tree %v)", trial, m, d, bound, tr)
			}
		}
		// Tightest satisfiable bound also works (pure SPT fallback).
		tight := DelayBounded{Bound: worst}
		tr2, err := tight.Compute(g, mctree.Symmetric, members)
		if err != nil {
			t.Fatalf("trial %d tight: %v", trial, err)
		}
		for _, m := range members.IDs() {
			if d := tr2.PathDelay(g, root, m); d > worst {
				t.Fatalf("trial %d tight: member %d delay %v > %v", trial, m, d, worst)
			}
		}
		// Below the tightest bound: must fail.
		if worst > time.Microsecond {
			impossible := DelayBounded{Bound: worst - time.Microsecond}
			if _, err := impossible.Compute(g, mctree.Symmetric, members); err == nil {
				// Only an error when the worst member actually defines it.
				sawWorst := false
				for _, m := range members.IDs() {
					if spt.Delay[m] == worst {
						sawWorst = true
					}
				}
				if sawWorst {
					t.Fatalf("trial %d: impossible bound accepted", trial)
				}
			}
		}
	}
}

func TestDelayBoundedUnderProtocolUse(t *testing.T) {
	// Update must recompute (not incrementally patch) so bounds hold.
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	alg := DelayBounded{Bound: time.Second}
	members := symMembers(0, 8)
	prev, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	members[2] = mctree.SenderReceiver
	next, err := alg.Update(g, mctree.Symmetric, members, prev, &Change{Switch: 2, Join: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(g, members); err != nil {
		t.Error(err)
	}
}
