package route_test

import (
	"fmt"
	"log"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// ExampleSPH computes a Steiner tree over a grid with the shortest-path
// heuristic.
func ExampleSPH() {
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	members := mctree.Members{
		0: mctree.SenderReceiver,
		8: mctree.SenderReceiver,
	}
	tree, err := route.SPH{}.Compute(g, mctree.Symmetric, members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edges:", tree.NumEdges())
	fmt.Println("cost:", tree.Cost(g))
	// Output:
	// edges: 4
	// cost: 40µs
}

// ExampleIncremental grafts a new member onto an existing tree instead of
// recomputing from scratch (paper §3.5).
func ExampleIncremental() {
	g, err := topo.Line(5, 10*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	alg := route.NewIncremental(route.SPH{})
	members := mctree.Members{0: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	base, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		log.Fatal(err)
	}
	members[4] = mctree.SenderReceiver
	updated, err := alg.Update(g, mctree.Symmetric, members, base,
		&route.Change{Switch: 4, Join: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before:", base)
	fmt.Println("after: ", updated)
	// Output:
	// before: symmetric{0-1 1-2}
	// after:  symmetric{0-1 1-2 2-3 3-4}
}

// ExampleDelayBounded enforces a QoS delay bound on the computed tree.
func ExampleDelayBounded() {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	members := mctree.Members{0: mctree.SenderReceiver, 3: mctree.SenderReceiver}
	alg := route.DelayBounded{Bound: 30 * time.Microsecond}
	tree, err := alg.Compute(g, mctree.Symmetric, members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worst member delay:", tree.PathDelay(g, 0, 3))

	tight := route.DelayBounded{Bound: 20 * time.Microsecond}
	if _, err := tight.Compute(g, mctree.Symmetric, members); err != nil {
		fmt.Println("20µs bound:", "unsatisfiable")
	}
	// Output:
	// worst member delay: 30µs
	// 20µs bound: unsatisfiable
}
