package flood

import (
	"testing"
	"time"

	"dgmc/internal/faults"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// TestReliableMatchesHopByHop is the byte-identical guarantee: with no
// faults injected, Reliable must reproduce HopByHop's deliveries exactly —
// same arrival times, same data-copy count — with zero retransmissions.
func TestReliableMatchesHopByHop(t *testing.T) {
	gens := []func() (*topo.Graph, error){
		func() (*topo.Graph, error) { return topo.Ring(7, 10*time.Microsecond) },
		func() (*topo.Graph, error) { return topo.Grid(3, 4, 5*time.Microsecond) },
		func() (*topo.Graph, error) { return topo.Waxman(topo.DefaultGenConfig(25, 3)) },
	}
	for gi, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		var results [2][][]sim.Time
		var copies [2]uint64
		for mi, mode := range []Mode{HopByHop, Reliable} {
			k := sim.NewKernel()
			n, err := New(k, g, hop, mode)
			if err != nil {
				t.Fatal(err)
			}
			arrivals := collect(k, n, g.NumSwitches())
			n.Flood(2, "payload")
			n.Flood(5, "second")
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
			results[mi] = arrivals
			copies[mi] = n.Copies()
			if mode == Reliable {
				rs := n.Reliability()
				if rs.Retransmits != 0 || rs.Drops != 0 || rs.GiveUps != 0 {
					t.Errorf("graph %d: fault-free reliable run recovered: %s", gi, rs)
				}
				if rs.DataSends == 0 || rs.AcksReceived != rs.DataSends {
					t.Errorf("graph %d: ack accounting off: %s", gi, rs)
				}
			}
			k.Shutdown()
		}
		if copies[0] != copies[1] {
			t.Errorf("graph %d: data copies %d (hop-by-hop) vs %d (reliable)", gi, copies[0], copies[1])
		}
		for s := 0; s < g.NumSwitches(); s++ {
			if len(results[0][s]) != len(results[1][s]) {
				t.Fatalf("graph %d switch %d: hopbyhop %v vs reliable %v", gi, s, results[0][s], results[1][s])
			}
			for i := range results[0][s] {
				if results[0][s][i] != results[1][s][i] {
					t.Errorf("graph %d switch %d: arrival %v vs %v", gi, s, results[0][s][i], results[1][s][i])
				}
			}
		}
	}
}

// TestReliableDeliversUnderLoss floods over a heavily lossy fabric and
// requires every switch to still receive exactly one copy per flood.
func TestReliableDeliversUnderLoss(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(15, 11))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	inj, err := faults.New(k, faults.Plan{
		Seed:    99,
		Default: faults.LinkFaults{Drop: 0.3, Dup: 0.1, Jitter: 3 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(k, g, hop, Reliable, WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	arrivals := collect(k, n, 15)
	for origin := 0; origin < 3; origin++ {
		n.Flood(topo.SwitchID(origin), origin)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 15; s++ {
		want := 3
		if s < 3 {
			want = 2 // origins do not hear their own flood
		}
		if len(arrivals[s]) != want {
			t.Errorf("switch %d received %d deliveries, want %d", s, len(arrivals[s]), want)
		}
	}
	rs := n.Reliability()
	if rs.Retransmits == 0 || rs.Drops == 0 || rs.DupSuppressed == 0 {
		t.Errorf("loss run did not exercise recovery: %s", rs)
	}
	if rs.GiveUps != 0 {
		t.Errorf("%d give-ups despite the retry budget; arrivals may be incomplete", rs.GiveUps)
	}
}

func TestModeString(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
	}{
		{Direct, "direct"},
		{HopByHop, "hop-by-hop"},
		{TreeBased, "tree-based"},
		{Reliable, "reliable"},
		{Mode(42), "Mode(42)"},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", uint8(c.mode), got, c.want)
		}
	}
}

func TestUnicastNeighborsOnly(t *testing.T) {
	for _, mode := range []Mode{Direct, Reliable} {
		g, err := topo.Line(4, 10*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		n, err := New(k, g, hop, mode)
		if err != nil {
			t.Fatal(err)
		}
		var got []Unicast
		k.Spawn("sink", func(p *sim.Process) {
			for {
				if u, ok := n.Mailbox(1).Recv(p).(Unicast); ok {
					got = append(got, u)
				}
			}
		})
		n.Unicast(0, 1, "ping")  // neighbors: delivered
		n.Unicast(0, 3, "drop")  // not adjacent: silently discarded
		n.Unicast(0, 2, "drop2") // not adjacent either
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Payload != "ping" || got[0].From != 0 || got[0].To != 1 {
			t.Errorf("%v: unicast deliveries = %+v, want one ping 0→1", mode, got)
		}
		k.Shutdown()
	}
}

func TestFaultOptionsValidation(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	inj, err := faults.New(k, faults.Plan{Default: faults.LinkFaults{Drop: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Direct, HopByHop, TreeBased} {
		if _, err := New(k, g, hop, mode, WithFaults(inj)); err == nil {
			t.Errorf("fault injection accepted in %v mode", mode)
		}
	}
	if _, err := New(k, g, hop, Reliable, WithFaults(inj)); err != nil {
		t.Errorf("fault injection rejected in Reliable mode: %v", err)
	}
	if _, err := New(k, g, hop, Reliable, WithRetryBudget(-1)); err == nil {
		t.Error("negative retry budget accepted")
	}
}
