package flood

import (
	"testing"
	"time"

	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const hop = 2 * time.Microsecond

func lineNet(t *testing.T, mode Mode) (*sim.Kernel, *Network) {
	t.Helper()
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	n, err := New(k, g, hop, mode)
	if err != nil {
		t.Fatal(err)
	}
	return k, n
}

// collect spawns sink processes recording per-switch arrival times.
func collect(k *sim.Kernel, n *Network, numSwitches int) []([]sim.Time) {
	arrivals := make([][]sim.Time, numSwitches)
	for i := 0; i < numSwitches; i++ {
		i := i
		k.Spawn("sink", func(p *sim.Process) {
			for {
				if _, ok := n.Mailbox(topo.SwitchID(i)).Recv(p).(Delivery); ok {
					arrivals[i] = append(arrivals[i], p.Now())
				}
			}
		})
	}
	return arrivals
}

func TestDirectArrivalTimes(t *testing.T) {
	k, n := lineNet(t, Direct)
	arrivals := collect(k, n, 4)
	n.Flood(0, "hello")
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Per hop: 10µs link + 2µs perHop = 12µs.
	if len(arrivals[0]) != 0 {
		t.Error("origin received its own flood")
	}
	for i, want := range []sim.Time{0, 12 * time.Microsecond, 24 * time.Microsecond, 36 * time.Microsecond} {
		if i == 0 {
			continue
		}
		if len(arrivals[i]) != 1 || arrivals[i][0] != want {
			t.Errorf("switch %d arrivals = %v, want [%v]", i, arrivals[i], want)
		}
	}
	if n.Floodings() != 1 {
		t.Errorf("floodings = %d", n.Floodings())
	}
}

func TestHopByHopMatchesDirect(t *testing.T) {
	gens := []func() (*topo.Graph, error){
		func() (*topo.Graph, error) { return topo.Ring(7, 10*time.Microsecond) },
		func() (*topo.Graph, error) { return topo.Grid(3, 4, 5*time.Microsecond) },
		func() (*topo.Graph, error) { return topo.Waxman(topo.DefaultGenConfig(25, 3)) },
	}
	for gi, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		var results [2][][]sim.Time
		for mi, mode := range []Mode{Direct, HopByHop} {
			k := sim.NewKernel()
			n, err := New(k, g, hop, mode)
			if err != nil {
				t.Fatal(err)
			}
			arrivals := collect(k, n, g.NumSwitches())
			n.Flood(2, "payload")
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
			results[mi] = arrivals
			k.Shutdown()
		}
		for s := 0; s < g.NumSwitches(); s++ {
			if len(results[0][s]) != len(results[1][s]) {
				t.Fatalf("graph %d switch %d: direct %v vs hopbyhop %v", gi, s, results[0][s], results[1][s])
			}
			for i := range results[0][s] {
				if results[0][s][i] != results[1][s][i] {
					t.Errorf("graph %d switch %d: arrival %v vs %v", gi, s, results[0][s][i], results[1][s][i])
				}
			}
		}
	}
}

func TestHopByHopSuppressesDuplicates(t *testing.T) {
	g, err := topo.Ring(5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	n, err := New(k, g, hop, HopByHop)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := collect(k, n, 5)
	n.Flood(0, "x")
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 1; s < 5; s++ {
		if len(arrivals[s]) != 1 {
			t.Errorf("switch %d received %d copies", s, len(arrivals[s]))
		}
	}
}

func TestFloodRespectsDownLinks(t *testing.T) {
	for _, mode := range []Mode{Direct, HopByHop} {
		g, err := topo.Line(4, 10*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetLinkDown(1, 2, true); err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		n, err := New(k, g, hop, mode)
		if err != nil {
			t.Fatal(err)
		}
		arrivals := collect(k, n, 4)
		n.Flood(0, "x")
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(arrivals[1]) != 1 {
			t.Errorf("%v: reachable switch missed flood", mode)
		}
		if len(arrivals[2]) != 0 || len(arrivals[3]) != 0 {
			t.Errorf("%v: flood crossed failed link", mode)
		}
		k.Shutdown()
	}
}

func TestMultipleFloodsInterleave(t *testing.T) {
	k, n := lineNet(t, Direct)
	arrivals := collect(k, n, 4)
	n.Flood(0, "a")
	n.Flood(3, "b")
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Switch 1 hears from 0 at 12µs and from 3 at 24µs.
	if len(arrivals[1]) != 2 {
		t.Fatalf("switch 1 arrivals = %v", arrivals[1])
	}
	if arrivals[1][0] != 12*time.Microsecond || arrivals[1][1] != 24*time.Microsecond {
		t.Errorf("switch 1 arrivals = %v", arrivals[1])
	}
	if n.Floodings() != 2 {
		t.Errorf("floodings = %d", n.Floodings())
	}
	n.ResetCounters()
	if n.Floodings() != 0 || n.Copies() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestFloodTime(t *testing.T) {
	_, n := lineNet(t, Direct)
	tf, err := n.FloodTime()
	if err != nil {
		t.Fatal(err)
	}
	if tf != 3*(10*time.Microsecond+hop) {
		t.Errorf("Tf = %v, want 36µs", tf)
	}
	if err := n.Graph().SetLinkDown(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := n.FloodTime(); err == nil {
		t.Error("FloodTime on partitioned network succeeded")
	}
}

func TestNewValidation(t *testing.T) {
	g, err := topo.Line(2, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	if _, err := New(k, g, -time.Microsecond, Direct); err == nil {
		t.Error("negative per-hop accepted")
	}
	if _, err := New(k, g, time.Microsecond, Mode(9)); err == nil {
		t.Error("invalid mode accepted")
	}
	if Mode(9).String() == "" || Direct.String() != "direct" || HopByHop.String() != "hop-by-hop" {
		t.Error("mode strings wrong")
	}
}
