package flood

import (
	"testing"
	"time"

	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// TestTreeBasedMatchesDirectArrivals: switch-aided flooding must deliver at
// the same instants as classic flooding — only the transmission count
// differs.
func TestTreeBasedMatchesDirectArrivals(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(25, 8))
	if err != nil {
		t.Fatal(err)
	}
	var arrivals [2][][]sim.Time
	var copies [2]uint64
	for mi, mode := range []Mode{Direct, TreeBased} {
		k := sim.NewKernel()
		n, err := New(k, g, hop, mode)
		if err != nil {
			t.Fatal(err)
		}
		arr := collect(k, n, g.NumSwitches())
		n.Flood(3, "x")
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		arrivals[mi] = arr
		copies[mi] = n.Copies()
		k.Shutdown()
	}
	for s := 0; s < g.NumSwitches(); s++ {
		if len(arrivals[0][s]) != len(arrivals[1][s]) {
			t.Fatalf("switch %d: delivery count differs", s)
		}
		for i := range arrivals[0][s] {
			if arrivals[0][s][i] != arrivals[1][s][i] {
				t.Errorf("switch %d arrival %v vs %v", s, arrivals[0][s][i], arrivals[1][s][i])
			}
		}
	}
	if copies[1] != uint64(g.NumSwitches()-1) {
		t.Errorf("tree-based copies = %d, want n-1 = %d", copies[1], g.NumSwitches()-1)
	}
	if copies[0] <= copies[1] {
		t.Errorf("classic flooding copies %d not above tree-based %d", copies[0], copies[1])
	}
}

// TestDirectCopyAccountingMatchesHopByHop: the Direct mode's analytic
// transmission charge must equal what hop-by-hop forwarding actually sends.
func TestDirectCopyAccountingMatchesHopByHop(t *testing.T) {
	for _, gen := range []func() (*topo.Graph, error){
		func() (*topo.Graph, error) { return topo.Ring(6, 10*time.Microsecond) },
		func() (*topo.Graph, error) { return topo.Grid(3, 3, 5*time.Microsecond) },
		func() (*topo.Graph, error) { return topo.Waxman(topo.DefaultGenConfig(20, 4)) },
	} {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		var copies [2]uint64
		for mi, mode := range []Mode{Direct, HopByHop} {
			k := sim.NewKernel()
			n, err := New(k, g, hop, mode)
			if err != nil {
				t.Fatal(err)
			}
			n.Flood(0, "x")
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
			copies[mi] = n.Copies()
			k.Shutdown()
		}
		if copies[0] != copies[1] {
			t.Errorf("copy accounting: direct %d vs hop-by-hop %d", copies[0], copies[1])
		}
	}
}
