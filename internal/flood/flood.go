// Package flood models the flooding of link-state advertisements through
// the simulated network. Flooding is the only communication primitive the
// D-GMC protocol needs: every advertisement reaches every (reachable)
// switch, with per-switch arrival times determined by link delays plus a
// per-hop store-and-forward cost.
//
// Two delivery modes are provided:
//
//   - Direct computes each switch's arrival time analytically (a Dijkstra
//     over delay+perHop weights) and schedules one delivery event per
//     switch. This is what standard first-copy-wins flooding produces when
//     forwarding is immediate, at a fraction of the simulator cost.
//   - HopByHop spawns a forwarder process per switch that receives copies,
//     suppresses duplicates by (origin, sequence), and relays to its other
//     neighbors. It exists to validate the Direct model and to exercise
//     the simulator under realistic message loads.
package flood

import (
	"fmt"
	"math"
	"time"

	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// Mode selects the delivery implementation.
type Mode uint8

const (
	// Direct schedules analytically computed arrivals (default).
	Direct Mode = iota + 1
	// HopByHop forwards copies switch-to-switch via processes, with
	// duplicate suppression — classic OSPF-style flooding (≈2·|links|
	// transmissions per flood).
	HopByHop
	// TreeBased forwards copies only along a shortest-path tree rooted at
	// the flood's origin, as in the authors' companion "switch-aided
	// flooding" work: identical arrival times to HopByHop, but exactly
	// n−1 transmissions per flood.
	TreeBased
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "direct"
	case HopByHop:
		return "hop-by-hop"
	case TreeBased:
		return "tree-based"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Delivery is what client mailboxes receive for each flooded advertisement.
type Delivery struct {
	// Origin is the switch that initiated the flood.
	Origin topo.SwitchID
	// Seq is the flood's sequence number at the origin (for tracing).
	Seq uint64
	// Payload is the flooded advertisement.
	Payload any
}

// copyMsg is the inter-forwarder message in HopByHop mode.
type copyMsg struct {
	Delivery
	from topo.SwitchID
}

// Network is the flooding fabric over a graph inside one kernel. Create it
// before Run; switches obtain their inbox via Mailbox.
type Network struct {
	k      *sim.Kernel
	g      *topo.Graph
	perHop time.Duration
	mode   Mode

	inboxes []*sim.Mailbox // client-visible, one per switch

	// HopByHop plumbing.
	transport []*sim.Mailbox
	seen      []map[floodID]bool

	seq       uint64
	floodings uint64
	copies    uint64
}

type floodID struct {
	origin topo.SwitchID
	seq    uint64
}

// New builds a flooding network. perHop is the per-hop LSA processing and
// transmission time added on top of each link's propagation delay (the
// paper's "per-hop LSA transmission time").
func New(k *sim.Kernel, g *topo.Graph, perHop time.Duration, mode Mode) (*Network, error) {
	if perHop < 0 {
		return nil, fmt.Errorf("flood: negative per-hop time %v", perHop)
	}
	if mode != Direct && mode != HopByHop && mode != TreeBased {
		return nil, fmt.Errorf("flood: invalid mode %d", mode)
	}
	n := &Network{k: k, g: g, perHop: perHop, mode: mode}
	n.inboxes = make([]*sim.Mailbox, g.NumSwitches())
	for i := range n.inboxes {
		n.inboxes[i] = sim.NewMailbox(k, fmt.Sprintf("lsa-inbox-%d", i))
	}
	if mode == HopByHop {
		n.transport = make([]*sim.Mailbox, g.NumSwitches())
		n.seen = make([]map[floodID]bool, g.NumSwitches())
		for i := range n.transport {
			n.transport[i] = sim.NewMailbox(k, fmt.Sprintf("flood-transport-%d", i))
			n.seen[i] = make(map[floodID]bool)
			s := topo.SwitchID(i)
			k.Spawn(fmt.Sprintf("forwarder-%d", i), func(p *sim.Process) {
				n.forward(p, s)
			})
		}
	}
	return n, nil
}

// Mailbox returns the inbox where switch s receives flooded advertisements.
func (n *Network) Mailbox(s topo.SwitchID) *sim.Mailbox { return n.inboxes[s] }

// Graph returns the underlying network graph.
func (n *Network) Graph() *topo.Graph { return n.g }

// PerHop returns the per-hop forwarding cost.
func (n *Network) PerHop() time.Duration { return n.perHop }

// Floodings returns how many flooding operations have been initiated — the
// paper's "flooding operations" communication-overhead metric.
func (n *Network) Floodings() uint64 { return n.floodings }

// Copies returns the total number of point-to-point transmissions used.
// HopByHop counts actual sends; Direct charges what classic flooding would
// transmit (every switch relays to all neighbours but the inbound one);
// TreeBased charges one transmission per delivered switch (the
// switch-aided optimum).
func (n *Network) Copies() uint64 { return n.copies }

// ResetCounters zeroes the flooding and copy counters.
func (n *Network) ResetCounters() { n.floodings, n.copies = 0, 0 }

// Flood initiates a flooding operation from origin carrying payload. The
// advertisement is delivered to every switch reachable from origin except
// origin itself (the originator already knows its own advertisement, as in
// OSPF). Returns the flood's sequence number.
func (n *Network) Flood(origin topo.SwitchID, payload any) uint64 {
	n.seq++
	n.floodings++
	d := Delivery{Origin: origin, Seq: n.seq, Payload: payload}
	switch n.mode {
	case HopByHop:
		n.seen[origin][floodID{origin, d.Seq}] = true
		for _, nb := range n.g.Neighbors(origin) {
			l, ok := n.g.Link(origin, nb)
			if !ok || l.Down {
				continue
			}
			n.copies++
			n.transport[nb].Send(copyMsg{Delivery: d, from: origin}, l.Delay+n.perHop)
		}
	case TreeBased:
		for dst, delay := range n.arrivalDelays(origin) {
			if topo.SwitchID(dst) == origin || delay < 0 {
				continue
			}
			n.copies++ // one send per tree edge: the switch-aided optimum
			n.inboxes[dst].Send(d, delay)
		}
	default: // Direct: same arrivals, classic-flooding transmission cost
		n.copies += uint64(n.g.Degree(origin))
		for dst, delay := range n.arrivalDelays(origin) {
			if topo.SwitchID(dst) == origin || delay < 0 {
				continue
			}
			if deg := n.g.Degree(topo.SwitchID(dst)); deg > 1 {
				n.copies += uint64(deg - 1)
			}
			n.inboxes[dst].Send(d, delay)
		}
	}
	return n.seq
}

// arrivalDelays computes, for every switch, the earliest flooding arrival
// time from origin: a shortest path where each hop costs linkDelay+perHop.
// Unreachable switches get -1.
func (n *Network) arrivalDelays(origin topo.SwitchID) []time.Duration {
	num := n.g.NumSwitches()
	const inf = time.Duration(math.MaxInt64)
	dist := make([]time.Duration, num)
	done := make([]bool, num)
	for i := range dist {
		dist[i] = inf
	}
	dist[origin] = 0
	for {
		u := topo.NoSwitch
		best := inf
		for i := 0; i < num; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = topo.SwitchID(i)
			}
		}
		if u == topo.NoSwitch {
			break
		}
		done[u] = true
		for _, v := range n.g.Neighbors(u) {
			l, ok := n.g.Link(u, v)
			if !ok || l.Down {
				continue
			}
			if nd := dist[u] + l.Delay + n.perHop; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist
}

// forward is the per-switch forwarder process body in HopByHop mode.
func (n *Network) forward(p *sim.Process, self topo.SwitchID) {
	for {
		raw := n.transport[self].Recv(p)
		msg, ok := raw.(copyMsg)
		if !ok {
			continue
		}
		id := floodID{msg.Origin, msg.Seq}
		if n.seen[self][id] {
			continue // duplicate: suppress
		}
		n.seen[self][id] = true
		n.inboxes[self].Send(msg.Delivery, 0)
		for _, nb := range n.g.Neighbors(self) {
			if nb == msg.from {
				continue
			}
			l, ok := n.g.Link(self, nb)
			if !ok || l.Down {
				continue
			}
			n.copies++
			n.transport[nb].Send(copyMsg{Delivery: msg.Delivery, from: self}, l.Delay+n.perHop)
		}
	}
}

// FloodTime returns Tf for this network: the worst-case time for a flood to
// reach every switch, including per-hop costs.
func (n *Network) FloodTime() (time.Duration, error) {
	var worst time.Duration
	for s := 0; s < n.g.NumSwitches(); s++ {
		for _, d := range n.arrivalDelays(topo.SwitchID(s)) {
			if d < 0 {
				return 0, topo.ErrDisconnected
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
