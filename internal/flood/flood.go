// Package flood models the flooding of link-state advertisements through
// the simulated network. Flooding is the only communication primitive the
// D-GMC protocol needs: every advertisement reaches every (reachable)
// switch, with per-switch arrival times determined by link delays plus a
// per-hop store-and-forward cost.
//
// Four delivery modes are provided:
//
//   - Direct computes each switch's arrival time analytically (a Dijkstra
//     over delay+perHop weights) and schedules one delivery event per
//     switch. This is what standard first-copy-wins flooding produces when
//     forwarding is immediate, at a fraction of the simulator cost.
//   - HopByHop spawns a forwarder process per switch that receives copies,
//     suppresses duplicates by (origin, sequence), and relays to its other
//     neighbors. It exists to validate the Direct model and to exercise
//     the simulator under realistic message loads.
//   - TreeBased forwards only along a shortest-path tree (see below).
//   - Reliable is HopByHop hardened for lossy fabrics: every link
//     transmission is acknowledged and retransmitted with exponential
//     backoff up to a bounded retry budget, so the flood survives the
//     message loss, duplication, jitter, and link flaps injected by an
//     internal/faults plan (see reliable.go).
package flood

import (
	"fmt"
	"sort"
	"time"

	"dgmc/internal/faults"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// Mode selects the delivery implementation.
type Mode uint8

const (
	// Direct schedules analytically computed arrivals (default).
	Direct Mode = iota + 1
	// HopByHop forwards copies switch-to-switch via processes, with
	// duplicate suppression — classic OSPF-style flooding (≈2·|links|
	// transmissions per flood).
	HopByHop
	// TreeBased forwards copies only along a shortest-path tree rooted at
	// the flood's origin, as in the authors' companion "switch-aided
	// flooding" work: identical arrival times to HopByHop, but exactly
	// n−1 transmissions per flood.
	TreeBased
	// Reliable is HopByHop with per-link acknowledgements and bounded
	// retransmission, for use over a faulty fabric. With no faults injected
	// it produces exactly HopByHop's arrivals with zero retransmissions.
	Reliable
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "direct"
	case HopByHop:
		return "hop-by-hop"
	case TreeBased:
		return "tree-based"
	case Reliable:
		return "reliable"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Delivery is what client mailboxes receive for each flooded advertisement.
type Delivery struct {
	// Origin is the switch that initiated the flood.
	Origin topo.SwitchID
	// Seq is the flood's sequence number at the origin (for tracing).
	Seq uint64
	// Payload is the flooded advertisement.
	Payload any
}

// Unicast is what client mailboxes receive for a point-to-point message
// sent between neighbors with Network.Unicast (the resync exchanges of
// internal/core ride on this).
type Unicast struct {
	From, To topo.SwitchID
	Payload  any
}

// copyMsg is the inter-forwarder message in HopByHop and Reliable modes.
type copyMsg struct {
	Delivery
	from topo.SwitchID
	// unicast marks a point-to-point message for dst: it is acknowledged
	// and delivered but never relayed.
	unicast bool
	dst     topo.SwitchID
}

// Network is the flooding fabric over a graph inside one kernel. Create it
// before Run; switches obtain their inbox via Mailbox.
type Network struct {
	k      *sim.Kernel
	g      *topo.Graph
	perHop time.Duration
	mode   Mode

	inboxes []*sim.Mailbox // client-visible, one per switch

	// HopByHop/Reliable plumbing.
	transport []*sim.Mailbox
	seen      []map[floodID]bool

	// nbrs[s] caches s's neighbors in ascending order with their link
	// indices, so the per-copy forwarding loop touches no maps and
	// allocates nothing; link state (Down) is re-read through the index at
	// send time. sssp is the reusable scratch behind arrivalDelays.
	nbrs [][]nbLink
	sssp topo.SSSPScratch

	// Reliable plumbing.
	injector    *faults.Injector
	retryBudget int
	pending     []map[pendKey]*pendingTx
	rstats      ReliabilityStats

	seq       uint64
	floodings uint64
	copies    uint64
}

type floodID struct {
	origin topo.SwitchID
	seq    uint64
}

// nbLink is one cached adjacency entry: the neighbor and the index of the
// connecting link (resolved via topo.Graph.LinkAt at use time, so link
// flaps are observed without a map lookup per message).
type nbLink struct {
	to  topo.SwitchID
	idx int
}

// Option configures a Network beyond the required parameters.
type Option func(*Network)

// WithFaults injects a fault plan into the fabric. Requires Reliable mode:
// the unreliable modes assume a perfect network by construction.
func WithFaults(in *faults.Injector) Option {
	return func(n *Network) { n.injector = in }
}

// WithRetryBudget bounds how many times a Reliable transmission is
// retransmitted before the sender gives up (default 8). Zero means no
// retransmission at all — plain lossy flooding, useful as an experimental
// control.
func WithRetryBudget(budget int) Option {
	return func(n *Network) { n.retryBudget = budget }
}

// defaultRetryBudget bounds retransmissions per (message, link); at a drop
// rate of 0.2, eight retries leave ~5e-7 residual loss per transmission,
// which the resync layer above mops up.
const defaultRetryBudget = 8

// New builds a flooding network. perHop is the per-hop LSA processing and
// transmission time added on top of each link's propagation delay (the
// paper's "per-hop LSA transmission time").
func New(k *sim.Kernel, g *topo.Graph, perHop time.Duration, mode Mode, opts ...Option) (*Network, error) {
	if perHop < 0 {
		return nil, fmt.Errorf("flood: negative per-hop time %v", perHop)
	}
	if mode != Direct && mode != HopByHop && mode != TreeBased && mode != Reliable {
		return nil, fmt.Errorf("flood: invalid mode %d", mode)
	}
	n := &Network{k: k, g: g, perHop: perHop, mode: mode, retryBudget: defaultRetryBudget}
	for _, o := range opts {
		o(n)
	}
	if n.injector != nil && mode != Reliable {
		return nil, fmt.Errorf("flood: fault injection requires Reliable mode, got %s", mode)
	}
	if n.retryBudget < 0 {
		return nil, fmt.Errorf("flood: negative retry budget %d", n.retryBudget)
	}
	n.inboxes = make([]*sim.Mailbox, g.NumSwitches())
	for i := range n.inboxes {
		n.inboxes[i] = sim.NewMailbox(k, fmt.Sprintf("lsa-inbox-%d", i))
	}
	// Cache the full adjacency (down links included — flaps are re-checked
	// through the link index at send time), sorted by neighbor for the same
	// deterministic iteration order g.Neighbors gives.
	n.nbrs = make([][]nbLink, g.NumSwitches())
	for _, l := range g.Links() {
		idx, ok := g.LinkIndex(l.A, l.B)
		if !ok {
			continue
		}
		n.nbrs[l.A] = append(n.nbrs[l.A], nbLink{to: l.B, idx: idx})
		n.nbrs[l.B] = append(n.nbrs[l.B], nbLink{to: l.A, idx: idx})
	}
	for _, row := range n.nbrs {
		sort.Slice(row, func(i, j int) bool { return row[i].to < row[j].to })
	}
	if mode == HopByHop || mode == Reliable {
		n.transport = make([]*sim.Mailbox, g.NumSwitches())
		n.seen = make([]map[floodID]bool, g.NumSwitches())
		if mode == Reliable {
			n.pending = make([]map[pendKey]*pendingTx, g.NumSwitches())
		}
		for i := range n.transport {
			n.transport[i] = sim.NewMailbox(k, fmt.Sprintf("flood-transport-%d", i))
			n.seen[i] = make(map[floodID]bool)
			if mode == Reliable {
				n.pending[i] = make(map[pendKey]*pendingTx)
			}
			s := topo.SwitchID(i)
			body := n.forward
			if mode == Reliable {
				body = n.forwardReliable
			}
			k.Spawn(fmt.Sprintf("forwarder-%d", i), func(p *sim.Process) {
				body(p, s)
			})
		}
	}
	return n, nil
}

// Mailbox returns the inbox where switch s receives flooded advertisements.
func (n *Network) Mailbox(s topo.SwitchID) *sim.Mailbox { return n.inboxes[s] }

// Graph returns the underlying network graph.
func (n *Network) Graph() *topo.Graph { return n.g }

// PerHop returns the per-hop forwarding cost.
func (n *Network) PerHop() time.Duration { return n.perHop }

// Floodings returns how many flooding operations have been initiated — the
// paper's "flooding operations" communication-overhead metric.
func (n *Network) Floodings() uint64 { return n.floodings }

// Copies returns the total number of point-to-point transmissions used.
// HopByHop counts actual sends; Direct charges what classic flooding would
// transmit (every switch relays to all neighbours but the inbound one);
// TreeBased charges one transmission per delivered switch (the
// switch-aided optimum).
func (n *Network) Copies() uint64 { return n.copies }

// ResetCounters zeroes the flooding and copy counters.
func (n *Network) ResetCounters() { n.floodings, n.copies = 0, 0 }

// Flood initiates a flooding operation from origin carrying payload. The
// advertisement is delivered to every switch reachable from origin except
// origin itself (the originator already knows its own advertisement, as in
// OSPF). Returns the flood's sequence number.
func (n *Network) Flood(origin topo.SwitchID, payload any) uint64 {
	n.seq++
	n.floodings++
	d := Delivery{Origin: origin, Seq: n.seq, Payload: payload}
	switch n.mode {
	case HopByHop:
		n.seen[origin][floodID{origin, d.Seq}] = true
		for _, e := range n.nbrs[origin] {
			l := n.g.LinkAt(e.idx)
			if l.Down {
				continue
			}
			n.copies++
			n.transport[e.to].Send(copyMsg{Delivery: d, from: origin}, l.Delay+n.perHop)
		}
	case Reliable:
		n.seen[origin][floodID{origin, d.Seq}] = true
		for _, e := range n.nbrs[origin] {
			if n.g.LinkAt(e.idx).Down {
				continue
			}
			n.sendReliable(origin, e.to, copyMsg{Delivery: d, from: origin})
		}
	case TreeBased:
		for dst, delay := range n.arrivalDelays(origin) {
			if topo.SwitchID(dst) == origin || delay < 0 {
				continue
			}
			n.copies++ // one send per tree edge: the switch-aided optimum
			n.inboxes[dst].Send(d, delay)
		}
	default: // Direct: same arrivals, classic-flooding transmission cost
		n.copies += uint64(n.g.Degree(origin))
		for dst, delay := range n.arrivalDelays(origin) {
			if topo.SwitchID(dst) == origin || delay < 0 {
				continue
			}
			if deg := n.g.Degree(topo.SwitchID(dst)); deg > 1 {
				n.copies += uint64(deg - 1)
			}
			n.inboxes[dst].Send(d, delay)
		}
	}
	return n.seq
}

// Unicast sends payload point-to-point from switch `from` to its direct
// neighbor `to`; the receiver's mailbox gets a Unicast envelope. Over a
// Reliable fabric the message is acknowledged and retransmitted like any
// flood copy; in the other modes it is delivered after one link delay.
// Messages to non-neighbors or over administratively-down links are
// silently discarded (callers retry at the protocol level, exactly as they
// must for injected loss).
func (n *Network) Unicast(from, to topo.SwitchID, payload any) {
	l, ok := n.g.Link(from, to)
	if !ok || l.Down {
		return
	}
	n.seq++
	u := Unicast{From: from, To: to, Payload: payload}
	if n.mode == Reliable {
		d := Delivery{Origin: from, Seq: n.seq, Payload: payload}
		n.sendReliable(from, to, copyMsg{Delivery: d, from: from, unicast: true, dst: to})
		return
	}
	n.inboxes[to].Send(u, l.Delay+n.perHop)
}

// arrivalDelays computes, for every switch, the earliest flooding arrival
// time from origin: a shortest path where each hop costs linkDelay+perHop.
// Unreachable switches get -1. The returned slice aliases the network's
// reusable scratch and is valid until the next arrivalDelays call.
func (n *Network) arrivalDelays(origin topo.SwitchID) []time.Duration {
	n.sssp.Reset(n.g.NumSwitches())
	n.sssp.Seed(origin)
	n.g.RunSSSP(&n.sssp, n.perHop)
	dist := n.sssp.Dist
	for i := range dist {
		if dist[i] == topo.Unreachable {
			dist[i] = -1
		}
	}
	return dist
}

// forward is the per-switch forwarder process body in HopByHop mode.
func (n *Network) forward(p *sim.Process, self topo.SwitchID) {
	for {
		raw := n.transport[self].Recv(p)
		msg, ok := raw.(copyMsg)
		if !ok {
			continue
		}
		id := floodID{msg.Origin, msg.Seq}
		if n.seen[self][id] {
			continue // duplicate: suppress
		}
		n.seen[self][id] = true
		n.inboxes[self].Send(msg.Delivery, 0)
		for _, e := range n.nbrs[self] {
			if e.to == msg.from {
				continue
			}
			l := n.g.LinkAt(e.idx)
			if l.Down {
				continue
			}
			n.copies++
			n.transport[e.to].Send(copyMsg{Delivery: msg.Delivery, from: self}, l.Delay+n.perHop)
		}
	}
}

// FloodTime returns Tf for this network: the worst-case time for a flood to
// reach every switch, including per-hop costs.
func (n *Network) FloodTime() (time.Duration, error) {
	var worst time.Duration
	for s := 0; s < n.g.NumSwitches(); s++ {
		for _, d := range n.arrivalDelays(topo.SwitchID(s)) {
			if d < 0 {
				return 0, topo.ErrDisconnected
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
