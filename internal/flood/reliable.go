package flood

import (
	"fmt"

	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// This file implements the Reliable mode: hop-by-hop flooding hardened with
// per-link acknowledgements and retransmission, in the style of OSPF's
// reliable flooding (ack/retransmit per adjacency). Each data transmission
// over a link is tracked by the sender until the receiving switch
// acknowledges it; unacknowledged transmissions are retried with
// exponential backoff up to a bounded retry budget. Duplicates created by
// retransmission (or injected by a fault plan) are absorbed by the existing
// (origin, sequence) suppression, and every received copy is re-acked so a
// lost ack cannot wedge the sender.

// ReliabilityStats counts the reliable transport's activity. All counters
// are cumulative; ResetCounters does not clear them (use Reliability once
// per run).
type ReliabilityStats struct {
	// DataSends counts first-attempt data transmissions.
	DataSends uint64
	// Retransmits counts retransmissions after an unacknowledged timeout.
	Retransmits uint64
	// AcksSent counts acknowledgements originated by receivers.
	AcksSent uint64
	// AcksReceived counts acknowledgements that made it back to a sender.
	AcksReceived uint64
	// Drops counts transmissions (data or ack) lost to injected faults.
	Drops uint64
	// Duplicated counts extra deliveries injected by the fault plan.
	Duplicated uint64
	// DupSuppressed counts received copies discarded as duplicates.
	DupSuppressed uint64
	// GiveUps counts transmissions abandoned after the retry budget.
	GiveUps uint64
}

func (s ReliabilityStats) String() string {
	return fmt.Sprintf("sends=%d retransmits=%d acks=%d/%d drops=%d dups=%d/%d giveups=%d",
		s.DataSends, s.Retransmits, s.AcksSent, s.AcksReceived, s.Drops,
		s.Duplicated, s.DupSuppressed, s.GiveUps)
}

// Reliability returns the reliable transport's counters (zero for other
// modes).
func (n *Network) Reliability() ReliabilityStats { return n.rstats }

// ackMsg acknowledges receipt of data message id by acker, addressed to the
// pending entry at the link peer that sent it.
type ackMsg struct {
	id    floodID
	acker topo.SwitchID
}

// pendKey identifies one tracked transmission at a sender: which message,
// to which neighbor.
type pendKey struct {
	id floodID
	to topo.SwitchID
}

// pendingTx is a transmission awaiting acknowledgement.
type pendingTx struct {
	msg      copyMsg
	from, to topo.SwitchID
	attempts int
	acked    bool
}

// sendReliable starts tracking and transmitting msg from `from` to the
// neighbor `to`. It is a no-op if the link is missing or administratively
// down, or if the same message is already in flight on this link.
func (n *Network) sendReliable(from, to topo.SwitchID, msg copyMsg) {
	l, ok := n.g.Link(from, to)
	if !ok || l.Down {
		return
	}
	key := pendKey{floodID{msg.Origin, msg.Seq}, to}
	if _, inFlight := n.pending[from][key]; inFlight {
		return
	}
	pt := &pendingTx{msg: msg, from: from, to: to}
	n.pending[from][key] = pt
	n.rstats.DataSends++
	n.transmit(pt, key)
}

// transmit performs one transmission attempt of pt and arms its
// retransmission timer.
func (n *Network) transmit(pt *pendingTx, key pendKey) {
	l, ok := n.g.Link(pt.from, pt.to)
	if !ok || l.Down {
		// The link went down under us (a real topology change, advertised
		// separately); retrying is pointless.
		delete(n.pending[pt.from], key)
		n.rstats.GiveUps++
		return
	}
	if pt.attempts > 0 {
		n.rstats.Retransmits++
	}
	attempt := pt.attempts
	pt.attempts++
	n.copies++
	delay := l.Delay + n.perHop
	if n.injector != nil {
		switch o := n.injector.Apply(pt.from, pt.to); {
		case o.Drop:
			n.rstats.Drops++
		default:
			n.transport[pt.to].Send(pt.msg, delay+o.Jitter)
			if o.Duplicate {
				n.rstats.Duplicated++
				n.transport[pt.to].Send(pt.msg, delay+o.DupJitter)
			}
		}
	} else {
		n.transport[pt.to].Send(pt.msg, delay)
	}
	n.k.After(n.rtoFor(l, attempt), func() {
		if pt.acked {
			return
		}
		if pt.attempts > n.retryBudget {
			delete(n.pending[pt.from], key)
			n.rstats.GiveUps++
			return
		}
		n.transmit(pt, key)
	})
}

// rtoFor returns the retransmission timeout for the given attempt over l:
// one round trip (data out, ack back, each paying link delay plus per-hop
// processing) with exponential backoff. Injected jitter can exceed the
// margin and cause a spurious retransmission; that is safe (duplicates are
// suppressed and re-acked) and shows up honestly in the counters.
func (n *Network) rtoFor(l topo.Link, attempt int) sim.Time {
	if attempt > 16 {
		attempt = 16 // cap the shift; backoff is already ~65000× base
	}
	base := 2*(l.Delay+n.perHop) + n.perHop
	return base << uint(attempt)
}

// sendAck sends an acknowledgement for id from `from` back to `to` (the
// data sender). Acks traverse the same faulty link as data.
func (n *Network) sendAck(from, to topo.SwitchID, id floodID) {
	l, ok := n.g.Link(from, to)
	if !ok || l.Down {
		return
	}
	n.rstats.AcksSent++
	a := ackMsg{id: id, acker: from}
	delay := l.Delay + n.perHop
	if n.injector != nil {
		switch o := n.injector.Apply(from, to); {
		case o.Drop:
			n.rstats.Drops++
		default:
			n.transport[to].Send(a, delay+o.Jitter)
			if o.Duplicate {
				n.rstats.Duplicated++
				n.transport[to].Send(a, delay+o.DupJitter)
			}
		}
	} else {
		n.transport[to].Send(a, delay)
	}
}

// forwardReliable is the per-switch forwarder process body in Reliable
// mode. The data path (suppress, deliver, relay) mirrors forward() exactly
// so that a fault-free Reliable run reproduces HopByHop's arrivals; the ack
// is sent after the data path so the data-relay schedule order matches too.
func (n *Network) forwardReliable(p *sim.Process, self topo.SwitchID) {
	for {
		switch msg := n.transport[self].Recv(p).(type) {
		case ackMsg:
			key := pendKey{msg.id, msg.acker}
			if pt, ok := n.pending[self][key]; ok {
				pt.acked = true
				delete(n.pending[self], key)
				n.rstats.AcksReceived++
			}
		case copyMsg:
			id := floodID{msg.Origin, msg.Seq}
			if n.seen[self][id] {
				n.rstats.DupSuppressed++
				n.sendAck(self, msg.from, id) // re-ack: the first ack may have been lost
				continue
			}
			n.seen[self][id] = true
			if msg.unicast {
				if msg.dst == self {
					n.inboxes[self].Send(Unicast{From: msg.Origin, To: msg.dst, Payload: msg.Payload}, 0)
				}
			} else {
				n.inboxes[self].Send(msg.Delivery, 0)
				for _, e := range n.nbrs[self] {
					if e.to == msg.from || n.g.LinkAt(e.idx).Down {
						continue
					}
					n.sendReliable(self, e.to, copyMsg{Delivery: msg.Delivery, from: self})
				}
			}
			n.sendAck(self, msg.from, id)
		}
	}
}
