package rt

import (
	"fmt"
	"net"
	"sync/atomic"

	"dgmc/internal/topo"
)

// maxUDPFrame bounds a received datagram. Comfortably above
// lsa.MaxFramePayload plus the frame header would be wasteful per read;
// 64 KiB covers any UDP datagram.
const maxUDPFrame = 64 << 10

// UDPTransport is a Transport over one UDP socket with a static peer table.
// It is what cmd/dgmcd uses: one daemon, one socket, peers from the shared
// topology file. UDP gives real-world semantics — datagrams can drop under
// buffer pressure — so deployments enable the protocol's resync recovery.
type UDPTransport struct {
	conn   *net.UDPConn
	peers  map[topo.SwitchID]*net.UDPAddr
	closed atomic.Bool
}

// NewUDPTransport binds listen (e.g. "127.0.0.1:7701", or ":0" for an
// ephemeral port) and resolves the peer address table.
func NewUDPTransport(listen string, peers map[topo.SwitchID]string) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("rt: listen address %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("rt: bind %q: %w", listen, err)
	}
	t := &UDPTransport{conn: conn, peers: make(map[topo.SwitchID]*net.UDPAddr, len(peers))}
	for id, addr := range peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("rt: peer %d address %q: %w", id, addr, err)
		}
		t.peers[id] = ua
	}
	// Flood storms are bursty; deep socket buffers keep the loss rate down
	// to what resync can mop up quickly. Best-effort: some systems clamp.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	return t, nil
}

// LocalAddr returns the bound socket address (useful with ":0").
func (t *UDPTransport) LocalAddr() *net.UDPAddr {
	return t.conn.LocalAddr().(*net.UDPAddr)
}

// Send implements Transport.
func (t *UDPTransport) Send(to topo.SwitchID, data []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	addr, ok := t.peers[to]
	if !ok {
		return fmt.Errorf("rt: no address for switch %d", to)
	}
	_, err := t.conn.WriteToUDP(data, addr)
	return err
}

// Recv implements Transport.
func (t *UDPTransport) Recv() ([]byte, error) {
	buf := getBuf(maxUDPFrame)[:maxUDPFrame]
	n, _, err := t.conn.ReadFromUDP(buf)
	if err != nil {
		if t.closed.Load() {
			return nil, ErrClosed
		}
		return nil, err
	}
	return buf[:n], nil
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.closed.Store(true)
	return t.conn.Close()
}

// UDPFabric is a set of UDPTransports on loopback ephemeral ports, one per
// switch — the in-process stand-in for a real multi-daemon deployment, used
// by the UDP soak test.
type UDPFabric struct {
	trs []*UDPTransport
}

// NewUDPFabric binds n loopback sockets and cross-wires their peer tables.
func NewUDPFabric(n int) (*UDPFabric, error) {
	conns := make([]*net.UDPConn, n)
	addrs := make(map[topo.SwitchID]string, n)
	fail := func(err error) (*UDPFabric, error) {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return fail(fmt.Errorf("rt: bind loopback socket %d: %w", i, err))
		}
		conns[i] = c
		addrs[topo.SwitchID(i)] = c.LocalAddr().String()
	}
	f := &UDPFabric{trs: make([]*UDPTransport, n)}
	for i, c := range conns {
		t := &UDPTransport{conn: c, peers: make(map[topo.SwitchID]*net.UDPAddr, n)}
		for id, addr := range addrs {
			if int(id) == i {
				continue
			}
			ua, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				return fail(fmt.Errorf("rt: resolve %q: %w", addr, err))
			}
			t.peers[id] = ua
		}
		_ = c.SetReadBuffer(4 << 20)
		_ = c.SetWriteBuffer(4 << 20)
		f.trs[i] = t
	}
	return f, nil
}

// Transport returns switch id's socket.
func (f *UDPFabric) Transport(id topo.SwitchID) Transport { return f.trs[id] }

// Close closes every socket.
func (f *UDPFabric) Close() error {
	var first error
	for _, t := range f.trs {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
