package rt

import "sync"

// maxPooledBuf caps the capacity of buffers the pool retains. It matches the
// receive-side maximum (maxUDPFrame) so every buffer that flows through the
// node — pooled or caller-supplied — is eligible for reuse, while anything
// freakishly larger is left for the collector.
const maxPooledBuf = maxUDPFrame

// bufPool recycles the frame byte buffers that used to dominate the node's
// per-message garbage: encode buffers in the flood/unicast send paths,
// per-frame copies inside ChanFabric, and the 64 KiB receive buffers of
// UDPTransport. The pool holds *[]byte boxes; the box itself costs one
// 24-byte header per round trip, against the kilobytes of backing array it
// preserves.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

// getBuf returns a zero-length buffer with at least minCap capacity.
func getBuf(minCap int) []byte {
	b := (*bufPool.Get().(*[]byte))[:0]
	if cap(b) < minCap {
		b = make([]byte, 0, minCap)
	}
	return b
}

// putBuf hands a buffer back for reuse. The caller must not touch b (or any
// slice aliasing it) afterwards; decoded messages never alias frame buffers
// (every payload decoder copies out), which is what makes recycling on the
// receive path safe.
func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
