package rt

import "sync"

// The frame buffer pool is size-classed. Almost every buffer flowing
// through a node is small — control floods of a few hundred bytes, data
// frames of header + payload — while UDPTransport.Recv rents a full 64 KiB
// datagram buffer per call. One shared pool let the populations mix: a
// burst of UDP receives seeded it with 64 KiB arrays that the per-frame
// copy path then rented for 30-byte frames, pinning megabytes of backing
// array behind kilobyte-scale traffic. Two classes keep each population
// recycling among its own.

// smallBufCap is the small class's capacity: comfortably above every
// control payload and the data frames the load generator drives, so the
// saturation fast path stays inside this class.
const smallBufCap = 4096

// maxPooledBuf caps the capacity of buffers the pool retains. It matches
// the receive-side maximum (maxUDPFrame) so every buffer that flows
// through the node — pooled or caller-supplied — is eligible for reuse,
// while anything freakishly larger is left for the collector.
const maxPooledBuf = maxUDPFrame

// The pools hold *[]byte boxes; the box itself costs one 24-byte header
// per round trip, against the backing array it preserves. Class purity is
// enforced on the put side (putBuf routes by capacity) and double-checked
// on the get side, so a stray undersized buffer can never surface from a
// rental.
var (
	smallPool = sync.Pool{New: func() any { b := make([]byte, 0, smallBufCap); return &b }}
	largePool = sync.Pool{New: func() any { b := make([]byte, 0, maxPooledBuf); return &b }}
)

// getBuf returns a zero-length buffer with at least minCap capacity.
func getBuf(minCap int) []byte {
	var b []byte
	if minCap <= smallBufCap {
		b = (*smallPool.Get().(*[]byte))[:0]
	} else if minCap <= maxPooledBuf {
		b = (*largePool.Get().(*[]byte))[:0]
	}
	if cap(b) < minCap {
		b = make([]byte, 0, minCap)
	}
	return b
}

// putBuf hands a buffer back to its size class by capacity. The caller
// must not touch b (or any slice aliasing it) afterwards; decoded messages
// never alias frame buffers (every payload decoder copies out), which is
// what makes recycling on the receive path safe. Buffers too small for the
// small class or too large for the large class go to the collector rather
// than poisoning a class.
func putBuf(b []byte) {
	c := cap(b)
	switch {
	case c >= maxUDPFrame && c <= maxPooledBuf:
		b = b[:0]
		largePool.Put(&b)
	case c >= smallBufCap && c < maxUDPFrame:
		b = b[:0]
		smallPool.Put(&b)
	}
}
