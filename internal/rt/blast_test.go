package rt

import (
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// TestBlastSmoke runs the saturating load generator at audited scale on
// both live fabrics: every accepted send is ledgered with its expected
// receiver set, so the exactly-once contract (no duplicates, no strays)
// is checked under the same concurrent batched senders the throughput
// benchmark races — and the data plane's own ForwardStats counters must
// agree with the ledger's independent tally. Small enough to run
// race-enabled in CI as a blocking gate.
func TestBlastSmoke(t *testing.T) {
	t.Run("ChanFabric", func(t *testing.T) {
		fab := NewChanFabric(9)
		blastSmoke(t, fab, fab.InFlight, func() error {
			for fab.InFlight() != 0 {
				time.Sleep(100 * time.Microsecond)
			}
			return nil
		}, 1.0)
	})
	t.Run("UDPFabric", func(t *testing.T) {
		fab, err := NewUDPFabric(9)
		if err != nil {
			t.Fatal(err)
		}
		// Datagram sockets have no in-flight count and may shed frames
		// under burst, so the smoke settles on node quiescence and gates a
		// near-lossless ratio instead of exactness; the exactly-once and
		// counter-agreement assertions are unconditional.
		blastSmoke(t, fab, nil, nil, 0.9)
	})
}

func blastSmoke(t *testing.T, fab Fabric, inflight func() int64, drain func() error, minRatio float64) {
	const rows, cols = 3, 3
	conn := lsa.ConnID(1)
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	led := workload.NewLedger()
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
		DataHandler: func(at topo.SwitchID, _ lsa.ConnID, src topo.SwitchID, seq uint64, _ []byte) {
			led.RecordRecv(at, workload.PacketID{Src: src, Seq: seq})
		},
	}, fab)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	members := []topo.SwitchID{0, 4, 8}
	for _, sw := range members {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	expect := func(src topo.SwitchID) []topo.SwitchID {
		var out []topo.SwitchID
		for _, sw := range members {
			if sw != src {
				out = append(out, sw)
			}
		}
		return out
	}

	res, err := workload.Blast(c, workload.BlastConfig{
		Conn: conn, Sources: members,
		SendersPerSource: 2, PayloadSize: 32, Batch: 16, Packets: 900,
		Ledger: led, Expect: expect,
		InFlight: inflight, MaxInFlight: 256,
		Drain: drain,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(50*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	if res.Refused != 0 {
		t.Fatalf("converged cluster refused %d sends", res.Refused)
	}
	if res.Sent != 900 {
		t.Fatalf("accepted %d sends, want the full 900 budget", res.Sent)
	}
	sum := led.Summary()
	t.Logf("blast smoke: %+v ratio=%.4f sendRate=%.0f/s", sum, sum.Ratio(), res.SendRate())
	if sum.Dups != 0 || sum.Strays != 0 {
		t.Fatalf("exactly-once violated under blast: %d dups, %d strays", sum.Dups, sum.Strays)
	}
	if r := sum.Ratio(); r < minRatio {
		t.Fatalf("delivery ratio %.4f < %.2f under blast", r, minRatio)
	}
	// With dups and strays at zero, the ledger's delivered count is exactly
	// the number of delivery events the data plane performed.
	stats := c.ForwardStats()
	if stats.Delivered != uint64(sum.Delivered) {
		t.Fatalf("ForwardStats.Delivered = %d but ledger recorded %d deliveries", stats.Delivered, sum.Delivered)
	}
	if stats.Originated != res.Sent {
		t.Fatalf("ForwardStats.Originated = %d but blast accepted %d sends", stats.Originated, res.Sent)
	}
}
