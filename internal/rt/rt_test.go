package rt

import (
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

const (
	soakSwitches = 16
	soakEvents   = 220 // ≥200 join/leave events per the soak acceptance bar
	soakConn     = lsa.ConnID(1)
)

func soakGraph(t *testing.T, n int) *topo.Graph {
	t.Helper()
	g, err := topo.Waxman(topo.DefaultGenConfig(n, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// replayMembers computes the member set a correct protocol must converge on
// after the scripted churn: the per-switch fold of its own joins/leaves.
func replayMembers(events []workload.Event) map[topo.SwitchID]bool {
	members := map[topo.SwitchID]bool{}
	for _, ev := range events {
		if ev.Join {
			members[ev.Switch] = true
		} else {
			delete(members, ev.Switch)
		}
	}
	return members
}

// runChurnSoak drives ≥200 churn events into a 16-switch cluster over the
// given fabric and verifies member-agreed convergence.
func runChurnSoak(t *testing.T, c *Cluster, pace time.Duration) {
	t.Helper()
	defer c.Close()
	events, err := workload.Churn(workload.Config{
		N: soakSwitches, Events: soakEvents, Seed: 7, MeanGap: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Join {
			err = c.Join(ev.Switch, soakConn, ev.Role)
		} else {
			err = c.Leave(ev.Switch, soakConn)
		}
		if err != nil {
			t.Fatal(err)
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	if err := c.WaitConverged(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := replayMembers(events)
	for _, n := range c.Nodes() {
		snap, ok := n.Connection(soakConn)
		if !ok {
			t.Fatalf("switch %d lost all state for conn %d", n.ID(), soakConn)
		}
		if len(snap.Members) != len(want) {
			t.Fatalf("switch %d has %d members, want %d", n.ID(), len(snap.Members), len(want))
		}
		for m := range want {
			if _, ok := snap.Members[m]; !ok {
				t.Fatalf("switch %d is missing member %d", n.ID(), m)
			}
		}
	}
	if len(want) >= 2 {
		snap, _ := c.Node(0).Connection(soakConn)
		if snap.Topology == nil {
			t.Fatal("no topology installed for the final membership")
		}
	}
}

func TestChurnSoakChanTransport(t *testing.T) {
	g := soakGraph(t, soakSwitches)
	c, err := NewCluster(ClusterConfig{Graph: g}, NewChanFabric(soakSwitches))
	if err != nil {
		t.Fatal(err)
	}
	runChurnSoak(t, c, 0)
}

func TestChurnSoakUDPTransport(t *testing.T) {
	g := soakGraph(t, soakSwitches)
	fab, err := NewUDPFabric(soakSwitches)
	if err != nil {
		t.Fatal(err)
	}
	// UDP can drop under burst pressure, so gap recovery is on — exactly
	// how a real deployment runs.
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: 100 * time.Millisecond,
	}, fab)
	if err != nil {
		t.Fatal(err)
	}
	runChurnSoak(t, c, 500*time.Microsecond)
}

func TestClusterBasicJoinLeave(t *testing.T) {
	g, err := topo.Grid(2, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{Graph: g}, NewChanFabric(g.NumSwitches()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(5)
	for _, sw := range []topo.SwitchID{0, 3, 5} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, ok := c.Node(2).Connection(conn)
	if !ok || len(snap.Members) != 3 {
		t.Fatalf("switch 2 sees %d members, want 3", len(snap.Members))
	}
	if snap.Topology == nil || snap.Topology.Validate(g, snap.Members) != nil {
		t.Fatalf("switch 2 has no valid installed topology: %v", snap.Topology)
	}

	if err := c.Leave(3, conn); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, _ = c.Node(4).Connection(conn)
	if len(snap.Members) != 2 {
		t.Fatalf("after leave: %d members, want 2", len(snap.Members))
	}
}

func TestClusterMultipleConnections(t *testing.T) {
	g := soakGraph(t, 8)
	c, err := NewCluster(ClusterConfig{Graph: g}, NewChanFabric(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two connections churn concurrently; their state must stay disjoint
	// and both must converge.
	for i := 0; i < 8; i++ {
		if err := c.Join(topo.SwitchID(i), lsa.ConnID(1+i%2), mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, conn := range []lsa.ConnID{1, 2} {
		snap, ok := c.Node(0).Connection(conn)
		if !ok || len(snap.Members) != 4 {
			t.Fatalf("conn %d: %d members, want 4", conn, len(snap.Members))
		}
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewChanFabric(3)
	n, err := NewNode(NodeConfig{ID: 1, Graph: g}, fab.Transport(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Join(1, mctree.SenderReceiver); err != ErrClosed {
		t.Fatalf("Inject after Close = %v, want ErrClosed", err)
	}
	fab.Close()
}

func TestChanFabricClose(t *testing.T) {
	fab := NewChanFabric(2)
	tr := fab.Transport(0)
	if err := tr.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(5, []byte("x")); err == nil {
		t.Fatal("send to unknown switch accepted")
	}
	fab.Close()
	if err := tr.Send(1, []byte("x")); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := tr.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close = %v, want ErrClosed", err)
	}
}

func TestUDPTransportPointToPoint(t *testing.T) {
	fab, err := NewUDPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	msg := []byte("hello dgmc")
	if err := fab.Transport(0).Send(1, msg); err != nil {
		t.Fatal(err)
	}
	got, err := fab.Transport(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	if err := fab.Transport(0).Send(9, msg); err == nil {
		t.Fatal("send to unknown peer accepted")
	}
}
