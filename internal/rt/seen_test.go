package rt

import (
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// TestSeenWindowSemantics pins the per-origin window tracker against the
// behaviours the flood path depends on.
func TestSeenWindowSemantics(t *testing.T) {
	var w seenWin

	if !w.mark(1) {
		t.Fatal("first seq 1 reported dup")
	}
	if w.mark(1) {
		t.Fatal("second seq 1 reported new")
	}
	if w.floor != 1 {
		t.Fatalf("floor = %d after contiguous 1, want 1", w.floor)
	}

	// Out-of-order within the window: accepted, and the floor advances only
	// over the contiguous prefix.
	if !w.mark(3) || !w.mark(5) {
		t.Fatal("in-window out-of-order seqs reported dup")
	}
	if w.floor != 1 {
		t.Fatalf("floor advanced to %d past a gap", w.floor)
	}
	if !w.mark(2) {
		t.Fatal("gap fill 2 reported dup")
	}
	if w.floor != 3 {
		t.Fatalf("floor = %d after filling 2, want 3", w.floor)
	}
	if !w.mark(4) {
		t.Fatal("gap fill 4 reported dup")
	}
	if w.floor != 5 {
		t.Fatalf("floor = %d after filling 4, want 5", w.floor)
	}
	for _, s := range []uint64{1, 2, 3, 4, 5} {
		if w.mark(s) {
			t.Fatalf("replayed seq %d reported new", s)
		}
	}

	// A jump far beyond the window slides it (disjoint: ring fully reset).
	// The skipped range becomes "seen" — the documented false-dup case the
	// resync layer recovers — while in-window sequences stay fresh.
	jump := w.floor + 10*seenWindow
	if !w.mark(jump) {
		t.Fatal("post-jump seq reported dup")
	}
	if w.mark(jump - seenWindow) {
		t.Fatal("seq at slid floor reported new")
	}
	if !w.mark(jump - 1) {
		t.Fatal("in-window seq after slide reported dup")
	}

	// A small (overlapping) slide must clear the bits it slides past:
	// otherwise a stale bit from the previous lap of the ring would make a
	// never-seen sequence at the same position report as a duplicate.
	var w2 seenWin
	w2.mark(1) // floor = 1
	w2.mark(5) // stale bit at ring position 5
	if !w2.mark(1 + seenWindow + 5) {
		t.Fatal("sliding seq reported dup")
	}
	// floor slid 1→6, clearing positions 2..6; seq 1029 (position 5 on the
	// new lap) was never marked and must be fresh.
	if !w2.mark(seenWindow + 5) {
		t.Fatal("stale ring bit resurrected as duplicate after slide")
	}
}

// TestSeenSoak pushes >10^5 distinct floods from many origins through a live
// node — every frame delivered twice, each batch in reverse order — and
// asserts the suppression state stays O(origins) rather than O(floods),
// which the old map-based set did not (it kept one entry per flood forever),
// and that exactly the first delivery of each flood reached the LSA loop.
func TestSeenSoak(t *testing.T) {
	const (
		origins         = 8
		floodsPerOrigin = 13_000 // 8 × 13k > 10^5 distinct floods
		batch           = 100    // reorder depth, well inside seenWindow
	)
	g := topo.New(origins + 1)
	for i := 1; i <= origins; i++ {
		if err := g.AddLink(0, topo.SwitchID(i), time.Microsecond, 1); err != nil {
			t.Fatal(err)
		}
	}
	fab := NewChanFabric(origins + 1)
	defer fab.Close()
	node, err := NewNode(NodeConfig{ID: 0, Graph: g}, fab.Transport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// The node store-and-forwards each fresh flood to its other neighbors;
	// drain those queues so the fabric can quiesce.
	send := make([]Transport, origins+1)
	for i := 1; i <= origins; i++ {
		send[i] = fab.Transport(topo.SwitchID(i))
		go func(tr Transport) {
			for {
				buf, err := tr.Recv()
				if err != nil {
					return
				}
				putBuf(buf)
			}
		}(fab.Transport(topo.SwitchID(i)))
	}

	// Interleave origins; within each origin deliver a batch of frames in
	// reverse (heavy reorder, still inside seenWindow), then re-deliver the
	// whole batch as duplicates.
	for lo := uint64(1); lo <= floodsPerOrigin; lo += batch {
		for o := 1; o <= origins; o++ {
			origin := topo.SwitchID(o)
			for pass := 0; pass < 2; pass++ {
				for s := lo + batch - 1; ; s-- {
					nm := &lsa.NonMC{Src: origin, Seq: uint32(s),
						Change: lsa.LinkChange{A: 0, B: origin, Down: s%2 == 0}}
					buf := lsa.EncodeFrame(&lsa.Frame{
						Version: lsa.FrameVersion, Kind: lsa.FrameFlood,
						Origin: origin, From: origin, Seq: s, Payload: nm.Marshal(),
					})
					if err := send[o].Send(0, buf); err != nil {
						t.Fatal(err)
					}
					if s == lo {
						break
					}
				}
			}
		}
	}

	// Activity counts every frame handled (dup or not) plus every message
	// the LSA loop drained. With suppression working, exactly the first
	// delivery of each flood is enqueued.
	const (
		frames   = 2 * origins * floodsPerOrigin
		enqueued = origins * floodsPerOrigin
		want     = uint64(frames + enqueued)
	)
	deadline := time.Now().Add(60 * time.Second)
	for fab.InFlight() != 0 || !node.idle() || node.activity.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("node did not drain: %d in flight, activity %d/%d",
				fab.InFlight(), node.activity.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := node.activity.Load(); got != want {
		t.Fatalf("activity = %d, want %d (dup floods leaked past suppression)", got, want)
	}
	if errs := node.DecodeErrors(); errs != 0 {
		t.Fatalf("%d decode errors during soak", errs)
	}

	// The suppression state is O(origins): one fixed-size window each.
	if got := node.SeenOrigins(); got > origins {
		t.Fatalf("suppression state tracks %d origins, want ≤ %d", got, origins)
	}
	// And every origin's window swallowed its whole soak contiguously.
	node.seen.mu.Lock()
	defer node.seen.mu.Unlock()
	for origin, w := range node.seen.origins {
		if w.floor != floodsPerOrigin {
			t.Fatalf("origin %d floor = %d, want %d", origin, w.floor, uint64(floodsPerOrigin))
		}
	}
}
