package rt

import (
	"bytes"
	"strings"
	"testing"

	"dgmc/internal/topo"
)

// FuzzParseTopoFile hardens the deployment-file parser: arbitrary input
// must never panic or exhaust memory (the daemon parses this file before
// dropping any privileges), and any input that parses must survive a
// Format/reparse round-trip to an equivalent topology.
func FuzzParseTopoFile(f *testing.F) {
	f.Add([]byte("switches 2\nlink 0 1 2ms\naddr 0 127.0.0.1:7700\naddr 1 127.0.0.1:7701\n"))
	f.Add([]byte("switches 3\nlink 0 1 5us 2.5\nlink 1 2 5us 2.5\n# comment\n\naddr 0 h:1\n"))
	f.Add([]byte("switches 1\n"))
	f.Add([]byte("switches 2000000000\n"))
	f.Add([]byte("link 0 1 2ms\nswitches 2\n"))
	f.Add([]byte("switches 2\nlink 0 0 2ms\n"))
	f.Add([]byte("switches 2\nlink 0 1 -5ms\n"))
	f.Add([]byte("switches 2\nlink 0 1 2ms 0\n"))
	f.Add([]byte("switches 2\naddr 5 x\n"))
	f.Add([]byte("switches 2\naddr 0 a\naddr 0 b\n"))
	f.Add([]byte("bogus\n"))
	f.Add([]byte("switches 2\nlink 0 1 10000000000h\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := ParseTopology(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tf.Graph == nil {
			t.Fatal("nil graph without error")
		}
		n := tf.Graph.NumSwitches()
		if n < 1 || n > MaxSwitches {
			t.Fatalf("accepted out-of-range switch count %d", n)
		}
		// Accepted topologies answer neighbor queries without panicking
		// (missing addrs are an error, not a crash).
		for s := 0; s < n; s++ {
			_, _ = tf.NeighborAddrs(topo.SwitchID(s))
		}
		// Format must re-parse to an equivalent topology.
		tf2, err := ParseTopology(strings.NewReader(tf.Format()))
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%s", err, tf.Format())
		}
		if tf2.Graph.NumSwitches() != n || tf2.Graph.NumLinks() != tf.Graph.NumLinks() {
			t.Fatalf("round-trip mangled graph: %d/%d switches, %d/%d links",
				n, tf2.Graph.NumSwitches(), tf.Graph.NumLinks(), tf2.Graph.NumLinks())
		}
		if len(tf2.Addrs) != len(tf.Addrs) {
			t.Fatalf("round-trip mangled addrs: %d vs %d", len(tf.Addrs), len(tf2.Addrs))
		}
		for id, addr := range tf.Addrs {
			if tf2.Addrs[id] != addr {
				t.Fatalf("round-trip mangled addr %d: %q vs %q", id, addr, tf2.Addrs[id])
			}
		}
		for _, l := range tf.Graph.Links() {
			l2, ok := tf2.Graph.Link(l.A, l.B)
			if !ok || l2.Delay != l.Delay || l2.Capacity != l.Capacity {
				t.Fatalf("round-trip mangled link (%d,%d)", l.A, l.B)
			}
		}
	})
}
