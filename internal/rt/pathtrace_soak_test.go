package rt

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// TestPathReconstructionSoak is the tentpole's acceptance soak: a 16-switch
// live cluster — over both transports — carries sampled traffic, each node
// exposes a real admin HTTP endpoint, and the offline reconstructor must
// rebuild at least one sampled packet's complete hop-by-hop path with
// per-hop latencies purely from what /flightrec and /healthz serve over the
// wire. No in-process shortcuts: the test's only inputs past the pump are
// HTTP GETs. Runs race-enabled in CI as a blocking gate.
func TestPathReconstructionSoak(t *testing.T) {
	const rows, cols = 4, 4
	const sampleEvery = 4

	t.Run("chan", func(t *testing.T) {
		runPathSoak(t, rows, cols, sampleEvery, NewChanFabric(rows*cols))
	})
	t.Run("udp", func(t *testing.T) {
		f, err := NewUDPFabric(rows * cols)
		if err != nil {
			t.Fatal(err)
		}
		runPathSoak(t, rows, cols, sampleEvery, f)
	})
}

func runPathSoak(t *testing.T, rows, cols, sampleEvery int, fabric Fabric) {
	conn := lsa.ConnID(1)
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var led atomic.Pointer[workload.Ledger]
	led.Store(workload.NewLedger())
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
		// Ring sized so a few hundred packets of forward/deliver events
		// cannot evict the sampled-hop evidence before the scrape.
		FlightRecords: 4096, SampleEvery: sampleEvery,
		DataHandler: func(at topo.SwitchID, conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			led.Load().RecordRecv(at, workload.PacketID{Src: src, Seq: seq})
		},
	}, fabric)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One real admin HTTP server per daemon, exactly as dgmcd wires it.
	servers := make(map[topo.SwitchID]*httptest.Server)
	for _, n := range c.Nodes() {
		n := n
		servers[n.ID()] = httptest.NewServer(obs.NewAdminMux(obs.AdminConfig{
			Flight: n.FlightDoc,
			Health: func() any { return n.Health() },
		}))
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	// Members in opposite corners plus mid-grid: multi-hop tree paths.
	members := []topo.SwitchID{0, 3, 12, 15, 5}
	for _, sw := range members {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	expect := func(src topo.SwitchID) []topo.SwitchID {
		var out []topo.SwitchID
		for _, sw := range members {
			if sw != src {
				out = append(out, sw)
			}
		}
		return out
	}
	l := workload.NewLedger()
	led.Store(l)
	if err := workload.Pump(c, l, workload.TrafficConfig{
		Conn: conn, Sources: members, Packets: 120, Expect: expect,
		SampleEvery: sampleEvery,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(50*time.Millisecond, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if sum := l.Summary(); sum.Ratio() < 0.99 {
		t.Fatalf("soak delivery ratio %.4f < 0.99: %+v", sum.Ratio(), sum)
	}

	// Scrape: everything below this line came over HTTP.
	httpGet := func(url string) []byte {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
		}
		return body
	}
	var docs []*obs.FlightDoc
	for id, srv := range servers {
		var doc obs.FlightDoc
		if err := json.Unmarshal(httpGet(srv.URL+"/flightrec"), &doc); err != nil {
			t.Fatalf("switch %d /flightrec: %v", id, err)
		}
		if doc.Switch != uint32(id) {
			t.Fatalf("switch %d served doc for switch %d", id, doc.Switch)
		}
		docs = append(docs, &doc)

		var h NodeHealth
		if err := json.Unmarshal(httpGet(srv.URL+"/healthz"), &h); err != nil {
			t.Fatalf("switch %d /healthz: %v", id, err)
		}
		if !h.Converged {
			t.Fatalf("switch %d /healthz not converged after settle: %+v", id, h)
		}
	}

	reports := obs.ReconstructPaths(docs)
	if len(reports) == 0 {
		t.Fatal("no sampled paths reconstructed from admin scrapes")
	}
	// Every packet the pump stamped as sampled must have left trace evidence,
	// and nothing else may appear: the pump's mirror of the sampling decision
	// and the data plane's must agree exactly.
	stamped := make(map[string]bool)
	for _, id := range l.SampledIDs() {
		stamped[(obs.PathReport{Conn: uint32(conn), Src: uint32(id.Src), Seq: id.Seq}).Key()] = true
	}
	for _, rep := range reports {
		if !stamped[rep.Key()] {
			t.Fatalf("reconstructed packet %s was not stamped by the pump", rep.Key())
		}
		delete(stamped, rep.Key())
	}
	for key := range stamped {
		t.Fatalf("pump-stamped packet %s left no trace evidence", key)
	}
	complete := 0
	for _, rep := range reports {
		if rep.Seq%uint64(sampleEvery) != 0 {
			t.Fatalf("unsampled packet %s reconstructed", rep.Key())
		}
		if !rep.Complete {
			continue
		}
		complete++
		if len(rep.Hops) < 2 {
			t.Fatalf("complete path %s has %d hops, want >= 2", rep.Key(), len(rep.Hops))
		}
		if rep.Hops[0].Kind != obs.RecOriginate {
			t.Fatalf("complete path %s does not start at origination: %+v", rep.Key(), rep.Hops[0])
		}
		if rep.Delivered == 0 || rep.EndToEndNS <= 0 {
			t.Fatalf("complete path %s has no timed delivery: %+v", rep.Key(), rep)
		}
		for _, h := range rep.Hops[1:] {
			if h.LatencyNS < 0 {
				t.Fatalf("complete path %s hop at sw%d has unresolved latency", rep.Key(), h.Switch)
			}
		}
	}
	if complete == 0 {
		t.Fatalf("no complete hop-by-hop path among %d reconstructed reports", len(reports))
	}
	t.Logf("reconstructed %d sampled paths (%d complete) from %d admin scrapes",
		len(reports), complete, len(docs))

	// The joined reports feed the Prometheus surface.
	reg := obs.NewRegistry()
	obs.ExportPathMetrics(reg, reports)
	if got := reg.Histogram("dgmc_path_hop_seconds", obs.PathLatencyBounds).Count(); got == 0 {
		t.Fatal("hop latency histogram empty after export")
	}
	if got := reg.Histogram("dgmc_path_e2e_seconds", obs.PathLatencyBounds).Count(); got == 0 {
		t.Fatal("e2e latency histogram empty after export")
	}
}
