package rt

import (
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// TestDeliverySoak is the data-plane acceptance soak: a 16-switch live
// cluster carries payload streams while the control plane churns membership
// and survives a partition/heal cycle. Fault-free settled phases are gated —
// delivery ratio ≥ 0.99 with zero duplicates — and the faulted phase is
// recorded, since packets crossing a live partition are supposed to die.
// Runs race-enabled in CI as a blocking gate.
func TestDeliverySoak(t *testing.T) {
	const rows, cols = 4, 4
	conn := lsa.ConnID(1)
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}

	// The active phase's ledger; the delivery handler runs on receive
	// goroutines, so the swap is atomic.
	var led atomic.Pointer[workload.Ledger]
	led.Store(workload.NewLedger())
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
		DataHandler: func(at topo.SwitchID, conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			led.Load().RecordRecv(at, workload.PacketID{Src: src, Seq: seq})
		},
	}, NewChanFabric(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The test tracks membership itself; in settled phases this is exactly
	// what every switch has installed, so expectations are exact.
	members := map[topo.SwitchID]bool{}
	join := func(sw topo.SwitchID) {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
		members[sw] = true
	}
	leave := func(sw topo.SwitchID) {
		if err := c.Leave(sw, conn); err != nil {
			t.Fatal(err)
		}
		delete(members, sw)
	}
	sources := func() []topo.SwitchID {
		var out []topo.SwitchID
		for sw := range members {
			out = append(out, sw)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	expect := func(src topo.SwitchID) []topo.SwitchID {
		var out []topo.SwitchID
		for sw := range members {
			if sw != src {
				out = append(out, sw)
			}
		}
		return out
	}

	pump := func(packets int, pace func(i int)) workload.Summary {
		l := workload.NewLedger()
		led.Store(l)
		if err := workload.Pump(c, l, workload.TrafficConfig{
			Conn: conn, Sources: sources(), Packets: packets,
			Expect: expect, Pace: pace,
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(50*time.Millisecond, 60*time.Second); err != nil {
			t.Fatal(err)
		}
		return l.Summary()
	}

	// Members on both sides of the future partition boundary.
	for _, sw := range []topo.SwitchID{0, 3, 5, 12, 15} {
		join(sw)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 1 (gated): settled cluster, no faults.
	sum := pump(200, nil)
	t.Logf("phase 1 (settled): %+v ratio=%.4f", sum, sum.Ratio())
	if sum.Ratio() < 0.99 {
		t.Fatalf("settled delivery ratio %.4f < 0.99: %+v", sum.Ratio(), sum)
	}
	if sum.Dups != 0 || sum.Strays != 0 {
		t.Fatalf("settled phase produced %d dups, %d strays", sum.Dups, sum.Strays)
	}

	// Phase 2 (recorded): traffic keeps flowing while membership churns and
	// the fabric partitions and heals mid-stream. Expectations are computed
	// against full membership, so cross-partition packets read as missing —
	// the measurement, not a failure.
	groups := gridGroups(rows, cols, 2)
	faulted := pump(240, func(i int) {
		switch i {
		case 20:
			join(6)
		case 60:
			if err := c.Partition(groups); err != nil {
				t.Fatal(err)
			}
		case 140:
			if err := c.Heal(); err != nil {
				t.Fatal(err)
			}
		case 200:
			leave(5)
		}
		time.Sleep(200 * time.Microsecond)
	})
	t.Logf("phase 2 (churn + partition/heal): %+v ratio=%.4f", faulted, faulted.Ratio())
	if faulted.Packets == 0 || faulted.Delivered == 0 {
		t.Fatalf("no traffic survived the faulted phase: %+v", faulted)
	}

	// Phase 3 (gated): after reconvergence the stream must be clean again.
	if err := c.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	sum = pump(200, nil)
	t.Logf("phase 3 (reconverged): %+v ratio=%.4f", sum, sum.Ratio())
	if sum.Ratio() < 0.99 {
		t.Fatalf("post-heal delivery ratio %.4f < 0.99: %+v", sum.Ratio(), sum)
	}
	if sum.Dups != 0 || sum.Strays != 0 {
		t.Fatalf("reconverged phase produced %d dups, %d strays", sum.Dups, sum.Strays)
	}

	stats := c.ForwardStats()
	t.Logf("cluster forward stats: %+v", stats)
	if stats.Originated == 0 || stats.Delivered == 0 {
		t.Fatalf("forward counters never moved: %+v", stats)
	}
}

// TestDeliveryUnderLoss turns on fabric-level payload loss and checks the
// plumbing end to end: the loss knob eats data frames only (the control
// plane still converges), the delivery ratio lands roughly where the drop
// probability says it should, and disabling loss restores a clean stream.
func TestDeliveryUnderLoss(t *testing.T) {
	conn := lsa.ConnID(1)
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var led atomic.Pointer[workload.Ledger]
	led.Store(workload.NewLedger())
	fab := NewChanFabric(4)
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
		DataHandler: func(at topo.SwitchID, conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			led.Load().RecordRecv(at, workload.PacketID{Src: src, Seq: seq})
		},
	}, fab)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Heavy loss from the start: joins still converge because only payload
	// frames are eligible.
	fab.SetLoss(0.5, 42)
	for _, sw := range []topo.SwitchID{0, 3} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("control plane must be immune to payload loss: %v", err)
	}

	pump := func(packets int) workload.Summary {
		l := workload.NewLedger()
		led.Store(l)
		if err := workload.Pump(c, l, workload.TrafficConfig{
			Conn: conn, Sources: []topo.SwitchID{0}, Packets: packets,
			Expect: func(topo.SwitchID) []topo.SwitchID { return []topo.SwitchID{3} },
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(50*time.Millisecond, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		return l.Summary()
	}

	lossy := pump(400)
	if fab.Lost() == 0 {
		t.Fatal("loss knob never dropped a frame")
	}
	// Each packet crosses 3 links, each surviving with p=0.5: expect ~12.5%
	// end-to-end. Anything clearly below lossless and above zero will do.
	if r := lossy.Ratio(); r > 0.6 || lossy.Delivered == 0 {
		t.Fatalf("lossy ratio = %.4f (delivered %d), want heavy but partial loss", r, lossy.Delivered)
	}

	fab.SetLoss(0, 0)
	clean := pump(100)
	if clean.Ratio() != 1 || clean.Dups != 0 {
		t.Fatalf("loss disabled but stream not clean: %+v", clean)
	}
}
