package rt

import (
	"crypto/sha256"
	"fmt"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// NodeSnapshot is a point-in-time capture of one switch's protocol state —
// every connection's stamps, member list, event log, installed topology,
// and resync posture — detached from the runtime that produced it. It is
// what a crash–restart with durable state restores from
// (NodeConfig.Restore); a restart without one rebuilds from neighbors
// instead (Node.RejoinFromNeighbors).
//
// The snapshot carries a checksum over the machine's canonical state
// encoding (core.Machine.AppendState), taken at capture time and verified
// at restore time, so state corrupted between crash and restart is refused
// rather than replayed into the network.
type NodeSnapshot struct {
	id      topo.SwitchID
	epoch   uint64
	machine *core.Machine
	sum     [sha256.Size]byte
}

// Snapshot captures the node's current protocol state. The capture is
// atomic with respect to protocol processing (it holds the machine lock)
// and independent of the node afterwards: the node may process further
// traffic, crash, or be closed without affecting the snapshot.
func (n *Node) Snapshot() *NodeSnapshot {
	n.mu.Lock()
	m := n.machine.CloneWith(parkedHost{})
	n.mu.Unlock()
	return &NodeSnapshot{
		id:      n.id,
		epoch:   n.epoch,
		machine: m,
		sum:     sha256.Sum256(m.AppendState(nil)),
	}
}

// ID returns the switch the snapshot was taken from.
func (s *NodeSnapshot) ID() topo.SwitchID { return s.id }

// Epoch returns the restart epoch of the incarnation that was captured.
func (s *NodeSnapshot) Epoch() uint64 { return s.epoch }

// Checksum returns the SHA-256 over the snapshot's canonical state
// encoding.
func (s *NodeSnapshot) Checksum() [sha256.Size]byte { return s.sum }

// verify recomputes the checksum and compares it with the one taken at
// capture time.
func (s *NodeSnapshot) verify() error {
	if s.machine == nil {
		return fmt.Errorf("rt: empty snapshot for switch %d", s.id)
	}
	if got := sha256.Sum256(s.machine.AppendState(nil)); got != s.sum {
		return fmt.Errorf("rt: snapshot for switch %d failed checksum verification", s.id)
	}
	return nil
}

// parkedHost is the inert core.Host a snapshot's machine is bound to while
// parked: the machine never runs there, but CloneWith requires a host, and
// an inert one guarantees that even a misuse (calling into the parked
// machine) cannot touch the network.
type parkedHost struct{}

var _ core.Host = parkedHost{}

func (parkedHost) FloodMC(*lsa.MC)                                                {}
func (parkedHost) FloodNonMC(*lsa.NonMC)                                          {}
func (parkedHost) SendUnicast(topo.SwitchID, any)                                 {}
func (parkedHost) HoldCompute(any)                                                {}
func (parkedHost) PendingMC(lsa.ConnID) bool                                      { return false }
func (parkedHost) Neighbors() []topo.SwitchID                                     { return nil }
func (parkedHost) FabricLinkChanged(lsa.LinkChange)                               {}
func (parkedHost) ArmResync(lsa.ConnID)                                           {}
func (parkedHost) SelfNudge(lsa.ConnID)                                           {}
func (parkedHost) NoteInstall()                                                   {}
func (parkedHost) ForwardingChanged(lsa.ConnID)                                   {}
func (parkedHost) Trace(core.TraceKind, core.ChainID, lsa.ConnID, string, ...any) {}
func (parkedHost) TraceEnabled() bool                                             { return false }
