package rt

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/topo"
)

// TestChurnSoakWithObservability repeats the chan-transport churn soak with
// full observability attached — a shared registry, a shared span collector,
// and a goroutine scraping both concurrently with the churn — and then
// checks the scraped output is non-empty and self-consistent. Run with
// -race, this is the soak the CI observability job relies on.
func TestChurnSoakWithObservability(t *testing.T) {
	g := soakGraph(t, soakSwitches)
	reg := obs.NewRegistry()
	spans := obs.NewSpanCollector(4096)
	c, err := NewCluster(ClusterConfig{
		Graph:    g,
		Registry: reg,
		Tracer:   spans,
	}, NewChanFabric(soakSwitches))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent scraper: exercise snapshot, delta, Prometheus rendering,
	// and span assembly while the cluster is under churn.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev obs.Snap
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			snap := reg.Snapshot()
			snap.Delta(prev)
			prev = snap
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			spans.Stats()
		}
	}()

	runChurnSoak(t, c, 0)
	close(stop)
	wg.Wait()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if out == "" {
		t.Fatal("registry rendered empty after a 220-event soak")
	}
	for _, want := range []string{
		"# TYPE dgmc_frames_received_total counter",
		"# TYPE dgmc_floods_originated_total counter",
		"# TYPE dgmc_lsa_batch_seconds histogram",
		"# TYPE dgmc_machine_computations_total counter",
		"# TYPE dgmc_machine_installs_total counter",
		"dgmc_mc_lsas_flooded_total",
		"dgmc_gap_buffer_depth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Cross-check one scrape-time counter against the machines directly.
	var wantInstalls float64
	for _, n := range c.Nodes() {
		wantInstalls += float64(n.Metrics().Installs)
	}
	var gotInstalls float64
	for _, p := range reg.Snapshot() {
		if p.Name == "dgmc_machine_installs_total" {
			gotInstalls += p.Value
		}
	}
	if wantInstalls == 0 || gotInstalls != wantInstalls {
		t.Errorf("scraped installs = %v, machines say %v", gotInstalls, wantInstalls)
	}

	// Span side: the soak's events must have produced chains whose spans
	// carry computations, floods, and installs.
	st := spans.Stats()
	if st.Spans == 0 {
		t.Fatal("no spans collected")
	}
	if st.Converged == 0 {
		t.Error("no span shows a completed install chain")
	}
	if st.MeanComputations <= 0 || st.MeanFloods <= 0 {
		t.Errorf("per-event costs not measured: %+v", st)
	}
	found := false
	for _, sp := range spans.Spans() {
		if sp.Installs > 0 && sp.Floods > 0 && sp.ConvergeNS > 0 && len(sp.Switches) > 1 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no span reconstructs a multi-switch event→flood→install chain")
	}
}

// TestFaultMetricsExported asserts the fault-recovery series reach a
// Prometheus scrape: the cluster-wide heal and restart counters count the
// harness operations, the per-switch give-up counter is present, and a
// restarted switch's machine series keep reporting the live incarnation
// (the registry pins the first closure per series, so this exercises the
// succession chain).
func TestFaultMetricsExported(t *testing.T) {
	g, err := topo.Grid(2, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c, err := NewCluster(ClusterConfig{
		Graph: g, Registry: reg, ResyncTimeout: resyncFast,
	}, NewChanFabric(g.NumSwitches()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(1)
	for _, sw := range []topo.SwitchID{0, 5} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition(gridGroups(2, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(2); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Churn through the restarted switch so its second incarnation has
	// machine activity of its own.
	if err := c.Join(2, conn, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dgmc_resync_gave_up_total counter",
		"# TYPE dgmc_partitions_healed_total counter",
		"# TYPE dgmc_node_restarts_total counter",
		"dgmc_partitions_healed_total 1",
		"dgmc_node_restarts_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The switch-2 machine series must report the second incarnation: its
	// join above was handled by the new machine, the old one is closed.
	var sw2Events float64
	for _, p := range reg.Snapshot() {
		if p.Name == "dgmc_machine_events_total" && len(p.Labels) == 1 && p.Labels[0].Value == "2" {
			sw2Events = p.Value
		}
	}
	if want := float64(c.Node(2).Metrics().Events); sw2Events != want || want == 0 {
		t.Errorf("switch 2 machine series = %v, live machine says %v", sw2Events, want)
	}
}

// TestNodeDisabledObservability pins the disabled path: a cluster without a
// registry or tracer must work exactly as before and keep all instrument
// handles nil.
func TestNodeDisabledObservability(t *testing.T) {
	g := soakGraph(t, 4)
	c, err := NewCluster(ClusterConfig{Graph: g}, NewChanFabric(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := c.Node(0)
	if n.obs.enabled() || n.obs.framesRecv != nil || n.obs.batchDur != nil {
		t.Fatal("disabled node must carry nil instruments")
	}
	if err := c.Join(0, 1, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(2, 1, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}
