package rt

import (
	"fmt"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// Fabric hands out per-switch transports. ChanFabric and UDPFabric
// implement it.
type Fabric interface {
	Transport(id topo.SwitchID) Transport
	Close() error
}

// ClusterConfig configures a live N-switch fabric in one process.
type ClusterConfig struct {
	// Graph is the fabric topology. Required, and must be connected.
	Graph *topo.Graph
	// Algorithm computes MC topologies (default route.SPH).
	Algorithm route.Algorithm
	// Kinds maps connection IDs to their MC type.
	Kinds map[lsa.ConnID]mctree.Kind
	// ReoptimizeThreshold, ResyncTimeout, ResyncMaxRounds, ComputeDelay,
	// and Logf are applied to every node; see NodeConfig.
	ReoptimizeThreshold float64
	ResyncTimeout       time.Duration
	ResyncMaxRounds     int
	ComputeDelay        time.Duration
	Logf                func(format string, args ...any)
	// Tracer and Registry are shared by every node (one network-wide span
	// collector and one registry with per-switch labels); see NodeConfig.
	Tracer   core.Tracer
	Registry *obs.Registry
}

// Cluster boots one Node per switch of a graph over a shared fabric: the
// live-runtime counterpart of core.Domain, used by the live harness tests
// and the sim-vs-live equivalence test.
type Cluster struct {
	graph   *topo.Graph
	fabric  Fabric
	chanFab *ChanFabric // non-nil when fabric supports in-flight counting
	nodes   []*Node
}

// NewCluster starts one node per switch. It takes ownership of fabric and
// closes it (and any started nodes) on failure.
func NewCluster(cfg ClusterConfig, fabric Fabric) (*Cluster, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("rt: ClusterConfig.Graph is required")
	}
	if !cfg.Graph.Connected() {
		fabric.Close()
		return nil, fmt.Errorf("rt: fabric graph is not connected")
	}
	c := &Cluster{graph: cfg.Graph, fabric: fabric}
	c.chanFab, _ = fabric.(*ChanFabric)
	for i := 0; i < cfg.Graph.NumSwitches(); i++ {
		n, err := NewNode(NodeConfig{
			ID:                  topo.SwitchID(i),
			Graph:               cfg.Graph,
			Algorithm:           cfg.Algorithm,
			Kinds:               cfg.Kinds,
			ReoptimizeThreshold: cfg.ReoptimizeThreshold,
			ResyncTimeout:       cfg.ResyncTimeout,
			ResyncMaxRounds:     cfg.ResyncMaxRounds,
			ComputeDelay:        cfg.ComputeDelay,
			Logf:                cfg.Logf,
			Tracer:              cfg.Tracer,
			Registry:            cfg.Registry,
		}, fabric.Transport(topo.SwitchID(i)))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Node returns the node for switch id.
func (c *Cluster) Node(id topo.SwitchID) *Node { return c.nodes[id] }

// Nodes returns the cluster's nodes, indexed by switch ID.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Join injects a join at switch sw for conn.
func (c *Cluster) Join(sw topo.SwitchID, conn lsa.ConnID, role mctree.Role) error {
	if int(sw) < 0 || int(sw) >= len(c.nodes) {
		return fmt.Errorf("rt: no switch %d", sw)
	}
	return c.nodes[sw].Join(conn, role)
}

// Leave injects a leave at switch sw for conn.
func (c *Cluster) Leave(sw topo.SwitchID, conn lsa.ConnID) error {
	if int(sw) < 0 || int(sw) >= len(c.nodes) {
		return fmt.Errorf("rt: no switch %d", sw)
	}
	return c.nodes[sw].Leave(conn)
}

// activity sums the nodes' work counters.
func (c *Cluster) activity() uint64 {
	var sum uint64
	for _, n := range c.nodes {
		sum += n.activity.Load()
	}
	return sum
}

// quiet reports whether every node is idle and (when countable) no frames
// are in flight.
func (c *Cluster) quiet() bool {
	for _, n := range c.nodes {
		if !n.idle() {
			return false
		}
	}
	return c.chanFab == nil || c.chanFab.InFlight() == 0
}

// Settle blocks until the cluster has been quiescent — every node idle, no
// countable frames in flight, and no work completed anywhere — for idleFor,
// or errors after timeout. Over UDP, in-flight datagrams are invisible, so
// idleFor must comfortably exceed the fabric's delivery latency (loopback:
// sub-millisecond; the defaults used by tests are far above it).
func (c *Cluster) Settle(idleFor, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last := c.activity()
	lastChange := time.Now()
	for {
		time.Sleep(2 * time.Millisecond)
		now := time.Now()
		if act := c.activity(); act != last || !c.quiet() {
			last = act
			lastChange = now
		} else if now.Sub(lastChange) >= idleFor {
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("rt: cluster did not settle within %v", timeout)
		}
	}
}

// CheckAgreement verifies the cluster-wide convergence invariant, the live
// counterpart of core.Domain.CheckConverged: for every live connection,
// every node agrees on the member list and the committed stamp, each node's
// stamps are mutually consistent (R = C, R ≥ E), and with two or more
// members all nodes have installed the same valid topology spanning them.
func (c *Cluster) CheckAgreement() error {
	conns := map[lsa.ConnID]bool{}
	for _, n := range c.nodes {
		for _, id := range n.Connections() {
			conns[id] = true
		}
	}
	for conn := range conns {
		var ref core.Snapshot
		var refNode topo.SwitchID
		first := true
		for _, n := range c.nodes {
			snap, ok := n.Connection(conn)
			if !ok {
				return fmt.Errorf("conn %d: switch %d has no state", conn, n.ID())
			}
			if !snap.R.Equal(snap.C) {
				return fmt.Errorf("conn %d: switch %d uncommitted (R=%s C=%s)", conn, n.ID(), snap.R, snap.C)
			}
			if !snap.R.Geq(snap.E) {
				return fmt.Errorf("conn %d: switch %d still expects LSAs (R=%s E=%s)", conn, n.ID(), snap.R, snap.E)
			}
			if first {
				ref, refNode, first = snap, n.ID(), false
				continue
			}
			if !snap.Members.Equal(ref.Members) {
				return fmt.Errorf("conn %d: members disagree between switches %d and %d", conn, refNode, n.ID())
			}
			if !snap.C.Equal(ref.C) {
				return fmt.Errorf("conn %d: commit stamps disagree between switches %d and %d (%s vs %s)",
					conn, refNode, n.ID(), ref.C, snap.C)
			}
			if (snap.Topology == nil) != (ref.Topology == nil) ||
				(snap.Topology != nil && !snap.Topology.Equal(ref.Topology)) {
				return fmt.Errorf("conn %d: topologies disagree between switches %d and %d", conn, refNode, n.ID())
			}
		}
		if len(ref.Members) >= 2 {
			if ref.Topology == nil {
				return fmt.Errorf("conn %d: %d members but no installed topology", conn, len(ref.Members))
			}
			if err := ref.Topology.Validate(c.graph, ref.Members); err != nil {
				return fmt.Errorf("conn %d: installed topology invalid: %v", conn, err)
			}
		}
	}
	return nil
}

// WaitConverged settles and checks agreement repeatedly until it holds or
// timeout elapses. Over lossy transports convergence can require resync
// rounds, so a failed check is retried, not fatal.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	idleFor := 25 * time.Millisecond
	if c.chanFab == nil {
		idleFor = 100 * time.Millisecond // UDP: cover in-flight datagrams
	}
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("rt: never settled")
			}
			return fmt.Errorf("rt: cluster did not converge within %v: %w", timeout, lastErr)
		}
		if err := c.Settle(idleFor, remain); err != nil {
			lastErr = err
			continue
		}
		if err := c.CheckAgreement(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
}

// Close shuts down every node, then the fabric.
func (c *Cluster) Close() error {
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
	return c.fabric.Close()
}
