package rt

import (
	"fmt"
	"sync"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// Fabric hands out per-switch transports. ChanFabric and UDPFabric
// implement it.
type Fabric interface {
	Transport(id topo.SwitchID) Transport
	Close() error
}

// ClusterConfig configures a live N-switch fabric in one process.
type ClusterConfig struct {
	// Graph is the fabric topology. Required, and must be connected.
	Graph *topo.Graph
	// Algorithm computes MC topologies (default route.SPH).
	Algorithm route.Algorithm
	// Kinds maps connection IDs to their MC type.
	Kinds map[lsa.ConnID]mctree.Kind
	// ReoptimizeThreshold, ResyncTimeout, ResyncMaxRounds, ComputeDelay,
	// and Logf are applied to every node; see NodeConfig.
	ReoptimizeThreshold float64
	ResyncTimeout       time.Duration
	ResyncMaxRounds     int
	ComputeDelay        time.Duration
	Logf                func(format string, args ...any)
	// Tracer and Registry are shared by every node (one network-wide span
	// collector and one registry with per-switch labels); see NodeConfig.
	Tracer   core.Tracer
	Registry *obs.Registry
	// DataHandler, if set, receives every payload the data plane delivers
	// anywhere in the cluster, tagged with the delivering switch. Same
	// contract as NodeConfig.DataHandler: called on the receive goroutine,
	// must not block, payload aliases a pooled buffer.
	DataHandler ClusterDataHandler
	// DataHops is the hop budget on originated payloads (default
	// DefaultDataHops).
	DataHops int
	// FlightRecords and SampleEvery enable every node's flight recorder
	// and 1-in-N packet path sampling; see NodeConfig.
	FlightRecords int
	SampleEvery   int
}

// ClusterDataHandler is ClusterConfig.DataHandler: a node-level DataHandler
// plus the identity of the switch that delivered.
type ClusterDataHandler func(at topo.SwitchID, conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte)

// Cluster boots one Node per switch of a graph over a shared fabric: the
// live-runtime counterpart of core.Domain, used by the live harness tests
// and the sim-vs-live equivalence test. Beyond booting and converging, it
// is the fault harness: KillNode/RestartNode crash and recover individual
// switches, Partition/Heal split and reconcile the whole fabric.
type Cluster struct {
	cfg     ClusterConfig
	graph   *topo.Graph
	fabric  Fabric
	chanFab *ChanFabric // non-nil when fabric supports in-flight counting

	// healed / restarts count fault-recovery operations cluster-wide.
	// Plain counters (not funcs) so re-registration across restarts is a
	// no-op by registry idempotency.
	healed   *obs.Counter
	restarts *obs.Counter

	// mu guards nodes, last, epochs, and partition against concurrent fault
	// operations; steady-state reads (Settle, CheckAgreement) take it too.
	mu    sync.RWMutex
	nodes []*Node // nil entry = switch currently dead
	last  []*Node // most recent incarnation ever, alive or dead
	// epochs tracks each switch's restart epoch; bumped on every restart.
	epochs []uint64
	// partition remembers the active split so Heal knows which boundary
	// links to reconcile.
	partition [][]topo.SwitchID
}

// NewCluster starts one node per switch. It takes ownership of fabric and
// closes it (and any started nodes) on failure.
func NewCluster(cfg ClusterConfig, fabric Fabric) (*Cluster, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("rt: ClusterConfig.Graph is required")
	}
	if !cfg.Graph.Connected() {
		fabric.Close()
		return nil, fmt.Errorf("rt: fabric graph is not connected")
	}
	c := &Cluster{
		cfg:      cfg,
		graph:    cfg.Graph,
		fabric:   fabric,
		healed:   cfg.Registry.Counter("dgmc_partitions_healed_total"),
		restarts: cfg.Registry.Counter("dgmc_node_restarts_total"),
		epochs:   make([]uint64, cfg.Graph.NumSwitches()),
	}
	c.chanFab, _ = fabric.(*ChanFabric)
	for i := 0; i < cfg.Graph.NumSwitches(); i++ {
		n, err := c.newNode(topo.SwitchID(i), 0, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.last = append(c.last, n)
	}
	return c, nil
}

// newNode boots one switch at the given restart epoch, optionally from a
// snapshot.
func (c *Cluster) newNode(id topo.SwitchID, epoch uint64, snap *NodeSnapshot) (*Node, error) {
	var dh DataHandler
	if c.cfg.DataHandler != nil {
		h := c.cfg.DataHandler
		dh = func(conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			h(id, conn, src, seq, payload)
		}
	}
	return NewNode(NodeConfig{
		ID:                  id,
		Graph:               c.cfg.Graph,
		Algorithm:           c.cfg.Algorithm,
		Kinds:               c.cfg.Kinds,
		ReoptimizeThreshold: c.cfg.ReoptimizeThreshold,
		ResyncTimeout:       c.cfg.ResyncTimeout,
		ResyncMaxRounds:     c.cfg.ResyncMaxRounds,
		ComputeDelay:        c.cfg.ComputeDelay,
		Logf:                c.cfg.Logf,
		Tracer:              c.cfg.Tracer,
		Registry:            c.cfg.Registry,
		Epoch:               epoch,
		Restore:             snap,
		DataHandler:         dh,
		DataHops:            c.cfg.DataHops,
		FlightRecords:       c.cfg.FlightRecords,
		SampleEvery:         c.cfg.SampleEvery,
	}, c.fabric.Transport(id))
}

// Node returns the node currently serving switch id (nil while killed).
func (c *Cluster) Node(id topo.SwitchID) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[id]
}

// Nodes returns the cluster's nodes, indexed by switch ID (nil entries for
// killed switches). The slice is a copy; the nodes are shared.
func (c *Cluster) Nodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// KillNode crashes switch id: its goroutines stop, its transport attachment
// closes, and every frame queued for it is dropped — no farewell, no
// link-state event, exactly like a power cut. Requires a ChanFabric (the
// only fabric whose attachments can die independently).
func (c *Cluster) KillNode(id topo.SwitchID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chanFab == nil {
		return fmt.Errorf("rt: KillNode requires a ChanFabric")
	}
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("rt: no switch %d", id)
	}
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("rt: switch %d is already dead", id)
	}
	// Kill the transport first so the node's receive loop exits, then stop
	// the goroutines. Frames other nodes send it meanwhile fail or drop.
	if err := c.chanFab.Kill(id); err != nil {
		return err
	}
	n.Close()
	c.nodes[id] = nil
	return nil
}

// RestartNode boots a fresh incarnation of a killed switch at the next
// restart epoch. With a snapshot, the incarnation resumes from the captured
// protocol state; without one it boots blank. Either way it immediately
// runs the cold-rejoin path — asking every neighbor for a full replay —
// because even a snapshot is stale by however long the switch was down.
func (c *Cluster) RestartNode(id topo.SwitchID, snap *NodeSnapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chanFab == nil {
		return fmt.Errorf("rt: RestartNode requires a ChanFabric")
	}
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("rt: no switch %d", id)
	}
	if c.nodes[id] != nil {
		return fmt.Errorf("rt: switch %d is not dead", id)
	}
	if err := c.chanFab.Reset(id); err != nil {
		return err
	}
	c.epochs[id]++
	n, err := c.newNode(id, c.epochs[id], snap)
	if err != nil {
		return err
	}
	if prev := c.last[id]; prev != nil {
		prev.succ.Store(n) // keep registry closures pointed at the live machine
	}
	c.nodes[id] = n
	c.last[id] = n
	c.restarts.Inc()
	n.RejoinFromNeighbors()
	return nil
}

// Partition splits the fabric into groups: every frame between switches in
// different groups is silently dropped from now on. Requires a ChanFabric.
func (c *Cluster) Partition(groups [][]topo.SwitchID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chanFab == nil {
		return fmt.Errorf("rt: Partition requires a ChanFabric")
	}
	cp := make([][]topo.SwitchID, len(groups))
	for i, g := range groups {
		cp[i] = append([]topo.SwitchID(nil), g...)
	}
	c.partition = cp
	c.chanFab.SetPartition(cp)
	return nil
}

// Heal removes the active partition and starts heal reconciliation on both
// ends of every graph link the partition had cut: each boundary switch
// advertises its R to its re-reachable neighbor and asks for the log suffix
// beyond it; replayed events re-flood into the interior, so the whole
// network converges to the union of what the sides learned apart.
func (c *Cluster) Heal() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chanFab == nil {
		return fmt.Errorf("rt: Heal requires a ChanFabric")
	}
	if c.partition == nil {
		return fmt.Errorf("rt: no active partition")
	}
	group := map[topo.SwitchID]int{}
	for i, g := range c.partition {
		for _, s := range g {
			group[s] = i
		}
	}
	c.partition = nil
	c.chanFab.ClearPartition()
	for s := 0; s < c.graph.NumSwitches(); s++ {
		a := topo.SwitchID(s)
		for _, b := range c.graph.Neighbors(a) {
			ga, oka := group[a]
			gb, okb := group[b]
			if a < b && oka && okb && ga != gb {
				if c.nodes[a] != nil {
					c.nodes[a].Reconcile(b)
				}
				if c.nodes[b] != nil {
					c.nodes[b].Reconcile(a)
				}
			}
		}
	}
	c.healed.Inc()
	return nil
}

// Join injects a join at switch sw for conn.
func (c *Cluster) Join(sw topo.SwitchID, conn lsa.ConnID, role mctree.Role) error {
	n := c.aliveNode(sw)
	if n == nil {
		return fmt.Errorf("rt: no live switch %d", sw)
	}
	return n.Join(conn, role)
}

// Leave injects a leave at switch sw for conn.
func (c *Cluster) Leave(sw topo.SwitchID, conn lsa.ConnID) error {
	n := c.aliveNode(sw)
	if n == nil {
		return fmt.Errorf("rt: no live switch %d", sw)
	}
	return n.Leave(conn)
}

// SendData originates one payload on conn at switch sw. Errors if the
// switch is dead or may not send (see Node.SendData).
func (c *Cluster) SendData(sw topo.SwitchID, conn lsa.ConnID, payload []byte) (uint64, error) {
	n := c.aliveNode(sw)
	if n == nil {
		return 0, fmt.Errorf("rt: no live switch %d", sw)
	}
	return n.SendData(conn, payload)
}

// SendDataBatch originates count copies of payload on conn at switch sw in
// one batched call (see Node.SendDataBatch); it satisfies
// workload.BatchSender so the load generator amortizes per-send setup.
func (c *Cluster) SendDataBatch(sw topo.SwitchID, conn lsa.ConnID, payload []byte, count int) (uint64, int, error) {
	n := c.aliveNode(sw)
	if n == nil {
		return 0, 0, fmt.Errorf("rt: no live switch %d", sw)
	}
	return n.SendDataBatch(conn, payload, count)
}

// ForwardStats sums the data-plane counters across switches: live nodes
// plus the latest incarnation of any currently-dead switch. A crashed
// incarnation's counters vanish with it, exactly as a real switch's would.
func (c *Cluster) ForwardStats() ForwardStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum ForwardStats
	seen := map[*Node]bool{}
	add := func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		s := n.ForwardStats()
		sum.Originated += s.Originated
		sum.Forwarded += s.Forwarded
		sum.Delivered += s.Delivered
		sum.DropNoEntry += s.DropNoEntry
		sum.DropNoRoute += s.DropNoRoute
		sum.DropHops += s.DropHops
		sum.DropLoop += s.DropLoop
	}
	for _, n := range c.nodes {
		add(n)
	}
	for _, n := range c.last {
		add(n)
	}
	return sum
}

// aliveNode returns the live node for sw, or nil if out of range or dead.
func (c *Cluster) aliveNode(sw topo.SwitchID) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if int(sw) < 0 || int(sw) >= len(c.nodes) {
		return nil
	}
	return c.nodes[sw]
}

// activity sums the live nodes' work counters.
func (c *Cluster) activity() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum uint64
	for _, n := range c.nodes {
		if n != nil {
			sum += n.activity.Load()
		}
	}
	return sum
}

// quiet reports whether every live node is idle and (when countable) no
// frames are in flight.
func (c *Cluster) quiet() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.nodes {
		if n != nil && !n.idle() {
			return false
		}
	}
	return c.chanFab == nil || c.chanFab.InFlight() == 0
}

// Settle blocks until the cluster has been quiescent — every node idle, no
// countable frames in flight, and no work completed anywhere — for idleFor,
// or errors after timeout. Over UDP, in-flight datagrams are invisible, so
// idleFor must comfortably exceed the fabric's delivery latency (loopback:
// sub-millisecond; the defaults used by tests are far above it).
func (c *Cluster) Settle(idleFor, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last := c.activity()
	lastChange := time.Now()
	for {
		time.Sleep(2 * time.Millisecond)
		now := time.Now()
		if act := c.activity(); act != last || !c.quiet() {
			last = act
			lastChange = now
		} else if now.Sub(lastChange) >= idleFor {
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("rt: cluster did not settle within %v", timeout)
		}
	}
}

// CheckAgreement verifies the cluster-wide convergence invariant, the live
// counterpart of core.Domain.CheckConverged: for every live connection,
// every node agrees on the member list and the committed stamp, each node's
// stamps are mutually consistent (R = C, R ≥ E), and with two or more
// members all nodes have installed the same valid topology spanning them.
func (c *Cluster) CheckAgreement() error {
	nodes := c.Nodes()
	alive := nodes[:0]
	for _, n := range nodes {
		if n != nil {
			alive = append(alive, n)
		}
	}
	nodes = alive
	conns := map[lsa.ConnID]bool{}
	for _, n := range nodes {
		for _, id := range n.Connections() {
			conns[id] = true
		}
	}
	for conn := range conns {
		var ref core.Snapshot
		var refNode topo.SwitchID
		first := true
		for _, n := range nodes {
			snap, ok := n.Connection(conn)
			if !ok {
				return fmt.Errorf("conn %d: switch %d has no state", conn, n.ID())
			}
			if !snap.R.Equal(snap.C) {
				return fmt.Errorf("conn %d: switch %d uncommitted (R=%s C=%s)", conn, n.ID(), snap.R, snap.C)
			}
			if !snap.R.Geq(snap.E) {
				return fmt.Errorf("conn %d: switch %d still expects LSAs (R=%s E=%s)", conn, n.ID(), snap.R, snap.E)
			}
			if first {
				ref, refNode, first = snap, n.ID(), false
				continue
			}
			if !snap.Members.Equal(ref.Members) {
				return fmt.Errorf("conn %d: members disagree between switches %d and %d", conn, refNode, n.ID())
			}
			if !snap.C.Equal(ref.C) {
				return fmt.Errorf("conn %d: commit stamps disagree between switches %d and %d (%s vs %s)",
					conn, refNode, n.ID(), ref.C, snap.C)
			}
			if (snap.Topology == nil) != (ref.Topology == nil) ||
				(snap.Topology != nil && !snap.Topology.Equal(ref.Topology)) {
				return fmt.Errorf("conn %d: topologies disagree between switches %d and %d", conn, refNode, n.ID())
			}
		}
		if len(ref.Members) >= 2 {
			if ref.Topology == nil {
				return fmt.Errorf("conn %d: %d members but no installed topology", conn, len(ref.Members))
			}
			if err := ref.Topology.Validate(c.graph, ref.Members); err != nil {
				return fmt.Errorf("conn %d: installed topology invalid: %v", conn, err)
			}
		}
	}
	return nil
}

// WaitConverged settles and checks agreement repeatedly until it holds or
// timeout elapses. Over lossy transports convergence can require resync
// rounds, so a failed check is retried, not fatal.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	idleFor := 25 * time.Millisecond
	if c.chanFab == nil {
		idleFor = 100 * time.Millisecond // UDP: cover in-flight datagrams
	}
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("rt: never settled")
			}
			return fmt.Errorf("rt: cluster did not converge within %v: %w", timeout, lastErr)
		}
		if err := c.Settle(idleFor, remain); err != nil {
			lastErr = err
			continue
		}
		if err := c.CheckAgreement(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
}

// Close shuts down every node, then the fabric.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
	return c.fabric.Close()
}
