package rt

import (
	"strconv"

	"dgmc/internal/core"
	"dgmc/internal/fib"
	"dgmc/internal/lsa"
	"dgmc/internal/obs"
)

// nodeObs caches a node's metric handles. With no registry configured every
// handle is nil and the instruments' nil-receiver fast path makes each
// update site a single predictable branch — the disabled cost the
// micro-benchmarks bound.
type nodeObs struct {
	reg *obs.Registry
	sw  obs.Label

	// transport plane
	framesRecv *obs.Counter // flood frames accepted (first delivery)
	framesDup  *obs.Counter // duplicate flood deliveries suppressed
	decodeErrs *obs.Counter // frames or payloads dropped as undecodable
	floodsOrig *obs.Counter // floods this node originated
	floodsFwd  *obs.Counter // store-and-forward relays of others' floods
	unicasts   *obs.Counter // resync unicasts sent
	sendErrs   *obs.Counter // transport send failures (flood, forward, unicast)

	// protocol plane
	batches   *obs.Counter   // ReceiveBatch invocations
	batchDur  *obs.Histogram // seconds per batch, machine lock held
	eventsIn  *obs.Counter   // local events handled
	eventDur  *obs.Histogram // seconds per event, machine lock held
	resyncTmr *obs.Counter   // resync timer firings

	// data plane (per-packet sites: all handles cached, nil-safe, zero
	// allocation on the forward hot path)
	dataOrig        *obs.Counter // payload frames originated locally
	dataFwd         *obs.Counter // payload frames relayed along the FIB
	dataDeliv       *obs.Counter // payloads delivered to the local application
	dataDropNoEntry *obs.Counter // drops: no FIB entry for the connection
	dataDropNoRoute *obs.Counter // drops: no fan-out and no contact route
	dataDropHops    *obs.Counter // drops: hop budget exhausted
	dataDropLoop    *obs.Counter // drops: own frame looped back
	fibCompiles     *obs.Counter // FIB recompilations (atomic table swaps)
}

// newNodeObs registers the node's series (labeled by switch) and returns the
// cached handles. A nil registry yields the all-nil zero value.
func newNodeObs(reg *obs.Registry, id int) nodeObs {
	if reg == nil {
		return nodeObs{}
	}
	sw := obs.L("switch", strconv.Itoa(id))
	return nodeObs{
		reg:        reg,
		sw:         sw,
		framesRecv: reg.Counter("dgmc_frames_received_total", sw),
		framesDup:  reg.Counter("dgmc_frames_duplicate_suppressed_total", sw),
		decodeErrs: reg.Counter("dgmc_frame_decode_errors_total", sw),
		floodsOrig: reg.Counter("dgmc_floods_originated_total", sw),
		floodsFwd:  reg.Counter("dgmc_floods_forwarded_total", sw),
		unicasts:   reg.Counter("dgmc_unicasts_sent_total", sw),
		sendErrs:   reg.Counter("dgmc_transport_send_errors_total", sw),
		batches:    reg.Counter("dgmc_lsa_batches_total", sw),
		batchDur:   reg.Histogram("dgmc_lsa_batch_seconds", obs.DurationBuckets, sw),
		eventsIn:   reg.Counter("dgmc_local_events_total", sw),
		eventDur:   reg.Histogram("dgmc_event_handle_seconds", obs.DurationBuckets, sw),
		resyncTmr:  reg.Counter("dgmc_resync_timer_fires_total", sw),

		dataOrig:        reg.Counter("dgmc_data_frames_originated_total", sw),
		dataFwd:         reg.Counter("dgmc_data_frames_forwarded_total", sw),
		dataDeliv:       reg.Counter("dgmc_data_delivered_total", sw),
		dataDropNoEntry: reg.Counter("dgmc_data_drops_total", sw, obs.L("reason", "no-entry")),
		dataDropNoRoute: reg.Counter("dgmc_data_drops_total", sw, obs.L("reason", "no-route")),
		dataDropHops:    reg.Counter("dgmc_data_drops_total", sw, obs.L("reason", "hop-budget")),
		dataDropLoop:    reg.Counter("dgmc_data_drops_total", sw, obs.L("reason", "loop")),
		fibCompiles:     reg.Counter("dgmc_fib_compiles_total", sw),
	}
}

// enabled reports whether metrics are on (used to gate time.Now() pairs and
// per-connection series lookups off the disabled path entirely).
func (o *nodeObs) enabled() bool { return o.reg != nil }

// mcFlooded counts one originated MC LSA on the per-connection series.
func (o *nodeObs) mcFlooded(conn lsa.ConnID) {
	if o.reg == nil {
		return
	}
	o.reg.Counter("dgmc_mc_lsas_flooded_total", o.sw,
		obs.L("conn", strconv.Itoa(int(conn)))).Inc()
}

// mcReceived counts one consumed MC LSA on the per-connection series.
func (o *nodeObs) mcReceived(conn lsa.ConnID) {
	if o.reg == nil {
		return
	}
	o.reg.Counter("dgmc_mc_lsas_received_total", o.sw,
		obs.L("conn", strconv.Itoa(int(conn)))).Inc()
}

// registerMachineFuncs exports the protocol machine's counters (guarded by
// n.mu) as scrape-time callbacks: the machine's hot path is untouched and
// each scrape briefly takes the node lock, exactly like Node.Metrics().
//
// The registry deduplicates func-instruments by (name, labels) and keeps the
// first closure, so a restarted switch cannot re-register its series — the
// closures instead follow the succession chain (Node.live) to whatever
// incarnation currently serves the switch ID.
func (n *Node) registerMachineFuncs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sw := obs.L("switch", strconv.Itoa(int(n.id)))
	mf := func(sel func(*core.Metrics) float64) func() float64 {
		return func() float64 {
			ln := n.live()
			ln.mu.Lock()
			defer ln.mu.Unlock()
			return sel(ln.machine.Metrics())
		}
	}
	type series struct {
		name string
		sel  func(*core.Metrics) float64
	}
	for _, s := range []series{
		{"dgmc_machine_events_total", func(m *core.Metrics) float64 { return float64(m.Events) }},
		{"dgmc_machine_computations_total", func(m *core.Metrics) float64 { return float64(m.Computations) }},
		{"dgmc_machine_withdrawn_total", func(m *core.Metrics) float64 { return float64(m.Withdrawn) }},
		{"dgmc_machine_compute_seconds_total", func(m *core.Metrics) float64 { return float64(m.ComputeNanos) / 1e9 }},
		{"dgmc_machine_installs_total", func(m *core.Metrics) float64 { return float64(m.Installs) }},
		{"dgmc_machine_mc_lsas_total", func(m *core.Metrics) float64 { return float64(m.MCLSAs) }},
		{"dgmc_machine_non_mc_lsas_total", func(m *core.Metrics) float64 { return float64(m.NonMCLSAs) }},
		{"dgmc_machine_reopt_checks_total", func(m *core.Metrics) float64 { return float64(m.ReoptChecks) }},
		{"dgmc_machine_out_of_order_lsas_total", func(m *core.Metrics) float64 { return float64(m.OutOfOrderLSAs) }},
		{"dgmc_machine_resync_requests_total", func(m *core.Metrics) float64 { return float64(m.ResyncRequests) }},
		{"dgmc_machine_resync_responses_total", func(m *core.Metrics) float64 { return float64(m.ResyncResponses) }},
		{"dgmc_machine_resync_giveups_total", func(m *core.Metrics) float64 { return float64(m.ResyncGiveUps) }},
		{"dgmc_resync_gave_up_total", func(m *core.Metrics) float64 { return float64(m.ResyncGiveUps) }},
		{"dgmc_machine_resync_rearms_total", func(m *core.Metrics) float64 { return float64(m.ResyncRearms) }},
		{"dgmc_machine_reconciles_total", func(m *core.Metrics) float64 { return float64(m.Reconciles) }},
		{"dgmc_machine_replay_refloods_total", func(m *core.Metrics) float64 { return float64(m.Replays) }},
	} {
		reg.CounterFunc(s.name, mf(s.sel), sw)
	}
	reg.GaugeFunc("dgmc_gap_buffer_depth", func() float64 {
		ln := n.live()
		ln.mu.Lock()
		defer ln.mu.Unlock()
		return float64(ln.machine.GapBufferDepth())
	}, sw)
	reg.GaugeFunc("dgmc_inbox_depth", func() float64 {
		ln := n.live()
		ln.inMu.Lock()
		defer ln.inMu.Unlock()
		return float64(len(ln.inbox))
	}, sw)
	reg.GaugeFunc("dgmc_seen_origins", func() float64 {
		return float64(n.live().seen.size())
	}, sw)
	reg.GaugeFunc("dgmc_fib_entries", func() float64 {
		return float64(n.live().fib.Load().Size())
	}, sw)
}

// registerConnSeries exports per-connection delivery series for every
// connection in the freshly compiled table: sent/forwarded/delivered plus
// the four-way drop taxonomy, each reading the connection's counter stripe
// at scrape time, and a per-connection FIB fan-out gauge. Called from
// recompileFIBLocked — the control path, never per packet — and idempotent
// by registry dedup, so churning connections re-register for free. Stripe
// accuracy: conns map onto 64 stripes, so two connections 64 apart share a
// series' backing counters (exact below that).
func (n *Node) registerConnSeries(t *fib.Table) {
	if n.obs.reg == nil {
		return
	}
	for _, conn := range t.Conns() {
		n.obs.connForwardSeries(n, conn)
	}
}

// connForwardSeries registers the per-connection data-plane series (scrape
// closures follow the succession chain like every func instrument).
func (o *nodeObs) connForwardSeries(n *Node, conn lsa.ConnID) {
	cl := obs.L("conn", strconv.Itoa(int(conn)))
	sel := func(pick func(ForwardStats) uint64) func() float64 {
		return func() float64 {
			return float64(pick(n.live().ConnForwardStats(conn)))
		}
	}
	o.reg.CounterFunc("dgmc_conn_data_originated_total",
		sel(func(s ForwardStats) uint64 { return s.Originated }), o.sw, cl)
	o.reg.CounterFunc("dgmc_conn_data_forwarded_total",
		sel(func(s ForwardStats) uint64 { return s.Forwarded }), o.sw, cl)
	o.reg.CounterFunc("dgmc_conn_data_delivered_total",
		sel(func(s ForwardStats) uint64 { return s.Delivered }), o.sw, cl)
	for _, d := range []struct {
		reason string
		pick   func(ForwardStats) uint64
	}{
		{"no-entry", func(s ForwardStats) uint64 { return s.DropNoEntry }},
		{"no-route", func(s ForwardStats) uint64 { return s.DropNoRoute }},
		{"hop-budget", func(s ForwardStats) uint64 { return s.DropHops }},
		{"loop", func(s ForwardStats) uint64 { return s.DropLoop }},
	} {
		o.reg.CounterFunc("dgmc_conn_data_drops_total", sel(d.pick),
			o.sw, cl, obs.L("reason", d.reason))
	}
	o.reg.GaugeFunc("dgmc_conn_fib_fanout", func() float64 {
		e := n.live().fib.Load().Lookup(conn)
		if e == nil {
			return 0
		}
		return float64(len(e.Neighbors))
	}, o.sw, cl)
}
