package rt

import (
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

// resyncFast is the resync timeout fault tests run with: fast enough that
// recovery rounds fit the test budget, slow enough that timers don't fire
// during healthy exchanges.
const resyncFast = 50 * time.Millisecond

// gridGroups splits a rows×cols grid by column into a left group (columns
// [0, cut)) and a right group (columns [cut, cols)); both sides stay
// internally connected, so intra-side flooding keeps working during the
// split.
func gridGroups(rows, cols, cut int) [][]topo.SwitchID {
	var left, right []topo.SwitchID
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := topo.SwitchID(r*cols + c)
			if c < cut {
				left = append(left, id)
			} else {
				right = append(right, id)
			}
		}
	}
	return [][]topo.SwitchID{left, right}
}

// TestPartitionHealConverges splits a live cluster in two, lets both sides
// diverge (each side admits members the other cannot hear about), heals,
// and requires network-wide agreement on the union — the tentpole
// heal-reconciliation guarantee, on the real runtime.
func TestPartitionHealConverges(t *testing.T) {
	g, err := topo.Grid(2, 4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
	}, NewChanFabric(g.NumSwitches()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(1)
	// Pre-split membership spanning both future sides.
	for _, sw := range []topo.SwitchID{0, 3} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	groups := gridGroups(2, 4, 2) // {0,1,4,5} | {2,3,6,7}
	if err := c.Partition(groups); err != nil {
		t.Fatal(err)
	}
	// Both sides admit a member the other side cannot hear about.
	if err := c.Join(5, conn, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(6, conn, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	// Let the split floods drain (and fail to cross) before healing.
	if err := c.Settle(50*time.Millisecond, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	// The sides must have actually diverged, or the test proves nothing.
	left, _ := c.Node(0).Connection(conn)
	right, _ := c.Node(3).Connection(conn)
	if _, ok := left.Members[6]; ok {
		t.Fatal("partition leaked: left side learned the right side's join")
	}
	if _, ok := right.Members[5]; ok {
		t.Fatal("partition leaked: right side learned the left side's join")
	}

	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		snap, ok := n.Connection(conn)
		if !ok {
			t.Fatalf("switch %d has no state", n.ID())
		}
		for _, m := range []topo.SwitchID{0, 3, 5, 6} {
			if _, ok := snap.Members[m]; !ok {
				t.Fatalf("switch %d is missing member %d after heal", n.ID(), m)
			}
		}
	}
}

// TestKillRestartColdRejoin crashes a switch with no snapshot, churns the
// connection while it is dead, restarts it blank, and requires it to
// rebuild everything from its neighbors — including its own event counter:
// the restarted switch then originates a fresh event (a leave) that the
// network must accept, which fails if the counter restarted from zero.
func TestKillRestartColdRejoin(t *testing.T) {
	g, err := topo.Grid(2, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
	}, NewChanFabric(g.NumSwitches()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(2)
	for _, sw := range []topo.SwitchID{0, 2, 4} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.KillNode(4); err != nil {
		t.Fatal(err)
	}
	if c.Node(4) != nil {
		t.Fatal("killed node still listed")
	}
	if err := c.Join(4, conn, mctree.SenderReceiver); err == nil {
		t.Fatal("inject at a dead switch succeeded")
	}
	if err := c.KillNode(4); err == nil {
		t.Fatal("double kill succeeded")
	}
	// The network churns while switch 4 is down.
	if err := c.Join(1, conn, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.RestartNode(4, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(4, nil); err == nil {
		t.Fatal("restart of a live switch succeeded")
	}
	if got := c.Node(4).Epoch(); got != 1 {
		t.Fatalf("restarted epoch = %d, want 1", got)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, ok := c.Node(4).Connection(conn)
	if !ok || len(snap.Members) != 4 {
		t.Fatalf("restarted switch rebuilt %d members, want 4", len(snap.Members))
	}

	// The restarted switch originates a fresh event. If cold rejoin failed
	// to recover its own event counter, this event carries an index the
	// network has already applied and is silently stale-dropped everywhere.
	if err := c.Leave(4, conn); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		snap, _ := n.Connection(conn)
		if _, still := snap.Members[4]; still {
			t.Fatalf("switch %d never applied the restarted switch's leave "+
				"(event counter lost in restart?)", n.ID())
		}
	}
}

// TestSnapshotRestoreRoundtrip restarts a killed switch from a snapshot and
// requires the restored protocol state to match the capture; a corrupted
// snapshot must be refused.
func TestSnapshotRestoreRoundtrip(t *testing.T) {
	g, err := topo.Grid(2, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
	}, NewChanFabric(g.NumSwitches()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(3)
	for _, sw := range []topo.SwitchID{1, 3, 5} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	snap := c.Node(3).Snapshot()
	if snap.ID() != 3 || snap.Epoch() != 0 {
		t.Fatalf("snapshot identity = (%d, %d), want (3, 0)", snap.ID(), snap.Epoch())
	}
	before, _ := c.Node(3).Connection(conn)

	// A flipped byte in the captured state must be detected at restore.
	bad := c.Node(3).Snapshot()
	bad.sum[0] ^= 0xff
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(3, bad); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
	if err := c.RestartNode(3, snap); err != nil {
		t.Fatal(err)
	}
	after, ok := c.Node(3).Connection(conn)
	if !ok {
		t.Fatal("restored switch has no state")
	}
	if !after.R.Equal(before.R) || !after.C.Equal(before.C) || !after.Members.Equal(before.Members) {
		t.Fatalf("restored state differs from capture: R=%s/%s C=%s/%s",
			after.R, before.R, after.C, before.C)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// A snapshot must not restore into a different switch.
	other := c.Node(5).Snapshot()
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(3, other); err == nil {
		t.Fatal("snapshot restored into the wrong switch")
	}
	if err := c.RestartNode(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestMobilityFaultSoak is the acceptance soak: a 16-switch live cluster
// under continuous membership churn survives two full partition/heal cycles
// and two node crash–restarts (one blank, one from snapshot) and still
// reaches network-wide agreement on the exact replayed membership. Runs
// race-enabled in CI as a blocking gate.
func TestMobilityFaultSoak(t *testing.T) {
	const rows, cols = 4, 4
	g, err := topo.Grid(rows, cols, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
	}, NewChanFabric(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	events, err := workload.Churn(workload.Config{
		N: rows * cols, Events: soakEvents, Seed: 11, MeanGap: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}

	conn := lsa.ConnID(1)
	var deferred []workload.Event // events for a switch that was dead when due
	dead := map[topo.SwitchID]bool{}
	inject := func(ev workload.Event) {
		if dead[ev.Switch] {
			deferred = append(deferred, ev)
			return
		}
		var err error
		if ev.Join {
			err = c.Join(ev.Switch, conn, ev.Role)
		} else {
			err = c.Leave(ev.Switch, conn)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	kill := func(sw topo.SwitchID) {
		if err := c.KillNode(sw); err != nil {
			t.Fatal(err)
		}
		dead[sw] = true
	}
	restart := func(sw topo.SwitchID, snap *NodeSnapshot) {
		if err := c.RestartNode(sw, snap); err != nil {
			t.Fatal(err)
		}
		delete(dead, sw)
		// Let the cold rejoin finish before the switch originates anything:
		// an event flooded with a not-yet-recovered counter would be
		// stale-dropped by the rest of the network — the exact failure the
		// rejoin protocol exists to prevent, and one a real switch avoids by
		// not serving its host until recovery completes.
		if err := c.Settle(50*time.Millisecond, 60*time.Second); err != nil {
			t.Fatal(err)
		}
		// Replay the events the switch missed while dead, preserving its
		// per-switch order (membership is a per-switch fold).
		var keep []workload.Event
		for _, ev := range deferred {
			if ev.Switch == sw {
				inject(ev)
			} else {
				keep = append(keep, ev)
			}
		}
		deferred = keep
	}

	groups := gridGroups(rows, cols, 2)
	var snap *NodeSnapshot
	for i, ev := range events {
		switch i {
		case len(events) * 1 / 8: // first split
			if err := c.Partition(groups); err != nil {
				t.Fatal(err)
			}
		case len(events) * 2 / 8: // heal while churn continues
			if err := c.Heal(); err != nil {
				t.Fatal(err)
			}
		case len(events) * 3 / 8: // crash one switch blank
			kill(5)
		case len(events) * 4 / 8: // cold rejoin mid-churn
			restart(5, nil)
		case len(events) * 5 / 8: // second split, other axis of churn
			if err := c.Partition(groups); err != nil {
				t.Fatal(err)
			}
		case len(events) * 6 / 8:
			if err := c.Heal(); err != nil {
				t.Fatal(err)
			}
		case len(events) * 7 / 8: // crash another switch, snapshot in hand
			snap = c.Node(10).Snapshot()
			kill(10)
		case len(events)*7/8 + len(events)/16: // restore from snapshot
			restart(10, snap)
		}
		inject(ev)
	}
	for _, sw := range []topo.SwitchID{5, 10} {
		if dead[sw] {
			restart(sw, nil)
		}
	}
	if len(deferred) != 0 {
		t.Fatalf("%d events never injected", len(deferred))
	}

	if err := c.WaitConverged(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := replayMembers(events)
	for _, n := range c.Nodes() {
		snap, ok := n.Connection(conn)
		if !ok {
			t.Fatalf("switch %d lost all state", n.ID())
		}
		if len(snap.Members) != len(want) {
			t.Fatalf("switch %d has %d members, want %d", n.ID(), len(snap.Members), len(want))
		}
		for m := range want {
			if _, ok := snap.Members[m]; !ok {
				t.Fatalf("switch %d is missing member %d", n.ID(), m)
			}
		}
	}
}

// TestChanFabricKillResetPartition exercises the fabric-level fault surface
// directly: frames to a killed switch drop without wedging the in-flight
// count, a reset attachment receives again, and a partition silently eats
// cross-group frames while intra-group traffic flows.
func TestChanFabricKillResetPartition(t *testing.T) {
	fab := NewChanFabric(4)
	defer fab.Close()
	t0, t1 := fab.Transport(0), fab.Transport(1)

	if err := t0.Send(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := fab.Kill(1); err != nil {
		t.Fatal(err)
	}
	if got := fab.InFlight(); got != 0 {
		t.Fatalf("in-flight after kill = %d, want 0 (queued frames dropped)", got)
	}
	if err := t0.Send(1, []byte("b")); err != ErrClosed {
		t.Fatalf("send to killed switch = %v, want ErrClosed", err)
	}
	if err := fab.Reset(1); err != nil {
		t.Fatal(err)
	}
	if err := t0.Send(1, []byte("c")); err != nil {
		t.Fatalf("send after reset: %v", err)
	}
	got, err := t1.Recv()
	if err != nil || string(got) != "c" {
		t.Fatalf("recv after reset = %q, %v", got, err)
	}

	fab.SetPartition([][]topo.SwitchID{{0, 1}, {2, 3}})
	if err := t0.Send(2, []byte("x")); err != nil {
		t.Fatalf("partitioned send should silently succeed, got %v", err)
	}
	if got := fab.InFlight(); got != 0 {
		t.Fatalf("partitioned frame counted in flight: %d", got)
	}
	if err := t0.Send(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got, err := t1.Recv(); err != nil || string(got) != "y" {
		t.Fatalf("intra-group recv = %q, %v", got, err)
	}
	fab.ClearPartition()
	if err := t0.Send(2, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if got, err := fab.Transport(2).Recv(); err != nil || string(got) != "z" {
		t.Fatalf("post-heal recv = %q, %v", got, err)
	}
}
