package rt

import (
	"errors"
	"sync/atomic"

	"dgmc/internal/fib"
	"dgmc/internal/lsa"
	"dgmc/internal/obs"
	"dgmc/internal/topo"
)

// This file is the node's data plane: originate (SendData) and relay
// (handleData) payload frames over the per-connection FIB compiled from the
// installed MC topologies.
//
// The steady-state forward path is allocation-free by construction (the
// root alloc gate pins it at 0 allocs/op, with the flight recorder and
// packet sampling enabled): the frame decodes into stack values, the table
// lookup is one atomic pointer load plus a map read, the relay patches
// From/hops/CRC into the received buffer in place, every counter is a plain
// atomic in a per-connection stripe, and the flight recorder writes through
// a fixed-size seqlock ring. It runs on the transport receive goroutine and
// never takes the machine lock — installs swap the table under the hot
// path, they never block it.
//
// Deliberately NOT here: duplicate suppression. Duplicates during
// reconvergence (two switches briefly installed on different trees) are a
// headline metric of this reproduction, so the data plane forwards what the
// FIB says and the sinks count what arrives; the hop budget bounds the cost
// of any transient loop.

// DefaultDataHops is the default hop budget on originated payload frames —
// comfortably above any tree path in the fabrics this repo drives, small
// enough that a reconvergence loop dies quickly.
const DefaultDataHops = 64

// DataHandler receives payloads the data plane delivers to the co-resident
// application: the connection, the originating switch, its per-source data
// sequence number, and the payload bytes (valid only for the duration of
// the call — they alias a pooled receive buffer).
type DataHandler func(conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte)

// ErrNotSender is returned by SendData when the local switch is not
// entitled to originate on the connection (not a sending member of a
// symmetric/asymmetric MC).
var ErrNotSender = errors.New("rt: switch may not send on this connection")

// ErrNoRoute is returned by SendData when the switch has no forwarding
// state for the connection, or no route into its MC topology.
var ErrNoRoute = errors.New("rt: no route into the MC")

// fwdStripes is the stripe count of the data plane's counter array. Power
// of two so the conn→stripe map is a mask; 64 stripes × one cache line
// keeps counter contention negligible however many connections share the
// node while letting per-connection metrics read "their" stripe directly.
const fwdStripes = 64

// forwardCounters are one stripe of the data plane's statistics: plain
// atomics so they work (and stay allocation-free) with or without a
// registry. Padded to a cache line so stripes do not false-share.
type forwardCounters struct {
	originated  atomic.Uint64
	forwarded   atomic.Uint64
	delivered   atomic.Uint64
	dropNoEntry atomic.Uint64
	dropNoRoute atomic.Uint64
	dropHops    atomic.Uint64
	dropLoop    atomic.Uint64
	_           [1]uint64 // pad to 64 bytes
}

// snapshot reads one stripe into a ForwardStats value.
func (c *forwardCounters) snapshot() ForwardStats {
	return ForwardStats{
		Originated:  c.originated.Load(),
		Forwarded:   c.forwarded.Load(),
		Delivered:   c.delivered.Load(),
		DropNoEntry: c.dropNoEntry.Load(),
		DropNoRoute: c.dropNoRoute.Load(),
		DropHops:    c.dropHops.Load(),
		DropLoop:    c.dropLoop.Load(),
	}
}

// forwardStripes is the striped counter set: connections map onto stripes
// by conn mod fwdStripes, so two connections can share a stripe (per-conn
// series are therefore stripe-accurate, exact when conns < 64) but the
// node-wide sums in ForwardStats are always exact.
type forwardStripes [fwdStripes]forwardCounters

// stripe returns the counter stripe for conn.
func (fs *forwardStripes) stripe(conn lsa.ConnID) *forwardCounters {
	return &fs[uint32(conn)&(fwdStripes-1)]
}

// ForwardStats is a snapshot of one node's data-plane counters.
type ForwardStats struct {
	// Originated counts payload frames this node sent into the network.
	Originated uint64 `json:"originated"`
	// Forwarded counts relay transmissions (one per link copy).
	Forwarded uint64 `json:"forwarded"`
	// Delivered counts payloads handed to the local application.
	Delivered uint64 `json:"delivered"`
	// DropNoEntry counts frames for connections with no FIB entry.
	DropNoEntry uint64 `json:"drop_no_entry"`
	// DropNoRoute counts frames stranded off-tree with no contact route.
	DropNoRoute uint64 `json:"drop_no_route"`
	// DropHops counts frames that exhausted their hop budget.
	DropHops uint64 `json:"drop_hops"`
	// DropLoop counts own frames that looped back.
	DropLoop uint64 `json:"drop_loop"`
}

// Drops returns the sum of all drop reasons.
func (s ForwardStats) Drops() uint64 {
	return s.DropNoEntry + s.DropNoRoute + s.DropHops + s.DropLoop
}

// add accumulates o into s.
func (s *ForwardStats) add(o ForwardStats) {
	s.Originated += o.Originated
	s.Forwarded += o.Forwarded
	s.Delivered += o.Delivered
	s.DropNoEntry += o.DropNoEntry
	s.DropNoRoute += o.DropNoRoute
	s.DropHops += o.DropHops
	s.DropLoop += o.DropLoop
}

// ForwardStats returns a snapshot of the node's data-plane counters: the
// sum over all stripes. Safe concurrent with live forwarding and FIB swaps
// (each field is an atomic load; the total is not a single atomic cut, same
// as any multi-counter snapshot).
func (n *Node) ForwardStats() ForwardStats {
	var total ForwardStats
	for i := range n.fwd {
		total.add(n.fwd[i].snapshot())
	}
	return total
}

// ConnForwardStats returns the counter stripe conn maps to. Exact for the
// connection when fewer than fwdStripes connections are live; an aggregate
// of the stripe's connections otherwise.
func (n *Node) ConnForwardStats(conn lsa.ConnID) ForwardStats {
	return n.fwd.stripe(conn).snapshot()
}

// FIB returns the node's current forwarding table (never nil after NewNode;
// read-only).
func (n *Node) FIB() *fib.Table { return n.fib.Load() }

// FIBCompiles counts table recompilations since boot.
func (n *Node) FIBCompiles() uint64 { return n.fibCompiles.Load() }

// maybeRecompileLocked recompiles the FIB if the machine call that just
// returned reported a forwarding change. Must be called with n.mu held,
// after the machine call, before releasing the lock.
func (n *Node) maybeRecompileLocked() {
	if !n.fibDirty {
		return
	}
	n.fibDirty = false
	n.recompileFIBLocked()
}

// recompileFIBLocked compiles a fresh table from the machine's forwarding
// state and swaps it in atomically. Must be called with n.mu held (or
// before the goroutine cluster starts).
func (n *Node) recompileFIBLocked() {
	b := fib.NewBuilder(n.id, n.machine.Unicast().Image())
	n.machine.ForwardingState(b.Add)
	t := b.Build()
	n.fib.Store(t)
	compiles := n.fibCompiles.Add(1)
	n.obs.fibCompiles.Inc()
	n.flight.Record(obs.RecFIBSwap, 0, uint32(n.id), compiles, uint64(t.Size()))
	n.registerConnSeries(t)
}

// recordData writes one data-plane record: always into the event ring, and
// into the sampled-hop ring too when the packet's sequence selects it. Both
// rings are nil-safe and allocation-free, so this inlines to two branches
// when the recorder is disabled.
func (n *Node) recordData(kind obs.RecKind, conn lsa.ConnID, src topo.SwitchID, seq uint64, from topo.SwitchID) {
	n.flight.Record(kind, uint32(conn), uint32(src), seq, uint64(from))
	if obs.Sampled(seq, n.sampleEvery) {
		n.hopRec.Record(kind, uint32(conn), uint32(src), seq, uint64(from))
	}
}

// SendData originates one payload on conn, fanning it out exactly as a
// forwarded frame would: over the tree if this switch is on it, or toward
// the contact node of a receiver-only MC. It returns the frame's data
// sequence number. Like handleData it consults only the atomic FIB — it
// never takes the machine lock.
func (n *Node) SendData(conn lsa.ConnID, payload []byte) (uint64, error) {
	select {
	case <-n.closed:
		return 0, ErrClosed
	default:
	}
	e := n.fib.Load().Lookup(conn)
	if e == nil {
		return 0, ErrNoRoute
	}
	if !e.CanSend {
		return 0, ErrNotSender
	}
	if !e.Entered() && e.ContactNext == topo.NoSwitch {
		return 0, ErrNoRoute
	}
	seq := n.dataSeq.Add(1)
	d := lsa.DataFrame{Conn: conn, Src: n.id, Seq: seq, Hops: n.dataHops, Payload: payload}
	buf := lsa.AppendDataFrame(getBuf(64+len(payload)), &d, n.id)
	if e.Entered() {
		for _, nb := range e.Neighbors {
			if err := n.tr.Send(nb, buf); err != nil {
				n.obs.sendErrs.Inc()
				n.tracef("sw%d: data to %d: %v", n.id, nb, err)
			}
		}
	} else if err := n.tr.Send(e.ContactNext, buf); err != nil {
		n.obs.sendErrs.Inc()
		n.tracef("sw%d: data to contact %d: %v", n.id, e.ContactNext, err)
	}
	putBuf(buf)
	n.fwd.stripe(conn).originated.Add(1)
	n.obs.dataOrig.Inc()
	n.recordData(obs.RecOriginate, conn, n.id, seq, n.id)
	return seq, nil
}

// SendDataBatch originates count copies of payload on conn, reserving one
// contiguous block of data sequence numbers and returning its first value.
// The frame is encoded once; each subsequent packet restamps the sequence
// (and CRC) in place before fanning out, so the per-packet cost is the
// patch plus the link sends — the setup (entitlement check, FIB lookup,
// buffer rental, header+payload encode) is paid once per batch. Like
// SendData, per-link send errors are counted and traced but do not fail
// the packet; the entitlement and route checks happen once up front, which
// is the batch's semantics: one claim, count packets.
func (n *Node) SendDataBatch(conn lsa.ConnID, payload []byte, count int) (uint64, int, error) {
	if count <= 0 {
		return 0, 0, nil
	}
	select {
	case <-n.closed:
		return 0, 0, ErrClosed
	default:
	}
	e := n.fib.Load().Lookup(conn)
	if e == nil {
		return 0, 0, ErrNoRoute
	}
	if !e.CanSend {
		return 0, 0, ErrNotSender
	}
	if !e.Entered() && e.ContactNext == topo.NoSwitch {
		return 0, 0, ErrNoRoute
	}
	first := n.dataSeq.Add(uint64(count)) - uint64(count) + 1
	d := lsa.DataFrame{Conn: conn, Src: n.id, Seq: first, Hops: n.dataHops, Payload: payload}
	buf := lsa.AppendDataFrame(getBuf(64+len(payload)), &d, n.id)
	for i := 0; i < count; i++ {
		seq := first + uint64(i)
		if i > 0 {
			if err := lsa.PatchDataSeq(buf, seq); err != nil {
				putBuf(buf)
				return first, i, err
			}
		}
		if e.Entered() {
			for _, nb := range e.Neighbors {
				if err := n.tr.Send(nb, buf); err != nil {
					n.obs.sendErrs.Inc()
					n.tracef("sw%d: data to %d: %v", n.id, nb, err)
				}
			}
		} else if err := n.tr.Send(e.ContactNext, buf); err != nil {
			n.obs.sendErrs.Inc()
			n.tracef("sw%d: data to contact %d: %v", n.id, e.ContactNext, err)
		}
		n.recordData(obs.RecOriginate, conn, n.id, seq, n.id)
	}
	putBuf(buf)
	n.fwd.stripe(conn).originated.Add(uint64(count))
	n.obs.dataOrig.Add(uint64(count))
	return first, count, nil
}

// handleData is the steady-state forward path: deliver locally if this
// switch is a receiving member, then relay per the FIB entry — tree fan-out
// (minus the arrival link) on-tree, one contact hop off-tree. Runs on the
// transport receive goroutine; zero allocations, no locks.
//
// consumed reports that buf's ownership was transferred to the transport:
// when the transport supports SendOwned, the relay's last outgoing link
// takes the already-patched frame by move instead of copying it. The local
// delivery callback runs before any move, so d.Payload (which aliases buf)
// is safe for the handler's duration.
func (n *Node) handleData(buf []byte, f *lsa.Frame) (consumed bool) {
	var d lsa.DataFrame
	if f.Origin == n.id {
		// Our own frame came back: a transient loop while trees disagree, or
		// a stale frame from a pre-crash incarnation. Either way it stops
		// here — the origin already fanned it out once. Decode is best-effort
		// (loops are anomalies, not the steady state) so the drop lands on
		// the right stripe and the flight record carries the connection.
		conn := lsa.ConnID(0)
		if err := lsa.DecodeDataInto(&d, f); err == nil {
			conn = d.Conn
		}
		n.fwd.stripe(conn).dropLoop.Add(1)
		n.obs.dataDropLoop.Inc()
		n.recordData(obs.RecDropLoop, conn, f.Origin, f.Seq, f.From)
		return
	}
	if err := lsa.DecodeDataInto(&d, f); err != nil {
		n.decodeErrs.Add(1)
		n.obs.decodeErrs.Inc()
		return
	}
	e := n.fib.Load().Lookup(d.Conn)
	if e == nil {
		n.fwd.stripe(d.Conn).dropNoEntry.Add(1)
		n.obs.dataDropNoEntry.Inc()
		n.recordData(obs.RecDropNoEntry, d.Conn, d.Src, d.Seq, f.From)
		return
	}
	if e.Local {
		n.fwd.stripe(d.Conn).delivered.Add(1)
		n.obs.dataDeliv.Inc()
		n.recordData(obs.RecDeliver, d.Conn, d.Src, d.Seq, f.From)
		if h := n.dataHandler; h != nil {
			h(d.Conn, d.Src, d.Seq, d.Payload)
		}
	}
	if e.Entered() {
		// Leaf check first: exhausting the hop budget at a switch with
		// nowhere further to forward is normal termination, not a drop.
		from := f.From
		last := -1
		for i, nb := range e.Neighbors {
			if nb != from {
				last = i
			}
		}
		if last < 0 {
			return
		}
		if d.Hops == 0 {
			n.fwd.stripe(d.Conn).dropHops.Add(1)
			n.obs.dataDropHops.Inc()
			n.recordData(obs.RecDropHops, d.Conn, d.Src, d.Seq, from)
			return
		}
		if err := lsa.PatchDataForward(buf, n.id, d.Hops-1); err != nil {
			return
		}
		sent := false
		for i, nb := range e.Neighbors {
			if nb == from {
				continue
			}
			var err error
			if i == last && n.ownedTr != nil {
				// Final link: move the patched frame instead of copying it.
				// SendOwned consumes buf on every outcome.
				err = n.ownedTr.SendOwned(nb, buf)
				consumed = true
			} else {
				err = n.tr.Send(nb, buf)
			}
			if err != nil {
				n.obs.sendErrs.Inc()
				n.tracef("sw%d: data relay to %d: %v", n.id, nb, err)
			} else {
				n.fwd.stripe(d.Conn).forwarded.Add(1)
				n.obs.dataFwd.Inc()
				sent = true
			}
		}
		if sent {
			n.recordData(obs.RecForward, d.Conn, d.Src, d.Seq, from)
		}
	} else if e.ContactNext != topo.NoSwitch {
		if d.Hops == 0 {
			n.fwd.stripe(d.Conn).dropHops.Add(1)
			n.obs.dataDropHops.Inc()
			n.recordData(obs.RecDropHops, d.Conn, d.Src, d.Seq, f.From)
			return
		}
		if err := lsa.PatchDataForward(buf, n.id, d.Hops-1); err != nil {
			return
		}
		var err error
		if n.ownedTr != nil {
			err = n.ownedTr.SendOwned(e.ContactNext, buf)
			consumed = true
		} else {
			err = n.tr.Send(e.ContactNext, buf)
		}
		if err != nil {
			n.obs.sendErrs.Inc()
			n.tracef("sw%d: data relay to contact %d: %v", n.id, e.ContactNext, err)
		} else {
			n.fwd.stripe(d.Conn).forwarded.Add(1)
			n.obs.dataFwd.Inc()
			n.recordData(obs.RecForward, d.Conn, d.Src, d.Seq, f.From)
		}
	} else {
		n.fwd.stripe(d.Conn).dropNoRoute.Add(1)
		n.obs.dataDropNoRoute.Inc()
		n.recordData(obs.RecDropNoRoute, d.Conn, d.Src, d.Seq, f.From)
	}
	return consumed
}
