package rt

import (
	"strings"
	"testing"
	"time"
)

const sampleTopo = `
# three switches in a line
switches 3
link 0 1 2ms
link 1 2 3ms 2.5
addr 0 127.0.0.1:7700
addr 1 127.0.0.1:7701
addr 2 127.0.0.1:7702
`

func TestParseTopology(t *testing.T) {
	tf, err := ParseTopology(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	if tf.Graph.NumSwitches() != 3 || tf.Graph.NumLinks() != 2 {
		t.Fatalf("parsed %d switches / %d links", tf.Graph.NumSwitches(), tf.Graph.NumLinks())
	}
	l, ok := tf.Graph.Link(1, 2)
	if !ok || l.Delay != 3*time.Millisecond || l.Capacity != 2.5 {
		t.Fatalf("link 1-2 parsed as %+v", l)
	}
	if tf.Addrs[2] != "127.0.0.1:7702" {
		t.Fatalf("addr 2 = %q", tf.Addrs[2])
	}

	peers, err := tf.NeighborAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != "127.0.0.1:7700" || peers[2] != "127.0.0.1:7702" {
		t.Fatalf("neighbor addrs of 1: %v", peers)
	}
}

func TestTopologyFormatRoundTrip(t *testing.T) {
	tf, err := ParseTopology(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseTopology(strings.NewReader(tf.Format()))
	if err != nil {
		t.Fatalf("reparse of Format output: %v", err)
	}
	if again.Format() != tf.Format() {
		t.Fatalf("format not stable:\n%s\nvs\n%s", tf.Format(), again.Format())
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no switches":        "link 0 1 1ms\n",
		"bad count":          "switches zero\n",
		"dup switches":       "switches 2\nswitches 2\nlink 0 1 1ms\n",
		"bad delay":          "switches 2\nlink 0 1 fast\n",
		"negative delay":     "switches 2\nlink 0 1 -1ms\n",
		"bad capacity":       "switches 2\nlink 0 1 1ms wide\n",
		"unknown directive":  "switches 2\nlink 0 1 1ms\nwires 3\n",
		"addr out of range":  "switches 2\nlink 0 1 1ms\naddr 7 127.0.0.1:1\n",
		"duplicate addr":     "switches 2\nlink 0 1 1ms\naddr 0 a:1\naddr 0 b:2\n",
		"disconnected graph": "switches 3\nlink 0 1 1ms\n",
		"link out of range":  "switches 2\nlink 0 9 1ms\n",
	}
	for name, input := range cases {
		if _, err := ParseTopology(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNeighborAddrsMissing(t *testing.T) {
	tf, err := ParseTopology(strings.NewReader("switches 2\nlink 0 1 1ms\naddr 0 a:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.NeighborAddrs(0); err == nil {
		t.Fatal("missing neighbor addr not reported")
	}
	if _, err := tf.NeighborAddrs(9); err == nil {
		t.Fatal("out-of-range switch not reported")
	}
}
