// Package rt is the live concurrent runtime for D-GMC: each switch runs as
// its own goroutine cluster (a transport receive loop, an LSA drain loop,
// an event loop, and wall-clock resync timers) around the same
// runtime-agnostic core.Machine that the discrete-event simulator drives.
// Nodes speak to each other only through a Transport carrying the wire
// frames of internal/lsa — an in-process channel fabric for tests and
// equivalence checking, or UDP sockets for real deployments (cmd/dgmcd).
//
// The protocol logic is not forked: internal/core owns Figures 4 and 5 and
// gap recovery; this package supplies the concurrency, the store-and-forward
// flooding, and the wall-clock timers the simulator models virtually.
package rt

import (
	"errors"

	"dgmc/internal/topo"
)

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("rt: transport closed")

// Transport is one switch's attachment to the fabric: a point-to-point
// datagram service to each direct neighbor. Implementations must be safe
// for concurrent use — the node's receive loop blocks in Recv while
// protocol goroutines call Send.
//
// Send must not retain or mutate data after it returns (callers reuse and
// patch buffers); Recv must return a buffer the caller owns. Both return
// ErrClosed (possibly wrapped) after Close, which must also unblock any
// goroutine waiting in Recv.
type Transport interface {
	// Send queues one frame for delivery to the named switch. Delivery is
	// best-effort: a lossy fabric (UDP under pressure) may drop frames,
	// which is exactly what the protocol's gap recovery exists for.
	Send(to topo.SwitchID, data []byte) error
	// Recv blocks until a frame arrives and returns it.
	Recv() ([]byte, error)
	// Close detaches from the fabric and unblocks Recv.
	Close() error
}
