package rt

import (
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/obs"
)

// NodeHealth is one switch's health summary: the JSON document behind the
// /healthz admin endpoint and the dgmcd `health` REPL verb, and the row
// source for the dgmctop cluster aggregator. It answers the operator
// questions directly — converged? gapped? resync armed? what did the flight
// recorder last flag? — and carries the forward counters so scrape deltas
// yield throughput and drop rates.
type NodeHealth struct {
	Switch int    `json:"switch"`
	Epoch  uint64 `json:"epoch"`

	// Conns counts live (non-dormant) connections; Converged is true when
	// every one of them is individually converged: received == computed
	// stamp, received ≥ expected, and no detected gap.
	Conns     int  `json:"conns"`
	Converged bool `json:"converged"`

	// GappedConns lists connections with a detected sequence gap;
	// ResyncArmedConns those with a pending gap-check timer; GiveUpConns
	// those whose recovery exhausted its round budget.
	GappedConns      []uint32 `json:"gapped_conns,omitempty"`
	ResyncArmedConns []uint32 `json:"resync_armed_conns,omitempty"`
	GiveUpConns      []uint32 `json:"give_up_conns,omitempty"`
	// GapBufferDepth totals event LSAs buffered out of order across
	// connections; OutOfOrderMax is the deepest single connection.
	GapBufferDepth int `json:"gap_buffer_depth"`

	// FIBEntries / FIBCompiles describe the data plane's table; Forward
	// its counters (sum over stripes).
	FIBEntries  int          `json:"fib_entries"`
	FIBCompiles uint64       `json:"fib_compiles"`
	Forward     ForwardStats `json:"forward"`

	// Flight summarizes the recorder: total records written, plus the most
	// recent anomaly (drop / resync / reconcile / rejoin) and how long ago
	// it happened. Anomaly is "" with AnomalyAgeMS -1 when the recorder is
	// off or nothing anomalous has been recorded.
	FlightWritten uint64 `json:"flight_written"`
	Anomaly       string `json:"anomaly,omitempty"`
	AnomalyAgeMS  int64  `json:"anomaly_age_ms"`
}

// Health assembles the node's health summary. It takes the machine lock
// briefly (same cost class as Metrics or a /state scrape); never call it
// from the forward path.
func (n *Node) Health() NodeHealth {
	h := NodeHealth{
		Switch:       int(n.id),
		Epoch:        n.epoch,
		Converged:    true,
		FIBEntries:   n.fib.Load().Size(),
		FIBCompiles:  n.fibCompiles.Load(),
		Forward:      n.ForwardStats(),
		AnomalyAgeMS: -1,
	}

	n.mu.Lock()
	conns := n.machine.Connections()
	h.Conns = len(conns)
	for _, conn := range conns {
		snap, ok := n.machine.Connection(conn)
		gapped := n.machine.Gapped(conn)
		if ok && (!snap.R.Equal(snap.C) || !snap.R.Geq(snap.E) || gapped) {
			h.Converged = false
		}
		if gapped {
			h.GappedConns = append(h.GappedConns, uint32(conn))
		}
		if n.machine.ResyncArmed(conn) {
			h.ResyncArmedConns = append(h.ResyncArmedConns, uint32(conn))
		}
		if n.machine.ResyncGaveUp(conn) {
			h.GiveUpConns = append(h.GiveUpConns, uint32(conn))
		}
	}
	h.GapBufferDepth = n.machine.GapBufferDepth()
	n.mu.Unlock()

	h.FlightWritten = n.flight.Written()
	if kind, at := n.flight.LastAnomaly(); kind != obs.RecNone {
		h.Anomaly = kind.String()
		if age := time.Since(at).Milliseconds(); age >= 0 {
			h.AnomalyAgeMS = age
		} else {
			h.AnomalyAgeMS = 0
		}
	}
	return h
}

// HealthyConn reports whether one connection is individually converged and
// gap-free on this node (a narrower cut of Health for tests and the REPL).
func (n *Node) HealthyConn(conn lsa.ConnID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	snap, ok := n.machine.Connection(conn)
	if !ok {
		return false
	}
	return snap.R.Equal(snap.C) && snap.R.Geq(snap.E) && !n.machine.Gapped(conn)
}
