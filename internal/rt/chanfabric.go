package rt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dgmc/internal/topo"
)

// ChanFabric is an in-process Transport fabric: one unbounded queue per
// switch, shared-memory delivery. It is the loss-free, reorder-free fabric
// used by the live test harness and the sim-vs-live equivalence test.
//
// Queues are unbounded on purpose: a flood storm makes every node send to
// every neighbor while holding its machine lock, and a bounded channel
// there is a recipe for distributed deadlock. Memory is bounded in practice
// by the protocol's own quiescence.
type ChanFabric struct {
	queues []*frameQueue
	// inflight counts frames enqueued but not yet returned by Recv, letting
	// the harness distinguish "quiescent" from "packets still in flight".
	inflight atomic.Int64
}

// NewChanFabric builds a fabric for switches 0..n-1.
func NewChanFabric(n int) *ChanFabric {
	f := &ChanFabric{queues: make([]*frameQueue, n)}
	for i := range f.queues {
		f.queues[i] = newFrameQueue()
	}
	return f
}

// Transport returns switch id's attachment to the fabric.
func (f *ChanFabric) Transport(id topo.SwitchID) Transport {
	return &chanPort{fabric: f, id: id}
}

// InFlight returns the number of frames sent but not yet received.
func (f *ChanFabric) InFlight() int64 { return f.inflight.Load() }

// Close closes every queue.
func (f *ChanFabric) Close() error {
	for _, q := range f.queues {
		q.close()
	}
	return nil
}

// chanPort is one switch's view of a ChanFabric.
type chanPort struct {
	fabric *ChanFabric
	id     topo.SwitchID
}

func (p *chanPort) Send(to topo.SwitchID, data []byte) error {
	if int(to) < 0 || int(to) >= len(p.fabric.queues) {
		return fmt.Errorf("rt: send to unknown switch %d", to)
	}
	// Copy: the wire would; and the caller is free to patch its buffer for
	// the next neighbor while this copy sits queued. The copy comes from the
	// frame pool and goes back once the receiving node has handled it.
	buf := append(getBuf(len(data)), data...)
	if !p.fabric.queues[to].push(buf) {
		return ErrClosed
	}
	p.fabric.inflight.Add(1)
	return nil
}

func (p *chanPort) Recv() ([]byte, error) {
	buf, ok := p.fabric.queues[p.id].pop()
	if !ok {
		return nil, ErrClosed
	}
	p.fabric.inflight.Add(-1)
	return buf, nil
}

func (p *chanPort) Close() error {
	p.fabric.queues[p.id].close()
	return nil
}

// frameQueue is an unbounded FIFO of frames with blocking pop.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  [][]byte
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) push(buf []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, buf)
	q.cond.Signal()
	return true
}

func (q *frameQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	buf := q.items[0]
	q.items = q.items[1:]
	return buf, true
}

func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
