package rt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// ChanFabric is an in-process Transport fabric: one unbounded queue per
// switch, shared-memory delivery. It is the loss-free, reorder-free fabric
// used by the live test harness and the sim-vs-live equivalence test.
//
// Queues are unbounded on purpose: a flood storm makes every node send to
// every neighbor while holding its machine lock, and a bounded channel
// there is a recipe for distributed deadlock. Memory is bounded in practice
// by the protocol's own quiescence.
//
// The fabric also models the fault surface the robustness harness needs:
// Kill/Reset crash and restart one switch's attachment (in-flight frames to
// a killed switch are dropped, like packets to a dead host), and
// SetPartition atomically cuts every path between switch groups — silently,
// the way an undetected split behaves, so senders see success, not errors.
type ChanFabric struct {
	queues []atomic.Pointer[frameQueue]
	// inflight counts frames enqueued but not yet returned by Recv, letting
	// the harness distinguish "quiescent" from "packets still in flight".
	inflight atomic.Int64
	// groups holds the active partition as a switch→group map (nil when the
	// fabric is whole). Cross-group sends are silently dropped.
	groups atomic.Pointer[map[topo.SwitchID]int]
	// loss, when set, drops payload (FrameData) frames at random. Control
	// frames are never dropped: the loss knob stresses the data plane's
	// delivery ratio, not the control plane's loss recovery — that has its
	// own faults (Kill, Partition).
	loss atomic.Pointer[lossCfg]
	// lost counts frames the loss knob discarded.
	lost atomic.Uint64
}

// lossCfg is one SetLoss configuration: a fixed drop threshold and a
// counter-mode PRNG state, so drop decisions are reproducible for a given
// seed and arrival order without any shared lock on the send path.
type lossCfg struct {
	thresh uint64 // drop when mix64(seed+ctr) < thresh
	seed   uint64
	ctr    atomic.Uint64
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash of the
// per-send counter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewChanFabric builds a fabric for switches 0..n-1.
func NewChanFabric(n int) *ChanFabric {
	f := &ChanFabric{queues: make([]atomic.Pointer[frameQueue], n)}
	for i := range f.queues {
		f.queues[i].Store(newFrameQueue())
	}
	return f
}

// Transport returns switch id's attachment to the fabric.
func (f *ChanFabric) Transport(id topo.SwitchID) Transport {
	return &chanPort{fabric: f, id: id}
}

// InFlight returns the number of frames sent but not yet received.
func (f *ChanFabric) InFlight() int64 { return f.inflight.Load() }

// Kill crashes switch id's attachment: its queue is closed (the node's
// receive loop unblocks with ErrClosed, later sends to it fail) and every
// frame still queued for it is dropped, exactly as datagrams to a dead host
// would be. Reset revives the attachment.
func (f *ChanFabric) Kill(id topo.SwitchID) error {
	if int(id) < 0 || int(id) >= len(f.queues) {
		return fmt.Errorf("rt: kill of unknown switch %d", id)
	}
	q := f.queues[id].Load()
	q.close()
	f.inflight.Add(-int64(q.drain()))
	return nil
}

// Reset installs a fresh, empty queue for switch id — the transport half of
// a restart. Frames sent to id during its dead window stay lost.
func (f *ChanFabric) Reset(id topo.SwitchID) error {
	if int(id) < 0 || int(id) >= len(f.queues) {
		return fmt.Errorf("rt: reset of unknown switch %d", id)
	}
	old := f.queues[id].Swap(newFrameQueue())
	// A sender racing the swap may have pushed onto the dying queue after
	// Kill's drain; account for anything still there.
	old.close()
	f.inflight.Add(-int64(old.drain()))
	return nil
}

// SetPartition cuts the fabric into groups: every send between switches in
// different groups is silently dropped (the sender sees success — an
// undetected split, not a link-down event). Switches absent from all groups
// are unconstrained. ClearPartition restores full connectivity.
func (f *ChanFabric) SetPartition(groups [][]topo.SwitchID) {
	m := make(map[topo.SwitchID]int)
	for i, g := range groups {
		for _, s := range g {
			m[s] = i
		}
	}
	f.groups.Store(&m)
}

// ClearPartition restores full connectivity.
func (f *ChanFabric) ClearPartition() {
	f.groups.Store(nil)
}

// SetLoss makes the fabric drop each payload (FrameData) frame with
// probability prob, using a deterministic per-send hash seeded by seed.
// prob ≤ 0 disables loss. Control frames are never dropped.
func (f *ChanFabric) SetLoss(prob float64, seed int64) {
	if prob <= 0 {
		f.loss.Store(nil)
		return
	}
	if prob > 1 {
		prob = 1
	}
	f.loss.Store(&lossCfg{
		thresh: uint64(prob * float64(math.MaxUint64)),
		seed:   uint64(seed),
	})
}

// Lost returns the number of frames discarded by the loss knob.
func (f *ChanFabric) Lost() uint64 { return f.lost.Load() }

// dropData reports whether the loss knob claims this frame. Only payload
// frames are eligible; the kind byte sits at a fixed header offset.
func (f *ChanFabric) dropData(data []byte) bool {
	lc := f.loss.Load()
	if lc == nil || len(data) < 2 || lsa.FrameKind(data[1]) != lsa.FrameData {
		return false
	}
	if mix64(lc.seed+lc.ctr.Add(1)) >= lc.thresh {
		return false
	}
	f.lost.Add(1)
	return true
}

// blocked reports whether the active partition separates from and to.
func (f *ChanFabric) blocked(from, to topo.SwitchID) bool {
	gp := f.groups.Load()
	if gp == nil {
		return false
	}
	m := *gp
	gf, okf := m[from]
	gt, okt := m[to]
	return okf && okt && gf != gt
}

// Close closes every queue.
func (f *ChanFabric) Close() error {
	for i := range f.queues {
		f.queues[i].Load().close()
	}
	return nil
}

// chanPort is one switch's view of a ChanFabric.
type chanPort struct {
	fabric *ChanFabric
	id     topo.SwitchID
}

func (p *chanPort) Send(to topo.SwitchID, data []byte) error {
	if int(to) < 0 || int(to) >= len(p.fabric.queues) {
		return fmt.Errorf("rt: send to unknown switch %d", to)
	}
	if p.fabric.blocked(p.id, to) {
		return nil // partitioned: the frame vanishes, undetected
	}
	if p.fabric.dropData(data) {
		return nil // lossy fabric ate the payload; the sender never knows
	}
	// Copy: the wire would; and the caller is free to patch its buffer for
	// the next neighbor while this copy sits queued. The copy comes from the
	// frame pool and goes back once the receiving node has handled it.
	buf := append(getBuf(len(data)), data...)
	if !p.fabric.queues[to].Load().push(buf) {
		putBuf(buf)
		return ErrClosed
	}
	p.fabric.inflight.Add(1)
	return nil
}

func (p *chanPort) Recv() ([]byte, error) {
	buf, ok := p.fabric.queues[p.id].Load().pop()
	if !ok {
		return nil, ErrClosed
	}
	p.fabric.inflight.Add(-1)
	return buf, nil
}

func (p *chanPort) Close() error {
	p.fabric.queues[p.id].Load().close()
	return nil
}

// frameQueue is an unbounded FIFO of frames with blocking pop.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  [][]byte
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) push(buf []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, buf)
	q.cond.Signal()
	return true
}

func (q *frameQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	buf := q.items[0]
	q.items = q.items[1:]
	return buf, true
}

// drain discards everything queued and returns how many frames were
// dropped (so the fabric's in-flight count stays balanced).
func (q *frameQueue) drain() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	for _, buf := range q.items {
		putBuf(buf)
	}
	q.items = nil
	return n
}

func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
