package rt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// ChanFabric is an in-process Transport fabric: one unbounded queue per
// switch, shared-memory delivery. It is the loss-free, reorder-free fabric
// used by the live test harness and the sim-vs-live equivalence test.
//
// Queues are unbounded on purpose: a flood storm makes every node send to
// every neighbor while holding its machine lock, and a bounded channel
// there is a recipe for distributed deadlock. Memory is bounded in practice
// by the protocol's own quiescence.
//
// The fabric also models the fault surface the robustness harness needs:
// Kill/Reset crash and restart one switch's attachment (in-flight frames to
// a killed switch are dropped, like packets to a dead host), and
// SetPartition atomically cuts every path between switch groups — silently,
// the way an undetected split behaves, so senders see success, not errors.
type ChanFabric struct {
	queues []atomic.Pointer[frameQueue]
	// inflight counts frames enqueued but not yet handed to a receiver,
	// letting the harness distinguish "quiescent" from "packets still in
	// flight". Every path that discards queued frames (Kill, Reset, Close)
	// settles the count through frameQueue.close's drain tally.
	inflight atomic.Int64
	// groups holds the active partition as a switch→group map (nil when the
	// fabric is whole). Cross-group sends are silently dropped.
	groups atomic.Pointer[map[topo.SwitchID]int]
	// loss, when set, drops payload (FrameData) frames at random. Control
	// frames are never dropped: the loss knob stresses the data plane's
	// delivery ratio, not the control plane's loss recovery — that has its
	// own faults (Kill, Partition).
	loss atomic.Pointer[lossCfg]
	// lost counts frames the loss knob discarded.
	lost atomic.Uint64
}

// lossCfg is one SetLoss configuration: a fixed drop threshold and the hash
// seed. The drop verdict for a frame is a pure function of (seed, frame
// identity, destination) — no shared counter — so a seeded soak produces
// the same loss set on every run no matter how many sender goroutines race
// or how the scheduler interleaves them.
type lossCfg struct {
	thresh uint64 // drop when the identity hash < thresh
	seed   uint64
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash
// step used to turn frame identities into drop verdicts.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewChanFabric builds a fabric for switches 0..n-1.
func NewChanFabric(n int) *ChanFabric {
	f := &ChanFabric{queues: make([]atomic.Pointer[frameQueue], n)}
	for i := range f.queues {
		f.queues[i].Store(newFrameQueue())
	}
	return f
}

// Transport returns switch id's attachment to the fabric.
func (f *ChanFabric) Transport(id topo.SwitchID) Transport {
	return &chanPort{fabric: f, id: id}
}

// InFlight returns the number of frames sent but not yet received.
func (f *ChanFabric) InFlight() int64 { return f.inflight.Load() }

// Kill crashes switch id's attachment: its queue is closed (the node's
// receive loop unblocks with ErrClosed, later sends to it fail) and every
// frame still queued for it is dropped, exactly as datagrams to a dead host
// would be. Reset revives the attachment.
func (f *ChanFabric) Kill(id topo.SwitchID) error {
	if int(id) < 0 || int(id) >= len(f.queues) {
		return fmt.Errorf("rt: kill of unknown switch %d", id)
	}
	f.inflight.Add(-int64(f.queues[id].Load().close()))
	return nil
}

// Reset installs a fresh, empty queue for switch id — the transport half of
// a restart. Frames sent to id during its dead window stay lost.
func (f *ChanFabric) Reset(id topo.SwitchID) error {
	if int(id) < 0 || int(id) >= len(f.queues) {
		return fmt.Errorf("rt: reset of unknown switch %d", id)
	}
	old := f.queues[id].Swap(newFrameQueue())
	// A sender racing the swap may have pushed onto the dying queue after
	// Kill's drain; account for anything still there.
	f.inflight.Add(-int64(old.close()))
	return nil
}

// SetPartition cuts the fabric into groups: every send between switches in
// different groups is silently dropped (the sender sees success — an
// undetected split, not a link-down event). Switches absent from all groups
// are unconstrained. ClearPartition restores full connectivity.
func (f *ChanFabric) SetPartition(groups [][]topo.SwitchID) {
	m := make(map[topo.SwitchID]int)
	for i, g := range groups {
		for _, s := range g {
			m[s] = i
		}
	}
	f.groups.Store(&m)
}

// ClearPartition restores full connectivity.
func (f *ChanFabric) ClearPartition() {
	f.groups.Store(nil)
}

// SetLoss makes the fabric drop each payload (FrameData) frame with
// probability prob, using a deterministic hash of the frame's identity
// seeded by seed. prob ≤ 0 disables loss. Control frames are never
// dropped.
func (f *ChanFabric) SetLoss(prob float64, seed int64) {
	if prob <= 0 {
		f.loss.Store(nil)
		return
	}
	if prob > 1 {
		prob = 1
	}
	f.loss.Store(&lossCfg{
		thresh: uint64(prob * float64(math.MaxUint64)),
		seed:   uint64(seed),
	})
}

// Lost returns the number of frames discarded by the loss knob.
func (f *ChanFabric) Lost() uint64 { return f.lost.Load() }

// dropData reports whether the loss knob claims this frame on the link to
// `to`. Only payload frames are eligible. The verdict hashes the frame's
// wire identity — origin and data sequence, plus the link-level from/to
// pair — so each link's copy of a packet gets an independent coin flip,
// and the full loss set is a pure function of the seed: reproducible
// across runs however many concurrent senders the load generator races,
// where the old global-counter PRNG made drops scheduler-dependent.
func (f *ChanFabric) dropData(data []byte, to topo.SwitchID) bool {
	lc := f.loss.Load()
	if lc == nil {
		return false
	}
	kind, origin, from, seq, ok := lsa.PeekFrameMeta(data)
	if !ok || kind != lsa.FrameData {
		return false
	}
	h := mix64(lc.seed ^ uint64(uint32(origin)))
	h = mix64(h ^ seq)
	h = mix64(h ^ uint64(uint32(from))<<32 ^ uint64(uint32(to)))
	if h >= lc.thresh {
		return false
	}
	f.lost.Add(1)
	return true
}

// blocked reports whether the active partition separates from and to.
func (f *ChanFabric) blocked(from, to topo.SwitchID) bool {
	gp := f.groups.Load()
	if gp == nil {
		return false
	}
	m := *gp
	gf, okf := m[from]
	gt, okt := m[to]
	return okf && okt && gf != gt
}

// Close closes every queue, draining whatever is still queued so pooled
// frame buffers return to their pool and the in-flight count settles back
// to zero — a partly-shut fabric must not poison a later quiescence check.
func (f *ChanFabric) Close() error {
	for i := range f.queues {
		f.inflight.Add(-int64(f.queues[i].Load().close()))
	}
	return nil
}

// chanPort is one switch's view of a ChanFabric.
type chanPort struct {
	fabric *ChanFabric
	id     topo.SwitchID
	// pending stashes the tail of a popAll batch between single-frame Recv
	// calls (the batched path, RecvBatch, hands the whole batch to the
	// caller instead). Recv is single-consumer, but Close must be able to
	// drain a stashed batch whose frames still count as in flight — hence
	// the mutex.
	mu      sync.Mutex
	pending [][]byte
	next    int
}

func (p *chanPort) Send(to topo.SwitchID, data []byte) error {
	if int(to) < 0 || int(to) >= len(p.fabric.queues) {
		return fmt.Errorf("rt: send to unknown switch %d", to)
	}
	if p.fabric.blocked(p.id, to) {
		return nil // partitioned: the frame vanishes, undetected
	}
	if p.fabric.dropData(data, to) {
		return nil // lossy fabric ate the payload; the sender never knows
	}
	// Copy: the wire would; and the caller is free to patch its buffer for
	// the next neighbor while this copy sits queued. The copy comes from the
	// frame pool — outside the queue lock, so the critical section stays one
	// append — and goes back once the receiving node has handled it.
	buf := append(getBuf(len(data)), data...)
	if !p.fabric.queues[to].Load().push(buf) {
		putBuf(buf)
		return ErrClosed
	}
	p.fabric.inflight.Add(1)
	return nil
}

// SendOwned implements the ownership-transfer send: buf moves into the
// destination queue as-is — no copy, no pool round-trip. Every non-queued
// outcome (unknown switch, partition, loss, closed destination) recycles
// buf right here, upholding the callee-always-consumes contract.
func (p *chanPort) SendOwned(to topo.SwitchID, buf []byte) error {
	if int(to) < 0 || int(to) >= len(p.fabric.queues) {
		putBuf(buf)
		return fmt.Errorf("rt: send to unknown switch %d", to)
	}
	if p.fabric.blocked(p.id, to) || p.fabric.dropData(buf, to) {
		putBuf(buf)
		return nil // vanished in the fabric; the sender never knows
	}
	if !p.fabric.queues[to].Load().push(buf) {
		putBuf(buf)
		return ErrClosed
	}
	p.fabric.inflight.Add(1)
	return nil
}

func (p *chanPort) Recv() ([]byte, error) {
	for {
		p.mu.Lock()
		if p.next < len(p.pending) {
			buf := p.pending[p.next]
			p.pending[p.next] = nil
			p.next++
			p.mu.Unlock()
			p.fabric.inflight.Add(-1)
			return buf, nil
		}
		recycle := p.pending[:0]
		p.pending, p.next = nil, 0
		p.mu.Unlock()
		batch, ok := p.fabric.queues[p.id].Load().popAll(recycle)
		if !ok {
			// Closed; a batch stashed concurrently with the close would hold
			// in-flight frames forever, so sweep it on the way out.
			p.drainPending()
			return nil, ErrClosed
		}
		p.mu.Lock()
		p.pending, p.next = batch, 0
		p.mu.Unlock()
	}
}

// RecvBatch drains the port's entire backlog in one blocking call — the
// batched fast path Node.recvLoop prefers, one queue-lock acquisition per
// burst instead of per frame. recycle must be the slice returned by the
// previous call (or nil); its backing array goes back to the queue for the
// producers' next batch, while the frames themselves are the caller's to
// putBuf once handled. The frames stay in the fabric's in-flight count
// until the consumer settles them with Release — InFlight()==0 must keep
// meaning "nothing queued anywhere and nothing mid-handling", exactly as
// it did when Recv handed frames out one at a time.
func (p *chanPort) RecvBatch(recycle [][]byte) ([][]byte, error) {
	batch, ok := p.fabric.queues[p.id].Load().popAll(recycle)
	if !ok {
		return nil, ErrClosed
	}
	return batch, nil
}

// Release settles n batch-received frames as handled (see RecvBatch).
func (p *chanPort) Release(n int) {
	p.fabric.inflight.Add(-int64(n))
}

func (p *chanPort) Close() error {
	f := p.fabric
	f.inflight.Add(-int64(f.queues[p.id].Load().close()))
	p.drainPending()
	return nil
}

// drainPending discards a batch stashed between Recv calls, returning its
// buffers to the pool and balancing the in-flight count.
func (p *chanPort) drainPending() {
	p.mu.Lock()
	for ; p.next < len(p.pending); p.next++ {
		putBuf(p.pending[p.next])
		p.pending[p.next] = nil
		p.fabric.inflight.Add(-1)
	}
	p.pending, p.next = nil, 0
	p.mu.Unlock()
}

// frameQueue is an unbounded MPSC FIFO of frames with a blocking batch
// pop. Producers append to back under the lock; the consumer takes the
// whole backlog in one popAll and hands its previous batch's array back,
// so the two arrays ping-pong between the sides: a balanced workload runs
// at one lock acquisition per burst with zero steady-state allocation.
// This replaced a head-shift queue (items = items[1:]) that kept every
// popped frame reachable through the backing array and re-copied the tail
// on append once capacity ran out — the hottest path in the saturation
// profile.
type frameQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	back    [][]byte
	waiters int // consumers parked in popAll; push only signals when > 0
	closed  bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) push(buf []byte) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.back = append(q.back, buf)
	if q.waiters > 0 {
		q.cond.Signal()
	}
	q.mu.Unlock()
	return true
}

// popAll blocks until the queue has frames (or closes), then takes the
// entire backlog. recycle is the batch slice returned by the previous
// popAll: its entries are cleared — no frame stays reachable beyond the
// batch after it — and its backing array becomes the producers' next back
// array.
func (q *frameQueue) popAll(recycle [][]byte) ([][]byte, bool) {
	clear(recycle)
	q.mu.Lock()
	for len(q.back) == 0 && !q.closed {
		q.waiters++
		q.cond.Wait()
		q.waiters--
	}
	batch := q.back
	if len(batch) == 0 {
		q.mu.Unlock()
		return nil, false
	}
	q.back = recycle[:0]
	q.mu.Unlock()
	return batch, true
}

// close drains and closes the queue, waking blocked consumers, and returns
// how many queued frames it discarded so the fabric can settle its
// in-flight accounting. Idempotent; every discarded buffer returns to the
// frame pool.
func (q *frameQueue) close() int {
	q.mu.Lock()
	q.closed = true
	n := len(q.back)
	for i, buf := range q.back {
		putBuf(buf)
		q.back[i] = nil
	}
	q.back = q.back[:0]
	q.cond.Broadcast()
	q.mu.Unlock()
	return n
}
