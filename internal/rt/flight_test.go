package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgmc/internal/fib"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/topo"
)

// instrumentedNode boots the forward-test node with everything on: flight
// recorder, per-packet sampling (every packet — the worst case), and a live
// metrics registry.
func instrumentedNode(t *testing.T, dh DataHandler) (*Node, *stubTransport) {
	members := mctree.Members{0: mctree.SenderReceiver, 1: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	return fwdNodeWith(t, 1, mctree.Symmetric, members, fwdTree(mctree.Symmetric), dh,
		func(cfg *NodeConfig) {
			cfg.FlightRecords = 256
			cfg.SampleEvery = 1
			cfg.Registry = obs.NewRegistry()
		})
}

// TestHandleDataInstrumentedZeroAlloc is the tentpole's hard constraint from
// inside the package: the steady-state forward path — decode, FIB lookup,
// delivery, in-place patch, relay fan-out — stays at zero heap allocations
// per frame WITH the flight recorder recording every event, path sampling
// tracing every packet (SampleEvery=1), and the metrics registry live. The
// root-level TestAllocGateForwardInstrumented re-checks the same budget from
// outside the package.
func TestHandleDataInstrumentedZeroAlloc(t *testing.T) {
	var delivered atomic.Uint64
	n, st := instrumentedNode(t, func(conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
		delivered.Add(uint64(len(payload)))
	})

	const hops = 8
	buf := dataBuf(fwdConn, 0, 0, 7, hops, make([]byte, 32))
	var f lsa.Frame
	allocs := testing.AllocsPerRun(200, func() {
		if err := lsa.PatchDataForward(buf, 0, hops); err != nil {
			t.Fatal(err)
		}
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			t.Fatal(err)
		}
		n.handleData(buf, &f)
	})
	if allocs != 0 {
		t.Fatalf("instrumented handleData allocates %.1f times per frame, budget is 0", allocs)
	}
	if delivered.Load() == 0 || st.sends.Load() == 0 {
		t.Fatal("instrumented path did not deliver/forward")
	}
	// The recorder actually recorded: every frame wrote a deliver and a
	// forward event, and the sampled-hop ring (SampleEvery=1) kept pace.
	doc := n.FlightDoc()
	if doc.Written == 0 || len(doc.Events) == 0 {
		t.Fatalf("event ring empty after instrumented run: %+v", doc)
	}
	if len(doc.Hops) == 0 {
		t.Fatal("hop ring empty with SampleEvery=1")
	}
}

// TestSendDataInstrumentedNoExtraAlloc pins origination's instrumentation
// cost at zero: SendData pays exactly one pre-existing allocation per frame
// (the buffer pool's *[]byte box, see bufpool.go) with or without the
// recorder, sampling, and registry — turning everything on must not add a
// single allocation.
func TestSendDataInstrumentedNoExtraAlloc(t *testing.T) {
	members := mctree.Members{0: mctree.SenderReceiver, 1: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	base, _ := fwdNode(t, 1, mctree.Symmetric, members, fwdTree(mctree.Symmetric), nil)
	inst, _ := instrumentedNode(t, nil)

	payload := make([]byte, 32)
	measure := func(n *Node) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := n.SendData(fwdConn, payload); err != nil {
				t.Fatal(err)
			}
		})
	}
	baseline := measure(base)
	if baseline > 1 {
		t.Fatalf("uninstrumented SendData allocates %.1f/frame, budget is 1 (pool box)", baseline)
	}
	if instrumented := measure(inst); instrumented > baseline {
		t.Fatalf("instrumentation added allocations to SendData: %.1f -> %.1f", baseline, instrumented)
	}
}

// TestFlightRecordsDataPlane drives each forward-path outcome and checks the
// rings: kinds land in the event ring, only sampled sequences reach the hop
// ring, and drops flip the anomaly flag that /healthz surfaces.
func TestFlightRecordsDataPlane(t *testing.T) {
	members := mctree.Members{0: mctree.SenderReceiver, 1: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	n, _ := fwdNodeWith(t, 1, mctree.Symmetric, members, fwdTree(mctree.Symmetric), nil,
		func(cfg *NodeConfig) {
			cfg.FlightRecords = 64
			cfg.SampleEvery = 4
		})

	feed := func(buf []byte) {
		var f lsa.Frame
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			t.Fatal(err)
		}
		n.handleData(buf, &f)
	}

	feed(dataBuf(fwdConn, 0, 0, 7, 8, nil))  // relayed+delivered, 7%4 != 0: not sampled
	feed(dataBuf(fwdConn, 0, 0, 8, 8, nil))  // relayed+delivered, sampled
	feed(dataBuf(fwdConn, 1, 0, 12, 8, nil)) // own frame looped back, sampled

	doc := n.FlightDoc()
	kinds := map[obs.RecKind]int{}
	for _, rec := range doc.Events {
		kinds[rec.Kind]++
	}
	if kinds[obs.RecDeliver] != 2 || kinds[obs.RecForward] != 2 || kinds[obs.RecDropLoop] != 1 {
		t.Fatalf("event ring kinds = %v, want 2 delivers, 2 forwards, 1 loop drop", kinds)
	}
	// FIB swap from boot-time compile is in the event ring too.
	if kinds[obs.RecFIBSwap] == 0 {
		t.Fatalf("no FIB-swap record in event ring: %v", kinds)
	}

	hopKinds := map[obs.RecKind]int{}
	for _, rec := range doc.Hops {
		if rec.Seq%4 != 0 {
			t.Fatalf("unsampled seq %d in hop ring", rec.Seq)
		}
		hopKinds[rec.Kind]++
	}
	if hopKinds[obs.RecDeliver] != 1 || hopKinds[obs.RecForward] != 1 || hopKinds[obs.RecDropLoop] != 1 {
		t.Fatalf("hop ring kinds = %v, want 1 deliver, 1 forward, 1 loop drop", hopKinds)
	}
	// The looped-back drop was decoded best-effort: its record carries the
	// real connection, so the reconstructor can join it to its path.
	for _, rec := range doc.Hops {
		if rec.Kind == obs.RecDropLoop && rec.Conn != uint32(fwdConn) {
			t.Fatalf("loop-drop record conn = %d, want %d", rec.Conn, fwdConn)
		}
	}

	h := n.Health()
	if h.Anomaly != obs.RecDropLoop.String() {
		t.Fatalf("health anomaly = %q, want %q", h.Anomaly, obs.RecDropLoop)
	}
	if h.AnomalyAgeMS < 0 {
		t.Fatalf("anomaly age = %d, want >= 0", h.AnomalyAgeMS)
	}
	if h.FlightWritten == 0 {
		t.Fatal("health reports zero flight records written")
	}
}

// TestForwardStatsRace is the striped-counter refactor's guard: ForwardStats
// and ConnForwardStats reads race live forwarding, origination, and FIB
// atomic swaps. Run under -race in the observability CI job; the final
// quiescent sums must balance exactly.
func TestForwardStatsRace(t *testing.T) {
	members := mctree.Members{0: mctree.SenderReceiver, 1: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	n, st := fwdNodeWith(t, 1, mctree.Symmetric, members, fwdTree(mctree.Symmetric), nil,
		func(cfg *NodeConfig) {
			cfg.FlightRecords = 128
			cfg.SampleEvery = 8
		})

	// A second table (same shape) for the swapper; builders are cheap.
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	mkTable := func() *fib.Table {
		b := fib.NewBuilder(1, g)
		b.Add(fwdConn, mctree.Symmetric, members, fwdTree(mctree.Symmetric))
		return b.Build()
	}
	t1, t2 := mkTable(), mkTable()

	const packets = 4000
	var writersWG, auxWG sync.WaitGroup
	stop := make(chan struct{})

	writersWG.Add(1)
	go func() { // forwarder
		defer writersWG.Done()
		buf := dataBuf(fwdConn, 0, 0, 0, 8, make([]byte, 16))
		var f lsa.Frame
		for i := 0; i < packets; i++ {
			if err := lsa.PatchDataForward(buf, 0, 8); err != nil {
				t.Error(err)
				return
			}
			if err := lsa.DecodeFrameInto(&f, buf); err != nil {
				t.Error(err)
				return
			}
			n.handleData(buf, &f)
		}
	}()
	writersWG.Add(1)
	go func() { // originator
		defer writersWG.Done()
		payload := []byte("race")
		for i := 0; i < packets; i++ {
			if _, err := n.SendData(fwdConn, payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	auxWG.Add(1)
	go func() { // FIB swapper
		defer auxWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				n.fib.Store(t1)
			} else {
				n.fib.Store(t2)
			}
		}
	}()
	auxWG.Add(1)
	go func() { // stats reader
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := n.ForwardStats()
			if s.Drops() != 0 {
				t.Errorf("unexpected drops under race: %+v", s)
				return
			}
			_ = n.ConnForwardStats(fwdConn)
			_ = n.Health()
		}
	}()

	// Wait for the two writers, then release the readers/swapper. done can
	// only fire after both writers' final increments, so a re-check after
	// it closes is authoritative.
	writers := make(chan struct{})
	go func() { writersWG.Wait(); close(writers) }()
	done := false
	for !done {
		select {
		case <-writers:
			done = true
		case <-time.After(time.Millisecond):
		}
		s := n.ForwardStats()
		if s.Originated == packets && s.Delivered == packets {
			break
		}
	}
	close(stop)
	<-writers
	auxWG.Wait()

	s := n.ForwardStats()
	if s.Originated != packets || s.Delivered != packets {
		t.Fatalf("stats lost updates: %+v, want %d originated and delivered", s, packets)
	}
	// Forward fan-out went to the one downstream tree neighbor per relayed
	// frame; every transport send is accounted one way or the other.
	if s.Forwarded == 0 || st.sends.Load() == 0 {
		t.Fatalf("no forwarding observed: stats=%+v sends=%d", s, st.sends.Load())
	}
	if cs := n.ConnForwardStats(fwdConn); cs.Delivered != packets {
		t.Fatalf("stripe stats lost updates: %+v", cs)
	}
}

// TestNodeHealthConverged checks the health surface on a live converged
// cluster: every member Converged, no gaps, FIB populated — and the flight
// recorder's FIB-swap records present.
func TestNodeHealthConverged(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
		FlightRecords: 128, SampleEvery: 2,
	}, NewChanFabric(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(1)
	for _, sw := range []topo.SwitchID{0, 2} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		h := n.Health()
		if !h.Converged {
			t.Fatalf("switch %d not converged in health: %+v", n.ID(), h)
		}
		if h.Conns != 1 {
			t.Fatalf("switch %d conns = %d, want 1", n.ID(), h.Conns)
		}
		if len(h.GappedConns) != 0 || len(h.GiveUpConns) != 0 {
			t.Fatalf("switch %d has gaps in health: %+v", n.ID(), h)
		}
		if h.FIBEntries == 0 || h.FIBCompiles == 0 {
			t.Fatalf("switch %d FIB missing from health: %+v", n.ID(), h)
		}
		if !n.HealthyConn(conn) {
			t.Fatalf("switch %d HealthyConn = false after convergence", n.ID())
		}
		doc := n.FlightDoc()
		fibSwaps := 0
		for _, rec := range doc.Events {
			if rec.Kind == obs.RecFIBSwap {
				fibSwaps++
			}
		}
		if fibSwaps == 0 {
			t.Fatalf("switch %d recorded no FIB swaps: %d events", n.ID(), len(doc.Events))
		}
	}
}
