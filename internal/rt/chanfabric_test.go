package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// testDataFrame encodes a minimal payload frame: enough header for
// PeekFrameMeta (which is all the fabric itself reads) without needing a
// decodable data payload.
func testDataFrame(origin topo.SwitchID, seq uint64) []byte {
	return lsa.EncodeFrame(&lsa.Frame{
		Version: lsa.FrameVersion, Kind: lsa.FrameData,
		Origin: origin, From: origin, Seq: seq,
	})
}

// TestFrameQueueNoRetentionAfterPop pins the fix for the head-shift queue's
// memory retention: popping with items = items[1:] kept every popped frame
// reachable through the backing array, so handled buffers could never be
// collected (or reused) until the array happened to reallocate. The
// two-list queue's contract is that once a batch array is recycled, none of
// its former frames remain reachable through the queue — verified here with
// finalizers: every popped frame must become collectable while the queue is
// still alive and holding the recycled array.
func TestFrameQueueNoRetentionAfterPop(t *testing.T) {
	q := newFrameQueue()
	const n = 64
	var freed atomic.Int32
	for i := 0; i < n; i++ {
		buf := make([]byte, 4096)
		runtime.SetFinalizer(&buf[0], func(*byte) { freed.Add(1) })
		if !q.push(buf) {
			t.Fatal("push failed on open queue")
		}
	}
	batch, ok := q.popAll(nil)
	if !ok || len(batch) != n {
		t.Fatalf("popAll returned %d frames (ok=%v), want %d", len(batch), ok, n)
	}
	// Recycle the batch array back into the queue (the steady-state
	// ping-pong). Its entries must be cleared on the way in.
	if !q.push(make([]byte, 16)) {
		t.Fatal("push failed on open queue")
	}
	batch2, ok := q.popAll(batch)
	if !ok || len(batch2) != 1 {
		t.Fatalf("second popAll returned %d frames (ok=%v), want 1", len(batch2), ok)
	}
	deadline := time.Now().Add(10 * time.Second)
	for freed.Load() < n && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if got := freed.Load(); got < n {
		t.Fatalf("only %d/%d popped frames became collectable: the queue retains handled frames", got, n)
	}
	runtime.KeepAlive(q)
	runtime.KeepAlive(batch2)
}

// TestFrameQueueBalancedCyclesBounded runs far past 10^5 balanced push/pop
// cycles and requires the queue machinery itself to allocate nothing in
// steady state: the batch array handed back by the consumer becomes the
// producers' next back array, so a balanced workload ping-pongs two arrays
// forever. The old queue re-copied its tail on append whenever the
// head-shifted capacity ran out, allocating (and retaining) continuously
// under exactly this load.
func TestFrameQueueBalancedCyclesBounded(t *testing.T) {
	q := newFrameQueue()
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 256)
	}
	var batch [][]byte
	cycle := func() {
		for _, b := range bufs {
			if !q.push(b) {
				t.Fatal("push failed on open queue")
			}
		}
		var ok bool
		batch, ok = q.popAll(batch)
		if !ok || len(batch) != len(bufs) {
			t.Fatalf("popAll returned %d frames (ok=%v), want %d", len(batch), ok, len(bufs))
		}
	}
	for i := 0; i < 64; i++ {
		cycle() // reach steady state: arrays sized, pools warm
	}
	const cycles = 150_000
	if allocs := testing.AllocsPerRun(cycles, cycle); allocs > 0 {
		t.Fatalf("queue allocates %.2f times per balanced cycle in steady state, want 0", allocs)
	}
}

// TestChanFabricDrainOnClose pins the close-time accounting fix: closing a
// fabric with frames still queued must drain them — returning their buffers
// to the pool — and settle InFlight back to zero, so a partly-shut fabric
// cannot wedge a later quiescence check that waits for the in-flight count.
func TestChanFabricDrainOnClose(t *testing.T) {
	fab := NewChanFabric(3)
	p := fab.Transport(0)
	frame := testDataFrame(0, 1)
	for i := 0; i < 50; i++ {
		if err := p.Send(1, frame); err != nil {
			t.Fatal(err)
		}
		if err := p.Send(2, frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := fab.InFlight(); got != 100 {
		t.Fatalf("InFlight = %d with 100 frames queued, want 100", got)
	}
	if err := fab.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fab.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after Close with frames queued, want 0", got)
	}
}

// TestChanPortDrainOnClose covers the port-close half: a batch stashed
// between single-frame Recv calls still counts as in flight, and closing
// the port must sweep the stash as well as the queue.
func TestChanPortDrainOnClose(t *testing.T) {
	fab := NewChanFabric(2)
	tx, rx := fab.Transport(0), fab.Transport(1)
	frame := testDataFrame(0, 1)
	for i := 0; i < 20; i++ {
		if err := tx.Send(1, frame); err != nil {
			t.Fatal(err)
		}
	}
	// One Recv pops the whole backlog and stashes the other 19 frames.
	buf, err := rx.Recv()
	if err != nil {
		t.Fatal(err)
	}
	putBuf(buf)
	if got := fab.InFlight(); got != 19 {
		t.Fatalf("InFlight = %d after one Recv of 20, want 19", got)
	}
	if err := rx.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fab.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after port Close with stashed batch, want 0", got)
	}
}

// TestLossDeterministicUnderConcurrency pins the loss knob's determinism
// fix. The old implementation hashed a global send counter, so which frames
// died depended on how the scheduler interleaved concurrent senders — two
// identical runs produced different loss sets. The verdict is now a pure
// function of the frame's wire identity (origin, data sequence) and the
// link, so the same seeded workload must lose exactly the same frames no
// matter how many goroutines race the sends.
func TestLossDeterministicUnderConcurrency(t *testing.T) {
	const (
		frames  = 4000
		senders = 4
		prob    = 0.4
		seed    = 1234
	)
	run := func() map[uint64]bool {
		fab := NewChanFabric(2)
		fab.SetLoss(prob, seed)
		tx, rx := fab.Transport(0), fab.Transport(1)
		got := make(map[uint64]bool, frames)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				buf, err := rx.Recv()
				if err != nil {
					return
				}
				_, _, _, seq, ok := lsa.PeekFrameMeta(buf)
				if !ok {
					t.Error("received frame too short to peek")
				}
				got[seq] = true
				putBuf(buf)
			}
		}()
		var wg sync.WaitGroup
		for g := 0; g < senders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for s := g; s < frames; s += senders {
					if err := tx.Send(1, testDataFrame(0, uint64(s+1))); err != nil {
						t.Error(err)
					}
				}
			}(g)
		}
		wg.Wait()
		for fab.InFlight() != 0 {
			time.Sleep(100 * time.Microsecond)
		}
		fab.Close()
		<-done
		return got
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == frames {
		t.Fatalf("run delivered %d/%d frames; loss knob inert or total", len(a), frames)
	}
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d frames: loss set depends on scheduling", len(a), len(b))
	}
	for seq := range a {
		if !b[seq] {
			t.Fatalf("seq %d survived run 1 but died in run 2: loss set depends on scheduling", seq)
		}
	}
}
