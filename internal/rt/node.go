package rt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/fib"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// NodeConfig configures one live switch.
type NodeConfig struct {
	// ID is the switch's network ID in [0, Graph.NumSwitches()).
	ID topo.SwitchID
	// Graph is the configured fabric topology; the node's neighbor set and
	// its protocol machine's initial image both come from it. Required.
	Graph *topo.Graph
	// Algorithm computes MC topologies (default route.SPH).
	Algorithm route.Algorithm
	// Kinds maps connection IDs to their MC type (default Symmetric).
	Kinds map[lsa.ConnID]mctree.Kind
	// ReoptimizeThreshold enables §3.5 re-optimization (zero disables).
	ReoptimizeThreshold float64
	// ResyncTimeout enables gap recovery with the given wall-clock timeout;
	// zero disables. Mandatory in practice over lossy transports (UDP).
	ResyncTimeout time.Duration
	// ResyncMaxRounds bounds resync rounds per gap (default 64).
	ResyncMaxRounds int
	// ComputeDelay, when positive, makes HoldCompute sleep that long —
	// widening the protocol's withdraw windows the way the simulator's
	// virtual Tc does. Zero (the default) lets computation take the real
	// time it takes.
	ComputeDelay time.Duration
	// EventBuffer sizes the local-event queue (default 256).
	EventBuffer int
	// Logf, when set, receives protocol trace lines.
	Logf func(format string, args ...any)
	// Tracer, when set, receives structured protocol trace entries (for
	// span collection); it must be safe for concurrent use.
	Tracer core.Tracer
	// Registry, when set, receives the node's runtime metrics (counters,
	// gauges, histograms, labeled per switch). nil disables metrics with
	// near-zero overhead.
	Registry *obs.Registry
	// DataHandler, when set, receives every payload delivered to this
	// switch's co-resident application by the data plane (the switch is a
	// receiving member of conn). It is called from the transport receive
	// goroutine and must not block or retain payload, which aliases a pooled
	// receive buffer valid only for the duration of the call.
	DataHandler DataHandler
	// DataHops is the hop budget stamped on payload frames this node
	// originates (default DefaultDataHops, max lsa.MaxDataHops). The budget
	// is the data plane's only loop guard while trees at different switches
	// transiently disagree during reconvergence.
	DataHops int
	// FlightRecords, when positive, enables the node's flight recorder: a
	// lock-free, allocation-free ring holding the last N data/control
	// events (forwards, the drop taxonomy, FIB swaps, LSA batches, resync
	// firings, reconciles, rejoins), snapshotted via FlightDoc for the
	// /flightrec admin endpoint. Rounded up to a power of two, min 16.
	FlightRecords int
	// SampleEvery, when positive (and FlightRecords is set), enables
	// 1-in-N packet path sampling: every data frame whose per-source
	// sequence is a multiple of SampleEvery gets a per-hop trace record in
	// a second ring of the same size, which the offline reconstructor
	// (obs.ReconstructPaths) joins into hop-by-hop path reports. The
	// decision is a pure function of the sequence number every frame
	// already carries, so all hops sample the same packets with no extra
	// wire bits.
	SampleEvery int
	// Epoch is the node's restart epoch (zero for a first boot). It
	// namespaces the node's flood sequence numbers — seq = epoch<<48 |
	// counter — so frames originated by a previous incarnation can never
	// collide with, or be mistaken for, frames from this one: receivers'
	// duplicate-suppression windows slide forward to the new epoch on first
	// contact and then discard any stale pre-crash frame still in flight.
	Epoch uint64
	// Restore, when set, boots the node from a snapshot of a previous
	// incarnation's protocol state instead of a blank machine. The snapshot
	// must be for the same switch ID. Pair with a bumped Epoch.
	Restore *NodeSnapshot
}

// Node is one live switch: a core.Machine guarded by a mutex, driven by the
// goroutine cluster NewNode starts — a transport receive loop (decode,
// duplicate-suppress, store-and-forward re-flood, enqueue), an LSA loop
// (drain the inbox, run ReceiveLSA batches), an event loop (run
// EventHandler per injected local event), and wall-clock resync timers.
type Node struct {
	id    topo.SwitchID
	epoch uint64
	tr    Transport
	// ownedTr is tr's ownership-transfer fast path when it has one (cached
	// here so the per-frame forward path pays no interface assertion): the
	// last link of a relay fan-out moves the received buffer into the
	// destination queue instead of copying it.
	ownedTr   ownedSender
	neighbors []topo.SwitchID
	logf      func(format string, args ...any)
	tracer    core.Tracer
	obs       nodeObs

	// succ points to the node that replaced this one after a crash–restart.
	// Metric closures registered by the first incarnation follow the chain
	// (see nodeObs), so a shared registry keeps reporting the live machine
	// instead of a corpse.
	succ atomic.Pointer[Node]

	// mu serializes all access to machine (it is not concurrency-safe).
	// Lock order: mu before inMu — the machine calls PendingMC/SelfNudge
	// (which take inMu) while mu is held, and the LSA loop never acquires
	// mu while holding inMu.
	mu      sync.Mutex
	machine *core.Machine
	// fibDirty marks that the last machine call reported a forwarding
	// change (Host.ForwardingChanged); guarded by mu. Every machine call
	// site runs maybeRecompileLocked before releasing mu, so the swapped
	// table can never lag the control plane by more than the call that is
	// currently holding the lock.
	fibDirty bool

	// fib is the data plane's forwarding table, recompiled from machine
	// state on every forwarding change and swapped atomically — the forward
	// hot path (handleData/SendData) reads it without taking mu.
	fib         atomic.Pointer[fib.Table]
	fibCompiles atomic.Uint64
	dataHandler DataHandler
	dataHops    uint8
	dataSeq     atomic.Uint64
	fwd         forwardStripes

	// flight is the event ring ("black box"); hopRec the sampled per-hop
	// trace ring, kept separate so bursts of ordinary events cannot evict
	// the sparse sampled-path evidence. Both nil when disabled — every
	// Record call is nil-safe, so the hot path pays one branch each.
	flight      *obs.FlightRecorder
	hopRec      *obs.FlightRecorder
	sampleEvery int

	// inbox is the receive queue feeding the LSA loop: decoded LSAs and
	// resync messages. Unbounded — backpressure on the receive path would
	// deadlock flood storms (see ChanFabric).
	inMu     sync.Mutex
	inCond   *sync.Cond
	inbox    []any
	inClosed bool

	events chan core.LocalEvent

	// seq numbers this node's originated floods; seen suppresses duplicate
	// flood deliveries by (origin, seq) in O(origins) space (see seen.go —
	// this used to be an unbounded map that grew with every flood ever
	// delivered, a memory leak under soak).
	seq  atomic.Uint64
	seen seenTracker

	computeDelay time.Duration
	resyncAfter  time.Duration

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{}

	// busy counts in-flight protocol handlers; activity counts completed
	// units of work (frames handled, batches processed, events handled).
	// The harness polls both to detect quiescence.
	busy       atomic.Int64
	activity   atomic.Uint64
	decodeErrs atomic.Uint64
	installs   atomic.Uint64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewNode builds the node, binds it to tr, and starts its goroutines.
func NewNode(cfg NodeConfig, tr Transport) (*Node, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("rt: NodeConfig.Graph is required")
	}
	if tr == nil {
		return nil, fmt.Errorf("rt: nil Transport")
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = route.SPH{}
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	if cfg.DataHops <= 0 {
		cfg.DataHops = DefaultDataHops
	}
	if cfg.DataHops > lsa.MaxDataHops {
		cfg.DataHops = lsa.MaxDataHops
	}
	if cfg.Restore != nil && cfg.Restore.id != cfg.ID {
		return nil, fmt.Errorf("rt: snapshot of switch %d cannot restore switch %d", cfg.Restore.id, cfg.ID)
	}
	n := &Node{
		id:           cfg.ID,
		epoch:        cfg.Epoch,
		tr:           tr,
		neighbors:    cfg.Graph.Neighbors(cfg.ID),
		logf:         cfg.Logf,
		tracer:       cfg.Tracer,
		obs:          newNodeObs(cfg.Registry, int(cfg.ID)),
		events:       make(chan core.LocalEvent, cfg.EventBuffer),
		dataHandler:  cfg.DataHandler,
		dataHops:     uint8(cfg.DataHops),
		computeDelay: cfg.ComputeDelay,
		resyncAfter:  cfg.ResyncTimeout,
		timers:       make(map[*time.Timer]struct{}),
		closed:       make(chan struct{}),
	}
	if os, ok := tr.(ownedSender); ok {
		n.ownedTr = os
	}
	n.inCond = sync.NewCond(&n.inMu)
	if cfg.FlightRecords > 0 {
		n.flight = obs.NewFlightRecorder(cfg.FlightRecords)
		if cfg.SampleEvery > 0 {
			n.hopRec = obs.NewFlightRecorder(cfg.FlightRecords)
			n.sampleEvery = cfg.SampleEvery
		}
	}
	// Seed the flood sequence counter into this incarnation's epoch window.
	// 48 bits of counter per epoch is beyond any realistic uptime, and the
	// jump past every prior epoch is what invalidates stale pre-crash frames
	// at the receivers' duplicate-suppression windows.
	n.seq.Store(cfg.Epoch << 48)
	n.dataSeq.Store(cfg.Epoch << 48)
	if cfg.Restore != nil {
		if err := cfg.Restore.verify(); err != nil {
			return nil, err
		}
		// Adopt a copy bound to this node, leaving the snapshot reusable.
		n.machine = cfg.Restore.machine.CloneWith(n)
	} else {
		m, err := core.NewMachine(core.MachineConfig{
			ID:                  cfg.ID,
			Graph:               cfg.Graph,
			Algorithm:           cfg.Algorithm,
			Kinds:               cfg.Kinds,
			ReoptimizeThreshold: cfg.ReoptimizeThreshold,
			Resync:              cfg.ResyncTimeout > 0,
			ResyncMaxRounds:     cfg.ResyncMaxRounds,
		}, n)
		if err != nil {
			return nil, err
		}
		n.machine = m
	}
	n.registerMachineFuncs(cfg.Registry)
	// Compile the initial table before any goroutine can race on it: empty
	// for a blank boot, the restored trees for a snapshot warm restart.
	n.recompileFIBLocked()
	n.wg.Add(3)
	go n.recvLoop()
	go n.lsaLoop()
	go n.eventLoop()
	if cfg.Restore != nil {
		// Gap timers pending at snapshot time died with the old runtime.
		n.machine.ResumeTimers()
	}
	return n, nil
}

// ID returns the switch's network ID.
func (n *Node) ID() topo.SwitchID { return n.id }

// Epoch returns the node's restart epoch (zero for a first boot).
func (n *Node) Epoch() uint64 { return n.epoch }

// live follows the succession chain to the node currently serving this
// switch ID: n itself until a crash–restart replaces it.
func (n *Node) live() *Node {
	cur := n
	for {
		next := cur.succ.Load()
		if next == nil {
			return cur
		}
		cur = next
	}
}

// Reconcile starts heal reconciliation with neighbor nb: for every known
// connection, advertise our R to nb and ask for its log suffix beyond it.
// The cluster harness calls this on both ends of every boundary link when a
// partition heals.
func (n *Node) Reconcile(nb topo.SwitchID) {
	n.busy.Add(1)
	n.flight.Record(obs.RecReconcile, 0, uint32(n.id), 0, uint64(nb))
	n.mu.Lock()
	n.machine.ReconcileNeighbor(nb)
	n.maybeRecompileLocked()
	n.mu.Unlock()
	n.busy.Add(-1)
	n.activity.Add(1)
}

// RejoinFromNeighbors runs the cold-rejoin path after a crash–restart with
// no snapshot: ask every neighbor to replay everything about every
// connection, so the node rebuilds membership, stamps, and — critically —
// its own event counter before it originates anything new.
func (n *Node) RejoinFromNeighbors() {
	n.busy.Add(1)
	n.flight.Record(obs.RecRejoin, 0, uint32(n.id), 0, 0)
	n.mu.Lock()
	n.machine.RequestFullResync()
	n.maybeRecompileLocked()
	n.mu.Unlock()
	n.busy.Add(-1)
	n.activity.Add(1)
}

// Inject hands the node one local event (a join, leave, or link change),
// as the co-resident host application would. It blocks only if the event
// queue is full.
func (n *Node) Inject(ev core.LocalEvent) error {
	select {
	case <-n.closed:
		// Checked separately first: the select below could otherwise pick
		// the buffered send even on a closed node.
		return ErrClosed
	default:
	}
	select {
	case <-n.closed:
		return ErrClosed
	case n.events <- ev:
		return nil
	}
}

// Join injects a membership join for conn with the given role.
func (n *Node) Join(conn lsa.ConnID, role mctree.Role) error {
	return n.Inject(core.LocalEvent{Conn: conn, Kind: lsa.Join, Role: role})
}

// Leave injects a membership leave for conn.
func (n *Node) Leave(conn lsa.ConnID) error {
	return n.Inject(core.LocalEvent{Conn: conn, Kind: lsa.Leave})
}

// Connection returns a snapshot of the node's state for conn.
func (n *Node) Connection(conn lsa.ConnID) (core.Snapshot, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine.Connection(conn)
}

// Connections lists the node's live connections in ascending order.
func (n *Node) Connections() []lsa.ConnID {
	n.mu.Lock()
	out := n.machine.Connections()
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Metrics returns a copy of the node's protocol counters.
func (n *Node) Metrics() core.Metrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return *n.machine.Metrics()
}

// DecodeErrors counts frames dropped as undecodable (corruption, version
// skew, truncation).
func (n *Node) DecodeErrors() uint64 { return n.decodeErrs.Load() }

// FlightEnabled reports whether the node's flight recorder is on.
func (n *Node) FlightEnabled() bool { return n.flight != nil }

// FlightDoc snapshots the node's flight-recorder rings into the JSON
// document the /flightrec admin endpoint serves (and the offline path
// reconstructor consumes). Returns an empty document when the recorder is
// disabled. Never runs on the hot path.
func (n *Node) FlightDoc() *obs.FlightDoc {
	return &obs.FlightDoc{
		Switch:  uint32(n.id),
		Cap:     n.flight.Cap(),
		Written: n.flight.Written(),
		Events:  n.flight.Snapshot(),
		Hops:    n.hopRec.Snapshot(),
	}
}

// Close stops the goroutine cluster and detaches from the transport. It is
// idempotent and waits for the loops to exit.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.timerMu.Lock()
		for t := range n.timers {
			t.Stop()
		}
		n.timers = nil
		n.timerMu.Unlock()
		n.tr.Close() // unblocks recvLoop
		n.inMu.Lock()
		n.inClosed = true
		n.inCond.Broadcast()
		n.inMu.Unlock()
		n.wg.Wait()
	})
	return nil
}

// --- goroutine cluster ---

// batchTransport is the optional burst-receive fast path of Transport: one
// call drains the transport's whole backlog, amortizing the queue lock
// over the burst, and the consumer settles each frame's in-flight
// accounting with Release as it is handled. ChanFabric ports implement
// it; datagram transports (UDP) deliver one frame per call and take the
// plain path.
type batchTransport interface {
	RecvBatch(recycle [][]byte) ([][]byte, error)
	Release(n int)
}

// ownedSender is the optional ownership-transfer fast path of Transport:
// SendOwned moves buf — which must come from the frame pool and belong
// exclusively to the caller — into the destination without copying it. The
// callee consumes buf on every outcome (queued, dropped by partition or
// loss, destination closed); the caller must not touch it afterwards. The
// forward path uses it for the last link of a relay fan-out: the received
// frame was already patched in place for relaying, and every link but the
// last needs its own copy — the final one can hand the original over,
// saving one frame-sized copy plus a pool round-trip per relay hop.
type ownedSender interface {
	SendOwned(to topo.SwitchID, buf []byte) error
}

// recvLoop is the transport receive loop: decode each frame, suppress
// duplicate floods, re-forward (store-and-forward flooding), and enqueue
// the decoded payload for the LSA loop. Transports that can hand over a
// burst in one call get it drained under a single busy window.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	if bt, ok := n.tr.(batchTransport); ok {
		var batch [][]byte
		var err error
		for {
			batch, err = bt.RecvBatch(batch)
			if err != nil {
				return
			}
			// busy covers the burst so the idle check can't see a gap
			// between frames; each frame leaves the fabric's in-flight
			// count only once it has actually been handled, so InFlight
			// never undercounts (a drain loop waiting for zero stays exact)
			// and closed-loop senders see consumption as it happens rather
			// than in burst-sized steps.
			n.busy.Add(1)
			for _, buf := range batch {
				if !n.handleFrame(buf) {
					putBuf(buf)
				}
				bt.Release(1)
			}
			n.busy.Add(-1)
		}
	}
	for {
		buf, err := n.tr.Recv()
		if err != nil {
			return
		}
		if !n.handleFrame(buf) {
			// Safe to recycle: every payload decoder copies out of the frame,
			// so nothing enqueued for the LSA loop aliases buf.
			putBuf(buf)
		}
	}
}

// handleFrame processes one received frame. consumed reports that buf's
// ownership moved into the transport (the relay fast path) — the caller
// recycles the buffer only when it is false.
func (n *Node) handleFrame(buf []byte) (consumed bool) {
	defer n.activity.Add(1)
	var f lsa.Frame
	if err := lsa.DecodeFrameInto(&f, buf); err != nil {
		n.decodeErrs.Add(1)
		n.obs.decodeErrs.Inc()
		n.tracef("sw%d: drop frame: %v", n.id, err)
		return
	}
	switch f.Kind {
	case lsa.FrameFlood:
		if f.Origin == n.id {
			// Our own flood came back — either a forwarding loop (the relay
			// rule skips the origin, so this should not happen) or a frame
			// originated by a pre-crash incarnation of this switch. Neither
			// must re-enter the machine.
			n.obs.framesDup.Inc()
			return
		}
		if !n.markSeen(f.Origin, f.Seq) {
			n.obs.framesDup.Inc()
			return // duplicate delivery of a flood we already handled
		}
		n.obs.framesRecv.Inc()
		// Store-and-forward: relay to every neighbor except the one that
		// sent it here, rewriting the link-level From in place. Receivers
		// suppress the duplicates this simple rule creates in cycles.
		from := f.From
		if err := lsa.PatchFrameFrom(buf, n.id); err == nil {
			for _, nb := range n.neighbors {
				if nb == from || nb == f.Origin {
					continue
				}
				if err := n.tr.Send(nb, buf); err != nil {
					n.obs.sendErrs.Inc()
					n.tracef("sw%d: forward to %d: %v", n.id, nb, err)
				} else {
					n.obs.floodsFwd.Inc()
				}
			}
		}
		mc, nm, err := lsa.Unmarshal(f.Payload)
		if err != nil {
			n.decodeErrs.Add(1)
			n.obs.decodeErrs.Inc()
			n.tracef("sw%d: drop LSA from %d: %v", n.id, f.Origin, err)
			return
		}
		if mc != nil {
			n.obs.mcReceived(mc.Conn)
			n.enqueue(mc)
		} else {
			n.enqueue(nm)
		}
	case lsa.FrameResyncReq:
		req, err := lsa.DecodeResyncRequest(f.Payload)
		if err != nil {
			n.decodeErrs.Add(1)
			return
		}
		n.enqueue(req)
	case lsa.FrameResyncResp:
		resp, err := lsa.DecodeResyncResponse(f.Payload)
		if err != nil {
			n.decodeErrs.Add(1)
			return
		}
		n.enqueue(resp)
	case lsa.FrameData:
		return n.handleData(buf, &f)
	}
	return false
}

// markSeen records a flood identity, reporting whether it was new.
func (n *Node) markSeen(origin topo.SwitchID, seq uint64) bool {
	return n.seen.mark(origin, seq)
}

// SeenOrigins returns the number of flood origins the node's duplicate
// suppressor currently tracks — its total state, since each origin costs a
// fixed-size window (the soak test pins this as bounded).
func (n *Node) SeenOrigins() int { return n.seen.size() }

// enqueue appends one decoded message to the inbox and wakes the LSA loop.
func (n *Node) enqueue(msg any) {
	n.inMu.Lock()
	if !n.inClosed {
		n.inbox = append(n.inbox, msg)
		n.inCond.Signal()
	}
	n.inMu.Unlock()
}

// lsaLoop is the ReceiveLSA entity: it drains the inbox and hands each
// batch to the machine, mirroring the simulator's mailbox drain semantics.
func (n *Node) lsaLoop() {
	defer n.wg.Done()
	for {
		n.inMu.Lock()
		for len(n.inbox) == 0 && !n.inClosed {
			n.inCond.Wait()
		}
		if n.inClosed {
			n.inMu.Unlock()
			return
		}
		batch := n.inbox
		n.inbox = nil
		n.busy.Add(1) // before releasing inMu, so idle() can't see a gap
		n.inMu.Unlock()

		var start time.Time
		if n.obs.enabled() {
			start = time.Now()
		}
		n.flight.Record(obs.RecLSAApply, 0, uint32(n.id), 0, uint64(len(batch)))
		n.mu.Lock()
		n.machine.ReceiveBatch(nil, batch)
		n.maybeRecompileLocked()
		n.mu.Unlock()
		if n.obs.enabled() {
			n.obs.batchDur.Observe(time.Since(start).Seconds())
			n.obs.batches.Inc()
		}
		n.busy.Add(-1)
		n.activity.Add(uint64(len(batch)))
	}
}

// eventLoop is the EventHandler entity: one injected local event at a time.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case ev := <-n.events:
			n.busy.Add(1)
			var start time.Time
			if n.obs.enabled() {
				start = time.Now()
			}
			n.mu.Lock()
			n.machine.HandleLocalEvent(nil, ev)
			n.maybeRecompileLocked()
			n.mu.Unlock()
			if n.obs.enabled() {
				n.obs.eventDur.Observe(time.Since(start).Seconds())
				n.obs.eventsIn.Inc()
			}
			n.busy.Add(-1)
			n.activity.Add(1)
		}
	}
}

// idle reports whether the node has no queued or in-flight work. Racy by
// nature; the harness requires it to hold across a grace window.
func (n *Node) idle() bool {
	if n.busy.Load() != 0 || len(n.events) != 0 {
		return false
	}
	n.inMu.Lock()
	empty := len(n.inbox) == 0
	n.inMu.Unlock()
	return empty
}

// --- core.Host implementation ---

var _ core.Host = (*Node)(nil)

// flood originates one flood frame, encoded by appendPayload directly into a
// pooled buffer, and sends it to every neighbor.
func (n *Node) flood(appendPayload func([]byte) []byte) {
	seq := n.seq.Add(1)
	n.markSeen(n.id, seq) // a copy looping back must not be re-delivered
	buf := lsa.AppendFrameWith(getBuf(256), &lsa.Frame{
		Version: lsa.FrameVersion, Kind: lsa.FrameFlood,
		Origin: n.id, From: n.id, Seq: seq,
	}, appendPayload)
	n.obs.floodsOrig.Inc()
	for _, nb := range n.neighbors {
		if err := n.tr.Send(nb, buf); err != nil {
			n.obs.sendErrs.Inc()
			n.tracef("sw%d: flood to %d: %v", n.id, nb, err)
		}
	}
	putBuf(buf) // every transport copies on Send
}

// FloodMC implements core.Host.
func (n *Node) FloodMC(m *lsa.MC) {
	n.obs.mcFlooded(m.Conn)
	n.flood(m.AppendMarshal)
}

// FloodNonMC implements core.Host.
func (n *Node) FloodNonMC(nm *lsa.NonMC) { n.flood(nm.AppendMarshal) }

// SendUnicast implements core.Host: frame a resync message point-to-point.
func (n *Node) SendUnicast(to topo.SwitchID, payload any) {
	var appendPayload func([]byte) []byte
	var kind lsa.FrameKind
	switch v := payload.(type) {
	case *lsa.ResyncRequest:
		kind, appendPayload = lsa.FrameResyncReq, v.AppendMarshal
	case *lsa.ResyncResponse:
		kind, appendPayload = lsa.FrameResyncResp, v.AppendMarshal
	default:
		n.tracef("sw%d: unicast of unframeable %T dropped", n.id, payload)
		return
	}
	buf := lsa.AppendFrameWith(getBuf(256), &lsa.Frame{
		Version: lsa.FrameVersion, Kind: kind,
		Origin: n.id, From: n.id, Seq: n.seq.Add(1),
	}, appendPayload)
	n.obs.unicasts.Inc()
	if err := n.tr.Send(to, buf); err != nil {
		n.obs.sendErrs.Inc()
		n.tracef("sw%d: unicast to %d: %v", n.id, to, err)
	}
	putBuf(buf)
}

// HoldCompute implements core.Host: computation takes real time here, so
// this is a no-op unless a delay was configured to widen withdraw windows.
func (n *Node) HoldCompute(any) {
	if n.computeDelay > 0 {
		time.Sleep(n.computeDelay)
	}
}

// PendingMC implements core.Host: scan the inbox for an MC LSA for conn.
// Called with the machine lock held; takes only inMu (see the lock-order
// note on Node.mu).
func (n *Node) PendingMC(conn lsa.ConnID) bool {
	n.inMu.Lock()
	defer n.inMu.Unlock()
	for _, raw := range n.inbox {
		if m, ok := raw.(*lsa.MC); ok && m.Conn == conn {
			return true
		}
	}
	return false
}

// Neighbors implements core.Host. The returned slice is the node's own
// (fixed at construction, read-only by the Host contract); callers must not
// mutate it — copying here put an allocation on every resync round for
// nothing.
func (n *Node) Neighbors() []topo.SwitchID { return n.neighbors }

// FabricLinkChanged implements core.Host. The live fabric's connectivity
// belongs to the transport (real links fail by dropping traffic, not by
// being told), so a locally signaled link event only affects images and
// trees; control traffic keeps using the configured neighbor set.
func (n *Node) FabricLinkChanged(lsa.LinkChange) {}

// ArmResync implements core.Host: a wall-clock timer that re-enters the
// machine (serialized by mu) when it fires.
func (n *Node) ArmResync(conn lsa.ConnID) {
	select {
	case <-n.closed:
		return
	default:
	}
	var t *time.Timer
	t = time.AfterFunc(n.resyncAfter, func() {
		n.timerMu.Lock()
		if n.timers != nil {
			delete(n.timers, t)
		}
		n.timerMu.Unlock()
		select {
		case <-n.closed:
			return
		default:
		}
		n.obs.resyncTmr.Inc()
		n.busy.Add(1)
		n.flight.Record(obs.RecResyncFired, uint32(conn), uint32(n.id), 0, 0)
		n.mu.Lock()
		n.machine.ResyncFired(conn)
		n.maybeRecompileLocked()
		n.mu.Unlock()
		n.busy.Add(-1)
		n.activity.Add(1)
	})
	n.timerMu.Lock()
	if n.timers == nil {
		t.Stop() // closed concurrently
	} else {
		n.timers[t] = struct{}{}
	}
	n.timerMu.Unlock()
}

// SelfNudge implements core.Host: deliver a ResyncNudge through the inbox.
func (n *Node) SelfNudge(conn lsa.ConnID) {
	n.enqueue(core.ResyncNudge{Conn: conn})
}

// NoteInstall implements core.Host.
func (n *Node) NoteInstall() { n.installs.Add(1) }

// ForwardingChanged implements core.Host: mark the FIB stale. The machine
// calls this mid-mutation (mu held by the caller driving it), so the actual
// recompile is deferred to maybeRecompileLocked at the machine-call sites —
// one table swap per batch however many installs the batch performed.
func (n *Node) ForwardingChanged(lsa.ConnID) { n.fibDirty = true }

// Trace implements core.Host. Entries are stamped with wall-clock
// nanoseconds since the Unix epoch so spans collected from different nodes
// (or different daemon processes on one machine) share a comparable
// timeline.
func (n *Node) Trace(kind core.TraceKind, chain core.ChainID, conn lsa.ConnID, format string, args ...any) {
	if n.tracer == nil && n.logf == nil {
		return
	}
	detail := fmt.Sprintf(format, args...)
	if n.tracer != nil {
		n.tracer.Trace(core.TraceEntry{
			At:     time.Duration(time.Now().UnixNano()),
			Kind:   kind,
			Switch: n.id,
			Conn:   conn,
			Chain:  chain,
			Detail: detail,
		})
	}
	if n.logf != nil {
		n.logf("sw%d conn%d chain%s [%v] %s", n.id, conn, chain, kind, detail)
	}
}

// TraceEnabled implements core.Host.
func (n *Node) TraceEnabled() bool { return n.tracer != nil || n.logf != nil }

func (n *Node) tracef(format string, args ...any) {
	if n.logf != nil {
		n.logf(format, args...)
	}
}
