package rt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/topo"
)

// Topology is the shared deployment description every dgmcd daemon loads:
// the fabric graph plus each switch's UDP address. One file describes the
// whole fabric, so daemons cannot disagree about the network.
//
// The format is line-oriented; '#' starts a comment, blank lines are
// ignored:
//
//	switches <n>                      # first non-comment line
//	link <a> <b> <delay> [capacity]   # e.g. link 0 1 2ms 1.0
//	addr <id> <host:port>             # e.g. addr 0 127.0.0.1:7700
type Topology struct {
	Graph *topo.Graph
	Addrs map[topo.SwitchID]string
}

// MaxSwitches bounds the switch count a topology file may declare. The
// protocol carries O(n) vector timestamps in every MC LSA and the graph
// pre-allocates per-switch tables, so a declaration beyond this is a
// typo or hostile input, not a deployment — reject it before allocating.
const MaxSwitches = 1 << 16

// ParseTopology reads a topology description from r.
func ParseTopology(r io.Reader) (*Topology, error) {
	tf := &Topology{Addrs: make(map[topo.SwitchID]string)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) (*Topology, error) {
			return nil, fmt.Errorf("topology line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "switches":
			if tf.Graph != nil {
				return fail("duplicate switches directive")
			}
			if len(fields) != 2 {
				return fail("want: switches <n>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > MaxSwitches {
				return fail("invalid switch count %q (1..%d)", fields[1], MaxSwitches)
			}
			tf.Graph = topo.New(n)
		case "link":
			if tf.Graph == nil {
				return fail("link before switches directive")
			}
			if len(fields) != 4 && len(fields) != 5 {
				return fail("want: link <a> <b> <delay> [capacity]")
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fail("invalid link endpoints %q %q", fields[1], fields[2])
			}
			delay, err := time.ParseDuration(fields[3])
			if err != nil || delay <= 0 {
				return fail("invalid link delay %q", fields[3])
			}
			capacity := 1.0
			if len(fields) == 5 {
				capacity, err = strconv.ParseFloat(fields[4], 64)
				if err != nil || capacity <= 0 {
					return fail("invalid link capacity %q", fields[4])
				}
			}
			if err := tf.Graph.AddLink(topo.SwitchID(a), topo.SwitchID(b), delay, capacity); err != nil {
				return fail("%v", err)
			}
		case "addr":
			if tf.Graph == nil {
				return fail("addr before switches directive")
			}
			if len(fields) != 3 {
				return fail("want: addr <id> <host:port>")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= tf.Graph.NumSwitches() {
				return fail("invalid switch id %q", fields[1])
			}
			if _, dup := tf.Addrs[topo.SwitchID(id)]; dup {
				return fail("duplicate addr for switch %d", id)
			}
			tf.Addrs[topo.SwitchID(id)] = fields[2]
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tf.Graph == nil {
		return nil, fmt.Errorf("topology: missing switches directive")
	}
	if !tf.Graph.Connected() {
		return nil, fmt.Errorf("topology: graph is not connected")
	}
	return tf, nil
}

// LoadTopology reads a topology file from disk.
func LoadTopology(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tf, err := ParseTopology(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tf, nil
}

// NeighborAddrs returns the address table a daemon for switch id needs: one
// entry per direct neighbor. It errors if any neighbor lacks an address.
func (tf *Topology) NeighborAddrs(id topo.SwitchID) (map[topo.SwitchID]string, error) {
	if int(id) < 0 || int(id) >= tf.Graph.NumSwitches() {
		return nil, fmt.Errorf("topology: no switch %d", id)
	}
	out := make(map[topo.SwitchID]string)
	for _, nb := range tf.Graph.Neighbors(id) {
		addr, ok := tf.Addrs[nb]
		if !ok {
			return nil, fmt.Errorf("topology: neighbor %d of switch %d has no addr", nb, id)
		}
		out[nb] = addr
	}
	return out, nil
}

// Format renders tf back into the file format (canonical field order).
func (tf *Topology) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switches %d\n", tf.Graph.NumSwitches())
	for _, l := range tf.Graph.Links() {
		fmt.Fprintf(&b, "link %d %d %s %g\n", l.A, l.B, l.Delay, l.Capacity)
	}
	ids := make([]topo.SwitchID, 0, len(tf.Addrs))
	for id := range tf.Addrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "addr %d %s\n", id, tf.Addrs[id])
	}
	return b.String()
}
