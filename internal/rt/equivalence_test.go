package rt

import (
	"fmt"
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// scriptStep is one membership event of the fixed equivalence script.
type scriptStep struct {
	sw   topo.SwitchID
	conn lsa.ConnID
	join bool
	role mctree.Role
}

// equivalenceScript exercises joins, leaves, a connection that empties
// (dormancy) and is resurrected, and two interleaved connections.
var equivalenceScript = []scriptStep{
	{sw: 0, conn: 1, join: true, role: mctree.SenderReceiver},
	{sw: 3, conn: 1, join: true, role: mctree.SenderReceiver},
	{sw: 5, conn: 1, join: true, role: mctree.Receiver},
	{sw: 2, conn: 2, join: true, role: mctree.SenderReceiver},
	{sw: 4, conn: 2, join: true, role: mctree.SenderReceiver},
	{sw: 3, conn: 1, join: false},
	{sw: 7, conn: 1, join: true, role: mctree.SenderReceiver},
	{sw: 2, conn: 2, join: false},
	{sw: 4, conn: 2, join: false},                             // conn 2 empties: state goes dormant
	{sw: 6, conn: 2, join: true, role: mctree.SenderReceiver}, // and resurrects
	{sw: 1, conn: 2, join: true, role: mctree.SenderReceiver},
	{sw: 0, conn: 1, join: false},
}

// TestSimLiveEquivalence replays the same scripted event sequence through
// the discrete-event simulation kernel and through the live channel-fabric
// runtime, sequentialized with a barrier after every event (the simulator
// runs to quiescence; the live cluster settles). Both runtimes drive the
// same core.Machine, so the final per-switch snapshots must be identical —
// members, all three stamps, installed topology, and install counts.
func TestSimLiveEquivalence(t *testing.T) {
	g, err := topo.Waxman(topo.DefaultGenConfig(8, 99))
	if err != nil {
		t.Fatal(err)
	}

	// --- simulation side, barrier-driven ---
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g.Clone(), 2*time.Microsecond, flood.HopByHop)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDomain(k, core.Config{
		Net: net, Algorithm: route.SPH{}, EncodeLSAs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range equivalenceScript {
		if st.join {
			d.Join(k.Now(), st.sw, st.conn, st.role)
		} else {
			d.Leave(k.Now(), st.sw, st.conn)
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatalf("sim did not converge: %v", err)
	}

	// --- live side, barrier-driven ---
	c, err := NewCluster(ClusterConfig{Graph: g}, NewChanFabric(g.NumSwitches()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, st := range equivalenceScript {
		if st.join {
			err = c.Join(st.sw, st.conn, st.role)
		} else {
			err = c.Leave(st.sw, st.conn)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(25*time.Millisecond, 20*time.Second); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := c.CheckAgreement(); err != nil {
		t.Fatalf("live cluster did not converge: %v", err)
	}

	// --- compare final per-switch snapshots ---
	for _, conn := range []lsa.ConnID{1, 2} {
		for i := 0; i < g.NumSwitches(); i++ {
			sw := topo.SwitchID(i)
			simSnap, simOK := d.Switch(sw).Connection(conn)
			liveSnap, liveOK := c.Node(sw).Connection(conn)
			if simOK != liveOK {
				t.Fatalf("conn %d switch %d: sim has state=%v, live has state=%v", conn, sw, simOK, liveOK)
			}
			if !simOK {
				continue
			}
			if err := compareSnapshots(simSnap, liveSnap); err != nil {
				t.Errorf("conn %d switch %d: %v", conn, sw, err)
			}
		}
	}
}

func compareSnapshots(a, b core.Snapshot) error {
	if !a.Members.Equal(b.Members) {
		return fmt.Errorf("members differ: sim=%v live=%v", a.Members, b.Members)
	}
	if !a.R.Equal(b.R) {
		return fmt.Errorf("R differs: sim=%s live=%s", a.R, b.R)
	}
	if !a.E.Equal(b.E) {
		return fmt.Errorf("E differs: sim=%s live=%s", a.E, b.E)
	}
	if !a.C.Equal(b.C) {
		return fmt.Errorf("C differs: sim=%s live=%s", a.C, b.C)
	}
	if (a.Topology == nil) != (b.Topology == nil) ||
		(a.Topology != nil && !a.Topology.Equal(b.Topology)) {
		return fmt.Errorf("topologies differ: sim=%v live=%v", a.Topology, b.Topology)
	}
	if a.Installs != b.Installs {
		return fmt.Errorf("install counts differ: sim=%d live=%d", a.Installs, b.Installs)
	}
	return nil
}
