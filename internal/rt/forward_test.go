package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgmc/internal/fib"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// stubTransport satisfies Transport with an atomic send counter and a Recv
// that blocks until Close, so a node's goroutine cluster idles while tests
// drive handleData/SendData directly.
type stubTransport struct {
	sends  atomic.Uint64
	closed chan struct{}
	once   sync.Once
}

func newStubTransport() *stubTransport {
	return &stubTransport{closed: make(chan struct{})}
}

func (s *stubTransport) Send(topo.SwitchID, []byte) error { s.sends.Add(1); return nil }
func (s *stubTransport) Recv() ([]byte, error)            { <-s.closed; return nil, ErrClosed }
func (s *stubTransport) Close() error {
	s.once.Do(func() { close(s.closed) })
	return nil
}

const fwdConn = lsa.ConnID(1)

// fwdNode boots switch id of a 6-switch line over a stub transport and
// installs a hand-built FIB so the forward path is exercised in isolation
// from the control plane.
func fwdNode(t *testing.T, id topo.SwitchID, kind mctree.Kind, members mctree.Members, tr *mctree.Tree, dh DataHandler) (*Node, *stubTransport) {
	return fwdNodeWith(t, id, kind, members, tr, dh, nil)
}

// fwdNodeWith is fwdNode with a NodeConfig hook (recorder, sampling,
// registry) applied before boot.
func fwdNodeWith(t *testing.T, id topo.SwitchID, kind mctree.Kind, members mctree.Members, tr *mctree.Tree, dh DataHandler, mutate func(*NodeConfig)) (*Node, *stubTransport) {
	t.Helper()
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	st := newStubTransport()
	cfg := NodeConfig{ID: id, Graph: g, DataHandler: dh}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	b := fib.NewBuilder(id, g)
	b.Add(fwdConn, kind, members, tr)
	n.fib.Store(b.Build())
	return n, st
}

func fwdTree(kind mctree.Kind) *mctree.Tree {
	tr := mctree.New(kind)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	return tr
}

// dataBuf encodes one payload frame as it would arrive from switch `from`.
func dataBuf(conn lsa.ConnID, src, from topo.SwitchID, seq uint64, hops uint8, payload []byte) []byte {
	d := lsa.DataFrame{Conn: conn, Src: src, Seq: seq, Hops: hops, Payload: payload}
	return lsa.AppendDataFrame(nil, &d, from)
}

// TestHandleDataZeroAlloc pins the steady-state forward path — frame decode,
// FIB lookup, local delivery, in-place patch, relay fan-out — at zero heap
// allocations per frame. The root-level alloc gate re-checks the same budget
// from outside the package; this one runs on the real Node.
func TestHandleDataZeroAlloc(t *testing.T) {
	var delivered atomic.Uint64
	members := mctree.Members{0: mctree.SenderReceiver, 1: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	n, st := fwdNode(t, 1, mctree.Symmetric, members, fwdTree(mctree.Symmetric),
		func(conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			delivered.Add(uint64(len(payload)))
		})

	const hops = 8
	buf := dataBuf(fwdConn, 0, 0, 7, hops, make([]byte, 32))
	var f lsa.Frame
	allocs := testing.AllocsPerRun(200, func() {
		// Each pass relays the frame, decrementing the in-place hop budget;
		// restore From and Hops so every iteration sees the same packet.
		if err := lsa.PatchDataForward(buf, 0, hops); err != nil {
			t.Fatal(err)
		}
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			t.Fatal(err)
		}
		n.handleData(buf, &f)
	})
	if allocs != 0 {
		t.Fatalf("handleData allocates %.1f times per frame, budget is 0", allocs)
	}
	s := n.ForwardStats()
	if s.Delivered == 0 || delivered.Load() == 0 {
		t.Fatal("member switch never delivered to its application")
	}
	if s.Forwarded == 0 || st.sends.Load() != s.Forwarded {
		t.Fatalf("relay accounting wrong: forwarded=%d, transport sends=%d", s.Forwarded, st.sends.Load())
	}
	if s.Drops() != 0 {
		t.Fatalf("unexpected drops: %+v", s)
	}
}

// TestHandleDataDropTaxonomy walks each drop reason through the real path.
func TestHandleDataDropTaxonomy(t *testing.T) {
	members := mctree.Members{0: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	n, _ := fwdNode(t, 1, mctree.Symmetric, members, fwdTree(mctree.Symmetric), nil)

	feed := func(buf []byte) {
		var f lsa.Frame
		if err := lsa.DecodeFrameInto(&f, buf); err != nil {
			t.Fatal(err)
		}
		n.handleData(buf, &f)
	}

	feed(dataBuf(fwdConn, 1, 0, 1, 8, nil)) // own frame looped back
	if s := n.ForwardStats(); s.DropLoop != 1 {
		t.Fatalf("loop drop not counted: %+v", s)
	}
	feed(dataBuf(lsa.ConnID(99), 0, 0, 1, 8, nil)) // no FIB entry
	if s := n.ForwardStats(); s.DropNoEntry != 1 {
		t.Fatalf("no-entry drop not counted: %+v", s)
	}
	feed(dataBuf(fwdConn, 0, 0, 2, 0, nil)) // hop budget exhausted mid-tree
	if s := n.ForwardStats(); s.DropHops != 1 {
		t.Fatalf("hop-budget drop not counted: %+v", s)
	}

	// Off-tree switch of a symmetric MC: no fan-out, no contact route.
	n4, _ := fwdNode(t, 4, mctree.Symmetric, members, fwdTree(mctree.Symmetric), nil)
	buf := dataBuf(fwdConn, 0, 3, 3, 8, nil)
	var f lsa.Frame
	if err := lsa.DecodeFrameInto(&f, buf); err != nil {
		t.Fatal(err)
	}
	n4.handleData(buf, &f)
	if s := n4.ForwardStats(); s.DropNoRoute != 1 {
		t.Fatalf("no-route drop not counted: %+v", s)
	}

	// A leaf member whose only tree neighbor sent the frame terminates
	// normally — that is delivery, not a drop, even with zero hops left.
	n0, _ := fwdNode(t, 0, mctree.Symmetric, members, fwdTree(mctree.Symmetric), nil)
	buf = dataBuf(fwdConn, 2, 1, 4, 0, nil)
	if err := lsa.DecodeFrameInto(&f, buf); err != nil {
		t.Fatal(err)
	}
	n0.handleData(buf, &f)
	if s := n0.ForwardStats(); s.Delivered != 1 || s.Drops() != 0 {
		t.Fatalf("leaf termination misclassified: %+v", s)
	}
}

// TestSendDataRules checks origination policy: send entitlement per MC kind,
// contact-route origination from off-tree switches, and the closed-node path.
func TestSendDataRules(t *testing.T) {
	asym := mctree.Members{0: mctree.Sender, 2: mctree.Receiver}

	// A receiver of an asymmetric MC may not originate.
	n2, _ := fwdNode(t, 2, mctree.Asymmetric, asym, fwdTree(mctree.Asymmetric), nil)
	if _, err := n2.SendData(fwdConn, []byte("x")); err != ErrNotSender {
		t.Fatalf("receiver SendData = %v, want ErrNotSender", err)
	}
	if _, err := n2.SendData(lsa.ConnID(99), []byte("x")); err != ErrNoRoute {
		t.Fatalf("unknown conn SendData = %v, want ErrNoRoute", err)
	}

	// The registered sender fans out over the tree (one neighbor at a leaf).
	n0, st0 := fwdNode(t, 0, mctree.Asymmetric, asym, fwdTree(mctree.Asymmetric), nil)
	seq1, err := n0.SendData(fwdConn, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := n0.SendData(fwdConn, []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq1 {
		t.Fatalf("data seq not increasing: %d then %d", seq1, seq2)
	}
	if st0.sends.Load() != 2 {
		t.Fatalf("leaf origination sent %d frames, want 2", st0.sends.Load())
	}
	if s := n0.ForwardStats(); s.Originated != 2 {
		t.Fatalf("originated = %d, want 2", s.Originated)
	}

	// An off-tree switch of a receiver-only MC originates toward its contact.
	ro := mctree.Members{0: mctree.Receiver, 2: mctree.Receiver}
	n5, st5 := fwdNode(t, 5, mctree.ReceiverOnly, ro, fwdTree(mctree.ReceiverOnly), nil)
	if _, err := n5.SendData(fwdConn, []byte("via contact")); err != nil {
		t.Fatal(err)
	}
	if st5.sends.Load() != 1 {
		t.Fatalf("contact origination sent %d frames, want 1", st5.sends.Load())
	}

	n5.Close()
	if _, err := n5.SendData(fwdConn, []byte("late")); err != ErrClosed {
		t.Fatalf("SendData after Close = %v, want ErrClosed", err)
	}
}

// TestFIBTracksControlPlane runs a real 3-switch cluster and requires the
// atomic tables to follow joins and leaves: entries appear on install,
// update on membership change, and the data path delivers end to end.
func TestFIBTracksControlPlane(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	type rx struct {
		at, src topo.SwitchID
		payload string
	}
	var mu sync.Mutex
	var got []rx
	c, err := NewCluster(ClusterConfig{
		Graph: g, ResyncTimeout: resyncFast,
		DataHandler: func(at topo.SwitchID, conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			mu.Lock()
			got = append(got, rx{at, src, string(payload)})
			mu.Unlock()
		},
	}, NewChanFabric(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := lsa.ConnID(1)
	for _, sw := range []topo.SwitchID{0, 2} {
		if err := c.Join(sw, conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.FIB().Lookup(conn) == nil {
			t.Fatalf("switch %d has no FIB entry after install", n.ID())
		}
		if n.FIBCompiles() == 0 {
			t.Fatalf("switch %d never recompiled its FIB", n.ID())
		}
	}

	if _, err := c.SendData(0, conn, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(50*time.Millisecond, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(got)
	ok := n == 1 && got[0] == rx{2, 0, "ping"}
	mu.Unlock()
	if !ok {
		t.Fatalf("delivery = %v, want exactly one at switch 2 from 0", got)
	}

	// After the only other member leaves, the sender's table must refuse
	// origination into the now-memberless group.
	if err := c.Leave(2, conn); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	e := c.Node(0).FIB().Lookup(conn)
	if e == nil || len(e.Neighbors) != 0 {
		t.Fatalf("sender entry after leave = %+v, want memberless self-entry", e)
	}
}
