package rt

import (
	"sync"

	"dgmc/internal/topo"
)

// Duplicate-flood suppression used to be an unbounded map keyed by
// (origin, seq): every flood ever delivered left a permanent entry, so a
// long-lived daemon leaked a few words per network-wide flood forever. The
// tracker below exploits the structure of the traffic instead — each origin
// numbers its floods with a monotonically increasing sequence — and keeps,
// per origin, a "floor" below which everything has been seen plus a bounded
// bitmap window of recent sequence numbers above it. State is O(origins),
// i.e. bounded by the network size, no matter how many floods pass through.
//
// Sequences more than seenWindow behind an origin's newest are reported as
// duplicates even if never delivered (the window has slid past them). That
// requires reordering of more than seenWindow frames from one origin to
// misfire — far beyond anything a real fabric produces — and the protocol's
// gap resync recovers the lost LSA contents regardless: frame-level
// suppression is an optimisation, not the correctness layer.

// seenWindow is the per-origin window width in sequence numbers (bits).
const seenWindow = 1024

const seenWords = seenWindow / 64

// seenWin tracks one origin: floor is the highest sequence such that every
// sequence ≤ floor counts as seen; ring holds bits for (floor, floor+seenWindow],
// indexed by seq mod seenWindow.
type seenWin struct {
	floor uint64
	ring  [seenWords]uint64
}

func (w *seenWin) test(seq uint64) bool {
	i := seq % seenWindow
	return w.ring[i/64]&(1<<(i%64)) != 0
}

func (w *seenWin) set(seq uint64) {
	i := seq % seenWindow
	w.ring[i/64] |= 1 << (i % 64)
}

func (w *seenWin) clearBit(seq uint64) {
	i := seq % seenWindow
	w.ring[i/64] &^= 1 << (i % 64)
}

// mark records seq, reporting whether it was new.
func (w *seenWin) mark(seq uint64) bool {
	if seq <= w.floor {
		return false
	}
	if seq > w.floor+seenWindow {
		// Slide the window so it ends at seq; sequences falling below the
		// new floor count as seen from here on.
		newFloor := seq - seenWindow
		if newFloor >= w.floor+seenWindow {
			w.ring = [seenWords]uint64{} // disjoint windows: drop everything
		} else {
			for f := w.floor + 1; f <= newFloor; f++ {
				w.clearBit(f)
			}
		}
		w.floor = newFloor
	}
	if w.test(seq) {
		return false
	}
	w.set(seq)
	// Advance the floor over the contiguous prefix, freeing window space.
	for w.test(w.floor + 1) {
		w.clearBit(w.floor + 1)
		w.floor++
	}
	return true
}

// seenTracker is the node-level duplicate suppressor: one window per origin.
type seenTracker struct {
	mu      sync.Mutex
	origins map[topo.SwitchID]*seenWin
}

// mark records (origin, seq), reporting whether it was new.
func (t *seenTracker) mark(origin topo.SwitchID, seq uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.origins[origin]
	if w == nil {
		if t.origins == nil {
			t.origins = make(map[topo.SwitchID]*seenWin)
		}
		w = new(seenWin)
		t.origins[origin] = w
	}
	return w.mark(seq)
}

// size returns the number of origins tracked — the suppression state's
// footprint in windows (each a fixed 136 bytes), exported as a gauge so a
// soak can watch it stay flat.
func (t *seenTracker) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.origins)
}
