// Package model is an exhaustive state-space explorer for the D-GMC
// protocol. The paper omits its correctness proofs (§3.6, deferring to
// technical report MSU-CPS-95-8); this package substitutes machine-checked
// evidence on small instances: for a given scenario (a set of membership
// events), it enumerates *every* interleaving of event handling, topology
// computation completion, and per-switch LSA delivery, and verifies that
// every reachable terminal state is convergent:
//
//   - all switches hold identical R = E = C stamps equal to the total
//     event vector,
//   - all member lists agree,
//   - no switch is left owing the network a proposal (the makeProposal
//     flag cannot be set with R > C once the network is quiet — no "lost
//     wakeup"),
//   - all installed topologies share the same basis (and the computation
//     algorithm being deterministic, therefore the same tree).
//
// The model abstracts exactly two things from the implementation in
// internal/core: topology *content* is represented by its basis stamp
// (a deterministic algorithm makes the tree a function of the member list
// known at the basis), and ReceiveLSA processes one advertisement per
// activation (a batch of one — a refinement of the mailbox-drain loop).
// Computation time is modelled as a nondeterministic interval: a pending
// computation can complete at any point relative to other transitions,
// which covers every Tc-induced race of the timed implementation.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// MaxSwitches bounds the model size (stamps are fixed-size arrays).
const MaxSwitches = 4

// EventKind is a membership event in a scenario.
type EventKind uint8

const (
	// Join adds the switch to the connection.
	Join EventKind = iota + 1
	// Leave removes it.
	Leave
)

// Event is one scenario event: a membership change at a switch. Events at
// the same switch are handled in scenario order; across switches, all
// interleavings are explored.
type Event struct {
	Switch int
	Kind   EventKind
}

// stamp is a fixed-size vector timestamp (value type: usable as map key).
type stamp [MaxSwitches]uint8

func (s stamp) geq(o stamp, n int) bool {
	for i := 0; i < n; i++ {
		if s[i] < o[i] {
			return false
		}
	}
	return true
}

func (s stamp) max(o stamp, n int) stamp {
	for i := 0; i < n; i++ {
		if o[i] > s[i] {
			s[i] = o[i]
		}
	}
	return s
}

func (s stamp) greater(o stamp, n int) bool { return s.geq(o, n) && s != o }

// members is a bitmask of member switches.
type members uint8

func (m members) with(x int) members    { return m | 1<<x }
func (m members) without(x int) members { return m &^ (1 << x) }

// pending describes an in-progress topology computation at one protocol
// entity (the snapshot old_R plus, for EventHandler, the event to flood).
type pending struct {
	active bool
	oldR   stamp
	// ev and role apply to EventHandler computations only.
	ev EventKind
}

// swState is one switch's protocol state.
type swState struct {
	r, e, c      stamp
	members      members
	makeProposal bool
	evComp       pending // EventHandler's in-flight computation
	lsaComp      pending // ReceiveLSA's in-flight computation
	nextEvent    int     // index into the scenario events of this switch
}

// msg is an in-flight MC LSA with its undelivered destinations.
type msg struct {
	src      int
	ev       EventKind // 0 = triggered (none)
	proposal bool
	stamp    stamp
	dests    members
}

// state is a global protocol configuration.
type state struct {
	sw  [MaxSwitches]swState
	net []msg
}

// key canonicalizes the state for memoization. In-flight messages are
// stably sorted by source: cross-source ordering is immaterial, while
// same-source ordering is significant (flooding is per-origin FIFO) and is
// preserved by the stable sort.
func (st *state) key(n int) string {
	buf := make([]byte, 0, 16+n*(3*MaxSwitches+5)+len(st.net)*(MaxSwitches+4))
	bools := func(b bool) byte {
		if b {
			return 1
		}
		return 0
	}
	for i := 0; i < n; i++ {
		s := &st.sw[i]
		buf = append(buf, s.r[:]...)
		buf = append(buf, s.e[:]...)
		buf = append(buf, s.c[:]...)
		buf = append(buf, byte(s.members),
			bools(s.makeProposal)|bools(s.evComp.active)<<1|bools(s.lsaComp.active)<<2,
			byte(s.evComp.ev), byte(s.nextEvent))
		buf = append(buf, s.evComp.oldR[:]...)
		buf = append(buf, s.lsaComp.oldR[:]...)
	}
	order := make([]int, len(st.net))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return st.net[order[a]].src < st.net[order[b]].src })
	buf = append(buf, 0xFF)
	for _, i := range order {
		m := st.net[i]
		buf = append(buf, byte(m.src), byte(m.ev), bools(m.proposal), byte(m.dests))
		buf = append(buf, m.stamp[:]...)
	}
	return string(buf)
}

func (st *state) clone() state {
	c := *st
	c.net = make([]msg, len(st.net))
	copy(c.net, st.net)
	return c
}

// Result summarizes an exhaustive exploration.
type Result struct {
	// StatesExplored counts distinct states visited.
	StatesExplored int
	// TerminalStates counts distinct quiescent states reached.
	TerminalStates int
	// MaxInFlight is the largest number of concurrently in-flight LSAs.
	MaxInFlight int
}

// Violation describes a non-convergent terminal state.
type Violation struct {
	Reason string
	Trace  []string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("model: %s\ntrace:\n  %s", v.Reason, strings.Join(v.Trace, "\n  "))
}

// Checker explores the protocol's state space for one scenario.
type Checker struct {
	// N is the number of switches (2..MaxSwitches).
	N int
	// Scenario lists the membership events. Events at the same switch
	// occur in listing order; everything else is unordered.
	Scenario []Event
	// MaxStates aborts runaway explorations (default 5,000,000).
	MaxStates int

	// sabotageNoInconsistencyCheck disables Figure 5's line-15 rule (the
	// detection of proposals unaware of local events). Used only by tests
	// to demonstrate that the convergence assertions catch real protocol
	// bugs (mutation testing of the checker itself).
	sabotageNoInconsistencyCheck bool

	perSwitch [MaxSwitches][]Event
	memo      map[string]bool
	result    Result
}

// Check runs the exhaustive exploration. It returns the exploration
// statistics, or a *Violation error describing the first non-convergent
// terminal state found (with a transition trace), or a limit error.
func (c *Checker) Check() (Result, error) {
	if c.N < 2 || c.N > MaxSwitches {
		return Result{}, fmt.Errorf("model: N must be in [2,%d], got %d", MaxSwitches, c.N)
	}
	for i := range c.perSwitch {
		c.perSwitch[i] = nil
	}
	for _, e := range c.Scenario {
		if e.Switch < 0 || e.Switch >= c.N {
			return Result{}, fmt.Errorf("model: event at switch %d out of range", e.Switch)
		}
		if e.Kind != Join && e.Kind != Leave {
			return Result{}, fmt.Errorf("model: invalid event kind %d", e.Kind)
		}
		c.perSwitch[e.Switch] = append(c.perSwitch[e.Switch], e)
	}
	if c.MaxStates == 0 {
		c.MaxStates = 5_000_000
	}
	c.memo = make(map[string]bool)
	c.result = Result{}
	var st state
	if err := c.explore(&st, nil); err != nil {
		return c.result, err
	}
	return c.result, nil
}

// explore performs memoized DFS over all transitions.
func (c *Checker) explore(st *state, trace []string) error {
	k := st.key(c.N)
	if c.memo[k] {
		return nil
	}
	c.memo[k] = true
	c.result.StatesExplored++
	if c.result.StatesExplored > c.MaxStates {
		return fmt.Errorf("model: state limit %d exceeded", c.MaxStates)
	}
	if len(st.net) > c.result.MaxInFlight {
		c.result.MaxInFlight = len(st.net)
	}

	progressed := false
	step := func(desc string, next state) error {
		progressed = true
		// Full-capacity slice forces a copy so sibling branches cannot
		// alias each other's trace entries.
		return c.explore(&next, append(trace[:len(trace):len(trace)], desc))
	}

	for x := 0; x < c.N; x++ {
		sw := &st.sw[x]
		// Transition 1: start the next local event (EventHandler, Fig. 4
		// up to the computation decision). Requires the entity idle.
		if !sw.evComp.active && sw.nextEvent < len(c.perSwitch[x]) {
			next := st.clone()
			ev := c.perSwitch[x][sw.nextEvent]
			c.startEvent(&next, x, ev.Kind)
			if err := step(fmt.Sprintf("event %v@%d", ev.Kind, x), next); err != nil {
				return err
			}
		}
		// Transition 2: complete EventHandler's computation (Fig. 4 lines
		// 6-14).
		if sw.evComp.active {
			next := st.clone()
			c.finishEventCompute(&next, x)
			if err := step(fmt.Sprintf("ev-compute@%d", x), next); err != nil {
				return err
			}
		}
		// Transition 4: complete ReceiveLSA's computation (Fig. 5 lines
		// 22-31).
		if sw.lsaComp.active {
			next := st.clone()
			c.finishLSACompute(&next, x)
			if err := step(fmt.Sprintf("lsa-compute@%d", x), next); err != nil {
				return err
			}
		}
	}
	// Transition 3: deliver an in-flight LSA to one of its remaining
	// destinations whose ReceiveLSA entity is idle. Flooding is per-origin
	// FIFO (advertisements from one switch follow the same paths, and OSPF
	// sequence numbers would reject reordering), so a message is
	// deliverable to y only if no earlier message from the same source
	// still awaits delivery at y.
	for mi := range st.net {
		for y := 0; y < c.N; y++ {
			if st.net[mi].dests&(1<<y) == 0 || st.sw[y].lsaComp.active {
				continue
			}
			if c.earlierSameSourcePending(st, mi, y) {
				continue
			}
			next := st.clone()
			c.deliver(&next, mi, y)
			if err := step(fmt.Sprintf("deliver %d->%d", st.net[mi].src, y), next); err != nil {
				return err
			}
		}
	}

	if !progressed {
		// Some destination may be blocked only by a busy lsaComp — that is
		// not terminal, but every such state also has the lsa-compute
		// transition enabled, so reaching here means true quiescence.
		c.result.TerminalStates++
		if v := c.verify(st); v != nil {
			v.Trace = append(trace[:len(trace):len(trace)], "terminal")
			return v
		}
	}
	return nil
}

// startEvent is Figure 4 lines 1-2 (+16-17 when deferring).
func (c *Checker) startEvent(st *state, x int, kind EventKind) {
	sw := &st.sw[x]
	sw.nextEvent++
	sw.r[x]++
	sw.e[x]++
	if kind == Join {
		sw.members = sw.members.with(x)
	} else {
		sw.members = sw.members.without(x)
	}
	if sw.r.geq(sw.e, c.N) {
		sw.evComp = pending{active: true, oldR: sw.r, ev: kind}
		return
	}
	c.flood(st, x, msg{src: x, ev: kind, stamp: sw.r})
	sw.makeProposal = true
}

// finishEventCompute is Figure 4 lines 6-14.
func (c *Checker) finishEventCompute(st *state, x int) {
	sw := &st.sw[x]
	comp := sw.evComp
	sw.evComp = pending{}
	if sw.r == comp.oldR {
		c.flood(st, x, msg{src: x, ev: comp.ev, proposal: true, stamp: comp.oldR})
		sw.c = comp.oldR
		sw.makeProposal = false
		return
	}
	c.flood(st, x, msg{src: x, ev: comp.ev, stamp: comp.oldR})
	sw.makeProposal = true
}

// deliver is Figure 5 lines 3-19 for a single advertisement.
func (c *Checker) deliver(st *state, mi, y int) {
	m := st.net[mi]
	st.net[mi].dests = m.dests.without(y)
	if st.net[mi].dests == 0 {
		st.net = append(st.net[:mi], st.net[mi+1:]...)
	}
	sw := &st.sw[y]
	if m.ev != 0 {
		sw.r[m.src]++
		if m.ev == Join {
			sw.members = sw.members.with(m.src)
		} else {
			sw.members = sw.members.without(m.src)
		}
	}
	sw.e = sw.e.max(m.stamp, c.N)
	if m.stamp.geq(sw.e, c.N) && m.proposal {
		sw.c = m.stamp
		sw.makeProposal = false
	} else if !c.sabotageNoInconsistencyCheck && sw.r[y] > m.stamp[y] {
		sw.makeProposal = true
	}
	// Line 19.
	if sw.makeProposal && sw.r.geq(sw.e, c.N) && sw.r.greater(sw.c, c.N) {
		sw.lsaComp = pending{active: true, oldR: sw.r}
	}
}

// finishLSACompute is Figure 5 lines 22-31.
func (c *Checker) finishLSACompute(st *state, y int) {
	sw := &st.sw[y]
	comp := sw.lsaComp
	sw.lsaComp = pending{}
	if sw.r == comp.oldR && !c.pendingTo(st, y) {
		c.flood(st, y, msg{src: y, proposal: true, stamp: comp.oldR})
		sw.e = sw.r
		sw.c = comp.oldR
		sw.makeProposal = false
	}
	// Otherwise: withdraw. makeProposal stays set; the queued deliveries
	// that caused the withdrawal re-trigger ReceiveLSA.
}

// earlierSameSourcePending reports whether a message older than st.net[mi]
// from the same source still has y among its destinations (the per-origin
// FIFO constraint). st.net is kept in flood order.
func (c *Checker) earlierSameSourcePending(st *state, mi, y int) bool {
	for j := 0; j < mi; j++ {
		if st.net[j].src == st.net[mi].src && st.net[j].dests&(1<<y) != 0 {
			return true
		}
	}
	return false
}

// pendingTo reports whether some in-flight LSA still awaits delivery at y
// (the model's mailbox-occupancy check, Figure 5 line 22).
func (c *Checker) pendingTo(st *state, y int) bool {
	for _, m := range st.net {
		if m.dests&(1<<y) != 0 {
			return true
		}
	}
	return false
}

// flood enqueues an LSA to every switch except the origin.
func (c *Checker) flood(st *state, origin int, m msg) {
	var dests members
	for i := 0; i < c.N; i++ {
		if i != origin {
			dests = dests.with(i)
		}
	}
	m.dests = dests
	st.net = append(st.net, m)
}

// verify checks the convergence assertions in a terminal state.
func (c *Checker) verify(st *state) *Violation {
	// Expected totals: one component per event origin.
	var total stamp
	for i := 0; i < c.N; i++ {
		total[i] = uint8(len(c.perSwitch[i]))
	}
	ref := st.sw[0]
	for x := 0; x < c.N; x++ {
		sw := st.sw[x]
		if sw.r != total {
			return &Violation{Reason: fmt.Sprintf("switch %d: R=%v, want total %v", x, sw.r, total)}
		}
		if sw.e != sw.r {
			return &Violation{Reason: fmt.Sprintf("switch %d: E=%v != R=%v at quiescence", x, sw.e, sw.r)}
		}
		if sw.c != sw.r {
			return &Violation{Reason: fmt.Sprintf("switch %d: C=%v != R=%v — stale topology basis", x, sw.c, sw.r)}
		}
		// makeProposal may legitimately remain set at quiescence when the
		// obligation was satisfied by someone else's proposal — Figure 5
		// line 19's R > C guard ignores the stale flag. A violation is an
		// UNSERVED obligation: flag set while the installed basis lags.
		if sw.makeProposal && sw.r.greater(sw.c, c.N) {
			return &Violation{Reason: fmt.Sprintf("switch %d: makeProposal set with C=%v < R=%v (lost wakeup)", x, sw.c, sw.r)}
		}
		if sw.members != ref.members {
			return &Violation{Reason: fmt.Sprintf("switch %d: members %b != switch 0's %b", x, sw.members, ref.members)}
		}
		if sw.c != ref.c {
			return &Violation{Reason: fmt.Sprintf("switch %d: topology basis %v != switch 0's %v", x, sw.c, ref.c)}
		}
		if sw.evComp.active || sw.lsaComp.active {
			return &Violation{Reason: fmt.Sprintf("switch %d: computation active in terminal state", x)}
		}
	}
	return nil
}
