package model

import (
	"strings"
	"testing"
)

func check(t *testing.T, n int, scenario []Event) Result {
	t.Helper()
	c := &Checker{N: n, Scenario: scenario}
	res, err := c.Check()
	if err != nil {
		t.Fatalf("n=%d scenario=%v: %v", n, scenario, err)
	}
	if res.TerminalStates == 0 {
		t.Fatalf("n=%d scenario=%v: no terminal state reached", n, scenario)
	}
	t.Logf("n=%d events=%d: %d states, %d terminals, %d max in-flight",
		n, len(scenario), res.StatesExplored, res.TerminalStates, res.MaxInFlight)
	return res
}

func TestCheckerValidation(t *testing.T) {
	if _, err := (&Checker{N: 1}).Check(); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := (&Checker{N: 5}).Check(); err == nil {
		t.Error("N beyond MaxSwitches accepted")
	}
	if _, err := (&Checker{N: 2, Scenario: []Event{{Switch: 7, Kind: Join}}}).Check(); err == nil {
		t.Error("out-of-range event switch accepted")
	}
	if _, err := (&Checker{N: 2, Scenario: []Event{{Switch: 0, Kind: 0}}}).Check(); err == nil {
		t.Error("invalid event kind accepted")
	}
}

func TestEmptyScenarioIsTriviallyConvergent(t *testing.T) {
	res := check(t, 2, nil)
	if res.StatesExplored != 1 || res.TerminalStates != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestSingleJoinAllInterleavings(t *testing.T) {
	check(t, 2, []Event{{Switch: 0, Kind: Join}})
	check(t, 3, []Event{{Switch: 0, Kind: Join}})
	check(t, 4, []Event{{Switch: 2, Kind: Join}})
}

func TestConcurrentJoinsConverge(t *testing.T) {
	// The paper's central claim: conflicting concurrent events reconcile.
	check(t, 2, []Event{{Switch: 0, Kind: Join}, {Switch: 1, Kind: Join}})
	check(t, 3, []Event{{Switch: 0, Kind: Join}, {Switch: 1, Kind: Join}})
	check(t, 3, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 1, Kind: Join},
		{Switch: 2, Kind: Join},
	})
}

func TestJoinLeaveRaces(t *testing.T) {
	// Join at one switch racing a join+leave at another.
	check(t, 3, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 1, Kind: Join},
		{Switch: 1, Kind: Leave},
	})
	// Everyone joins, one leaves — all interleavings.
	check(t, 3, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 1, Kind: Join},
		{Switch: 2, Kind: Join},
		{Switch: 2, Kind: Leave},
	})
}

func TestFourSwitchBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	check(t, 4, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 1, Kind: Join},
		{Switch: 2, Kind: Join},
	})
}

func TestStateLimitEnforced(t *testing.T) {
	c := &Checker{
		N:         3,
		Scenario:  []Event{{Switch: 0, Kind: Join}, {Switch: 1, Kind: Join}, {Switch: 2, Kind: Join}},
		MaxStates: 10,
	}
	if _, err := c.Check(); err == nil || !strings.Contains(err.Error(), "state limit") {
		t.Errorf("err = %v, want state-limit error", err)
	}
}

// TestBrokenProtocolIsCaught sabotages one protocol rule — Figure 5's
// line-15 inconsistency detection — and requires the checker to find a
// counterexample, evidence that the convergence assertions have teeth.
// Without line 15, two concurrent events whose EventHandler proposals
// cross in flight leave both switches with a stale topology basis: neither
// accepts the other's single-event proposal (T ≥ E fails), and without the
// inconsistency rule neither knows it owes the network a fresh one.
func TestBrokenProtocolIsCaught(t *testing.T) {
	c := &Checker{
		N: 2,
		Scenario: []Event{
			{Switch: 0, Kind: Join},
			{Switch: 1, Kind: Join},
		},
		sabotageNoInconsistencyCheck: true,
	}
	_, err := c.Check()
	if err == nil {
		t.Fatal("sabotaged protocol passed the checker")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("err = %v, want *Violation", err)
	}
	if len(v.Trace) == 0 {
		t.Error("violation carries no trace")
	}
	t.Logf("counterexample found:\n%v", v)
}

// TestResurrectionRaces explores the §3.4 lifecycle corner: the connection
// empties and is immediately re-created, with the LSAs of both phases
// potentially crossing in flight.
func TestResurrectionRaces(t *testing.T) {
	// Join, full leave, rejoin elsewhere.
	check(t, 2, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 0, Kind: Leave},
		{Switch: 1, Kind: Join},
	})
	check(t, 3, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 0, Kind: Leave},
		{Switch: 1, Kind: Join},
	})
}

// TestCrossingLeaveAndJoin explores a leave racing a concurrent join from
// a different switch — the conflicting-pair case Figure 2 illustrates.
func TestCrossingLeaveAndJoin(t *testing.T) {
	check(t, 3, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 0, Kind: Leave},
		{Switch: 2, Kind: Join},
	})
}

// TestSameSwitchChurn explores rapid join/leave/join churn at one switch
// while another holds the connection open.
func TestSameSwitchChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	check(t, 2, []Event{
		{Switch: 0, Kind: Join},
		{Switch: 1, Kind: Join},
		{Switch: 1, Kind: Leave},
		{Switch: 1, Kind: Join},
	})
}
