// Package mctree represents multipoint-connection topologies: the trees
// (subgraphs) that the D-GMC protocol proposes, floods, and installs into
// per-switch routing entries. It also defines MC kinds (symmetric,
// receiver-only, asymmetric) and member roles, mirroring §1 of the paper.
package mctree

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"dgmc/internal/topo"
)

// Kind distinguishes the three MC types of the paper.
type Kind uint8

const (
	// Symmetric: every member may both send and receive (teleconference).
	Symmetric Kind = iota + 1
	// ReceiverOnly: members are receivers; senders deliver to any member
	// (the contact node), which forwards over the MC.
	ReceiverOnly
	// Asymmetric: members are distinguished senders and/or receivers
	// (video broadcast, remote teaching).
	Asymmetric
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Symmetric:
		return "symmetric"
	case ReceiverOnly:
		return "receiver-only"
	case Asymmetric:
		return "asymmetric"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= Symmetric && k <= Asymmetric }

// Role describes how a member switch participates in an MC.
type Role uint8

const (
	// Sender members only transmit.
	Sender Role = 1 << iota
	// Receiver members only receive.
	Receiver
	// SenderReceiver members do both.
	SenderReceiver = Sender | Receiver
)

// CanSend reports whether the role includes sending.
func (r Role) CanSend() bool { return r&Sender != 0 }

// CanReceive reports whether the role includes receiving.
func (r Role) CanReceive() bool { return r&Receiver != 0 }

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Sender:
		return "sender"
	case Receiver:
		return "receiver"
	case SenderReceiver:
		return "sender+receiver"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Members maps member switches to their roles.
type Members map[topo.SwitchID]Role

// Clone returns an independent copy.
func (m Members) Clone() Members {
	c := make(Members, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// IDs returns the member switch IDs in ascending order.
func (m Members) IDs() []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Receivers returns member IDs with a receiving role, ascending.
func (m Members) Receivers() []topo.SwitchID {
	var out []topo.SwitchID
	for s, r := range m {
		if r.CanReceive() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Senders returns member IDs with a sending role, ascending.
func (m Members) Senders() []topo.SwitchID {
	var out []topo.SwitchID
	for s, r := range m {
		if r.CanSend() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether m and o have identical membership and roles.
func (m Members) Equal(o Members) bool {
	if len(m) != len(o) {
		return false
	}
	for k, v := range m {
		if o[k] != v {
			return false
		}
	}
	return true
}

// Edge is an undirected tree edge with canonical ordering A < B.
type Edge struct {
	A, B topo.SwitchID
}

// NewEdge returns the canonical edge for the unordered pair {a,b}.
func NewEdge(a, b topo.SwitchID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Tree is an MC topology: a set of undirected edges plus metadata. The
// canonical form keeps edges sorted, so Equal is structural equality.
type Tree struct {
	// Kind is the MC type this topology serves.
	Kind Kind
	// Root is the source for asymmetric MCs and the designated contact/core
	// hint for receiver-only MCs; topo.NoSwitch when not applicable.
	Root topo.SwitchID
	// edges is kept sorted in (A,B) order.
	edges []Edge
}

// New returns an empty tree of the given kind.
func New(kind Kind) *Tree {
	return &Tree{Kind: kind, Root: topo.NoSwitch}
}

// NewWithRoot returns an empty tree with a root/source annotation.
func NewWithRoot(kind Kind, root topo.SwitchID) *Tree {
	return &Tree{Kind: kind, Root: root}
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	c := &Tree{Kind: t.Kind, Root: t.Root, edges: make([]Edge, len(t.edges))}
	copy(c.edges, t.edges)
	return c
}

// NumEdges returns the number of edges.
func (t *Tree) NumEdges() int { return len(t.edges) }

// Edges returns a copy of the edge set in canonical order.
func (t *Tree) Edges() []Edge {
	out := make([]Edge, len(t.edges))
	copy(out, t.edges)
	return out
}

func (t *Tree) search(e Edge) (int, bool) {
	i := sort.Search(len(t.edges), func(i int) bool {
		if t.edges[i].A != e.A {
			return t.edges[i].A >= e.A
		}
		return t.edges[i].B >= e.B
	})
	return i, i < len(t.edges) && t.edges[i] == e
}

// Has reports whether the tree contains the edge {a,b}.
func (t *Tree) Has(a, b topo.SwitchID) bool {
	_, ok := t.search(NewEdge(a, b))
	return ok
}

// AddEdge inserts the edge {a,b}; inserting an existing edge is a no-op.
func (t *Tree) AddEdge(a, b topo.SwitchID) {
	e := NewEdge(a, b)
	i, ok := t.search(e)
	if ok {
		return
	}
	t.edges = append(t.edges, Edge{})
	copy(t.edges[i+1:], t.edges[i:])
	t.edges[i] = e
}

// RemoveEdge deletes the edge {a,b} if present.
func (t *Tree) RemoveEdge(a, b topo.SwitchID) {
	e := NewEdge(a, b)
	i, ok := t.search(e)
	if !ok {
		return
	}
	t.edges = append(t.edges[:i], t.edges[i+1:]...)
}

// Nodes returns every switch touched by some edge, ascending. A one-member
// MC has no edges, hence no nodes; callers treat the member itself as the
// whole topology in that case.
func (t *Tree) Nodes() []topo.SwitchID {
	set := make(map[topo.SwitchID]bool, 2*len(t.edges))
	for _, e := range t.edges {
		set[e.A] = true
		set[e.B] = true
	}
	out := make([]topo.SwitchID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// On reports whether switch s is touched by the tree.
func (t *Tree) On(s topo.SwitchID) bool {
	for _, e := range t.edges {
		if e.A == s || e.B == s {
			return true
		}
	}
	return false
}

// Neighbors returns the tree-adjacent switches of s, ascending. These are
// exactly the "routing entries for incident links" a switch installs when
// accepting a proposal.
func (t *Tree) Neighbors(s topo.SwitchID) []topo.SwitchID {
	var out []topo.SwitchID
	for _, e := range t.edges {
		switch s {
		case e.A:
			out = append(out, e.B)
		case e.B:
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports structural equality (kind, root, edge set).
func (t *Tree) Equal(o *Tree) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind || t.Root != o.Root || len(t.edges) != len(o.edges) {
		return false
	}
	for i := range t.edges {
		if t.edges[i] != o.edges[i] {
			return false
		}
	}
	return true
}

// Cost returns the sum of link delays over the tree's edges in g. Edges
// missing from g contribute nothing and are reported by Validate instead.
func (t *Tree) Cost(g *topo.Graph) time.Duration {
	var sum time.Duration
	for _, e := range t.edges {
		if l, ok := g.Link(e.A, e.B); ok {
			sum += l.Delay
		}
	}
	return sum
}

// Validate checks that the tree is a well-formed MC topology over graph g
// for the given members:
//
//   - every edge exists in g and is up,
//   - the edge set is acyclic and connected,
//   - every member lies on the tree (or the MC has ≤1 member and no edges),
//   - an asymmetric tree's root lies on the tree.
func (t *Tree) Validate(g *topo.Graph, members Members) error {
	if !t.Kind.Valid() {
		return fmt.Errorf("mctree: invalid kind %d", t.Kind)
	}
	if len(t.edges) == 0 {
		if len(members) > 1 {
			return fmt.Errorf("mctree: %d members but empty tree", len(members))
		}
		return nil
	}
	for _, e := range t.edges {
		l, ok := g.Link(e.A, e.B)
		if !ok {
			return fmt.Errorf("mctree: edge (%d,%d) not in network", e.A, e.B)
		}
		if l.Down {
			return fmt.Errorf("mctree: edge (%d,%d) uses a failed link", e.A, e.B)
		}
	}
	nodes := t.Nodes()
	if len(t.edges) != len(nodes)-1 {
		return fmt.Errorf("mctree: %d edges over %d nodes (cycle or forest)", len(t.edges), len(nodes))
	}
	// Connectivity over tree edges.
	adj := make(map[topo.SwitchID][]topo.SwitchID, len(nodes))
	for _, e := range t.edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seen := map[topo.SwitchID]bool{nodes[0]: true}
	queue := []topo.SwitchID{nodes[0]}
	for qi := 0; qi < len(queue); qi++ {
		for _, nb := range adj[queue[qi]] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != len(nodes) {
		return fmt.Errorf("mctree: tree is disconnected (%d of %d nodes reachable)", len(seen), len(nodes))
	}
	for s := range members {
		if !seen[s] {
			return fmt.Errorf("mctree: member %d not on tree", s)
		}
	}
	if t.Kind == Asymmetric && t.Root != topo.NoSwitch && !seen[t.Root] {
		return fmt.Errorf("mctree: root %d not on tree", t.Root)
	}
	return nil
}

// PathDelay returns the delay between a and b along the tree (using g's
// link delays), or -1 if either is off-tree or they are disconnected.
func (t *Tree) PathDelay(g *topo.Graph, a, b topo.SwitchID) time.Duration {
	if a == b {
		if t.On(a) || len(t.edges) == 0 {
			return 0
		}
		return -1
	}
	// BFS over tree edges accumulating delays.
	type item struct {
		s topo.SwitchID
		d time.Duration
	}
	seen := map[topo.SwitchID]bool{a: true}
	queue := []item{{a, 0}}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, nb := range t.Neighbors(cur.s) {
			if seen[nb] {
				continue
			}
			l, ok := g.Link(cur.s, nb)
			if !ok {
				continue
			}
			nd := cur.d + l.Delay
			if nb == b {
				return nd
			}
			seen[nb] = true
			queue = append(queue, item{nb, nd})
		}
	}
	return -1
}

// Diff returns the edges present in new but not old (added) and present in
// old but not new (removed). Either tree may be nil (treated as empty).
func Diff(oldT, newT *Tree) (added, removed []Edge) {
	oldSet := map[Edge]bool{}
	if oldT != nil {
		for _, e := range oldT.edges {
			oldSet[e] = true
		}
	}
	if newT != nil {
		for _, e := range newT.edges {
			if oldSet[e] {
				delete(oldSet, e)
			} else {
				added = append(added, e)
			}
		}
	}
	for e := range oldSet {
		removed = append(removed, e)
	}
	sort.Slice(removed, func(i, j int) bool {
		if removed[i].A != removed[j].A {
			return removed[i].A < removed[j].A
		}
		return removed[i].B < removed[j].B
	})
	return added, removed
}

// String renders the tree compactly, e.g. "symmetric{0-1 1-3}".
func (t *Tree) String() string {
	var b strings.Builder
	b.WriteString(t.Kind.String())
	if t.Root != topo.NoSwitch {
		fmt.Fprintf(&b, "@%d", t.Root)
	}
	b.WriteString("{")
	for i, e := range t.edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", e.A, e.B)
	}
	b.WriteString("}")
	return b.String()
}

// AppendBinary appends a wire encoding of t to buf: kind, root, edge count,
// then edge endpoint pairs, all big-endian. A nil tree encodes as a single
// zero byte.
func (t *Tree) AppendBinary(buf []byte) []byte {
	if t == nil {
		return append(buf, 0)
	}
	buf = append(buf, byte(t.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(t.Root)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.edges)))
	for _, e := range t.edges {
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.A))
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.B))
	}
	return buf
}

// DecodeBinary parses a tree encoded by AppendBinary from the front of buf,
// returning the tree (nil for the nil encoding) and the remaining bytes.
func DecodeBinary(buf []byte) (*Tree, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("mctree: empty buffer")
	}
	kind := Kind(buf[0])
	if kind == 0 {
		return nil, buf[1:], nil
	}
	if !kind.Valid() {
		return nil, nil, fmt.Errorf("mctree: invalid kind byte %d", buf[0])
	}
	buf = buf[1:]
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("mctree: truncated header")
	}
	root := topo.SwitchID(int32(binary.BigEndian.Uint32(buf)))
	cnt := int(binary.BigEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if cnt < 0 || len(buf) < 8*cnt {
		return nil, nil, fmt.Errorf("mctree: truncated edges (%d declared)", cnt)
	}
	t := &Tree{Kind: kind, Root: root, edges: make([]Edge, 0, cnt)}
	for i := 0; i < cnt; i++ {
		a := topo.SwitchID(int32(binary.BigEndian.Uint32(buf[8*i:])))
		b := topo.SwitchID(int32(binary.BigEndian.Uint32(buf[8*i+4:])))
		if a == b {
			return nil, nil, fmt.Errorf("mctree: self-loop edge %d-%d", a, b)
		}
		t.edges = append(t.edges, NewEdge(a, b))
	}
	less := func(i, j int) bool {
		if t.edges[i].A != t.edges[j].A {
			return t.edges[i].A < t.edges[j].A
		}
		return t.edges[i].B < t.edges[j].B
	}
	// Encoders emit canonical (sorted) edge order, so the common case skips
	// the sort entirely; hostile or legacy inputs still get canonicalised.
	if !sort.SliceIsSorted(t.edges, less) {
		sort.Slice(t.edges, less)
	}
	for i := 1; i < len(t.edges); i++ {
		if t.edges[i] == t.edges[i-1] {
			return nil, nil, fmt.Errorf("mctree: duplicate edge %d-%d", t.edges[i].A, t.edges[i].B)
		}
	}
	return t, buf[8*cnt:], nil
}
