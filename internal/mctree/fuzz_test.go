package mctree

import (
	"bytes"
	"testing"
)

// FuzzDecodeTree checks DecodeBinary on arbitrary input: it must never
// panic, and any tree it accepts must already be canonical — edges sorted in
// (A,B) order with A < B per edge, no duplicates — and must survive an
// encode/decode round trip byte-identically (re-encoding an accepted tree
// yields an encoding that decodes to an equal tree and the same bytes).
func FuzzDecodeTree(f *testing.F) {
	// Seeds: nil tree, empty tree, a small path, and a deliberately
	// unsorted-duplicate encoding that must be rejected.
	f.Add([]byte{0})
	t0 := New(Symmetric)
	f.Add(t0.AppendBinary(nil))
	t1 := NewWithRoot(Asymmetric, 2)
	t1.AddEdge(2, 0)
	t1.AddEdge(0, 1)
	t1.AddEdge(1, 3)
	f.Add(t1.AppendBinary(nil))
	dup := t1.AppendBinary(nil)
	dup = append(dup, t1.AppendBinary(nil)...) // two trees back to back
	f.Add(dup)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, rest, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		if tr == nil {
			return // the nil encoding
		}
		edges := tr.Edges()
		for i, e := range edges {
			if e.A >= e.B {
				t.Fatalf("edge %d not canonical: %d-%d", i, e.A, e.B)
			}
			if i > 0 {
				prev := edges[i-1]
				if e.A < prev.A || (e.A == prev.A && e.B <= prev.B) {
					t.Fatalf("edges not strictly sorted at %d: %v then %v", i, prev, e)
				}
			}
		}
		// Round trip: canonical re-encoding must decode to an equal tree.
		enc := tr.AppendBinary(nil)
		tr2, rest2, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted tree failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if tr2 == nil || !tr.Equal(tr2) || tr.Root != tr2.Root || tr.Kind != tr2.Kind {
			t.Fatalf("round trip changed tree: %v vs %v", tr, tr2)
		}
		if enc2 := tr2.AppendBinary(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encoding not byte-stable")
		}
	})
}

// TestDecodeRejectsDuplicateEdges pins the duplicate-edge check directly: a
// hand-built encoding carrying the same undirected edge twice (in either
// orientation) must be rejected, not silently deduplicated — a forged
// proposal with duplicate edges would otherwise hash/compare unequal across
// switches depending on decode order.
func TestDecodeRejectsDuplicateEdges(t *testing.T) {
	base := NewWithRoot(Asymmetric, 0)
	base.AddEdge(0, 1)
	enc := base.AppendBinary(nil)
	// Patch the edge count to 2 and append a flipped duplicate of edge 0-1.
	enc[5+3]++ // count lives at offset 5 (kind 1 + root 4), big-endian
	enc = append(enc, 0, 0, 0, 1, 0, 0, 0, 0)
	if _, _, err := DecodeBinary(enc); err == nil {
		t.Fatalf("decode accepted duplicate edge")
	}
	// Same-orientation duplicate.
	enc2 := base.AppendBinary(nil)
	enc2[5+3]++
	enc2 = append(enc2, 0, 0, 0, 0, 0, 0, 0, 1)
	if _, _, err := DecodeBinary(enc2); err == nil {
		t.Fatalf("decode accepted duplicate edge (same orientation)")
	}
}
