package mctree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dgmc/internal/topo"
)

func lineGraph(t *testing.T, n int) *topo.Graph {
	t.Helper()
	g, err := topo.Line(n, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKindAndRoleStrings(t *testing.T) {
	if Symmetric.String() != "symmetric" || ReceiverOnly.String() != "receiver-only" ||
		Asymmetric.String() != "asymmetric" {
		t.Error("kind strings wrong")
	}
	if Kind(9).Valid() || Kind(0).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if Sender.String() != "sender" || Receiver.String() != "receiver" ||
		SenderReceiver.String() != "sender+receiver" {
		t.Error("role strings wrong")
	}
	if !SenderReceiver.CanSend() || !SenderReceiver.CanReceive() {
		t.Error("SenderReceiver capabilities wrong")
	}
	if Sender.CanReceive() || Receiver.CanSend() {
		t.Error("single-role capabilities wrong")
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind string = %q", got)
	}
	if got := Role(8).String(); got != "Role(8)" {
		t.Errorf("unknown role string = %q", got)
	}
}

func TestMembersHelpers(t *testing.T) {
	m := Members{3: Receiver, 1: Sender, 2: SenderReceiver}
	if got := m.IDs(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("IDs = %v", got)
	}
	if got := m.Senders(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Senders = %v", got)
	}
	if got := m.Receivers(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Receivers = %v", got)
	}
	c := m.Clone()
	c[3] = Sender
	if m[3] != Receiver {
		t.Error("Clone shares storage")
	}
	if !m.Equal(Members{1: Sender, 2: SenderReceiver, 3: Receiver}) {
		t.Error("Equal false negative")
	}
	if m.Equal(c) || m.Equal(Members{1: Sender}) {
		t.Error("Equal false positive")
	}
}

func TestEdgeCanonicalization(t *testing.T) {
	if NewEdge(5, 2) != (Edge{A: 2, B: 5}) {
		t.Error("NewEdge does not canonicalize")
	}
}

func TestAddRemoveHasEdges(t *testing.T) {
	tr := New(Symmetric)
	tr.AddEdge(3, 1)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 3) // duplicate (reversed)
	if tr.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", tr.NumEdges())
	}
	if !tr.Has(1, 3) || !tr.Has(1, 0) || tr.Has(0, 3) {
		t.Error("Has wrong")
	}
	e := tr.Edges()
	if e[0] != NewEdge(0, 1) || e[1] != NewEdge(1, 3) {
		t.Errorf("edges not canonical-sorted: %v", e)
	}
	tr.RemoveEdge(3, 1)
	if tr.Has(1, 3) || tr.NumEdges() != 1 {
		t.Error("RemoveEdge failed")
	}
	tr.RemoveEdge(9, 9) // no-op
	if tr.NumEdges() != 1 {
		t.Error("RemoveEdge of absent edge changed tree")
	}
}

func TestNodesNeighborsOn(t *testing.T) {
	tr := New(Symmetric)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	tr.AddEdge(1, 5)
	nodes := tr.Nodes()
	want := []topo.SwitchID{0, 1, 2, 5}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v", nodes)
		}
	}
	nb := tr.Neighbors(1)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 2 || nb[2] != 5 {
		t.Errorf("neighbors(1) = %v", nb)
	}
	if !tr.On(5) || tr.On(4) {
		t.Error("On wrong")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := NewWithRoot(Asymmetric, 2)
	a.AddEdge(0, 1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.AddEdge(1, 2)
	if a.Equal(b) {
		t.Error("Equal ignores edges")
	}
	c := a.Clone()
	c.Root = 0
	if a.Equal(c) {
		t.Error("Equal ignores root")
	}
	var nilT *Tree
	if nilT.Equal(a) || a.Equal(nil) {
		t.Error("nil equality wrong")
	}
	if !nilT.Equal(nil) {
		t.Error("nil==nil should hold")
	}
}

func TestValidate(t *testing.T) {
	g := lineGraph(t, 5) // 0-1-2-3-4

	valid := New(Symmetric)
	valid.AddEdge(1, 2)
	valid.AddEdge(2, 3)
	if err := valid.Validate(g, Members{1: SenderReceiver, 3: SenderReceiver}); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}

	t.Run("empty tree single member", func(t *testing.T) {
		if err := New(Symmetric).Validate(g, Members{2: SenderReceiver}); err != nil {
			t.Errorf("singleton MC rejected: %v", err)
		}
		if err := New(Symmetric).Validate(g, Members{1: Sender, 2: Receiver}); err == nil {
			t.Error("empty tree with 2 members accepted")
		}
	})

	t.Run("edge not in graph", func(t *testing.T) {
		tr := New(Symmetric)
		tr.AddEdge(0, 4)
		if err := tr.Validate(g, Members{0: SenderReceiver, 4: SenderReceiver}); err == nil {
			t.Error("phantom edge accepted")
		}
	})

	t.Run("downed edge", func(t *testing.T) {
		g2 := g.Clone()
		if err := g2.SetLinkDown(1, 2, true); err != nil {
			t.Fatal(err)
		}
		if err := valid.Validate(g2, Members{1: SenderReceiver, 3: SenderReceiver}); err == nil {
			t.Error("tree over failed link accepted")
		}
	})

	t.Run("forest", func(t *testing.T) {
		tr := New(Symmetric)
		tr.AddEdge(0, 1)
		tr.AddEdge(2, 3)
		if err := tr.Validate(g, Members{0: SenderReceiver, 3: SenderReceiver}); err == nil {
			t.Error("forest accepted")
		}
	})

	t.Run("member off tree", func(t *testing.T) {
		if err := valid.Validate(g, Members{1: SenderReceiver, 4: SenderReceiver}); err == nil {
			t.Error("member off tree accepted")
		}
	})

	t.Run("root off tree", func(t *testing.T) {
		tr := NewWithRoot(Asymmetric, 0)
		tr.AddEdge(1, 2)
		if err := tr.Validate(g, Members{1: Sender, 2: Receiver}); err == nil {
			t.Error("root off tree accepted")
		}
	})

	t.Run("bad kind", func(t *testing.T) {
		tr := New(Kind(7))
		if err := tr.Validate(g, nil); err == nil {
			t.Error("invalid kind accepted")
		}
	})

	t.Run("cycle", func(t *testing.T) {
		rg, err := topo.Ring(3, time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		tr := New(Symmetric)
		tr.AddEdge(0, 1)
		tr.AddEdge(1, 2)
		tr.AddEdge(0, 2)
		if err := tr.Validate(rg, Members{0: SenderReceiver}); err == nil {
			t.Error("cycle accepted")
		}
	})
}

func TestCostAndPathDelay(t *testing.T) {
	g := lineGraph(t, 4) // 10µs links
	tr := New(Symmetric)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	if tr.Cost(g) != 20*time.Microsecond {
		t.Errorf("cost = %v", tr.Cost(g))
	}
	if d := tr.PathDelay(g, 0, 2); d != 20*time.Microsecond {
		t.Errorf("path delay 0->2 = %v", d)
	}
	if d := tr.PathDelay(g, 0, 0); d != 0 {
		t.Errorf("self delay = %v", d)
	}
	if d := tr.PathDelay(g, 0, 3); d >= 0 {
		t.Errorf("off-tree delay = %v, want negative", d)
	}
}

func TestDiff(t *testing.T) {
	oldT := New(Symmetric)
	oldT.AddEdge(0, 1)
	oldT.AddEdge(1, 2)
	newT := New(Symmetric)
	newT.AddEdge(1, 2)
	newT.AddEdge(2, 3)

	added, removed := Diff(oldT, newT)
	if len(added) != 1 || added[0] != NewEdge(2, 3) {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != NewEdge(0, 1) {
		t.Errorf("removed = %v", removed)
	}
	added, removed = Diff(nil, newT)
	if len(added) != 2 || len(removed) != 0 {
		t.Errorf("diff from nil: %v %v", added, removed)
	}
	added, removed = Diff(oldT, nil)
	if len(added) != 0 || len(removed) != 2 {
		t.Errorf("diff to nil: %v %v", added, removed)
	}
}

func TestString(t *testing.T) {
	tr := NewWithRoot(Asymmetric, 3)
	tr.AddEdge(3, 1)
	if got := tr.String(); got != "asymmetric@3{1-3}" {
		t.Errorf("String = %q", got)
	}
	if got := New(Symmetric).String(); got != "symmetric{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := NewWithRoot(Asymmetric, 2)
	tr.AddEdge(2, 0)
	tr.AddEdge(2, 4)
	buf := tr.AppendBinary(nil)
	got, rest, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !got.Equal(tr) {
		t.Errorf("round trip: got %v rest %d", got, len(rest))
	}

	// nil tree
	buf = (*Tree)(nil).AppendBinary(nil)
	got, rest, err = DecodeBinary(buf)
	if err != nil || got != nil || len(rest) != 0 {
		t.Errorf("nil round trip: %v %v %v", got, rest, err)
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(Symmetric)},           // truncated header
		{9, 0, 0, 0, 0, 0, 0, 0, 0}, // bad kind
		append([]byte{byte(Symmetric)}, make([]byte, 8)[:7]...), // short header
	}
	// edge count says 1 but no edge bytes
	hdr := []byte{byte(Symmetric)}
	hdr = append(hdr, 0xff, 0xff, 0xff, 0xff) // root -1
	hdr = append(hdr, 0, 0, 0, 1)
	cases = append(cases, hdr)
	// self-loop edge
	self := append(append([]byte{}, hdr...), 0, 0, 0, 2, 0, 0, 0, 2)
	cases = append(cases, self)
	for i, buf := range cases {
		if _, _, err := DecodeBinary(buf); err == nil {
			t.Errorf("case %d: decode succeeded on malformed input", i)
		}
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			tr := New(Kind(1 + r.Intn(3)))
			if r.Intn(2) == 0 {
				tr.Root = topo.SwitchID(r.Intn(20))
			}
			for i := 0; i < r.Intn(10); i++ {
				a := topo.SwitchID(r.Intn(20))
				b := topo.SwitchID(r.Intn(20))
				if a != b {
					tr.AddEdge(a, b)
				}
			}
			vals[0] = reflect.ValueOf(tr)
		},
		Rand: r,
	}
	law := func(tr *Tree) bool {
		got, rest, err := DecodeBinary(tr.AppendBinary(nil))
		return err == nil && len(rest) == 0 && got.Equal(tr)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAddRemoveInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		tr := New(Symmetric)
		ref := map[Edge]bool{}
		for op := 0; op < 30; op++ {
			a := topo.SwitchID(r.Intn(8))
			b := topo.SwitchID(r.Intn(8))
			if a == b {
				continue
			}
			e := NewEdge(a, b)
			if r.Intn(2) == 0 {
				tr.AddEdge(a, b)
				ref[e] = true
			} else {
				tr.RemoveEdge(a, b)
				delete(ref, e)
			}
			if tr.NumEdges() != len(ref) {
				t.Fatalf("size mismatch: %d vs %d", tr.NumEdges(), len(ref))
			}
			if tr.Has(a, b) != ref[e] {
				t.Fatalf("membership mismatch for %v", e)
			}
		}
		// Edges always sorted canonical.
		es := tr.Edges()
		for i := 1; i < len(es); i++ {
			if es[i-1].A > es[i].A || (es[i-1].A == es[i].A && es[i-1].B >= es[i].B) {
				t.Fatalf("edges unsorted: %v", es)
			}
		}
	}
}
