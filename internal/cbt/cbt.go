// Package cbt implements a core-based tree (CBT) baseline after Ballardie's
// protocol, which the paper discusses in §5: receiver-only MCs built as a
// single shared tree rooted at a designated core switch. Receivers graft
// themselves by sending a join request hop-by-hop along the unicast path
// toward the core until it hits the tree; senders deliver packets to the
// tree's nearest on-tree switch (the contact node), which forwards them
// over the shared tree.
//
// CBT uses network resources efficiently (one tree per group) but suffers
// from traffic concentration around the core, and core placement requires
// topology knowledge the network may not expose — both limitations the
// paper contrasts with D-GMC. LinkLoads quantifies the concentration.
package cbt

import (
	"errors"
	"fmt"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// ErrNotMember is returned by Leave for a switch that never joined.
var ErrNotMember = errors.New("cbt: not a member")

// Tree is a core-based shared tree under incremental join/leave.
type Tree struct {
	g    *topo.Graph
	core topo.SwitchID

	// parent maps each on-tree switch to its parent toward the core; the
	// core maps to topo.NoSwitch.
	parent map[topo.SwitchID]topo.SwitchID
	// members tracks which on-tree switches are group members (vs pure
	// relays created by grafting).
	members map[topo.SwitchID]bool
	// joins counts hop-by-hop join-request transmissions (signaling cost).
	joins uint64
}

// New creates an empty shared tree rooted at core.
func New(g *topo.Graph, core topo.SwitchID) (*Tree, error) {
	if core < 0 || int(core) >= g.NumSwitches() {
		return nil, fmt.Errorf("cbt: core %d out of range [0,%d)", core, g.NumSwitches())
	}
	return &Tree{
		g:       g,
		core:    core,
		parent:  map[topo.SwitchID]topo.SwitchID{core: topo.NoSwitch},
		members: map[topo.SwitchID]bool{},
	}, nil
}

// Core returns the core switch.
func (t *Tree) Core() topo.SwitchID { return t.core }

// Members returns the current member set, ascending.
func (t *Tree) Members() []topo.SwitchID {
	out := make([]topo.SwitchID, 0, len(t.members))
	for s := range t.members {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// OnTree reports whether s is on the shared tree (member or relay).
func (t *Tree) OnTree(s topo.SwitchID) bool {
	_, ok := t.parent[s]
	return ok
}

// JoinRequests returns the cumulative hop-by-hop join-request count.
func (t *Tree) JoinRequests() uint64 { return t.joins }

// Join grafts member s onto the tree: a join request travels along s's
// unicast shortest path toward the core until it reaches an on-tree switch.
func (t *Tree) Join(s topo.SwitchID) error {
	if s < 0 || int(s) >= t.g.NumSwitches() {
		return fmt.Errorf("cbt: switch %d out of range", s)
	}
	t.members[s] = true
	if t.OnTree(s) {
		return nil
	}
	// Unicast path from s to the core.
	spt := t.g.ShortestPaths(s)
	path := spt.Path(t.core)
	if path == nil {
		delete(t.members, s)
		return fmt.Errorf("cbt: switch %d cannot reach core %d", s, t.core)
	}
	for i := 0; i+1 < len(path); i++ {
		t.joins++
		cur, next := path[i], path[i+1]
		if !t.OnTree(cur) {
			t.parent[cur] = next
		}
		if t.OnTree(next) {
			break
		}
	}
	return nil
}

// Leave removes member s, pruning its branch up to the nearest switch that
// still serves another member (or is the core).
func (t *Tree) Leave(s topo.SwitchID) error {
	if !t.members[s] {
		return fmt.Errorf("%w: %d", ErrNotMember, s)
	}
	delete(t.members, s)
	t.prune()
	return nil
}

// prune removes on-tree leaves that are neither members nor the core.
func (t *Tree) prune() {
	for {
		children := map[topo.SwitchID]int{}
		for s, p := range t.parent {
			if s != t.core && p != topo.NoSwitch {
				children[p]++
			}
		}
		trimmed := false
		for s := range t.parent {
			if s == t.core || t.members[s] || children[s] > 0 {
				continue
			}
			delete(t.parent, s)
			trimmed = true
		}
		if !trimmed {
			return
		}
	}
}

// MCTree exports the shared tree as an mctree.Tree (receiver-only kind,
// root = core).
func (t *Tree) MCTree() *mctree.Tree {
	out := mctree.NewWithRoot(mctree.ReceiverOnly, t.core)
	for s, p := range t.parent {
		if p != topo.NoSwitch {
			out.AddEdge(s, p)
		}
	}
	return out
}

// ContactNode returns the first on-tree switch along sender's unicast path
// toward the core — where a non-member sender's packets enter the MC
// (stage one of the paper's receiver-only delivery).
func (t *Tree) ContactNode(sender topo.SwitchID) (topo.SwitchID, error) {
	if t.OnTree(sender) {
		return sender, nil
	}
	spt := t.g.ShortestPaths(sender)
	path := spt.Path(t.core)
	if path == nil {
		return topo.NoSwitch, fmt.Errorf("cbt: sender %d cannot reach core %d", sender, t.core)
	}
	for _, s := range path {
		if t.OnTree(s) {
			return s, nil
		}
	}
	return t.core, nil
}

// LinkLoad maps links to the number of packet traversals per round of
// traffic (each sender sending one packet to the whole group).
type LinkLoad map[mctree.Edge]float64

// Max returns the largest per-link load, the traffic-concentration metric.
func (l LinkLoad) Max() float64 {
	var m float64
	for _, v := range l {
		if v > m {
			m = v
		}
	}
	return m
}

// Total returns the summed load over all links (total bandwidth consumed).
func (l LinkLoad) Total() float64 {
	var t float64
	for _, v := range l {
		t += v
	}
	return t
}

// SharedTreeLoads computes per-link loads when every sender delivers one
// packet to all receivers over the shared tree: the sender's packet travels
// unicast to its contact node, then floods the tree.
func (t *Tree) SharedTreeLoads(senders []topo.SwitchID) (LinkLoad, error) {
	loads := LinkLoad{}
	tree := t.MCTree()
	for _, snd := range senders {
		contact, err := t.ContactNode(snd)
		if err != nil {
			return nil, err
		}
		// Unicast leg to the contact node.
		if contact != snd {
			spt := t.g.ShortestPaths(snd)
			path := spt.Path(contact)
			for i := 0; i+1 < len(path); i++ {
				loads[mctree.NewEdge(path[i], path[i+1])]++
			}
		}
		// Tree flood: every tree edge carries the packet once.
		for _, e := range tree.Edges() {
			loads[e]++
		}
	}
	return loads, nil
}

// SourceTreeLoads computes per-link loads for the same traffic pattern when
// each sender uses its own shortest-path tree to the receivers (the
// per-source alternative CBT is compared against).
func SourceTreeLoads(g *topo.Graph, senders, receivers []topo.SwitchID) (LinkLoad, error) {
	loads := LinkLoad{}
	for _, snd := range senders {
		spt := g.ShortestPaths(snd)
		edges := map[mctree.Edge]bool{}
		for _, rcv := range receivers {
			if rcv == snd {
				continue
			}
			path := spt.Path(rcv)
			if path == nil {
				return nil, fmt.Errorf("cbt: receiver %d unreachable from sender %d", rcv, snd)
			}
			for i := 0; i+1 < len(path); i++ {
				edges[mctree.NewEdge(path[i], path[i+1])] = true
			}
		}
		for e := range edges {
			loads[e]++
		}
	}
	return loads, nil
}
