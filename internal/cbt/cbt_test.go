package cbt

import (
	"errors"
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

func lineTree(t *testing.T, n int, core topo.SwitchID) (*topo.Graph, *Tree) {
	t.Helper()
	g, err := topo.Line(n, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(g, core)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestNewValidation(t *testing.T) {
	g, err := topo.Line(3, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, -1); err == nil {
		t.Error("negative core accepted")
	}
	if _, err := New(g, 3); err == nil {
		t.Error("out-of-range core accepted")
	}
	tr, err := New(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Core() != 1 || !tr.OnTree(1) {
		t.Error("core not on its own tree")
	}
}

func TestJoinGraftsTowardCore(t *testing.T) {
	g, tr := lineTree(t, 5, 2)
	if err := tr.Join(0); err != nil {
		t.Fatal(err)
	}
	if !tr.OnTree(0) || !tr.OnTree(1) {
		t.Error("graft path incomplete")
	}
	if tr.JoinRequests() != 2 {
		t.Errorf("join requests = %d, want 2 hops", tr.JoinRequests())
	}
	if err := tr.Join(4); err != nil {
		t.Fatal(err)
	}
	mc := tr.MCTree()
	if mc.NumEdges() != 4 {
		t.Errorf("tree = %v", mc)
	}
	if err := mc.Validate(g, mctree.Members{0: mctree.Receiver, 4: mctree.Receiver}); err != nil {
		t.Errorf("tree invalid: %v", err)
	}
	// Joining an already-on-tree switch adds no signaling.
	pre := tr.JoinRequests()
	if err := tr.Join(1); err != nil {
		t.Fatal(err)
	}
	if tr.JoinRequests() != pre {
		t.Error("redundant join generated requests")
	}
	members := tr.Members()
	if len(members) != 3 || members[0] != 0 || members[1] != 1 || members[2] != 4 {
		t.Errorf("members = %v", members)
	}
}

func TestJoinStopsAtExistingTree(t *testing.T) {
	// Grid: second join should graft to the nearest tree switch, not the core.
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(g, 4) // center
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Join(0); err != nil {
		t.Fatal(err)
	}
	pre := tr.JoinRequests()
	if err := tr.Join(6); err != nil { // 6 is adjacent to 3; path 6-3-4 or 6-7-4
		t.Fatal(err)
	}
	if tr.JoinRequests()-pre > 2 {
		t.Errorf("join used %d hops, expected at most 2", tr.JoinRequests()-pre)
	}
}

func TestLeavePrunesExclusiveBranch(t *testing.T) {
	_, tr := lineTree(t, 5, 2)
	if err := tr.Join(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Join(4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Leave(0); err != nil {
		t.Fatal(err)
	}
	if tr.OnTree(0) || tr.OnTree(1) {
		t.Error("branch not pruned")
	}
	if !tr.OnTree(3) || !tr.OnTree(4) {
		t.Error("other branch damaged")
	}
	if err := tr.Leave(0); !errors.Is(err, ErrNotMember) {
		t.Errorf("double leave err = %v", err)
	}
}

func TestLeaveKeepsSharedRelays(t *testing.T) {
	_, tr := lineTree(t, 5, 0)
	if err := tr.Join(2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Join(4); err != nil {
		t.Fatal(err)
	}
	// 2 relays for 4; leaving 2 must keep switch 2 as relay.
	if err := tr.Leave(2); err != nil {
		t.Fatal(err)
	}
	if !tr.OnTree(2) || !tr.OnTree(3) || !tr.OnTree(4) {
		t.Error("relay pruned while still needed")
	}
	if err := tr.Leave(4); err != nil {
		t.Fatal(err)
	}
	if tr.OnTree(4) || tr.OnTree(1) {
		t.Error("tree not fully pruned after last leave")
	}
}

func TestContactNode(t *testing.T) {
	_, tr := lineTree(t, 6, 0)
	if err := tr.Join(2); err != nil {
		t.Fatal(err)
	}
	// Sender 5 is off-tree; its path to core 0 first touches the tree at 2.
	cn, err := tr.ContactNode(5)
	if err != nil {
		t.Fatal(err)
	}
	if cn != 2 {
		t.Errorf("contact node = %d, want 2", cn)
	}
	cn, err = tr.ContactNode(1) // on-tree switch is its own contact
	if err != nil {
		t.Fatal(err)
	}
	if cn != 1 {
		t.Errorf("contact node = %d, want 1", cn)
	}
}

func TestTrafficConcentrationAtCore(t *testing.T) {
	// On a shared tree every link carries every sender's packet, so the
	// maximum link load always equals the sender count — that is the
	// traffic concentration §5 describes. Per-source trees spread load
	// across diverse paths, so their maximum is at most the sender count
	// and strictly lower on irregular (Waxman) topologies.
	g, err := topo.Waxman(topo.DefaultGenConfig(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := []topo.SwitchID{5, 12, 19, 26, 33, 39}
	for _, r := range members {
		if err := tr.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	senders := members // symmetric conversation over the shared tree
	shared, err := tr.SharedTreeLoads(senders)
	if err != nil {
		t.Fatal(err)
	}
	source, err := SourceTreeLoads(g, senders, members)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Max() != float64(len(senders)) {
		t.Errorf("shared-tree max load = %.1f, want %d (all senders on every link)",
			shared.Max(), len(senders))
	}
	if source.Max() >= shared.Max() {
		t.Errorf("expected concentration relief from source trees: shared max %.1f vs source max %.1f",
			shared.Max(), source.Max())
	}
	if shared.Total() <= 0 || source.Total() <= 0 {
		t.Error("loads empty")
	}
}

func TestJoinUnreachableCore(t *testing.T) {
	g, err := topo.Line(4, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	tr, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Join(3); err == nil {
		t.Error("join across partition succeeded")
	}
	if len(tr.Members()) != 0 {
		t.Error("failed join left membership state")
	}
	if _, err := tr.ContactNode(3); err == nil {
		t.Error("contact node across partition succeeded")
	}
	if err := tr.Join(-1); err == nil {
		t.Error("out-of-range join accepted")
	}
}
