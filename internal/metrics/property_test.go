package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestCI95MonotoneInN: for a fixed underlying spread, adding observations
// must never widen the confidence interval — both the t critical value and
// the 1/sqrt(n) factor shrink. Alternating m±1 samples keep the empirical
// spread pinned while n grows.
func TestCI95MonotoneInN(t *testing.T) {
	for _, mean := range []float64{0, 5, -3.25} {
		var s Sample
		prev := math.Inf(1)
		for n := 2; n <= 200; n += 2 {
			s.Add(mean + 1)
			s.Add(mean - 1)
			ci := s.CI95()
			if math.IsNaN(ci) || ci < 0 {
				t.Fatalf("mean %v n %d: ci = %v", mean, n, ci)
			}
			if ci > prev+1e-12 {
				t.Fatalf("mean %v: ci widened from %v to %v at n=%d", mean, prev, ci, n)
			}
			prev = ci
		}
	}
}

// TestCI95MonotoneUnderDuplication: replicating a whole sample k times
// cannot widen the interval — same spread, more evidence.
func TestCI95MonotoneUnderDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := make([]float64, 6)
	for i := range base {
		base[i] = rng.NormFloat64() * 10
	}
	var s Sample
	prev := math.Inf(1)
	for k := 1; k <= 40; k++ {
		for _, v := range base {
			s.Add(v)
		}
		ci := s.CI95()
		if ci > prev+1e-12 {
			t.Fatalf("ci widened from %v to %v after %d copies", prev, ci, k)
		}
		prev = ci
	}
}

// TestDegenerateSamplesFinite: one observation and all-equal observations
// are legal inputs and must yield finite, zero-width intervals — no NaN or
// Inf anywhere in the summary.
func TestDegenerateSamplesFinite(t *testing.T) {
	check := func(name string, s *Sample) {
		t.Helper()
		sum, err := s.Summarize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		min, _ := s.Min()
		max, _ := s.Max()
		for label, v := range map[string]float64{
			"mean": sum.Mean, "ci": sum.CI, "stddev": s.StdDev(),
			"min": min, "max": max,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", name, label, v)
			}
		}
		if sum.CI != 0 {
			t.Errorf("%s: degenerate sample has nonzero ci %v", name, sum.CI)
		}
	}

	single := &Sample{}
	single.Add(42)
	check("single", single)

	for _, n := range []int{2, 3, 31, 100} {
		equal := &Sample{}
		for i := 0; i < n; i++ {
			equal.Add(-7.5)
		}
		check("all-equal", equal)
	}
}

// TestCSVRoundTrip: WriteCSV then ParseCSV reproduces the table's labels,
// columns, and cells to the writer's 4-decimal precision (N is not part of
// the format and comes back 0).
func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := &Table{Title: "round trip", XLabel: "switches", Columns: []string{"proposals", "lsa bytes", "delay"}}
	for _, x := range []float64{10, 20, 50, 100} {
		cells := make([]Summary, len(tab.Columns))
		for i := range cells {
			cells[i] = Summary{Mean: rng.NormFloat64() * 100, CI: rng.Float64() * 10, N: 20}
		}
		if err := tab.AddRow(x, cells...); err != nil {
			t.Fatal(err)
		}
	}

	var csv strings.Builder
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(csv.String()))
	if err != nil {
		t.Fatalf("ParseCSV: %v\n%s", err, csv.String())
	}

	if got.XLabel != tab.XLabel {
		t.Errorf("x label %q, want %q", got.XLabel, tab.XLabel)
	}
	if len(got.Columns) != len(tab.Columns) {
		t.Fatalf("columns %v, want %v", got.Columns, tab.Columns)
	}
	for i, c := range tab.Columns {
		if got.Columns[i] != c {
			t.Errorf("column %d = %q, want %q", i, got.Columns[i], c)
		}
	}
	if len(got.Rows) != len(tab.Rows) {
		t.Fatalf("rows %d, want %d", len(got.Rows), len(tab.Rows))
	}
	const tol = 5e-5 // writer rounds to 4 decimals
	for i, r := range tab.Rows {
		if got.Rows[i].X != r.X {
			t.Errorf("row %d x = %v, want %v", i, got.Rows[i].X, r.X)
		}
		for j, c := range r.Cells {
			g := got.Rows[i].Cells[j]
			if math.Abs(g.Mean-c.Mean) > tol || math.Abs(g.CI-c.CI) > tol {
				t.Errorf("row %d cell %d = %+v, want %+v", i, j, g, c)
			}
		}
	}

	// A second round trip through the parsed table must be byte-identical:
	// 4-decimal rendering is a fixed point.
	var csv2 strings.Builder
	if err := got.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if csv.String() != csv2.String() {
		t.Errorf("second round trip not stable:\n%s\nvs\n%s", csv.String(), csv2.String())
	}
}

// TestParseCSVRejectsMalformed covers the error paths.
func TestParseCSVRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"n,a_mean",                     // dangling pair
		"n,a_ci95,a_mean\n",            // mean/ci order swapped
		"n,a_mean,b_ci95\n",            // pair names disagree
		"n,a_mean,a_ci95\n1,2\n",       // short row
		"n,a_mean,a_ci95\nx,2,3\n",     // bad x
		"n,a_mean,a_ci95\n1,two,3\n",   // bad mean
		"n,a_mean,a_ci95\n1,2,three\n", // bad ci
		"n,a_mean,a_ci95\n1,2,3,4,5\n", // long row
	} {
		if _, err := ParseCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseCSV(%q): want error", bad)
		}
	}
}
