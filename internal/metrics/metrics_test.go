package metrics

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty sample stats should be zero")
	}
	if v, ok := s.Min(); ok || v != 0 {
		t.Errorf("empty Min = %v, %v; want 0, false", v, ok)
	}
	if v, ok := s.Max(); ok || v != 0 {
		t.Errorf("empty Max = %v, %v; want 0, false", v, ok)
	}
	if _, err := s.Summarize(); !errors.Is(err, ErrNoSamples) {
		t.Error("empty summarize should fail with ErrNoSamples")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Known dataset: population sd = 2, sample sd = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev(), want)
	}
	min, minOK := s.Min()
	max, maxOK := s.Max()
	if !minOK || !maxOK || min != 2 || max != 9 {
		t.Errorf("min/max = %v/%v (ok %v/%v)", min, max, minOK, maxOK)
	}
}

func TestCI95KnownValue(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	// n=5, df=4, t=2.776, sd=sqrt(2.5), ci = 2.776*sqrt(2.5)/sqrt(5).
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("ci = %v, want %v", s.CI95(), want)
	}
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean != 3 || sum.N != 5 {
		t.Errorf("summary = %+v", sum)
	}
	if got := sum.String(); !strings.Contains(got, "3.00 ±") {
		t.Errorf("summary string = %q", got)
	}
}

func TestCI95SingleSampleAndLargeN(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.CI95() != 0 {
		t.Error("single-sample CI should be 0")
	}
	var big Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		big.Add(rng.NormFloat64())
	}
	// Large n uses the 1.96 normal approximation; the CI of 200 standard
	// normals is about 1.96/sqrt(200) ≈ 0.14.
	ci := big.CI95()
	if ci < 0.08 || ci > 0.25 {
		t.Errorf("large-sample ci = %v", ci)
	}
}

func TestCI95Coverage(t *testing.T) {
	// Statistical sanity: the 95% CI of N(0,1) samples should cover 0 in
	// roughly 95% of trials.
	rng := rand.New(rand.NewSource(42))
	trials, covered := 400, 0
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 10; j++ {
			s.Add(rng.NormFloat64())
		}
		if math.Abs(s.Mean()) <= s.CI95() {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("coverage = %.3f, want ≈0.95", rate)
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Title: "demo", XLabel: "n", Columns: []string{"a", "b"}}
	if err := tab.AddRow(10, Summary{Mean: 1, CI: 0.5}); err == nil {
		t.Error("cell-count mismatch accepted")
	}
	if err := tab.AddRow(10, Summary{Mean: 1, CI: 0.5}, Summary{Mean: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow(20, Summary{Mean: 3}, Summary{Mean: 4, CI: 1}); err != nil {
		t.Fatal(err)
	}

	var text strings.Builder
	if err := tab.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"demo", "n", "a", "b", "1.00 ± 0.50", "4.00 ± 1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	var csv strings.Builder
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "n,a_mean,a_ci95,b_mean,b_ci95" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,1.0000,0.5000") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestCSVEscapesCommasInColumnNames(t *testing.T) {
	tab := &Table{XLabel: "n", Columns: []string{"a,b"}}
	if err := tab.AddRow(1, Summary{}); err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(csv.String(), "\n")[0], "a,b_mean") {
		t.Error("comma in column name leaked into CSV header")
	}
}
