// Package metrics provides the statistics the paper reports: sample means
// with 95% confidence intervals (Student's t) over repeated simulation
// runs, and helpers to format result series as aligned tables or CSV.
package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrNoSamples is returned when a summary is requested over an empty sample.
var ErrNoSamples = errors.New("metrics: no samples")

// Sample accumulates observations of one scalar metric.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation; ok is false for an empty sample
// (where 0 would be indistinguishable from a real observation of 0).
func (s *Sample) Min() (min float64, ok bool) {
	if len(s.values) == 0 {
		return 0, false
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}

// Max returns the largest observation; ok is false for an empty sample.
func (s *Sample) Max() (max float64, ok bool) {
	if len(s.values) == 0 {
		return 0, false
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}

// tCritical95 holds two-sided 95% critical values of Student's t for
// degrees of freedom 1..30; beyond 30 the normal approximation 1.96 is
// used, as the paper's 20-graph samples never need more.
var tCritical95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
// Samples with fewer than 2 observations have zero width.
func (s *Sample) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df <= len(tCritical95) {
		t = tCritical95[df-1]
	}
	return t * s.StdDev() / math.Sqrt(float64(n))
}

// Summary is a point estimate with its confidence interval.
type Summary struct {
	Mean float64
	CI   float64
	N    int
}

// Summarize returns the sample's summary, or ErrNoSamples when empty.
func (s *Sample) Summarize() (Summary, error) {
	if len(s.values) == 0 {
		return Summary{}, ErrNoSamples
	}
	return Summary{Mean: s.Mean(), CI: s.CI95(), N: len(s.values)}, nil
}

// String formats the summary as "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.CI)
}

// Table is a result series: one row per x value (e.g. network size), one
// summarized column per metric.
type Table struct {
	// Title labels the table (e.g. "Experiment 1: proposals per event").
	Title string
	// XLabel names the x column (e.g. "switches").
	XLabel string
	// Columns names the metric columns.
	Columns []string
	// Rows holds, per x value, one Summary per column.
	Rows []Row
}

// Row is one x value and its summarized metrics.
type Row struct {
	X     float64
	Cells []Summary
}

// AddRow appends a row; the number of cells must match Columns.
func (t *Table) AddRow(x float64, cells ...Summary) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, Row{X: x, Cells: cells})
	return nil
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "  %-22s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12g", r.X)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "  %-22s", c.String())
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV with mean and ci columns per metric.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		name := strings.ReplaceAll(c, ",", " ")
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", name, name)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%g", r.X)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, ",%.4f,%.4f", c.Mean, c.CI)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
