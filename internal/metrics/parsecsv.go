package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseCSV reads a table previously rendered by WriteCSV. The header row
// fixes the x label and the metric columns (each contributed as a
// <name>_mean,<name>_ci95 pair); every data row must carry exactly one
// value per header field. Sample sizes are not part of the CSV format, so
// the parsed summaries have N == 0.
func ParseCSV(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("metrics: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 1 || len(header)%2 != 1 {
		return nil, fmt.Errorf("metrics: CSV header has %d fields, want x plus mean/ci95 pairs", len(header))
	}
	t := &Table{XLabel: header[0]}
	for i := 1; i < len(header); i += 2 {
		name, ok := strings.CutSuffix(header[i], "_mean")
		if !ok {
			return nil, fmt.Errorf("metrics: CSV column %q is not a _mean column", header[i])
		}
		if want := name + "_ci95"; header[i+1] != want {
			return nil, fmt.Errorf("metrics: CSV column %q should be %q", header[i+1], want)
		}
		t.Columns = append(t.Columns, name)
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("metrics: CSV line %d has %d fields, want %d", lineNo, len(fields), len(header))
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: CSV line %d: bad x %q", lineNo, fields[0])
		}
		cells := make([]Summary, 0, len(t.Columns))
		for i := 1; i < len(fields); i += 2 {
			mean, err1 := strconv.ParseFloat(fields[i], 64)
			ci, err2 := strconv.ParseFloat(fields[i+1], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("metrics: CSV line %d: bad cell %q,%q", lineNo, fields[i], fields[i+1])
			}
			cells = append(cells, Summary{Mean: mean, CI: ci})
		}
		if err := t.AddRow(x, cells...); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
