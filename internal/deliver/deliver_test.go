package deliver

import (
	"errors"
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

func lineSetup(t *testing.T) (*topo.Graph, *mctree.Tree, mctree.Members) {
	t.Helper()
	g, err := topo.Line(5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := mctree.Members{0: mctree.SenderReceiver, 4: mctree.SenderReceiver}
	tr, err := (route.SPH{}).Compute(g, mctree.Symmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr, members
}

func TestSymmetricDelivery(t *testing.T) {
	g, tr, members := lineSetup(t)
	rep, err := Multicast(g, tr, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Contact != 0 || rep.Source != 0 {
		t.Errorf("contact/source = %d/%d", rep.Contact, rep.Source)
	}
	if d := rep.Latency[4]; d != 40*time.Microsecond {
		t.Errorf("latency to 4 = %v", d)
	}
	if rep.Copies != 4 {
		t.Errorf("copies = %d", rep.Copies)
	}
	if rep.MaxLatency() != 40*time.Microsecond {
		t.Errorf("max latency = %v", rep.MaxLatency())
	}
	// The other member can send too.
	if _, err := Multicast(g, tr, members, 4); err != nil {
		t.Errorf("reverse direction: %v", err)
	}
	// A non-member cannot.
	if _, err := Multicast(g, tr, members, 2); !errors.Is(err, ErrNotSender) {
		t.Errorf("non-member send err = %v", err)
	}
}

func TestAsymmetricOnlySenderMaySend(t *testing.T) {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := mctree.Members{0: mctree.Sender, 3: mctree.Receiver}
	tr, err := (route.SPT{}).Compute(g, mctree.Asymmetric, members)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Multicast(g, tr, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Latency) != 1 || rep.Latency[3] != 30*time.Microsecond {
		t.Errorf("latency = %v", rep.Latency)
	}
	// The receiver must not transmit.
	if _, err := Multicast(g, tr, members, 3); !errors.Is(err, ErrNotSender) {
		t.Errorf("receiver send err = %v", err)
	}
	// The sender does not receive its own packet.
	if _, ok := rep.Latency[0]; ok {
		t.Error("sender delivered to itself")
	}
}

func TestReceiverOnlyTwoStageDelivery(t *testing.T) {
	// Members 0 and 2 on a line of 6; sender at 5 is off-tree. Its packet
	// travels unicast to the contact node (member 2) then over the tree.
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := mctree.Members{0: mctree.Receiver, 2: mctree.Receiver}
	tr, err := (route.SPH{}).Compute(g, mctree.ReceiverOnly, members)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Multicast(g, tr, members, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Contact != 2 {
		t.Errorf("contact = %d, want 2", rep.Contact)
	}
	// 5→2 unicast = 30µs; 2 receives at 30µs; 0 at 30+20=50µs.
	if rep.Latency[2] != 30*time.Microsecond || rep.Latency[0] != 50*time.Microsecond {
		t.Errorf("latency = %v", rep.Latency)
	}
	// Copies: 3 unicast hops + 2 tree edges.
	if rep.Copies != 5 {
		t.Errorf("copies = %d", rep.Copies)
	}
}

func TestDeliveryFailsOverDownedTreeEdge(t *testing.T) {
	g, tr, members := lineSetup(t)
	if err := g.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := Multicast(g, tr, members, 0); err == nil {
		t.Error("delivery over failed link succeeded")
	}
}

func TestDeliveryErrors(t *testing.T) {
	g, tr, members := lineSetup(t)
	if _, err := Multicast(g, nil, members, 0); err == nil {
		t.Error("nil tree accepted")
	}
	bad := tr.Clone()
	bad.Kind = mctree.Kind(9)
	if _, err := Multicast(g, bad, members, 0); err == nil {
		t.Error("invalid kind accepted")
	}
	// Member not spanned by the tree: build a tree over {0,2} only, then
	// claim 4 is also a member.
	short := mctree.New(mctree.Symmetric)
	short.AddEdge(0, 1)
	short.AddEdge(1, 2)
	orphan := mctree.Members{0: mctree.SenderReceiver, 2: mctree.Receiver, 4: mctree.Receiver}
	if _, err := Multicast(g, short, orphan, 0); err == nil {
		t.Error("unreached member not detected")
	}
}

func TestSingletonMC(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	members := mctree.Members{1: mctree.SenderReceiver}
	tr := mctree.New(mctree.Symmetric)
	rep, err := Multicast(g, tr, members, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Latency) != 0 || rep.Copies != 0 {
		t.Errorf("singleton delivery report = %+v", rep)
	}
}
