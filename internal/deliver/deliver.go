// Package deliver models the data plane over an installed multipoint
// connection: given the MC topology the protocol converged on, it traces
// how a packet actually reaches the members, per MC type (paper §1):
//
//   - symmetric: any member sends; the packet fans out over the shared
//     tree from the sender's switch;
//   - receiver-only: a (possibly non-member) sender first forwards the
//     packet toward a contact node — each switch independently toward its
//     own nearest receiving member — and the packet enters the MC at the
//     first switch on the topology, which fans it out (the paper's
//     two-stage delivery, §1);
//   - asymmetric: only senders may transmit; the tree is rooted at the
//     source.
//
// The contact stage is resolved greedily per switch (minimum image delay,
// member-ID tie-break, lowest-ID predecessor chains) precisely because that
// is the only decision a distributed per-switch FIB can make: internal/fib
// compiles the same rule into each switch's table, and the oracle
// cross-check test holds the two implementations bit-for-bit equal.
//
// The package verifies exactly-once delivery and reports per-receiver
// latencies and link transmissions, which the tests use to prove that the
// trees the protocol installs actually carry traffic.
package deliver

import (
	"errors"
	"fmt"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// ErrNotSender is returned when the source is not allowed to transmit on
// the connection.
var ErrNotSender = errors.New("deliver: source may not send on this MC")

// Report describes one multicast transmission.
type Report struct {
	// Source is the sending switch.
	Source topo.SwitchID
	// Contact is the switch where the packet entered the MC (differs from
	// Source only for receiver-only MCs with off-tree senders).
	Contact topo.SwitchID
	// Latency maps each receiving member to its end-to-end delay.
	Latency map[topo.SwitchID]time.Duration
	// Copies is the number of link transmissions used.
	Copies int
}

// MaxLatency returns the worst receiver latency (0 if no receivers).
func (r *Report) MaxLatency() time.Duration {
	var m time.Duration
	for _, d := range r.Latency {
		if d > m {
			m = d
		}
	}
	return m
}

// Multicast traces one packet from source over tree t to members, using
// g's link delays. It returns an error if the source is not entitled to
// send, if the packet cannot enter the MC, or if some receiving member is
// unreachable over the tree.
func Multicast(g *topo.Graph, t *mctree.Tree, members mctree.Members, source topo.SwitchID) (*Report, error) {
	if t == nil {
		return nil, errors.New("deliver: nil topology")
	}
	if err := checkMaySend(t.Kind, members, source); err != nil {
		return nil, err
	}
	rep := &Report{
		Source:  source,
		Contact: source,
		Latency: make(map[topo.SwitchID]time.Duration),
	}

	var entryDelay time.Duration
	entry := source
	entered := func(s topo.SwitchID) bool { return t.On(s) || members[s] != 0 }
	if !entered(entry) {
		if t.Kind != mctree.ReceiverOnly {
			return nil, fmt.Errorf("deliver: source %d is not on the MC topology", source)
		}
		// Stage one: forward greedily, hop by hop, toward the contact node.
		// Each switch routes toward its own nearest receiving member
		// (minimum delay, then lowest member ID, along lowest-ID-predecessor
		// shortest paths — the pooled SSSP kernel's tie-break) and the
		// packet enters the MC at the first switch on the topology. This is
		// exactly what internal/fib compiles into each switch, so the trace
		// predicts distributed forwarding hop for hop.
		sc := topo.AcquireSSSP()
		defer topo.ReleaseSSSP(sc)
		n := g.NumSwitches()
		for steps := 0; !entered(entry); steps++ {
			if steps > n {
				return nil, fmt.Errorf("deliver: contact route from %d does not converge", source)
			}
			sc.Reset(n)
			sc.Seed(entry)
			g.RunSSSP(sc, 0)
			best := topo.NoSwitch
			bestD := topo.Unreachable
			for _, m := range members.Receivers() {
				if int(m) < 0 || int(m) >= n {
					continue
				}
				if d := sc.Dist[m]; d < bestD || (d == bestD && (best == topo.NoSwitch || m < best)) {
					best, bestD = m, d
				}
			}
			if best == topo.NoSwitch || bestD == topo.Unreachable {
				return nil, fmt.Errorf("deliver: no reachable contact node for source %d", source)
			}
			next := best
			for sc.Pred[next] != entry {
				next = sc.Pred[next]
				if next == topo.NoSwitch {
					return nil, fmt.Errorf("deliver: broken contact route at %d", entry)
				}
			}
			l, ok := g.Link(entry, next)
			if !ok || l.Down {
				return nil, fmt.Errorf("deliver: contact hop (%d,%d) unusable", entry, next)
			}
			rep.Copies++
			entryDelay += l.Delay
			entry = next
		}
		rep.Contact = entry
	}

	// Stage two: fan out over the tree from the entry point, BFS with
	// accumulated delays. Each tree edge is traversed at most once, giving
	// exactly-once delivery by construction; the traversal double-checks.
	type hop struct {
		s topo.SwitchID
		d time.Duration
	}
	seen := map[topo.SwitchID]bool{entry: true}
	queue := []hop{{entry, entryDelay}}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if role, ok := members[cur.s]; ok && role.CanReceive() && cur.s != source {
			if _, dup := rep.Latency[cur.s]; dup {
				return nil, fmt.Errorf("deliver: duplicate delivery at %d", cur.s)
			}
			rep.Latency[cur.s] = cur.d
		}
		for _, nb := range t.Neighbors(cur.s) {
			if seen[nb] {
				continue
			}
			l, ok := g.Link(cur.s, nb)
			if !ok || l.Down {
				return nil, fmt.Errorf("deliver: tree edge (%d,%d) unusable", cur.s, nb)
			}
			seen[nb] = true
			rep.Copies++
			queue = append(queue, hop{nb, cur.d + l.Delay})
		}
	}

	// Every receiving member other than the source must have been reached.
	for _, m := range members.IDs() {
		if m == source || !members[m].CanReceive() {
			continue
		}
		if _, ok := rep.Latency[m]; !ok {
			return nil, fmt.Errorf("deliver: member %d unreached", m)
		}
	}
	return rep, nil
}

// checkMaySend enforces the per-kind sending rules.
func checkMaySend(kind mctree.Kind, members mctree.Members, source topo.SwitchID) error {
	switch kind {
	case mctree.Symmetric:
		role, ok := members[source]
		if !ok || !role.CanSend() {
			return fmt.Errorf("%w: %d is not a sending member", ErrNotSender, source)
		}
	case mctree.Asymmetric:
		role, ok := members[source]
		if !ok || !role.CanSend() {
			return fmt.Errorf("%w: %d is not a registered sender", ErrNotSender, source)
		}
	case mctree.ReceiverOnly:
		// Anyone may send to a receiver-only MC.
	default:
		return fmt.Errorf("deliver: invalid MC kind %d", kind)
	}
	return nil
}
