// Package deliver models the data plane over an installed multipoint
// connection: given the MC topology the protocol converged on, it traces
// how a packet actually reaches the members, per MC type (paper §1):
//
//   - symmetric: any member sends; the packet fans out over the shared
//     tree from the sender's switch;
//   - receiver-only: a (possibly non-member) sender first delivers the
//     packet to a contact node — the nearest member switch — which then
//     forwards it over the MC (the paper's two-stage delivery);
//   - asymmetric: only senders may transmit; the tree is rooted at the
//     source.
//
// The package verifies exactly-once delivery and reports per-receiver
// latencies and link transmissions, which the tests use to prove that the
// trees the protocol installs actually carry traffic.
package deliver

import (
	"errors"
	"fmt"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// ErrNotSender is returned when the source is not allowed to transmit on
// the connection.
var ErrNotSender = errors.New("deliver: source may not send on this MC")

// Report describes one multicast transmission.
type Report struct {
	// Source is the sending switch.
	Source topo.SwitchID
	// Contact is the switch where the packet entered the MC (differs from
	// Source only for receiver-only MCs with off-tree senders).
	Contact topo.SwitchID
	// Latency maps each receiving member to its end-to-end delay.
	Latency map[topo.SwitchID]time.Duration
	// Copies is the number of link transmissions used.
	Copies int
}

// MaxLatency returns the worst receiver latency (0 if no receivers).
func (r *Report) MaxLatency() time.Duration {
	var m time.Duration
	for _, d := range r.Latency {
		if d > m {
			m = d
		}
	}
	return m
}

// Multicast traces one packet from source over tree t to members, using
// g's link delays. It returns an error if the source is not entitled to
// send, if the packet cannot enter the MC, or if some receiving member is
// unreachable over the tree.
func Multicast(g *topo.Graph, t *mctree.Tree, members mctree.Members, source topo.SwitchID) (*Report, error) {
	if t == nil {
		return nil, errors.New("deliver: nil topology")
	}
	if err := checkMaySend(t.Kind, members, source); err != nil {
		return nil, err
	}
	rep := &Report{
		Source:  source,
		Contact: source,
		Latency: make(map[topo.SwitchID]time.Duration),
	}

	var entryDelay time.Duration
	entry := source
	onTree := t.On(source) || (len(members) == 1 && members[source] != 0)
	if !onTree {
		if t.Kind != mctree.ReceiverOnly {
			return nil, fmt.Errorf("deliver: source %d is not on the MC topology", source)
		}
		// Stage one: unicast to the nearest member (the contact node).
		spt := g.ShortestPaths(source)
		best := topo.NoSwitch
		bestD := time.Duration(-1)
		for _, m := range members.IDs() {
			d := spt.Delay[m]
			if d < 0 {
				continue
			}
			if bestD < 0 || d < bestD || (d == bestD && m < best) {
				best, bestD = m, d
			}
		}
		if best == topo.NoSwitch {
			return nil, fmt.Errorf("deliver: no reachable contact node for source %d", source)
		}
		entry = best
		entryDelay = bestD
		rep.Contact = best
		rep.Copies += len(spt.Path(best)) - 1
	}

	// Stage two: fan out over the tree from the entry point, BFS with
	// accumulated delays. Each tree edge is traversed at most once, giving
	// exactly-once delivery by construction; the traversal double-checks.
	type hop struct {
		s topo.SwitchID
		d time.Duration
	}
	seen := map[topo.SwitchID]bool{entry: true}
	queue := []hop{{entry, entryDelay}}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if role, ok := members[cur.s]; ok && role.CanReceive() && cur.s != source {
			if _, dup := rep.Latency[cur.s]; dup {
				return nil, fmt.Errorf("deliver: duplicate delivery at %d", cur.s)
			}
			rep.Latency[cur.s] = cur.d
		}
		for _, nb := range t.Neighbors(cur.s) {
			if seen[nb] {
				continue
			}
			l, ok := g.Link(cur.s, nb)
			if !ok || l.Down {
				return nil, fmt.Errorf("deliver: tree edge (%d,%d) unusable", cur.s, nb)
			}
			seen[nb] = true
			rep.Copies++
			queue = append(queue, hop{nb, cur.d + l.Delay})
		}
	}

	// Every receiving member other than the source must have been reached.
	for _, m := range members.IDs() {
		if m == source || !members[m].CanReceive() {
			continue
		}
		if _, ok := rep.Latency[m]; !ok {
			return nil, fmt.Errorf("deliver: member %d unreached", m)
		}
	}
	return rep, nil
}

// checkMaySend enforces the per-kind sending rules.
func checkMaySend(kind mctree.Kind, members mctree.Members, source topo.SwitchID) error {
	switch kind {
	case mctree.Symmetric:
		role, ok := members[source]
		if !ok || !role.CanSend() {
			return fmt.Errorf("%w: %d is not a sending member", ErrNotSender, source)
		}
	case mctree.Asymmetric:
		role, ok := members[source]
		if !ok || !role.CanSend() {
			return fmt.Errorf("%w: %d is not a registered sender", ErrNotSender, source)
		}
	case mctree.ReceiverOnly:
		// Anyone may send to a receiver-only MC.
	default:
		return fmt.Errorf("deliver: invalid MC kind %d", kind)
	}
	return nil
}
