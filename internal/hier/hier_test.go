package hier

import (
	"errors"
	"testing"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/deliver"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

const (
	testTc     = 100 * time.Microsecond
	testPerHop = 2 * time.Microsecond
)

// fourAreas builds a 32-switch network: four 8-switch areas (each a line
// hanging off its gateway) with gateways 0, 8, 16, 24 in a backbone ring.
func fourAreas(t *testing.T) (*topo.Graph, []AreaSpec) {
	t.Helper()
	g := topo.New(32)
	var areas []AreaSpec
	for a := 0; a < 4; a++ {
		base := topo.SwitchID(a * 8)
		var ids []topo.SwitchID
		for i := 0; i < 8; i++ {
			ids = append(ids, base+topo.SwitchID(i))
		}
		// Line inside the area plus one chord for redundancy.
		for i := 0; i < 7; i++ {
			if err := g.AddLink(base+topo.SwitchID(i), base+topo.SwitchID(i+1), 10*time.Microsecond, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.AddLink(base, base+4, 25*time.Microsecond, 1); err != nil {
			t.Fatal(err)
		}
		areas = append(areas, AreaSpec{Switches: ids, Gateway: base})
	}
	for a := 0; a < 4; a++ {
		from := topo.SwitchID(a * 8)
		to := topo.SwitchID(((a + 1) % 4) * 8)
		if err := g.AddLink(from, to, 50*time.Microsecond, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g, areas
}

func newDomain(t *testing.T, g *topo.Graph, areas []AreaSpec) (*sim.Kernel, *Domain) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	d, err := NewDomain(k, Config{Global: g, Areas: areas, PerHop: testPerHop, Tc: testTc})
	if err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestPartitionValidation(t *testing.T) {
	g, areas := fourAreas(t)
	k := sim.NewKernel()
	defer k.Shutdown()

	if _, err := NewDomain(k, Config{Areas: areas}); err == nil {
		t.Error("missing global graph accepted")
	}
	if _, err := NewDomain(k, Config{Global: g, Areas: areas[:1]}); err == nil {
		t.Error("single area accepted")
	}
	// Duplicate switch across areas.
	dup := append([]AreaSpec(nil), areas...)
	dup[1] = AreaSpec{Switches: append([]topo.SwitchID{0}, areas[1].Switches...), Gateway: 8}
	if _, err := NewDomain(k, Config{Global: g, Areas: dup}); err == nil {
		t.Error("overlapping areas accepted")
	}
	// Missing switch.
	short := append([]AreaSpec(nil), areas...)
	short[3] = AreaSpec{Switches: areas[3].Switches[:7], Gateway: 24}
	if _, err := NewDomain(k, Config{Global: g, Areas: short}); err == nil {
		t.Error("incomplete partition accepted")
	}
	// Gateway outside its area.
	badGw := append([]AreaSpec(nil), areas...)
	badGw[0] = AreaSpec{Switches: areas[0].Switches, Gateway: 9}
	if _, err := NewDomain(k, Config{Global: g, Areas: badGw}); err == nil {
		t.Error("foreign gateway accepted")
	}
	// Inter-area link not between gateways.
	g2 := g.Clone()
	if err := g2.AddLink(1, 9, time.Microsecond, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(k, Config{Global: g2, Areas: areas}); err == nil {
		t.Error("non-gateway inter-area link accepted")
	}
	// Empty area.
	empty := append([]AreaSpec(nil), areas...)
	empty = append(empty, AreaSpec{})
	if _, err := NewDomain(k, Config{Global: g, Areas: empty}); err == nil {
		t.Error("empty area accepted")
	}
}

func TestGatewayCannotHostMembers(t *testing.T) {
	g, areas := fourAreas(t)
	_, d := newDomain(t, g, areas)
	if err := d.Join(0, 0, 1, mctree.SenderReceiver); !errors.Is(err, ErrGatewayMember) {
		t.Errorf("gateway join err = %v", err)
	}
	if err := d.Leave(0, 8, 1); !errors.Is(err, ErrGatewayMember) {
		t.Errorf("gateway leave err = %v", err)
	}
	if err := d.Join(0, 99, 1, mctree.SenderReceiver); err == nil {
		t.Error("unknown switch accepted")
	}
}

func TestSingleAreaMCStaysLocal(t *testing.T) {
	g, areas := fourAreas(t)
	k, d := newDomain(t, g, areas)
	if err := d.Join(0, 2, 1, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := d.Join(time.Millisecond, 5, 1, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// The backbone heard nothing.
	if ids := d.Backbone().Switch(0).Connections(); len(ids) != 0 {
		t.Errorf("backbone has state %v for a single-area MC", ids)
	}
	// Other areas heard nothing either.
	if ids := d.Area(1).Switch(0).Connections(); len(ids) != 0 {
		t.Errorf("area 1 has state %v", ids)
	}
	tree, err := d.GlobalTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g, d.GlobalMembers(1)); err != nil {
		t.Errorf("global tree invalid: %v", err)
	}
}

func TestMultiAreaMCSpansHierarchy(t *testing.T) {
	g, areas := fourAreas(t)
	k, d := newDomain(t, g, areas)
	members := []topo.SwitchID{3, 12, 21, 30} // one per area
	for i, s := range members {
		if err := d.Join(sim.Time(i)*2*time.Millisecond, s, 1, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	tree, err := d.GlobalTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	gm := d.GlobalMembers(1)
	if len(gm) != 4 {
		t.Fatalf("global members = %v", gm)
	}
	if err := tree.Validate(g, gm); err != nil {
		t.Fatalf("global tree invalid: %v\ntree: %v", err, tree)
	}
	// Every gateway is on the tree (anchoring).
	for _, a := range areas {
		if !tree.On(a.Gateway) {
			t.Errorf("gateway %d off the global tree", a.Gateway)
		}
	}
	// Data-plane check: a member's packet reaches all other members over
	// the assembled tree.
	rep, err := deliver.Multicast(g, tree, gm, 3)
	if err != nil {
		t.Fatalf("delivery over hierarchical tree: %v", err)
	}
	if len(rep.Latency) != 3 {
		t.Errorf("reached %d members", len(rep.Latency))
	}
}

func TestShrinkingToOneAreaRemovesAnchors(t *testing.T) {
	g, areas := fourAreas(t)
	k, d := newDomain(t, g, areas)
	if err := d.Join(0, 3, 1, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if err := d.Join(2*time.Millisecond, 12, 1, mctree.SenderReceiver); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// Two areas active: backbone MC alive.
	if ids := d.Backbone().Switch(0).Connections(); len(ids) != 1 {
		t.Fatalf("backbone connections = %v", ids)
	}
	// Area 1's member leaves: the MC collapses back into area 0.
	if err := d.Leave(k.Now()+2*time.Millisecond, 12, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	if ids := d.Backbone().Switch(0).Connections(); len(ids) != 0 {
		t.Errorf("backbone still tracks %v", ids)
	}
	tree, err := d.GlobalTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g, d.GlobalMembers(1)); err != nil {
		t.Errorf("collapsed tree invalid: %v", err)
	}
	for _, e := range tree.Edges() {
		if e.A >= 8 || e.B >= 8 {
			t.Errorf("collapsed tree leaks outside area 0: %v", e)
		}
	}
}

// TestHierarchicalFloodingCheaperThanFlat measures the headline benefit:
// area-scoped floods transmit far fewer copies than flat network-wide
// floods for the same intra-area churn.
func TestHierarchicalFloodingCheaperThanFlat(t *testing.T) {
	g, areas := fourAreas(t)
	events := []struct {
		at     sim.Time
		s      topo.SwitchID
		isJoin bool
	}{
		{0, 3, true},
		{4 * time.Millisecond, 5, true},
		{8 * time.Millisecond, 12, true},
		{12 * time.Millisecond, 14, true},
		{16 * time.Millisecond, 5, false},
		{20 * time.Millisecond, 21, true},
	}

	// Hierarchical.
	k1, d1 := newDomain(t, g, areas)
	for _, e := range events {
		var err error
		if e.isJoin {
			err = d1.Join(e.at, e.s, 1, mctree.SenderReceiver)
		} else {
			err = d1.Leave(e.at, e.s, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d1.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	hierStats := d1.Stats()

	// Flat D-GMC over the same global graph and events.
	k2 := sim.NewKernel()
	defer k2.Shutdown()
	net, err := flood.New(k2, g, testPerHop, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := core.NewDomain(k2, core.Config{Net: net, ComputeTime: testTc, Algorithm: route.SPH{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.isJoin {
			flat.Join(e.at, e.s, 1, mctree.SenderReceiver)
		} else {
			flat.Leave(e.at, e.s, 1)
		}
	}
	if _, err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := flat.CheckConverged(); err != nil {
		t.Fatal(err)
	}

	if hierStats.Copies >= net.Copies() {
		t.Errorf("hierarchy did not reduce flooding: %d copies vs flat %d",
			hierStats.Copies, net.Copies())
	}
	t.Logf("flood copies: hierarchical=%d flat=%d (%.1f%% saved); computations %d vs %d",
		hierStats.Copies, net.Copies(),
		100*(1-float64(hierStats.Copies)/float64(net.Copies())),
		hierStats.Computations, flat.Metrics().Computations)
}

func TestGlobalTopologyNilForUnknownConn(t *testing.T) {
	g, areas := fourAreas(t)
	_, d := newDomain(t, g, areas)
	tree, err := d.GlobalTopology(42)
	if err != nil || tree != nil {
		t.Errorf("unknown conn: tree=%v err=%v", tree, err)
	}
}

func TestMultipleConnectionsAcrossHierarchy(t *testing.T) {
	g, areas := fourAreas(t)
	k, d := newDomain(t, g, areas)
	// Conn 1 spans areas 0+1; conn 2 is local to area 2; conn 3 spans 2+3.
	steps := []struct {
		at   sim.Time
		s    topo.SwitchID
		conn lsa.ConnID
	}{
		{0, 2, 1}, {2 * time.Millisecond, 10, 1},
		{4 * time.Millisecond, 18, 2}, {6 * time.Millisecond, 20, 2},
		{8 * time.Millisecond, 19, 3}, {10 * time.Millisecond, 27, 3},
	}
	for _, st := range steps {
		if err := d.Join(st.at, st.s, st.conn, mctree.SenderReceiver); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// The backbone carries conns 1 and 3 but not the area-local conn 2.
	bb := d.Backbone().Switch(0).Connections()
	has := map[lsa.ConnID]bool{}
	for _, id := range bb {
		has[id] = true
	}
	if !has[1] || !has[3] || has[2] {
		t.Errorf("backbone connections = %v, want {1,3}", bb)
	}
	for conn := lsa.ConnID(1); conn <= 3; conn++ {
		tree, err := d.GlobalTopology(conn)
		if err != nil {
			t.Fatalf("conn %d: %v", conn, err)
		}
		if err := tree.Validate(g, d.GlobalMembers(conn)); err != nil {
			t.Errorf("conn %d tree invalid: %v", conn, err)
		}
	}
}

func TestHierarchyDeterministicReplay(t *testing.T) {
	runOnce := func() (string, Stats) {
		g, areas := fourAreas(t)
		k := sim.NewKernel()
		defer k.Shutdown()
		d, err := NewDomain(k, Config{Global: g, Areas: areas, PerHop: testPerHop, Tc: testTc})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range []topo.SwitchID{3, 12, 21, 30} {
			if err := d.Join(sim.Time(i)*time.Millisecond, s, 1, mctree.SenderReceiver); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		tree, err := d.GlobalTopology(1)
		if err != nil {
			t.Fatal(err)
		}
		return tree.String(), d.Stats()
	}
	t1, s1 := runOnce()
	t2, s2 := runOnce()
	if t1 != t2 || s1 != s2 {
		t.Errorf("replay diverged: %s %+v vs %s %+v", t1, s1, t2, s2)
	}
}
