// Package hier implements the two-level hierarchical extension of D-GMC
// that the paper names as ongoing work (§2): "Scalability can be addressed
// by introducing a routing hierarchy into large networks. The combination
// of an LSR protocol and routing hierarchy is under consideration for the
// ATM PNNI standard."
//
// The model is the *basic* PNNI-style hierarchy:
//
//   - the network is partitioned into areas, each with one gateway
//     (border) switch;
//   - gateways are interconnected by backbone links;
//   - every area runs its own D-GMC domain with area-scoped flooding, and
//     the gateways additionally run a backbone D-GMC domain;
//   - a multipoint connection spanning several areas is realized as the
//     union of one intra-area tree per active area (anchored at the
//     area's gateway) and one backbone tree over the active gateways.
//
// Because every component tree is built by the unmodified core protocol,
// all of D-GMC's properties (event-driven proposals, vector-timestamp
// consistency, withddrawal of stale proposals) hold per level; the
// hierarchy's win is that a membership event floods only its own area
// (plus, on area activation/deactivation, the much smaller backbone)
// instead of the whole network.
//
// The coordinator that joins/leaves gateways as areas activate models the
// aggregation logic real border switches would derive from their
// area-scoped membership LSAs; in this simulation it reacts to the same
// events at the same virtual instants.
package hier

import (
	"errors"
	"fmt"

	"dgmc/internal/core"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// ErrGatewayMember is returned when a host membership is requested at a
// gateway switch; the basic hierarchy reserves gateways for transit.
var ErrGatewayMember = errors.New("hier: gateway switches cannot host members")

// AreaSpec describes one area of the partition, in global switch IDs.
type AreaSpec struct {
	// Switches lists the area's switches (including the gateway).
	Switches []topo.SwitchID
	// Gateway is the area's border switch; it must be in Switches and is
	// the only switch with backbone links.
	Gateway topo.SwitchID
}

// Config configures a hierarchical domain.
type Config struct {
	// Global is the full topology: intra-area links plus backbone links
	// between gateways. Required.
	Global *topo.Graph
	// Areas partitions the global switches. Required.
	Areas []AreaSpec
	// PerHop is the per-hop LSA time used on both levels.
	PerHop sim.Time
	// Tc is the topology computation time on both levels.
	Tc sim.Time
	// Algorithm computes MC topologies (default route.SPH{}).
	Algorithm route.Algorithm
}

// area is one level-1 domain with its ID mappings.
type area struct {
	spec         AreaSpec
	graph        *topo.Graph
	net          *flood.Network
	domain       *core.Domain
	toLocal      map[topo.SwitchID]topo.SwitchID
	toGlobal     []topo.SwitchID
	localGateway topo.SwitchID
}

// Domain is a hierarchical D-GMC network: per-area domains plus a backbone
// domain over the gateways, sharing one simulation kernel.
type Domain struct {
	k   *sim.Kernel
	cfg Config

	areas    []*area
	areaOf   map[topo.SwitchID]int // global switch -> area index
	backbone *area                 // gateways as a pseudo-area

	// members tracks real (host) members per connection per area, to run
	// the activation logic.
	members map[lsa.ConnID]map[int]map[topo.SwitchID]bool
	// anchored tracks which areas currently have their gateway joined to
	// the area-level and backbone-level MCs.
	anchored map[lsa.ConnID]map[int]bool
}

// NewDomain validates the partition and builds all level domains.
func NewDomain(k *sim.Kernel, cfg Config) (*Domain, error) {
	if cfg.Global == nil {
		return nil, errors.New("hier: Config.Global is required")
	}
	if len(cfg.Areas) < 2 {
		return nil, fmt.Errorf("hier: need at least 2 areas, got %d", len(cfg.Areas))
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = route.SPH{}
	}
	d := &Domain{
		k:        k,
		cfg:      cfg,
		areaOf:   make(map[topo.SwitchID]int),
		members:  make(map[lsa.ConnID]map[int]map[topo.SwitchID]bool),
		anchored: make(map[lsa.ConnID]map[int]bool),
	}
	// Partition validation: every switch in exactly one area.
	for ai, spec := range cfg.Areas {
		if len(spec.Switches) == 0 {
			return nil, fmt.Errorf("hier: area %d is empty", ai)
		}
		gwOK := false
		for _, s := range spec.Switches {
			if s < 0 || int(s) >= cfg.Global.NumSwitches() {
				return nil, fmt.Errorf("hier: area %d switch %d out of range", ai, s)
			}
			if prev, dup := d.areaOf[s]; dup {
				return nil, fmt.Errorf("hier: switch %d in areas %d and %d", s, prev, ai)
			}
			d.areaOf[s] = ai
			if s == spec.Gateway {
				gwOK = true
			}
		}
		if !gwOK {
			return nil, fmt.Errorf("hier: area %d gateway %d not among its switches", ai, spec.Gateway)
		}
	}
	if len(d.areaOf) != cfg.Global.NumSwitches() {
		return nil, fmt.Errorf("hier: partition covers %d of %d switches", len(d.areaOf), cfg.Global.NumSwitches())
	}
	// Link validation: intra-area anywhere; inter-area only gateway-to-gateway.
	for _, l := range cfg.Global.Links() {
		aA, aB := d.areaOf[l.A], d.areaOf[l.B]
		if aA == aB {
			continue
		}
		if l.A != cfg.Areas[aA].Gateway || l.B != cfg.Areas[aB].Gateway {
			return nil, fmt.Errorf("hier: inter-area link (%d,%d) not between gateways", l.A, l.B)
		}
	}

	// Build area domains.
	for ai, spec := range cfg.Areas {
		a, err := d.buildArea(ai, spec)
		if err != nil {
			return nil, err
		}
		d.areas = append(d.areas, a)
	}
	// Build the backbone domain over the gateways.
	bb, err := d.buildBackbone()
	if err != nil {
		return nil, err
	}
	d.backbone = bb
	return d, nil
}

// buildArea extracts the area subgraph, remaps IDs, and spins up a D-GMC
// domain with area-scoped flooding.
func (d *Domain) buildArea(ai int, spec AreaSpec) (*area, error) {
	a := &area{
		spec:     spec,
		toLocal:  make(map[topo.SwitchID]topo.SwitchID, len(spec.Switches)),
		toGlobal: make([]topo.SwitchID, len(spec.Switches)),
	}
	ids := append([]topo.SwitchID(nil), spec.Switches...)
	sortSwitches(ids)
	for i, s := range ids {
		a.toLocal[s] = topo.SwitchID(i)
		a.toGlobal[i] = s
	}
	a.localGateway = a.toLocal[spec.Gateway]
	a.graph = topo.New(len(ids))
	for _, l := range d.cfg.Global.Links() {
		la, okA := a.toLocal[l.A]
		lb, okB := a.toLocal[l.B]
		if !okA || !okB {
			continue
		}
		if err := a.graph.AddLink(la, lb, l.Delay, l.Capacity); err != nil {
			return nil, fmt.Errorf("hier: area %d: %w", ai, err)
		}
	}
	if !a.graph.Connected() {
		return nil, fmt.Errorf("hier: area %d subgraph is disconnected", ai)
	}
	net, err := flood.New(d.k, a.graph, d.cfg.PerHop, flood.Direct)
	if err != nil {
		return nil, err
	}
	a.net = net
	dom, err := core.NewDomain(d.k, core.Config{Net: net, ComputeTime: d.cfg.Tc, Algorithm: d.cfg.Algorithm})
	if err != nil {
		return nil, err
	}
	a.domain = dom
	return a, nil
}

// buildBackbone assembles the gateway-level pseudo-area.
func (d *Domain) buildBackbone() (*area, error) {
	a := &area{toLocal: make(map[topo.SwitchID]topo.SwitchID, len(d.cfg.Areas))}
	for ai, spec := range d.cfg.Areas {
		a.toLocal[spec.Gateway] = topo.SwitchID(ai)
		a.toGlobal = append(a.toGlobal, spec.Gateway)
	}
	a.graph = topo.New(len(d.cfg.Areas))
	for _, l := range d.cfg.Global.Links() {
		if d.areaOf[l.A] == d.areaOf[l.B] {
			continue
		}
		if err := a.graph.AddLink(a.toLocal[l.A], a.toLocal[l.B], l.Delay, l.Capacity); err != nil {
			return nil, fmt.Errorf("hier: backbone: %w", err)
		}
	}
	if !a.graph.Connected() {
		return nil, errors.New("hier: backbone is disconnected")
	}
	net, err := flood.New(d.k, a.graph, d.cfg.PerHop, flood.Direct)
	if err != nil {
		return nil, err
	}
	a.net = net
	dom, err := core.NewDomain(d.k, core.Config{Net: net, ComputeTime: d.cfg.Tc, Algorithm: d.cfg.Algorithm})
	if err != nil {
		return nil, err
	}
	a.domain = dom
	return a, nil
}

func sortSwitches(ids []topo.SwitchID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// NumAreas returns the number of level-1 areas.
func (d *Domain) NumAreas() int { return len(d.areas) }

// Area returns area ai's core domain (for inspection).
func (d *Domain) Area(ai int) *core.Domain { return d.areas[ai].domain }

// Backbone returns the gateway-level core domain.
func (d *Domain) Backbone() *core.Domain { return d.backbone.domain }

// Join schedules a host join at global switch s. Gateways cannot host
// members in the basic hierarchy.
func (d *Domain) Join(at sim.Time, s topo.SwitchID, conn lsa.ConnID, role mctree.Role) error {
	ai, ok := d.areaOf[s]
	if !ok {
		return fmt.Errorf("hier: unknown switch %d", s)
	}
	if s == d.cfg.Areas[ai].Gateway {
		return fmt.Errorf("%w: %d", ErrGatewayMember, s)
	}
	a := d.areas[ai]
	a.domain.Join(at, a.toLocal[s], conn, role)
	d.trackJoin(at, ai, s, conn)
	return nil
}

// Leave schedules a host leave at global switch s.
func (d *Domain) Leave(at sim.Time, s topo.SwitchID, conn lsa.ConnID) error {
	ai, ok := d.areaOf[s]
	if !ok {
		return fmt.Errorf("hier: unknown switch %d", s)
	}
	if s == d.cfg.Areas[ai].Gateway {
		return fmt.Errorf("%w: %d", ErrGatewayMember, s)
	}
	a := d.areas[ai]
	a.domain.Leave(at, a.toLocal[s], conn)
	d.trackLeave(at, ai, s, conn)
	return nil
}

// trackJoin updates the activation state machine after scheduling a join.
func (d *Domain) trackJoin(at sim.Time, ai int, s topo.SwitchID, conn lsa.ConnID) {
	per := d.members[conn]
	if per == nil {
		per = make(map[int]map[topo.SwitchID]bool)
		d.members[conn] = per
	}
	if per[ai] == nil {
		per[ai] = make(map[topo.SwitchID]bool)
	}
	per[ai][s] = true
	d.reconcile(at, conn)
}

// trackLeave updates the activation state machine after scheduling a leave.
func (d *Domain) trackLeave(at sim.Time, ai int, s topo.SwitchID, conn lsa.ConnID) {
	per := d.members[conn]
	if per == nil {
		return
	}
	delete(per[ai], s)
	if len(per[ai]) == 0 {
		delete(per, ai)
	}
	d.reconcile(at, conn)
}

// reconcile joins/leaves gateways so that: when ≥2 areas host members,
// every active area's gateway is a member of both its area MC and the
// backbone MC; otherwise no gateway participates.
func (d *Domain) reconcile(at sim.Time, conn lsa.ConnID) {
	per := d.members[conn]
	anchored := d.anchored[conn]
	if anchored == nil {
		anchored = make(map[int]bool)
		d.anchored[conn] = anchored
	}
	wantAnchors := len(per) >= 2
	for ai := range d.areas {
		active := len(per[ai]) > 0
		want := wantAnchors && active
		if want && !anchored[ai] {
			a := d.areas[ai]
			a.domain.Join(at, a.localGateway, conn, mctree.SenderReceiver)
			d.backbone.domain.Join(at, d.backbone.toLocal[a.spec.Gateway], conn, mctree.SenderReceiver)
			anchored[ai] = true
		} else if !want && anchored[ai] {
			a := d.areas[ai]
			a.domain.Leave(at, a.localGateway, conn)
			d.backbone.domain.Leave(at, d.backbone.toLocal[a.spec.Gateway], conn)
			anchored[ai] = false
		}
	}
}

// CheckConverged verifies every level domain converged.
func (d *Domain) CheckConverged() error {
	for ai, a := range d.areas {
		if err := a.domain.CheckConverged(); err != nil {
			return fmt.Errorf("hier: area %d: %w", ai, err)
		}
	}
	if err := d.backbone.domain.CheckConverged(); err != nil {
		return fmt.Errorf("hier: backbone: %w", err)
	}
	return nil
}

// GlobalTopology assembles the global MC tree for conn: the union of every
// active area's tree and the backbone tree, in global switch IDs. Returns
// nil when the connection has no members anywhere.
func (d *Domain) GlobalTopology(conn lsa.ConnID) (*mctree.Tree, error) {
	out := mctree.New(mctree.Symmetric)
	found := false
	add := func(a *area) error {
		snap, ok := a.domain.Switch(0).Connection(conn)
		if !ok || len(snap.Members) == 0 {
			return nil
		}
		if snap.Topology == nil {
			return fmt.Errorf("hier: no topology installed")
		}
		found = true
		for _, e := range snap.Topology.Edges() {
			out.AddEdge(a.toGlobal[e.A], a.toGlobal[e.B])
		}
		return nil
	}
	for _, a := range d.areas {
		if err := add(a); err != nil {
			return nil, err
		}
	}
	if err := add(d.backbone); err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return out, nil
}

// GlobalMembers returns the host member set of conn in global IDs,
// according to the coordinator's bookkeeping.
func (d *Domain) GlobalMembers(conn lsa.ConnID) mctree.Members {
	out := mctree.Members{}
	for _, per := range d.members[conn] {
		for s := range per {
			out[s] = mctree.SenderReceiver
		}
	}
	return out
}

// Stats aggregates protocol costs across all levels.
type Stats struct {
	// Events, Computations: summed core metrics over all level domains.
	Events, Computations uint64
	// Floodings and Copies: summed flooding fabric counters. Copies is the
	// total point-to-point transmissions — the quantity the hierarchy
	// shrinks, since floods stay inside their area.
	Floodings, Copies uint64
}

// Stats returns the aggregated costs.
func (d *Domain) Stats() Stats {
	var st Stats
	collect := func(a *area) {
		m := a.domain.Metrics()
		st.Events += m.Events
		st.Computations += m.Computations
		st.Floodings += a.net.Floodings()
		st.Copies += a.net.Copies()
	}
	for _, a := range d.areas {
		collect(a)
	}
	collect(d.backbone)
	return st
}
