// Package bruteforce implements the "brute-force LSR-based MC protocol" of
// the paper's §2: the straightforward event-driven extension of link-state
// routing in which *every* switch, upon receiving a membership LSA, updates
// its local database and immediately recomputes the topology of the
// affected MC. It is fully general (like D-GMC) but a single event triggers
// n redundant computations in an n-switch network — the overhead D-GMC is
// designed to eliminate.
package bruteforce

import (
	"errors"
	"fmt"

	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// Metrics aggregates baseline activity network-wide.
type Metrics struct {
	// Events counts membership events.
	Events uint64
	// Computations counts topology computations across all switches.
	Computations uint64
	// Installs counts installed topologies.
	Installs uint64
}

// membershipLSA announces a membership change.
type membershipLSA struct {
	src  topo.SwitchID
	conn lsa.ConnID
	role mctree.Role
	join bool
}

// Config configures a brute-force domain.
type Config struct {
	// Net is the flooding fabric. Required.
	Net *flood.Network
	// ComputeTime is the per-switch topology computation cost.
	ComputeTime sim.Time
	// Algorithm computes MC topologies. Required.
	Algorithm route.Algorithm
}

// Domain runs the brute-force protocol on every switch.
type Domain struct {
	k           *sim.Kernel
	net         *flood.Network
	computeTime sim.Time
	algorithm   route.Algorithm
	n           int

	switches []*bswitch
	metrics  *Metrics
}

type bswitch struct {
	id       topo.SwitchID
	d        *Domain
	image    *topo.Graph
	members  map[lsa.ConnID]mctree.Members
	topology map[lsa.ConnID]*mctree.Tree
}

// NewDomain builds per-switch state and spawns the LSA process per switch.
func NewDomain(k *sim.Kernel, cfg Config) (*Domain, error) {
	if cfg.Net == nil {
		return nil, errors.New("bruteforce: Config.Net is required")
	}
	if cfg.Algorithm == nil {
		return nil, errors.New("bruteforce: Config.Algorithm is required")
	}
	if cfg.ComputeTime < 0 {
		return nil, fmt.Errorf("bruteforce: negative compute time %v", cfg.ComputeTime)
	}
	d := &Domain{
		k:           k,
		net:         cfg.Net,
		computeTime: cfg.ComputeTime,
		algorithm:   cfg.Algorithm,
		n:           cfg.Net.Graph().NumSwitches(),
		metrics:     &Metrics{},
	}
	d.switches = make([]*bswitch, d.n)
	for i := 0; i < d.n; i++ {
		sw := &bswitch{
			id:       topo.SwitchID(i),
			d:        d,
			image:    cfg.Net.Graph().Clone(),
			members:  make(map[lsa.ConnID]mctree.Members),
			topology: make(map[lsa.ConnID]*mctree.Tree),
		}
		d.switches[i] = sw
		k.Spawn(fmt.Sprintf("brute-%d", i), sw.loop)
	}
	return d, nil
}

// Metrics returns the live metrics.
func (d *Domain) Metrics() *Metrics { return d.metrics }

// Topology returns switch s's installed topology for conn, or nil.
func (d *Domain) Topology(s topo.SwitchID, conn lsa.ConnID) *mctree.Tree {
	t := d.switches[s].topology[conn]
	if t == nil {
		return nil
	}
	return t.Clone()
}

// Members returns switch s's member list for conn.
func (d *Domain) Members(s topo.SwitchID, conn lsa.ConnID) mctree.Members {
	return d.switches[s].members[conn].Clone()
}

// Join schedules a membership join at switch s.
func (d *Domain) Join(at sim.Time, s topo.SwitchID, conn lsa.ConnID, role mctree.Role) {
	d.event(at, membershipLSA{src: s, conn: conn, role: role, join: true})
}

// Leave schedules a membership leave at switch s.
func (d *Domain) Leave(at sim.Time, s topo.SwitchID, conn lsa.ConnID) {
	d.event(at, membershipLSA{src: s, conn: conn, join: false})
}

func (d *Domain) event(at sim.Time, m membershipLSA) {
	d.k.ScheduleAt(at, func() {
		d.metrics.Events++
		// The detecting switch processes the event like any other LSA; its
		// computation is folded into its own loop via a self-delivery.
		d.net.Mailbox(m.src).Send(flood.Delivery{Origin: m.src, Payload: m}, 0)
		d.net.Flood(m.src, m)
	})
}

// loop applies every received membership LSA and recomputes immediately —
// the defining behaviour of the brute-force protocol.
func (sw *bswitch) loop(p *sim.Process) {
	for {
		del, ok := sw.d.net.Mailbox(sw.id).Recv(p).(flood.Delivery)
		if !ok {
			continue
		}
		m, ok := del.Payload.(membershipLSA)
		if !ok {
			continue
		}
		members := sw.members[m.conn]
		if members == nil {
			members = make(mctree.Members)
			sw.members[m.conn] = members
		}
		if m.join {
			members[m.src] = m.role
		} else {
			delete(members, m.src)
		}
		if len(members) == 0 {
			delete(sw.members, m.conn)
			delete(sw.topology, m.conn)
			continue
		}
		sw.d.metrics.Computations++
		p.Hold(sw.d.computeTime)
		t, err := sw.d.algorithm.Compute(sw.image, mctree.Symmetric, sw.members[m.conn].Clone())
		if err != nil {
			continue
		}
		sw.topology[m.conn] = t
		sw.d.metrics.Installs++
	}
}
