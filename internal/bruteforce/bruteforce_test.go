package bruteforce

import (
	"testing"
	"time"

	"dgmc/internal/flood"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func newDomain(t *testing.T, g *topo.Graph) (*sim.Kernel, *Domain) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	net, err := flood.New(k, g, 2*time.Microsecond, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(k, Config{Net: net, ComputeTime: 100 * time.Microsecond, Algorithm: route.SPH{}})
	if err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	g, err := topo.Line(2, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	net, err := flood.New(k, g, 0, flood.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(k, Config{Algorithm: route.SPH{}}); err == nil {
		t.Error("missing Net accepted")
	}
	if _, err := NewDomain(k, Config{Net: net}); err == nil {
		t.Error("missing Algorithm accepted")
	}
	if _, err := NewDomain(k, Config{Net: net, Algorithm: route.SPH{}, ComputeTime: -1}); err == nil {
		t.Error("negative Tc accepted")
	}
}

func TestEveryEventCostsNComputations(t *testing.T) {
	// The defining property §2 criticizes: one event, n computations.
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1, mctree.SenderReceiver)
	d.Join(time.Millisecond, 5, 1, mctree.SenderReceiver)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Events != 2 {
		t.Fatalf("events = %d", m.Events)
	}
	if m.Computations != 12 {
		t.Errorf("computations = %d, want 2 events × 6 switches", m.Computations)
	}
}

func TestAllSwitchesConvergeToSameTree(t *testing.T) {
	g, err := topo.Grid(3, 3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1, mctree.SenderReceiver)
	d.Join(time.Millisecond, 8, 1, mctree.SenderReceiver)
	d.Join(2*time.Millisecond, 2, 1, mctree.SenderReceiver)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ref := d.Topology(0, 1)
	if ref == nil {
		t.Fatal("no topology at switch 0")
	}
	for s := 1; s < 9; s++ {
		got := d.Topology(topo.SwitchID(s), 1)
		if !ref.Equal(got) {
			t.Errorf("switch %d tree %v differs from %v", s, got, ref)
		}
	}
	if err := ref.Validate(g, d.Members(0, 1)); err != nil {
		t.Errorf("converged tree invalid: %v", err)
	}
}

func TestEmptyGroupCleansUp(t *testing.T) {
	g, err := topo.Line(3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	k, d := newDomain(t, g)
	d.Join(0, 0, 1, mctree.SenderReceiver)
	d.Leave(time.Millisecond, 0, 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if d.Topology(topo.SwitchID(s), 1) != nil {
			t.Errorf("switch %d retains topology for empty group", s)
		}
		if len(d.Members(topo.SwitchID(s), 1)) != 0 {
			t.Errorf("switch %d retains members", s)
		}
	}
}
