// Package topo models the communication network underneath an MC protocol:
// a set of switches connected by bidirectional, weighted links. It provides
// seeded random generators for the kinds of graphs used in the D-GMC
// simulation study (Waxman and flat G(n,m) random graphs), plus the
// shortest-path machinery (hop counts, delay-weighted Dijkstra, diameter)
// that both the unicast LSR substrate and the MC topology algorithms build
// on.
package topo

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// SwitchID identifies a switch. Switches in an n-switch network are
// numbered 0..n-1, matching the paper's timestamp indexing.
type SwitchID int

// NoSwitch is the sentinel for "no switch" (e.g. no predecessor on a path).
const NoSwitch SwitchID = -1

// Link is a bidirectional edge between two switches. Delay is the one-hop
// propagation+transmission time; Capacity is in abstract bandwidth units
// and is used by the traffic-concentration analyses.
type Link struct {
	A, B     SwitchID
	Delay    time.Duration
	Capacity float64
	Down     bool
}

// Other returns the endpoint of l that is not s.
func (l Link) Other(s SwitchID) SwitchID {
	if l.A == s {
		return l.B
	}
	return l.A
}

// Has reports whether s is one of l's endpoints.
func (l Link) Has(s SwitchID) bool { return l.A == s || l.B == s }

// Graph is an undirected multigraph-free network of switches. The zero
// value is an empty network; add switches with New and links with AddLink.
type Graph struct {
	n     int
	links []Link
	// adj[s] lists indices into links for switch s.
	adj [][]int
	// index maps canonical (min,max) endpoint pairs to a link index.
	index map[[2]SwitchID]int
}

// New returns a graph with n switches and no links.
func New(n int) *Graph {
	return &Graph{
		n:     n,
		adj:   make([][]int, n),
		index: make(map[[2]SwitchID]int),
	}
}

// NumSwitches returns the number of switches.
func (g *Graph) NumSwitches() int { return g.n }

// NumLinks returns the number of links, including downed ones.
func (g *Graph) NumLinks() int { return len(g.links) }

// Switches returns all switch IDs in ascending order.
func (g *Graph) Switches() []SwitchID {
	out := make([]SwitchID, g.n)
	for i := range out {
		out[i] = SwitchID(i)
	}
	return out
}

func key(a, b SwitchID) [2]SwitchID {
	if a > b {
		a, b = b, a
	}
	return [2]SwitchID{a, b}
}

// AddLink connects a and b with the given delay and capacity. It returns an
// error for self-loops, out-of-range endpoints, or duplicate links.
func (g *Graph) AddLink(a, b SwitchID, delay time.Duration, capacity float64) error {
	if a == b {
		return fmt.Errorf("topo: self-loop at switch %d", a)
	}
	if a < 0 || int(a) >= g.n || b < 0 || int(b) >= g.n {
		return fmt.Errorf("topo: link (%d,%d) out of range [0,%d)", a, b, g.n)
	}
	k := key(a, b)
	if _, dup := g.index[k]; dup {
		return fmt.Errorf("topo: duplicate link (%d,%d)", a, b)
	}
	if delay <= 0 {
		return fmt.Errorf("topo: link (%d,%d) has non-positive delay %v", a, b, delay)
	}
	idx := len(g.links)
	g.links = append(g.links, Link{A: k[0], B: k[1], Delay: delay, Capacity: capacity})
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
	g.index[k] = idx
	return nil
}

// Link returns the link between a and b, if any. Direction is ignored.
func (g *Graph) Link(a, b SwitchID) (Link, bool) {
	idx, ok := g.index[key(a, b)]
	if !ok {
		return Link{}, false
	}
	return g.links[idx], true
}

// Links returns a copy of all links (including downed ones).
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Neighbors returns the switches adjacent to s over up links, in ascending
// order (deterministic iteration matters for reproducible simulations).
func (g *Graph) Neighbors(s SwitchID) []SwitchID {
	if s < 0 || int(s) >= g.n {
		return nil
	}
	out := make([]SwitchID, 0, len(g.adj[s]))
	for _, idx := range g.adj[s] {
		if g.links[idx].Down {
			continue
		}
		out = append(out, g.links[idx].Other(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of up links incident to s.
func (g *Graph) Degree(s SwitchID) int {
	if s < 0 || int(s) >= g.n {
		return 0
	}
	d := 0
	for _, idx := range g.adj[s] {
		if !g.links[idx].Down {
			d++
		}
	}
	return d
}

// LinkIndex returns a stable index for the link between a and b, usable
// with LinkAt. Hot paths that would otherwise call Link (a map lookup) per
// message resolve the index once and re-read the (possibly Down-toggled)
// link state through it.
func (g *Graph) LinkIndex(a, b SwitchID) (int, bool) {
	idx, ok := g.index[key(a, b)]
	return idx, ok
}

// LinkAt returns the link with the given index (see LinkIndex). The index
// must come from LinkIndex; links are never removed, so indices stay valid
// for the graph's lifetime.
func (g *Graph) LinkAt(idx int) Link { return g.links[idx] }

// SetLinkDown marks the link between a and b down (failed) or up.
// It returns an error if no such link exists.
func (g *Graph) SetLinkDown(a, b SwitchID, down bool) error {
	idx, ok := g.index[key(a, b)]
	if !ok {
		return fmt.Errorf("topo: no link (%d,%d)", a, b)
	}
	g.links[idx].Down = down
	return nil
}

// Clone returns a deep copy of the graph, including link states.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, l := range g.links {
		_ = c.AddLink(l.A, l.B, l.Delay, l.Capacity)
		if l.Down {
			_ = c.SetLinkDown(l.A, l.B, true)
		}
	}
	return c
}

// ErrDisconnected is returned by analyses that require a connected network.
var ErrDisconnected = errors.New("topo: graph is disconnected")

// Connected reports whether every switch can reach every other over up
// links. An empty graph is trivially connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	return len(g.Component(0)) == g.n
}

// Component returns the set of switches reachable from start over up links,
// including start itself, in BFS discovery order.
func (g *Graph) Component(start SwitchID) []SwitchID {
	if start < 0 || int(start) >= g.n {
		return nil
	}
	seen := make([]bool, g.n)
	seen[start] = true
	order := []SwitchID{start}
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for _, nb := range g.Neighbors(s) {
			if !seen[nb] {
				seen[nb] = true
				order = append(order, nb)
			}
		}
	}
	return order
}

// HopDistances returns the hop count from src to every switch over up
// links; unreachable switches get -1.
func (g *Graph) HopDistances(src SwitchID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []SwitchID{src}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for _, nb := range g.Neighbors(s) {
			if dist[nb] == -1 {
				dist[nb] = dist[s] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// SPT holds a shortest-path tree rooted at Src: per-destination total delay
// and the predecessor on the shortest path. Unreachable destinations have
// Delay < 0 and Pred == NoSwitch.
type SPT struct {
	Src   SwitchID
	Delay []time.Duration
	Pred  []SwitchID
}

// Reachable reports whether dst is reachable from the root.
func (t *SPT) Reachable(dst SwitchID) bool {
	return dst >= 0 && int(dst) < len(t.Pred) && (dst == t.Src || t.Pred[dst] != NoSwitch)
}

// Path returns the switch sequence from the root to dst, inclusive, or nil
// if dst is unreachable.
func (t *SPT) Path(dst SwitchID) []SwitchID {
	if !t.Reachable(dst) {
		return nil
	}
	var rev []SwitchID
	for s := dst; s != NoSwitch; s = t.Pred[s] {
		rev = append(rev, s)
		if s == t.Src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ShortestPaths runs Dijkstra over link delays from src. Ties are broken by
// lower switch ID for determinism (see the kernel in sssp.go).
func (g *Graph) ShortestPaths(src SwitchID) *SPT {
	t := &SPT{
		Src:   src,
		Delay: make([]time.Duration, g.n),
		Pred:  make([]SwitchID, g.n),
	}
	for i := range t.Delay {
		t.Delay[i] = -1
		t.Pred[i] = NoSwitch
	}
	if src < 0 || int(src) >= g.n {
		return t
	}
	sc := AcquireSSSP()
	sc.Reset(g.n)
	sc.Seed(src)
	g.RunSSSP(sc, 0)
	for i := 0; i < g.n; i++ {
		if sc.Dist[i] != Unreachable {
			t.Delay[i] = sc.Dist[i]
			t.Pred[i] = sc.Pred[i]
		}
	}
	t.Pred[src] = NoSwitch
	ReleaseSSSP(sc)
	return t
}

// FloodDiameter returns Tf, the paper's "flooding diameter": the worst-case
// time for a flooded advertisement to reach every switch, i.e. the maximum
// over sources of the maximum shortest-path delay. Returns ErrDisconnected
// if some switch cannot be reached.
func (g *Graph) FloodDiameter() (time.Duration, error) {
	var worst time.Duration
	for s := 0; s < g.n; s++ {
		spt := g.ShortestPaths(SwitchID(s))
		for d := 0; d < g.n; d++ {
			if spt.Delay[d] < 0 {
				return 0, ErrDisconnected
			}
			if spt.Delay[d] > worst {
				worst = spt.Delay[d]
			}
		}
	}
	return worst, nil
}

// HopDiameter returns the maximum hop distance between any pair of
// switches, or an error if the graph is disconnected.
func (g *Graph) HopDiameter() (int, error) {
	worst := 0
	for s := 0; s < g.n; s++ {
		for _, d := range g.HopDistances(SwitchID(s)) {
			if d < 0 {
				return 0, ErrDisconnected
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
