package topo

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// GenConfig controls random network generation. The zero value is not
// useful; start from DefaultGenConfig.
type GenConfig struct {
	// N is the number of switches.
	N int
	// Seed drives all randomness; equal seeds give equal graphs.
	Seed int64
	// MinDelay and MaxDelay bound per-link delays (uniform).
	MinDelay, MaxDelay time.Duration
	// Capacity is assigned to every link.
	Capacity float64
	// Waxman parameters: edge probability alpha*exp(-d/(beta*L)) where d is
	// the Euclidean distance between the endpoints and L the maximum
	// distance. Typical values from Waxman's paper: alpha≈0.2..0.4,
	// beta≈0.1..0.4. Used by Waxman only.
	Alpha, Beta float64
	// AvgDegree is the target average node degree (Waxman adjusts edge
	// count toward it; GNM uses exactly N*AvgDegree/2 edges).
	AvgDegree float64
}

// DefaultGenConfig returns parameters producing sparse, WAN-like graphs of
// n switches comparable to those in the 1996 study: average degree ~3.5,
// uniform link delays.
func DefaultGenConfig(n int, seed int64) GenConfig {
	return GenConfig{
		N:         n,
		Seed:      seed,
		MinDelay:  5 * time.Microsecond,
		MaxDelay:  15 * time.Microsecond,
		Capacity:  155.0, // OC-3-ish, in Mb/s; only ratios matter
		Alpha:     0.25,
		Beta:      0.4,
		AvgDegree: 3.5,
	}
}

func (c GenConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("topo: need at least 2 switches, got %d", c.N)
	}
	if c.MinDelay <= 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("topo: bad delay range [%v,%v]", c.MinDelay, c.MaxDelay)
	}
	if c.AvgDegree < 2 {
		return fmt.Errorf("topo: average degree %.2f too small for a connected graph", c.AvgDegree)
	}
	return nil
}

func (c GenConfig) randomDelay(rng *rand.Rand) time.Duration {
	span := int64(c.MaxDelay - c.MinDelay)
	if span == 0 {
		return c.MinDelay
	}
	return c.MinDelay + time.Duration(rng.Int63n(span+1))
}

// Waxman generates a connected Waxman random graph: switches are placed
// uniformly in the unit square and each candidate edge is accepted with
// probability alpha*exp(-d/(beta*L)). A random spanning tree is added first
// so the result is always connected; extra edges are then sampled until the
// target average degree is met or the candidate pool is exhausted.
func Waxman(cfg GenConfig) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	maxDist := math.Sqrt2 // diagonal of the unit square

	g := New(n)
	// Random spanning tree: connect each switch (in shuffled order) to a
	// uniformly chosen already-connected switch.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := SwitchID(perm[i])
		b := SwitchID(perm[rng.Intn(i)])
		if err := g.AddLink(a, b, cfg.randomDelay(rng), cfg.Capacity); err != nil {
			return nil, err
		}
	}

	wantLinks := int(float64(n) * cfg.AvgDegree / 2)
	type cand struct {
		a, b SwitchID
		p    float64
	}
	var pool []cand
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if _, exists := g.Link(SwitchID(a), SwitchID(b)); exists {
				continue
			}
			d := math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
			pool = append(pool, cand{SwitchID(a), SwitchID(b), cfg.Alpha * math.Exp(-d/(cfg.Beta*maxDist))})
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	for _, c := range pool {
		if g.NumLinks() >= wantLinks {
			break
		}
		if rng.Float64() < c.p {
			if err := g.AddLink(c.a, c.b, cfg.randomDelay(rng), cfg.Capacity); err != nil {
				return nil, err
			}
		}
	}
	// If Waxman rejection left us short, top up with uniform extra edges so
	// all generated graphs have comparable density.
	for _, c := range pool {
		if g.NumLinks() >= wantLinks {
			break
		}
		if _, exists := g.Link(c.a, c.b); !exists {
			if err := g.AddLink(c.a, c.b, cfg.randomDelay(rng), cfg.Capacity); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// GNM generates a connected uniform random graph with exactly
// round(N*AvgDegree/2) links (a spanning tree plus uniformly chosen extra
// edges).
func GNM(cfg GenConfig) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := SwitchID(perm[i])
		b := SwitchID(perm[rng.Intn(i)])
		if err := g.AddLink(a, b, cfg.randomDelay(rng), cfg.Capacity); err != nil {
			return nil, err
		}
	}
	want := int(float64(n) * cfg.AvgDegree / 2)
	maxLinks := n * (n - 1) / 2
	if want > maxLinks {
		want = maxLinks
	}
	for g.NumLinks() < want {
		a := SwitchID(rng.Intn(n))
		b := SwitchID(rng.Intn(n))
		if a == b {
			continue
		}
		if _, exists := g.Link(a, b); exists {
			continue
		}
		if err := g.AddLink(a, b, cfg.randomDelay(rng), cfg.Capacity); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Ring returns a ring of n switches with uniform delay d — handy for tests
// with predictable distances.
func Ring(n int, d time.Duration) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs >=3 switches, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		if err := g.AddLink(SwitchID(i), SwitchID((i+1)%n), d, 1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Line returns a path graph 0-1-...-n-1 with uniform delay d.
func Line(n int, d time.Duration) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: line needs >=2 switches, got %d", n)
	}
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddLink(SwitchID(i), SwitchID(i+1), d, 1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Full returns the complete graph on n switches with uniform delay d —
// the densest (and most schedule-rich) fabric for small model-checking
// scenarios.
func Full(n int, d time.Duration) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: full mesh needs >=2 switches, got %d", n)
	}
	g := New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if err := g.AddLink(SwitchID(a), SwitchID(b), d, 1); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Star returns a star with switch 0 at the center and uniform delay d.
func Star(n int, d time.Duration) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: star needs >=2 switches, got %d", n)
	}
	g := New(n)
	for i := 1; i < n; i++ {
		if err := g.AddLink(0, SwitchID(i), d, 1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns a rows x cols mesh with uniform delay d. Switch (r,c) has ID
// r*cols+c.
func Grid(rows, cols int, d time.Duration) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topo: bad grid %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) SwitchID { return SwitchID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddLink(id(r, c), id(r, c+1), d, 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddLink(id(r, c), id(r+1, c), d, 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
