package topo

import (
	"strings"
	"testing"
	"time"
)

func mustLine(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := Line(n, 10*time.Microsecond)
	if err != nil {
		t.Fatalf("Line(%d): %v", n, err)
	}
	return g
}

func TestAddLinkValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name  string
		a, b  SwitchID
		delay time.Duration
	}{
		{"self-loop", 1, 1, time.Microsecond},
		{"out of range high", 0, 3, time.Microsecond},
		{"out of range negative", -1, 0, time.Microsecond},
		{"zero delay", 0, 1, 0},
		{"negative delay", 0, 1, -time.Microsecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddLink(tt.a, tt.b, tt.delay, 1); err == nil {
				t.Errorf("AddLink(%d,%d,%v) succeeded, want error", tt.a, tt.b, tt.delay)
			}
		})
	}
	if err := g.AddLink(0, 1, time.Microsecond, 1); err != nil {
		t.Fatalf("valid AddLink: %v", err)
	}
	if err := g.AddLink(1, 0, time.Microsecond, 1); err == nil {
		t.Error("duplicate (reversed) link accepted")
	}
}

func TestLinkLookupIsDirectionless(t *testing.T) {
	g := New(2)
	if err := g.AddLink(1, 0, 3*time.Microsecond, 7); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]SwitchID{{0, 1}, {1, 0}} {
		l, ok := g.Link(pair[0], pair[1])
		if !ok {
			t.Fatalf("Link(%v) not found", pair)
		}
		if l.Delay != 3*time.Microsecond || l.Capacity != 7 {
			t.Errorf("link attrs = %+v", l)
		}
		if l.Other(pair[0]) != pair[1] || !l.Has(pair[0]) {
			t.Errorf("Other/Has wrong for %+v", l)
		}
	}
}

func TestNeighborsSortedAndRespectDown(t *testing.T) {
	g := New(4)
	for _, e := range [][2]SwitchID{{2, 0}, {2, 3}, {2, 1}} {
		if err := g.AddLink(e[0], e[1], time.Microsecond, 1); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(2)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 1 || nb[2] != 3 {
		t.Fatalf("neighbors = %v, want [0 1 3]", nb)
	}
	if err := g.SetLinkDown(2, 1, true); err != nil {
		t.Fatal(err)
	}
	nb = g.Neighbors(2)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 3 {
		t.Fatalf("neighbors after down = %v, want [0 3]", nb)
	}
	if g.Degree(2) != 2 {
		t.Errorf("degree = %d, want 2", g.Degree(2))
	}
	if err := g.SetLinkDown(0, 3, true); err == nil {
		t.Error("SetLinkDown on missing link succeeded")
	}
}

func TestConnectivityAndComponents(t *testing.T) {
	g := mustLine(t, 5)
	if !g.Connected() {
		t.Fatal("line should be connected")
	}
	if err := g.SetLinkDown(2, 3, true); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("cut line should be disconnected")
	}
	left := g.Component(0)
	if len(left) != 3 {
		t.Errorf("left component = %v", left)
	}
	right := g.Component(4)
	if len(right) != 2 {
		t.Errorf("right component = %v", right)
	}
}

func TestHopDistances(t *testing.T) {
	g := mustLine(t, 5)
	d := g.HopDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("hop dist = %v", d)
		}
	}
	if err := g.SetLinkDown(3, 4, true); err != nil {
		t.Fatal(err)
	}
	d = g.HopDistances(0)
	if d[4] != -1 {
		t.Errorf("unreachable switch got distance %d", d[4])
	}
}

func TestShortestPathsPicksLowerDelayRoute(t *testing.T) {
	// 0-1-2 with cheap links, plus a direct expensive 0-2 link.
	g := New(3)
	if err := g.AddLink(0, 1, 10*time.Microsecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, 10*time.Microsecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(0, 2, 50*time.Microsecond, 1); err != nil {
		t.Fatal(err)
	}
	spt := g.ShortestPaths(0)
	if spt.Delay[2] != 20*time.Microsecond {
		t.Errorf("delay to 2 = %v, want 20µs", spt.Delay[2])
	}
	path := spt.Path(2)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Errorf("path = %v, want [0 1 2]", path)
	}
	// Failing the middle link shifts traffic onto the direct link.
	if err := g.SetLinkDown(0, 1, true); err != nil {
		t.Fatal(err)
	}
	spt = g.ShortestPaths(0)
	if spt.Delay[2] != 50*time.Microsecond {
		t.Errorf("delay after failure = %v, want 50µs", spt.Delay[2])
	}
	p := spt.Path(2)
	if len(p) != 2 {
		t.Errorf("path after failure = %v, want direct", p)
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New(3)
	if err := g.AddLink(0, 1, time.Microsecond, 1); err != nil {
		t.Fatal(err)
	}
	spt := g.ShortestPaths(0)
	if spt.Reachable(2) {
		t.Error("switch 2 should be unreachable")
	}
	if spt.Path(2) != nil {
		t.Error("path to unreachable switch should be nil")
	}
	if spt.Delay[2] >= 0 {
		t.Errorf("unreachable delay = %v", spt.Delay[2])
	}
	if !spt.Reachable(0) || len(spt.Path(0)) != 1 {
		t.Error("root must be reachable with singleton path")
	}
}

func TestDiameters(t *testing.T) {
	g := mustLine(t, 4) // delays 10µs per hop
	hd, err := g.HopDiameter()
	if err != nil {
		t.Fatal(err)
	}
	if hd != 3 {
		t.Errorf("hop diameter = %d, want 3", hd)
	}
	fd, err := g.FloodDiameter()
	if err != nil {
		t.Fatal(err)
	}
	if fd != 30*time.Microsecond {
		t.Errorf("flood diameter = %v, want 30µs", fd)
	}
	if err := g.SetLinkDown(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := g.FloodDiameter(); err != ErrDisconnected {
		t.Errorf("flood diameter on cut graph: err = %v, want ErrDisconnected", err)
	}
	if _, err := g.HopDiameter(); err != ErrDisconnected {
		t.Errorf("hop diameter on cut graph: err = %v, want ErrDisconnected", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := mustLine(t, 3)
	c := g.Clone()
	if err := g.SetLinkDown(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if l, _ := c.Link(0, 1); l.Down {
		t.Error("clone shares link state with original")
	}
	if c.NumSwitches() != 3 || c.NumLinks() != 2 {
		t.Errorf("clone shape = %d switches %d links", c.NumSwitches(), c.NumLinks())
	}
}

func TestFixedTopologies(t *testing.T) {
	if _, err := Ring(2, time.Microsecond); err == nil {
		t.Error("Ring(2) should fail")
	}
	r, err := Ring(6, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLinks() != 6 || !r.Connected() {
		t.Errorf("ring: %d links connected=%v", r.NumLinks(), r.Connected())
	}
	s, err := Star(5, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 4 {
		t.Errorf("star center degree = %d", s.Degree(0))
	}
	gr, err := Grid(3, 4, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if gr.NumSwitches() != 12 || !gr.Connected() {
		t.Error("grid malformed")
	}
	hd, err := gr.HopDiameter()
	if err != nil {
		t.Fatal(err)
	}
	if hd != 5 { // (3-1)+(4-1)
		t.Errorf("grid hop diameter = %d, want 5", hd)
	}
	if _, err := Grid(0, 5, time.Microsecond); err == nil {
		t.Error("Grid(0,5) should fail")
	}
	if _, err := Line(1, time.Microsecond); err == nil {
		t.Error("Line(1) should fail")
	}
	if _, err := Star(1, time.Microsecond); err == nil {
		t.Error("Star(1) should fail")
	}
}

func TestWaxmanGeneratesConnectedReproducibleGraphs(t *testing.T) {
	for _, n := range []int{10, 40, 100} {
		cfg := DefaultGenConfig(n, 42)
		g1, err := Waxman(cfg)
		if err != nil {
			t.Fatalf("Waxman(%d): %v", n, err)
		}
		if !g1.Connected() {
			t.Fatalf("Waxman(%d) disconnected", n)
		}
		if g1.NumSwitches() != n {
			t.Fatalf("n = %d", g1.NumSwitches())
		}
		want := int(float64(n) * cfg.AvgDegree / 2)
		if g1.NumLinks() < n-1 || g1.NumLinks() > want+1 {
			t.Fatalf("Waxman(%d) links = %d, want about %d", n, g1.NumLinks(), want)
		}
		g2, err := Waxman(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumLinks() != g1.NumLinks() {
			t.Fatalf("same seed produced different graphs: %d vs %d links", g1.NumLinks(), g2.NumLinks())
		}
		for _, l := range g1.Links() {
			l2, ok := g2.Link(l.A, l.B)
			if !ok || l2.Delay != l.Delay {
				t.Fatalf("same seed produced different link set at (%d,%d)", l.A, l.B)
			}
		}
		cfg2 := cfg
		cfg2.Seed = 43
		g3, err := Waxman(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		same := g3.NumLinks() == g1.NumLinks()
		if same {
			for _, l := range g1.Links() {
				if _, ok := g3.Link(l.A, l.B); !ok {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("different seeds produced identical %d-switch graphs", n)
		}
	}
}

func TestGNMGeneratesExactEdgeCount(t *testing.T) {
	cfg := DefaultGenConfig(30, 7)
	g, err := GNM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(30 * cfg.AvgDegree / 2)
	if g.NumLinks() != want {
		t.Errorf("links = %d, want %d", g.NumLinks(), want)
	}
	if !g.Connected() {
		t.Error("GNM graph disconnected")
	}
}

func TestGenConfigValidation(t *testing.T) {
	bad := []GenConfig{
		{N: 1, MinDelay: 1, MaxDelay: 2, AvgDegree: 3},
		{N: 10, MinDelay: 0, MaxDelay: 2, AvgDegree: 3},
		{N: 10, MinDelay: 5, MaxDelay: 2, AvgDegree: 3},
		{N: 10, MinDelay: 1, MaxDelay: 2, AvgDegree: 1},
	}
	for i, cfg := range bad {
		if _, err := Waxman(cfg); err == nil {
			t.Errorf("case %d: Waxman accepted invalid config", i)
		}
		if _, err := GNM(cfg); err == nil {
			t.Errorf("case %d: GNM accepted invalid config", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := mustLine(t, 3)
	if err := g.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "", map[SwitchID]bool{1: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph \"network\"", "doublecircle", "style=dashed", "0 -- 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
