package topo

import (
	"math"
	"sync"
	"time"
)

// This file is the shared single-source shortest-path kernel behind every
// Dijkstra-shaped computation in the repository: unicast route tables
// (Graph.ShortestPaths / internal/lsr), the MC topology heuristics
// (internal/route's nearestToTree), and flooding arrival analysis
// (internal/flood's arrivalDelays). It replaces the O(n²) linear-min scans
// those call sites used to carry individually with one O((n+m)·log n)
// binary-heap implementation that runs on caller-provided scratch, so
// repeated computations on one machine allocate nothing.
//
// Determinism contract: the kernel produces bit-identical distance and
// predecessor arrays to the historical linear-scan implementations. Nodes
// are settled in increasing (distance, switch ID) order — exactly the order
// a linear scan with a strict `<` picks — and the equal-cost predecessor
// rule is unchanged: on a tie, an unsettled node's predecessor is lowered
// to the smaller relaxing switch. The D-GMC consensus relies on identical
// trees from identical inputs, so internal/route's determinism test pins
// this kernel against a reference linear-scan copy.

// Unreachable is the kernel's "infinite" distance: SSSPScratch.Dist holds
// it for every switch the source set cannot reach over up links.
const Unreachable = time.Duration(math.MaxInt64)

// ssspEntry is one binary-heap element, ordered by (d, s).
type ssspEntry struct {
	d time.Duration
	s SwitchID
}

// SSSPScratch is the reusable working state of the kernel. After RunSSSP,
// Dist and Pred hold the result for switches 0..n-1 and stay valid until
// the next Reset. The zero value is ready to use; Reset grows the buffers
// to the network size while keeping their capacity across runs.
type SSSPScratch struct {
	// Dist is the shortest distance from the seeded source set, or
	// Unreachable.
	Dist []time.Duration
	// Pred is the predecessor toward the source set (NoSwitch for sources
	// and unreachable switches).
	Pred []SwitchID

	done []bool
	heap []ssspEntry
}

// Reset prepares the scratch for a run over an n-switch graph, clearing any
// previous result while reusing the underlying arrays.
func (sc *SSSPScratch) Reset(n int) {
	if cap(sc.Dist) < n {
		sc.Dist = make([]time.Duration, n)
		sc.Pred = make([]SwitchID, n)
		sc.done = make([]bool, n)
	}
	sc.Dist = sc.Dist[:n]
	sc.Pred = sc.Pred[:n]
	sc.done = sc.done[:n]
	for i := 0; i < n; i++ {
		sc.Dist[i] = Unreachable
		sc.Pred[i] = NoSwitch
		sc.done[i] = false
	}
	sc.heap = sc.heap[:0]
}

// Seed marks s as a source (distance zero). Call between Reset and RunSSSP;
// seeding order does not affect the result (the heap settles equal-distance
// nodes lowest-ID first).
func (sc *SSSPScratch) Seed(s SwitchID) {
	if int(s) < 0 || int(s) >= len(sc.Dist) {
		return
	}
	sc.Dist[s] = 0
	sc.push(ssspEntry{0, s})
}

func (sc *SSSPScratch) push(e ssspEntry) {
	sc.heap = append(sc.heap, e)
	i := len(sc.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(sc.heap[i], sc.heap[p]) {
			break
		}
		sc.heap[i], sc.heap[p] = sc.heap[p], sc.heap[i]
		i = p
	}
}

func (sc *SSSPScratch) pop() ssspEntry {
	h := sc.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	sc.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && less(h[r], h[l]) {
			c = r
		}
		if !less(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

func less(a, b ssspEntry) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.s < b.s
}

// RunSSSP runs the kernel from the seeded source set over up links, each
// hop weighted by the link delay plus perHop (zero for pure delay-weighted
// paths; internal/flood passes its per-hop forwarding cost). Results land
// in sc.Dist and sc.Pred.
func (g *Graph) RunSSSP(sc *SSSPScratch, perHop time.Duration) {
	for len(sc.heap) > 0 {
		e := sc.pop()
		u := e.s
		if sc.done[u] || e.d != sc.Dist[u] {
			continue // stale entry superseded by a shorter path
		}
		sc.done[u] = true
		du := sc.Dist[u]
		for _, li := range g.adj[u] {
			l := &g.links[li]
			if l.Down {
				continue
			}
			v := l.Other(u)
			if nd := du + l.Delay + perHop; nd < sc.Dist[v] {
				sc.Dist[v] = nd
				sc.Pred[v] = u
				sc.push(ssspEntry{nd, v})
			} else if nd == sc.Dist[v] && !sc.done[v] && sc.Pred[v] > u {
				// Equal-cost tie: keep the lowest-ID predecessor, exactly as
				// the historical linear-scan kernels did.
				sc.Pred[v] = u
			}
		}
	}
}

// ssspPool recycles scratch across computations that have no natural place
// to keep one (e.g. one-shot ShortestPaths calls); long-lived owners such
// as flood.Network hold their own.
var ssspPool = sync.Pool{New: func() any { return new(SSSPScratch) }}

// AcquireSSSP returns a scratch from the shared pool. Release it with
// ReleaseSSSP when the Dist/Pred results are no longer needed.
func AcquireSSSP() *SSSPScratch { return ssspPool.Get().(*SSSPScratch) }

// ReleaseSSSP returns a scratch to the shared pool.
func ReleaseSSSP(sc *SSSPScratch) { ssspPool.Put(sc) }
