package topo

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits the graph in Graphviz DOT format. Downed links are drawn
// dashed. highlight, if non-nil, marks a subset of switches (e.g. MC
// members) with a doubled circle.
func (g *Graph) WriteDOT(w io.Writer, name string, highlight map[SwitchID]bool) error {
	if name == "" {
		name = "network"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  node [shape=circle];\n", name)
	for s := 0; s < g.n; s++ {
		attr := ""
		if highlight[SwitchID(s)] {
			attr = " [shape=doublecircle]"
		}
		fmt.Fprintf(&b, "  %d%s;\n", s, attr)
	}
	for _, l := range g.links {
		style := ""
		if l.Down {
			style = ", style=dashed, color=red"
		}
		fmt.Fprintf(&b, "  %d -- %d [label=\"%v\"%s];\n", l.A, l.B, l.Delay, style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
