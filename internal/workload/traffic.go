// Traffic: payload streams pumped through a live cluster and the ledger
// that audits what came out — delivered, missing, duplicated, or stray.
// The pump speaks to the runtime through the narrow Sender interface so the
// package stays independent of internal/rt (whose tests are its callers).

package workload

import (
	"fmt"
	"sync"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// Sender originates one payload on a connection at a given switch.
// rt.Cluster satisfies it.
type Sender interface {
	SendData(sw topo.SwitchID, conn lsa.ConnID, payload []byte) (uint64, error)
}

// PacketID identifies one originated payload network-wide: the sending
// switch plus its per-source data sequence number.
type PacketID struct {
	Src topo.SwitchID
	Seq uint64
}

// TrafficConfig parameterizes a Pump run.
type TrafficConfig struct {
	// Conn is the connection to send on.
	Conn lsa.ConnID
	// Sources are the switches that take turns originating (round-robin).
	Sources []topo.SwitchID
	// Packets is the total number of payloads to originate.
	Packets int
	// PayloadSize is the app-payload size in bytes (default 64).
	PayloadSize int
	// Expect, when set, is consulted per packet for the switches that should
	// deliver it (the receiving members other than the source, at send
	// time). Delivery to any of them is recorded as expected in the ledger;
	// without Expect the ledger only counts duplicates and strays.
	Expect func(src topo.SwitchID) []topo.SwitchID
	// Pace, when set, is called between packets (e.g. a sleep, or fault
	// injection mid-stream).
	Pace func(i int)
	// SampleEvery, when positive, mirrors the data plane's 1-in-N path
	// sampling decision (a packet is sampled iff its per-source sequence is
	// a multiple of SampleEvery): the pump stamps those packets in the
	// ledger, so a harness can cross-check reconstructed flight-recorder
	// paths against the exact set of packets the cluster should have
	// traced. Must match the cluster's SampleEvery to mean anything.
	SampleEvery int
}

// Pump originates cfg.Packets payloads round-robin over cfg.Sources,
// recording each send (and its expected receivers) in the ledger. Send
// errors are recorded, not fatal: a source that is currently not entitled
// to send (e.g. mid-churn) counts as refused, and the delivery audit
// excludes it.
func Pump(s Sender, led *Ledger, cfg TrafficConfig) error {
	if len(cfg.Sources) == 0 || cfg.Packets <= 0 {
		return fmt.Errorf("workload: traffic needs sources and a packet count")
	}
	size := cfg.PayloadSize
	if size <= 0 {
		size = 64
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < cfg.Packets; i++ {
		src := cfg.Sources[i%len(cfg.Sources)]
		seq, err := s.SendData(src, cfg.Conn, payload)
		if err != nil {
			led.RecordRefused()
		} else {
			var want []topo.SwitchID
			if cfg.Expect != nil {
				want = cfg.Expect(src)
			}
			id := PacketID{Src: src, Seq: seq}
			led.RecordSend(id, want)
			if cfg.SampleEvery > 0 && seq%uint64(cfg.SampleEvery) == 0 {
				led.MarkSampled(id)
			}
		}
		if cfg.Pace != nil {
			cfg.Pace(i)
		}
	}
	return nil
}

// Ledger audits a traffic run: every send is recorded with its expected
// receiver set, every delivery checks in against it, and Summary folds the
// result into the delivery-ratio/duplicate/loss figures the experiments
// report. Safe for concurrent use — deliveries arrive on the cluster's
// receive goroutines while the pump records sends.
type Ledger struct {
	mu      sync.Mutex
	packets map[PacketID]*packetRecord
	refused uint64
	// early holds deliveries that raced ahead of their RecordSend (the
	// fabric can deliver before SendData's caller regains control).
	early map[PacketID]map[topo.SwitchID]uint64
	// sampled stamps the packets selected by the pump's SampleEvery mirror
	// of the data plane's path-sampling decision.
	sampled map[PacketID]bool
}

type packetRecord struct {
	expected map[topo.SwitchID]bool
	got      map[topo.SwitchID]uint64 // delivery count per switch
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		packets: make(map[PacketID]*packetRecord),
		early:   make(map[PacketID]map[topo.SwitchID]uint64),
		sampled: make(map[PacketID]bool),
	}
}

// RecordSend registers an originated packet and the switches expected to
// deliver it. Deliveries that already checked in (the race is real: the
// fabric is faster than the sending goroutine) are folded in.
func (l *Ledger) RecordSend(id PacketID, expected []topo.SwitchID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := &packetRecord{expected: make(map[topo.SwitchID]bool, len(expected)), got: l.early[id]}
	delete(l.early, id)
	if rec.got == nil {
		rec.got = make(map[topo.SwitchID]uint64)
	}
	for _, sw := range expected {
		rec.expected[sw] = true
	}
	l.packets[id] = rec
}

// MarkSampled stamps one packet as selected by path sampling.
func (l *Ledger) MarkSampled(id PacketID) {
	l.mu.Lock()
	l.sampled[id] = true
	l.mu.Unlock()
}

// SampledIDs returns the stamped packets in unspecified order.
func (l *Ledger) SampledIDs() []PacketID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PacketID, 0, len(l.sampled))
	for id := range l.sampled {
		out = append(out, id)
	}
	return out
}

// RecordRefused counts a send the runtime rejected (e.g. the source was not
// entitled to originate at that moment).
func (l *Ledger) RecordRefused() {
	l.mu.Lock()
	l.refused++
	l.mu.Unlock()
}

// RecordRecv checks one delivery in at switch `at`.
func (l *Ledger) RecordRecv(at topo.SwitchID, id PacketID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.packets[id]
	if !ok {
		e := l.early[id]
		if e == nil {
			e = make(map[topo.SwitchID]uint64)
			l.early[id] = e
		}
		e[at]++
		return
	}
	rec.got[at]++
}

// Summary is the audited outcome of a traffic run.
type Summary struct {
	// Packets is the number of sends the runtime accepted; Refused the
	// number it rejected.
	Packets, Refused int
	// Expected is the total number of (packet, expected receiver) pairs;
	// Delivered how many of them arrived at least once; Missing the rest.
	Expected, Delivered, Missing int
	// Dups counts extra copies at expected receivers (arrivals beyond the
	// first); Strays counts deliveries at switches that were not expected —
	// including deliveries never matched to a recorded send.
	Dups, Strays int
	// Sampled counts packets stamped by the pump's path-sampling mirror.
	Sampled int
}

// Ratio is Delivered/Expected (1 when nothing was expected).
func (s Summary) Ratio() float64 {
	if s.Expected == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Expected)
}

// Summary folds the ledger. Call after the fabric has quiesced, or
// in-flight packets will read as missing.
func (l *Ledger) Summary() Summary {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Summary{Packets: len(l.packets), Refused: int(l.refused), Sampled: len(l.sampled)}
	for _, rec := range l.packets {
		s.Expected += len(rec.expected)
		for sw, n := range rec.got {
			if rec.expected[sw] {
				s.Delivered++
				s.Dups += int(n) - 1
			} else {
				s.Strays += int(n)
			}
		}
	}
	s.Missing = s.Expected - s.Delivered
	for _, e := range l.early {
		for _, n := range e {
			s.Strays += int(n)
		}
	}
	return s
}
