package workload

import (
	"errors"
	"testing"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// fakeSender records sends and refuses designated sources.
type fakeSender struct {
	seq    uint64
	sent   []PacketID
	refuse map[topo.SwitchID]bool
}

func (f *fakeSender) SendData(sw topo.SwitchID, conn lsa.ConnID, payload []byte) (uint64, error) {
	if f.refuse[sw] {
		return 0, errors.New("not a sender")
	}
	f.seq++
	f.sent = append(f.sent, PacketID{Src: sw, Seq: f.seq})
	return f.seq, nil
}

func TestPumpRoundRobinAndLedger(t *testing.T) {
	s := &fakeSender{refuse: map[topo.SwitchID]bool{2: true}}
	led := NewLedger()
	err := Pump(s, led, TrafficConfig{
		Conn:    1,
		Sources: []topo.SwitchID{0, 2},
		Packets: 6,
		Expect:  func(src topo.SwitchID) []topo.SwitchID { return []topo.SwitchID{5, 6} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sources alternate 0,2,0,2,... and 2 always refuses.
	if len(s.sent) != 3 {
		t.Fatalf("accepted sends = %d, want 3", len(s.sent))
	}

	// Deliver everything once, one packet twice, plus one stray.
	for _, id := range s.sent {
		led.RecordRecv(5, id)
		led.RecordRecv(6, id)
	}
	led.RecordRecv(5, s.sent[0])                      // duplicate
	led.RecordRecv(9, s.sent[1])                      // stray: unexpected switch
	led.RecordRecv(5, PacketID{Src: 3, Seq: 999_999}) // stray: unknown packet

	sum := led.Summary()
	want := Summary{Packets: 3, Refused: 3, Expected: 6, Delivered: 6, Missing: 0, Dups: 1, Strays: 2}
	if sum != want {
		t.Fatalf("summary = %+v, want %+v", sum, want)
	}
	if sum.Ratio() != 1 {
		t.Fatalf("ratio = %v, want 1", sum.Ratio())
	}
}

func TestLedgerMissingAndEarlyRecv(t *testing.T) {
	led := NewLedger()
	id := PacketID{Src: 1, Seq: 7}

	// Delivery can land before the pump records the send; the ledger must
	// reconcile the two orders identically.
	led.RecordRecv(4, id)
	led.RecordSend(id, []topo.SwitchID{4, 5})

	sum := led.Summary()
	if sum.Delivered != 1 || sum.Missing != 1 || sum.Dups != 0 || sum.Strays != 0 {
		t.Fatalf("summary = %+v, want delivered 1 missing 1", sum)
	}
	if r := sum.Ratio(); r != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", r)
	}

	if empty := NewLedger().Summary(); empty.Ratio() != 1 {
		t.Fatalf("empty ledger ratio = %v, want 1", empty.Ratio())
	}
}

func TestPumpValidatesConfig(t *testing.T) {
	if err := Pump(&fakeSender{}, NewLedger(), TrafficConfig{Packets: 1}); err == nil {
		t.Fatal("pump accepted empty source list")
	}
	if err := Pump(&fakeSender{}, NewLedger(), TrafficConfig{Sources: []topo.SwitchID{0}}); err == nil {
		t.Fatal("pump accepted zero packet count")
	}
}
