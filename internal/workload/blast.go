// Blast: the saturating data-plane load generator. Where Pump paces a
// modest audited stream (hundreds of packets, one sender), Blast exists to
// find the fabric's ceiling: many goroutines per source originating batched
// payloads as fast as the runtime accepts them, with per-source and
// cluster-wide packets/sec accounting. It drives the same Sender surface as
// Pump, so the ledger's exactly-once audit still composes at small scale
// (the race smoke), while full-rate runs skip the ledger entirely and read
// only atomic counters.

package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/topo"
)

// BatchSender is the batched fast path of Sender: originate count copies of
// payload on conn at switch sw in one call, amortizing the per-send setup
// (FIB lookup, frame encode, buffer rental) across the batch. It returns
// the first data sequence of the contiguous range it reserved and how many
// packets were actually sent. rt.Cluster satisfies it.
type BatchSender interface {
	Sender
	SendDataBatch(sw topo.SwitchID, conn lsa.ConnID, payload []byte, count int) (firstSeq uint64, sent int, err error)
}

// BlastStats is a cluster-wide data-plane sample Blast reads at the measure
// window's edges to convert counter deltas into rates. The caller maps it
// from whatever it sums (e.g. rt.Cluster.ForwardStats).
type BlastStats struct {
	Delivered uint64
	Forwarded uint64
}

// BlastConfig parameterizes one load-generation run. Two modes:
//
//   - Budget mode (Packets > 0): senders burn through a global packet
//     budget as fast as they can, Drain is awaited, and the whole run is
//     one measured window.
//   - Timed mode (Packets == 0): senders run flat out for Warmup (excluded
//     from the figures, letting pools and schedulers reach steady state)
//     and then Measure, which is the reported window.
type BlastConfig struct {
	// Conn is the connection to blast.
	Conn lsa.ConnID
	// Sources are the originating switches. Required.
	Sources []topo.SwitchID
	// SendersPerSource is the number of concurrent sender goroutines per
	// source switch (default 1).
	SendersPerSource int
	// PayloadSize is the app-payload size in bytes (default 64).
	PayloadSize int
	// Batch is the number of packets per SendDataBatch call (default 32;
	// forced to 1 when the sender does not implement BatchSender).
	Batch int
	// Packets, when positive, selects budget mode: the total packet count
	// split across all senders.
	Packets int
	// Warmup and Measure are the timed-mode windows (defaults 100ms / 1s).
	Warmup, Measure time.Duration
	// Ledger, when set, records every accepted send (with Expect's receiver
	// set) and every refusal — the exactly-once audit. At saturation the
	// ledger's lock dominates, so full-rate throughput runs leave it nil.
	Ledger *Ledger
	// Expect mirrors TrafficConfig.Expect; only consulted with a Ledger.
	Expect func(src topo.SwitchID) []topo.SwitchID
	// Drain, when set, runs after budget-mode sends complete and before the
	// clock stops — e.g. wait for the fabric's in-flight count to reach
	// zero, so DeliveredPerSec counts every packet of the budget.
	Drain func() error
	// InFlight and MaxInFlight, when set, close the loop: a sender about to
	// claim another batch first yields until the fabric's in-flight count
	// drops below the bound. Open-loop blasting of an unbounded fabric just
	// measures how fast queues can balloon — memory grows without bound,
	// every buffer goes cache-cold, and the receive side starves (fatally so
	// on a single-core host, where senders and receivers timeslice one CPU).
	// Bounding the outstanding work keeps the pipeline full but the working
	// set hot, so the figure is the fabric's sustainable rate.
	InFlight    func() int64
	MaxInFlight int64
	// Stats, when set, is sampled at the measured window's edges; the delta
	// becomes the cluster-wide delivered/forwarded rates.
	Stats func() BlastStats
}

// BlastResult reports one run.
type BlastResult struct {
	// Sent counts packets accepted by the runtime inside the measured
	// window; Refused counts sends it rejected.
	Sent, Refused uint64
	// Elapsed is the measured window's wall-clock length.
	Elapsed time.Duration
	// PerSource is each source switch's accepted-send count within the
	// window, index-aligned with BlastConfig.Sources.
	PerSource []uint64
	// Delivered and Forwarded are the Stats deltas over the window (zero
	// without a Stats hook).
	Delivered, Forwarded uint64
}

// SendRate returns accepted sends per second.
func (r BlastResult) SendRate() float64 { return rate(r.Sent, r.Elapsed) }

// DeliveredRate returns cluster-wide deliveries per second.
func (r BlastResult) DeliveredRate() float64 { return rate(r.Delivered, r.Elapsed) }

// ForwardedRate returns cluster-wide link-copy forwards per second.
func (r BlastResult) ForwardedRate() float64 { return rate(r.Forwarded, r.Elapsed) }

func rate(n uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// blast run phases, advanced by the window timer (timed mode only).
const (
	phaseWarmup = iota
	phaseMeasure
	phaseDone
)

// Blast runs the load generator to completion and returns the measured
// window's figures. Send errors count as refused, exactly as in Pump; they
// do not abort the run (a source can transiently lose its entitlement
// mid-churn and regain it).
func Blast(s Sender, cfg BlastConfig) (BlastResult, error) {
	if len(cfg.Sources) == 0 {
		return BlastResult{}, fmt.Errorf("workload: blast needs sources")
	}
	if cfg.SendersPerSource <= 0 {
		cfg.SendersPerSource = 1
	}
	if cfg.PayloadSize <= 0 {
		cfg.PayloadSize = 64
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 100 * time.Millisecond
	}
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	bs, batched := s.(BatchSender)
	if !batched {
		cfg.Batch = 1
	}

	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	var (
		phase    atomic.Int32
		budget   atomic.Int64 // budget mode: packets remaining to claim
		sent     atomic.Uint64
		refused  atomic.Uint64
		perSrc   = make([]atomic.Uint64, len(cfg.Sources))
		wg       sync.WaitGroup
		timedRun = cfg.Packets <= 0
	)
	if !timedRun {
		budget.Store(int64(cfg.Packets))
		phase.Store(phaseMeasure) // the whole budget run is measured
	}

	// record books one accepted batch: the counters always, the ledger (and
	// its expectations) only when auditing.
	record := func(srcIdx int, firstSeq uint64, n int) {
		if n <= 0 {
			return
		}
		if phase.Load() == phaseMeasure {
			sent.Add(uint64(n))
			perSrc[srcIdx].Add(uint64(n))
		}
		if cfg.Ledger != nil {
			src := cfg.Sources[srcIdx]
			var want []topo.SwitchID
			if cfg.Expect != nil {
				want = cfg.Expect(src)
			}
			for i := 0; i < n; i++ {
				cfg.Ledger.RecordSend(PacketID{Src: src, Seq: firstSeq + uint64(i)}, want)
			}
		}
	}
	refuse := func(n int) {
		if phase.Load() == phaseMeasure {
			refused.Add(uint64(n))
		}
		if cfg.Ledger != nil {
			for i := 0; i < n; i++ {
				cfg.Ledger.RecordRefused()
			}
		}
	}

	sender := func(srcIdx int) {
		defer wg.Done()
		src := cfg.Sources[srcIdx]
		for phase.Load() != phaseDone {
			if cfg.InFlight != nil {
				for cfg.InFlight() > cfg.MaxInFlight && phase.Load() != phaseDone {
					runtime.Gosched()
				}
			}
			n := cfg.Batch
			if !timedRun {
				claim := budget.Add(-int64(n))
				if claim < 0 {
					// Partial (or empty) final claim: hand back the overdraw.
					n += int(claim)
					if n <= 0 {
						return
					}
				}
			}
			if batched && n > 1 {
				first, got, err := bs.SendDataBatch(src, cfg.Conn, payload, n)
				record(srcIdx, first, got)
				if got < n {
					refuse(n - got)
					if err != nil {
						// The whole remainder was refused; in budget mode the
						// packets still count against the budget (they were
						// claimed), matching Pump's refused accounting.
						continue
					}
				}
			} else {
				for i := 0; i < n; i++ {
					seq, err := s.SendData(src, cfg.Conn, payload)
					if err != nil {
						refuse(1)
						continue
					}
					record(srcIdx, seq, 1)
				}
			}
		}
	}

	var startStats BlastStats
	var elapsed time.Duration
	start := time.Now()
	if timedRun {
		// Senders warm up first; the window timer flips them into the
		// measured phase and samples the cluster counters at both edges.
		for i := range cfg.Sources {
			for g := 0; g < cfg.SendersPerSource; g++ {
				wg.Add(1)
				go sender(i)
			}
		}
		time.Sleep(cfg.Warmup)
		if cfg.Stats != nil {
			startStats = cfg.Stats()
		}
		start = time.Now()
		phase.Store(phaseMeasure)
		time.Sleep(cfg.Measure)
		phase.Store(phaseDone)
		elapsed = time.Since(start)
	} else {
		if cfg.Stats != nil {
			startStats = cfg.Stats()
		}
		start = time.Now()
		for i := range cfg.Sources {
			for g := 0; g < cfg.SendersPerSource; g++ {
				wg.Add(1)
				go sender(i)
			}
		}
	}
	wg.Wait()
	if !timedRun {
		if cfg.Drain != nil {
			if err := cfg.Drain(); err != nil {
				return BlastResult{}, fmt.Errorf("workload: blast drain: %w", err)
			}
		}
		elapsed = time.Since(start)
	}
	res := BlastResult{
		Sent:      sent.Load(),
		Refused:   refused.Load(),
		Elapsed:   elapsed,
		PerSource: make([]uint64, len(cfg.Sources)),
	}
	for i := range perSrc {
		res.PerSource[i] = perSrc[i].Load()
	}
	if cfg.Stats != nil {
		end := cfg.Stats()
		res.Delivered = end.Delivered - startStats.Delivered
		res.Forwarded = end.Forwarded - startStats.Forwarded
	}
	return res, nil
}
