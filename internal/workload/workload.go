// Package workload generates the membership-event sequences of the paper's
// simulation study (§4.1): bursty workloads, where conflicting events
// cluster within a short period (the start of a multi-party conversation),
// and normal workloads, where events are spread far enough apart to be
// handled individually.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dgmc/internal/mctree"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// Event is one membership change to inject.
type Event struct {
	// At is the virtual time of the event.
	At sim.Time
	// Switch is the ingress switch where the event occurs.
	Switch topo.SwitchID
	// Join is true for joins, false for leaves.
	Join bool
	// Role is the member's role for joins.
	Role mctree.Role
}

// Config parameterizes a generated event sequence.
type Config struct {
	// N is the network size (switch IDs are drawn from [0, N)).
	N int
	// Events is the number of membership events to generate.
	Events int
	// Seed drives all randomness.
	Seed int64
	// Start offsets the first event.
	Start sim.Time
	// Window spreads bursty events uniformly over [Start, Start+Window).
	// Used by Bursty only.
	Window sim.Time
	// MeanGap is the mean exponential inter-arrival gap for Sparse.
	MeanGap sim.Time
	// JoinBias is the probability that an event is a join while leaves are
	// possible (members exist). Defaults to 0.7 when zero.
	JoinBias float64
	// Role is assigned to every join. Defaults to SenderReceiver when zero.
	Role mctree.Role
}

func (c Config) normalize() (Config, error) {
	if c.N < 2 {
		return c, fmt.Errorf("workload: network size %d too small", c.N)
	}
	if c.Events < 1 {
		return c, fmt.Errorf("workload: need at least 1 event, got %d", c.Events)
	}
	if c.Events > c.N {
		return c, fmt.Errorf("workload: %d events exceed %d switches (one membership change per switch)", c.Events, c.N)
	}
	if c.JoinBias == 0 {
		c.JoinBias = 0.7
	}
	if c.JoinBias < 0 || c.JoinBias > 1 {
		return c, fmt.Errorf("workload: join bias %.2f outside [0,1]", c.JoinBias)
	}
	if c.Role == 0 {
		c.Role = mctree.SenderReceiver
	}
	return c, nil
}

// generate draws events at the given times. A switch joins at most once
// per sequence and may later leave (join → leave), so every event is a
// genuine membership change and no switch re-joins within one scenario.
func generate(cfg Config, times []sim.Time) []Event {
	rng := rand.New(rand.NewSource(cfg.Seed))
	members := map[topo.SwitchID]bool{}
	used := map[topo.SwitchID]bool{}
	events := make([]Event, 0, len(times))
	for _, at := range times {
		join := true
		if len(members) > 0 && rng.Float64() > cfg.JoinBias {
			join = false
		}
		var s topo.SwitchID
		if join {
			for {
				s = topo.SwitchID(rng.Intn(cfg.N))
				if !used[s] {
					break
				}
			}
			members[s] = true
		} else {
			// Leave a uniformly chosen current member.
			ids := make([]topo.SwitchID, 0, len(members))
			for m := range members {
				ids = append(ids, m)
			}
			sortSwitches(ids)
			s = ids[rng.Intn(len(ids))]
			delete(members, s)
		}
		used[s] = true
		events = append(events, Event{At: at, Switch: s, Join: join, Role: cfg.Role})
	}
	return events
}

func sortSwitches(ids []topo.SwitchID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Bursty generates cfg.Events membership events clustered uniformly within
// cfg.Window — the conflicting-event scenario of Experiments 1 and 2.
func Bursty(cfg Config) ([]Event, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("workload: bursty window must be positive, got %v", cfg.Window)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5bd1e995))
	times := make([]sim.Time, cfg.Events)
	for i := range times {
		times[i] = cfg.Start + sim.Time(rng.Int63n(int64(cfg.Window)))
	}
	sortTimes(times)
	return generate(cfg, times), nil
}

// Sparse generates cfg.Events membership events with exponential
// inter-arrival gaps of mean cfg.MeanGap — the normal-traffic scenario of
// Experiment 3, where events rarely conflict.
func Sparse(cfg Config) ([]Event, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.MeanGap <= 0 {
		return nil, fmt.Errorf("workload: sparse mean gap must be positive, got %v", cfg.MeanGap)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x2545f491))
	times := make([]sim.Time, cfg.Events)
	at := cfg.Start
	for i := range times {
		gap := sim.Time(float64(cfg.MeanGap) * expVariate(rng))
		// Keep a floor of half the mean so two events cannot collide even
		// in the exponential tail, matching the paper's "sufficiently
		// separated" description.
		if gap < cfg.MeanGap/2 {
			gap = cfg.MeanGap / 2
		}
		at += gap
		times[i] = at
	}
	return generate(cfg, times), nil
}

// Churn generates cfg.Events membership events with exponential
// inter-arrival gaps of mean cfg.MeanGap where switches may rejoin after
// leaving — the long-lived connection-maintenance scenario (soak testing)
// rather than a single conversation setup. Unlike Bursty and Sparse,
// cfg.Events may exceed cfg.N.
func Churn(cfg Config) ([]Event, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("workload: network size %d too small", cfg.N)
	}
	if cfg.Events < 1 {
		return nil, fmt.Errorf("workload: need at least 1 event, got %d", cfg.Events)
	}
	if cfg.JoinBias == 0 {
		cfg.JoinBias = 0.7
	}
	if cfg.JoinBias < 0 || cfg.JoinBias > 1 {
		return nil, fmt.Errorf("workload: join bias %.2f outside [0,1]", cfg.JoinBias)
	}
	if cfg.Role == 0 {
		cfg.Role = mctree.SenderReceiver
	}
	if cfg.MeanGap <= 0 {
		return nil, fmt.Errorf("workload: churn mean gap must be positive, got %v", cfg.MeanGap)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
	members := map[topo.SwitchID]bool{}
	events := make([]Event, 0, cfg.Events)
	at := cfg.Start
	for i := 0; i < cfg.Events; i++ {
		gap := sim.Time(float64(cfg.MeanGap) * expVariate(rng))
		if gap < cfg.MeanGap/2 {
			gap = cfg.MeanGap / 2
		}
		at += gap
		join := true
		if len(members) > 0 && rng.Float64() > cfg.JoinBias {
			join = false
		}
		if len(members) == cfg.N {
			join = false // everyone is in; only a leave is a genuine change
		}
		var s topo.SwitchID
		if join {
			for {
				s = topo.SwitchID(rng.Intn(cfg.N))
				if !members[s] {
					break
				}
			}
			members[s] = true
		} else {
			ids := make([]topo.SwitchID, 0, len(members))
			for m := range members {
				ids = append(ids, m)
			}
			sortSwitches(ids)
			s = ids[rng.Intn(len(ids))]
			delete(members, s)
		}
		events = append(events, Event{At: at, Switch: s, Join: join, Role: cfg.Role})
	}
	return events, nil
}

// expVariate returns an Exp(1) sample.
func expVariate(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u)
}

// Span returns the time range covered by events.
func Span(events []Event) (first, last sim.Time) {
	if len(events) == 0 {
		return 0, 0
	}
	first, last = events[0].At, events[0].At
	for _, e := range events[1:] {
		if e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
	}
	return first, last
}

func sortTimes(ts []sim.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
